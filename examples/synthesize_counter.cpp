// Computational algorithm design, live ([4,5]; paper Section 1): synthesise
// a space-optimal 4-node, 1-resilient synchronous 2-counter from scratch
// with the built-in CDCL SAT solver, certify it with the exact verifier,
// print the transition table, and run it against a Byzantine node.
//
//   $ ./synthesize_counter [--states=3] [--cyclic=true] [--max-time=8]
#include <iostream>

#include "synccount/synccount.hpp"

using namespace synccount;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = cli.get_u64("states", 3);
  spec.modulus = 2;
  spec.symmetry =
      cli.get_bool("cyclic", true) ? counting::Symmetry::kCyclic : counting::Symmetry::kUniform;

  synthesis::SynthesisOptions opt;
  opt.min_time = static_cast<int>(cli.get_int("min-time", 1));
  opt.max_time = static_cast<int>(cli.get_int("max-time", 8));
  // Keep the per-bound budget small: the interesting instances are either
  // quickly UNSAT or quickly SAT; hard in-between bounds are abandoned and
  // the sweep moves on (raise --budget to settle them).
  opt.conflict_budget = cli.get_u64("budget", 60000);

  std::cout << "Synthesising: n=" << spec.n << " f=" << spec.f << " |X|=" << spec.num_states
            << " c=" << spec.modulus << " symmetry=" << counting::to_string(spec.symmetry)
            << " admissible T in [" << opt.min_time << ", " << opt.max_time << "]\n";

  const auto out = synthesize(spec, opt);
  if (!out.found) {
    if (out.budget_exhausted) {
      std::cout << "No algorithm found within the conflict budget (" << out.note << ").\n";
    } else {
      std::cout << "UNSAT: no such algorithm exists in this symmetry class for any\n"
                << "admissible stabilisation time in the sweep -- an optimality proof.\n"
                << "(Try --cyclic=true --states=3, or --states=4.)\n";
    }
    std::cout << "CNF size of the last attempt: " << out.last_size.variables << " vars, "
              << out.last_size.clauses << " clauses; " << out.total_conflicts
              << " conflicts total.\n";
    return 1;
  }

  std::cout << "FOUND at admissible T = " << out.time_bound_used
            << "; exact verifier-certified worst-case stabilisation: " << out.exact_time
            << " rounds.\nSolver work: " << out.total_conflicts << " conflicts; encoding "
            << out.last_size.variables << " vars / " << out.last_size.clauses << " clauses.\n\n";

  // Print the discovered algorithm.
  std::cout << "Output map h: ";
  for (std::size_t s = 0; s < out.table.h.size(); ++s) {
    std::cout << "h(" << s << ")=" << static_cast<int>(out.table.h[s]) << ' ';
  }
  std::cout << "\nTransition table g (rows: own/position-0 state; entries indexed by the "
               "other states):\n";
  const auto S = out.table.num_states;
  for (std::uint64_t x0 = 0; x0 < S; ++x0) {
    std::cout << "  x0=" << x0 << ": ";
    for (std::uint64_t rest = 0; rest < S * S * S; ++rest) {
      std::cout << static_cast<int>(out.table.g[x0 + S * rest]);
    }
    std::cout << '\n';
  }

  // Run it.
  const auto algo = std::make_shared<counting::TableAlgorithm>(out.table);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = {false, true, false, false};
  cfg.max_rounds = 48;
  cfg.seed = 3;
  cfg.record_outputs = true;
  auto adversary = sim::make_adversary("split");
  const auto res = sim::run_execution(cfg, *adversary, 16);
  std::cout << "\nSimulated with node 2 Byzantine (split adversary): stabilised at round "
            << res.stabilisation_round << " (certified worst case " << out.exact_time
            << ").\n";
  return 0;
}
