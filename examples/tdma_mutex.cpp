// The paper's motivating application (Section 1): use a self-stabilising
// Byzantine-tolerant counter to run time-division multiple access (TDMA) /
// mutual exclusion between the subsystems of a large integrated circuit.
//
// Scenario: 12 subsystems share a bus. Each subsystem may transmit only in
// its own slot: subsystem s transmits when (counter mod 12) == s. Three
// subsystems are faulty and try to disrupt both the counter and the bus.
// We show that after stabilisation the *correct* subsystems never collide
// on the bus, no matter what the faulty ones do to the counter protocol --
// and we count bus conflicts before and after stabilisation.
//
//   $ ./tdma_mutex [--rounds=N] [--seed=S]
#include <iostream>

#include "synccount/synccount.hpp"

using namespace synccount;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::uint64_t rounds = cli.get_u64("rounds", 4000);
  const std::uint64_t seed = cli.get_u64("seed", 5);

  // A 3-resilient counter on 12 nodes counting modulo 12 (one slot per
  // subsystem). plan_practical threads the Theorem 1 moduli automatically.
  const auto algo = boosting::build_plan(boosting::plan_practical(3, 12));
  const int n = algo->num_nodes();

  std::cout << "TDMA bus arbitration on " << n << " subsystems, 3 Byzantine\n"
            << "counter: " << algo->name() << "\n"
            << "bound:   " << *algo->stabilisation_bound() << " rounds, "
            << algo->state_bits() << " state bits per subsystem\n\n";

  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_block_concentrated(3, 4, 1, 3);
  cfg.max_rounds = rounds;
  cfg.seed = seed;
  cfg.record_outputs = true;
  auto adversary = sim::make_adversary("targeted-vote");
  const sim::RunResult res = sim::run_execution(cfg, *adversary, 64);

  // Bus model: in every round, each *correct* subsystem transmits iff its
  // own counter value mod 12 equals its index. A collision is a round in
  // which two correct subsystems transmit simultaneously. (Faulty
  // subsystems can always jam a real bus physically; TDMA protects the
  // correct ones from *each other*, which is exactly what agreement on the
  // counter provides.)
  std::uint64_t collisions_before = 0;
  std::uint64_t collisions_after = 0;
  std::uint64_t slots_served_after = 0;
  for (std::uint64_t r = 0; r < res.rounds; ++r) {
    int transmitting = 0;
    for (std::size_t j = 0; j < res.correct_ids.size(); ++j) {
      const auto slot = res.outputs[r][j] % 12;
      if (slot == static_cast<std::uint64_t>(res.correct_ids[j])) ++transmitting;
    }
    if (transmitting > 1) {
      (r < res.stabilisation_round ? collisions_before : collisions_after)++;
    }
    if (r >= res.stabilisation_round && transmitting == 1) ++slots_served_after;
  }

  std::cout << "stabilised at round " << res.stabilisation_round << " (of " << res.rounds
            << " simulated)\n"
            << "bus collisions among correct subsystems:\n"
            << "  before stabilisation: " << collisions_before << "\n"
            << "  after stabilisation:  " << collisions_after << " (must be 0)\n"
            << "slots served collision-free after stabilisation: " << slots_served_after
            << "\n\n";

  // After stabilisation every correct subsystem gets its slot exactly once
  // per 12 rounds: show one full TDMA frame.
  std::cout << "One TDMA frame after stabilisation (rows = rounds, columns = correct\n"
            << "subsystems, 'T' = transmits in its slot):\n";
  const std::uint64_t frame_start = res.stabilisation_round + 12;
  for (std::uint64_t r = frame_start; r < frame_start + 12 && r < res.rounds; ++r) {
    std::cout << "  round " << r << ": ";
    for (std::size_t j = 0; j < res.correct_ids.size(); ++j) {
      const bool tx = res.outputs[r][j] % 12 == static_cast<std::uint64_t>(res.correct_ids[j]);
      std::cout << (tx ? 'T' : '.');
    }
    std::cout << "   (counter = " << res.outputs[r][0] << ")\n";
  }
  return collisions_after == 0 ? 0 : 1;
}
