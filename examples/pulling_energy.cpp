// Section 5 live: counting under an energy budget. In the pulling model the
// cost of a message is paid by the *pulling* node, so a per-round energy
// budget per node caps the communication the protocol -- and the Byzantine
// nodes -- can trigger. This example compares the deterministic broadcast
// counter against the sampling counter at equal resilience and reports
// messages (and bits) pulled per node per round.
//
//   $ ./pulling_energy [--f=3] [--samples=M] [--seed=S]
#include <iostream>

#include "synccount/synccount.hpp"

using namespace synccount;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int f = static_cast<int>(cli.get_int("f", 3));
  const int M = static_cast<int>(cli.get_int("samples", 96));
  const std::uint64_t seed = cli.get_u64("seed", 9);

  const auto broadcast = boosting::build_plan(boosting::plan_practical(f, 16));
  const auto pulls =
      pulling::build_pulling_practical(f, 16, M, pulling::SamplingMode::kFresh);
  const int N = broadcast->num_nodes();

  std::cout << "Energy-budgeted counting, N = " << N << ", f = " << f << "\n\n";

  auto run = [&](const counting::AlgorithmPtr& algo, const char* label) {
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_spread(N, f);
    cfg.max_rounds = *algo->stabilisation_bound() + 400;
    cfg.seed = seed;
    auto adversary = sim::make_adversary("split");
    const auto res = sim::run_execution(cfg, *adversary, 60);
    const std::uint64_t msgs =
        res.max_pulls_per_round > 0 ? res.max_pulls_per_round
                                    : static_cast<std::uint64_t>(N);  // broadcast: n states
    std::cout << label << "\n"
              << "  messages pulled/node/round: " << msgs << "\n"
              << "  bits pulled/node/round:     " << msgs * static_cast<std::uint64_t>(algo->state_bits())
              << "  (state = " << algo->state_bits() << " bits)\n"
              << "  longest valid counting window: " << res.max_window << " rounds\n"
              << "  final suffix stabilised: " << (res.stabilised ? "yes" : "no") << "\n\n";
  };

  run(broadcast, "deterministic broadcast construction (Theorem 1)");
  run(pulls, "sampling construction (Theorem 4, fresh randomness)");

  std::cout << "The sampling counter pays O(k log eta) messages per round instead of\n"
            << "n, at the price of a small per-round failure probability after\n"
            << "stabilisation (increase --samples to shrink it; at M >= n the\n"
            << "behaviour approaches the deterministic counter).\n";
  return 0;
}
