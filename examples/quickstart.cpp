// Quickstart: the paper's page-1 scenario. Four nodes, one of them
// Byzantine, arbitrary initial states, and a common clock pulse; after a
// few rounds all correct nodes count in agreement.
//
// We run the computer-designed 4-node block (3 states, certified worst-case
// stabilisation 6) and print the execution table exactly like the paper's
// introduction, then do the same with a Theorem 1 counter counting mod 3.
//
//   $ ./quickstart [--seed=S]
#include <iostream>

#include "synccount/synccount.hpp"

using namespace synccount;

namespace {

void print_execution(const counting::AlgorithmPtr& algo, const std::vector<bool>& faulty,
                     std::uint64_t seed, std::uint64_t rounds, const std::string& title) {
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = faulty;
  cfg.max_rounds = rounds;
  cfg.seed = seed;
  cfg.record_outputs = true;
  auto adversary = sim::make_adversary("split");
  const sim::RunResult res = sim::run_execution(cfg, *adversary, 8);

  std::cout << title << "\n";
  std::size_t correct_index = 0;
  for (int v = 0; v < algo->num_nodes(); ++v) {
    std::cout << "  Node " << (v + 1) << ": ";
    if (faulty[static_cast<std::size_t>(v)]) {
      std::cout << "faulty node, arbitrary behaviour ...";
    } else {
      for (std::uint64_t r = 0; r < rounds; ++r) {
        std::cout << res.outputs[r][correct_index] << ' ';
        if (r + 1 == res.stabilisation_round) std::cout << "| ";
      }
      ++correct_index;
      std::cout << "...";
    }
    std::cout << '\n';
  }
  std::cout << "  ('|' marks the observed stabilisation point, round "
            << res.stabilisation_round << ")\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_u64("seed", 11);

  std::cout << "Synchronous counting despite Byzantine failures (PODC 2015)\n"
            << "===========================================================\n\n";

  // 1. The computer-designed 2-counter: n = 4, f = 1, c = 2, 3 states/node.
  {
    const auto algo = synthesis::computer_designed_4_1();
    std::cout << "Algorithm: " << algo->name() << "\n"
              << "  " << algo->state_bits() << " state bits/node, certified worst-case "
              << "stabilisation " << *algo->stabilisation_bound() << " rounds\n\n";
    print_execution(algo, {false, false, true, false}, seed, 16,
                    "Execution (node 3 Byzantine, counting mod 2):");
  }

  // 2. A Theorem 1 counter counting mod 3, like the paper's intro example.
  {
    const auto algo = boosting::build_plan(boosting::plan_practical(1, 3));
    std::cout << "Algorithm: " << algo->name() << "\n"
              << "  " << algo->state_bits() << " state bits/node, Theorem 1 bound "
              << *algo->stabilisation_bound() << " rounds\n\n";
    print_execution(algo, {false, false, true, false}, seed, 24,
                    "Execution (node 3 Byzantine, counting mod 3):");
  }

  std::cout << "Every run starts from arbitrary states; rerun with --seed=... to see\n"
            << "different executions. See examples/recursive_counter for the full\n"
            << "36-node, 7-fault construction of Figure 2.\n";
  return 0;
}
