// Figure 2, live: build A(36, 7, C) recursively -- 3 blocks of 12 nodes,
// each block 3 blocks of 4, each of those 4 one-node blocks on the trivial
// base -- inject 7 Byzantine faults including one fully faulty 12-node
// block, and watch the layers stabilise bottom-up.
//
//   $ ./recursive_counter [--modulus=C] [--seed=S] [--adversary=NAME]
#include <iostream>

#include "synccount/synccount.hpp"

using namespace synccount;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::uint64_t C = cli.get_u64("modulus", 10);
  const std::uint64_t seed = cli.get_u64("seed", 42);
  const std::string adv_name = cli.get_string("adversary", "targeted-vote");

  const auto plan = boosting::plan_practical(7, C);
  const auto algo = boosting::build_plan(plan);

  std::cout << "Recursive construction (Figure 2):\n";
  std::cout << "  base: trivial counter, modulus " << plan.base_modulus << "\n";
  std::uint64_t n = 1;
  for (const auto& lv : plan.levels) {
    n *= static_cast<std::uint64_t>(lv.k);
    std::cout << "  -> A(" << n << ", " << lv.F << ", " << lv.C << ")\n";
  }
  std::cout << "\n  " << algo->name() << "\n"
            << "  Theorem 1 bound: " << *algo->stabilisation_bound() << " rounds, "
            << algo->state_bits() << " state bits per node\n\n";

  // Fault pattern as drawn in the figure: one fully faulty top-level block
  // (4 > f_inner = 3 faults) plus scattered faults elsewhere.
  const auto faulty = sim::faults_block_concentrated(3, 12, 3, 7);
  std::cout << "Faulty nodes:";
  for (const auto id : sim::fault_ids(faulty)) std::cout << ' ' << id;
  std::cout << "  (block 0 is fully faulty)\n\n";

  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = faulty;
  cfg.max_rounds = *algo->stabilisation_bound() + 300;
  cfg.seed = seed;
  cfg.record_outputs = true;
  auto adversary = sim::make_adversary(adv_name);
  const sim::RunResult res = sim::run_execution(cfg, *adversary, 100);

  std::cout << "Adversary: " << adversary->name() << "\n"
            << "Stabilised: " << (res.stabilised ? "yes" : "NO") << " at round "
            << res.stabilisation_round << " (bound " << *algo->stabilisation_bound()
            << ")\n\n";

  // Show outputs of a few correct nodes around the stabilisation point.
  const std::uint64_t from = res.stabilisation_round > 4 ? res.stabilisation_round - 4 : 0;
  const std::uint64_t to = std::min<std::uint64_t>(res.stabilisation_round + 12, res.rounds);
  std::cout << "Outputs around stabilisation (correct nodes 0, 10, 20 of the list):\n";
  for (std::uint64_t r = from; r < to; ++r) {
    std::cout << "  round " << r << ": " << res.outputs[r][0] << ' ' << res.outputs[r][10]
              << ' ' << res.outputs[r][20]
              << (r == res.stabilisation_round ? "   <- stabilised" : "") << "\n";
  }
  return res.stabilised ? 0 : 1;
}
