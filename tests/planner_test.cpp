// Tests for the Section 4 recursion planners: modulus threading, resilience
// schedules, the closed-form Theorem 1 cost accounting and the Theorem 3
// log-space analysis.
#include <gtest/gtest.h>

#include "boosting/planner.hpp"
#include "counting/trivial.hpp"
#include "util/math.hpp"

namespace {

using namespace synccount;
using boosting::Plan;

TEST(Planner, RequiredInputModulus) {
  EXPECT_EQ(boosting::required_input_modulus(4, 1), 2304u);   // 9*4^4
  EXPECT_EQ(boosting::required_input_modulus(3, 3), 960u);    // 15*4^3
  EXPECT_EQ(boosting::required_input_modulus(3, 7), 1728u);   // 27*4^3
  EXPECT_EQ(boosting::required_input_modulus(3, 0), 384u);    // 6*4^3
  EXPECT_THROW(boosting::required_input_modulus(2, 1), std::invalid_argument);
  EXPECT_THROW(boosting::required_input_modulus(64, 1), std::invalid_argument);  // overflow
}

TEST(Planner, PracticalScheduleMatchesFigure2) {
  const Plan plan = boosting::plan_practical(7, 10);
  ASSERT_EQ(plan.levels.size(), 3u);
  EXPECT_EQ(plan.levels[0].k, 4);
  EXPECT_EQ(plan.levels[0].F, 1);
  EXPECT_EQ(plan.levels[0].C, 960u);
  EXPECT_EQ(plan.levels[1].k, 3);
  EXPECT_EQ(plan.levels[1].F, 3);
  EXPECT_EQ(plan.levels[1].C, 1728u);
  EXPECT_EQ(plan.levels[2].k, 3);
  EXPECT_EQ(plan.levels[2].F, 7);
  EXPECT_EQ(plan.levels[2].C, 10u);
  EXPECT_EQ(plan.base_modulus, 2304u);
}

TEST(Planner, PracticalCapsLastLevel) {
  // Target f = 5 sits between the natural 3 and 7.
  const Plan plan = boosting::plan_practical(5, 2);
  ASSERT_EQ(plan.levels.size(), 3u);
  EXPECT_EQ(plan.levels[2].F, 5);
  const auto algo = boosting::build_plan(plan);
  EXPECT_EQ(algo->resilience(), 5);
  EXPECT_EQ(algo->num_nodes(), 36);
}

TEST(Planner, Corollary1SingleLevel) {
  const Plan plan = boosting::plan_corollary1(1, 4);
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_EQ(plan.levels[0].k, 4);  // 3F+1
  const auto algo = boosting::build_plan(plan);
  EXPECT_EQ(algo->num_nodes(), 4);
  EXPECT_EQ(algo->resilience(), 1);
  // Optimal resilience: n = 3f+1.
  EXPECT_EQ(algo->num_nodes(), 3 * algo->resilience() + 1);
}

TEST(Planner, Corollary1GrowsSuperExponentially) {
  // F = 2: k = 7 blocks, cost 3(F+2)(2m)^k = 12*8^7.
  const Plan plan = boosting::plan_corollary1(2, 2);
  EXPECT_EQ(plan.levels[0].k, 7);
  EXPECT_EQ(plan.base_modulus, 12u * util::ipow(8, 7));
  const auto algo = boosting::build_plan(plan);
  EXPECT_EQ(algo->num_nodes(), 7);
  EXPECT_EQ(*algo->stabilisation_bound(), 12u * util::ipow(8, 7));
}

TEST(Planner, FixedKSchedule) {
  const Plan plan = boosting::plan_fixed_k(4, 3, 2);
  ASSERT_EQ(plan.levels.size(), 3u);
  EXPECT_EQ(plan.levels[0].F, 1);
  EXPECT_EQ(plan.levels[1].F, 3);
  EXPECT_EQ(plan.levels[2].F, 7);
  const auto algo = boosting::build_plan(plan);
  EXPECT_EQ(algo->num_nodes(), 64);
  EXPECT_EQ(algo->resilience(), 7);
}

TEST(Planner, FixedKRejectsBadArguments) {
  EXPECT_THROW(boosting::plan_fixed_k(3, 2, 2), std::invalid_argument);
  EXPECT_THROW(boosting::plan_fixed_k(4, 0, 2), std::invalid_argument);
  EXPECT_THROW(boosting::plan_practical(0, 2), std::invalid_argument);
}

TEST(Planner, TimeBoundIsSumOfLevelCosts) {
  const auto algo = boosting::build_plan(boosting::plan_practical(7, 10));
  // 2304 + 960 + 1728 (see DESIGN.md experiment E3).
  EXPECT_EQ(*algo->stabilisation_bound(), 4992u);
}

TEST(Planner, StateBitsGrowPolylogarithmically) {
  // Practical schedule: state bits grow by ~log(F) + k log k per level;
  // compare against the explicit Theorem 1 accounting.
  int prev_bits = 0;
  for (int f : {1, 3, 7, 15}) {
    const auto algo = boosting::build_plan(boosting::plan_practical(f, 2));
    const int bits = algo->state_bits();
    EXPECT_GT(bits, prev_bits);
    prev_bits = bits;
    // The whole stack stays tiny: O(log^2 f) bits.
    EXPECT_LE(bits, 64);
  }
}

TEST(Planner, AnalyzeReportsAlgorithmFacts) {
  const auto algo = boosting::build_plan(boosting::plan_practical(3, 16));
  const auto info = boosting::analyze(*algo);
  EXPECT_EQ(info.n, 12);
  EXPECT_EQ(info.f, 3);
  EXPECT_EQ(info.modulus, 16u);
  EXPECT_EQ(info.time_bound, 3264u);
  EXPECT_EQ(info.state_bits, algo->state_bits());
}

TEST(Planner, BuildLevelsOnCustomBase) {
  // A custom base whose modulus satisfies the first level's requirement.
  auto base = std::make_shared<counting::TrivialCounter>(2 * 2304);
  const std::vector<boosting::LevelSpec> levels = {{4, 1, 8}};
  const auto algo = boosting::build_levels(base, levels);
  EXPECT_EQ(algo->num_nodes(), 4);
  EXPECT_EQ(algo->modulus(), 8u);
}

TEST(Theorem3Analysis, ResilienceApproachesN) {
  // f = n^{1-o(1)}: the exponent log f / log n of the *completed*
  // construction approaches 1 as the number of phases P grows.
  double prev_ratio = 0;
  for (int P = 1; P <= 6; ++P) {
    const auto rows = boosting::theorem3_analysis(P);
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(P));
    const auto& last = rows.back();
    const double ratio = last.log2_f / last.log2_n;
    EXPECT_GT(ratio, prev_ratio) << "P=" << P;
    prev_ratio = ratio;
    // T = O(f): the gap log T - log f saturates at an absolute constant
    // (~2^27, dominated by the fixed-size k = 16 and k = 32 phases near the
    // end of the schedule -- the geometric series of Lemma 6), independent
    // of P.
    EXPECT_LT(last.log2_time - last.log2_f, 28.0) << "P=" << P;
  }
  EXPECT_GT(prev_ratio, 0.75);
}

TEST(Theorem3Analysis, PhaseStructureFollowsPaper) {
  const auto rows = boosting::theorem3_analysis(3);
  EXPECT_EQ(rows[0].k, 16);  // k_1 = 4*2^{P-1}
  EXPECT_EQ(rows[0].iterations, 32);
  EXPECT_EQ(rows[1].k, 8);
  EXPECT_EQ(rows[2].k, 4);
}

}  // namespace
