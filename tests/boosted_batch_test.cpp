// Differential tests for the composed batched backend: every lane of
// run_batch on a boosted / pulling tower must be bit-identical to
// run_execution on the same seed -- across boosting plans, adversaries,
// fault placements, batch widths, early-exit patterns, sampling modes and
// recorded traces -- and the engine's composed dispatch must leave
// aggregates bit-identical to the forced-scalar backend for any thread
// count. Mirrors tests/batch_runner_test.cpp for the flat-table backend.
#include <gtest/gtest.h>

#include "boosting/planner.hpp"
#include "counting/algorithm_spec.hpp"
#include "counting/trivial.hpp"
#include "pulling/pulling_counter.hpp"
#include "sim/batch_runner.hpp"
#include "sim/composed_runner.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "synthesis/known_tables.hpp"

namespace {

using namespace synccount;

counting::AlgorithmPtr practical(int f, std::uint64_t C = 10) {
  return boosting::build_plan(boosting::plan_practical(f, C));
}

// One boosted level over a transition-table base: exercises the kTable base
// kernel (blocks of n_inner > 1 at the bottom). The base table's behaviour
// is arbitrary -- the differential test only compares backends against each
// other -- but its modulus satisfies Theorem 1's constraint
// c = 3(F+2)(2m)^k = 576 for k = 3, F = 1.
counting::AlgorithmPtr boosted_over_table() {
  counting::TransitionTable t;
  t.n = 2;
  t.f = 0;
  t.num_states = 4;
  t.modulus = boosting::required_input_modulus(3, 1);
  t.symmetry = counting::Symmetry::kCyclic;
  t.g.resize(16);
  for (std::size_t i = 0; i < t.g.size(); ++i) t.g[i] = static_cast<std::uint8_t>((i * 5 + 1) % 4);
  t.h = {3, 100, 200, 50};
  t.label = "table-base-test";
  auto base = std::make_shared<counting::TableAlgorithm>(std::move(t));
  return std::make_shared<boosting::BoostedCounter>(base, boosting::BoostParams{3, 1, 10});
}

counting::AlgorithmPtr pulling_counter(int M, pulling::SamplingMode mode,
                                       std::uint64_t seed = 0x5eedULL) {
  auto base = std::make_shared<counting::TrivialCounter>(2304);
  pulling::PullParams p;
  p.k = 4;
  p.F = 1;
  p.C = 8;
  p.sample_size = M;
  p.mode = mode;
  p.seed = seed;
  return std::make_shared<pulling::PullingBoostedCounter>(base, p);
}

struct RunOpts {
  std::vector<bool> faulty;
  std::uint64_t max_rounds = 120;
  std::uint64_t margin = 30;
  std::uint64_t stop_after_stable = 0;
  bool record_outputs = false;
  bool record_states = false;
  std::vector<sim::State> initial;
};

sim::RunResult scalar_run(const counting::AlgorithmPtr& algo, const std::string& adversary,
                          std::uint64_t seed, const RunOpts& opt) {
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = opt.faulty;
  cfg.max_rounds = opt.max_rounds;
  cfg.seed = seed;
  cfg.stop_after_stable = opt.stop_after_stable;
  cfg.record_outputs = opt.record_outputs;
  cfg.record_states = opt.record_states;
  cfg.initial = opt.initial;
  auto adv = sim::make_adversary(adversary);
  return sim::run_execution(cfg, *adv, opt.margin);
}

std::vector<sim::RunResult> batch_run(const counting::AlgorithmPtr& algo,
                                      const std::string& adversary,
                                      const std::vector<std::uint64_t>& seeds,
                                      const RunOpts& opt) {
  sim::BatchConfig bc;
  bc.algo = algo;
  bc.faulty = opt.faulty;
  bc.max_rounds = opt.max_rounds;
  bc.margin = opt.margin;
  bc.stop_after_stable = opt.stop_after_stable;
  bc.record_outputs = opt.record_outputs;
  bc.record_states = opt.record_states;
  bc.initial = opt.initial;
  bc.adversary = [&adversary] { return sim::make_adversary(adversary); };
  bc.seeds = seeds;
  return sim::run_batch(bc);
}

void expect_same_run(const sim::RunResult& a, const sim::RunResult& b,
                     const std::string& context) {
  EXPECT_EQ(a.rounds, b.rounds) << context;
  EXPECT_EQ(a.stabilisation_round, b.stabilisation_round) << context;
  EXPECT_EQ(a.suffix_length, b.suffix_length) << context;
  EXPECT_EQ(a.max_window, b.max_window) << context;
  EXPECT_EQ(a.stabilised, b.stabilised) << context;
  EXPECT_EQ(a.max_pulls_per_round, b.max_pulls_per_round) << context;
  EXPECT_EQ(a.avg_pulls_per_round, b.avg_pulls_per_round) << context;
  EXPECT_EQ(a.correct_ids, b.correct_ids) << context;
  EXPECT_EQ(a.outputs, b.outputs) << context;
  EXPECT_EQ(a.states, b.states) << context;
}

void expect_differential(const counting::AlgorithmPtr& algo, const std::string& adversary,
                         const std::vector<std::uint64_t>& seeds, const RunOpts& opt,
                         const std::string& context) {
  const auto batch = batch_run(algo, adversary, seeds, opt);
  ASSERT_EQ(batch.size(), seeds.size()) << context;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_same_run(batch[i], scalar_run(algo, adversary, seeds[i], opt),
                    context + "/seed=" + std::to_string(seeds[i]));
  }
}

TEST(ComposedCompile, RecognisesSupportedTowers) {
  EXPECT_NE(sim::ComposedCompiledTable::compile(practical(1)), nullptr);
  EXPECT_NE(sim::ComposedCompiledTable::compile(practical(3)), nullptr);
  EXPECT_NE(sim::ComposedCompiledTable::compile(
                pulling_counter(8, pulling::SamplingMode::kFresh)),
            nullptr);
  // Flat algorithms take the table path / scalar runner, not the composed one.
  EXPECT_EQ(sim::ComposedCompiledTable::compile(
                std::make_shared<counting::TrivialCounter>(16)),
            nullptr);
  EXPECT_EQ(sim::ComposedCompiledTable::compile(nullptr), nullptr);
  EXPECT_TRUE(sim::batch_supported(practical(2)));

  const auto cc = sim::ComposedCompiledTable::compile(practical(2));
  ASSERT_EQ(cc->levels.size(), 2u);
  EXPECT_EQ(cc->N, 12);
  EXPECT_EQ(cc->levels[0].k, 4);
  EXPECT_EQ(cc->levels[1].k, 3);
  EXPECT_EQ(cc->base.kind, sim::ComposedBase::Kind::kTrivial);
  EXPECT_EQ(cc->state_bits, cc->algo->state_bits());
}

TEST(ComposedBatch, MatchesScalarAcrossPlansAdversariesAndPlacements) {
  const std::vector<std::string> adversaries = {"silent", "echo",   "random",
                                                "split",  "mirror", "targeted-vote"};
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 0xDEAD};
  for (const int f : {1, 2, 3}) {
    const auto algo = practical(f);
    const int n = algo->num_nodes();
    std::vector<std::pair<std::string, std::vector<bool>>> placements = {
        {"none", {}}, {"spread", sim::faults_spread(n, f)}};
    if (f >= 2) {
      placements.push_back({"blocks", sim::faults_block_concentrated(3, n / 3, (f - 1) / 2, f)});
    }
    for (const auto& adv : adversaries) {
      for (const auto& [pname, faulty] : placements) {
        RunOpts opt;
        opt.faulty = faulty;
        expect_differential(algo, adv, seeds, opt,
                            "practical(" + std::to_string(f) + ")/" + adv + "/" + pname);
      }
    }
  }
}

TEST(ComposedBatch, BoostedOverTableBaseMatchesScalar) {
  const auto algo = boosted_over_table();
  ASSERT_EQ(algo->num_nodes(), 6);
  const auto cc = sim::ComposedCompiledTable::compile(algo);
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->base.kind, sim::ComposedBase::Kind::kTable);
  EXPECT_EQ(cc->base.n, 2);
  RunOpts opt;
  opt.faulty = sim::faults_spread(6, 1);
  for (const auto& adv : {"silent", "split", "targeted-vote"}) {
    expect_differential(algo, adv, {7, 8, 9}, opt, std::string("table-base/") + adv);
  }
}

TEST(ComposedBatch, BitSlicedBaseWidthsMatchScalar) {
  // Towers over a num_states <= 4 table base route the base level through
  // the bit-sliced planes; 70 lanes cross the 64-lane word boundary so the
  // cross-lane base transition handles both a full word and a partial tail.
  const auto algo = boosted_over_table();
  RunOpts opt;
  opt.faulty = sim::faults_spread(6, 1);
  opt.max_rounds = 60;
  std::vector<std::uint64_t> seeds(70);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 0xD000 + i * 19;
  for (const auto& adv : {"silent", "split", "random"}) {
    expect_differential(algo, adv, seeds, opt, std::string("bs-base-wide/") + adv);
  }
}

TEST(ComposedBatch, RejectsExplicitKernelSelection) {
  // The composed path has a single kernel; asking for kSoA / kBitSliced is a
  // caller error and must fail loudly instead of being silently ignored.
  const auto algo = practical(1);
  for (const auto kernel : {sim::BatchKernel::kSoA, sim::BatchKernel::kBitSliced}) {
    sim::BatchConfig bc;
    bc.algo = algo;
    bc.faulty = sim::faults_spread(4, 1);
    bc.max_rounds = 20;
    bc.adversary = [] { return sim::make_adversary("silent"); };
    bc.seeds = {1, 2};
    bc.kernel = kernel;
    EXPECT_THROW(sim::run_batch(bc), std::invalid_argument);
  }
}

TEST(ComposedBatch, WidthsAndEarlyExitDoNotChangeResults) {
  // Lanes stabilise (and early-exit) at different rounds within one batch;
  // widths 1, 7, 64 and 100 cover partial words and multi-block batches.
  const auto algo = practical(1);
  RunOpts opt;
  opt.faulty = sim::faults_spread(4, 1);
  opt.max_rounds = 3000;
  opt.stop_after_stable = 25;
  opt.margin = 20;
  std::vector<std::uint64_t> seeds(100);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 0xB000 + i * 17;

  std::vector<sim::RunResult> reference;
  for (const auto s : seeds) reference.push_back(scalar_run(algo, "random", s, opt));

  for (const std::size_t width : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{100}}) {
    const std::vector<std::uint64_t> sub(seeds.begin(), seeds.begin() + width);
    const auto batch = batch_run(algo, "random", sub, opt);
    ASSERT_EQ(batch.size(), width);
    std::uint64_t distinct_rounds = 0;
    for (std::size_t i = 0; i < width; ++i) {
      expect_same_run(batch[i], reference[i], "width=" + std::to_string(width) +
                                                  "/seed=" + std::to_string(sub[i]));
      if (i > 0 && batch[i].rounds != batch[0].rounds) ++distinct_rounds;
    }
    if (width >= 64) {
      EXPECT_GT(distinct_rounds, 0u) << "expected lanes to early-exit at different rounds";
    }
  }
}

TEST(ComposedBatch, RecordedTracesAndFixedInitialStatesMatchScalar) {
  const auto algo = practical(2);
  RunOpts opt;
  opt.faulty = sim::faults_prefix(12, 2);
  opt.max_rounds = 50;
  opt.record_outputs = true;
  opt.record_states = true;
  opt.initial.resize(12);
  for (int i = 0; i < 12; ++i) {
    opt.initial[static_cast<std::size_t>(i)].set_bits(0, 40, 0xA5F00Du * (i + 1));
  }
  const std::vector<std::uint64_t> seeds = {5, 6, 7};
  const auto batch = batch_run(algo, "split", seeds, opt);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto scalar = scalar_run(algo, "split", seeds[i], opt);
    ASSERT_EQ(batch[i].outputs.size(), scalar.outputs.size());
    ASSERT_EQ(batch[i].states.size(), scalar.states.size());
    expect_same_run(batch[i], scalar, "traces/seed=" + std::to_string(seeds[i]));
  }
}

TEST(ComposedBatch, PullingFreshSamplingMatchesScalarIncludingPullCounts) {
  // kFresh draws sampling randomness from the lane Rng inside the
  // transition, interleaved with per-receiver forging -- the strictest
  // call-order test of the composed path.
  for (const int M : {4, 16}) {
    const auto algo = pulling_counter(M, pulling::SamplingMode::kFresh);
    for (const auto& adv : {"silent", "random", "split"}) {
      for (const bool with_fault : {false, true}) {
        RunOpts opt;
        if (with_fault) opt.faulty = sim::faults_prefix(4, 1);
        opt.max_rounds = 80;
        const auto batch = batch_run(algo, adv, {11, 12, 13}, opt);
        for (std::size_t i = 0; i < 3; ++i) {
          const auto scalar = scalar_run(algo, adv, 11 + i, opt);
          EXPECT_GT(scalar.max_pulls_per_round, 0u);
          expect_same_run(batch[i], scalar,
                          std::string("pulling-fresh/M=") + std::to_string(M) + "/" + adv +
                              (with_fault ? "/f1" : "/f0") + "/seed=" + std::to_string(11 + i));
        }
      }
    }
  }
}

TEST(ComposedBatch, PullingFixedSamplingMatchesScalar) {
  const auto algo = pulling_counter(16, pulling::SamplingMode::kFixed, 0xC0FFEE);
  RunOpts opt;
  opt.faulty = sim::faults_prefix(4, 1);
  opt.max_rounds = 100;
  for (const auto& adv : {"split", "mirror"}) {
    expect_differential(algo, adv, {21, 22, 23}, opt, std::string("pulling-fixed/") + adv);
  }
}

TEST(ComposedBatch, MixedPullingOverBoostedTowerMatchesScalar) {
  // Two pulling levels over the practical schedule: nested draws and nested
  // pull accounting across level copies.
  const auto algo =
      pulling::build_pulling_practical(2, 10, 6, pulling::SamplingMode::kFresh, 0x5eed, 2);
  RunOpts opt;
  opt.faulty = sim::faults_spread(algo->num_nodes(), 2);
  opt.max_rounds = 60;
  for (const auto& adv : {"silent", "random"}) {
    expect_differential(algo, adv, {31, 32}, opt, std::string("pulling-tower/") + adv);
  }
}

// --- Engine dispatch ---------------------------------------------------------

void expect_same_aggregate(const sim::AggregateResult& a, const sim::AggregateResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.stabilised, b.stabilised);
  EXPECT_EQ(a.max_pulls, b.max_pulls);
  EXPECT_EQ(a.stabilisation.count(), b.stabilisation.count());
  EXPECT_EQ(a.stabilisation.mean(), b.stabilisation.mean());
  EXPECT_EQ(a.stabilisation.min(), b.stabilisation.min());
  EXPECT_EQ(a.stabilisation.max(), b.stabilisation.max());
  EXPECT_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_EQ(a.avg_pulls.mean(), b.avg_pulls.mean());
}

sim::ExperimentSpec boosted_grid_spec() {
  sim::ExperimentSpec spec;
  spec.algo = practical(2);
  spec.adversaries = {"silent", "split", "lookahead"};
  spec.placements = {{"none", {}}, {"spread", sim::faults_spread(12, 2)}};
  spec.seeds = 70;  // crosses the 64-lane chunk boundary
  spec.max_rounds = 120;
  spec.margin = 30;
  return spec;
}

TEST(Engine, ComposedBackendIsBitIdenticalToScalarBackend) {
  auto spec = boosted_grid_spec();
  const sim::Engine engine(1);

  const auto batched = engine.run(spec);
  spec.backend = sim::Backend::kScalar;
  const auto scalar = engine.run(spec);

  // silent/split batch over both placements; lookahead stays scalar.
  EXPECT_EQ(batched.batched_cells, 2u * 2u * 70u);
  EXPECT_EQ(scalar.batched_cells, 0u);

  ASSERT_EQ(batched.cells.size(), scalar.cells.size());
  for (std::size_t i = 0; i < batched.cells.size(); ++i) {
    EXPECT_EQ(batched.cells[i].seed, scalar.cells[i].seed);
    expect_same_run(batched.cells[i].result, scalar.cells[i].result,
                    "cell=" + std::to_string(i));
  }
  expect_same_aggregate(batched.total, scalar.total);
  for (std::size_t a = 0; a < spec.adversaries.size(); ++a) {
    for (std::size_t p = 0; p < spec.placements.size(); ++p) {
      expect_same_aggregate(batched.aggregate(a, p), scalar.aggregate(a, p));
    }
  }
}

TEST(Engine, ComposedBackendIsThreadCountIndependent) {
  const auto spec = boosted_grid_spec();
  const sim::Engine serial(1);
  const sim::Engine parallel4(4);
  const auto a = serial.run(spec);
  const auto b = parallel4.run(spec);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].result.rounds, b.cells[i].result.rounds);
    EXPECT_EQ(a.cells[i].result.stabilisation_round, b.cells[i].result.stabilisation_round);
  }
  expect_same_aggregate(a.total, b.total);
}

TEST(Engine, PerSeedVariantAxisMatchesScalarRuns) {
  // The Corollary 5 pattern: the algorithm itself varies across the grid
  // (per-trial sampling seeds), now expressed as a declarative sweep axis --
  // one AlgorithmSpec variant per seed index; variant cells must stay on the
  // scalar path.
  sim::ExperimentSpec spec;
  spec.variants = counting::sweep_u64(
      *counting::describe(pulling_counter(8, pulling::SamplingMode::kFixed, 0)),
      "sampling_seed", {0x1000, 0x1001, 0x1002});
  spec.adversaries = {"split"};
  spec.placements = {{"", sim::faults_prefix(4, 1)}};
  spec.seeds = 3;
  spec.max_rounds = 40;
  spec.margin = 10;
  const sim::Engine engine(1);
  const auto res = engine.run(spec);
  EXPECT_EQ(res.batched_cells, 0u);
  ASSERT_EQ(res.cells.size(), 3u);
  // Differential: cell i must equal a direct scalar run with the same seeds.
  for (std::size_t i = 0; i < res.cells.size(); ++i) {
    RunOpts opt;
    opt.faulty = sim::faults_prefix(4, 1);
    opt.max_rounds = 40;
    opt.margin = 10;
    const auto ref = scalar_run(pulling_counter(8, pulling::SamplingMode::kFixed, 0x1000 + i),
                                "split", res.cells[i].seed, opt);
    expect_same_run(res.cells[i].result, ref, "variant-cell=" + std::to_string(i));
  }
}

}  // namespace
