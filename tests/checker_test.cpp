// Edge-case coverage for the online stabilisation checker: fault-free (f=0)
// executions, a single correct node, the observe / observe_summary
// equivalence the batched backends rely on, suffix-restart semantics and the
// stop_after_stable interplay in the runner.
#include <gtest/gtest.h>

#include "counting/table_algorithm.hpp"
#include "counting/trivial.hpp"
#include "sim/checker.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "synthesis/known_tables.hpp"
#include "util/rng.hpp"

namespace {

using namespace synccount;
using sim::StabilisationChecker;

TEST(Checker, PerfectCountingFromRoundZero) {
  StabilisationChecker ck(4);
  for (std::uint64_t r = 0; r < 20; ++r) {
    const std::uint64_t v = r % 4;
    const std::vector<std::uint64_t> outs = {v, v, v};
    ck.observe(outs);
  }
  EXPECT_EQ(ck.rounds(), 20u);
  EXPECT_EQ(ck.suffix_start(), 0u);
  EXPECT_EQ(ck.suffix_length(), 20u);
  EXPECT_EQ(ck.max_window(), 20u);
}

TEST(Checker, SingleCorrectNodeNeedsOnlyIncrements) {
  // One correct node: agreement is trivial, only the increment-by-one rule
  // can break the suffix.
  StabilisationChecker ck(3);
  const std::vector<std::uint64_t> seq = {0, 1, 2, 0, 1, 1, 2, 0, 1, 2};
  for (const std::uint64_t v : seq) {
    const std::vector<std::uint64_t> outs = {v};
    ck.observe(outs);
  }
  // The repeat at index 5 restarts the suffix at that round.
  EXPECT_EQ(ck.rounds(), 10u);
  EXPECT_EQ(ck.suffix_start(), 5u);
  EXPECT_EQ(ck.suffix_length(), 5u);
  EXPECT_EQ(ck.max_window(), 5u);  // both windows have length 5
}

TEST(Checker, DisagreementRestartsSuffixAfterTheBadRound) {
  StabilisationChecker ck(5);
  ck.observe(std::vector<std::uint64_t>{0, 0});
  ck.observe(std::vector<std::uint64_t>{1, 1});
  ck.observe(std::vector<std::uint64_t>{2, 3});  // disagreement at round 2
  EXPECT_EQ(ck.suffix_start(), 3u);
  EXPECT_EQ(ck.suffix_length(), 0u);
  EXPECT_EQ(ck.max_window(), 2u);
  ck.observe(std::vector<std::uint64_t>{3, 3});
  ck.observe(std::vector<std::uint64_t>{4, 4});
  ck.observe(std::vector<std::uint64_t>{0, 0});
  EXPECT_EQ(ck.suffix_start(), 3u);
  EXPECT_EQ(ck.suffix_length(), 3u);
  EXPECT_EQ(ck.max_window(), 3u);
}

TEST(Checker, AgreedButNonIncrementingRestartsSuffixAtTheCurrentRound) {
  // Agreement holds in both rounds but the counter stalls: unlike a
  // disagreement, the *current* round can start the new suffix.
  StabilisationChecker ck(4);
  ck.observe(std::vector<std::uint64_t>{1, 1});
  ck.observe(std::vector<std::uint64_t>{2, 2});
  ck.observe(std::vector<std::uint64_t>{2, 2});  // stall at round 2
  EXPECT_EQ(ck.suffix_start(), 2u);
  EXPECT_EQ(ck.suffix_length(), 1u);
  ck.observe(std::vector<std::uint64_t>{3, 3});
  ck.observe(std::vector<std::uint64_t>{0, 0});  // wrap mod 4 is valid
  EXPECT_EQ(ck.suffix_start(), 2u);
  EXPECT_EQ(ck.suffix_length(), 3u);
  EXPECT_EQ(ck.max_window(), 3u);
}

TEST(Checker, ObserveEqualsObserveSummaryOnIdenticalExecutions) {
  // Feed the same random execution through observe() (scalar runner) and
  // observe_summary() (batched backends); every statistic must agree after
  // every round.
  util::Rng rng(0xC4EC);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t modulus = 2 + rng.next_below(6);
    StabilisationChecker a(modulus);
    StabilisationChecker b(modulus);
    const int nodes = 1 + static_cast<int>(rng.next_below(4));
    std::vector<std::uint64_t> outs(static_cast<std::size_t>(nodes));
    for (int r = 0; r < 200; ++r) {
      // Mostly-counting sequences with occasional disagreement/stall noise.
      const std::uint64_t base = rng.next_bool(0.8) ? static_cast<std::uint64_t>(r) % modulus
                                                    : rng.next_below(modulus);
      for (auto& o : outs) {
        o = rng.next_bool(0.9) ? base : rng.next_below(modulus);
      }
      a.observe(outs);
      bool agreed = true;
      for (const auto o : outs) {
        if (o != outs[0]) agreed = false;
      }
      b.observe_summary(agreed, outs[0]);
      ASSERT_EQ(a.rounds(), b.rounds());
      ASSERT_EQ(a.suffix_start(), b.suffix_start());
      ASSERT_EQ(a.suffix_length(), b.suffix_length());
      ASSERT_EQ(a.max_window(), b.max_window());
    }
  }
}

TEST(Checker, RunnerStopAfterStableInterplay) {
  // f = 0, fault-free: the known 4-node table counts perfectly once
  // stabilised; stop_after_stable must cut the run as soon as the suffix
  // reaches the requested length, and the reported suffix must equal it.
  const auto algo =
      std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_3states());
  for (const std::uint64_t stop : {1u, 7u, 25u}) {
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.max_rounds = 500;
    cfg.seed = 11;
    cfg.stop_after_stable = stop;
    auto adv = sim::make_adversary("silent");
    const auto res = sim::run_execution(cfg, *adv, stop);
    EXPECT_TRUE(res.stabilised) << "stop=" << stop;
    EXPECT_EQ(res.suffix_length, stop) << "stop=" << stop;
    EXPECT_LT(res.rounds, 500u) << "stop=" << stop;
    EXPECT_EQ(res.rounds, res.stabilisation_round + stop) << "stop=" << stop;
  }
  // stop_after_stable = 0 runs to the horizon.
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.max_rounds = 120;
  cfg.seed = 11;
  auto adv = sim::make_adversary("silent");
  const auto res = sim::run_execution(cfg, *adv, 10);
  EXPECT_EQ(res.rounds, 120u);
  EXPECT_TRUE(res.stabilised);
}

TEST(Checker, SingleCorrectNodeExecutionEndToEnd) {
  // n = 4 with the full fault budget placed so only one... the table
  // tolerates f = 1; place it and check a 3-correct-node run, then the
  // 1-node trivial-counter extreme (a single correct node in the system).
  const auto algo =
      std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_3states());
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_prefix(4, 1);
  cfg.max_rounds = 300;
  cfg.seed = 3;
  auto adv = sim::make_adversary("split");
  const auto res = sim::run_execution(cfg, *adv, 30);
  EXPECT_EQ(res.correct_ids.size(), 3u);
  EXPECT_TRUE(res.stabilised);

  const auto one = std::make_shared<counting::TrivialCounter>(6);
  sim::RunConfig c1;
  c1.algo = one;
  c1.max_rounds = 40;
  c1.seed = 5;
  auto silent = sim::make_adversary("silent");
  const auto r1 = sim::run_execution(c1, *silent, 10);
  EXPECT_EQ(r1.correct_ids.size(), 1u);
  EXPECT_TRUE(r1.stabilised);
  EXPECT_EQ(r1.stabilisation_round, 0u);  // T = 0 from any initial state
  EXPECT_EQ(r1.suffix_length, 40u);
}

}  // namespace
