// Tests for the CDCL SAT solver: hand-crafted instances, pigeonhole
// principles (UNSAT), model validity, and randomized cross-validation
// against a brute-force truth-table enumerator.
#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using namespace synccount::sat;

TEST(SatSolver, EmptyInstanceIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  s.add_unit(1);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(1));
}

TEST(SatSolver, ContradictoryUnits) {
  Solver s;
  s.add_unit(1);
  s.add_unit(-1);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  s.add_clause({});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver s;
  s.add_unit(1);
  for (int v = 1; v < 50; ++v) s.add_binary(-v, v + 1);
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int v = 1; v <= 50; ++v) EXPECT_TRUE(s.value(v)) << v;
}

TEST(SatSolver, TautologyIgnored) {
  Solver s;
  s.add_clause({1, -1});
  s.add_unit(-1);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(1));
}

TEST(SatSolver, DuplicateLiteralsDeduped) {
  Solver s;
  s.add_clause({2, 2, 2});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(2));
}

TEST(SatSolver, XorChainSat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, ... satisfiable (alternating).
  Solver s;
  const int n = 20;
  for (int v = 1; v < n; ++v) {
    s.add_binary(v, v + 1);
    s.add_binary(-v, -(v + 1));
  }
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int v = 1; v < n; ++v) EXPECT_NE(s.value(v), s.value(v + 1));
}

TEST(SatSolver, OddXorCycleUnsat) {
  // An odd cycle of inequalities is unsatisfiable.
  Solver s;
  const int n = 7;
  for (int v = 1; v <= n; ++v) {
    const int w = v % n + 1;
    s.add_binary(v, w);
    s.add_binary(-v, -w);
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

// Pigeonhole principle PHP(p, h): p pigeons into h holes, UNSAT when p > h.
void add_php(Solver& s, int pigeons, int holes) {
  auto var = [&](int p, int h) { return p * holes + h + 1; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<ExtLit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_binary(-var(p1, h), -var(p2, h));
      }
    }
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver s;
    add_php(s, holes + 1, holes);
    EXPECT_EQ(s.solve(), Result::kUnsat) << holes;
  }
}

TEST(SatSolver, PigeonholeSatWhenEnoughHoles) {
  Solver s;
  add_php(s, 5, 5);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  Solver s;
  add_php(s, 9, 8);  // hard enough to exceed a tiny budget
  const Result r = s.solve(5);
  EXPECT_EQ(r, Result::kUnknown);
  // Resuming with a bigger budget still gets the right answer.
  EXPECT_EQ(s.solve(0), Result::kUnsat);
}

// --- Randomized cross-validation -------------------------------------------

// Brute-force satisfiability over <= 20 variables.
bool brute_force_sat(int num_vars, const std::vector<std::vector<ExtLit>>& clauses) {
  for (std::uint32_t assign = 0; assign < (1U << num_vars); ++assign) {
    bool all = true;
    for (const auto& c : clauses) {
      bool sat = false;
      for (ExtLit l : c) {
        const int v = std::abs(l) - 1;
        const bool val = (assign >> v) & 1U;
        if ((l > 0) == val) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool model_satisfies(const Solver& s, const std::vector<std::vector<ExtLit>>& clauses) {
  for (const auto& c : clauses) {
    bool sat = false;
    for (ExtLit l : c) {
      if ((l > 0) == s.value(std::abs(l))) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

class RandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnf, AgreesWithBruteForce) {
  synccount::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int instance = 0; instance < 60; ++instance) {
    const int num_vars = 4 + static_cast<int>(rng.next_below(9));      // 4..12
    const int num_clauses = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(num_vars * 5))) + 2;
    std::vector<std::vector<ExtLit>> clauses;
    for (int i = 0; i < num_clauses; ++i) {
      const int len = 1 + static_cast<int>(rng.next_below(3));  // 1..3
      std::vector<ExtLit> c;
      for (int j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.next_below(num_vars));
        c.push_back(rng.next_bool() ? v : -v);
      }
      clauses.push_back(std::move(c));
    }
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    for (const auto& c : clauses) s.add_clause(c);
    const bool expected = brute_force_sat(num_vars, clauses);
    const Result got = s.solve();
    ASSERT_EQ(got == Result::kSat, expected) << "instance " << instance;
    if (got == Result::kSat) {
      EXPECT_TRUE(model_satisfies(s, clauses)) << "instance " << instance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Assumptions -------------------------------------------------------------

TEST(SatSolver, AssumptionsRestrictModels) {
  Solver s;
  s.add_binary(1, 2);  // x1 or x2
  EXPECT_EQ(s.solve_assuming({-1}), Result::kSat);
  EXPECT_FALSE(s.value(1));
  EXPECT_TRUE(s.value(2));
  EXPECT_EQ(s.solve_assuming({-2}), Result::kSat);
  EXPECT_TRUE(s.value(1));
  EXPECT_EQ(s.solve_assuming({-1, -2}), Result::kUnsatAssumptions);
  // The instance itself is still satisfiable afterwards.
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, AssumptionsDoNotPoisonLaterCalls) {
  Solver s;
  s.add_ternary(1, 2, 3);
  s.add_binary(-1, -2);
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(s.solve_assuming({-3}), Result::kSat);
    EXPECT_EQ(s.solve_assuming({-1, -2, -3}), Result::kUnsatAssumptions);
    EXPECT_EQ(s.solve_assuming({1, 2}), Result::kUnsatAssumptions);
    EXPECT_EQ(s.solve(), Result::kSat);
  }
}

TEST(SatSolver, GloballyUnsatBeatsAssumptions) {
  Solver s;
  s.add_unit(1);
  s.add_unit(-1);
  EXPECT_EQ(s.solve_assuming({2}), Result::kUnsat);
}

TEST(SatSolver, AssumptionSweepMatchesFreshSolvers) {
  // Pigeonhole with a selector: sel -> (pigeon 0 uses hole 0). Sweep the
  // selector both ways and cross-check against dedicated solvers.
  synccount::util::Rng rng(99);
  for (int instance = 0; instance < 30; ++instance) {
    const int num_vars = 5 + static_cast<int>(rng.next_below(6));
    std::vector<std::vector<ExtLit>> clauses;
    const int num_clauses = 3 + static_cast<int>(rng.next_below(25));
    for (int i = 0; i < num_clauses; ++i) {
      std::vector<ExtLit> c;
      const int len = 1 + static_cast<int>(rng.next_below(3));
      for (int j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.next_below(num_vars));
        c.push_back(rng.next_bool() ? v : -v);
      }
      clauses.push_back(c);
    }
    Solver incremental;
    for (const auto& c : clauses) incremental.add_clause(c);
    for (int assumed = 1; assumed <= 3; ++assumed) {
      const std::vector<ExtLit> assumption = {assumed};
      const Result inc = incremental.solve_assuming(assumption);
      Solver fresh;
      for (const auto& c : clauses) fresh.add_clause(c);
      fresh.add_clause(assumption);
      const Result ref = fresh.solve();
      if (ref == Result::kSat) {
        ASSERT_EQ(inc, Result::kSat) << "instance " << instance << " assumed " << assumed;
      } else {
        ASSERT_NE(inc, Result::kSat) << "instance " << instance << " assumed " << assumed;
      }
    }
  }
}

TEST(SatSolver, StatsArePopulated) {
  Solver s;
  add_php(s, 6, 5);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_FALSE(s.stats_string().empty());
}

// --- DIMACS -----------------------------------------------------------------

TEST(Dimacs, RoundTrip) {
  Cnf cnf;
  cnf.add({1, -2, 3});
  cnf.add({-1});
  cnf.add({2, 3});
  std::ostringstream out;
  write_dimacs(cnf, out);
  std::istringstream in(out.str());
  const Cnf back = parse_dimacs(in);
  EXPECT_EQ(back.num_vars, 3);
  ASSERT_EQ(back.clauses.size(), 3u);
  EXPECT_EQ(back.clauses[0], (std::vector<ExtLit>{1, -2, 3}));
}

TEST(Dimacs, ParsesCommentsAndMultilineClauses) {
  std::istringstream in("c a comment\np cnf 3 2\n1 -2\n3 0\n-1 2 0\n");
  const Cnf cnf = parse_dimacs(in);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0], (std::vector<ExtLit>{1, -2, 3}));
  EXPECT_EQ(cnf.clauses[1], (std::vector<ExtLit>{-1, 2}));
}

TEST(Dimacs, RejectsMalformedInput) {
  std::istringstream no_header("1 2 0\n");
  EXPECT_THROW(parse_dimacs(no_header), std::invalid_argument);
  std::istringstream unterminated("p cnf 2 1\n1 2\n");
  EXPECT_THROW(parse_dimacs(unterminated), std::invalid_argument);
}

TEST(Dimacs, LoadIntoSolver) {
  Cnf cnf;
  cnf.add({1, 2});
  cnf.add({-1, 2});
  cnf.add({-2, 3});
  Solver s;
  cnf.load_into(s);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(2));
  EXPECT_TRUE(s.value(3));
}

}  // namespace
