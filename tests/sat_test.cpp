// Tests for the CDCL SAT solver: hand-crafted instances, pigeonhole
// principles (UNSAT), model validity, randomized cross-validation against a
// brute-force truth-table enumerator, and the portfolio-facing surface
// (SolverConfig diversification, cooperative cancellation, stats).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using namespace synccount::sat;

TEST(SatSolver, EmptyInstanceIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  s.add_unit(1);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(1));
}

TEST(SatSolver, ContradictoryUnits) {
  Solver s;
  s.add_unit(1);
  s.add_unit(-1);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  s.add_clause({});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver s;
  s.add_unit(1);
  for (int v = 1; v < 50; ++v) s.add_binary(-v, v + 1);
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int v = 1; v <= 50; ++v) EXPECT_TRUE(s.value(v)) << v;
}

TEST(SatSolver, TautologyIgnored) {
  Solver s;
  s.add_clause({1, -1});
  s.add_unit(-1);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(1));
}

TEST(SatSolver, DuplicateLiteralsDeduped) {
  Solver s;
  s.add_clause({2, 2, 2});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(2));
}

TEST(SatSolver, XorChainSat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, ... satisfiable (alternating).
  Solver s;
  const int n = 20;
  for (int v = 1; v < n; ++v) {
    s.add_binary(v, v + 1);
    s.add_binary(-v, -(v + 1));
  }
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int v = 1; v < n; ++v) EXPECT_NE(s.value(v), s.value(v + 1));
}

TEST(SatSolver, OddXorCycleUnsat) {
  // An odd cycle of inequalities is unsatisfiable.
  Solver s;
  const int n = 7;
  for (int v = 1; v <= n; ++v) {
    const int w = v % n + 1;
    s.add_binary(v, w);
    s.add_binary(-v, -w);
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

// Pigeonhole principle PHP(p, h): p pigeons into h holes, UNSAT when p > h.
void add_php(Solver& s, int pigeons, int holes) {
  auto var = [&](int p, int h) { return p * holes + h + 1; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<ExtLit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_binary(-var(p1, h), -var(p2, h));
      }
    }
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver s;
    add_php(s, holes + 1, holes);
    EXPECT_EQ(s.solve(), Result::kUnsat) << holes;
  }
}

TEST(SatSolver, PigeonholeSatWhenEnoughHoles) {
  Solver s;
  add_php(s, 5, 5);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  Solver s;
  add_php(s, 9, 8);  // hard enough to exceed a tiny budget
  const Result r = s.solve(5);
  EXPECT_EQ(r, Result::kUnknown);
  // Resuming with a bigger budget still gets the right answer.
  EXPECT_EQ(s.solve(0), Result::kUnsat);
}

// --- Randomized cross-validation -------------------------------------------

// Brute-force satisfiability over <= 20 variables.
bool brute_force_sat(int num_vars, const std::vector<std::vector<ExtLit>>& clauses) {
  for (std::uint32_t assign = 0; assign < (1U << num_vars); ++assign) {
    bool all = true;
    for (const auto& c : clauses) {
      bool sat = false;
      for (ExtLit l : c) {
        const int v = std::abs(l) - 1;
        const bool val = (assign >> v) & 1U;
        if ((l > 0) == val) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool model_satisfies(const Solver& s, const std::vector<std::vector<ExtLit>>& clauses) {
  for (const auto& c : clauses) {
    bool sat = false;
    for (ExtLit l : c) {
      if ((l > 0) == s.value(std::abs(l))) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

class RandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnf, AgreesWithBruteForce) {
  synccount::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int instance = 0; instance < 60; ++instance) {
    const int num_vars = 4 + static_cast<int>(rng.next_below(9));      // 4..12
    const int num_clauses = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(num_vars * 5))) + 2;
    std::vector<std::vector<ExtLit>> clauses;
    for (int i = 0; i < num_clauses; ++i) {
      const int len = 1 + static_cast<int>(rng.next_below(3));  // 1..3
      std::vector<ExtLit> c;
      for (int j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.next_below(num_vars));
        c.push_back(rng.next_bool() ? v : -v);
      }
      clauses.push_back(std::move(c));
    }
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    for (const auto& c : clauses) s.add_clause(c);
    const bool expected = brute_force_sat(num_vars, clauses);
    const Result got = s.solve();
    ASSERT_EQ(got == Result::kSat, expected) << "instance " << instance;
    if (got == Result::kSat) {
      EXPECT_TRUE(model_satisfies(s, clauses)) << "instance " << instance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Assumptions -------------------------------------------------------------

TEST(SatSolver, AssumptionsRestrictModels) {
  Solver s;
  s.add_binary(1, 2);  // x1 or x2
  EXPECT_EQ(s.solve_assuming({-1}), Result::kSat);
  EXPECT_FALSE(s.value(1));
  EXPECT_TRUE(s.value(2));
  EXPECT_EQ(s.solve_assuming({-2}), Result::kSat);
  EXPECT_TRUE(s.value(1));
  EXPECT_EQ(s.solve_assuming({-1, -2}), Result::kUnsatAssumptions);
  // The instance itself is still satisfiable afterwards.
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, AssumptionsDoNotPoisonLaterCalls) {
  Solver s;
  s.add_ternary(1, 2, 3);
  s.add_binary(-1, -2);
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(s.solve_assuming({-3}), Result::kSat);
    EXPECT_EQ(s.solve_assuming({-1, -2, -3}), Result::kUnsatAssumptions);
    EXPECT_EQ(s.solve_assuming({1, 2}), Result::kUnsatAssumptions);
    EXPECT_EQ(s.solve(), Result::kSat);
  }
}

TEST(SatSolver, GloballyUnsatBeatsAssumptions) {
  Solver s;
  s.add_unit(1);
  s.add_unit(-1);
  EXPECT_EQ(s.solve_assuming({2}), Result::kUnsat);
}

TEST(SatSolver, AssumptionSweepMatchesFreshSolvers) {
  // Pigeonhole with a selector: sel -> (pigeon 0 uses hole 0). Sweep the
  // selector both ways and cross-check against dedicated solvers.
  synccount::util::Rng rng(99);
  for (int instance = 0; instance < 30; ++instance) {
    const int num_vars = 5 + static_cast<int>(rng.next_below(6));
    std::vector<std::vector<ExtLit>> clauses;
    const int num_clauses = 3 + static_cast<int>(rng.next_below(25));
    for (int i = 0; i < num_clauses; ++i) {
      std::vector<ExtLit> c;
      const int len = 1 + static_cast<int>(rng.next_below(3));
      for (int j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.next_below(num_vars));
        c.push_back(rng.next_bool() ? v : -v);
      }
      clauses.push_back(c);
    }
    Solver incremental;
    for (const auto& c : clauses) incremental.add_clause(c);
    for (int assumed = 1; assumed <= 3; ++assumed) {
      const std::vector<ExtLit> assumption = {assumed};
      const Result inc = incremental.solve_assuming(assumption);
      Solver fresh;
      for (const auto& c : clauses) fresh.add_clause(c);
      fresh.add_clause(assumption);
      const Result ref = fresh.solve();
      if (ref == Result::kSat) {
        ASSERT_EQ(inc, Result::kSat) << "instance " << instance << " assumed " << assumed;
      } else {
        ASSERT_NE(inc, Result::kSat) << "instance " << instance << " assumed " << assumed;
      }
    }
  }
}

TEST(SatSolver, StatsArePopulated) {
  Solver s;
  add_php(s, 6, 5);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_FALSE(s.stats_string().empty());
}

TEST(SatSolver, StatsMonotoneAcrossCalls) {
  // Stats accumulate over an incremental solver's lifetime; callers compute
  // per-attempt deltas from snapshots, so no field may ever step backwards.
  Solver s;
  add_php(s, 6, 6);
  Solver::Stats prev = s.stats();
  for (const int assumed : {1, 2, 3, 1, 2, 3}) {
    ASSERT_NE(s.solve_assuming({assumed}), Result::kUnknown);
    const Solver::Stats cur = s.stats();
    EXPECT_GE(cur.conflicts, prev.conflicts);
    EXPECT_GE(cur.decisions, prev.decisions);
    EXPECT_GE(cur.propagations, prev.propagations);
    EXPECT_GE(cur.restarts, prev.restarts);
    EXPECT_GT(cur.decisions + cur.propagations, prev.decisions + prev.propagations);
    prev = cur;
  }
}

TEST(SatSolver, LearnedClausesPersistAcrossCalls) {
  // A selector-gated pigeonhole: sel forces an extra pigeon, making the
  // instance UNSAT under the assumption. The refutation is learned once;
  // repeating the same assumption must reuse it rather than re-derive it.
  Solver s;
  const int holes = 5;
  add_php(s, holes, holes);  // pigeons 0..4 placed normally
  const int sel = holes * holes + 1;
  const int extra_base = sel;  // vars extra(h) = sel + 1 + h
  std::vector<ExtLit> clause;
  for (int h = 0; h < holes; ++h) clause.push_back(extra_base + 1 + h);
  clause.push_back(-sel);  // sel -> extra pigeon in some hole
  s.add_clause(clause);
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < holes; ++p) {
      s.add_ternary(-sel, -(extra_base + 1 + h), -(p * holes + h + 1));
    }
  }
  ASSERT_EQ(s.solve_assuming({sel}), Result::kUnsatAssumptions);
  const std::uint64_t first = s.stats().conflicts;
  ASSERT_GT(first, 0u);
  ASSERT_EQ(s.solve_assuming({sel}), Result::kUnsatAssumptions);
  const std::uint64_t second = s.stats().conflicts - first;
  EXPECT_LT(second, first);
  // And the ungated instance is still satisfiable.
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, UnitBinaryTernaryPropagation) {
  Solver s;
  s.add_unit(1);
  s.add_binary(-1, 2);
  s.add_ternary(-1, -2, 3);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(1));
  EXPECT_TRUE(s.value(2));
  EXPECT_TRUE(s.value(3));
  // Two false literals in a ternary clause force the third.
  Solver t;
  t.add_ternary(1, 2, 3);
  EXPECT_EQ(t.solve_assuming({-1, -2}), Result::kSat);
  EXPECT_TRUE(t.value(3));
  EXPECT_EQ(t.solve_assuming({-1, -2, -3}), Result::kUnsatAssumptions);
}

// --- SolverConfig (portfolio diversification) --------------------------------

TEST(SolverConfig, ValidatesParameters) {
  SolverConfig bad;
  bad.decay = 0.0;
  EXPECT_THROW(Solver{bad}, std::invalid_argument);
  bad = SolverConfig{};
  bad.decay = 1.5;
  EXPECT_THROW(Solver{bad}, std::invalid_argument);
  bad = SolverConfig{};
  bad.random_branch_freq = -0.1;
  EXPECT_THROW(Solver{bad}, std::invalid_argument);
  bad = SolverConfig{};
  bad.restart_scale = 0;
  EXPECT_THROW(Solver{bad}, std::invalid_argument);
}

TEST(SolverConfig, InitialPhaseTruePicksTrue) {
  SolverConfig cfg;
  cfg.initial_phase = SolverConfig::Phase::kTrue;
  Solver s(cfg);
  s.add_clause({1, 2});
  s.add_clause({3, 4});
  EXPECT_EQ(s.solve(), Result::kSat);
  // Every decision follows the phase policy; nothing forces a false.
  EXPECT_TRUE(s.value(1));
  EXPECT_TRUE(s.value(3));
}

TEST(SolverConfig, RandomPhaseIsSeedDeterministic) {
  const auto model_bits = [](std::uint64_t seed) {
    SolverConfig cfg;
    cfg.initial_phase = SolverConfig::Phase::kRandom;
    cfg.seed = seed;
    Solver s(cfg);
    for (int i = 0; i < 16; ++i) s.new_var();
    s.add_clause({1, 2});
    EXPECT_EQ(s.solve(), Result::kSat);
    std::uint32_t bits = 0;
    for (int v = 1; v <= 16; ++v) bits = bits << 1 | (s.value(v) ? 1u : 0u);
    return bits;
  };
  EXPECT_EQ(model_bits(7), model_bits(7));
  // Distinct seeds give distinct phase vectors (16 free vars: collision
  // would be a 1-in-65536 accident, and this is deterministic anyway).
  EXPECT_NE(model_bits(7), model_bits(8));
}

TEST(SolverConfig, ConfiguredRunsAreDeterministic) {
  const auto run = [] {
    SolverConfig cfg;
    cfg.seed = 42;
    cfg.random_branch_freq = 0.1;
    cfg.initial_phase = SolverConfig::Phase::kRandom;
    cfg.restart_scale = 32;
    cfg.decay = 0.9;
    Solver s(cfg);
    add_php(s, 8, 7);
    EXPECT_EQ(s.solve(), Result::kUnsat);
    return s.stats();
  };
  const Solver::Stats a = run();
  const Solver::Stats b = run();
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.propagations, b.propagations);
  EXPECT_EQ(a.restarts, b.restarts);
}

TEST(SolverConfig, DiversificationChangesTheSearch) {
  const auto run = [](const SolverConfig& cfg) {
    Solver s(cfg);
    add_php(s, 8, 7);
    EXPECT_EQ(s.solve(), Result::kUnsat);
    return s.stats();
  };
  const Solver::Stats base = run(SolverConfig{});
  SolverConfig diversified;
  diversified.seed = 3;
  diversified.random_branch_freq = 0.1;
  diversified.initial_phase = SolverConfig::Phase::kRandom;
  const Solver::Stats other = run(diversified);
  EXPECT_NE(base.decisions, other.decisions);
}

TEST(SolverConfig, ReconfigureOnlyAtTopLevel) {
  Solver s;
  s.add_binary(1, 2);
  SolverConfig cfg;
  cfg.initial_phase = SolverConfig::Phase::kTrue;
  s.configure(cfg);  // legal before/between solves
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.config().initial_phase, SolverConfig::Phase::kTrue);
}

// --- Cooperative cancellation ------------------------------------------------

TEST(SatSolver, StopFlagCancelsImmediately) {
  Solver s;
  s.add_binary(1, 2);  // trivially SAT -- cancellation must still win
  std::atomic<bool> stop{true};
  s.set_stop_flag(&stop);
  EXPECT_EQ(s.solve(), Result::kCancelled);
  // Clearing the flag restores normal solving on the same instance.
  stop.store(false);
  EXPECT_EQ(s.solve(), Result::kSat);
  s.set_stop_flag(nullptr);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, CancelledSolveKeepsSolverUsable) {
  Solver s;
  add_php(s, 7, 6);
  std::atomic<bool> stop{true};
  s.set_stop_flag(&stop);
  EXPECT_EQ(s.solve_assuming({1}), Result::kCancelled);
  stop.store(false);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

// --- DIMACS -----------------------------------------------------------------

TEST(Dimacs, RoundTrip) {
  Cnf cnf;
  cnf.add({1, -2, 3});
  cnf.add({-1});
  cnf.add({2, 3});
  std::ostringstream out;
  write_dimacs(cnf, out);
  std::istringstream in(out.str());
  const Cnf back = parse_dimacs(in);
  EXPECT_EQ(back.num_vars, 3);
  ASSERT_EQ(back.clauses.size(), 3u);
  EXPECT_EQ(back.clauses[0], (std::vector<ExtLit>{1, -2, 3}));
}

TEST(Dimacs, ParsesCommentsAndMultilineClauses) {
  std::istringstream in("c a comment\np cnf 3 2\n1 -2\n3 0\n-1 2 0\n");
  const Cnf cnf = parse_dimacs(in);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0], (std::vector<ExtLit>{1, -2, 3}));
  EXPECT_EQ(cnf.clauses[1], (std::vector<ExtLit>{-1, 2}));
}

TEST(Dimacs, RejectsMalformedInput) {
  std::istringstream no_header("1 2 0\n");
  EXPECT_THROW(parse_dimacs(no_header), std::invalid_argument);
  std::istringstream unterminated("p cnf 2 1\n1 2\n");
  EXPECT_THROW(parse_dimacs(unterminated), std::invalid_argument);
}

TEST(Dimacs, LoadIntoSolver) {
  Cnf cnf;
  cnf.add({1, 2});
  cnf.add({-1, 2});
  cnf.add({-2, 3});
  Solver s;
  cnf.load_into(s);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(2));
  EXPECT_TRUE(s.value(3));
}

}  // namespace
