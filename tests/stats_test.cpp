// Tests for the scale-ready aggregation layer: the deterministic KLL
// quantile sketch (util/kll_sketch.hpp), sketch-mode StreamingStats, the
// stats wire codec's byte-stability, and the concurrency contract that
// every const member of StreamingStats is safe to call from concurrent
// readers without external synchronisation (the lazy-sort cache regression:
// run under TSan, this suite fails if quantile()/summary() ever mutate
// shared state again).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/kll_sketch.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace synccount;
using util::KllSketch;
using util::StatsMode;
using util::StreamingStats;

// --- KLL rank-error property --------------------------------------------------

// Worst-case adversarial orderings for a compaction-based sketch: every
// pattern that makes "drop every other item of a sorted buffer" maximally
// wrong somewhere in the stream.
std::vector<std::vector<double>> adversarial_streams(std::size_t n) {
  std::vector<std::vector<double>> streams;
  std::vector<double> asc(n), desc(n), organ(n), dups(n), random(n);
  for (std::size_t i = 0; i < n; ++i) {
    asc[i] = static_cast<double>(i);
    desc[i] = static_cast<double>(n - 1 - i);
    // Organ pipe: rises to the middle, falls back down.
    organ[i] = static_cast<double>(i < n / 2 ? i : n - 1 - i);
    // Heavy duplication: only 7 distinct values.
    dups[i] = static_cast<double>(i % 7);
  }
  util::Rng rng(0x5EED);
  for (std::size_t i = 0; i < n; ++i) {
    random[i] = static_cast<double>(rng.next_below(1000000));
  }
  streams.push_back(std::move(asc));
  streams.push_back(std::move(desc));
  streams.push_back(std::move(organ));
  streams.push_back(std::move(dups));
  streams.push_back(std::move(random));
  return streams;
}

// Absolute rank error of answering `value` for quantile p over `sorted`:
// distance from the target rank to the nearest rank at which `value`
// actually sits (0 if the target falls inside the value's run of
// duplicates). Infinite if `value` is not in the stream at all -- the
// sketch only ever returns retained samples.
double rank_error(const std::vector<double>& sorted, double p, double value) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), value);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), value);
  if (lo == hi) return std::numeric_limits<double>::infinity();
  const double first = static_cast<double>(lo - sorted.begin());
  const double last = static_cast<double>(hi - sorted.begin()) - 1;
  const double target = p * static_cast<double>(sorted.size() - 1);
  if (target >= first && target <= last) return 0.0;
  return std::min(std::fabs(target - first), std::fabs(target - last));
}

TEST(KllSketch, RankErrorWithinTrackedBoundOnAdversarialOrderings) {
  const std::size_t n = 30000;
  for (const auto& stream : adversarial_streams(n)) {
    KllSketch sketch(64);  // small k: forces many compactions at this n
    for (double x : stream) sketch.add(x);
    ASSERT_EQ(sketch.count(), n);
    EXPECT_GT(sketch.rank_error_weight(), 0u);  // compactions really happened
    EXPECT_LT(sketch.retained(), n / 4);        // and memory really is bounded

    std::vector<double> sorted = stream;
    std::sort(sorted.begin(), sorted.end());
    // The contract from the header: returned rank is off by at most the
    // tracked compaction weight plus the heaviest item's discretisation.
    const double bound = static_cast<double>(sketch.rank_error_weight() +
                                             sketch.max_item_weight() - 1);
    for (double p : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      const double v = sketch.quantile(p);
      EXPECT_LE(rank_error(sorted, p, v), bound)
          << "p=" << p << " value=" << v << " n=" << n;
    }
  }
}

TEST(KllSketch, SmallStreamsAreExact) {
  // Below the first compaction the sketch retains everything: zero error.
  KllSketch sketch;  // default k = 200
  std::vector<double> xs;
  for (int i = 50; i > 0; --i) {
    sketch.add(static_cast<double>(i));
    xs.push_back(static_cast<double>(i));
  }
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(sketch.rank_error_weight(), 0u);
  // The weighted walk returns the first retained item at or past the target
  // rank, i.e. the value at ceil(p * (n - 1)).
  for (double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto rank = static_cast<std::size_t>(std::ceil(p * (xs.size() - 1)));
    EXPECT_EQ(sketch.quantile(p), xs[rank]);
  }
}

TEST(KllSketch, EmptyQuantileIsNaN) {
  const KllSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_TRUE(std::isnan(sketch.quantile(0.5)));
  EXPECT_EQ(sketch.rank_error_weight(), 0u);
  EXPECT_EQ(sketch.rank_error_bound(), 0.0);
}

TEST(KllSketch, DeterministicAcrossIdenticalRuns) {
  // No hidden randomness: two sketches fed the same stream are bit-equal in
  // every observable (the determinism contract the engine relies on).
  KllSketch a(32), b(32);
  util::Rng rng(7);
  std::vector<double> stream(20000);
  for (auto& x : stream) x = static_cast<double>(rng.next_below(1 << 20));
  for (double x : stream) a.add(x);
  for (double x : stream) b.add(x);
  EXPECT_EQ(a.levels(), b.levels());
  EXPECT_EQ(a.parities(), b.parities());
  EXPECT_EQ(a.rank_error_weight(), b.rank_error_weight());
  for (double p : {0.1, 0.5, 0.9}) EXPECT_EQ(a.quantile(p), b.quantile(p));
}

TEST(KllSketch, ShardedMergeMatchesSingleProcessBitForBit) {
  // The differential the sharded sweep depends on: fold per-group sketches
  // into an empty seed in group order (what ShardPartial::total and
  // merge_aggregates do) == the engine's own per-group fold in the same
  // order. Same fold shape -> identical bits.
  util::Rng rng(0xD1FF);
  const std::size_t groups = 6, per_group = 5000;
  std::vector<KllSketch> group_sketches(groups, KllSketch(48));
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < per_group; ++i) {
      group_sketches[g].add(static_cast<double>(rng.next_below(100000)));
    }
  }

  KllSketch single(48);
  for (const auto& gs : group_sketches) single.merge(gs);

  // "Sharded": shards hold contiguous group ranges; the merge folds every
  // group in global group order, regardless of which shard computed it.
  KllSketch merged(48);
  for (std::size_t g = 0; g < 3; ++g) merged.merge(group_sketches[g]);   // shard 0
  for (std::size_t g = 3; g < groups; ++g) merged.merge(group_sketches[g]);  // shard 1

  EXPECT_EQ(single.count(), merged.count());
  EXPECT_EQ(single.rank_error_weight(), merged.rank_error_weight());
  EXPECT_EQ(single.levels(), merged.levels());
  EXPECT_EQ(single.parities(), merged.parities());
}

TEST(KllSketch, MergeIntoEmptyCopiesExactly) {
  KllSketch src(32);
  for (int i = 0; i < 10000; ++i) src.add(static_cast<double>(i * 13 % 997));
  KllSketch dst(32);
  dst.merge(src);
  EXPECT_EQ(dst.levels(), src.levels());
  EXPECT_EQ(dst.parities(), src.parities());
  EXPECT_EQ(dst.rank_error_weight(), src.rank_error_weight());
}

TEST(KllSketch, RestoreRoundTripsState) {
  KllSketch src(40);
  for (int i = 0; i < 25000; ++i) src.add(std::sin(i) * 1000.0);
  const KllSketch back = KllSketch::restore(src.k(), src.count(),
                                            src.rank_error_weight(), src.levels(),
                                            src.parities());
  EXPECT_EQ(back.levels(), src.levels());
  EXPECT_EQ(back.parities(), src.parities());
  for (double p : {0.0, 0.5, 1.0}) EXPECT_EQ(back.quantile(p), src.quantile(p));
  // And a restored sketch keeps evolving identically.
  KllSketch a = src, b = back;
  for (int i = 0; i < 5000; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i));
  }
  EXPECT_EQ(a.levels(), b.levels());
}

// --- Sketch-mode StreamingStats ----------------------------------------------

TEST(SketchStats, MomentsAreExactQuantilesApproximate) {
  StreamingStats sketch(StatsMode::kSketch);
  StreamingStats exact;
  util::Rng rng(99);
  const std::size_t n = 50000;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.next_below(10000));
    sketch.add(x);
    exact.add(x);
  }
  // Streaming moments follow the identical fp-op sequence in both modes.
  EXPECT_EQ(sketch.count(), exact.count());
  EXPECT_EQ(sketch.mean(), exact.mean());
  EXPECT_EQ(sketch.stddev(), exact.stddev());
  EXPECT_EQ(sketch.min(), exact.min());
  EXPECT_EQ(sketch.max(), exact.max());
  // Quantiles land within the sketch's own tracked rank-error bound.
  const double rank_tol =
      static_cast<double>(sketch.sketch().rank_error_weight() +
                          sketch.sketch().max_item_weight() - 1);
  EXPECT_LT(rank_tol / static_cast<double>(n), 0.15);
  for (double p : {0.1, 0.5, 0.9}) {
    // Values are uniform over [0, 10000): rank error translates to value
    // error by the density n / 10000.
    const double value_tol = rank_tol * 10000.0 / static_cast<double>(n);
    EXPECT_NEAR(sketch.quantile(p), exact.quantile(p), value_tol) << "p=" << p;
  }
}

TEST(SketchStats, MergeIsDeterministicLeftFold) {
  auto build = [](std::uint64_t seed, std::size_t n) {
    StreamingStats s(StatsMode::kSketch);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      s.add(static_cast<double>(rng.next_below(1 << 16)));
    }
    return s;
  };
  const auto a1 = build(1, 9000), b1 = build(2, 7000), c1 = build(3, 11000);

  StreamingStats fold1, fold2;  // default exact seeds: adopt on first merge
  for (const auto* s : {&a1, &b1, &c1}) fold1.merge(*s);
  for (const auto* s : {&a1, &b1, &c1}) fold2.merge(*s);
  EXPECT_EQ(fold1.mode(), StatsMode::kSketch);  // adopted from the first merge
  EXPECT_EQ(fold1.count(), 27000u);
  EXPECT_EQ(fold1.mean(), fold2.mean());
  EXPECT_EQ(fold1.stddev(), fold2.stddev());
  EXPECT_EQ(util::to_json(fold1).dump(), util::to_json(fold2).dump());
}

TEST(SketchStats, EmptyAndSingleSample) {
  StreamingStats s(StatsMode::kSketch);
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
  auto sum = s.summary();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_TRUE(std::isnan(sum.mean));
  EXPECT_TRUE(std::isnan(sum.median));
  EXPECT_NE(sum.to_string().find("n/a"), std::string::npos);

  s.add(42.0);
  EXPECT_EQ(s.quantile(0.0), 42.0);
  EXPECT_EQ(s.quantile(0.5), 42.0);
  EXPECT_EQ(s.quantile(1.0), 42.0);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.stddev(), 0.0);
  sum = s.summary();
  EXPECT_EQ(sum.count, 1u);
  EXPECT_EQ(sum.median, 42.0);
}

TEST(SketchStats, ExactSingleSampleAndEmpty) {
  StreamingStats s;  // exact mode
  EXPECT_TRUE(std::isnan(s.quantile(0.25)));
  EXPECT_TRUE(std::isnan(s.summary().p90));
  s.add(-3.5);
  EXPECT_EQ(s.quantile(0.0), -3.5);
  EXPECT_EQ(s.quantile(1.0), -3.5);
  EXPECT_EQ(s.summary().median, -3.5);
  EXPECT_EQ(s.summary().count, 1u);
}

TEST(SketchStats, ModeMismatchThrows) {
  StreamingStats exact, sketch(StatsMode::kSketch);
  exact.add(1.0);
  sketch.add(2.0);
  EXPECT_THROW(exact.merge(sketch), std::exception);
  EXPECT_THROW(sketch.merge(exact), std::exception);
  EXPECT_THROW(exact.sketch(), std::exception);     // accessor guards
  EXPECT_THROW(sketch.samples(), std::exception);
}

// --- Wire codec byte-stability ------------------------------------------------

TEST(SketchStats, CodecRoundTripIsByteStable) {
  StreamingStats s(StatsMode::kSketch);
  util::Rng rng(0xC0DE);
  for (int i = 0; i < 40000; ++i) {
    s.add(static_cast<double>(rng.next_below(1 << 24)) * 0.001);
  }
  const std::string wire = util::to_json(s).dump();
  const StreamingStats back =
      util::streaming_stats_from_json(util::Json::parse(wire));
  // Re-serialising the deserialised accumulator reproduces the exact bytes:
  // the fixed point the shard merge byte-compare depends on.
  EXPECT_EQ(util::to_json(back).dump(), wire);
  EXPECT_EQ(back.mean(), s.mean());
  EXPECT_EQ(back.stddev(), s.stddev());
  for (double p : {0.05, 0.5, 0.95}) EXPECT_EQ(back.quantile(p), s.quantile(p));

  // And the round-tripped accumulator continues identically under merge.
  StreamingStats more(StatsMode::kSketch);
  for (int i = 0; i < 5000; ++i) more.add(static_cast<double>(i));
  StreamingStats s2 = s, back2 = back;
  s2.merge(more);
  back2.merge(more);
  EXPECT_EQ(util::to_json(s2).dump(), util::to_json(back2).dump());
}

TEST(SketchStats, ExactCodecShapeUnchanged) {
  // Exact accumulators must keep the pre-sketch wire shape (a bare samples
  // array) so existing v3 partials byte-compare across this change.
  StreamingStats s;
  s.add(1.0);
  s.add(2.5);
  const std::string wire = util::to_json(s).dump();
  EXPECT_NE(wire.find("\"samples\""), std::string::npos);
  EXPECT_EQ(wire.find("\"mode\""), std::string::npos);
}

// --- Concurrent const readers (the lazy-sort data-race regression) ------------

TEST(SketchStats, ConcurrentConstReadersAreRaceFree) {
  // Before the fix, quantile()/summary() lazily sorted a mutable sample
  // cache under no lock: two concurrent readers raced on the same vector
  // (crashes at worst, wrong quantiles at best). The fix removes the cache
  // entirely, so hammering const members from many threads must be clean --
  // the CI tsan job runs this under ThreadSanitizer, where the old code
  // fails deterministically.
  for (const StatsMode mode : {StatsMode::kExact, StatsMode::kSketch}) {
    StreamingStats shared(mode);
    util::Rng rng(0xACE);
    for (int i = 0; i < 20000; ++i) {
      shared.add(static_cast<double>(rng.next_below(100000)));
    }
    const StreamingStats& ro = shared;

    // Single-threaded reference answers.
    const double q10 = ro.quantile(0.1), q50 = ro.quantile(0.5), q95 = ro.quantile(0.95);
    const double med = ro.summary().median;

    std::vector<std::thread> readers;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
      readers.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          if (ro.quantile(0.1) != q10 || ro.quantile(0.5) != q50 ||
              ro.quantile(0.95) != q95 || ro.summary().median != med) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : readers) th.join();
    EXPECT_EQ(mismatches.load(), 0);
  }
}

}  // namespace
