// Tests for the counting module: the algorithm interface contract, the
// trivial counter, the randomised baseline of [6,7] and table algorithms.
#include <gtest/gtest.h>

#include "counting/randomized.hpp"
#include "counting/table_algorithm.hpp"
#include "counting/table_io.hpp"
#include "counting/trivial.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "util/math.hpp"

namespace {

using namespace synccount;
using counting::State;

// --- TrivialCounter ------------------------------------------------------

TEST(TrivialCounter, Parameters) {
  counting::TrivialCounter t(12);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.resilience(), 0);
  EXPECT_EQ(t.modulus(), 12u);
  EXPECT_EQ(t.state_bits(), 4);
  EXPECT_EQ(t.stabilisation_bound(), 0u);
  EXPECT_TRUE(t.deterministic());
  EXPECT_EQ(t.state_count(), 12u);
}

TEST(TrivialCounter, RejectsDegenerateModulus) {
  EXPECT_THROW(counting::TrivialCounter t(0), std::invalid_argument);
  EXPECT_THROW(counting::TrivialCounter t(1), std::invalid_argument);
}

TEST(TrivialCounter, CountsModuloC) {
  counting::TrivialCounter t(5);
  counting::TransitionContext ctx;
  State s = t.state_from_index(3);
  for (int round = 0; round < 12; ++round) {
    EXPECT_EQ(t.output(0, s), (3 + round) % 5u);
    const State arr[] = {s};
    s = t.transition(0, arr, ctx);
  }
}

TEST(TrivialCounter, CanonicalizeClampsToModulus) {
  counting::TrivialCounter t(5);  // 3 bits, values 5..7 invalid
  State raw;
  raw.set_bits(0, 3, 7);
  const State s = t.canonicalize(raw);
  EXPECT_LT(t.output(0, s), 5u);
  // Identity on valid encodings.
  for (std::uint64_t v = 0; v < 5; ++v) {
    const State orig = t.state_from_index(v);
    EXPECT_EQ(t.canonicalize(orig), orig);
  }
}

TEST(TrivialCounter, StateIndexRoundTrip) {
  counting::TrivialCounter t(9);
  for (std::uint64_t v = 0; v < 9; ++v) {
    EXPECT_EQ(t.state_to_index(t.state_from_index(v)), v);
  }
  EXPECT_THROW(t.state_from_index(9), std::invalid_argument);
}

TEST(TrivialCounter, StabilisesImmediatelyInSimulation) {
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::TrivialCounter>(6);
  cfg.max_rounds = 50;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 10);
  EXPECT_TRUE(res.stabilised);
  EXPECT_EQ(res.stabilisation_round, 0u);
}

// --- RandomizedCounter ---------------------------------------------------

TEST(RandomizedCounter, ParameterChecks) {
  EXPECT_THROW(counting::RandomizedCounter(3, 1, 2), std::invalid_argument);  // n <= 3f
  EXPECT_THROW(counting::RandomizedCounter(4, 1, 1), std::invalid_argument);  // c < 2
  counting::RandomizedCounter ok(4, 1, 2);
  EXPECT_FALSE(ok.deterministic());
  EXPECT_EQ(ok.state_bits(), 1);
  EXPECT_FALSE(ok.stabilisation_bound().has_value());
}

TEST(RandomizedCounter, AgreementPersistsOnceReached) {
  // All correct nodes hold value 1; any Byzantine vector still shows >= n-f
  // copies, so every correct node moves to 2.
  counting::RandomizedCounter algo(4, 1, 4);
  counting::TransitionContext ctx;
  util::Rng rng(1);
  ctx.rng = &rng;
  std::vector<State> received(4);
  for (int u = 0; u < 3; ++u) received[u] = algo.state_from_index(1);
  received[3] = algo.state_from_index(3);  // adversarial value
  for (int i = 0; i < 3; ++i) {
    const State next = algo.transition(i, received, ctx);
    EXPECT_EQ(algo.output(i, next), 2u);
  }
}

TEST(RandomizedCounter, StabilisesExperimentally) {
  // n=4, f=1, c=2: expected stabilisation is a small constant number of
  // rounds in practice; give it a generous horizon.
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::RandomizedCounter>(4, 1, 2);
  cfg.faulty = sim::faults_prefix(4, 1);
  cfg.max_rounds = 20000;
  cfg.seed = 5;
  auto adv = sim::make_adversary("split");
  const auto res = sim::run_execution(cfg, *adv, 200);
  EXPECT_TRUE(res.stabilised);
}

TEST(RandomizedCounter, StabilisesWithoutFaults) {
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::RandomizedCounter>(6, 1, 2);
  cfg.max_rounds = 20000;
  cfg.seed = 17;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 200);
  EXPECT_TRUE(res.stabilised);
}

// --- TableAlgorithm -------------------------------------------------------

counting::TransitionTable make_follow_majority_table() {
  // A hand-written uniform table for n=2, f=0, c=2, |X|=2: next state =
  // 1 - state of node 0 (both nodes copy node 0 and flip). This is a valid
  // 0-resilient 2-counter: after one round both nodes agree with node 0.
  counting::TransitionTable t;
  t.n = 2;
  t.f = 0;
  t.num_states = 2;
  t.modulus = 2;
  t.symmetry = counting::Symmetry::kUniform;
  t.g.resize(4);
  for (std::uint64_t x0 = 0; x0 < 2; ++x0) {
    for (std::uint64_t x1 = 0; x1 < 2; ++x1) {
      t.g[x0 + 2 * x1] = static_cast<std::uint8_t>(1 - x0);
    }
  }
  t.h = {0, 1};
  t.label = "follow-node0";
  return t;
}

TEST(TableAlgorithm, SizeValidation) {
  auto t = make_follow_majority_table();
  t.g.pop_back();
  EXPECT_THROW(counting::TableAlgorithm a(t), std::invalid_argument);
  t = make_follow_majority_table();
  t.g[0] = 5;  // out-of-range target
  EXPECT_THROW(counting::TableAlgorithm a(t), std::invalid_argument);
  t = make_follow_majority_table();
  t.h[1] = 3;  // out-of-range output
  EXPECT_THROW(counting::TableAlgorithm a(t), std::invalid_argument);
}

TEST(TableAlgorithm, TransitionMatchesTable) {
  const counting::TableAlgorithm algo(make_follow_majority_table());
  counting::TransitionContext ctx;
  std::vector<State> received = {algo.state_from_index(1), algo.state_from_index(0)};
  for (int i = 0; i < 2; ++i) {
    const State next = algo.transition(i, received, ctx);
    EXPECT_EQ(algo.state_to_index(next), 0u);  // 1 - x0 = 0
  }
}

TEST(TableAlgorithm, SimulatedCounting) {
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::TableAlgorithm>(make_follow_majority_table());
  cfg.max_rounds = 64;
  cfg.seed = 3;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 16);
  EXPECT_TRUE(res.stabilised);
  EXPECT_LE(res.stabilisation_round, 2u);
}

TEST(TableAlgorithm, PerNodeTables) {
  // Non-uniform variant of the same algorithm: node 1 uses an inverted
  // output map, so outputs disagree forever -> not a counter; the point here
  // is only that per-node table indexing works.
  counting::TransitionTable t = make_follow_majority_table();
  t.symmetry = counting::Symmetry::kPerNode;
  t.g.resize(8);
  for (std::uint64_t x0 = 0; x0 < 2; ++x0) {
    for (std::uint64_t x1 = 0; x1 < 2; ++x1) {
      t.g[x0 + 2 * x1] = static_cast<std::uint8_t>(1 - x0);      // node 0
      t.g[4 + x0 + 2 * x1] = static_cast<std::uint8_t>(x0);      // node 1: copy
    }
  }
  t.h = {0, 1, 1, 0};
  const counting::TableAlgorithm algo(t);
  counting::TransitionContext ctx;
  std::vector<State> received = {algo.state_from_index(1), algo.state_from_index(1)};
  EXPECT_EQ(algo.state_to_index(algo.transition(0, received, ctx)), 0u);
  EXPECT_EQ(algo.state_to_index(algo.transition(1, received, ctx)), 1u);
  EXPECT_EQ(algo.output(0, algo.state_from_index(1)), 1u);
  EXPECT_EQ(algo.output(1, algo.state_from_index(1)), 0u);
}

// --- Table serialisation ----------------------------------------------------

TEST(TableIo, RoundTripPreservesEverything) {
  counting::TransitionTable t = make_follow_majority_table();
  t.verified_time = 2;
  const std::string text = counting::table_to_string(t);
  const counting::TransitionTable back = counting::table_from_string(text);
  EXPECT_EQ(back.n, t.n);
  EXPECT_EQ(back.f, t.f);
  EXPECT_EQ(back.num_states, t.num_states);
  EXPECT_EQ(back.modulus, t.modulus);
  EXPECT_EQ(back.symmetry, t.symmetry);
  EXPECT_EQ(back.verified_time, t.verified_time);
  EXPECT_EQ(back.label, t.label);
  EXPECT_EQ(back.g, t.g);
  EXPECT_EQ(back.h, t.h);
}

TEST(TableIo, RoundTripWithoutVerifiedTime) {
  const counting::TransitionTable t = make_follow_majority_table();
  const auto back = counting::table_from_string(counting::table_to_string(t));
  EXPECT_FALSE(back.verified_time.has_value());
}

TEST(TableIo, RejectsMalformedInput) {
  EXPECT_THROW(counting::table_from_string(""), std::invalid_argument);
  EXPECT_THROW(counting::table_from_string("not-a-table\n"), std::invalid_argument);
  // Wrong g length for the declared header.
  std::string text = counting::table_to_string(make_follow_majority_table());
  text.replace(text.find("g 1"), 3, "g 1 1");
  EXPECT_THROW(counting::table_from_string(text), std::invalid_argument);
  // Unknown key.
  std::string text2 = counting::table_to_string(make_follow_majority_table());
  text2 += "bogus 1\n";
  EXPECT_THROW(counting::table_from_string(text2), std::invalid_argument);
}

TEST(TableIo, LoadedTableBehavesIdentically) {
  const counting::TableAlgorithm original(make_follow_majority_table());
  const counting::TableAlgorithm loaded(
      counting::table_from_string(counting::table_to_string(make_follow_majority_table())));
  counting::TransitionContext ctx;
  for (std::uint64_t a = 0; a < 2; ++a) {
    for (std::uint64_t b = 0; b < 2; ++b) {
      std::vector<State> received = {original.state_from_index(a),
                                     original.state_from_index(b)};
      for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(original.transition(i, received, ctx), loaded.transition(i, received, ctx));
      }
    }
  }
}

TEST(ArbitraryState, IsCanonical) {
  counting::TrivialCounter t(5);
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const State s = counting::arbitrary_state(t, rng);
    EXPECT_EQ(t.canonicalize(s), s);
    EXPECT_LT(t.state_to_index(s), 5u);
  }
}

TEST(ArbitraryState, CoversStateSpace) {
  counting::TrivialCounter t(4);
  util::Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(t.state_to_index(counting::arbitrary_state(t, rng)));
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
