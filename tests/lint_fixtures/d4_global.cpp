// synccount-lint: path(src/util/fixture_counters.cpp)
// Fixture: rule D4 (global-state) must fire on the mutable statics below and
// stay quiet on the sanctioned shapes (const, atomic, thread_local, mutex).
// Not compiled -- analyzed by tests/lint_test.py via synccount_lint.py.
#include <atomic>
#include <mutex>
#include <string>

int bump() {
  static int calls = 0;          // line 10: mutable static counter
  static std::string last_tag;   // line 11: mutable static object
  static const int base = 7;     // ok: const
  static constexpr int k = 3;    // ok: constexpr
  static std::atomic<int> hits{0};          // ok: atomic
  static thread_local int scratch = 0;      // ok: thread_local
  static std::mutex mu;                     // ok: synchronization primitive
  (void)last_tag;
  (void)scratch;
  (void)mu;
  hits.fetch_add(1);
  return ++calls + base + k;
}
