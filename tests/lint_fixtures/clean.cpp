// Fixture: no violations at all; must lint clean with zero suppressions.
// Mentions of banned tokens inside comments and string literals must NOT
// fire: "std::random_device, rand(), time(), reinterpret_cast".
// Not compiled -- analyzed by tests/lint_test.py via synccount_lint.py.
#include <cstdint>
#include <string>

// A comment saying getenv("PATH") or steady_clock::now() is fine.
std::string describe(std::uint64_t seed) {
  const std::string note = "derived with rand() and srand(), honest!";
  std::uint64_t mixed = seed * 0x9E3779B97F4A7C15ULL;
  const std::uint64_t runtime_cost = mixed ^ (mixed >> 31);  // not time( )
  return note + std::to_string(runtime_cost);
}
