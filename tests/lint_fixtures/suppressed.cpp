// Fixture: every violation below carries a valid, reasoned suppression, so
// the file must lint clean (exit 0) -- proving each rule respects allow().
// Not compiled -- analyzed by tests/lint_test.py via synccount_lint.py.
#include <cstdint>
#include <cstdlib>

int configured_width() {
  // synccount-lint: allow(nondet) -- fixture: documented config knob, read
  // once at startup; exercises a multi-line wrapped justification too.
  const char* env = std::getenv("FIXTURE_WIDTH");
  return env != nullptr ? std::atoi(env) : 4;
}

std::uint32_t first_word(const unsigned char* bytes) {
  // synccount-lint: allow(cast) -- fixture: pretend this is a justified site.
  return *reinterpret_cast<const std::uint32_t*>(bytes);
}
