// synccount-lint: path(src/serve/fixture_codec.cpp)
// Fixture: rule D2 (unordered-iter) must fire -- the path() directive above
// scopes this file into the wire paths, where unordered containers are
// banned outright (iteration order leaks into wire bytes).
// Not compiled -- analyzed by tests/lint_test.py via synccount_lint.py.
#include <string>
#include <unordered_map>

std::string serialize_counts(const std::unordered_map<int, int>& counts) {  // line 9
  std::string out;
  for (const auto& [k, v] : counts) {
    out += std::to_string(k) + ":" + std::to_string(v) + ",";
  }
  return out;
}
