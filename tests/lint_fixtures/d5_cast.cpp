// Fixture: rule D5 (cast) must fire on the unjustified reinterpret_cast.
// Not compiled -- analyzed by tests/lint_test.py via synccount_lint.py.
#include <cstdint>

std::uint32_t first_word(const unsigned char* bytes) {
  return *reinterpret_cast<const std::uint32_t*>(bytes);  // line 6: bare cast
}
