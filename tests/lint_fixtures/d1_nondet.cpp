// Fixture: rule D1 (nondet) must fire on each nondeterminism source below.
// Not compiled -- analyzed by tests/lint_test.py via synccount_lint.py.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int harvest_entropy() {
  std::random_device rd;  // line 9: random_device
  std::srand(rd());       // line 10: srand
  int noise = rand();     // line 11: rand
  noise += static_cast<int>(time(nullptr));  // line 12: time
  const auto t = std::chrono::steady_clock::now();  // line 13: clock read
  if (std::getenv("HOME") != nullptr) noise += 1;   // line 14: getenv
  (void)t;
  return noise;
}
