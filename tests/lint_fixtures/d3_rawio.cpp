// synccount-lint: path(src/sim/sink_fixture.cpp)
// Fixture: rule D3 (raw-io) must fire -- the path() directive above scopes
// this file into the durable-IO paths, where raw writes can publish torn
// files and must route through atomic_write_file / AtomicAppender.
// Not compiled -- analyzed by tests/lint_test.py via synccount_lint.py.
#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <string>

void persist(const std::string& path, const std::string& payload) {
  std::ofstream out(path);  // line 13: raw ofstream
  out << payload;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);  // line 15: bare open
  ::write(fd, payload.data(), payload.size());                    // line 16: bare write
  ::close(fd);
}
