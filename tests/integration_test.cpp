// Cross-module integration tests: full pipelines exercising planner ->
// construction -> simulation -> checking, the application services on real
// counters under attack, and end-to-end sweeps across resilience targets,
// adversaries and initial-state regimes.
#include <gtest/gtest.h>

#include <set>

#include "apps/repeated_consensus.hpp"
#include "apps/tdma.hpp"
#include "boosting/planner.hpp"
#include "counting/randomized.hpp"
#include "pulling/pulling_counter.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "synthesis/game_adversary.hpp"
#include "synthesis/synthesize.hpp"

namespace {

using namespace synccount;

struct SweepCase {
  int f;
  std::string adversary;
  std::string placement;  // "spread" | "blocks"
};

class EndToEndSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EndToEndSweep, RecursionStabilisesAndPersists) {
  const auto& sc = GetParam();
  const auto algo = boosting::build_plan(boosting::plan_practical(sc.f, 16));
  const int n = algo->num_nodes();
  std::vector<bool> faulty;
  if (sc.placement == "spread" || sc.f == 1) {
    faulty = sim::faults_spread(n, sc.f);
  } else {
    faulty = sim::faults_block_concentrated(3, n / 3, (sc.f - 1) / 2, sc.f);
  }
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = faulty;
  cfg.max_rounds = *algo->stabilisation_bound() + 300;
  cfg.seed = 0xE2E + static_cast<std::uint64_t>(sc.f);
  auto adv = sim::make_adversary(sc.adversary);
  const auto res = sim::run_execution(cfg, *adv, 150);
  EXPECT_TRUE(res.stabilised) << "suffix " << res.suffix_length;
  EXPECT_LE(res.stabilisation_round, *algo->stabilisation_bound());
  // Persistence: once stabilised, the suffix runs to the horizon.
  EXPECT_EQ(res.stabilisation_round + res.suffix_length, res.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndSweep,
    ::testing::Values(SweepCase{1, "split", "spread"}, SweepCase{1, "lookahead", "spread"},
                      SweepCase{3, "split", "blocks"}, SweepCase{3, "mirror", "spread"},
                      SweepCase{5, "targeted-vote", "blocks"},
                      SweepCase{5, "random", "spread"}, SweepCase{7, "split", "blocks"}),
    [](const ::testing::TestParamInfo<SweepCase>& pinfo) {
      // Appends, not one operator+ chain: GCC 12's -Wrestrict false-positive
      // (PR105651) fires on chained std::string concatenation under -O2.
      std::string name = "f";
      name += std::to_string(pinfo.param.f);
      name += "_";
      name += pinfo.param.adversary;
      name += "_";
      name += pinfo.param.placement;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Integration, AllZeroInitialStatesStabilise) {
  // A degenerate but legal "arbitrary" start: everything zeroed.
  const auto algo = boosting::build_plan(boosting::plan_practical(3, 16));
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_spread(12, 3);
  cfg.initial.assign(12, counting::State{});
  cfg.max_rounds = *algo->stabilisation_bound() + 300;
  cfg.seed = 1;
  auto adv = sim::make_adversary("split");
  const auto res = sim::run_execution(cfg, *adv, 150);
  EXPECT_TRUE(res.stabilised);
}

TEST(Integration, FewerFaultsThanResilienceIsFine) {
  // |F| < f must also stabilise ("up to f faulty nodes").
  const auto algo = boosting::build_plan(boosting::plan_practical(7, 10));
  for (int used : {0, 2, 5}) {
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_spread(36, used);
    cfg.max_rounds = *algo->stabilisation_bound() + 300;
    cfg.seed = 2 + static_cast<std::uint64_t>(used);
    auto adv = sim::make_adversary("split");
    const auto res = sim::run_execution(cfg, *adv, 150);
    EXPECT_TRUE(res.stabilised) << used << " faults";
  }
}

TEST(Integration, ConsensusServiceOnTwelveNodeCounter) {
  // Repeated consensus with F = 3 (tau = 15) on the A(12,3) counter counting
  // modulo 15, under a fully corrupted block.
  const auto counter = boosting::build_plan(boosting::plan_practical(3, 15));
  std::vector<std::uint64_t> proposals(12);
  for (std::size_t i = 0; i < proposals.size(); ++i) proposals[i] = i % 4;
  const auto svc = std::make_shared<apps::RepeatedConsensus>(counter, 3, 4, proposals);

  sim::RunConfig cfg;
  cfg.algo = svc;
  cfg.faulty = sim::faults_block_concentrated(3, 4, 1, 3);
  cfg.max_rounds = *svc->stabilisation_bound() + 90;
  cfg.seed = 3;
  cfg.record_outputs = true;
  auto adv = sim::make_adversary("targeted-vote");
  const auto res = sim::run_execution(cfg, *adv, 1);

  // After the bound plus two windows, decisions agree in [4].
  for (std::uint64_t r = *svc->stabilisation_bound() + 30; r < res.rounds; ++r) {
    const auto v = res.outputs[r][0];
    EXPECT_LT(v, 4u);
    for (std::size_t j = 1; j < res.correct_ids.size(); ++j) {
      EXPECT_EQ(res.outputs[r][j], v) << "round " << r;
    }
  }
}

TEST(Integration, TdmaOnPullingCounter) {
  // The pulling-model counter drives TDMA: collision-free inside the final
  // valid counting window. Corollary 5 guarantees a good fixed sample set
  // w.h.p. over seeds, so sweep a handful and audit the first that yields a
  // long window (all seeds are fixed: the test is deterministic).
  bool audited = false;
  for (std::uint64_t sample_seed = 1; sample_seed <= 6 && !audited; ++sample_seed) {
    const auto algo = pulling::build_pulling_practical(
        3, 12, 64, pulling::SamplingMode::kFixed, 0xFEED * sample_seed);
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_spread(12, 3);
    cfg.max_rounds = *algo->stabilisation_bound() + 400;
    cfg.seed = 4;
    cfg.record_outputs = true;
    auto adv = sim::make_adversary("random");
    const auto res = sim::run_execution(cfg, *adv, 30);
    if (res.suffix_length < 24) continue;
    const apps::TdmaSchedule sched{12};
    std::vector<int> owners(res.correct_ids.begin(), res.correct_ids.end());
    const auto audit = apps::audit_tdma(sched, res.outputs, owners, res.stabilisation_round);
    EXPECT_EQ(audit.collisions, 0u);
    audited = true;
  }
  EXPECT_TRUE(audited) << "no fixed sample seed yielded a long window";
}

TEST(Integration, SynthesizedTableSurvivesOptimalAdversaryInsideHarness) {
  // Synthesise a fresh 2-node counter, wrap it in the optimal adversary and
  // run the full loop: the pipeline pieces compose without special-casing.
  synthesis::SynthesisSpec spec;
  spec.n = 2;
  spec.f = 0;
  spec.num_states = 2;
  spec.modulus = 2;
  synthesis::SynthesisOptions opt;
  opt.max_time = 4;
  const auto out = synthesize(spec, opt);
  ASSERT_TRUE(out.found);
  const auto algo = std::make_shared<counting::TableAlgorithm>(out.table);
  synthesis::OptimalAdversary adv(algo);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.max_rounds = 32;
  cfg.seed = 5;
  const auto res = sim::run_execution(cfg, adv, 8);
  EXPECT_TRUE(res.stabilised);
  EXPECT_LE(res.stabilisation_round, out.exact_time);
}

TEST(Integration, RandomizedBaselineInSameHarness) {
  // The [6,7] baseline runs under the same runner/adversary machinery.
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::RandomizedCounter>(7, 2, 4);
  cfg.faulty = sim::faults_spread(7, 2);
  cfg.max_rounds = 60000;
  cfg.seed = 6;
  auto adv = sim::make_adversary("split");
  const auto res = sim::run_execution(cfg, *adv, 150);
  EXPECT_TRUE(res.stabilised);
}

TEST(Integration, DifferentSeedsDifferentExecutionsSameGuarantee) {
  const auto algo = boosting::build_plan(boosting::plan_practical(3, 16));
  std::set<std::uint64_t> stabilisation_rounds;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_block_concentrated(3, 4, 1, 3);
    cfg.max_rounds = *algo->stabilisation_bound() + 300;
    cfg.seed = seed;
    auto adv = sim::make_adversary("split");
    const auto res = sim::run_execution(cfg, *adv, 150);
    EXPECT_TRUE(res.stabilised);
    stabilisation_rounds.insert(res.stabilisation_round);
  }
  // Executions genuinely differ across seeds.
  EXPECT_GT(stabilisation_rounds.size(), 1u);
}

}  // namespace
