// Tests of the parallel synthesis engine (synthesis/portfolio.hpp +
// synthesis/cube.hpp) and its serve integration: cube splitting, the
// deterministic config family, the empirical prefilter, CEGAR blocking
// clauses, DIMACS round-trips of the encoding, and -- the heart of the
// contract -- bit-identical certified tables across thread counts and
// across local-pool vs serve-worker (JobQueue) execution.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "counting/table_io.hpp"
#include "sat/dimacs.hpp"
#include "serve/queue.hpp"
#include "synthesis/cube.hpp"
#include "synthesis/encoder.hpp"
#include "synthesis/known_tables.hpp"
#include "synthesis/portfolio.hpp"
#include "synthesis/synthesize.hpp"
#include "util/json.hpp"

namespace {

using namespace synccount;

struct TempDir {
  TempDir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("synccount-portfolio-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::filesystem::path path;
};

synthesis::SynthesisSpec spec_4_1_3() {
  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = 3;
  spec.modulus = 2;
  spec.symmetry = counting::Symmetry::kCyclic;
  spec.max_time = 6;
  return spec;
}

// The reference re-discovery instance used throughout: one R = 6 round of
// the 4/1/3-state spec, depth-3 cubes, a 4-config portfolio, and a small
// deterministic budget (the diversified configs crack the SAT cube well
// inside it; the default config alone cannot).
synthesis::ParallelOptions fast_options() {
  synthesis::ParallelOptions opt;
  opt.base.min_time = 6;
  opt.base.max_time = 6;
  opt.base.conflict_budget = 2000;
  opt.portfolio = 4;
  opt.cube_depth = 3;
  return opt;
}

synthesis::SynthJobSpec job_4_1_3() {
  synthesis::SynthJobSpec job;
  job.spec = spec_4_1_3();
  job.time_bound = 6;
  job.cube_depth = 3;
  job.portfolio = 4;
  job.conflict_budget = 2000;
  return job;
}

// --- Config family -----------------------------------------------------------

TEST(PortfolioConfigs, PrefixStable) {
  const auto small = synthesis::portfolio_configs(2);
  const auto large = synthesis::portfolio_configs(8);
  ASSERT_EQ(small.size(), 2u);
  ASSERT_EQ(large.size(), 8u);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].seed, large[i].seed) << i;
    EXPECT_EQ(small[i].initial_phase, large[i].initial_phase) << i;
    EXPECT_EQ(small[i].random_branch_freq, large[i].random_branch_freq) << i;
    EXPECT_EQ(small[i].restart_scale, large[i].restart_scale) << i;
    EXPECT_EQ(small[i].decay, large[i].decay) << i;
  }
  // Index 0 is the canonical default; later entries genuinely diversify.
  EXPECT_EQ(large[0].seed, sat::SolverConfig{}.seed);
  EXPECT_EQ(large[0].random_branch_freq, 0.0);
  for (std::size_t i = 1; i < large.size(); ++i) {
    EXPECT_NE(large[i].seed, large[0].seed) << i;
  }
}

TEST(PortfolioConfigs, RejectsBadSizes) {
  EXPECT_THROW(synthesis::portfolio_configs(0), std::invalid_argument);
  EXPECT_THROW(synthesis::portfolio_configs(65), std::invalid_argument);
}

// --- Cube splitting ----------------------------------------------------------

TEST(CubeSplit, SignPatternsMatchIndices) {
  const synthesis::Encoder enc(spec_4_1_3());
  const std::vector<sat::Var> vars = synthesis::cube_branch_vars(enc, 3);
  ASSERT_EQ(vars.size(), 3u);
  const auto cubes = synthesis::split_cubes(enc, 3);
  ASSERT_EQ(cubes.size(), 8u);
  for (std::uint64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(cubes[j].index, j);
    ASSERT_EQ(cubes[j].assumptions.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      const bool positive = ((j >> i) & 1U) != 0;
      EXPECT_EQ(cubes[j].assumptions[static_cast<std::size_t>(i)],
                positive ? vars[static_cast<std::size_t>(i)]
                         : -vars[static_cast<std::size_t>(i)])
          << "cube " << j << " literal " << i;
    }
  }
}

TEST(CubeSplit, DepthZeroIsOneEmptyCube) {
  const synthesis::Encoder enc(spec_4_1_3());
  const auto cubes = synthesis::split_cubes(enc, 0);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_TRUE(cubes[0].assumptions.empty());
}

TEST(CubeSplit, RejectsOutOfRangeIndex) {
  const synthesis::Encoder enc(spec_4_1_3());
  EXPECT_THROW(synthesis::make_cube(enc, 3, 8), std::invalid_argument);
  EXPECT_THROW(synthesis::make_cube(enc, -1, 0), std::invalid_argument);
}

// --- SynthJobSpec JSON -------------------------------------------------------

TEST(SynthJobSpec, JsonRoundTripIsCanonical) {
  const synthesis::SynthJobSpec job = job_4_1_3();
  const util::Json j = job.to_json();
  const synthesis::SynthJobSpec back = synthesis::SynthJobSpec::from_json(j);
  EXPECT_EQ(back.to_json().dump(), j.dump());
  EXPECT_EQ(back.spec.n, 4);
  EXPECT_EQ(back.time_bound, 6);
  EXPECT_EQ(back.cube_depth, 3);
  EXPECT_EQ(back.portfolio, 4);
  EXPECT_EQ(back.conflict_budget, 2000u);
}

TEST(SynthJobSpec, RejectsNonSynthJson) {
  util::Json j = util::Json::object();
  j.set("n", util::Json::number(4));
  EXPECT_THROW(synthesis::SynthJobSpec::from_json(j), std::invalid_argument);
}

// --- The determinism contract ------------------------------------------------

TEST(SynthesizePortfolio, BitIdenticalAcrossThreadCounts) {
  const synthesis::SynthesisSpec spec = spec_4_1_3();
  std::string reference;
  std::uint64_t reference_cube = 0;
  for (const int threads : {1, 2, 8}) {
    synthesis::ParallelOptions opt = fast_options();
    opt.threads = threads;
    synthesis::ParallelOutcomeInfo info;
    const synthesis::SynthesisOutcome out = synthesize_portfolio(spec, opt, &info);
    ASSERT_TRUE(out.found) << "threads=" << threads;
    // synthesize_portfolio certifies internally; re-check the certificate.
    const synthesis::VerifyResult vr = synthesis::verify(counting::TableAlgorithm(out.table));
    ASSERT_TRUE(vr.ok) << vr.failure;
    EXPECT_EQ(vr.worst_case_time, out.exact_time);
    const std::string text = counting::table_to_string(out.table);
    if (reference.empty()) {
      reference = text;
      reference_cube = info.winning_cube;
    } else {
      EXPECT_EQ(text, reference) << "threads=" << threads;
      EXPECT_EQ(info.winning_cube, reference_cube) << "threads=" << threads;
    }
    // Registry equivalence: the re-discovered table is exactly as fast as
    // the embedded computer-designed one.
    EXPECT_EQ(out.exact_time,
              synthesis::known_table_4_1_3states().verified_time.value());
  }
}

TEST(SynthesizePortfolio, ReportsPerAttemptStats) {
  synthesis::ParallelOptions opt = fast_options();
  opt.threads = 1;
  const synthesis::SynthesisOutcome out = synthesize_portfolio(spec_4_1_3(), opt);
  ASSERT_TRUE(out.found);
  ASSERT_EQ(out.attempts.size(), 1u);
  EXPECT_EQ(out.attempts[0].time_bound, 6);
  EXPECT_EQ(out.attempts[0].result, "sat");
  EXPECT_GT(out.attempts[0].conflicts, 0u);
  const std::string stats = out.stats_string();
  EXPECT_NE(stats.find("R=6 result=sat"), std::string::npos) << stats;
  EXPECT_NE(stats.find("found=1"), std::string::npos) << stats;
}

// The serve half of the contract: a JobQueue-driven "fleet" of workers
// running the canonical per-cube scan produces the same winner, the same
// certified table, and byte-identical results no matter the completion
// order -- transport-free here; process-level chaos lives in CI.
TEST(SynthesizePortfolio, ServeWorkersMatchLocalEngineBitIdentically) {
  const synthesis::SynthJobSpec job = job_4_1_3();

  // Local reference run.
  synthesis::ParallelOptions opt = fast_options();
  opt.threads = 2;
  synthesis::ParallelOutcomeInfo info;
  const synthesis::SynthesisOutcome local = synthesize_portfolio(job.spec, opt, &info);
  ASSERT_TRUE(local.found);

  const auto drive_queue = [&](serve::JobQueue& queue) {
    // A minimal worker loop: lease one cube at a time, solve it with the
    // canonical scan (exactly what serve::run_worker does), record it.
    const auto never_held = [](const std::string&, std::uint64_t) { return false; };
    serve::JobQueue::Assignment a;
    while (queue.assign(1, never_held, a)) {
      const synthesis::SynthJobSpec leased =
          synthesis::SynthJobSpec::from_json(*a.spec);
      const synthesis::CubeResult r = synthesis::solve_cube(leased, a.group_begin);
      const std::string table_text = r.verdict == synthesis::CubeVerdict::kSat
                                         ? counting::table_to_string(r.table)
                                         : std::string();
      EXPECT_TRUE(queue.record_cube(a.job, a.group_begin,
                                    synthesis::to_string(r.verdict), r.config_index,
                                    r.conflicts, r.decisions, r.restarts, table_text));
    }
    EXPECT_TRUE(queue.job_complete("rediscover"));
    return queue.results_text("rediscover");
  };

  // In-order fleet.
  TempDir dir_a;
  serve::JobQueue queue_a(dir_a.path.string());
  queue_a.submit("rediscover", job.to_json());
  const std::string results_a = drive_queue(queue_a);

  // Out-of-order fleet: a straggler-free worker lands the SAT cube first,
  // draining the moot cubes; the survivors below it finish later.
  TempDir dir_b;
  serve::JobQueue queue_b(dir_b.path.string());
  queue_b.submit("rediscover", job.to_json());
  {
    const synthesis::CubeResult r = synthesis::solve_cube(job, info.winning_cube);
    ASSERT_EQ(r.verdict, synthesis::CubeVerdict::kSat);
    ASSERT_TRUE(queue_b.record_cube("rediscover", info.winning_cube, "sat",
                                    r.config_index, r.conflicts, r.decisions,
                                    r.restarts, counting::table_to_string(r.table)));
    EXPECT_FALSE(queue_b.job_complete("rediscover"));
  }
  const std::string results_b = drive_queue(queue_b);

  EXPECT_EQ(results_a, results_b);

  // Parse the serve results and compare against the local engine.
  const serve::SynthResults parsed = serve::parse_synth_results(results_a);
  ASSERT_TRUE(parsed.found);
  EXPECT_EQ(parsed.winning_cube, info.winning_cube);
  EXPECT_EQ(parsed.cubes.size(), info.winning_cube + 1);
  const counting::TransitionTable served =
      counting::table_from_string(parsed.table_text);
  EXPECT_EQ(served.g, local.table.g);
  EXPECT_EQ(served.h, local.table.h);
  const synthesis::VerifyResult vr = synthesis::verify(counting::TableAlgorithm(served));
  ASSERT_TRUE(vr.ok) << vr.failure;
  EXPECT_EQ(vr.worst_case_time, local.exact_time);

  // Restart persistence: reload the state directory and the finished job's
  // results are still byte-identical.
  serve::JobQueue reloaded(dir_a.path.string());
  EXPECT_TRUE(reloaded.job_complete("rediscover"));
  EXPECT_EQ(reloaded.results_text("rediscover"), results_a);
}

TEST(ServeQueue, SynthJobDrainsAboveTheWinner) {
  TempDir dir;
  serve::JobQueue queue(dir.path.string());
  const synthesis::SynthJobSpec job = job_4_1_3();
  const auto outcome = queue.submit("drain", job.to_json());
  EXPECT_EQ(outcome.groups, 8u);
  const auto never_held = [](const std::string&, std::uint64_t) { return false; };

  // Record a SAT verdict on cube 2 (the known winner of this instance):
  // cubes 3..7 become moot, only 0 and 1 stay assignable.
  const synthesis::CubeResult r = synthesis::solve_cube(job, 2);
  ASSERT_EQ(r.verdict, synthesis::CubeVerdict::kSat);
  ASSERT_TRUE(queue.record_cube("drain", 2, "sat", r.config_index, r.conflicts,
                                r.decisions, r.restarts,
                                counting::table_to_string(r.table)));
  EXPECT_EQ(queue.pending_groups(), 2u);
  serve::JobQueue::Assignment a;
  ASSERT_TRUE(queue.assign(8, never_held, a));
  EXPECT_EQ(a.group_begin, 0u);
  EXPECT_EQ(a.group_end, 2u);  // capped at the winner, not the full grid

  // Duplicate completes are benign; invalid records are rejected loudly.
  EXPECT_FALSE(queue.record_cube("drain", 2, "sat", r.config_index, r.conflicts,
                                 r.decisions, r.restarts,
                                 counting::table_to_string(r.table)));
  EXPECT_THROW(queue.record_cube("drain", 0, "sat", 0, 0, 0, 0, ""),
               std::invalid_argument);  // SAT without a model
  EXPECT_THROW(queue.record_cube("drain", 0, "maybe", 0, 0, 0, 0, ""),
               std::invalid_argument);  // bad verdict
  EXPECT_THROW(queue.record_cube("drain", 9, "unsat", 0, 0, 0, 0, ""),
               std::invalid_argument);  // cube outside the grid
}

// --- Prefilter + CEGAR building blocks ---------------------------------------

TEST(Prefilter, AcceptsTheCertifiedTableAndRejectsACorruptedOne) {
  const counting::TransitionTable good = synthesis::known_table_4_1_3states();
  const std::uint64_t certified = good.verified_time.value();
  EXPECT_TRUE(synthesis::prefilter_candidate(good, certified, 64));
  // Break the output map: the counter can never tick correctly.
  counting::TransitionTable bad = good;
  for (auto& h : bad.h) h = 0;
  EXPECT_FALSE(synthesis::prefilter_candidate(bad, certified, 64));
}

TEST(BlockingClause, CoversEveryTableEntryNegated) {
  const synthesis::Encoder enc(spec_4_1_3());
  const counting::TransitionTable table = synthesis::known_table_4_1_3states();
  const std::vector<sat::ExtLit> clause = synthesis::blocking_clause_for(enc, table);
  ASSERT_EQ(clause.size(), table.g.size() + table.h.size());
  // Every literal negates the table's chosen entry.
  std::size_t i = 0;
  const std::uint64_t vecs = table.g.size();  // cyclic: node_dim == 1
  for (std::uint64_t vec = 0; vec < vecs; ++vec, ++i) {
    EXPECT_EQ(clause[i], -enc.g_var(0, vec, table.g[static_cast<std::size_t>(vec)]));
  }
  for (std::uint64_t s = 0; s < table.h.size(); ++s, ++i) {
    EXPECT_EQ(clause[i], -enc.h_var(0, s, table.h[static_cast<std::size_t>(s)]));
  }
}

// --- DIMACS round-trip of the encoding ---------------------------------------

TEST(EmitCnf, DimacsRoundTripPreservesTheVerdict) {
  synthesis::SynthesisSpec spec = spec_4_1_3();
  spec.max_time = 2;  // small instance: R=2 is UNSAT for this spec
  const synthesis::Encoder enc(spec);
  std::ostringstream emitted;
  sat::write_dimacs(enc.cnf(), emitted);
  std::istringstream in(emitted.str());
  const sat::Cnf parsed = sat::parse_dimacs(in);
  EXPECT_EQ(parsed.num_vars, enc.cnf().num_vars);
  EXPECT_EQ(parsed.clauses.size(), enc.cnf().clauses.size());

  sat::Solver direct;
  enc.cnf().load_into(direct);
  sat::Solver round_tripped;
  parsed.load_into(round_tripped);
  const sat::Result want = direct.solve();
  EXPECT_EQ(round_tripped.solve(), want);
  EXPECT_EQ(want, sat::Result::kUnsat);
}

}  // namespace
