// Smoke test: the smallest Theorem 1 instance, A(4,1) built from the trivial
// one-node counter, stabilises within its proven bound under every adversary.
#include <gtest/gtest.h>

#include "boosting/planner.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"

namespace {

using namespace synccount;

TEST(BoostingSmoke, FourNodesOneFaultStabilises) {
  const auto algo = boosting::build_plan(boosting::plan_practical(1, 8));
  EXPECT_EQ(algo->num_nodes(), 4);
  EXPECT_EQ(algo->resilience(), 1);
  EXPECT_EQ(algo->modulus(), 8u);
  const auto bound = algo->stabilisation_bound();
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(*bound, 2304u);  // tau(2m)^k = 9*256

  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_prefix(4, 1);
  cfg.max_rounds = *bound + 300;
  cfg.seed = 99;
  auto adv = sim::make_adversary("split");
  const sim::RunResult res = sim::run_execution(cfg, *adv, 100);
  EXPECT_TRUE(res.stabilised);
  EXPECT_LE(res.stabilisation_round, *bound);
}

}  // namespace
