// Tests for Section 5: the sampled phase king (Lemma 8 thresholds), the
// pulling-model boosted counter (Theorem 4), message accounting, and the
// pseudo-random fixed-seed variant against oblivious adversaries (Cor. 5).
#include <gtest/gtest.h>

#include "counting/trivial.hpp"
#include "phaseking/phase_king.hpp"
#include "pulling/pulling_counter.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"

namespace {

using namespace synccount;
using pulling::PullingBoostedCounter;
using pulling::PullParams;
using pulling::SamplingMode;

std::shared_ptr<const PullingBoostedCounter> make_pulling_4_1(int M,
                                                              SamplingMode mode,
                                                              std::uint64_t C = 8) {
  auto base = std::make_shared<counting::TrivialCounter>(2304);
  PullParams p;
  p.k = 4;
  p.F = 1;
  p.C = C;
  p.sample_size = M;
  p.mode = mode;
  return std::make_shared<PullingBoostedCounter>(base, p);
}

// --- Sampled phase king (Lemma 8) --------------------------------------------

TEST(SampledPhaseKing, KeepsValueWithTwoThirdsQuorum) {
  const phaseking::Params p{9, 2, 8};
  // 6 of 9 samples = 2/3 -> keep and increment.
  const std::uint64_t samples[] = {5, 5, 5, 5, 5, 5, 1, 2, 3};
  const auto out = phaseking::step_sampled(p, 0, phaseking::Registers{5, false}, samples, 0);
  EXPECT_EQ(out.a, 6u);
}

TEST(SampledPhaseKing, ResetsBelowTwoThirds) {
  const phaseking::Params p{9, 2, 8};
  const std::uint64_t samples[] = {5, 5, 5, 5, 5, 0, 1, 2, 3};  // 5/9 < 2/3
  const auto out = phaseking::step_sampled(p, 0, phaseking::Registers{5, false}, samples, 0);
  EXPECT_EQ(out.a, phaseking::kInfinity);
}

TEST(SampledPhaseKing, MiddleInstructionUsesThirdThreshold) {
  const phaseking::Params p{9, 2, 8};
  // z_4 = 4 > M/3 = 3 -> a becomes 4+1; z_own(7) = 2 < 2/3 M -> d = 0.
  const std::uint64_t samples[] = {4, 4, 4, 4, 7, 7, 1, 2, 3};
  const auto out = phaseking::step_sampled(p, 1, phaseking::Registers{7, true}, samples, 0);
  EXPECT_FALSE(out.d);
  EXPECT_EQ(out.a, 5u);
}

TEST(SampledPhaseKing, KingAdoptionPullsDirectly) {
  const phaseking::Params p{9, 2, 8};
  const std::uint64_t samples[] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  const auto out =
      phaseking::step_sampled(p, 2, phaseking::Registers{phaseking::kInfinity, false}, samples, 6);
  EXPECT_EQ(out.a, 7u);  // adopted king's 6, incremented
  EXPECT_TRUE(out.d);
}

// --- Construction -------------------------------------------------------------

TEST(PullingCounter, ParameterChecks) {
  auto base = std::make_shared<counting::TrivialCounter>(2304);
  PullParams p;
  p.k = 4;
  p.F = 1;
  p.C = 8;
  p.sample_size = 0;  // bad
  EXPECT_THROW(PullingBoostedCounter(base, p), std::invalid_argument);
  p.sample_size = 8;
  p.gamma = -1;
  EXPECT_THROW(PullingBoostedCounter(base, p), std::invalid_argument);
  p.gamma = 0.5;
  EXPECT_NO_THROW(PullingBoostedCounter(base, p));
}

TEST(PullingCounter, Theorem4ResilienceConstraint) {
  // F = 1, N = 4: need F < N/(3+gamma); gamma = 1.5 -> 4/4.5 < 1 fails.
  auto base = std::make_shared<counting::TrivialCounter>(2304);
  PullParams p;
  p.k = 4;
  p.F = 1;
  p.C = 8;
  p.sample_size = 8;
  p.gamma = 1.5;
  EXPECT_THROW(PullingBoostedCounter(base, p), std::invalid_argument);
}

TEST(PullingCounter, StateLayoutMatchesTheorem4) {
  const auto algo = make_pulling_4_1(8, SamplingMode::kFresh);
  // S(P) = S(A) + ceil(log(C+1)) + 1 -- same as the broadcast construction.
  EXPECT_EQ(algo->state_bits(), 12 + 4 + 1);
  EXPECT_FALSE(algo->deterministic());
  EXPECT_EQ(*algo->stabilisation_bound(), 2304u);
}

// --- Message accounting ---------------------------------------------------------

TEST(PullingCounter, PullsPerRoundAreOkM) {
  const int M = 6;
  const auto algo = make_pulling_4_1(M, SamplingMode::kFresh);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.max_rounds = 50;
  cfg.seed = 7;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 10);
  // Per round: n_inner (own block) + k*M (block samples) + M (phase king)
  // + 1 (king) = 1 + 24 + 6 + 1 = 32.
  EXPECT_EQ(res.max_pulls_per_round, 32u);
  EXPECT_DOUBLE_EQ(res.avg_pulls_per_round, 32.0);
}

TEST(PullingCounter, PullsScaleLinearlyInM) {
  for (int M : {4, 8, 16}) {
    const auto algo = make_pulling_4_1(M, SamplingMode::kFresh);
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.max_rounds = 10;
    cfg.seed = 8;
    auto adv = sim::make_adversary("random");
    const auto res = sim::run_execution(cfg, *adv, 2);
    EXPECT_EQ(res.max_pulls_per_round, static_cast<std::uint64_t>(1 + 4 * M + M + 1));
  }
}

// --- Stabilisation (Theorem 4) ---------------------------------------------------

TEST(PullingCounter, FaultFreePersistsForever) {
  // Without faults, every sample agrees after stabilisation, so the sampled
  // thresholds are met deterministically: one infinite valid suffix.
  const auto algo = make_pulling_4_1(8, SamplingMode::kFresh);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.max_rounds = 2304 + 300;
  cfg.seed = 9;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 150);
  EXPECT_TRUE(res.stabilised);
}

TEST(PullingCounter, ByzantineFractionNearThresholdStillYieldsLongWindows) {
  // N = 4, F = 1 is the harshest regime for Theorem 4: the correct fraction
  // (3/4) sits barely above the sampled 2/3 threshold, so each round fails
  // with small-but-material probability ("the algorithm retains a
  // probability to fail in each round even after stabilisation", Section 1).
  // The honest claim at this scale: long valid counting windows appear.
  const auto algo = make_pulling_4_1(256, SamplingMode::kFresh);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_prefix(4, 1);
  cfg.max_rounds = 2304 + 600;
  cfg.seed = 9;
  auto adv = sim::make_adversary("split");
  const auto res = sim::run_execution(cfg, *adv, 150);
  EXPECT_GE(res.max_window, 30u);
}

TEST(PullingCounter, LargerSamplesGiveLongerWindows) {
  // Sweep M: the post-stabilisation failure probability drops with M, so the
  // longest valid window grows (Corollary 4's "boost the probability of
  // success... by increasing the sample size").
  std::vector<std::uint64_t> windows;
  for (int M : {16, 64, 256}) {
    const auto algo = make_pulling_4_1(M, SamplingMode::kFresh);
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_prefix(4, 1);
    cfg.max_rounds = 2304 + 600;
    cfg.seed = 10;
    auto adv = sim::make_adversary("split");
    windows.push_back(sim::run_execution(cfg, *adv, 150).max_window);
  }
  EXPECT_LT(windows.front(), windows.back());
}

TEST(PullingCounter, FixedSeedsAgainstObliviousAdversary) {
  // Corollary 5: fix the sampling bits once. A seed either yields a sample
  // set with correct majorities everywhere (then the counter behaves
  // deterministically and persists forever) or it does not; with high
  // probability over seeds it does. Everything below is deterministic given
  // the seeds, so this is a stable regression test: 4 of 5 seeds work.
  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto base = std::make_shared<counting::TrivialCounter>(2304);
    PullParams p;
    p.k = 4;
    p.F = 1;
    p.C = 8;
    p.sample_size = 48;
    p.mode = SamplingMode::kFixed;
    p.seed = seed * 977;
    const auto algo = std::make_shared<PullingBoostedCounter>(base, p);
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_prefix(4, 1);
    cfg.max_rounds = 2304 + 300;
    cfg.seed = 100 + seed;
    auto adv = sim::make_adversary("split");
    const auto res = sim::run_execution(cfg, *adv, 150);
    successes += res.stabilised ? 1 : 0;
  }
  EXPECT_GE(successes, 4);
}

TEST(PullingCounter, BuilderStacksDeterministicLevels) {
  const auto algo = pulling::build_pulling_practical(3, 16, 48, SamplingMode::kFresh);
  EXPECT_EQ(algo->num_nodes(), 12);
  EXPECT_EQ(algo->resilience(), 3);
  EXPECT_EQ(algo->modulus(), 16u);
  EXPECT_FALSE(algo->deterministic());

  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_block_concentrated(3, 4, 1, 3);
  cfg.max_rounds = *algo->stabilisation_bound() + 600;
  cfg.seed = 11;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 150);
  // F/N = 1/4 again: agreement comes in windows, not necessarily a final
  // infinite suffix. Require at least one full tau = 3(F+2) = 15 window,
  // the quantum Lemma 3 needs.
  EXPECT_GE(res.max_window, 15u);
  // Pulls: own 12-node block (the inner deterministic level reads its own
  // sub-block from the same pulled states, so it adds nothing) is metered as
  // n_inner = 4 by the top level, plus k*M + M + 1 for votes and phase king.
  EXPECT_EQ(res.max_pulls_per_round, 4u + 3 * 48u + 48u + 1u);
}

TEST(PullingCounter, MultiLevelPullingComposes) {
  // Corollary 4 with sampling at both recursion levels: pulls add up per
  // level and the counter still produces long valid windows.
  const auto algo =
      pulling::build_pulling_practical(3, 16, 32, SamplingMode::kFresh, 0x5eed, 2);
  EXPECT_EQ(algo->num_nodes(), 12);
  EXPECT_EQ(algo->resilience(), 3);

  // Fault-free structural run: every sampled threshold is met
  // deterministically after stabilisation, so the composition must produce
  // one final valid suffix; with faults both levels sit near the 2/3
  // threshold margin (covered by the single-level window tests above).
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.max_rounds = *algo->stabilisation_bound() + 400;
  cfg.seed = 12;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 150);
  EXPECT_TRUE(res.stabilised);
  // Level 1 (k=4 blocks of 1): 1 + 4*32 + 32 + 1 = 162;
  // level 2 (k=3 blocks of 4): 4 + 3*32 + 32 + 1 = 133; total 295.
  EXPECT_EQ(res.max_pulls_per_round, 162u + 133u);
}

TEST(PullingCounter, CanonicalOutputsInRange) {
  const auto algo = make_pulling_4_1(8, SamplingMode::kFresh, 6);
  util::Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const auto s = counting::arbitrary_state(*algo, rng);
    EXPECT_LT(algo->output(0, s), 6u);
  }
}

}  // namespace
