#!/usr/bin/env python3
"""Tests for tools/lint/synccount_lint.py.

Each rule D1-D5 must fire at exactly the expected (line, rule) sites on its
fixture under tests/lint_fixtures/, a valid suppression must silence its
finding, malformed suppressions must themselves be findings, and -- when a
compile database is available (SYNCCOUNT_LINT_COMPDB, set by ctest) -- the
real tree must come out with zero unsuppressed findings.

Runs under plain unittest so it needs nothing beyond the stdlib:

    python3 tests/lint_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO_ROOT, "tools", "lint", "synccount_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


def run_lint(*args):
    """Runs the linter; returns (exit code, stdout lines, stderr)."""
    proc = subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    lines = [ln for ln in proc.stdout.splitlines() if ln.strip()]
    return proc.returncode, lines, proc.stderr


def findings_of(lines):
    """Parses `file:line: rule: message` diagnostics into (file, line, rule)."""
    out = []
    for line in lines:
        parts = line.split(":", 3)
        if len(parts) == 4 and parts[1].isdigit():
            out.append((parts[0], int(parts[1]), parts[2].strip()))
    return out


def lint_fixture(name):
    rc, lines, stderr = run_lint("--files", os.path.join(FIXTURES, name))
    return rc, findings_of(lines), stderr


class FixtureRules(unittest.TestCase):
    """Each rule fires exactly where the fixture plants its violation."""

    def assert_findings(self, name, expected):
        rc, found, stderr = lint_fixture(name)
        rel = os.path.join("tests", "lint_fixtures", name)
        self.assertEqual(rc, 2, stderr)
        self.assertEqual(found, [(rel, line, rule) for line, rule in expected])

    def test_d1_nondet_fires_on_every_source(self):
        self.assert_findings("d1_nondet.cpp", [
            (9, "nondet"),   # std::random_device
            (10, "nondet"),  # srand
            (11, "nondet"),  # rand
            (12, "nondet"),  # time
            (13, "nondet"),  # steady_clock::now
            (14, "nondet"),  # getenv
        ])

    def test_d2_unordered_fires_in_wire_path(self):
        self.assert_findings("d2_unordered.cpp", [(9, "unordered-iter")])

    def test_d3_rawio_fires_on_each_write_style(self):
        self.assert_findings("d3_rawio.cpp", [
            (13, "raw-io"),  # std::ofstream
            (15, "raw-io"),  # ::open
            (16, "raw-io"),  # ::write
        ])

    def test_d4_global_state_fires_only_on_mutable_statics(self):
        self.assert_findings("d4_global.cpp", [
            (10, "global-state"),  # static int calls
            (11, "global-state"),  # static std::string last_tag
            # const/constexpr/atomic/thread_local/mutex lines stay quiet.
        ])

    def test_d5_cast_fires_on_bare_reinterpret_cast(self):
        self.assert_findings("d5_cast.cpp", [(6, "cast")])

    def test_valid_suppressions_silence_their_findings(self):
        rc, found, stderr = lint_fixture("suppressed.cpp")
        self.assertEqual(rc, 0, f"findings: {found}\n{stderr}")
        self.assertEqual(found, [])
        self.assertIn("2 suppressed", stderr)

    def test_clean_fixture_passes(self):
        rc, found, stderr = lint_fixture("clean.cpp")
        self.assertEqual(rc, 0, f"findings: {found}\n{stderr}")
        self.assertEqual(found, [])
        self.assertIn("0 suppressed", stderr)


class SuppressionAudit(unittest.TestCase):
    """The audit trail stays honest: bad suppressions are findings."""

    def lint_source(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", dir=FIXTURES, delete=False) as f:
            f.write(text)
            path = f.name
        try:
            rc, lines, stderr = run_lint("--files", path)
        finally:
            os.unlink(path)
        return rc, findings_of(lines), stderr

    def test_missing_reason_is_a_finding(self):
        rc, found, _ = self.lint_source(
            "// synccount-lint: allow(cast)\n"
            "int* p = reinterpret_cast<int*>(0);\n")
        self.assertEqual(rc, 2)
        self.assertEqual([f[2] for f in found], ["suppression", "cast"])

    def test_unknown_rule_is_a_finding(self):
        rc, found, _ = self.lint_source(
            "// synccount-lint: allow(no-such-rule) -- because\n")
        self.assertEqual(rc, 2)
        self.assertEqual([f[2] for f in found], ["suppression"])

    def test_unused_suppression_is_a_finding(self):
        rc, found, _ = self.lint_source(
            "// synccount-lint: allow(cast) -- nothing to suppress here\n"
            "int x = 0;\n")
        self.assertEqual(rc, 2)
        self.assertEqual([f[2] for f in found], ["suppression"])

    def test_suppression_does_not_leak_past_code(self):
        # The allow() is spent on the intervening code line, so the cast on
        # the line after it must still be reported.
        rc, found, _ = self.lint_source(
            "// synccount-lint: allow(cast) -- covers the next code line\n"
            "int y = 0;\n"
            "int* p = reinterpret_cast<int*>(0);\n")
        self.assertEqual(rc, 2)
        self.assertEqual([(f[1], f[2]) for f in found],
                         [(1, "suppression"), (3, "cast")])

    def test_path_directive_rejected_outside_fixtures(self):
        with tempfile.NamedTemporaryFile("w", suffix=".cpp",
                                         dir=os.path.join(REPO_ROOT, "tests"),
                                         delete=False) as f:
            f.write("// synccount-lint: path(src/serve/x.cpp)\nint x;\n")
            path = f.name
        try:
            rc, lines, _ = run_lint("--files", path)
        finally:
            os.unlink(path)
        self.assertEqual(rc, 2)
        self.assertEqual([f[2] for f in findings_of(lines)], ["suppression"])


class FixListReport(unittest.TestCase):
    def test_json_report_matches_diagnostics(self):
        with tempfile.TemporaryDirectory() as tmp:
            report_path = os.path.join(tmp, "report.json")
            rc, lines, _ = run_lint(
                "--files", os.path.join(FIXTURES, "d5_cast.cpp"),
                "--fix-list", report_path)
            self.assertEqual(rc, 2)
            with open(report_path, encoding="utf-8") as f:
                report = json.load(f)
        self.assertEqual(report["version"], 1)
        self.assertEqual(report["files_analyzed"], 1)
        self.assertEqual(
            [(f["file"], f["line"], f["rule"]) for f in report["findings"]],
            findings_of(lines))

    def test_quiet_mode_prints_nothing(self):
        rc, lines, stderr = run_lint(
            "--files", os.path.join(FIXTURES, "d5_cast.cpp"), "--quiet")
        self.assertEqual(rc, 2)
        self.assertEqual(lines, [])
        self.assertEqual(stderr, "")


class FullTree(unittest.TestCase):
    """The real tree is lint-clean (the PR's acceptance criterion)."""

    def test_compile_database_is_clean(self):
        compdb = os.environ.get("SYNCCOUNT_LINT_COMPDB")
        if not compdb:
            self.skipTest("SYNCCOUNT_LINT_COMPDB not set (run via ctest, or "
                          "export it to a build dir with compile_commands.json)")
        rc, lines, stderr = run_lint("--compdb", compdb)
        self.assertEqual(rc, 0, "tree has unsuppressed findings:\n"
                         + "\n".join(lines) + "\n" + stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
