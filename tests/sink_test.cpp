// Sink-layer tests: deterministic delivery order (cells in cell order,
// groups in group order, any thread count), the built-in sinks, and the
// checkpoint/resume contract -- a resumed run's files are byte-identical to
// an uninterrupted run's, across execution backends.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "boosting/planner.hpp"
#include "counting/table_algorithm.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"
#include "sim/sink.hpp"
#include "synthesis/known_tables.hpp"
#include "util/json.hpp"

namespace {

using namespace synccount;

std::string temp_path(const std::string& tag) {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("synccount-sink-test-" + std::to_string(::getpid()) + "-" + tag + "-" +
           std::to_string(counter++)))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempFile {
  explicit TempFile(const std::string& tag) : path(temp_path(tag)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// A grid whose groups span the composed batched backend (silent, split) and
// the scalar backend (lookahead), with several groups per run.
sim::ExperimentSpec mixed_backend_spec() {
  sim::ExperimentSpec spec;
  spec.algorithm = *counting::describe(boosting::build_plan(boosting::plan_practical(1, 2)));
  spec.adversaries = {"silent", "split", "lookahead"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}, {"none", {}}};
  spec.seeds = 5;
  spec.stop_after_stable = 60;
  spec.margin = 50;
  return spec;
}

sim::ExperimentSpec table_spec() {
  sim::ExperimentSpec spec;
  spec.algo = std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_3states());
  spec.adversaries = {"silent", "split", "random"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}, {"none", {}}};
  spec.seeds = 70;  // crosses the 64-lane chunk boundary
  spec.stop_after_stable = 40;
  spec.margin = 30;
  return spec;
}

// Records the exact delivery sequence.
class SequenceSink final : public sim::Sink {
 public:
  std::vector<std::string> events;
  void on_start(const sim::ExperimentSpec&, const sim::ShardPlan&) override {
    events.push_back("start");
  }
  void on_cell(const sim::CellOutcome& cell) override {
    events.push_back("cell:" + std::to_string(cell.cell_index));
  }
  void on_group(std::size_t group, const sim::AggregateResult& agg) override {
    events.push_back("group:" + std::to_string(group) + ":" +
                     std::to_string(agg.runs));
  }
  void on_done(const sim::ExperimentResult&) override { events.push_back("done"); }
};

TEST(Sink, DeliveryOrderIsDeterministicAcrossThreadCounts) {
  const auto spec = mixed_backend_spec();
  SequenceSink serial_seq, parallel_seq;
  const sim::Engine serial(1);
  const sim::Engine parallel4(4);
  serial.run(spec, {&serial_seq});
  parallel4.run(spec, {&parallel_seq});

  // The canonical sequence: start, then per group g its cells in order
  // followed by the group event, then done.
  std::vector<std::string> expected = {"start"};
  for (std::size_t g = 0; g < sim::group_count(spec); ++g) {
    for (int s = 0; s < spec.seeds; ++s) {
      expected.push_back("cell:" + std::to_string(g * spec.seeds + s));
    }
    expected.push_back("group:" + std::to_string(g) + ":" + std::to_string(spec.seeds));
  }
  expected.push_back("done");
  EXPECT_EQ(serial_seq.events, expected);
  EXPECT_EQ(parallel_seq.events, expected);
}

TEST(Sink, MemorySinkMatchesReturnedResult) {
  const auto spec = mixed_backend_spec();
  sim::MemorySink mem;
  const sim::Engine engine(4);
  const auto result = engine.run(spec, {&mem});

  ASSERT_EQ(mem.cells().size(), result.cells.size());
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    EXPECT_EQ(mem.cells()[i].cell_index, result.cells[i].cell_index);
    EXPECT_EQ(mem.cells()[i].seed, result.cells[i].seed);
    EXPECT_EQ(mem.cells()[i].result.stabilisation_round,
              result.cells[i].result.stabilisation_round);
  }
  ASSERT_EQ(mem.groups().size(), sim::group_count(spec));
  // Merging the per-group aggregates in group order is bit-identical to the
  // engine's cell-order fold.
  EXPECT_EQ(sim::aggregate_to_json(mem.total()).dump(),
            sim::aggregate_to_json(result.total).dump());
}

TEST(Sink, ShardDeliveryCoversOnlyTheShard) {
  const auto spec = mixed_backend_spec();
  const auto plan = sim::plan_shards(spec, 3, 1);
  SequenceSink seq;
  const sim::Engine engine(2);
  engine.run(spec, plan, {&seq});
  ASSERT_GE(seq.events.size(), 2u);
  EXPECT_EQ(seq.events.front(), "start");
  EXPECT_EQ(seq.events.back(), "done");
  // First delivered cell is the shard's first global cell; groups are global.
  EXPECT_EQ(seq.events[1], "cell:" + std::to_string(plan.group_begin * spec.seeds));
  EXPECT_EQ(seq.events[1 + static_cast<std::size_t>(spec.seeds)],
            "group:" + std::to_string(plan.group_begin) + ":" + std::to_string(spec.seeds));
}

TEST(Sink, RecordSinkRetainsTracesAndTraceSinkAloneDoesNot) {
  auto spec = mixed_backend_spec();
  const sim::Engine engine(1);

  // A trace sink wants outputs but does not retain them: the returned cells
  // must come back trace-free (streamed to disk, not buffered).
  {
    TempFile trace("trace-noretain");
    sim::TraceSink sink(trace.path, "jsonl", /*outputs=*/true);
    const auto result = engine.run(spec, {&sink});
    for (const auto& cell : result.cells) {
      EXPECT_TRUE(cell.result.outputs.empty());
    }
  }
  // Adding a RecordSink keeps them.
  {
    TempFile trace("trace-retain");
    sim::TraceSink sink(trace.path, "jsonl", /*outputs=*/true);
    sim::RecordSink record(/*outputs=*/true);
    const auto result = engine.run(spec, {&sink, &record});
    for (const auto& cell : result.cells) {
      EXPECT_FALSE(cell.result.outputs.empty());
    }
  }
  // No sink at all: nothing recorded in the first place.
  {
    const auto result = engine.run(spec);
    for (const auto& cell : result.cells) {
      EXPECT_TRUE(cell.result.outputs.empty());
      EXPECT_TRUE(cell.result.states.empty());
    }
  }
}

void expect_trace_invariant(const sim::ExperimentSpec& base, const std::string& format,
                            bool outputs) {
  // The trace file must be bit-identical across thread counts AND execution
  // backends (auto = batched where eligible vs forced scalar).
  std::string reference;
  for (const int threads : {1, 4}) {
    for (const sim::Backend backend : {sim::Backend::kAuto, sim::Backend::kScalar}) {
      sim::ExperimentSpec spec = base;
      spec.backend = backend;
      TempFile trace("trace-bitid");
      sim::TraceSink sink(trace.path, format, outputs);
      const sim::Engine engine(threads);
      const auto result = engine.run(spec, {&sink});
      if (backend == sim::Backend::kAuto) {
        EXPECT_GT(result.batched_cells, 0u);  // the comparison spans backends
      } else {
        EXPECT_EQ(result.batched_cells, 0u);
      }
      const std::string bytes = slurp(trace.path);
      EXPECT_FALSE(bytes.empty());
      if (reference.empty()) {
        reference = bytes;
      } else {
        EXPECT_EQ(bytes, reference)
            << "threads=" << threads << " backend=" << (backend == sim::Backend::kAuto);
      }
    }
  }
}

TEST(TraceSink, BitIdenticalAcrossBackendsAndThreads_ComposedJsonl) {
  expect_trace_invariant(mixed_backend_spec(), "jsonl", /*outputs=*/true);
}

TEST(TraceSink, BitIdenticalAcrossBackendsAndThreads_BitSlicedJsonl) {
  expect_trace_invariant(table_spec(), "jsonl", /*outputs=*/false);
}

TEST(TraceSink, BitIdenticalAcrossBackendsAndThreads_Csv) {
  expect_trace_invariant(table_spec(), "csv", /*outputs=*/false);
}

TEST(TraceSink, BitIdenticalAcrossBackendsAndThreads_ComposedBin) {
  expect_trace_invariant(mixed_backend_spec(), "bin", /*outputs=*/false);
}

TEST(TraceSink, BitIdenticalAcrossBackendsAndThreads_BitSlicedBin) {
  expect_trace_invariant(table_spec(), "bin", /*outputs=*/false);
}

TEST(TraceSink, BinDecodesBackToTheCellRows) {
  const auto spec = table_spec();
  TempFile trace("trace-bin");
  sim::TraceSink sink(trace.path, "bin");
  const sim::Engine engine(2);
  const auto result = engine.run(spec, {&sink});

  const sim::BinaryTrace decoded = sim::read_binary_trace(slurp(trace.path));
  EXPECT_EQ(decoded.header.adversaries, spec.adversaries);
  ASSERT_EQ(decoded.header.placements.size(), spec.placements.size());
  for (std::size_t i = 0; i < spec.placements.size(); ++i) {
    EXPECT_EQ(decoded.header.placements[i], spec.placements[i].name);
  }
  EXPECT_EQ(decoded.blocks, 1 + sim::group_count(spec));
  ASSERT_EQ(decoded.rows.size(), result.cells.size());
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& cell = result.cells[i];
    const sim::TraceRow& row = decoded.rows[i];
    EXPECT_EQ(row.cell, cell.cell_index);
    EXPECT_EQ(row.adversary, cell.adversary);
    EXPECT_EQ(row.placement, cell.placement);
    EXPECT_EQ(row.seed_index, cell.seed_index);
    EXPECT_EQ(row.seed, cell.seed);
    EXPECT_EQ(row.rounds, cell.result.rounds);
    EXPECT_EQ(row.stabilised, cell.result.stabilised);
    EXPECT_EQ(row.stabilisation_round, cell.result.stabilisation_round);
    EXPECT_EQ(row.suffix_length, cell.result.suffix_length);
    EXPECT_EQ(row.max_window, cell.result.max_window);
    EXPECT_EQ(row.max_pulls, cell.result.max_pulls_per_round);
    // Bit-exact double round-trip, not approximate.
    EXPECT_EQ(row.avg_pulls, cell.result.avg_pulls_per_round);
  }
}

TEST(TraceSink, BinRejectsTornTailsAndBitFlips) {
  const auto spec = mixed_backend_spec();
  TempFile trace("trace-bin-damage");
  {
    sim::TraceSink sink(trace.path, "bin");
    sim::Engine(1).run(spec, {&sink});
  }
  const std::string bytes = slurp(trace.path);
  EXPECT_NO_THROW(sim::read_binary_trace(bytes));
  // A torn tail (mid-block cut) and a flipped payload byte both fail loudly.
  EXPECT_THROW(sim::read_binary_trace(bytes.substr(0, bytes.size() - 3)),
               std::invalid_argument);
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x20;
  EXPECT_THROW(sim::read_binary_trace(flipped), std::invalid_argument);
  // Trailing garbage after the last whole block is not silently ignored.
  EXPECT_THROW(sim::read_binary_trace(bytes + "x"), std::invalid_argument);
}

TEST(TraceSink, BinResumeProducesByteIdenticalFiles) {
  const auto spec = mixed_backend_spec();
  const auto plan = sim::plan_shards(spec, 1, 0);
  const std::size_t G = sim::group_count(spec);

  TempFile full("bin-ref");
  {
    sim::TraceSink sink(full.path, "bin");
    sim::Engine(2).run(spec, plan, {&sink});
  }
  const std::string reference = slurp(full.path);

  // Die after every possible prefix (0..G-1 finished groups), trim to whole
  // blocks (header + one block per finished group), resume the remaining
  // groups: bytes must match the uninterrupted run exactly.
  for (std::size_t done = 0; done < G; ++done) {
    TempFile trace("bin-resume");
    {
      sim::TraceSink sink(trace.path, "bin");
      sim::Engine(1).run(spec, plan, {&sink});
    }
    sim::truncate_to_blocks(trace.path, 1 + done);

    sim::ShardPlan rest = plan;
    rest.group_begin = done;
    sim::TraceSink sink(trace.path, "bin", /*outputs=*/false, /*resume=*/true);
    sim::Engine(2).run(spec, rest, {&sink});
    EXPECT_EQ(slurp(trace.path), reference) << "resumed after " << done << " groups";
  }

  // Asking for more whole blocks than the file holds is an error, not
  // silent data loss.
  TempFile trace("bin-overask");
  {
    sim::TraceSink sink(trace.path, "bin");
    sim::Engine(1).run(spec, plan, {&sink});
  }
  EXPECT_THROW(sim::truncate_to_blocks(trace.path, 2 + G), std::invalid_argument);
}

TEST(TraceSink, CsvHasHeaderAndOneRowPerCell) {
  const auto spec = table_spec();
  TempFile trace("trace-csv");
  sim::TraceSink sink(trace.path, "csv");
  const sim::Engine engine(2);
  const auto result = engine.run(spec, {&sink});
  const std::string bytes = slurp(trace.path);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(bytes.begin(), bytes.end(), '\n'));
  EXPECT_EQ(lines, result.cells.size() + 1);
  EXPECT_EQ(bytes.rfind("cell,adversary,placement", 0), 0u);
}

TEST(TraceSink, RejectsCsvWithOutputs) {
  EXPECT_THROW(sim::TraceSink("x.csv", "csv", /*outputs=*/true), std::invalid_argument);
  EXPECT_THROW(sim::TraceSink("x.bin", "bin", /*outputs=*/true), std::invalid_argument);
  EXPECT_THROW(sim::TraceSink("x", "xml"), std::invalid_argument);
}

// --- Checkpoint / resume -----------------------------------------------------

TEST(CheckpointSink, CompletedCheckpointEqualsEmittedPartial) {
  const auto spec = mixed_backend_spec();
  const auto plan = sim::plan_shards(spec, 1, 0);
  TempFile ck("ck-full");
  sim::CheckpointSink sink(ck.path);
  const sim::Engine engine(2);
  const auto result = engine.run(spec, plan, {&sink});

  std::ostringstream emitted;
  write_partial(emitted, make_partial(spec, plan, result));
  EXPECT_EQ(slurp(ck.path), emitted.str());
}

TEST(CheckpointSink, ResumeProducesByteIdenticalFiles) {
  const auto spec = mixed_backend_spec();
  const auto plan = sim::plan_shards(spec, 1, 0);
  const std::size_t G = sim::group_count(spec);
  ASSERT_GE(G, 3u);

  // Reference: one uninterrupted run.
  TempFile full_ck("ck-ref");
  {
    sim::CheckpointSink sink(full_ck.path);
    sim::Engine(2).run(spec, plan, {&sink});
  }
  const std::string reference = slurp(full_ck.path);

  // Interrupt after every possible prefix length (0 groups .. G-1 groups),
  // then resume; the completed file must match the reference byte for byte.
  for (std::size_t done = 0; done < G; ++done) {
    // "The worker died after `done` groups": run the full plan (its header
    // carries the full plan, as an interrupted worker's would) and truncate
    // the file to header + `done` group lines.
    TempFile ck("ck-resume");
    {
      sim::CheckpointSink sink(ck.path);
      sim::Engine(1).run(spec, plan, {&sink});
    }
    sim::truncate_to_lines(ck.path, 1 + done);

    const auto state = sim::read_checkpoint(ck.path, spec, plan);
    ASSERT_TRUE(state.header_present);
    EXPECT_EQ(state.next_group, done);
    std::filesystem::resize_file(ck.path, state.valid_bytes);

    sim::ShardPlan rest = plan;
    rest.group_begin = state.next_group;
    sim::CheckpointSink sink(ck.path, /*resume=*/true);
    sim::Engine(2).run(spec, rest, {&sink});
    EXPECT_EQ(slurp(ck.path), reference) << "resumed after " << done << " groups";
  }
}

TEST(CheckpointSink, ResumeToleratesTruncatedLastLine) {
  const auto spec = table_spec();
  const auto plan = sim::plan_shards(spec, 1, 0);
  TempFile full_ck("ck-ref2");
  {
    sim::CheckpointSink sink(full_ck.path);
    sim::Engine(1).run(spec, plan, {&sink});
  }
  const std::string reference = slurp(full_ck.path);

  // Cut the file mid-way through a group line (a mid-write kill).
  TempFile ck("ck-cut");
  {
    std::ofstream out(ck.path, std::ios::binary);
    const std::size_t second_line = reference.find('\n') + 1;
    const std::size_t cut = reference.find('\n', second_line) + 20;
    out.write(reference.data(), static_cast<std::streamsize>(cut));
  }
  const auto state = sim::read_checkpoint(ck.path, spec, plan);
  ASSERT_TRUE(state.header_present);
  EXPECT_EQ(state.next_group, 1u);  // one complete group line survived
  std::filesystem::resize_file(ck.path, state.valid_bytes);

  sim::ShardPlan rest = plan;
  rest.group_begin = state.next_group;
  sim::CheckpointSink sink(ck.path, /*resume=*/true);
  sim::Engine(1).run(spec, rest, {&sink});
  EXPECT_EQ(slurp(ck.path), reference);
}

TEST(Checkpoint, ReadRejectsForeignCheckpoints) {
  const auto spec = mixed_backend_spec();
  const auto plan = sim::plan_shards(spec, 1, 0);
  TempFile ck("ck-foreign");
  {
    sim::CheckpointSink sink(ck.path);
    sim::Engine(1).run(spec, plan, {&sink});
  }
  // Same file, different spec: refuse to resume.
  sim::ExperimentSpec other = spec;
  other.base_seed ^= 1;
  EXPECT_THROW(sim::read_checkpoint(ck.path, other, plan), std::invalid_argument);
  // Different plan: refuse too.
  EXPECT_THROW(sim::read_checkpoint(ck.path, spec, sim::plan_shards(spec, 2, 0)),
               std::invalid_argument);
  // Missing file: a fresh start, not an error.
  const auto state = sim::read_checkpoint(ck.path + ".nope", spec, plan);
  EXPECT_FALSE(state.header_present);
  EXPECT_EQ(state.valid_bytes, 0u);
}

// --- make_sinks --------------------------------------------------------------

TEST(MakeSinks, InstantiatesConfigsWithCheckpointLast) {
  TempFile trace("cfg-trace");
  TempFile ck("cfg-ck");
  sim::ExperimentSpec spec = table_spec();
  spec.sinks.push_back({sim::SinkConfig::Kind::kCheckpoint, ck.path, "jsonl", false});
  spec.sinks.push_back({sim::SinkConfig::Kind::kTrace, trace.path, "csv", false});

  const auto plan = sim::plan_shards(spec, 1, 0);
  const auto sinks = sim::make_sinks(spec, plan);
  ASSERT_EQ(sinks.size(), 2u);
  // Checkpoints are ordered last even when configured first, so the trace
  // flush precedes the checkpoint line at every group boundary.
  EXPECT_NE(dynamic_cast<sim::TraceSink*>(sinks[0].get()), nullptr);
  EXPECT_NE(dynamic_cast<sim::CheckpointSink*>(sinks[1].get()), nullptr);

  const auto result = sim::Engine(2).run(spec, plan, sim::sink_list(sinks));
  EXPECT_EQ(result.total.runs, static_cast<std::uint64_t>(spec.seeds) * 6);
  EXPECT_FALSE(slurp(trace.path).empty());
  std::ostringstream emitted;
  write_partial(emitted, make_partial(spec, plan, result));
  EXPECT_EQ(slurp(ck.path), emitted.str());
}

TEST(MakeSinks, ShardedPathsGetAShardSuffix) {
  sim::SinkConfig cfg{sim::SinkConfig::Kind::kCheckpoint, "ck.jsonl", "jsonl", false};
  sim::ShardPlan one;
  EXPECT_EQ(sim::sink_path(cfg, one), "ck.jsonl");
  sim::ShardPlan many;
  many.shards = 3;
  many.shard = 2;
  EXPECT_EQ(sim::sink_path(cfg, many), "ck.jsonl.shard2");
}

}  // namespace
