// Unit tests for the util module: RNG determinism and uniformity sanity,
// bit-vector packing, integer math, statistics (incl. the mergeable
// accumulator's determinism contract and wire codec), JSON, tables and CLI
// parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bitio.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace synccount::util;

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroAndOne) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 600) << "bucket " << b;
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng a2(42);
  Rng child2 = a2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // Parent and child streams differ.
  Rng b(42);
  Rng c = b.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += b.next_u64() == c.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// --- BitVec ------------------------------------------------------------

TEST(BitVec, SetGetRoundTripSingleWord) {
  BitVec v;
  v.set_bits(3, 7, 0x55);
  EXPECT_EQ(v.get_bits(3, 7), 0x55u);
  EXPECT_EQ(v.get_bits(0, 3), 0u);
}

TEST(BitVec, CrossWordBoundary) {
  BitVec v;
  v.set_bits(60, 10, 0x3ffu);
  EXPECT_EQ(v.get_bits(60, 10), 0x3ffu);
  v.set_bits(60, 10, 0x155u);
  EXPECT_EQ(v.get_bits(60, 10), 0x155u);
  EXPECT_EQ(v.get_bits(0, 60), 0u);
  EXPECT_EQ(v.get_bits(70, 64), 0u);
}

TEST(BitVec, FullWidthField) {
  BitVec v;
  v.set_bits(64, 64, ~0ULL);
  EXPECT_EQ(v.get_bits(64, 64), ~0ULL);
  EXPECT_EQ(v.get_bits(0, 64), 0u);
  EXPECT_EQ(v.get_bits(128, 64), 0u);
}

TEST(BitVec, OverwriteLeavesNeighboursIntact) {
  BitVec v;
  v.set_bits(0, 8, 0xff);
  v.set_bits(8, 8, 0xaa);
  v.set_bits(16, 8, 0xff);
  v.set_bits(8, 8, 0x11);
  EXPECT_EQ(v.get_bits(0, 8), 0xffu);
  EXPECT_EQ(v.get_bits(8, 8), 0x11u);
  EXPECT_EQ(v.get_bits(16, 8), 0xffu);
}

TEST(BitVec, TruncateClearsHighBits) {
  BitVec v;
  v.set_bits(0, 64, ~0ULL);
  v.set_bits(64, 64, ~0ULL);
  v.truncate(70);
  EXPECT_EQ(v.get_bits(0, 64), ~0ULL);
  EXPECT_EQ(v.get_bits(64, 6), 0x3fu);
  EXPECT_EQ(v.get_bits(70, 58), 0u);
}

TEST(BitVec, EqualityAfterTruncate) {
  BitVec a, b;
  a.set_bits(0, 20, 0x12345);
  a.set_bits(40, 10, 0x3ff);
  b.set_bits(0, 20, 0x12345);
  EXPECT_NE(a, b);
  a.truncate(20);
  EXPECT_EQ(a, b);
}

TEST(BitVec, HashDiffersForDifferentValues) {
  BitVec a, b;
  a.set_bits(0, 10, 1);
  b.set_bits(0, 10, 2);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, ReaderWriterSequence) {
  BitVec v;
  BitWriter w(v);
  w.write(5, 17);
  w.write(13, 4095);
  w.write(1, 1);
  EXPECT_EQ(w.offset(), 19);
  BitReader r(v);
  EXPECT_EQ(r.read(5), 17u);
  EXPECT_EQ(r.read(13), 4095u);
  EXPECT_EQ(r.read(1), 1u);
}

// --- math --------------------------------------------------------------

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_EQ(ceil_log2(~0ULL), 64);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(0), -1);
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Math, CheckedPow) {
  EXPECT_EQ(checked_pow(2, 10), 1024u);
  EXPECT_EQ(checked_pow(10, 0), 1u);
  EXPECT_EQ(checked_pow(0, 5), 0u);
  EXPECT_EQ(checked_pow(2, 63), 1ULL << 63);
  EXPECT_FALSE(checked_pow(2, 64).has_value());
  EXPECT_FALSE(checked_pow(10, 20).has_value());
}

TEST(Math, IpowThrowsOnOverflow) {
  EXPECT_THROW(ipow(2, 64), std::invalid_argument);
  EXPECT_EQ(ipow(6, 4), 1296u);
}

TEST(Math, CheckedMulAdd) {
  EXPECT_EQ(checked_mul(3, 7), 21u);
  EXPECT_FALSE(checked_mul(~0ULL, 2).has_value());
  EXPECT_EQ(checked_add(1, 2), 3u);
  EXPECT_FALSE(checked_add(~0ULL, 1).has_value());
}

TEST(Math, AddMod) {
  EXPECT_EQ(add_mod(5, 7, 10), 2u);
  EXPECT_EQ(add_mod(9, 1, 10), 0u);
  // Near the top of the uint64 range.
  const std::uint64_t m = ~0ULL - 1;
  EXPECT_EQ(add_mod(m - 1, m - 1, m), m - 2);
}

TEST(Math, ModI64) {
  EXPECT_EQ(mod_i64(-1, 5), 4u);
  EXPECT_EQ(mod_i64(-5, 5), 0u);
  EXPECT_EQ(mod_i64(7, 5), 2u);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
}

TEST(Math, Lcm) {
  EXPECT_EQ(lcm_checked(4, 6), 12u);
  EXPECT_EQ(lcm_checked(7, 13), 91u);
  EXPECT_THROW(lcm_checked(~0ULL, ~0ULL - 1), std::invalid_argument);
}

// --- stats -------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  // NaN, not 0.0: an empty accumulator must not look like a real zero sample.
  EXPECT_TRUE(std::isnan(s.mean));
  EXPECT_TRUE(std::isnan(s.median));
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_NE(s.to_string().find("n/a"), std::string::npos);
}

TEST(Stats, RegressionSlope) {
  EXPECT_NEAR(regression_slope({1, 2, 3, 4}, {2, 4, 6, 8}), 2.0, 1e-9);
  EXPECT_NEAR(regression_slope({1, 2, 3}, {5, 5, 5}), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(regression_slope({1}, {1}), 0.0);
}

// --- table -------------------------------------------------------------

// --- StreamingStats: merge determinism + wire codec --------------------
//
// The sharded-sweep merge path rests on one property: merging partial
// accumulators in order is *bit-identical* to one sequential fold. These
// tests pin that down (exact == on doubles is deliberate).

// All summary fields identical, bitwise.
void expect_identical(const StreamingStats& a, const StreamingStats& b) {
  ASSERT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.95, 1.0}) {
    EXPECT_EQ(a.quantile(p), b.quantile(p));
  }
  EXPECT_EQ(a.samples(), b.samples());
}

// Irrational-ish samples so every fp operation order matters.
std::vector<double> awkward_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.next_double() * 1e3 + 1.0 / 3.0);
  return xs;
}

TEST(StreamingStats, MergeBitIdenticalToSequentialAdd) {
  const auto xs = awkward_samples(257, 7);
  StreamingStats all;
  for (const double x : xs) all.add(x);
  // Every split point, including empty prefix/suffix.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{128},
                                std::size_t{256}, xs.size()}) {
    StreamingStats lo, hi;
    for (std::size_t i = 0; i < cut; ++i) lo.add(xs[i]);
    for (std::size_t i = cut; i < xs.size(); ++i) hi.add(xs[i]);
    lo.merge(hi);
    expect_identical(lo, all);
  }
}

TEST(StreamingStats, MergeAssociativeAcrossArbitrarySplits) {
  const auto xs = awkward_samples(200, 11);
  StreamingStats all;
  for (const double x : xs) all.add(x);
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    // Split into 1..8 ordered chunks at random cut points, fold left.
    std::set<std::size_t> cuts = {0, xs.size()};
    const int parts = 1 + static_cast<int>(rng.next_below(8));
    for (int i = 1; i < parts; ++i) cuts.insert(rng.next_below(xs.size()));
    std::vector<StreamingStats> chunks;
    auto it = cuts.begin();
    for (std::size_t lo = *it++; it != cuts.end(); ++it) {
      StreamingStats c;
      for (std::size_t i = lo; i < *it; ++i) c.add(xs[i]);
      chunks.push_back(std::move(c));
      lo = *it;
    }
    StreamingStats folded;
    for (const auto& c : chunks) folded.merge(c);
    expect_identical(folded, all);
  }
}

TEST(StreamingStats, SelfMergeDoublesTheSamples) {
  StreamingStats acc;
  for (const double x : awkward_samples(33, 5)) acc.add(x);
  StreamingStats twice;
  for (const double x : acc.samples()) twice.add(x);
  for (const double x : acc.samples()) twice.add(x);
  acc.merge(acc);  // must stay defined while add() grows samples_
  expect_identical(acc, twice);
}

TEST(StreamingStats, JsonCodecRoundTripIsBitIdentical) {
  StreamingStats acc;
  for (const double x : awkward_samples(97, 13)) acc.add(x);
  const Json j = to_json(acc);
  const StreamingStats back = streaming_stats_from_json(Json::parse(j.dump()));
  expect_identical(back, acc);
  // Re-serialisation is byte-stable (the merge byte-identity contract).
  EXPECT_EQ(to_json(back).dump(), j.dump());
}

TEST(StreamingStats, EmptyCodecRoundTrip) {
  const StreamingStats empty;
  const StreamingStats back = streaming_stats_from_json(Json::parse(to_json(empty).dump()));
  EXPECT_EQ(back.count(), 0u);
  EXPECT_TRUE(std::isnan(back.quantile(0.5)));
}

// --- Json --------------------------------------------------------------

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null").dump(), "null");
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").dump(), "false");
  EXPECT_EQ(Json::parse("-17").as_i64(), -17);
  EXPECT_EQ(Json::parse("18446744073709551615").as_u64(), ~std::uint64_t{0});
  EXPECT_EQ(Json::number(~std::uint64_t{0}).dump(), "18446744073709551615");
}

TEST(Json, DoubleShortestRoundTrip) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 123456789.123456789}) {
    const Json j = Json::number(v);
    EXPECT_EQ(Json::parse(j.dump()).as_double(), v) << j.dump();
  }
}

TEST(Json, NumberTokenPreservedVerbatim) {
  // parse keeps the original spelling, so re-dumping cannot drift bytes.
  for (const char* tok : {"1e3", "0.5", "-0.0", "2", "1.25e-7"}) {
    EXPECT_EQ(Json::parse(tok).dump(), tok);
  }
}

TEST(Json, StringEscapes) {
  const Json j = Json::string("a\"b\\c\n\t\x01z");
  EXPECT_EQ(j.dump(), "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
  EXPECT_EQ(Json::parse(j.dump()).as_string(), "a\"b\\c\n\t\x01z");
  EXPECT_EQ(Json::parse("\"\\u00e9\\ud83d\\ude00\"").as_string(), "\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, NestedStructureAndMemberOrder) {
  Json obj = Json::object();
  obj.set("b", Json::number(std::int64_t{1}));
  obj.set("a", Json::number(std::int64_t{2}));
  Json arr = Json::array();
  arr.push_back(Json());
  arr.push_back(Json::boolean(true));
  obj.set("list", std::move(arr));
  // Insertion order is preserved (deterministic dumps), not sorted.
  EXPECT_EQ(obj.dump(), "{\"b\":1,\"a\":2,\"list\":[null,true]}");
  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.dump(), obj.dump());
  EXPECT_EQ(back.at("a").as_int(), 2);
  EXPECT_EQ(back.at("list").size(), 2u);
  EXPECT_TRUE(back.at("list").at(0).is_null());
  EXPECT_EQ(back.find("missing"), nullptr);
}

TEST(Json, MalformedInputsThrow) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
                          "{\"a\":1} trailing", "01", "-01.5", "nul", "\"\\q\""}) {
    EXPECT_THROW(Json::parse(bad), std::invalid_argument) << bad;
  }
  EXPECT_THROW(Json::parse("123").as_string(), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"x\"").as_u64(), std::invalid_argument);
  EXPECT_THROW(Json::parse("-1").as_u64(), std::invalid_argument);
  EXPECT_THROW(Json::object().at("nope"), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, PadsMissingCells) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("| x |"), std::string::npos);
}

// --- cli ---------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=7", "--flag", "pos1"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag"));
  EXPECT_FALSE(cli.get_bool("missing"));
  EXPECT_EQ(cli.get_int("missing", 9), 9);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, StringAndDouble) {
  const char* argv[] = {"prog", "--name=abc", "--x=2.5"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0), 2.5);
}

// --- check -------------------------------------------------------------

TEST(Cli, UnknownFlags) {
  const char* argv[] = {"prog", "--f=3", "--seeds=5", "--bogus=1", "--typo"};
  const Cli cli(5, argv);
  EXPECT_TRUE(cli.unknown_flags({"f", "seeds", "bogus", "typo"}).empty());
  const auto unknown = cli.unknown_flags({"f", "seeds"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "bogus");
  EXPECT_EQ(unknown[1], "typo");
}

TEST(Check, ThrowsWithMessage) {
  try {
    SC_CHECK(false, "context here");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
  }
  EXPECT_THROW(SC_REQUIRE(false, "x"), std::logic_error);
}

}  // namespace
