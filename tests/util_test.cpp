// Unit tests for the util module: RNG determinism and uniformity sanity,
// bit-vector packing, integer math, statistics, tables and CLI parsing.
#include <gtest/gtest.h>

#include <set>

#include "util/bitio.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace synccount::util;

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroAndOne) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 600) << "bucket " << b;
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng a2(42);
  Rng child2 = a2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // Parent and child streams differ.
  Rng b(42);
  Rng c = b.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += b.next_u64() == c.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// --- BitVec ------------------------------------------------------------

TEST(BitVec, SetGetRoundTripSingleWord) {
  BitVec v;
  v.set_bits(3, 7, 0x55);
  EXPECT_EQ(v.get_bits(3, 7), 0x55u);
  EXPECT_EQ(v.get_bits(0, 3), 0u);
}

TEST(BitVec, CrossWordBoundary) {
  BitVec v;
  v.set_bits(60, 10, 0x3ffu);
  EXPECT_EQ(v.get_bits(60, 10), 0x3ffu);
  v.set_bits(60, 10, 0x155u);
  EXPECT_EQ(v.get_bits(60, 10), 0x155u);
  EXPECT_EQ(v.get_bits(0, 60), 0u);
  EXPECT_EQ(v.get_bits(70, 64), 0u);
}

TEST(BitVec, FullWidthField) {
  BitVec v;
  v.set_bits(64, 64, ~0ULL);
  EXPECT_EQ(v.get_bits(64, 64), ~0ULL);
  EXPECT_EQ(v.get_bits(0, 64), 0u);
  EXPECT_EQ(v.get_bits(128, 64), 0u);
}

TEST(BitVec, OverwriteLeavesNeighboursIntact) {
  BitVec v;
  v.set_bits(0, 8, 0xff);
  v.set_bits(8, 8, 0xaa);
  v.set_bits(16, 8, 0xff);
  v.set_bits(8, 8, 0x11);
  EXPECT_EQ(v.get_bits(0, 8), 0xffu);
  EXPECT_EQ(v.get_bits(8, 8), 0x11u);
  EXPECT_EQ(v.get_bits(16, 8), 0xffu);
}

TEST(BitVec, TruncateClearsHighBits) {
  BitVec v;
  v.set_bits(0, 64, ~0ULL);
  v.set_bits(64, 64, ~0ULL);
  v.truncate(70);
  EXPECT_EQ(v.get_bits(0, 64), ~0ULL);
  EXPECT_EQ(v.get_bits(64, 6), 0x3fu);
  EXPECT_EQ(v.get_bits(70, 58), 0u);
}

TEST(BitVec, EqualityAfterTruncate) {
  BitVec a, b;
  a.set_bits(0, 20, 0x12345);
  a.set_bits(40, 10, 0x3ff);
  b.set_bits(0, 20, 0x12345);
  EXPECT_NE(a, b);
  a.truncate(20);
  EXPECT_EQ(a, b);
}

TEST(BitVec, HashDiffersForDifferentValues) {
  BitVec a, b;
  a.set_bits(0, 10, 1);
  b.set_bits(0, 10, 2);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, ReaderWriterSequence) {
  BitVec v;
  BitWriter w(v);
  w.write(5, 17);
  w.write(13, 4095);
  w.write(1, 1);
  EXPECT_EQ(w.offset(), 19);
  BitReader r(v);
  EXPECT_EQ(r.read(5), 17u);
  EXPECT_EQ(r.read(13), 4095u);
  EXPECT_EQ(r.read(1), 1u);
}

// --- math --------------------------------------------------------------

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_EQ(ceil_log2(~0ULL), 64);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(0), -1);
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Math, CheckedPow) {
  EXPECT_EQ(checked_pow(2, 10), 1024u);
  EXPECT_EQ(checked_pow(10, 0), 1u);
  EXPECT_EQ(checked_pow(0, 5), 0u);
  EXPECT_EQ(checked_pow(2, 63), 1ULL << 63);
  EXPECT_FALSE(checked_pow(2, 64).has_value());
  EXPECT_FALSE(checked_pow(10, 20).has_value());
}

TEST(Math, IpowThrowsOnOverflow) {
  EXPECT_THROW(ipow(2, 64), std::invalid_argument);
  EXPECT_EQ(ipow(6, 4), 1296u);
}

TEST(Math, CheckedMulAdd) {
  EXPECT_EQ(checked_mul(3, 7), 21u);
  EXPECT_FALSE(checked_mul(~0ULL, 2).has_value());
  EXPECT_EQ(checked_add(1, 2), 3u);
  EXPECT_FALSE(checked_add(~0ULL, 1).has_value());
}

TEST(Math, AddMod) {
  EXPECT_EQ(add_mod(5, 7, 10), 2u);
  EXPECT_EQ(add_mod(9, 1, 10), 0u);
  // Near the top of the uint64 range.
  const std::uint64_t m = ~0ULL - 1;
  EXPECT_EQ(add_mod(m - 1, m - 1, m), m - 2);
}

TEST(Math, ModI64) {
  EXPECT_EQ(mod_i64(-1, 5), 4u);
  EXPECT_EQ(mod_i64(-5, 5), 0u);
  EXPECT_EQ(mod_i64(7, 5), 2u);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
}

TEST(Math, Lcm) {
  EXPECT_EQ(lcm_checked(4, 6), 12u);
  EXPECT_EQ(lcm_checked(7, 13), 91u);
  EXPECT_THROW(lcm_checked(~0ULL, ~0ULL - 1), std::invalid_argument);
}

// --- stats -------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, RegressionSlope) {
  EXPECT_NEAR(regression_slope({1, 2, 3, 4}, {2, 4, 6, 8}), 2.0, 1e-9);
  EXPECT_NEAR(regression_slope({1, 2, 3}, {5, 5, 5}), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(regression_slope({1}, {1}), 0.0);
}

// --- table -------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, PadsMissingCells) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("| x |"), std::string::npos);
}

// --- cli ---------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=7", "--flag", "pos1"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag"));
  EXPECT_FALSE(cli.get_bool("missing"));
  EXPECT_EQ(cli.get_int("missing", 9), 9);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, StringAndDouble) {
  const char* argv[] = {"prog", "--name=abc", "--x=2.5"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0), 2.5);
}

// --- check -------------------------------------------------------------

TEST(Check, ThrowsWithMessage) {
  try {
    SC_CHECK(false, "context here");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
  }
  EXPECT_THROW(SC_REQUIRE(false, "x"), std::logic_error);
}

}  // namespace
