// Tests for the computational algorithm design pipeline: the exact verifier
// (game solving on projected configurations), the CNF encoder, the synthesis
// driver, and the embedded computer-designed building block.
#include <gtest/gtest.h>

#include "counting/randomized.hpp"
#include "counting/trivial.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "synthesis/encoder.hpp"
#include "synthesis/known_tables.hpp"
#include "synthesis/synthesize.hpp"
#include "synthesis/verifier.hpp"

namespace {

using namespace synccount;
using counting::Symmetry;
using counting::TableAlgorithm;
using counting::TransitionTable;

// --- Verifier ---------------------------------------------------------------

TEST(Verifier, TrivialCounterIsValidWithTimeZero) {
  counting::TrivialCounter algo(4);
  const auto vr = synthesis::verify(algo);
  EXPECT_TRUE(vr.ok) << vr.failure;
  EXPECT_EQ(vr.worst_case_time, 0u);
  EXPECT_EQ(vr.configurations, 4u);
}

TransitionTable follow_node0() {
  TransitionTable t;
  t.n = 2;
  t.f = 0;
  t.num_states = 2;
  t.modulus = 2;
  t.symmetry = Symmetry::kUniform;
  t.g = {1, 1, 0, 0};  // g(x) = 1 - x0  (index = x0 + 2*x1)
  t.h = {0, 1};
  t.label = "follow-node0";
  return t;
}

TEST(Verifier, AcceptsHandWrittenCounter) {
  const TableAlgorithm algo(follow_node0());
  const auto vr = synthesis::verify(algo);
  EXPECT_TRUE(vr.ok) << vr.failure;
  EXPECT_LE(vr.worst_case_time, 2u);
  EXPECT_GE(vr.worst_case_time, 1u);
}

TEST(Verifier, RejectsFrozenAlgorithm) {
  // Identity transition: every node keeps its state forever -> never counts.
  TransitionTable t = follow_node0();
  t.g = {0, 0, 1, 1};  // g(x) = x0: node 1 follows node 0 but nothing flips...
  // Make it truly frozen: g(x) = own... with uniform positional tables a
  // frozen counter is g = x0 for node 0; from (0,0) the output never
  // increments, which must be rejected as a cycle outside the good set.
  const TableAlgorithm algo(t);
  const auto vr = synthesis::verify(algo);
  EXPECT_FALSE(vr.ok);
  EXPECT_NE(vr.failure.find("cycle"), std::string::npos);
}

TEST(Verifier, RejectsDisagreementCycle) {
  // Both nodes flip their own state: outputs increment but the nodes never
  // reconcile their offset -> configurations with disagreeing outputs cycle.
  TransitionTable t = follow_node0();
  t.symmetry = Symmetry::kCyclic;  // own state at position 0
  t.g = {1, 1, 0, 0};              // g = 1 - own
  const TableAlgorithm algo(t);
  const auto vr = synthesis::verify(algo);
  EXPECT_FALSE(vr.ok);
}

TEST(Verifier, EmbeddedCyclicTableCertifies) {
  const TableAlgorithm algo(synthesis::known_table_4_1_3states());
  const auto vr = synthesis::verify(algo);
  EXPECT_TRUE(vr.ok) << vr.failure;
  EXPECT_EQ(vr.worst_case_time, 6u);
  // Faulty sets of size 0 and 1 both analysed.
  ASSERT_EQ(vr.time_by_fault_count.size(), 2u);
  EXPECT_GT(vr.transitions, 0u);
}

TEST(Verifier, EmbeddedUniformTableCertifies) {
  const TableAlgorithm algo(synthesis::known_table_4_1_4states());
  const auto vr = synthesis::verify(algo);
  EXPECT_TRUE(vr.ok) << vr.failure;
  EXPECT_EQ(vr.worst_case_time, 8u);
}

TEST(Verifier, RefusesRandomizedAlgorithms) {
  counting::RandomizedCounter algo(4, 1, 2);
  EXPECT_THROW(synthesis::verify(algo), std::invalid_argument);
}

TEST(Verifier, WorstCaseTimePerFaultCountIsMonotoneHere) {
  // For the embedded table, one Byzantine node can only make stabilisation
  // slower, never faster, in the worst case.
  const TableAlgorithm algo(synthesis::known_table_4_1_3states());
  const auto vr = synthesis::verify(algo);
  ASSERT_TRUE(vr.ok);
  EXPECT_LE(vr.time_by_fault_count[0], vr.time_by_fault_count[1]);
}

// --- Encoder ----------------------------------------------------------------

TEST(Encoder, SpecValidation) {
  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = 3;
  spec.modulus = 2;
  EXPECT_NO_THROW(spec.validate());
  spec.f = 2;  // n <= 3f
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.f = 1;
  spec.num_states = 1;  // fewer states than outputs
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.num_states = 3;
  spec.max_time = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Encoder, ProducesReasonableSizes) {
  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = 3;
  spec.modulus = 2;
  spec.max_time = 8;
  const synthesis::Encoder enc(spec);
  EXPECT_GT(enc.size().variables, 100u);
  EXPECT_GT(enc.size().clauses, 1000u);
  // g variables are laid out first and densely.
  EXPECT_EQ(enc.g_var(0, 0, 0), 1);
  EXPECT_EQ(enc.g_var(0, 0, 1), 2);
  EXPECT_EQ(enc.g_var(0, 1, 0), 4);
}

// --- Synthesis end-to-end -----------------------------------------------------

TEST(Synthesize, FindsTrivialOneNodeCounter) {
  synthesis::SynthesisSpec spec;
  spec.n = 1;
  spec.f = 0;
  spec.num_states = 2;
  spec.modulus = 2;
  synthesis::SynthesisOptions opt;
  opt.max_time = 2;
  const auto out = synthesize(spec, opt);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.exact_time, 0u);
}

TEST(Synthesize, FindsTwoNodeCounterAndCertifiesIt) {
  synthesis::SynthesisSpec spec;
  spec.n = 2;
  spec.f = 0;
  spec.num_states = 2;
  spec.modulus = 2;
  synthesis::SynthesisOptions opt;
  opt.max_time = 4;
  const auto out = synthesize(spec, opt);
  ASSERT_TRUE(out.found);
  EXPECT_LE(out.exact_time, 2u);
  // The synthesised table really counts in simulation.
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<TableAlgorithm>(out.table);
  cfg.max_rounds = 64;
  cfg.seed = 3;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 16);
  EXPECT_TRUE(res.stabilised);
}

TEST(Synthesize, ProvesTwoStatesInsufficientForFourNodes) {
  // [5]-style optimality: with n = 4, f = 1 and a single state bit there is
  // no counter, for any admissible stabilisation time up to 8 (the instance
  // is UNSAT, not budget-limited).
  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = 2;
  spec.modulus = 2;
  synthesis::SynthesisOptions opt;
  opt.max_time = 8;
  const auto out = synthesize(spec, opt);
  EXPECT_FALSE(out.found);
  EXPECT_FALSE(out.budget_exhausted);
}

TEST(Synthesize, RespectsConflictBudget) {
  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = 4;
  spec.modulus = 2;
  synthesis::SynthesisOptions opt;
  opt.min_time = 8;
  opt.max_time = 8;
  opt.conflict_budget = 10;  // hopeless budget
  const auto out = synthesize(spec, opt);
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.budget_exhausted);
}

// --- Incremental synthesis ------------------------------------------------------

TEST(SynthesizeIncremental, AgreesWithFromScratchOnUnsat) {
  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = 2;
  spec.modulus = 2;
  synthesis::SynthesisOptions opt;
  opt.max_time = 8;
  const auto scratch = synthesize(spec, opt);
  const auto incremental = synthesize_incremental(spec, opt);
  EXPECT_FALSE(scratch.found);
  EXPECT_FALSE(incremental.found);
  EXPECT_FALSE(incremental.budget_exhausted);
}

TEST(SynthesizeIncremental, FindsSameMinimalTimeAsFromScratch) {
  synthesis::SynthesisSpec spec;
  spec.n = 2;
  spec.f = 0;
  spec.num_states = 2;
  spec.modulus = 2;
  synthesis::SynthesisOptions opt;
  opt.max_time = 5;
  const auto scratch = synthesize(spec, opt);
  const auto incremental = synthesize_incremental(spec, opt);
  ASSERT_TRUE(scratch.found);
  ASSERT_TRUE(incremental.found);
  EXPECT_EQ(incremental.time_bound_used, scratch.time_bound_used);
  // Both tables are certified; the certified time of the incremental find
  // cannot exceed the admissible bound at which it was found.
  EXPECT_LE(incremental.exact_time,
            static_cast<std::uint64_t>(incremental.time_bound_used));
}

TEST(SynthesizeIncremental, FindsTheCyclicThreeStateCounter) {
  // Budgeted incremental sweep: tight bounds may exhaust their budget, but
  // the final assumption-free bound (known SAT from the embedded table) must
  // be found.
  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = 3;
  spec.modulus = 2;
  spec.symmetry = Symmetry::kCyclic;
  synthesis::SynthesisOptions opt;
  opt.min_time = 6;
  opt.max_time = 8;
  opt.conflict_budget = 15000;
  const auto out = synthesize_incremental(spec, opt);
  ASSERT_TRUE(out.found);
  EXPECT_LE(out.exact_time, 8u);
}

// --- Counterexample witnesses -----------------------------------------------------

TEST(Counterexample, FrozenAlgorithmYieldsReplayableWitness) {
  TransitionTable t = follow_node0();
  t.g = {0, 0, 1, 1};  // g(x) = x0: frozen at (0, *)
  const TableAlgorithm algo(t);
  const auto analysis = synthesis::analyze_game(algo);
  ASSERT_FALSE(analysis.result.ok);
  ASSERT_TRUE(analysis.counterexample.has_value());
  EXPECT_FALSE(analysis.counterexample->cycle.empty());
  EXPECT_TRUE(synthesis::counterexample_replays(algo, *analysis.counterexample));
}

TEST(Counterexample, FlipOwnAlgorithmYieldsReplayableWitness) {
  TransitionTable t = follow_node0();
  t.symmetry = Symmetry::kCyclic;
  t.g = {1, 1, 0, 0};  // g = 1 - own: never reconciles the offset
  const TableAlgorithm algo(t);
  const auto analysis = synthesis::analyze_game(algo);
  ASSERT_FALSE(analysis.result.ok);
  ASSERT_TRUE(analysis.counterexample.has_value());
  EXPECT_TRUE(synthesis::counterexample_replays(algo, *analysis.counterexample));
}

TEST(Counterexample, AbsentForValidAlgorithms) {
  const TableAlgorithm algo(synthesis::known_table_4_1_3states());
  const auto analysis = synthesis::analyze_game(algo);
  EXPECT_TRUE(analysis.result.ok);
  EXPECT_FALSE(analysis.counterexample.has_value());
}

TEST(Counterexample, BogusWitnessDoesNotReplay) {
  const TableAlgorithm algo(synthesis::known_table_4_1_3states());
  synthesis::Counterexample bogus;
  bogus.faulty = {0};
  bogus.cycle = {0, 1};  // arbitrary configs; almost surely not a real cycle
  // Even if single steps happened to be reachable, a valid counter has no
  // bad cycle, so at least one edge of any claimed cycle must fail.
  EXPECT_FALSE(synthesis::counterexample_replays(algo, bogus));
}

// --- The embedded building block end-to-end ------------------------------------

TEST(ComputerDesigned, FourNodeBlockStabilisesUnderAllAdversaries) {
  const auto algo = synthesis::computer_designed_4_1();
  EXPECT_EQ(algo->num_nodes(), 4);
  EXPECT_EQ(algo->resilience(), 1);
  EXPECT_EQ(algo->modulus(), 2u);
  EXPECT_EQ(algo->state_bits(), 2);  // ceil(log2 3)
  ASSERT_TRUE(algo->stabilisation_bound().has_value());
  EXPECT_EQ(*algo->stabilisation_bound(), 6u);

  for (const auto& name : sim::adversary_names()) {
    for (int byz = 0; byz < 4; ++byz) {
      std::vector<bool> faulty(4, false);
      faulty[static_cast<std::size_t>(byz)] = true;
      sim::RunConfig cfg;
      cfg.algo = algo;
      cfg.faulty = faulty;
      cfg.max_rounds = 64;
      cfg.seed = 7 + static_cast<std::uint64_t>(byz);
      auto adv = sim::make_adversary(name);
      const auto res = sim::run_execution(cfg, *adv, 20);
      EXPECT_TRUE(res.stabilised) << name << " byz=" << byz;
      EXPECT_LE(res.stabilisation_round, 6u) << name << " byz=" << byz;
    }
  }
}

TEST(ComputerDesigned, MemoisedAccessorReturnsSameInstance) {
  EXPECT_EQ(synthesis::computer_designed_4_1().get(), synthesis::computer_designed_4_1().get());
}

}  // namespace
