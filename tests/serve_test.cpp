// Unit tests of the sweep-service building blocks, transport-free where
// possible: CRC framing, backoff schedules, the fault injector, the atomic
// file helpers (including torn-write recovery via death tests), the lease
// table (deterministic clocks, no sleeping), the durable job queue
// (persistence across reload), the protocol codecs, and the daemon's
// request brain via Daemon::handle. The process-level chaos differential
// test lives in serve_chaos_test.cpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "counting/algorithm_spec.hpp"
#include "serve/daemon.hpp"
#include "serve/lease.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"
#include "util/backoff.hpp"
#include "util/crc32.hpp"
#include "util/fault_injector.hpp"
#include "util/json.hpp"

namespace {

using namespace synccount;
using std::chrono::milliseconds;

struct TempDir {
  TempDir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("synccount-serve-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return (path / name).string(); }
  std::filesystem::path path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

sim::ExperimentSpec small_spec() {
  sim::ExperimentSpec spec;
  counting::AlgorithmSpec algo;
  algo.kind = counting::AlgorithmSpec::Kind::kTable;
  algo.table_name = "3states";
  spec.algorithm = algo;
  spec.adversaries = {"split", "silent", "random"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}, {"none", {}}};
  spec.seeds = 3;
  spec.base_seed = 0xBEE;
  spec.max_rounds = 48;
  spec.margin = 8;
  return spec;
}

// --- CRC-32 --------------------------------------------------------------------

TEST(Crc32, KnownAnswers) {
  // The standard reflected CRC-32 check value.
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::crc32(""), 0x00000000u);
  EXPECT_EQ(util::crc32_hex("123456789"), "cbf43926");
  EXPECT_NE(util::crc32("a"), util::crc32("b"));
}

// --- Backoff -------------------------------------------------------------------

TEST(Backoff, GrowsExponentiallyWithinJitterBounds) {
  util::BackoffPolicy policy;
  policy.initial = milliseconds(100);
  policy.cap = milliseconds(450);
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  policy.max_attempts = 0;
  util::Backoff backoff(policy, /*seed=*/42);
  const long expected_base[] = {100, 200, 400, 450, 450};
  for (const long base : expected_base) {
    const auto d = backoff.next_delay().count();
    EXPECT_GE(d, base / 2) << "base " << base;
    EXPECT_LE(d, base + base / 2) << "base " << base;
  }
}

TEST(Backoff, HonoursTheAttemptBudgetAndIsSeedDeterministic) {
  util::BackoffPolicy policy;
  policy.max_attempts = 3;  // one try + two retries
  util::Backoff a(policy, 7);
  EXPECT_TRUE(a.should_retry());
  (void)a.next_delay();
  EXPECT_TRUE(a.should_retry());
  (void)a.next_delay();
  EXPECT_FALSE(a.should_retry());
  a.reset();
  EXPECT_TRUE(a.should_retry());

  util::Backoff b1(policy, 99), b2(policy, 99);
  EXPECT_EQ(b1.next_delay().count(), b2.next_delay().count());
}

TEST(Backoff, HighAttemptCountsDoNotOverflow) {
  // initial * multiplier^attempt overflows a double-to-integer cast long
  // before attempt 60; a forever-retrying worker (max_attempts = 0) with a
  // huge cap must keep getting sane positive delays, not UB or negatives.
  util::BackoffPolicy policy;
  policy.initial = milliseconds(1000);
  policy.cap = milliseconds::max();
  policy.multiplier = 10.0;
  policy.jitter = 0.5;
  policy.max_attempts = 0;
  util::Backoff backoff(policy, 5);
  long prev = 0;
  for (int attempt = 0; attempt < 80; ++attempt) {
    ASSERT_TRUE(backoff.should_retry());
    const long d = backoff.next_delay().count();
    ASSERT_GT(d, 0) << "attempt " << attempt;
    ASSERT_GE(d, prev / 4) << "attempt " << attempt;  // no wrap-around collapse
    prev = d;
  }
  // Far past any representable delay the schedule is pinned at the clamp,
  // and the attempt counter saturates instead of overflowing.
  EXPECT_GE(backoff.attempt(), 80);
  EXPECT_TRUE(backoff.should_retry());
}

// --- Fault injector --------------------------------------------------------------

TEST(FaultInjector, ParsesPlansAndFiresOnce) {
  util::FaultInjector fi;
  fi.configure("hb=drop@2,io=torn@1");
  EXPECT_FALSE(fi.should_drop("hb"));  // probe 1: not yet
  EXPECT_TRUE(fi.should_drop("hb"));   // probe 2: fires
  EXPECT_FALSE(fi.should_drop("hb"));  // fired once, never again
  EXPECT_FALSE(fi.should_drop("other"));

  const auto fault = fi.on_write("io", 100);
  EXPECT_TRUE(fault.torn);
  EXPECT_LT(fault.keep_bytes, 100u);  // a strict prefix
  EXPECT_FALSE(fi.on_write("io", 100).torn);

  fi.configure("");  // empty plan disables everything
  EXPECT_FALSE(fi.active());
  EXPECT_THROW(fi.configure("bad-spec-no-equals"), std::invalid_argument);
  EXPECT_THROW(fi.configure("site=explode@1"), std::invalid_argument);
}

TEST(FaultInjector, StallSleepsInsteadOfDying) {
  util::FaultInjector fi;
  fi.configure("slow=stall:30@1");
  // synccount-lint: allow(nondet) -- this test asserts real elapsed time: a
  // stall fault must actually sleep, which only a wall clock can observe.
  const auto t0 = std::chrono::steady_clock::now();
  fi.probe("slow");
  const auto elapsed =
      // synccount-lint: allow(nondet) -- second read of the same measurement.
      std::chrono::duration_cast<milliseconds>(std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 25);
}

// --- Atomic file helpers ----------------------------------------------------------

TEST(AtomicWrite, PublishesWholeFilesOnly) {
  TempDir dir;
  const std::string path = dir.file("data.txt");
  sim::atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  sim::atomic_write_file(path, "second\n");
  EXPECT_EQ(slurp(path), "second\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // staging cleaned up
}

TEST(AtomicAppender, CommitsAtomicallyAndResumes) {
  TempDir dir;
  const std::string path = dir.file("log.jsonl");
  {
    sim::AtomicAppender app(path);
    EXPECT_FALSE(std::filesystem::exists(path));  // nothing until commit
    app.commit();                                 // first commit publishes empty
    EXPECT_EQ(slurp(path), "");
    app.append("one\n");
    EXPECT_EQ(slurp(path), "");  // buffered, not visible
    app.commit();
    EXPECT_EQ(slurp(path), "one\n");
    app.commit();  // empty commit: no-op
    EXPECT_EQ(slurp(path), "one\n");
  }
  {
    sim::AtomicAppender app(path, /*resume=*/true);
    app.append("two\n");
    app.commit();
  }
  EXPECT_EQ(slurp(path), "one\ntwo\n");
}

using AtomicDeathTest = ::testing::Test;

TEST(AtomicDeathTest, TornWriteDiesWithoutDamagingThePublishedFile) {
  TempDir dir;
  const std::string path = dir.file("log.jsonl");
  {
    sim::AtomicAppender app(path);
    app.append("committed\n");
    app.commit();
  }
  // The torn write hits the STAGING file and the process dies before the
  // rename: the published file must be untouched.
  EXPECT_EXIT(
      {
        util::FaultInjector::instance().configure("io.append=torn@1");
        sim::AtomicAppender app(path, /*resume=*/true);
        app.append("never lands in full\n");
        app.commit();
      },
      ::testing::ExitedWithCode(137), "");
  EXPECT_EQ(slurp(path), "committed\n");
}

TEST(AtomicDeathTest, KillAfterCommitLeavesTheNewContent) {
  TempDir dir;
  const std::string path = dir.file("data.txt");
  EXPECT_EXIT(
      {
        util::FaultInjector::instance().configure("io.atomic_write=kill@1");
        sim::atomic_write_file(path, "durable\n");
      },
      ::testing::ExitedWithCode(137), "");
  // The kill probe fires AFTER rename+fsync: the write is durable.
  EXPECT_EQ(slurp(path), "durable\n");
}

// --- Lease table -----------------------------------------------------------------

TEST(LeaseTable, GrantRenewExpireRequeue) {
  serve::LeaseTable leases;
  const auto t0 = serve::LeaseTable::Clock::time_point{};  // fixed epoch: leases take instants explicitly
  const auto id = leases.grant("job", 2, 5, "w1", t0, milliseconds(100));
  EXPECT_TRUE(leases.held("job", 2, t0));
  EXPECT_TRUE(leases.held("job", 4, t0));
  EXPECT_FALSE(leases.held("job", 5, t0));  // end is exclusive
  EXPECT_FALSE(leases.held("other", 2, t0));
  EXPECT_EQ(leases.held_groups("job", t0), 3u);

  // Renewal pushes the deadline; past it the lease no longer holds groups.
  EXPECT_TRUE(leases.renew(id, t0 + milliseconds(80), milliseconds(100)));
  EXPECT_TRUE(leases.held("job", 2, t0 + milliseconds(150)));
  EXPECT_FALSE(leases.held("job", 2, t0 + milliseconds(500)));

  // Sweeping removes the expired lease exactly once and reports it.
  const auto expired = leases.sweep_expired(t0 + milliseconds(500));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, id);
  EXPECT_EQ(expired[0].group_begin, 2u);
  EXPECT_EQ(leases.size(), 0u);
  EXPECT_FALSE(leases.renew(id, t0, milliseconds(100)));  // gone for good
}

TEST(LeaseTable, SweepWithNothingExpiredLeavesLivingLeasesIntact) {
  // Regression: the sweep compaction once self-move-assigned surviving
  // leases, emptying their string members -- held() stopped matching and
  // every group became double-assignable after any request.
  serve::LeaseTable leases;
  const auto t0 = serve::LeaseTable::Clock::time_point{};  // fixed epoch: leases take instants explicitly
  const auto id = leases.grant("job", 0, 3, "w1", t0, milliseconds(1000));
  EXPECT_TRUE(leases.sweep_expired(t0 + milliseconds(10)).empty());
  ASSERT_EQ(leases.size(), 1u);
  const serve::Lease* lease = leases.find(id);
  ASSERT_NE(lease, nullptr);
  EXPECT_EQ(lease->job, "job");
  EXPECT_EQ(lease->worker, "w1");
  EXPECT_TRUE(leases.held("job", 0, t0 + milliseconds(10)));
}

TEST(LeaseTable, ReleaseAndIdUniqueness) {
  serve::LeaseTable leases;
  const auto t0 = serve::LeaseTable::Clock::time_point{};  // fixed epoch: leases take instants explicitly
  const auto a = leases.grant("j", 0, 1, "w", t0, milliseconds(50));
  const auto b = leases.grant("j", 1, 2, "w", t0, milliseconds(50));
  EXPECT_NE(a, b);
  leases.release(a);
  EXPECT_EQ(leases.find(a), nullptr);
  ASSERT_NE(leases.find(b), nullptr);
  EXPECT_EQ(leases.find(b)->group_begin, 1u);
}

// --- Protocol codecs ---------------------------------------------------------------

TEST(Protocol, LeaseGrantAndCompleteRoundTrip) {
  serve::LeaseGrant grant;
  grant.job = "night-sweep";
  grant.lease_id = 17;
  grant.group_begin = 3;
  grant.group_end = 6;
  grant.ttl_ms = 5000;
  grant.spec = util::Json::parse("{\"seeds\":4}");
  const serve::LeaseGrant back = serve::LeaseGrant::from_json(grant.to_json());
  EXPECT_EQ(back.job, grant.job);
  EXPECT_EQ(back.lease_id, grant.lease_id);
  EXPECT_EQ(back.group_begin, grant.group_begin);
  EXPECT_EQ(back.group_end, grant.group_end);
  EXPECT_EQ(back.spec.dump(), grant.spec.dump());

  serve::CompleteRequest complete;
  complete.lease_id = 17;
  complete.job = "night-sweep";
  complete.group = 4;
  complete.adversary = "split";
  complete.placement = "spread";
  complete.aggregate = util::Json::parse("{\"runs\":3}");
  const util::Json wire = complete.to_json();
  EXPECT_EQ(wire.at("op").as_string(), "complete");
  const serve::CompleteRequest c = serve::CompleteRequest::from_json(wire);
  EXPECT_EQ(c.group, 4u);
  EXPECT_EQ(c.aggregate.dump(), complete.aggregate.dump());
}

TEST(Protocol, CheckResponseThrowsTheCarriedError) {
  EXPECT_TRUE(serve::check_response(serve::ok_response()));
  try {
    serve::check_response(serve::error_response("queue on fire"));
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("queue on fire"), std::string::npos);
  }
}

// --- Job queue -----------------------------------------------------------------------

TEST(JobQueue, ValidatesJobNames) {
  EXPECT_TRUE(serve::valid_job_name("nightly-3states_v2.1"));
  EXPECT_FALSE(serve::valid_job_name(""));
  EXPECT_FALSE(serve::valid_job_name(".hidden"));
  EXPECT_FALSE(serve::valid_job_name("a/b"));
  EXPECT_FALSE(serve::valid_job_name(std::string(65, 'x')));
}

TEST(JobQueue, SubmitIsIdempotentAndNamesSpecMismatches) {
  TempDir dir;
  serve::JobQueue queue(dir.file("state"));
  const util::Json spec = sim::experiment_spec_to_json(small_spec());
  const auto first = queue.submit("job", spec);
  EXPECT_FALSE(first.existed);
  EXPECT_EQ(first.groups, 6u);  // 3 adversaries x 2 placements
  const auto again = queue.submit("job", spec);
  EXPECT_TRUE(again.existed);

  sim::ExperimentSpec other = small_spec();
  other.seeds = 99;
  try {
    queue.submit("job", sim::experiment_spec_to_json(other));
    FAIL() << "expected mismatch rejection";
  } catch (const std::invalid_argument& e) {
    // The diagnostic must name the differing field, not just say "differs".
    EXPECT_NE(std::string(e.what()).find("seeds"), std::string::npos) << e.what();
  }
}

TEST(JobQueue, RejectsFileWritingSinks) {
  TempDir dir;
  serve::JobQueue queue(dir.file("state"));
  sim::ExperimentSpec spec = small_spec();
  spec.sinks.push_back(
      {sim::SinkConfig::Kind::kCheckpoint, dir.file("ck.jsonl"), "jsonl", false});
  EXPECT_THROW(queue.submit("job", sim::experiment_spec_to_json(spec)),
               std::invalid_argument);
}

TEST(JobQueue, AssignsContiguousRunsSkippingDoneAndHeld) {
  TempDir dir;
  serve::JobQueue queue(dir.file("state"));
  queue.submit("job", sim::experiment_spec_to_json(small_spec()));  // 6 groups
  const auto held_none = [](const std::string&, std::uint64_t) { return false; };

  serve::JobQueue::Assignment a;
  ASSERT_TRUE(queue.assign(4, held_none, a));
  EXPECT_EQ(a.group_begin, 0u);
  EXPECT_EQ(a.group_end, 4u);  // capped by max_groups

  // Group 1 held by a lease: the run before it is [0, 1).
  const auto held_1 = [](const std::string&, std::uint64_t g) { return g == 1; };
  ASSERT_TRUE(queue.assign(4, held_1, a));
  EXPECT_EQ(a.group_begin, 0u);
  EXPECT_EQ(a.group_end, 1u);
}

// Runs the engine on one global group and packages a CompleteRequest-shaped
// record for it.
void complete_group(serve::JobQueue& queue, const sim::ExperimentSpec& spec,
                    std::uint64_t group) {
  sim::ShardPlan plan;
  plan.shards = 1;
  plan.shard = 0;
  plan.group_begin = static_cast<std::size_t>(group);
  plan.group_end = static_cast<std::size_t>(group) + 1;
  const auto result = sim::Engine(1).run(spec, plan);
  const auto partial = sim::make_partial(spec, plan, result);
  std::vector<std::string> advs, pls;
  sim::grid_names(spec, advs, pls);
  ASSERT_TRUE(queue.record_done("job", group, advs[group / pls.size()],
                                pls[group % pls.size()],
                                sim::aggregate_to_json(partial.groups[0].aggregate)));
}

TEST(JobQueue, PersistsAcrossReloadAndAssemblesByteIdenticalResults) {
  TempDir dir;
  const sim::ExperimentSpec spec = small_spec();

  // Single-process reference: the whole grid, one partial file.
  const auto full_plan = sim::plan_shards(spec, 1, 0);
  const auto full = sim::Engine(1).run(spec, full_plan);
  std::ostringstream reference;
  write_partial(reference, make_partial(spec, full_plan, full));

  {
    serve::JobQueue queue(dir.file("state"));
    queue.submit("job", sim::experiment_spec_to_json(spec));
    complete_group(queue, spec, 0);
    complete_group(queue, spec, 3);  // out of order on purpose
    complete_group(queue, spec, 1);
    // Duplicate complete: first write wins, benign.
    sim::ShardPlan plan{1, 0, 0, 1};
    const auto partial =
        sim::make_partial(spec, plan, sim::Engine(1).run(spec, plan));
    std::vector<std::string> advs, pls;
    sim::grid_names(spec, advs, pls);
    EXPECT_FALSE(queue.record_done("job", 0, advs[0], pls[0],
                                   sim::aggregate_to_json(partial.groups[0].aggregate)));
  }  // daemon "dies" here

  // Restart: the three durable groups are still there.
  serve::JobQueue queue(dir.file("state"));
  auto status = queue.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].done, 3u);
  EXPECT_FALSE(status[0].complete);
  EXPECT_EQ(queue.pending_groups(), 3u);
  EXPECT_THROW(queue.results_text("job"), std::invalid_argument);  // incomplete

  for (const std::uint64_t g : {2u, 4u, 5u}) complete_group(queue, spec, g);
  EXPECT_TRUE(queue.job_complete("job"));
  EXPECT_EQ(queue.results_text("job"), reference.str());
}

TEST(JobQueue, SketchSpecsRoundTripWithBoundedWire) {
  // A sketch-mode spec travels through submit -> assemble carrying KLL
  // sketch state instead of sample vectors, and the assembled results must
  // still byte-compare to a single-process sketch run (the v4 wire format's
  // determinism contract end-to-end through the service).
  TempDir dir;
  sim::ExperimentSpec spec = small_spec();
  spec.stats = util::StatsMode::kSketch;

  const auto full_plan = sim::plan_shards(spec, 1, 0);
  std::ostringstream reference;
  write_partial(reference, make_partial(spec, full_plan, sim::Engine(1).run(spec, full_plan)));
  EXPECT_NE(reference.str().find("\"stats\":\"sketch\""), std::string::npos);

  serve::JobQueue queue(dir.file("state"));
  queue.submit("job", sim::experiment_spec_to_json(spec));
  for (const std::uint64_t g : {0u, 3u, 1u, 5u, 2u, 4u}) {
    complete_group(queue, spec, g);
  }
  EXPECT_TRUE(queue.job_complete("job"));
  EXPECT_EQ(queue.results_text("job"), reference.str());
}

TEST(JobQueue, RecordDoneRejectsGridDisagreements) {
  TempDir dir;
  serve::JobQueue queue(dir.file("state"));
  const sim::ExperimentSpec spec = small_spec();
  queue.submit("job", sim::experiment_spec_to_json(spec));
  const util::Json agg = util::Json::parse("{\"runs\":1}");
  EXPECT_THROW(queue.record_done("nope", 0, "split", "spread", agg),
               std::invalid_argument);  // unknown job
  EXPECT_THROW(queue.record_done("job", 99, "split", "spread", agg),
               std::invalid_argument);  // outside the grid
  EXPECT_THROW(queue.record_done("job", 0, "silent", "spread", agg),
               std::invalid_argument);  // wrong adversary for group 0
}

// --- Daemon (transport-free, via handle()) -------------------------------------------

struct DaemonFixture {
  TempDir dir;
  serve::DaemonConfig cfg;
  std::ostringstream log;

  serve::Daemon make(std::uint64_t lease_ttl_ms = 60000, std::uint64_t lease_groups = 2) {
    cfg.socket_path = dir.file("sock");
    cfg.state_dir = dir.file("state");
    cfg.lease_ttl_ms = lease_ttl_ms;
    cfg.lease_groups = lease_groups;
    cfg.log = &log;
    return serve::Daemon(cfg);
  }
};

util::Json submit_request(const std::string& job, const sim::ExperimentSpec& spec) {
  util::Json req = serve::make_request("submit");
  req.set("job", util::Json::string(job));
  req.set("spec", sim::experiment_spec_to_json(spec));
  return req;
}

util::Json lease_request(const std::string& worker) {
  util::Json req = serve::make_request("lease");
  req.set("worker", util::Json::string(worker));
  return req;
}

TEST(Daemon, FullProtocolFlowProducesTheReferencePartial) {
  DaemonFixture fx;
  serve::Daemon daemon = fx.make();
  const sim::ExperimentSpec spec = small_spec();

  const auto full_plan = sim::plan_shards(spec, 1, 0);
  std::ostringstream reference;
  write_partial(reference, make_partial(spec, full_plan, sim::Engine(1).run(spec, full_plan)));

  util::Json resp = daemon.handle(submit_request("job", spec));
  ASSERT_TRUE(serve::check_response(resp));
  EXPECT_EQ(serve::msg_u64(resp, "groups"), 6u);

  // Drain the queue through leases, computing every group for real.
  std::vector<std::string> advs, pls;
  sim::grid_names(spec, advs, pls);
  for (;;) {
    resp = daemon.handle(lease_request("w1"));
    ASSERT_TRUE(serve::check_response(resp));
    if (serve::msg_bool(resp, "idle", false)) {
      EXPECT_FALSE(serve::msg_bool(resp, "pending", true));
      break;
    }
    const serve::LeaseGrant grant = serve::LeaseGrant::from_json(resp);
    EXPECT_LE(grant.group_end - grant.group_begin, 2u);  // cfg.lease_groups
    const sim::ExperimentSpec job_spec = sim::experiment_spec_from_json(grant.spec);
    for (std::uint64_t g = grant.group_begin; g < grant.group_end; ++g) {
      sim::ShardPlan plan;
      plan.shards = 1;
      plan.shard = 0;
      plan.group_begin = static_cast<std::size_t>(g);
      plan.group_end = static_cast<std::size_t>(g) + 1;
      const auto partial =
          sim::make_partial(job_spec, plan, sim::Engine(1).run(job_spec, plan));
      serve::CompleteRequest complete;
      complete.lease_id = grant.lease_id;
      complete.job = grant.job;
      complete.group = g;
      complete.adversary = advs[g / pls.size()];
      complete.placement = pls[g % pls.size()];
      complete.aggregate = sim::aggregate_to_json(partial.groups[0].aggregate);
      const util::Json ack = daemon.handle(complete.to_json());
      ASSERT_TRUE(serve::check_response(ack));
      EXPECT_TRUE(serve::msg_bool(ack, "accepted", false));
    }
  }

  util::Json results_req = serve::make_request("results");
  results_req.set("job", util::Json::string("job"));
  resp = daemon.handle(results_req);
  ASSERT_TRUE(serve::check_response(resp));
  EXPECT_EQ(serve::msg_string(resp, "partial"), reference.str());
}

TEST(Daemon, ErrorsBecomeOkFalseResponsesNotThrows) {
  DaemonFixture fx;
  serve::Daemon daemon = fx.make();
  const util::Json resp = daemon.handle(serve::make_request("frobnicate"));
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_NE(resp.at("error").as_string().find("unknown op"), std::string::npos);
  // Malformed request shapes too.
  EXPECT_FALSE(daemon.handle(util::Json::parse("[1,2,3]")).at("ok").as_bool());
  EXPECT_FALSE(daemon.handle(serve::make_request("lease")).at("ok").as_bool());
}

TEST(Daemon, DrainStopsLeasingAndShutdownStops) {
  DaemonFixture fx;
  serve::Daemon daemon = fx.make();
  serve::check_response(daemon.handle(submit_request("job", small_spec())));
  serve::check_response(daemon.handle(serve::make_request("drain")));
  const util::Json resp = daemon.handle(lease_request("w1"));
  EXPECT_TRUE(serve::msg_bool(resp, "idle", false));
  EXPECT_TRUE(serve::msg_bool(resp, "draining", false));
  EXPECT_TRUE(serve::msg_bool(resp, "pending", false));  // work exists, just gated
  serve::check_response(daemon.handle(serve::make_request("shutdown")));
  EXPECT_TRUE(daemon.stopped());
}

TEST(Daemon, LeasedGroupsAreNotDoubleAssigned) {
  DaemonFixture fx;
  serve::Daemon daemon = fx.make(/*lease_ttl_ms=*/60000, /*lease_groups=*/3);
  serve::check_response(daemon.handle(submit_request("job", small_spec())));
  const auto g1 = serve::LeaseGrant::from_json(daemon.handle(lease_request("w1")));
  const auto g2 = serve::LeaseGrant::from_json(daemon.handle(lease_request("w2")));
  EXPECT_EQ(g1.group_begin, 0u);
  EXPECT_EQ(g1.group_end, 3u);
  EXPECT_EQ(g2.group_begin, 3u);  // disjoint from w1's range
  EXPECT_EQ(g2.group_end, 6u);
  // Grid exhausted while both leases live: idle, but pending.
  const util::Json resp = daemon.handle(lease_request("w3"));
  EXPECT_TRUE(serve::msg_bool(resp, "idle", false));
  EXPECT_TRUE(serve::msg_bool(resp, "pending", false));
}

}  // namespace
