// Error-path tests for the wire formats (sim/experiment_io.hpp): spec files
// (format/version gates), shard partials (truncated JSONL, duplicate
// headers, corrupted lines), checkpoint scanning tolerance, and the
// line-truncation surgery used on resume. The happy paths live in
// shard_test.cpp and sink_test.cpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "counting/table_algorithm.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"
#include "synthesis/known_tables.hpp"
#include "util/json.hpp"

namespace {

using namespace synccount;

sim::ExperimentSpec small_spec() {
  sim::ExperimentSpec spec;
  counting::AlgorithmSpec algo;
  algo.kind = counting::AlgorithmSpec::Kind::kTable;
  algo.table_name = "3states";
  spec.algorithm = algo;
  spec.adversaries = {"split", "silent"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}};
  spec.seeds = 4;
  spec.max_rounds = 48;
  spec.margin = 8;
  return spec;
}

std::string spec_file_text(const sim::ExperimentSpec& spec) {
  std::ostringstream out;
  write_spec_file(out, spec);
  return out.str();
}

std::string partial_text(const sim::ExperimentSpec& spec) {
  const auto plan = sim::plan_shards(spec, 1, 0);
  const auto result = sim::Engine(1).run(spec, plan);
  std::ostringstream out;
  write_partial(out, make_partial(spec, plan, result));
  return out.str();
}

void expect_read_spec_throws(const std::string& text, const std::string& what) {
  std::istringstream in(text);
  try {
    sim::read_spec_file(in, "test.json");
    FAIL() << "expected failure: " << what;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos) << e.what();
  }
}

void expect_read_partial_throws(const std::string& text, const std::string& what) {
  std::istringstream in(text);
  try {
    sim::read_partial(in, "test.jsonl");
    FAIL() << "expected failure: " << what;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos) << e.what();
  }
}

// Tampers with the payload of the (first) line containing `from` and
// re-signs its CRC, so the semantic validation under test fires instead of
// the integrity gate.
std::string tamper_and_resign(const std::string& text, const std::string& from,
                              const std::string& to) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  std::size_t line_no = 0;
  bool done = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!done && line.find(from) != std::string::npos) {
      std::string payload = sim::crc_unframe(line, "tamper", line_no);
      const std::size_t at = payload.find(from);
      if (at != std::string::npos) {
        payload.replace(at, from.size(), to);
        line = sim::crc_frame(payload);
        done = true;
      }
    }
    out << line << '\n';
  }
  EXPECT_TRUE(done) << "pattern not found: " << from;
  return out.str();
}

// --- Spec files --------------------------------------------------------------

TEST(SpecFile, RoundTripsByteStable) {
  const auto spec = small_spec();
  const std::string text = spec_file_text(spec);
  std::istringstream in(text);
  const sim::ExperimentSpec back = sim::read_spec_file(in, "spec.json");
  EXPECT_EQ(spec_file_text(back), text);
  // The round-tripped spec drives the engine identically.
  const auto a = sim::Engine(1).run(spec);
  const auto b = sim::Engine(1).run(back);
  EXPECT_EQ(sim::aggregate_to_json(a.total).dump(), sim::aggregate_to_json(b.total).dump());
}

TEST(SpecFile, RejectsEmptyWrongFormatAndUnknownVersion) {
  expect_read_spec_throws("", "empty spec file");
  expect_read_spec_throws("{\"format\":\"something-else\",\"version\":1,\"spec\":{}}\n",
                          "not a synccount-spec file");
  std::string text = spec_file_text(small_spec());
  const std::string v1 = "\"version\":1";
  text.replace(text.find(v1), v1.size(), "\"version\":99");
  expect_read_spec_throws(text, "unsupported spec version");
}

TEST(SpecFile, RejectsTruncatedJson) {
  const std::string text = spec_file_text(small_spec());
  expect_read_spec_throws(text.substr(0, text.size() / 2), "bad JSON");
}

// The wire-versioning contract: exact specs never emit a "stats" field and
// stay on the pre-sketch v3 bytes; sketch specs tag themselves and move the
// partial header to v4.

TEST(SpecFile, SketchSpecsCarryTheStatsFieldExactOnesDoNot) {
  EXPECT_EQ(spec_file_text(small_spec()).find("\"stats\""), std::string::npos);

  sim::ExperimentSpec spec = small_spec();
  spec.stats = util::StatsMode::kSketch;
  const std::string text = spec_file_text(spec);
  EXPECT_NE(text.find("\"stats\":\"sketch\""), std::string::npos);
  std::istringstream in(text);
  const sim::ExperimentSpec back = sim::read_spec_file(in, "spec.json");
  EXPECT_EQ(back.stats, util::StatsMode::kSketch);
  EXPECT_EQ(spec_file_text(back), text);
}

TEST(ReadPartial, HeaderVersionFollowsTheStatsMode) {
  EXPECT_NE(partial_text(small_spec()).find("\"version\":3"), std::string::npos);

  sim::ExperimentSpec spec = small_spec();
  spec.stats = util::StatsMode::kSketch;
  const std::string text = partial_text(spec);
  EXPECT_NE(text.find("\"version\":4"), std::string::npos);
  // The sketch partial round-trips, and re-serialising is byte-stable --
  // including the per-group sketch payloads.
  std::istringstream in(text);
  const sim::ShardPartial partial = sim::read_partial(in, "test.jsonl");
  std::ostringstream out;
  write_partial(out, partial);
  EXPECT_EQ(out.str(), text);
}

TEST(ReadPartial, RejectsVersionStatsModeDisagreements) {
  // A v3 header over a sketch-tagged spec (and vice versa) is a forged or
  // hand-edited file, not a format we ever wrote.
  sim::ExperimentSpec sketch_spec = small_spec();
  sketch_spec.stats = util::StatsMode::kSketch;
  expect_read_partial_throws(
      tamper_and_resign(partial_text(sketch_spec), "\"version\":4", "\"version\":3"),
      "format version disagrees with the spec's stats mode");
  expect_read_partial_throws(
      tamper_and_resign(partial_text(small_spec()), "\"version\":3", "\"version\":4"),
      "format version disagrees with the spec's stats mode");
}

// --- Partial files -----------------------------------------------------------

TEST(ReadPartial, RejectsUnknownVersion) {
  const std::string text = tamper_and_resign(partial_text(small_spec()),
                                             "\"version\":3", "\"version\":1");
  expect_read_partial_throws(text, "unsupported format version");
}

TEST(ReadPartial, RejectsTruncatedFiles) {
  const std::string text = partial_text(small_spec());
  // Cut in the middle of the last group line: the torn line loses its CRC
  // suffix and must fail with a contextful diagnostic, not be silently
  // dropped or half-parsed.
  expect_read_partial_throws(text.substr(0, text.size() - 20), "missing line CRC");
  // Cut a whole group line (file ends cleanly but the range is incomplete).
  const std::size_t last_line_start = text.rfind('\n', text.size() - 2) + 1;
  expect_read_partial_throws(text.substr(0, last_line_start), "missing group lines");
}

TEST(ReadPartial, RejectsBitFlipsViaLineCrc) {
  // Flip one byte of a group line WITHOUT re-signing: the payload is still
  // valid JSON, so only the CRC can catch it. The error names file + line.
  std::string text = partial_text(small_spec());
  const std::string runs = "\"runs\":4";
  const std::size_t at = text.find(runs);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, runs.size(), "\"runs\":7");
  expect_read_partial_throws(text, "bad line CRC");
  expect_read_partial_throws(text, "test.jsonl:");
}

TEST(ReadPartial, RejectsTrailingGarbageAfterCrc) {
  // Bytes appended after a line's CRC suffix (a botched concatenation) break
  // the frame even when the JSON prefix still parses.
  std::string text = partial_text(small_spec());
  ASSERT_EQ(text.back(), '\n');
  text.insert(text.size() - 1, "garbage");
  expect_read_partial_throws(text, "line CRC");
}

TEST(ReadPartial, RejectsDuplicateHeaders) {
  const std::string text = partial_text(small_spec());
  const std::string header = text.substr(0, text.find('\n') + 1);
  // Two concatenated partials (a botched file copy): the second header must
  // be called out as such.
  expect_read_partial_throws(text + header, "duplicate header line");
  // A header straight after the first one, before any group line.
  const std::string body = text.substr(text.find('\n') + 1);
  expect_read_partial_throws(header + header + body, "duplicate header line");
}

TEST(ReadPartial, RejectsCorruptedAggregates) {
  // Tamper with a sample count (re-signed, so the CRC gate passes) so the
  // aggregate invariant itself breaks; the error names the group.
  const std::string text =
      tamper_and_resign(partial_text(small_spec()), "\"runs\":4", "\"runs\":5");
  expect_read_partial_throws(text, "sample counts disagree");
  expect_read_partial_throws(text, "corrupt aggregate for group");
}

TEST(DescribeSpecMismatch, NamesTheDifferingFields) {
  const util::Json want = util::Json::parse(
      "{\"seeds\":24,\"max_rounds\":64,\"margin\":8}");
  const util::Json found = util::Json::parse(
      "{\"seeds\":8,\"max_rounds\":64,\"extra\":true}");
  const std::string diff = sim::describe_spec_mismatch(want, found);
  EXPECT_NE(diff.find("seeds"), std::string::npos) << diff;
  EXPECT_NE(diff.find("margin"), std::string::npos) << diff;
  EXPECT_NE(diff.find("extra"), std::string::npos) << diff;
  EXPECT_EQ(diff.find("max_rounds"), std::string::npos) << diff;
  // Agreement -> empty.
  EXPECT_TRUE(sim::describe_spec_mismatch(want, want).empty());
}

TEST(CrcFrame, RoundTripsAndRejectsDamage) {
  const std::string payload = "{\"hello\":\"world\"}";
  const std::string framed = sim::crc_frame(payload);
  EXPECT_EQ(sim::crc_unframe(framed, "f", 1), payload);
  EXPECT_THROW(sim::crc_unframe(framed + "x", "f", 1), std::invalid_argument);
  EXPECT_THROW(sim::crc_unframe(payload, "f", 1), std::invalid_argument);
  std::string flipped = framed;
  flipped[2] ^= 1;
  EXPECT_THROW(sim::crc_unframe(flipped, "f", 1), std::invalid_argument);
}

// --- truncate_to_lines -------------------------------------------------------

struct TempFile {
  TempFile() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("synccount-io-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++)))
               .string();
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(TruncateToLines, KeepsExactlyTheRequestedPrefix) {
  TempFile f;
  {
    std::ofstream out(f.path, std::ios::binary);
    out << "one\ntwo\nthree\nfour (unterminated";
  }
  sim::truncate_to_lines(f.path, 2);
  std::ifstream in(f.path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "one\ntwo\n");
  // Asking for more complete lines than exist is an error, not silent loss.
  EXPECT_THROW(sim::truncate_to_lines(f.path, 3), std::invalid_argument);
}

}  // namespace
