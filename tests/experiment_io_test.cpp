// Error-path tests for the wire formats (sim/experiment_io.hpp): spec files
// (format/version gates), shard partials (truncated JSONL, duplicate
// headers, corrupted lines), checkpoint scanning tolerance, and the
// line-truncation surgery used on resume. The happy paths live in
// shard_test.cpp and sink_test.cpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "counting/table_algorithm.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"
#include "synthesis/known_tables.hpp"
#include "util/json.hpp"

namespace {

using namespace synccount;

sim::ExperimentSpec small_spec() {
  sim::ExperimentSpec spec;
  counting::AlgorithmSpec algo;
  algo.kind = counting::AlgorithmSpec::Kind::kTable;
  algo.table_name = "3states";
  spec.algorithm = algo;
  spec.adversaries = {"split", "silent"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}};
  spec.seeds = 4;
  spec.max_rounds = 48;
  spec.margin = 8;
  return spec;
}

std::string spec_file_text(const sim::ExperimentSpec& spec) {
  std::ostringstream out;
  write_spec_file(out, spec);
  return out.str();
}

std::string partial_text(const sim::ExperimentSpec& spec) {
  const auto plan = sim::plan_shards(spec, 1, 0);
  const auto result = sim::Engine(1).run(spec, plan);
  std::ostringstream out;
  write_partial(out, make_partial(spec, plan, result));
  return out.str();
}

void expect_read_spec_throws(const std::string& text, const std::string& what) {
  std::istringstream in(text);
  try {
    sim::read_spec_file(in, "test.json");
    FAIL() << "expected failure: " << what;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos) << e.what();
  }
}

void expect_read_partial_throws(const std::string& text, const std::string& what) {
  std::istringstream in(text);
  try {
    sim::read_partial(in, "test.jsonl");
    FAIL() << "expected failure: " << what;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos) << e.what();
  }
}

// --- Spec files --------------------------------------------------------------

TEST(SpecFile, RoundTripsByteStable) {
  const auto spec = small_spec();
  const std::string text = spec_file_text(spec);
  std::istringstream in(text);
  const sim::ExperimentSpec back = sim::read_spec_file(in, "spec.json");
  EXPECT_EQ(spec_file_text(back), text);
  // The round-tripped spec drives the engine identically.
  const auto a = sim::Engine(1).run(spec);
  const auto b = sim::Engine(1).run(back);
  EXPECT_EQ(sim::aggregate_to_json(a.total).dump(), sim::aggregate_to_json(b.total).dump());
}

TEST(SpecFile, RejectsEmptyWrongFormatAndUnknownVersion) {
  expect_read_spec_throws("", "empty spec file");
  expect_read_spec_throws("{\"format\":\"something-else\",\"version\":1,\"spec\":{}}\n",
                          "not a synccount-spec file");
  std::string text = spec_file_text(small_spec());
  const std::string v1 = "\"version\":1";
  text.replace(text.find(v1), v1.size(), "\"version\":99");
  expect_read_spec_throws(text, "unsupported spec version");
}

TEST(SpecFile, RejectsTruncatedJson) {
  const std::string text = spec_file_text(small_spec());
  expect_read_spec_throws(text.substr(0, text.size() / 2), "bad JSON");
}

// --- Partial files -----------------------------------------------------------

TEST(ReadPartial, RejectsUnknownVersion) {
  std::string text = partial_text(small_spec());
  const std::string v = "\"version\":2";
  ASSERT_NE(text.find(v), std::string::npos);
  text.replace(text.find(v), v.size(), "\"version\":1");
  expect_read_partial_throws(text, "unsupported format version");
}

TEST(ReadPartial, RejectsTruncatedFiles) {
  const std::string text = partial_text(small_spec());
  // Cut in the middle of the last group line: the damaged line must fail
  // with a contextful JSON error, not be silently dropped.
  expect_read_partial_throws(text.substr(0, text.size() - 20), "bad JSON");
  // Cut a whole group line (file ends cleanly but the range is incomplete).
  const std::size_t last_line_start = text.rfind('\n', text.size() - 2) + 1;
  expect_read_partial_throws(text.substr(0, last_line_start), "missing group lines");
}

TEST(ReadPartial, RejectsDuplicateHeaders) {
  const std::string text = partial_text(small_spec());
  const std::string header = text.substr(0, text.find('\n') + 1);
  // Two concatenated partials (a botched file copy): the second header must
  // be called out as such.
  expect_read_partial_throws(text + header, "duplicate header line");
  // A header straight after the first one, before any group line.
  const std::string body = text.substr(text.find('\n') + 1);
  expect_read_partial_throws(header + header + body, "duplicate header line");
}

TEST(ReadPartial, RejectsCorruptedAggregates) {
  std::string text = partial_text(small_spec());
  // Tamper with a sample count so the aggregate invariant breaks.
  const std::string runs = "\"runs\":4";
  ASSERT_NE(text.find(runs), std::string::npos);
  text.replace(text.find(runs), runs.size(), "\"runs\":5");
  expect_read_partial_throws(text, "sample counts disagree");
}

// --- truncate_to_lines -------------------------------------------------------

struct TempFile {
  TempFile() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("synccount-io-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++)))
               .string();
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(TruncateToLines, KeepsExactlyTheRequestedPrefix) {
  TempFile f;
  {
    std::ofstream out(f.path, std::ios::binary);
    out << "one\ntwo\nthree\nfour (unterminated";
  }
  sim::truncate_to_lines(f.path, 2);
  std::ifstream in(f.path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "one\ntwo\n");
  // Asking for more complete lines than exist is an error, not silent loss.
  EXPECT_THROW(sim::truncate_to_lines(f.path, 3), std::invalid_argument);
}

}  // namespace
