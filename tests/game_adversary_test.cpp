// Cross-validation of the three pillars: the exact verifier (game analysis),
// the simulator, and the OptimalAdversary that plays the solved game. For
// every initial configuration of the embedded computer-designed tables, the
// simulated stabilisation round under the optimal adversary must equal the
// verifier-certified distance-to-good-set -- exactly, configuration by
// configuration.
#include <gtest/gtest.h>

#include "counting/randomized.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "synthesis/game_adversary.hpp"
#include "synthesis/known_tables.hpp"

namespace {

using namespace synccount;
using counting::State;
using counting::TableAlgorithm;

struct TableCase {
  std::string name;
  counting::TransitionTable table;
  std::uint64_t certified_worst;
};

class OptimalAdversaryExact : public ::testing::TestWithParam<int> {};

// Exhaustive: every initial configuration, every choice of the faulty node.
TEST_P(OptimalAdversaryExact, SimulationMatchesCertifiedDistance) {
  const int byz = GetParam();
  const auto algo =
      std::make_shared<TableAlgorithm>(synthesis::known_table_4_1_3states());
  synthesis::OptimalAdversary adv(algo);

  std::vector<bool> faulty(4, false);
  faulty[static_cast<std::size_t>(byz)] = true;
  const std::vector<counting::NodeId> fids = {byz};

  std::uint64_t worst_measured = 0;
  const std::uint64_t S = *algo->state_count();
  const std::uint64_t configs = S * S * S;
  for (std::uint64_t cfgidx = 0; cfgidx < configs; ++cfgidx) {
    std::vector<State> init(4);
    std::uint64_t rem = cfgidx;
    for (int i = 0; i < 4; ++i) {
      if (i == byz) {
        init[static_cast<std::size_t>(i)] = algo->state_from_index(0);
      } else {
        init[static_cast<std::size_t>(i)] = algo->state_from_index(rem % S);
        rem /= S;
      }
    }
    const std::uint64_t cert = adv.certified_distance(fids, init);

    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = faulty;
    cfg.initial = init;
    cfg.max_rounds = 40;
    cfg.seed = 1;
    const auto res = sim::run_execution(cfg, adv, 16);
    ASSERT_TRUE(res.stabilised) << "config " << cfgidx;
    EXPECT_EQ(res.stabilisation_round, cert) << "config " << cfgidx << " byz " << byz;
    worst_measured = std::max(worst_measured, res.stabilisation_round);
  }
  EXPECT_EQ(worst_measured, 6u);  // the certified worst case of the table
}

INSTANTIATE_TEST_SUITE_P(EveryByzantineNode, OptimalAdversaryExact,
                         ::testing::Values(0, 1, 2, 3));

TEST(OptimalAdversary, UniformTableWorstCaseRealised) {
  // The uniform table is position-indexed, so it is *not* symmetric across
  // nodes: the worst case lives at a particular choice of the faulty node.
  // The max over all faulty positions and configurations must equal the
  // certified worst case 8, with per-configuration equality everywhere.
  const auto algo =
      std::make_shared<TableAlgorithm>(synthesis::known_table_4_1_4states());
  synthesis::OptimalAdversary adv(algo);

  std::uint64_t worst_measured = 0;
  std::uint64_t worst_cert = 0;
  const std::uint64_t S = 4;
  for (int byz = 0; byz < 4; ++byz) {
    std::vector<bool> faulty(4, false);
    faulty[static_cast<std::size_t>(byz)] = true;
    const std::vector<counting::NodeId> fids = {byz};
    for (std::uint64_t cfgidx = 0; cfgidx < S * S * S; ++cfgidx) {
      std::vector<State> init(4);
      std::uint64_t rem = cfgidx;
      for (int i = 0; i < 4; ++i) {
        if (i == byz) {
          init[static_cast<std::size_t>(i)] = algo->state_from_index(0);
        } else {
          init[static_cast<std::size_t>(i)] = algo->state_from_index(rem % S);
          rem /= S;
        }
      }
      const std::uint64_t cert = adv.certified_distance(fids, init);
      sim::RunConfig cfg;
      cfg.algo = algo;
      cfg.faulty = faulty;
      cfg.initial = init;
      cfg.max_rounds = 48;
      cfg.seed = 2;
      const auto res = sim::run_execution(cfg, adv, 16);
      EXPECT_EQ(res.stabilisation_round, cert) << "config " << cfgidx << " byz " << byz;
      worst_measured = std::max(worst_measured, res.stabilisation_round);
      worst_cert = std::max(worst_cert, cert);
    }
  }
  EXPECT_EQ(worst_cert, 8u);
  EXPECT_EQ(worst_measured, 8u);
}

TEST(OptimalAdversary, NoFaultsStillWorks) {
  // With an empty faulty set the adversary has no one to control; the
  // algorithm's own worst case over initial configurations must still match.
  const auto algo =
      std::make_shared<TableAlgorithm>(synthesis::known_table_4_1_3states());
  synthesis::OptimalAdversary adv(algo);
  const std::vector<counting::NodeId> no_faults;
  util::Rng rng(3);
  std::uint64_t worst = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<State> init(4);
    for (auto& s : init) s = counting::arbitrary_state(*algo, rng);
    const auto cert = adv.certified_distance(no_faults, init);
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.initial = init;
    cfg.max_rounds = 32;
    cfg.seed = 4;
    const auto res = sim::run_execution(cfg, adv, 12);
    EXPECT_EQ(res.stabilisation_round, cert);
    worst = std::max(worst, res.stabilisation_round);
  }
  EXPECT_LE(worst, 6u);
}

TEST(OptimalAdversary, IsTheWorstStrategyObserved) {
  // No library adversary beats the optimal one on the same initial states.
  const auto algo =
      std::make_shared<TableAlgorithm>(synthesis::known_table_4_1_3states());
  synthesis::OptimalAdversary optimal(algo);
  const auto faulty = std::vector<bool>{false, true, false, false};
  const std::vector<counting::NodeId> fids = {1};
  util::Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<State> init(4);
    for (auto& s : init) s = counting::arbitrary_state(*algo, rng);
    const std::uint64_t cert = optimal.certified_distance(fids, init);
    for (const auto& name : sim::adversary_names()) {
      sim::RunConfig cfg;
      cfg.algo = algo;
      cfg.faulty = faulty;
      cfg.initial = init;
      cfg.max_rounds = 40;
      cfg.seed = 6 + static_cast<std::uint64_t>(trial);
      auto adv = sim::make_adversary(name);
      const auto res = sim::run_execution(cfg, *adv, 16);
      EXPECT_LE(res.stabilisation_round, cert) << name << " beat the certified bound";
    }
  }
}

TEST(OptimalAdversary, RejectsNonVerifiableAlgorithms) {
  EXPECT_THROW(synthesis::OptimalAdversary(
                   std::make_shared<counting::RandomizedCounter>(4, 1, 2)),
               std::invalid_argument);
}

}  // namespace
