// Chaos differential test of the sweep service: drives the REAL
// synccount_serve binary (path injected via SYNCCOUNT_SERVE by CMake),
// SIGKILLs workers mid-sweep through the deterministic fault injector,
// SIGKILLs the daemon itself between requests, restarts it on the same
// state directory -- and requires the merged result to be BYTE-identical
// to a single-process run of the same spec. Any lost group, double-counted
// group, or torn state file breaks the comparison.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "counting/algorithm_spec.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"

namespace {

using namespace synccount;

// synccount-lint: allow(nondet) -- ctest hands this test the real binaries'
// paths via the environment (see CMakeLists); no result bytes depend on it.
const char* serve_binary() { return std::getenv("SYNCCOUNT_SERVE"); }

#define REQUIRE_SERVE()                                                      \
  do {                                                                       \
    if (serve_binary() == nullptr) {                                         \
      GTEST_SKIP() << "SYNCCOUNT_SERVE not set (built without the service?)"; \
    }                                                                        \
  } while (false)

struct TempDir {
  TempDir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("synccount-chaos-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return (path / name).string(); }
  std::filesystem::path path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Forks + execs `synccount_serve args...`, with SYNCCOUNT_FAULTS set to
// `faults` in the child (cleared when empty). Output is silenced.
pid_t spawn_serve(const std::vector<std::string>& args, const std::string& faults = "") {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (faults.empty()) {
      ::unsetenv("SYNCCOUNT_FAULTS");
    } else {
      ::setenv("SYNCCOUNT_FAULTS", faults.c_str(), 1);
    }
    if (std::freopen("/dev/null", "w", stdout) == nullptr ||
        std::freopen("/dev/null", "w", stderr) == nullptr) {
      ::_exit(126);
    }
    std::vector<char*> argv;
    std::string bin = serve_binary();
    argv.push_back(bin.data());
    std::vector<std::string> copy = args;  // keep storage alive across execv
    for (std::string& a : copy) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  return pid;
}

// 128+SIGNAL for a signalled child, the exit status otherwise.
int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int run_serve(const std::vector<std::string>& args, const std::string& faults = "") {
  return wait_exit(spawn_serve(args, faults));
}

void await_socket(const std::string& path) {
  for (int i = 0; i < 400; ++i) {
    if (std::filesystem::exists(path)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "daemon socket never appeared: " << path;
}

// Small grid (6 cell-groups), cheap enough for the ASan job but wide enough
// that three workers and two kills all touch distinct groups.
sim::ExperimentSpec chaos_spec() {
  sim::ExperimentSpec spec;
  counting::AlgorithmSpec algo;
  algo.kind = counting::AlgorithmSpec::Kind::kTable;
  algo.table_name = "3states";
  spec.algorithm = algo;
  spec.adversaries = {"split", "silent", "random"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}, {"none", {}}};
  spec.seeds = 4;
  spec.base_seed = 0xC0FFEE;
  spec.max_rounds = 48;
  spec.margin = 8;
  return spec;
}

TEST(ServeChaos, KilledWorkersAndDaemonStillYieldTheByteIdenticalResult) {
  REQUIRE_SERVE();
  TempDir dir;
  const std::string sock = dir.file("sock");
  const std::string state = dir.file("state");
  const sim::ExperimentSpec spec = chaos_spec();

  // Single-process reference, computed in-process: the service's merged
  // result must match this byte for byte.
  const auto plan = sim::plan_shards(spec, 1, 0);
  std::ostringstream reference;
  write_partial(reference, make_partial(spec, plan, sim::Engine(1).run(spec, plan)));

  {
    std::ofstream out(dir.file("spec.json"), std::ios::binary);
    write_spec_file(out, spec);
  }

  const std::vector<std::string> daemon_args = {
      "serve", "--socket=" + sock, "--state-dir=" + state, "--lease-ms=1500"};
  pid_t daemon = spawn_serve(daemon_args);
  await_socket(sock);
  ASSERT_EQ(run_serve({"submit", "--socket=" + sock, "--job=chaos",
                       "--spec=" + dir.file("spec.json")}),
            0);

  // Worker 1: SIGKILL-equivalent death while computing its second group --
  // its first group is durable, the in-flight one is requeued.
  EXPECT_EQ(run_serve({"worker", "--socket=" + sock, "--id=w1"},
                      "worker.group=kill@2"),
            137);

  // SIGKILL the daemon between requests; restart it on the same state dir.
  // Every lease is forgotten (equivalent to all of them expiring at once),
  // but no durably completed group may be lost.
  ASSERT_EQ(::kill(daemon, SIGKILL), 0);
  EXPECT_EQ(wait_exit(daemon), 128 + SIGKILL);
  daemon = spawn_serve(daemon_args);
  await_socket(sock);

  // Worker 2: dies right before sending its second complete -- the group
  // was computed but never recorded; its lease must expire and requeue it.
  EXPECT_EQ(run_serve({"worker", "--socket=" + sock, "--id=w2"},
                      "worker.complete=kill@2"),
            137);

  // Worker 3: clean; waits out worker 2's orphaned lease and finishes the
  // grid.
  ASSERT_EQ(run_serve({"worker", "--socket=" + sock, "--id=w3"}), 0);

  ASSERT_EQ(run_serve({"results", "--socket=" + sock, "--job=chaos",
                       "--emit=" + dir.file("out.jsonl")}),
            0);
  ASSERT_EQ(run_serve({"shutdown", "--socket=" + sock}), 0);
  EXPECT_EQ(wait_exit(daemon), 0);

  const std::string merged = slurp(dir.file("out.jsonl"));
  EXPECT_EQ(merged, reference.str()) << "service result diverged from the "
                                        "single-process sweep";

  // Belt and braces: the merged partial parses, covers the whole grid
  // exactly once, and folds to the reference total.
  std::istringstream in(merged);
  const sim::ShardPartial partial = sim::read_partial(in, dir.file("out.jsonl"));
  EXPECT_EQ(partial.groups.size(), 6u);
  EXPECT_EQ(partial.plan.group_end, 6u);
}

TEST(ServeChaos, DaemonRestartResumesWithNoLostWorkAndIdempotentSubmit) {
  REQUIRE_SERVE();
  TempDir dir;
  const std::string sock = dir.file("sock");
  const std::string state = dir.file("state");
  const sim::ExperimentSpec spec = chaos_spec();
  {
    std::ofstream out(dir.file("spec.json"), std::ios::binary);
    write_spec_file(out, spec);
  }
  const std::vector<std::string> daemon_args = {
      "serve", "--socket=" + sock, "--state-dir=" + state, "--lease-ms=1500"};

  pid_t daemon = spawn_serve(daemon_args);
  await_socket(sock);
  ASSERT_EQ(run_serve({"submit", "--socket=" + sock, "--job=chaos",
                       "--spec=" + dir.file("spec.json")}),
            0);
  // Two groups done, then the daemon dies mid-service ("serve.tick" fires
  // between requests, with the queue mid-job).
  EXPECT_EQ(run_serve({"worker", "--socket=" + sock, "--id=w1"},
                      "worker.lease=kill@3"),
            137);
  ASSERT_EQ(::kill(daemon, SIGKILL), 0);
  EXPECT_EQ(wait_exit(daemon), 128 + SIGKILL);

  daemon = spawn_serve(daemon_args);
  await_socket(sock);
  // Re-submitting the same job after the restart is a no-op, not an error.
  ASSERT_EQ(run_serve({"submit", "--socket=" + sock, "--job=chaos",
                       "--spec=" + dir.file("spec.json")}),
            0);
  // A different spec under the same name IS an error (exit 1, not a hang).
  sim::ExperimentSpec other = spec;
  other.seeds = 2;
  {
    std::ofstream out(dir.file("other.json"), std::ios::binary);
    write_spec_file(out, other);
  }
  EXPECT_EQ(run_serve({"submit", "--socket=" + sock, "--job=chaos",
                       "--spec=" + dir.file("other.json")}),
            1);

  ASSERT_EQ(run_serve({"worker", "--socket=" + sock, "--id=w2"}), 0);
  ASSERT_EQ(run_serve({"results", "--socket=" + sock, "--job=chaos",
                       "--emit=" + dir.file("out.jsonl")}),
            0);
  ASSERT_EQ(run_serve({"shutdown", "--socket=" + sock}), 0);
  EXPECT_EQ(wait_exit(daemon), 0);

  const auto plan = sim::plan_shards(spec, 1, 0);
  std::ostringstream reference;
  write_partial(reference, make_partial(spec, plan, sim::Engine(1).run(spec, plan)));
  EXPECT_EQ(slurp(dir.file("out.jsonl")), reference.str());
}

}  // namespace
