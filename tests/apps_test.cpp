// Tests for the application layer: the repeated-consensus service built on a
// stabilising counter (agreement + validity + self-stabilisation) and the
// TDMA slot scheduler (mutual exclusion after stabilisation).
#include <gtest/gtest.h>

#include <set>

#include "apps/repeated_consensus.hpp"
#include "apps/tdma.hpp"
#include "boosting/planner.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"

namespace {

using namespace synccount;
using apps::RepeatedConsensus;

counting::AlgorithmPtr make_counter_mod_9() {
  // tau = 3(F+2) = 9 for F = 1; the service needs counter modulus % 9 == 0.
  return boosting::build_plan(boosting::plan_practical(1, 9));
}

struct ConsensusRun {
  std::vector<std::vector<std::uint64_t>> decisions;  // [round][correct-index]
  std::vector<counting::NodeId> correct_ids;
  std::uint64_t rounds = 0;
};

ConsensusRun run_service(const std::shared_ptr<RepeatedConsensus>& svc,
                         const std::vector<bool>& faulty, std::uint64_t seed,
                         std::uint64_t rounds, const std::string& adversary) {
  sim::RunConfig cfg;
  cfg.algo = svc;
  cfg.faulty = faulty;
  cfg.max_rounds = rounds;
  cfg.seed = seed;
  cfg.record_outputs = true;
  auto adv = sim::make_adversary(adversary);
  const auto res = sim::run_execution(cfg, *adv, 1);
  return ConsensusRun{res.outputs, res.correct_ids, res.rounds};
}

// --- RepeatedConsensus --------------------------------------------------------

TEST(RepeatedConsensus, ConstructionChecks) {
  const auto counter = make_counter_mod_9();
  EXPECT_THROW(RepeatedConsensus(nullptr, 1, 4, {0, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(RepeatedConsensus(counter, 2, 4, {0, 0, 0, 0}), std::invalid_argument);  // N<=3F
  EXPECT_THROW(RepeatedConsensus(counter, 1, 1, {0, 0, 0, 0}), std::invalid_argument);  // V<2
  EXPECT_THROW(RepeatedConsensus(counter, 1, 4, {0, 0, 0}), std::invalid_argument);     // size
  EXPECT_THROW(RepeatedConsensus(counter, 1, 4, {0, 0, 0, 9}), std::invalid_argument);  // range
  // Modulus not a multiple of tau:
  const auto bad = boosting::build_plan(boosting::plan_practical(1, 8));
  EXPECT_THROW(RepeatedConsensus(bad, 1, 4, {0, 0, 0, 0}), std::invalid_argument);
  EXPECT_NO_THROW(RepeatedConsensus(counter, 1, 4, {3, 1, 2, 0}));
}

TEST(RepeatedConsensus, ValidityUnderByzantineNode) {
  // All correct nodes propose 5; the Byzantine node equivocates. Every
  // decision after stabilisation must be 5.
  const auto counter = make_counter_mod_9();
  const auto svc = std::make_shared<RepeatedConsensus>(
      counter, 1, 8, std::vector<std::uint64_t>{5, 5, 5, 5});
  const auto bound = *svc->stabilisation_bound();
  const auto run = run_service(svc, sim::faults_prefix(4, 1), 21, bound + 60, "split");
  for (std::uint64_t r = bound + 18; r < run.rounds; ++r) {
    for (std::size_t j = 0; j < run.correct_ids.size(); ++j) {
      EXPECT_EQ(run.decisions[r][j], 5u) << "round " << r;
    }
  }
}

TEST(RepeatedConsensus, AgreementWithMixedProposals) {
  const auto counter = make_counter_mod_9();
  const auto svc = std::make_shared<RepeatedConsensus>(
      counter, 1, 8, std::vector<std::uint64_t>{1, 7, 2, 4});
  const auto bound = *svc->stabilisation_bound();
  for (const std::string adv : {"split", "random", "targeted-vote"}) {
    const auto run = run_service(svc, sim::faults_spread(4, 1), 22, bound + 60, adv);
    for (std::uint64_t r = bound + 18; r < run.rounds; ++r) {
      const auto v = run.decisions[r][0];
      for (std::size_t j = 1; j < run.correct_ids.size(); ++j) {
        EXPECT_EQ(run.decisions[r][j], v) << adv << " round " << r;
      }
      EXPECT_LT(v, 8u);
    }
  }
}

TEST(RepeatedConsensus, FaultFreeDecidesAProposal) {
  // Without faults the decision is one of the proposals (the phase king
  // picks a value that >F nodes reported, and all reports are honest).
  const auto counter = make_counter_mod_9();
  const std::vector<std::uint64_t> proposals{3, 3, 6, 6};
  const auto svc = std::make_shared<RepeatedConsensus>(counter, 1, 8, proposals);
  const auto bound = *svc->stabilisation_bound();
  const auto run = run_service(svc, {}, 23, bound + 60, "random");
  const std::set<std::uint64_t> allowed(proposals.begin(), proposals.end());
  for (std::uint64_t r = bound + 18; r < run.rounds; ++r) {
    EXPECT_TRUE(allowed.count(run.decisions[r][0]))
        << "decision " << run.decisions[r][0] << " not among proposals";
  }
}

TEST(RepeatedConsensus, StateBitsAccounting) {
  const auto counter = make_counter_mod_9();
  const auto svc = std::make_shared<RepeatedConsensus>(
      counter, 1, 8, std::vector<std::uint64_t>{0, 0, 0, 0});
  // [counter | a (log2(V+1)) | d | decision (log2 V)]
  EXPECT_EQ(svc->state_bits(), counter->state_bits() + 4 + 1 + 3);
  EXPECT_EQ(svc->modulus(), 8u);
  EXPECT_EQ(svc->resilience(), 1);
}

TEST(RepeatedConsensus, CanonicalizeTotal) {
  const auto counter = make_counter_mod_9();
  const auto svc = std::make_shared<RepeatedConsensus>(
      counter, 1, 5, std::vector<std::uint64_t>{1, 2, 3, 4});
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const auto s = counting::arbitrary_state(*svc, rng);
    EXPECT_EQ(svc->canonicalize(s), s);
    EXPECT_LT(svc->output(0, s), 5u);
  }
}

// --- TDMA -----------------------------------------------------------------------

TEST(Tdma, SlotArithmetic) {
  const apps::TdmaSchedule sched{4};
  EXPECT_EQ(sched.slot_of(0), 0);
  EXPECT_EQ(sched.slot_of(7), 3);
  EXPECT_TRUE(sched.may_transmit(2, 6));
  EXPECT_FALSE(sched.may_transmit(2, 7));
}

TEST(Tdma, AuditCountsCollisions) {
  const apps::TdmaSchedule sched{3};
  // Two subsystems 0 and 1; rounds: both think counter=0 (collision for
  // owner 0? owner 0 transmits at 0, owner 1 at 1): r0: outputs (0,0):
  // owner0 transmits, owner1 doesn't -> exclusive. r1: (1,1): owner1 only.
  // r2: (0,1): both transmit -> collision. r3: (2,2): none -> idle.
  const std::vector<std::vector<std::uint64_t>> outputs = {{0, 0}, {1, 1}, {0, 1}, {2, 2}};
  const auto audit = apps::audit_tdma(sched, outputs, {0, 1}, 0);
  EXPECT_EQ(audit.rounds, 4u);
  EXPECT_EQ(audit.exclusive_rounds, 2u);
  EXPECT_EQ(audit.collisions, 1u);
  EXPECT_EQ(audit.idle_rounds, 1u);
}

TEST(Tdma, NoCollisionsAfterStabilisation) {
  const auto algo = boosting::build_plan(boosting::plan_practical(3, 12));
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_block_concentrated(3, 4, 1, 3);
  cfg.max_rounds = 2500;
  cfg.seed = 15;
  cfg.record_outputs = true;
  auto adv = sim::make_adversary("targeted-vote");
  const auto res = sim::run_execution(cfg, *adv, 64);
  ASSERT_TRUE(res.stabilised);

  const apps::TdmaSchedule sched{12};
  std::vector<int> owners(res.correct_ids.begin(), res.correct_ids.end());
  const auto audit = apps::audit_tdma(sched, res.outputs, owners, res.stabilisation_round);
  EXPECT_EQ(audit.collisions, 0u);
  // Every correct subsystem gets a turn: 9 exclusive slots per 12 rounds.
  EXPECT_GT(audit.exclusive_rounds, audit.rounds / 2);
}

}  // namespace
