// Property-based tests: independent reference implementations and randomized
// fuzzing cross-check the optimised production code paths.
//
//  * phase-king step vs a naive literal re-implementation of Table 2;
//  * BitVec vs a plain bool-array model under random operation sequences;
//  * the stabilisation checker vs planted valid suffixes;
//  * BoostedCounter construction invariants over a (k, F, C) grid.
#include <gtest/gtest.h>

#include <map>

#include "boosting/boosted_counter.hpp"
#include "boosting/planner.hpp"
#include "counting/trivial.hpp"
#include "util/math.hpp"
#include "phaseking/phase_king.hpp"
#include "sim/checker.hpp"
#include "util/rng.hpp"

namespace {

using namespace synccount;
using phaseking::kInfinity;
using phaseking::Registers;

// --- Phase king vs reference oracle ------------------------------------------

// A deliberately naive, allocation-happy, literal transcription of Table 2.
Registers reference_step(const phaseking::Params& p, int index, const Registers& own,
                         const std::vector<std::uint64_t>& received,
                         phaseking::StepMode mode) {
  auto increment = [&](std::uint64_t a) -> std::uint64_t {
    if (a == kInfinity) return a;
    if (mode == phaseking::StepMode::kValue) return a % p.C;
    return (a + 1) % p.C;
  };
  Registers out = own;
  const int l = index / 3;
  switch (index % 3) {
    case 0: {
      int same = 0;
      for (auto a : received) same += a == own.a ? 1 : 0;
      if (same < p.N - p.F) out.a = kInfinity;
      out.a = increment(out.a);
      break;
    }
    case 1: {
      std::map<std::uint64_t, int> z;
      for (auto a : received) ++z[a];
      out.d = z[own.a] >= p.N - p.F;
      out.a = kInfinity;
      for (const auto& [value, count] : z) {  // std::map iterates ascending
        if (value != kInfinity && value < p.C && count > p.F) {
          out.a = value;
          break;
        }
      }
      out.a = increment(out.a);
      break;
    }
    default: {
      if (out.a == kInfinity || !out.d) {
        out.a = std::min<std::uint64_t>(p.C, received[static_cast<std::size_t>(l)]);
      }
      out.d = true;
      out.a = increment(out.a);
      break;
    }
  }
  return out;
}

class PhaseKingOracle : public ::testing::TestWithParam<int> {};

TEST_P(PhaseKingOracle, MatchesReferenceOnRandomInputs) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 4000; ++trial) {
    const int F = static_cast<int>(rng.next_below(4));
    const int N = 3 * F + 1 + static_cast<int>(rng.next_below(4));
    const std::uint64_t C = 2 + rng.next_below(30);
    const phaseking::Params p{N, F, C};
    if (N < F + 2) continue;
    const int index = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p.tau())));
    const auto mode = rng.next_bool() ? phaseking::StepMode::kCounting
                                      : phaseking::StepMode::kValue;
    std::vector<std::uint64_t> received(static_cast<std::size_t>(N));
    for (auto& a : received) a = rng.next_bool(0.2) ? kInfinity : rng.next_below(C);
    const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(N)));
    const Registers own{received[static_cast<std::size_t>(v)], rng.next_bool()};

    const Registers fast = phaseking::step(p, index, v, own, received, mode);
    const Registers slow = reference_step(p, index, own, received, mode);
    ASSERT_EQ(fast.a, slow.a) << "trial " << trial << " index " << index << " N " << N
                              << " F " << F << " C " << C;
    ASSERT_EQ(fast.d, slow.d) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseKingOracle, ::testing::Values(1, 2, 3, 4));

// --- BitVec fuzz vs bool-array model ------------------------------------------

TEST(BitVecFuzz, MatchesBoolArrayModel) {
  util::Rng rng(0xB17);
  for (int round = 0; round < 200; ++round) {
    util::BitVec v;
    std::vector<bool> model(util::BitVec::kCapacityBits, false);
    for (int op = 0; op < 60; ++op) {
      const int width = 1 + static_cast<int>(rng.next_below(64));
      const int offset =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(util::BitVec::kCapacityBits - width + 1)));
      const std::uint64_t value = rng.next_u64();
      v.set_bits(offset, width, value);
      for (int b = 0; b < width; ++b) {
        model[static_cast<std::size_t>(offset + b)] = ((value >> b) & 1U) != 0;
      }
      // Random readback.
      const int rwidth = 1 + static_cast<int>(rng.next_below(64));
      const int roffset = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(util::BitVec::kCapacityBits - rwidth + 1)));
      std::uint64_t expect = 0;
      for (int b = 0; b < rwidth; ++b) {
        if (model[static_cast<std::size_t>(roffset + b)]) expect |= 1ULL << b;
      }
      ASSERT_EQ(v.get_bits(roffset, rwidth), expect) << "round " << round << " op " << op;
    }
    // truncate agrees with the model.
    const int cut = static_cast<int>(rng.next_below(util::BitVec::kCapacityBits + 1));
    v.truncate(cut);
    for (int b = cut; b < util::BitVec::kCapacityBits; ++b) {
      model[static_cast<std::size_t>(b)] = false;
    }
    for (int b = 0; b < util::BitVec::kCapacityBits; ++b) {
      ASSERT_EQ(v.get_bit(b), model[static_cast<std::size_t>(b)]) << "bit " << b;
    }
  }
}

// --- Checker vs planted suffixes ------------------------------------------------

TEST(CheckerProperty, FindsPlantedSuffixExactly) {
  util::Rng rng(0xC43C);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t c = 2 + rng.next_below(9);
    const int nodes = 1 + static_cast<int>(rng.next_below(5));
    const std::uint64_t total = 20 + rng.next_below(60);
    const std::uint64_t planted = rng.next_below(total - 5);

    sim::StabilisationChecker checker(c);
    std::uint64_t base = rng.next_below(c);
    std::uint64_t prev_disagree_value = 0;
    for (std::uint64_t r = 0; r < total; ++r) {
      std::vector<std::uint64_t> outs(static_cast<std::size_t>(nodes));
      if (r < planted) {
        // Noise that is guaranteed invalid at round `planted - 1`: force
        // either disagreement (if >= 2 nodes) or a non-increment.
        if (nodes >= 2) {
          for (std::size_t j = 0; j < outs.size(); ++j) {
            outs[j] = (prev_disagree_value + j) % c;  // disagreement
          }
          ++prev_disagree_value;
        } else {
          // Repeat the suffix's base value: a repeat is never an increment,
          // and the noise cannot chain into the planted suffix either.
          outs[0] = base;
        }
      } else {
        for (auto& o : outs) o = (base + r - planted) % c;
      }
      checker.observe(outs);
    }
    ASSERT_EQ(checker.suffix_start(), planted) << "trial " << trial << " c " << c;
    ASSERT_EQ(checker.suffix_length(), total - planted);
  }
}

// --- BoostedCounter construction grid --------------------------------------------

struct GridCase {
  int k;
  int F;
  std::uint64_t C;
};

class BoostedGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(BoostedGrid, ConstructionInvariants) {
  const auto& gc = GetParam();
  const std::uint64_t need = boosting::required_input_modulus(gc.k, gc.F);
  auto base = std::make_shared<counting::TrivialCounter>(need);
  const auto b = std::make_shared<boosting::BoostedCounter>(
      base, boosting::BoostParams{gc.k, gc.F, gc.C});

  // Theorem 1 cost formulas.
  EXPECT_EQ(b->num_nodes(), gc.k);
  EXPECT_EQ(b->state_bits(),
            base->state_bits() + util::ceil_log2(gc.C + 1) + 1);
  EXPECT_EQ(*b->stabilisation_bound(), need);
  EXPECT_EQ(b->tau(), 3 * (gc.F + 2));
  // Block moduli are nested divisors of the input modulus.
  for (int i = 0; i < gc.k; ++i) {
    EXPECT_EQ(need % b->block_modulus(i), 0u) << i;
    if (i > 0) {
      EXPECT_EQ(b->block_modulus(i) % b->block_modulus(i - 1), 0u);
    }
  }
  // Canonicalisation is total and idempotent; outputs in range.
  util::Rng rng(77);
  for (int t = 0; t < 20; ++t) {
    const auto s = counting::arbitrary_state(*b, rng);
    EXPECT_EQ(b->canonicalize(s), s);
    EXPECT_LT(b->output(0, s), gc.C);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoostedGrid,
    ::testing::Values(GridCase{3, 0, 2}, GridCase{7, 2, 4}, GridCase{4, 1, 2},
                      GridCase{4, 1, 100}, GridCase{5, 1, 7}, GridCase{6, 1, 3},
                      GridCase{6, 1, 960}, GridCase{4, 1, 2304}),
    [](const ::testing::TestParamInfo<GridCase>& pinfo) {
      // Appends, not one operator+ chain: GCC 12's -Wrestrict false-positive
      // (PR105651) fires on chained std::string concatenation under -O2.
      std::string name = "k";
      name += std::to_string(pinfo.param.k);
      name += "_F";
      name += std::to_string(pinfo.param.F);
      name += "_C";
      name += std::to_string(pinfo.param.C);
      return name;
    });

// --- Planner properties across the whole schedule family -------------------------

TEST(PlannerProperty, EveryPracticalPlanIsInternallyConsistent) {
  for (int f = 1; f <= 40; ++f) {
    const auto plan = boosting::plan_practical(f, 2);
    // Moduli thread: level i's C equals level i+1's required input modulus.
    for (std::size_t i = 0; i + 1 < plan.levels.size(); ++i) {
      EXPECT_EQ(plan.levels[i].C,
                boosting::required_input_modulus(plan.levels[i + 1].k, plan.levels[i + 1].F))
          << "f " << f << " level " << i;
    }
    EXPECT_EQ(plan.base_modulus,
              boosting::required_input_modulus(plan.levels[0].k, plan.levels[0].F));
    // Resilience reaches the target exactly and respects F < (f+1)m.
    int prev = 0;
    for (const auto& lv : plan.levels) {
      EXPECT_LT(lv.F, (prev + 1) * ((lv.k + 1) / 2));
      prev = lv.F;
    }
    EXPECT_EQ(prev, f);
    // The built algorithm matches the plan.
    const auto algo = boosting::build_plan(plan);
    EXPECT_EQ(algo->resilience(), f);
    EXPECT_GT(algo->num_nodes(), 3 * f);
  }
}

}  // namespace
