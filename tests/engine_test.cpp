// Tests for the batched experiment engine: the thread pool, the streaming
// accumulator, the deterministic cell-seed stream, and above all the engine
// contract that aggregates are identical for any thread count and match a
// hand-rolled loop of run_execution calls.
#include <gtest/gtest.h>

#include <cmath>
#include <atomic>
#include <set>

#include "boosting/planner.hpp"
#include "counting/randomized.hpp"
#include "counting/table_algorithm.hpp"
#include "counting/trivial.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"
#include "sim/sink.hpp"
#include "synthesis/known_tables.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace synccount;

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(20, [&](std::size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

// --- StreamingStats ----------------------------------------------------------

TEST(StreamingStats, MatchesBatchSummary) {
  const std::vector<double> xs = {5, 1, 4, 1, 3, 9, 2, 6};
  util::StreamingStats acc;
  for (double x : xs) acc.add(x);
  const auto batch = util::summarize(xs);
  EXPECT_EQ(acc.count(), batch.count);
  EXPECT_DOUBLE_EQ(acc.mean(), batch.mean);
  EXPECT_NEAR(acc.stddev(), batch.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), batch.min);
  EXPECT_DOUBLE_EQ(acc.max(), batch.max);
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), batch.median);
  EXPECT_DOUBLE_EQ(acc.quantile(0.9), batch.p90);
}

TEST(StreamingStats, MergeEqualsSequentialAdds) {
  util::StreamingStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i * 1.5);
    all.add(i * 1.5);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.stddev(), all.stddev());
  EXPECT_DOUBLE_EQ(a.quantile(0.95), all.quantile(0.95));
}

TEST(StreamingStats, EmptyQuantileIsNaN) {
  util::StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// --- Cell seeds --------------------------------------------------------------

TEST(Engine, CellSeedsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) seen.insert(sim::cell_seed(0x9000, i));
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(sim::cell_seed(1, 0), sim::cell_seed(2, 0));
}

// --- Engine ------------------------------------------------------------------

sim::ExperimentSpec small_grid_spec() {
  sim::ExperimentSpec spec;
  spec.algo = boosting::build_plan(boosting::plan_practical(1, 2));
  const int n = spec.algo->num_nodes();
  spec.placements = {{"spread", sim::faults_spread(n, 1)},
                     {"prefix", sim::faults_prefix(n, 1)}};
  spec.adversaries = {"split", "random"};
  spec.seeds = 3;
  spec.stop_after_stable = 60;
  spec.margin = 50;
  return spec;
}

void expect_same_aggregate(const sim::AggregateResult& a, const sim::AggregateResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.stabilised, b.stabilised);
  EXPECT_EQ(a.max_pulls, b.max_pulls);
  EXPECT_EQ(a.stabilisation.count(), b.stabilisation.count());
  // Bit-identical, not just close: the fold order is fixed.
  EXPECT_EQ(a.stabilisation.mean(), b.stabilisation.mean());
  EXPECT_EQ(a.stabilisation.stddev(), b.stabilisation.stddev());
  EXPECT_EQ(a.stabilisation.min(), b.stabilisation.min());
  EXPECT_EQ(a.stabilisation.max(), b.stabilisation.max());
  EXPECT_EQ(a.stabilisation.quantile(0.5), b.stabilisation.quantile(0.5));
  EXPECT_EQ(a.stabilisation.quantile(0.95), b.stabilisation.quantile(0.95));
  EXPECT_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_EQ(a.avg_pulls.mean(), b.avg_pulls.mean());
}

TEST(Engine, ThreadCountDoesNotChangeAggregates) {
  const auto spec = small_grid_spec();
  const sim::Engine serial(1);
  const sim::Engine parallel4(4);
  EXPECT_EQ(serial.threads(), 1);
  EXPECT_EQ(parallel4.threads(), 4);

  const auto a = serial.run(spec);
  const auto b = parallel4.run(spec);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].seed, b.cells[i].seed);
    EXPECT_EQ(a.cells[i].result.stabilisation_round, b.cells[i].result.stabilisation_round);
    EXPECT_EQ(a.cells[i].result.rounds, b.cells[i].result.rounds);
  }
  expect_same_aggregate(a.total, b.total);
  for (std::size_t adv = 0; adv < spec.adversaries.size(); ++adv) {
    for (std::size_t pl = 0; pl < spec.placements.size(); ++pl) {
      expect_same_aggregate(a.aggregate(adv, pl), b.aggregate(adv, pl));
    }
  }
}

TEST(Engine, MatchesHandRolledRunExecutionLoop) {
  const auto spec = small_grid_spec();
  const sim::Engine engine(2);
  const auto result = engine.run(spec);

  // The reference loop: same grid, same cell-seed stream, plain run_execution.
  util::StreamingStats ref_stab;
  std::uint64_t ref_runs = 0, ref_stabilised = 0;
  std::size_t idx = 0;
  for (const auto& adv_name : spec.adversaries) {
    for (const auto& placement : spec.placements) {
      for (int s = 0; s < spec.seeds; ++s, ++idx) {
        sim::RunConfig cfg;
        cfg.algo = spec.algo;
        cfg.faulty = placement.faulty;
        cfg.max_rounds = *spec.algo->stabilisation_bound() + spec.extra_rounds;
        cfg.seed = sim::cell_seed(spec.base_seed, idx);
        cfg.stop_after_stable = spec.stop_after_stable;
        auto adv = sim::make_adversary(adv_name);
        const auto res = sim::run_execution(cfg, *adv, spec.margin);
        ++ref_runs;
        if (res.stabilised) {
          ++ref_stabilised;
          ref_stab.add(static_cast<double>(res.stabilisation_round));
        }
      }
    }
  }

  EXPECT_EQ(result.total.runs, ref_runs);
  EXPECT_EQ(result.total.stabilised, ref_stabilised);
  EXPECT_EQ(result.total.stabilisation.count(), ref_stab.count());
  EXPECT_EQ(result.total.stabilisation.mean(), ref_stab.mean());
  EXPECT_EQ(result.total.stabilisation.min(), ref_stab.min());
  EXPECT_EQ(result.total.stabilisation.max(), ref_stab.max());
  EXPECT_EQ(result.total.stabilisation.quantile(0.5), ref_stab.quantile(0.5));
  EXPECT_EQ(result.total.stabilisation.quantile(0.95), ref_stab.quantile(0.95));
}

TEST(Engine, BatchedAndScalarBackendsGiveIdenticalAggregates) {
  // A shared TableAlgorithm with batchable adversaries takes the bit-parallel
  // batched backend; forcing Backend::kScalar must not change any aggregate
  // bit (the full per-RunResult comparison lives in batch_runner_test.cpp).
  sim::ExperimentSpec spec;
  spec.algo =
      std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_3states());
  spec.adversaries = {"silent", "split", "random"};
  spec.placements = {{"none", {}}, {"spread", sim::faults_spread(4, 1)}};
  spec.seeds = 70;  // crosses the 64-lane chunk boundary
  spec.stop_after_stable = 40;
  spec.margin = 30;

  const sim::Engine engine(2);
  const auto batched = engine.run(spec);
  EXPECT_EQ(batched.batched_cells, batched.cells.size());

  spec.backend = sim::Backend::kScalar;
  const auto scalar = engine.run(spec);
  EXPECT_EQ(scalar.batched_cells, 0u);

  ASSERT_EQ(batched.cells.size(), scalar.cells.size());
  for (std::size_t i = 0; i < batched.cells.size(); ++i) {
    EXPECT_EQ(batched.cells[i].seed, scalar.cells[i].seed);
    EXPECT_EQ(batched.cells[i].result.rounds, scalar.cells[i].result.rounds);
    EXPECT_EQ(batched.cells[i].result.stabilisation_round,
              scalar.cells[i].result.stabilisation_round);
  }
  expect_same_aggregate(batched.total, scalar.total);
  for (std::size_t adv = 0; adv < spec.adversaries.size(); ++adv) {
    for (std::size_t pl = 0; pl < spec.placements.size(); ++pl) {
      expect_same_aggregate(batched.aggregate(adv, pl), scalar.aggregate(adv, pl));
    }
  }
}

TEST(Engine, ProfilesRecordBackendAndWorkPerGroup) {
  // Groups landing on different backends in one run: silent batches on the
  // bit-sliced table backend, lookahead is not batchable and stays scalar.
  sim::ExperimentSpec spec;
  spec.algo =
      std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_3states());
  spec.adversaries = {"silent", "lookahead"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}, {"none", {}}};
  spec.seeds = 6;
  spec.stop_after_stable = 40;
  spec.margin = 30;

  const auto result = sim::Engine(2).run(spec);
  ASSERT_EQ(result.profiles.size(), sim::group_count(spec));
  for (std::size_t adv = 0; adv < spec.adversaries.size(); ++adv) {
    for (std::size_t pl = 0; pl < spec.placements.size(); ++pl) {
      const auto& p = result.profiles[adv * spec.placements.size() + pl];
      EXPECT_GT(p.node_rounds(), 0u) << spec.adversaries[adv];
      EXPECT_FALSE(p.saturated());
      EXPECT_EQ(p.backend(),
                spec.adversaries[adv] == "silent" ? sim::GroupProfile::kBatched
                                                  : sim::GroupProfile::kScalar)
          << spec.adversaries[adv] << "/" << spec.placements[pl].name;
    }
  }
  // Some compute time was attributed somewhere (individual groups can be too
  // fast for the clock's resolution, but not the whole grid).
  std::uint64_t nanos = 0;
  for (const auto& p : result.profiles) nanos += p.nanos;
  EXPECT_GT(nanos, 0u);

  // node-rounds (unlike nanos) are a pure function of the executions, so the
  // packed word is identical whatever the thread count.
  const auto serial = sim::Engine(1).run(spec);
  ASSERT_EQ(serial.profiles.size(), result.profiles.size());
  for (std::size_t lg = 0; lg < result.profiles.size(); ++lg) {
    EXPECT_EQ(serial.profiles[lg].packed, result.profiles[lg].packed) << lg;
  }

  // The composed-tower backend tags its groups as such.
  const auto composed = sim::Engine(1).run(small_grid_spec());
  ASSERT_FALSE(composed.profiles.empty());
  EXPECT_EQ(composed.profiles[0].backend(), sim::GroupProfile::kComposed);
}

TEST(Engine, SketchModeIsThreadCountInvariant) {
  sim::ExperimentSpec spec = small_grid_spec();
  spec.stats = util::StatsMode::kSketch;
  const auto a = sim::Engine(1).run(spec);
  const auto b = sim::Engine(4).run(spec);
  EXPECT_EQ(a.total.rounds.mode(), util::StatsMode::kSketch);
  // Byte-level equality of the serialised aggregates: identical sketch
  // levels/parities and moments, not just close quantiles.
  EXPECT_EQ(sim::aggregate_to_json(a.total).dump(), sim::aggregate_to_json(b.total).dump());
  for (std::size_t adv = 0; adv < spec.adversaries.size(); ++adv) {
    for (std::size_t pl = 0; pl < spec.placements.size(); ++pl) {
      EXPECT_EQ(sim::aggregate_to_json(a.aggregate(adv, pl)).dump(),
                sim::aggregate_to_json(b.aggregate(adv, pl)).dump());
    }
  }
}

TEST(Engine, DefaultPlacementIsFaultFree) {
  sim::ExperimentSpec spec;
  spec.algo = std::make_shared<counting::TrivialCounter>(4);
  spec.adversaries = {"silent"};
  spec.seeds = 2;
  spec.max_rounds = 40;
  spec.margin = 10;
  const sim::Engine engine(1);
  const auto result = engine.run(spec);
  EXPECT_EQ(result.total.runs, 2u);
  EXPECT_EQ(result.total.stabilised, 2u);
}

TEST(Engine, CustomAdversaryFactoryIsUsed) {
  sim::ExperimentSpec spec;
  spec.algo = boosting::build_plan(boosting::plan_practical(1, 2));
  spec.placements = {{"spread", sim::faults_spread(spec.algo->num_nodes(), 1)}};
  spec.adversaries = {"custom-silent"};
  spec.seeds = 2;
  spec.stop_after_stable = 60;
  spec.margin = 50;
  std::atomic<int> built{0};
  spec.adversary_factory = [&built](const std::string& name) {
    EXPECT_EQ(name, "custom-silent");
    ++built;
    return sim::make_adversary("silent");
  };
  const sim::Engine engine(2);
  const auto result = engine.run(spec);
  EXPECT_EQ(built.load(), 2);
  EXPECT_EQ(result.total.runs, 2u);
}

TEST(Engine, RecordStatesSingleCell) {
  sim::ExperimentSpec spec;
  spec.algo = std::make_shared<counting::TrivialCounter>(8);
  spec.adversaries = {"silent"};
  spec.seeds = 1;
  spec.max_rounds = 6;
  spec.margin = 2;
  sim::RecordSink record(/*outputs=*/false, /*states=*/true);
  const sim::Engine engine(1);
  const auto result = engine.run(spec, {&record});
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells.front().result.states.size(), 6u);
}

TEST(Engine, ExplicitSeedsPinTheExecution) {
  sim::ExperimentSpec spec;
  spec.algo = std::make_shared<counting::TrivialCounter>(8);
  spec.adversaries = {"silent"};
  spec.seeds = 2;
  spec.explicit_seeds = {2, 77};
  spec.max_rounds = 20;
  spec.margin = 5;
  sim::RecordSink record(/*outputs=*/true);
  const sim::Engine engine(1);
  const auto result = engine.run(spec, {&record});
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].seed, 2u);
  EXPECT_EQ(result.cells[1].seed, 77u);

  // Cell 0 must be byte-identical to a direct run_execution with seed 2.
  sim::RunConfig cfg;
  cfg.algo = spec.algo;
  cfg.max_rounds = 20;
  cfg.seed = 2;
  cfg.record_outputs = true;
  auto adv = sim::make_adversary("silent");
  const auto direct = sim::run_execution(cfg, *adv, 5);
  EXPECT_EQ(result.cells[0].result.outputs, direct.outputs);

  // Size mismatch is rejected.
  spec.explicit_seeds = {1};
  EXPECT_THROW(engine.run(spec), std::invalid_argument);
}

TEST(Engine, RejectsEmptySpec) {
  const sim::Engine engine(1);
  sim::ExperimentSpec spec;
  EXPECT_THROW(engine.run(spec), std::invalid_argument);
  spec.algo = std::make_shared<counting::TrivialCounter>(4);
  spec.adversaries.clear();
  EXPECT_THROW(engine.run(spec), std::invalid_argument);
  spec.adversaries = {"silent"};
  spec.seeds = 0;
  EXPECT_THROW(engine.run(spec), std::invalid_argument);
}

// --- Runner hot-path equivalence --------------------------------------------

// The receiver-oblivious fast path must produce byte-identical executions to
// the generic per-receiver path; run the same config under an adversary that
// IS oblivious but doesn't declare it, and one that declares it.
class UndeclaredSilent final : public sim::Adversary {
 public:
  sim::State message(std::uint64_t, counting::NodeId, counting::NodeId,
                     std::span<const sim::State>, const counting::CountingAlgorithm& algo,
                     util::Rng&) override {
    return algo.canonicalize(sim::State{});
  }
  std::string name() const override { return "undeclared-silent"; }
};

TEST(Runner, ObliviousFastPathMatchesGenericPath) {
  const auto algo = boosting::build_plan(boosting::plan_practical(1, 2));
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_spread(algo->num_nodes(), 1);
  cfg.max_rounds = 120;
  cfg.seed = 42;
  cfg.record_outputs = true;

  auto declared = sim::make_adversary("silent");
  ASSERT_TRUE(declared->receiver_oblivious());
  UndeclaredSilent undeclared;
  ASSERT_FALSE(undeclared.receiver_oblivious());

  const auto fast = sim::run_execution(cfg, *declared, 50);
  const auto slow = sim::run_execution(cfg, undeclared, 50);
  EXPECT_EQ(fast.outputs, slow.outputs);
  EXPECT_EQ(fast.stabilisation_round, slow.stabilisation_round);
  EXPECT_EQ(fast.rounds, slow.rounds);
}

TEST(Runner, AvgPullsIncludesZeroPullSamples) {
  // Broadcast algorithm: nothing is ever pulled, mean must be exactly 0.
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::TrivialCounter>(4);
  cfg.max_rounds = 10;
  auto adv = sim::make_adversary("silent");
  const auto res = sim::run_execution(cfg, *adv, 2);
  EXPECT_EQ(res.max_pulls_per_round, 0u);
  EXPECT_DOUBLE_EQ(res.avg_pulls_per_round, 0.0);
}

}  // namespace
