// Tests for the simulator: the stabilisation checker, fault placements,
// adversary plumbing (per-receiver equivocation) and the runner contract.
#include <gtest/gtest.h>

#include <set>

#include "counting/randomized.hpp"
#include "counting/trivial.hpp"
#include "sim/adversaries.hpp"
#include "sim/checker.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"

namespace {

using namespace synccount;
using counting::State;

// --- StabilisationChecker --------------------------------------------------

TEST(Checker, PerfectCountingFromRoundZero) {
  sim::StabilisationChecker c(4);
  for (std::uint64_t r = 0; r < 12; ++r) {
    const std::uint64_t outs[] = {r % 4, r % 4, r % 4};
    c.observe(outs);
  }
  EXPECT_EQ(c.suffix_start(), 0u);
  EXPECT_EQ(c.suffix_length(), 12u);
}

TEST(Checker, DisagreementResetsSuffix) {
  sim::StabilisationChecker c(4);
  const std::uint64_t bad[] = {0, 1};
  c.observe(bad);  // round 0: disagreement
  for (std::uint64_t r = 1; r < 8; ++r) {
    const std::uint64_t outs[] = {r % 4, r % 4};
    c.observe(outs);
  }
  EXPECT_EQ(c.suffix_start(), 1u);
  EXPECT_EQ(c.suffix_length(), 7u);
}

TEST(Checker, NonIncrementResetsSuffix) {
  sim::StabilisationChecker c(4);
  const std::uint64_t a0[] = {1, 1};
  const std::uint64_t a1[] = {2, 2};
  const std::uint64_t a2[] = {2, 2};  // stuck: not an increment
  const std::uint64_t a3[] = {3, 3};
  c.observe(a0);
  c.observe(a1);
  c.observe(a2);
  c.observe(a3);
  EXPECT_EQ(c.suffix_start(), 2u);  // valid suffix = rounds 2,3 (2 -> 3)
  EXPECT_EQ(c.suffix_length(), 2u);
}

TEST(Checker, WrapAroundCountsAsIncrement) {
  sim::StabilisationChecker c(3);
  for (std::uint64_t r = 0; r < 9; ++r) {
    const std::uint64_t outs[] = {(5 + r) % 3};
    c.observe(outs);
  }
  EXPECT_EQ(c.suffix_start(), 0u);
}

TEST(Checker, LateStabilisationMeasured) {
  sim::StabilisationChecker c(5);
  util::Rng rng(4);
  for (int r = 0; r < 7; ++r) {
    const std::uint64_t outs[] = {rng.next_below(5), rng.next_below(5)};
    c.observe(outs);  // noise; may accidentally agree, so no assertion here
  }
  const std::uint64_t base = c.rounds();
  // Begin disagreeing for one round to pin the suffix, then count correctly.
  const std::uint64_t split[] = {0, 1};
  c.observe(split);
  for (std::uint64_t r = 0; r < 10; ++r) {
    const std::uint64_t outs[] = {r % 5, r % 5};
    c.observe(outs);
  }
  EXPECT_EQ(c.suffix_start(), base + 1);
  EXPECT_EQ(c.suffix_length(), 10u);
}

// --- fault placements --------------------------------------------------------

TEST(Faults, Prefix) {
  const auto v = sim::faults_prefix(6, 2);
  EXPECT_EQ(sim::fault_count(v), 2);
  EXPECT_TRUE(v[0] && v[1]);
  EXPECT_FALSE(v[2]);
  EXPECT_EQ(sim::fault_ids(v), (std::vector<int>{0, 1}));
}

TEST(Faults, SpreadCoversRange) {
  const auto v = sim::faults_spread(12, 4);
  EXPECT_EQ(sim::fault_count(v), 4);
  // Spread: one fault per quarter.
  EXPECT_TRUE(v[0]);
  EXPECT_TRUE(v[3]);
  EXPECT_TRUE(v[6]);
  EXPECT_TRUE(v[9]);
}

TEST(Faults, RandomPlacementHasExactCount) {
  util::Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const auto v = sim::faults_random(10, 3, rng);
    EXPECT_EQ(sim::fault_count(v), 3);
  }
}

TEST(Faults, BlockConcentratedCorruptsWholeBlocksFirst) {
  // k=3 blocks of 4 nodes, inner tolerance f=1: each corrupted block gets
  // f+1 = 2 faults. 5 faults => blocks 0,1 corrupted (2 each) + 1 spill.
  const auto v = sim::faults_block_concentrated(3, 4, 1, 5);
  EXPECT_EQ(sim::fault_count(v), 5);
  EXPECT_TRUE(v[0] && v[1]);   // block 0: 2 faults
  EXPECT_TRUE(v[4] && v[5]);   // block 1: 2 faults
  EXPECT_TRUE(v[8]);           // spill into block 2? No: spill fills first free slot
}

TEST(Faults, LeaderBlocksTargetsEligibleBlocks) {
  // k=4 -> m=2 leader-eligible blocks (0 and 1).
  const auto v = sim::faults_leader_blocks(4, 3, 0, 2);
  EXPECT_EQ(sim::fault_count(v), 2);
  EXPECT_TRUE(v[0]);
  EXPECT_TRUE(v[3]);  // one fault (f_inner+1 = 1) per leader block
}

TEST(Faults, RejectsOutOfRange) {
  EXPECT_THROW(sim::faults_prefix(4, 5), std::invalid_argument);
  EXPECT_THROW(sim::faults_spread(4, -1), std::invalid_argument);
}

// --- adversary plumbing ------------------------------------------------------

// An adversary that tells each receiver a different counter value and
// records which (sender, receiver) pairs were queried.
class ProbeAdversary final : public sim::Adversary {
 public:
  State message(std::uint64_t, counting::NodeId sender, counting::NodeId receiver,
                std::span<const State>, const counting::CountingAlgorithm& algo,
                util::Rng&) override {
    queried.insert({sender, receiver});
    State s;
    s.set_bits(0, algo.state_bits(), static_cast<std::uint64_t>(receiver));
    return s;
  }
  std::string name() const override { return "probe"; }
  std::set<std::pair<int, int>> queried;
};

TEST(Runner, AdversaryQueriedPerReceiver) {
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::TrivialCounter>(4);
  cfg.max_rounds = 3;
  // A single node, which is correct; no faults allowed for n=1 (f=0), so use
  // a 4-node randomized-free scenario instead: trivial counter is n=1, so
  // build the probe scenario around the fault-free path.
  auto probe = std::make_unique<ProbeAdversary>();
  const auto res = sim::run_execution(cfg, *probe, 2);
  EXPECT_TRUE(res.stabilised);
  EXPECT_TRUE(probe->queried.empty());  // no faulty nodes -> never queried
}

TEST(Runner, RejectsTooManyFaults) {
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::TrivialCounter>(4);
  cfg.faulty = {true};
  cfg.max_rounds = 2;
  auto adv = sim::make_adversary("silent");
  EXPECT_THROW(sim::run_execution(cfg, *adv), std::invalid_argument);
}

TEST(Runner, ExplicitInitialStatesRespected) {
  sim::RunConfig cfg;
  auto algo = std::make_shared<counting::TrivialCounter>(10);
  cfg.algo = algo;
  cfg.max_rounds = 5;
  cfg.record_outputs = true;
  cfg.initial = {algo->state_from_index(7)};
  auto adv = sim::make_adversary("silent");
  const auto res = sim::run_execution(cfg, *adv, 2);
  ASSERT_EQ(res.outputs.size(), 5u);
  EXPECT_EQ(res.outputs[0][0], 7u);
  EXPECT_EQ(res.outputs[1][0], 8u);
  EXPECT_EQ(res.outputs[4][0], 1u);  // wrapped mod 10
}

TEST(Runner, StopAfterStableEndsEarly) {
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::TrivialCounter>(4);
  cfg.max_rounds = 1000;
  cfg.stop_after_stable = 10;
  auto adv = sim::make_adversary("silent");
  const auto res = sim::run_execution(cfg, *adv, 5);
  EXPECT_LT(res.rounds, 20u);
  EXPECT_TRUE(res.stabilised);
}

TEST(Runner, RecordsStateTrace) {
  sim::RunConfig cfg;
  cfg.algo = std::make_shared<counting::TrivialCounter>(4);
  cfg.max_rounds = 4;
  cfg.record_states = true;
  auto adv = sim::make_adversary("silent");
  const auto res = sim::run_execution(cfg, *adv, 2);
  ASSERT_EQ(res.states.size(), 4u);
  EXPECT_EQ(res.states[0].size(), 1u);
}

TEST(Adversaries, FactoryKnowsAllNames) {
  for (const auto& name : sim::adversary_names()) {
    EXPECT_NE(sim::make_adversary(name), nullptr) << name;
  }
  EXPECT_THROW(sim::make_adversary("nope"), std::invalid_argument);
}

TEST(Adversaries, DeterministicGivenSeed) {
  // The same seed must give the same execution (full reproducibility).
  auto run_once = [] {
    sim::RunConfig cfg;
    cfg.algo = std::make_shared<counting::RandomizedCounter>(4, 1, 2);
    cfg.faulty = sim::faults_prefix(4, 1);
    cfg.max_rounds = 300;
    cfg.seed = 77;
    cfg.record_outputs = true;
    auto adv = sim::make_adversary("random");
    return sim::run_execution(cfg, *adv, 50);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.stabilisation_round, b.stabilisation_round);
}

}  // namespace
