// Tests for the Theorem 1 construction: parameter validation, the bit-exact
// state layout, the derived block counters and leader pointers (Lemmas 1-2),
// the majority votes (Lemma 3) and full end-to-end stabilisation under
// adversarial Byzantine behaviour, including the recursive instances of
// Section 4 / Figure 2.
#include <gtest/gtest.h>

#include <memory>

#include "boosting/boosted_counter.hpp"
#include "boosting/leader_split_adversary.hpp"
#include "boosting/planner.hpp"
#include "counting/trivial.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "util/math.hpp"

namespace {

using namespace synccount;
using boosting::BoostedCounter;
using boosting::BoostParams;
using counting::State;

std::shared_ptr<const BoostedCounter> make_4_1(std::uint64_t C = 8) {
  // k = 4 one-node blocks, F = 1: tau = 9, (2m)^k = 256, c0 = 2304.
  auto base = std::make_shared<counting::TrivialCounter>(2304);
  return std::make_shared<BoostedCounter>(base, BoostParams{4, 1, C});
}

// --- Construction checks -----------------------------------------------------

TEST(BoostedCounterCtor, ValidatesParameters) {
  auto base = std::make_shared<counting::TrivialCounter>(2304);
  EXPECT_THROW(BoostedCounter(base, BoostParams{2, 1, 8}), std::invalid_argument);  // k < 3
  EXPECT_THROW(BoostedCounter(base, BoostParams{4, 1, 1}), std::invalid_argument);  // C < 2
  EXPECT_THROW(BoostedCounter(base, BoostParams{4, 2, 8}), std::invalid_argument);  // F >= (f+1)m
  EXPECT_THROW(BoostedCounter(nullptr, BoostParams{4, 1, 8}), std::invalid_argument);
  // Modulus not a multiple of 3(F+2)(2m)^k:
  auto bad_base = std::make_shared<counting::TrivialCounter>(2303);
  EXPECT_THROW(BoostedCounter(bad_base, BoostParams{4, 1, 8}), std::invalid_argument);
}

TEST(BoostedCounterCtor, DerivedParameters) {
  const auto b = make_4_1();
  EXPECT_EQ(b->num_nodes(), 4);
  EXPECT_EQ(b->resilience(), 1);
  EXPECT_EQ(b->k(), 4);
  EXPECT_EQ(b->m(), 2);
  EXPECT_EQ(b->tau(), 9);
  EXPECT_EQ(b->level_time_cost(), 2304u);
  EXPECT_EQ(b->block_modulus(0), 36u);    // tau*(2m)^1
  EXPECT_EQ(b->block_modulus(3), 2304u);  // tau*(2m)^4
  EXPECT_THROW(b->block_modulus(4), std::invalid_argument);
}

TEST(BoostedCounterCtor, StateBitsMatchTheorem1) {
  // S(B) = S(A) + ceil(log(C+1)) + 1.
  const auto b = make_4_1(8);
  const int sa = counting::TrivialCounter(2304).state_bits();
  EXPECT_EQ(b->state_bits(), sa + 4 + 1);  // ceil(log2 9) = 4
  const auto b2 = make_4_1(100);
  EXPECT_EQ(b2->state_bits(), sa + 7 + 1);  // ceil(log2 101) = 7
}

TEST(BoostedCounterCtor, TimeBoundMatchesTheorem1) {
  const auto b = make_4_1();
  ASSERT_TRUE(b->stabilisation_bound().has_value());
  EXPECT_EQ(*b->stabilisation_bound(), 0u + 3 * (1 + 2) * 256);
}

// --- State layout / decoding --------------------------------------------------

TEST(BoostedCounterState, DecodeRoundTrip) {
  const auto b = make_4_1(8);
  util::Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const State s = counting::arbitrary_state(*b, rng);
    const auto dec = b->decode(s);
    // Rebuild and compare.
    State rebuilt = dec.inner;
    rebuilt.set_bits(b->inner().state_bits(), phaseking::a_bits(8),
                     phaseking::encode_a(dec.a, 8));
    rebuilt.set_bit(b->inner().state_bits() + phaseking::a_bits(8), dec.d);
    EXPECT_EQ(rebuilt, s);
  }
}

TEST(BoostedCounterState, CanonicalizeIsIdempotentAndTotal) {
  const auto b = make_4_1(8);
  util::Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    State raw;
    for (int off = 0; off < b->state_bits(); off += 64) {
      raw.set_bits(off, std::min(64, b->state_bits() - off), rng.next_u64());
    }
    const State c1 = b->canonicalize(raw);
    EXPECT_EQ(b->canonicalize(c1), c1);
    // Output of any canonical state is within range.
    EXPECT_LT(b->output(0, c1), 8u);
  }
}

TEST(BoostedCounterState, OutputReadsPhaseKingRegister) {
  const auto b = make_4_1(8);
  State s;
  s.set_bits(b->inner().state_bits(), phaseking::a_bits(8), 5);
  EXPECT_EQ(b->output(2, s), 5u);
  // Infinity maps to 0.
  s.set_bits(b->inner().state_bits(), phaseking::a_bits(8), 8);
  EXPECT_EQ(b->output(2, s), 0u);
}

// --- Derived block counters (Lemma 1 setup) ----------------------------------

TEST(BlockView, InterpretsInnerOutputAsRYB) {
  const auto b = make_4_1(8);  // tau = 9, 2m = 4
  // Inner = trivial(2304); block 1 has modulus tau*(2m)^2 = 144.
  counting::TrivialCounter inner(2304);
  // Inner output 2000: value = 2000 mod 144 = 128; r = 128 mod 9 = 2,
  // y = 14; b = floor(14 / 4) mod 2 = 3 mod 2 = 1.
  const State s = inner.state_from_index(2000);
  const auto bv = b->block_view(1, 0, s);
  EXPECT_EQ(bv.value, 128u);
  EXPECT_EQ(bv.r, 2u);
  EXPECT_EQ(bv.y, 14u);
  EXPECT_EQ(bv.b, 1u);
}

TEST(BlockView, LeaderPointerCyclesThroughLeaders) {
  const auto b = make_4_1(8);
  counting::TrivialCounter inner(2304);
  // Block 0: c_0 = 36, y in [4], b = y mod 2: leaders 0,1,0,1 over 36 rounds.
  std::set<std::uint64_t> leaders;
  for (std::uint64_t v = 0; v < 36; ++v) {
    leaders.insert(b->block_view(0, 0, inner.state_from_index(v)).b);
  }
  EXPECT_EQ(leaders.size(), 2u);
}

// --- Lemmas 1 and 2 on a live fault-free execution ----------------------------

TEST(BoostingLemmas, PointersAlignForEveryLeader) {
  const auto algo = make_4_1(8);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.max_rounds = 2304 + 64;
  cfg.seed = 31;
  cfg.record_states = true;
  auto adv = sim::make_adversary("silent");
  const auto res = sim::run_execution(cfg, *adv, 32);

  const int k = algo->k();
  const int tau = algo->tau();
  // b[i] timeline per block (blocks are single nodes here).
  std::vector<std::vector<std::uint64_t>> b_of(static_cast<std::size_t>(k));
  for (std::size_t r = 0; r < res.states.size(); ++r) {
    for (int i = 0; i < k; ++i) {
      b_of[static_cast<std::size_t>(i)].push_back(
          algo->block_view(i, 0, res.states[r][static_cast<std::size_t>(i)]).b);
    }
  }

  // Lemma 1: interior runs of block i's pointer have length c_{i-1}.
  for (int i = 0; i < k; ++i) {
    const std::uint64_t expected_run = static_cast<std::uint64_t>(tau) *
                                       util::ipow(4, static_cast<unsigned>(i));  // tau*(2m)^i
    const auto& tl = b_of[static_cast<std::size_t>(i)];
    std::vector<std::uint64_t> runs;
    std::uint64_t len = 1;
    for (std::size_t r = 1; r < tl.size(); ++r) {
      if (tl[r] == tl[r - 1]) {
        ++len;
      } else {
        runs.push_back(len);
        len = 1;
      }
    }
    ASSERT_GE(runs.size(), 2u) << "block " << i;
    for (std::size_t j = 1; j < runs.size(); ++j) {  // skip the truncated first run
      EXPECT_EQ(runs[j], expected_run) << "block " << i << " run " << j;
    }
  }

  // Lemma 2: within c_k = 2304 rounds, for every leader beta there is a
  // window of tau rounds where all blocks point at beta simultaneously.
  for (std::uint64_t beta = 0; beta < 2; ++beta) {
    bool found = false;
    for (std::size_t u = 0; u + tau < res.states.size() && u < 2304; ++u) {
      bool all = true;
      for (std::size_t q = u; q < u + static_cast<std::size_t>(tau) && all; ++q) {
        for (int i = 0; i < k; ++i) {
          if (b_of[static_cast<std::size_t>(i)][q] != beta) {
            all = false;
            break;
          }
        }
      }
      if (all) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no common window for leader " << beta;
  }
}

// --- Votes (Lemma 3 machinery) -------------------------------------------------

TEST(Votes, MajorityAndDefaults) {
  const auto algo = make_4_1(8);
  counting::TrivialCounter inner(2304);
  // Craft received states: all four blocks' inner counters at value v such
  // that every block points at leader 1 and block 1 has r = 4.
  // For block i, b = floor((v mod c_i)/tau / 4^i) mod 2.
  std::vector<State> received(4);
  // v = 36+9*4=..., simpler: choose per-block inner values independently.
  // Block 0: c0=36: v0 = 9*1=9 -> y=1 -> b=1, r=0.
  // Block 1: c1=144: v1 = 9*4 + 4 = 40 -> r=4, y=4, b = (4/4)%2 = 1.
  // Block 2: c2=576: v2 = 9*16 = 144 -> y=16, b = (16/16)%2 = 1.
  // Block 3: c3=2304: v3 = 9*64 = 576 -> y=64, b = (64/64)%2 = 1.
  const std::uint64_t vals[] = {9, 40, 144, 576};
  for (int i = 0; i < 4; ++i) {
    received[static_cast<std::size_t>(i)] = inner.state_from_index(vals[i]);
  }
  const auto vt = algo->votes(received);
  EXPECT_EQ(vt.block_leader, (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(vt.B, 1u);
  EXPECT_EQ(vt.R, 4u);  // r of block 1
}

TEST(Votes, SplitBlockVotesFallBackToDefault) {
  // Two blocks pointing at 0, two at 1: no strict majority of the k=4 block
  // votes -> B defaults to 0.
  const auto algo = make_4_1(8);
  counting::TrivialCounter inner(2304);
  const std::uint64_t vals[] = {9, 40, 0, 0};  // blocks 0,1 -> b=1; blocks 2,3 -> b=0
  std::vector<State> received(4);
  for (int i = 0; i < 4; ++i) {
    received[static_cast<std::size_t>(i)] = inner.state_from_index(vals[i]);
  }
  const auto vt = algo->votes(received);
  EXPECT_EQ(vt.B, 0u);
}

// --- Theorem 1 end-to-end -------------------------------------------------------

struct EndToEndCase {
  std::string adversary;
  std::string placement;  // "prefix" or "spread"
  std::uint64_t seed;
};

class Theorem1EndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(Theorem1EndToEnd, FourNodeCounterStabilisesWithinBound) {
  const auto& pc = GetParam();
  const auto algo = make_4_1(8);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = pc.placement == "prefix" ? sim::faults_prefix(4, 1) : sim::faults_spread(4, 1);
  cfg.max_rounds = *algo->stabilisation_bound() + 200;
  cfg.seed = pc.seed;
  auto adv = sim::make_adversary(pc.adversary);
  const auto res = sim::run_execution(cfg, *adv, 100);
  EXPECT_TRUE(res.stabilised) << "suffix " << res.suffix_length;
  EXPECT_LE(res.stabilisation_round, *algo->stabilisation_bound());
}

INSTANTIATE_TEST_SUITE_P(
    AllAdversaries, Theorem1EndToEnd,
    ::testing::Values(EndToEndCase{"silent", "prefix", 1}, EndToEndCase{"silent", "spread", 2},
                      EndToEndCase{"random", "prefix", 3}, EndToEndCase{"random", "spread", 4},
                      EndToEndCase{"split", "prefix", 5}, EndToEndCase{"split", "spread", 6},
                      EndToEndCase{"mirror", "prefix", 7}, EndToEndCase{"mirror", "spread", 8},
                      EndToEndCase{"targeted-vote", "prefix", 9},
                      EndToEndCase{"targeted-vote", "spread", 10},
                      EndToEndCase{"lookahead", "prefix", 11},
                      EndToEndCase{"lookahead", "spread", 12}),
    [](const ::testing::TestParamInfo<EndToEndCase>& pinfo) {
      std::string n = pinfo.param.adversary + "_" + pinfo.param.placement;
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(Theorem1EndToEnd, FaultFreeStabilises) {
  const auto algo = make_4_1(8);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.max_rounds = *algo->stabilisation_bound() + 200;
  cfg.seed = 20;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 100);
  EXPECT_TRUE(res.stabilised);
}

TEST(Theorem1EndToEnd, EchoFaultIsHarmless) {
  // A "Byzantine" node that follows the protocol must never delay
  // stabilisation beyond the bound.
  const auto algo = make_4_1(8);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_prefix(4, 1);
  cfg.max_rounds = *algo->stabilisation_bound() + 200;
  cfg.seed = 21;
  auto adv = sim::make_adversary("echo");
  const auto res = sim::run_execution(cfg, *adv, 100);
  EXPECT_TRUE(res.stabilised);
}

TEST(Theorem1EndToEnd, LargerOutputModulus) {
  const auto algo = make_4_1(100);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_prefix(4, 1);
  cfg.max_rounds = *algo->stabilisation_bound() + 400;
  cfg.seed = 22;
  auto adv = sim::make_adversary("split");
  const auto res = sim::run_execution(cfg, *adv, 250);
  EXPECT_TRUE(res.stabilised);
}

TEST(Theorem1EndToEnd, ZeroResilienceLevelWorks) {
  // F = 0 is a degenerate but legal Theorem 1 instance (tau = 6).
  auto base = std::make_shared<counting::TrivialCounter>(6 * 64);  // 3(0+2)*4^3
  const auto algo = std::make_shared<BoostedCounter>(base, BoostParams{3, 0, 4});
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.max_rounds = *algo->stabilisation_bound() + 100;
  cfg.seed = 23;
  auto adv = sim::make_adversary("random");
  const auto res = sim::run_execution(cfg, *adv, 50);
  EXPECT_TRUE(res.stabilised);
}

// --- The construction-aware attack ------------------------------------------------

TEST(LeaderSplitAdversary, BoundHoldsUnderConstructionAwareAttack) {
  const auto algo = make_4_1(8);
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    boosting::LeaderSplitAdversary adv(algo);
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_prefix(4, 1);
    cfg.max_rounds = *algo->stabilisation_bound() + 200;
    cfg.seed = seed;
    const auto res = sim::run_execution(cfg, adv, 100);
    EXPECT_TRUE(res.stabilised) << seed;
    EXPECT_LE(res.stabilisation_round, *algo->stabilisation_bound()) << seed;
  }
}

TEST(LeaderSplitAdversary, BoundHoldsOnRecursiveInstance) {
  const auto plan = boosting::plan_practical(3, 16);
  const auto algo = std::dynamic_pointer_cast<const BoostedCounter>(
      boosting::build_plan(plan));
  ASSERT_NE(algo, nullptr);
  boosting::LeaderSplitAdversary adv(algo);
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_block_concentrated(3, 4, 1, 3);
  cfg.max_rounds = *algo->stabilisation_bound() + 300;
  cfg.seed = 44;
  const auto res = sim::run_execution(cfg, adv, 150);
  EXPECT_TRUE(res.stabilised);
  EXPECT_LE(res.stabilisation_round, *algo->stabilisation_bound());
}

TEST(StateWithOutput, BuildsStatesWithRequestedOutputs) {
  const auto algo = make_4_1(8);
  for (std::uint64_t target = 0; target < 8; ++target) {
    const State s = algo->state_with_output(0, target);
    EXPECT_EQ(algo->output(0, s), target);
    // The state is canonical (usable as a forged message).
    EXPECT_EQ(algo->canonicalize(s), s);
  }
  EXPECT_THROW(algo->state_with_output(0, 8), std::invalid_argument);
}

TEST(StateWithOutput, DefaultScanWorksForTables) {
  counting::TrivialCounter t(6);
  for (std::uint64_t target = 0; target < 6; ++target) {
    EXPECT_EQ(t.output(0, t.state_with_output(0, target)), target);
  }
}

// --- Recursive instances (Section 4 / Figure 2) ---------------------------------

TEST(Recursion, TwelveNodesThreeFaults) {
  const auto algo = boosting::build_plan(boosting::plan_practical(3, 16));
  EXPECT_EQ(algo->num_nodes(), 12);
  EXPECT_EQ(algo->resilience(), 3);
  ASSERT_TRUE(algo->stabilisation_bound().has_value());
  EXPECT_EQ(*algo->stabilisation_bound(), 2304u + 960u);

  sim::RunConfig cfg;
  cfg.algo = algo;
  // Worst placement: fully corrupt one block (f_inner+1 = 2 faults) and
  // spread the rest.
  cfg.faulty = sim::faults_block_concentrated(3, 4, 1, 3);
  cfg.max_rounds = *algo->stabilisation_bound() + 300;
  cfg.seed = 41;
  auto adv = sim::make_adversary("split");
  const auto res = sim::run_execution(cfg, *adv, 150);
  EXPECT_TRUE(res.stabilised);
  EXPECT_LE(res.stabilisation_round, *algo->stabilisation_bound());
}

TEST(Recursion, Figure2ThirtySixNodesSevenFaults) {
  const auto algo = boosting::build_plan(boosting::plan_practical(7, 10));
  EXPECT_EQ(algo->num_nodes(), 36);
  EXPECT_EQ(algo->resilience(), 7);
  EXPECT_EQ(*algo->stabilisation_bound(), 2304u + 960u + 1728u);

  sim::RunConfig cfg;
  cfg.algo = algo;
  // Figure 2's drawing: one fully faulty 12-node block (4 faults) plus
  // faults sprinkled over the other blocks.
  cfg.faulty = sim::faults_block_concentrated(3, 12, 3, 7);
  cfg.max_rounds = *algo->stabilisation_bound() + 300;
  cfg.seed = 42;
  auto adv = sim::make_adversary("targeted-vote");
  const auto res = sim::run_execution(cfg, *adv, 150);
  EXPECT_TRUE(res.stabilised);
  EXPECT_LE(res.stabilisation_round, *algo->stabilisation_bound());
}

}  // namespace
