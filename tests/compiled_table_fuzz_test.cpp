// Randomized fuzz tests for counting::CompiledTable: random valid
// transition tables across sizes, state counts and symmetry classes, with
// the compiled representation (per-(node, sender) radix strides, expanded
// output map) checked against the reference TransitionTable::g_index
// arithmetic and the full TableAlgorithm::transition on every input.
#include <gtest/gtest.h>

#include "counting/table_algorithm.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

using namespace synccount;
using counting::CompiledTable;
using counting::Symmetry;
using counting::TransitionTable;

TransitionTable random_table(util::Rng& rng) {
  TransitionTable t;
  t.n = static_cast<int>(rng.next_in(1, 4));
  t.f = static_cast<int>(rng.next_in(0, (t.n - 1) / 3));
  t.num_states = rng.next_in(1, 5);
  t.modulus = rng.next_in(2, 9);
  const std::uint64_t sym = rng.next_below(3);
  t.symmetry = sym == 0 ? Symmetry::kUniform : sym == 1 ? Symmetry::kCyclic
                                                        : Symmetry::kPerNode;
  t.g.resize(t.expected_g_size());
  for (auto& v : t.g) v = static_cast<std::uint8_t>(rng.next_below(t.num_states));
  t.h.resize(t.expected_h_size());
  for (auto& v : t.h) v = static_cast<std::uint8_t>(rng.next_below(t.modulus));
  t.label = "fuzz";
  return t;
}

// Enumerate every received vector (canonical state index per sender).
template <typename Fn>
void for_each_vector(int n, std::uint64_t num_states, Fn&& fn) {
  std::vector<std::uint64_t> vec(static_cast<std::size_t>(n), 0);
  const std::uint64_t total = util::ipow(num_states, static_cast<unsigned>(n));
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t rest = code;
    for (int s = 0; s < n; ++s) {
      vec[static_cast<std::size_t>(s)] = rest % num_states;
      rest /= num_states;
    }
    fn(std::span<const std::uint64_t>(vec));
  }
}

TEST(CompiledTableFuzz, GIndexMatchesReferenceOnAllInputs) {
  util::Rng rng(0xF022);
  for (int trial = 0; trial < 60; ++trial) {
    const TransitionTable t = random_table(rng);
    const CompiledTable ct = CompiledTable::compile(t);
    ASSERT_EQ(ct.n, t.n);
    ASSERT_EQ(ct.num_states, t.num_states);
    ASSERT_EQ(ct.bits, util::ceil_log2(t.num_states));
    std::vector<std::uint8_t> idx(static_cast<std::size_t>(t.n));
    for_each_vector(t.n, t.num_states, [&](std::span<const std::uint64_t> vec) {
      for (int s = 0; s < t.n; ++s) {
        idx[static_cast<std::size_t>(s)] = static_cast<std::uint8_t>(vec[static_cast<std::size_t>(s)]);
      }
      for (int node = 0; node < t.n; ++node) {
        const std::uint64_t expect = t.g_index(node, vec);
        ASSERT_EQ(ct.g_index(node, idx.data()), expect)
            << "trial=" << trial << " node=" << node << " sym=" << to_string(t.symmetry);
        ASSERT_EQ(ct.next(node, idx.data()), t.g[static_cast<std::size_t>(expect)]);
      }
    });
  }
}

TEST(CompiledTableFuzz, TransitionAndOutputMatchLookupsOnAllInputs) {
  util::Rng rng(0xF0F0);
  for (int trial = 0; trial < 40; ++trial) {
    const TransitionTable t = random_table(rng);
    const counting::TableAlgorithm algo(t);
    const CompiledTable& ct = algo.compiled();
    counting::TransitionContext ctx;
    std::vector<counting::State> received(static_cast<std::size_t>(t.n));
    std::vector<std::uint8_t> idx(static_cast<std::size_t>(t.n));
    for_each_vector(t.n, t.num_states, [&](std::span<const std::uint64_t> vec) {
      for (int s = 0; s < t.n; ++s) {
        received[static_cast<std::size_t>(s)] = algo.state_from_index(vec[static_cast<std::size_t>(s)]);
        idx[static_cast<std::size_t>(s)] = static_cast<std::uint8_t>(vec[static_cast<std::size_t>(s)]);
      }
      for (int node = 0; node < t.n; ++node) {
        // The scalar transition must agree with the compiled kernel lookup...
        const counting::State next = algo.transition(node, received, ctx);
        ASSERT_EQ(algo.state_to_index(next), ct.next(node, idx.data()))
            << "trial=" << trial << " node=" << node;
        // ...and with the raw g entry addressed by the reference arithmetic.
        ASSERT_EQ(algo.state_to_index(next),
                  t.g[static_cast<std::size_t>(t.g_index(node, vec))]);
      }
    });
    // Expanded output map: node-major h equals the shared/per-node source.
    for (int node = 0; node < t.n; ++node) {
      for (std::uint64_t x = 0; x < t.num_states; ++x) {
        const std::size_t src =
            t.per_node() ? static_cast<std::size_t>(node) * t.num_states + x : x;
        ASSERT_EQ(ct.out(node, static_cast<std::uint8_t>(x)), t.h[src]);
        ASSERT_EQ(algo.output(node, algo.state_from_index(x)), t.h[src]);
      }
    }
  }
}

TEST(CompiledTableFuzz, CanonicalizeReducesArbitraryPatternsConsistently) {
  util::Rng rng(0xFACE);
  for (int trial = 0; trial < 40; ++trial) {
    const TransitionTable t = random_table(rng);
    const counting::TableAlgorithm algo(t);
    for (int draw = 0; draw < 50; ++draw) {
      counting::State raw;
      raw.set_bits(0, 64, rng.next_u64());
      const counting::State canon = algo.canonicalize(raw);
      ASSERT_LT(algo.state_to_index(canon), t.num_states);
      // Identity on valid encodings.
      ASSERT_EQ(algo.canonicalize(canon), canon);
      // Decoding matches the index arithmetic the batched kernels use.
      ASSERT_EQ(algo.state_to_index(canon),
                raw.get_bits(0, algo.state_bits()) % t.num_states);
    }
  }
}

}  // namespace
