// Tests for the phase-king instruction sets (Table 2) and the standalone
// consensus driver: exact step semantics, Lemma 4 (a non-faulty king's three
// instruction sets establish agreement) and Lemma 5 (agreement persists under
// every instruction set), under adversarial Byzantine behaviour.
#include <gtest/gtest.h>

#include "phaseking/consensus.hpp"
#include "phaseking/phase_king.hpp"
#include "util/rng.hpp"

namespace {

using namespace synccount::phaseking;

Params params(int N, int F, std::uint64_t C) { return Params{N, F, C}; }

// --- Params / encoding ------------------------------------------------------

TEST(PhaseKingParams, TauIsThreeFPlusTwo) {
  EXPECT_EQ(params(4, 1, 8).tau(), 9);
  EXPECT_EQ(params(7, 2, 8).tau(), 12);
  EXPECT_EQ(params(4, 0, 2).tau(), 6);
}

TEST(PhaseKingParams, Validation) {
  EXPECT_NO_THROW(params(4, 1, 8).validate());
  EXPECT_THROW(params(3, 1, 8).validate(), std::invalid_argument);   // N <= 3F
  EXPECT_THROW(params(4, 1, 1).validate(), std::invalid_argument);   // C < 2
  EXPECT_THROW(params(1, 0, 2).validate(), std::invalid_argument);   // N < F+2
}

TEST(PhaseKingEncoding, RoundTripAndClamp) {
  const std::uint64_t C = 10;
  EXPECT_EQ(a_bits(C), 4);
  for (std::uint64_t a = 0; a < C; ++a) {
    EXPECT_EQ(decode_a(encode_a(a, C), C), a);
  }
  EXPECT_EQ(decode_a(encode_a(kInfinity, C), C), kInfinity);
  // Arbitrary (Byzantine) patterns >= C decode to infinity.
  EXPECT_EQ(decode_a(12, C), kInfinity);
  EXPECT_EQ(decode_a(15, C), kInfinity);
}

// --- Single-step semantics ---------------------------------------------------

TEST(PhaseKingStep, I0ResetsWithoutQuorum) {
  // N=4, F=1: fewer than N-F = 3 copies of own value -> reset to infinity.
  const Params p = params(4, 1, 8);
  const std::uint64_t recv[] = {5, 6, 7, 3};
  const Registers out = step(p, 0, 0, Registers{5, true}, recv);
  EXPECT_EQ(out.a, kInfinity);
  EXPECT_TRUE(out.d);  // I_{3l} does not touch d
}

TEST(PhaseKingStep, I0KeepsAndIncrementsWithQuorum) {
  const Params p = params(4, 1, 8);
  const std::uint64_t recv[] = {5, 5, 5, 0};
  const Registers out = step(p, 0, 0, Registers{5, false}, recv);
  EXPECT_EQ(out.a, 6u);
}

TEST(PhaseKingStep, I0WrapsModC) {
  const Params p = params(4, 1, 8);
  const std::uint64_t recv[] = {7, 7, 7, 7};
  EXPECT_EQ(step(p, 0, 0, Registers{7, false}, recv).a, 0u);
}

TEST(PhaseKingStep, I1SetsDAndPicksSmallestFrequentValue) {
  const Params p = params(4, 1, 8);
  // z_5 = 3 >= N-F -> d=1; values with z_j > F=1: {5}; min = 5 -> a = 5+1.
  const std::uint64_t recv[] = {5, 5, 5, 2};
  const Registers out = step(p, 1, 0, Registers{5, false}, recv);
  EXPECT_TRUE(out.d);
  EXPECT_EQ(out.a, 6u);
}

TEST(PhaseKingStep, I1ClearsDWithoutQuorum) {
  const Params p = params(4, 1, 8);
  // z_5 = 2 < 3 -> d=0; frequent values: {5} (z=2 > F=1) -> a = 5+1.
  const std::uint64_t recv[] = {5, 5, 2, 3};
  const Registers out = step(p, 1, 0, Registers{5, true}, recv);
  EXPECT_FALSE(out.d);
  EXPECT_EQ(out.a, 6u);
}

TEST(PhaseKingStep, I1NoFrequentValueGivesInfinity) {
  const Params p = params(4, 1, 8);
  const std::uint64_t recv[] = {1, 2, 3, 4};  // all counts = 1 = F
  const Registers out = step(p, 1, 0, Registers{1, false}, recv);
  EXPECT_EQ(out.a, kInfinity);
}

TEST(PhaseKingStep, I1PrefersSmallestValue) {
  const Params p = params(7, 2, 8);
  // Values 6 and 2 both have z > F=2; min is 2 -> a = 3.
  const std::uint64_t recv[] = {6, 6, 6, 2, 2, 2, 0};
  EXPECT_EQ(step(p, 1, 0, Registers{0, false}, recv).a, 3u);
}

TEST(PhaseKingStep, I1InfinityMajorityCountsForD) {
  const Params p = params(4, 1, 8);
  // Own value infinity seen 3 times -> d=1, but min{j in [C]: z_j > F} has no
  // candidate -> a stays infinity.
  const std::uint64_t inf = kInfinity;
  const std::uint64_t recv[] = {inf, inf, inf, 1};
  const Registers out = step(p, 1, 0, Registers{inf, false}, recv);
  EXPECT_TRUE(out.d);
  EXPECT_EQ(out.a, kInfinity);
}

TEST(PhaseKingStep, I2AdoptsKingWhenUndecided) {
  const Params p = params(4, 1, 8);
  // Instruction set I_{3l+2} with l = 1 -> index 5; king is node 1.
  const std::uint64_t recv[] = {0, 4, 0, 0};
  const Registers out = step(p, 5, 0, Registers{2, false}, recv);  // d=0 -> adopt
  EXPECT_EQ(out.a, 5u);  // king's 4, incremented
  EXPECT_TRUE(out.d);
}

TEST(PhaseKingStep, I2KeepsOwnWhenConfident) {
  const Params p = params(4, 1, 8);
  const std::uint64_t recv[] = {0, 4, 0, 0};
  const Registers out = step(p, 5, 0, Registers{2, true}, recv);  // d=1 -> keep
  EXPECT_EQ(out.a, 3u);
  EXPECT_TRUE(out.d);
}

TEST(PhaseKingStep, I2InfiniteKingGivesDeterministicValue) {
  const Params p = params(4, 1, 8);
  const std::uint64_t inf = kInfinity;
  const std::uint64_t recv[] = {inf, inf, inf, inf};
  // min{C, infinity} = C = 8, increment -> (8+1) mod 8 = 1; identical at all
  // correct nodes, which is what Lemma 4 needs.
  const Registers out = step(p, 2, 0, Registers{inf, false}, recv);
  EXPECT_EQ(out.a, 1u);
  EXPECT_TRUE(out.d);
}

// --- Lemma 5: agreement persists under every instruction set ----------------

TEST(PhaseKingLemma5, AgreementPersistsThroughAllInstructions) {
  const Params p = params(7, 2, 12);
  const std::vector<bool> faulty = {false, false, true, false, true, false, false};
  synccount::util::Rng rng(21);

  for (int index = 0; index < p.tau(); ++index) {
    // All correct nodes agree on x with d=1; Byzantine nodes send junk.
    const std::uint64_t x = rng.next_below(12);
    std::vector<Registers> init(7, Registers{x, true});
    const auto byz = [&](int, NodeId, NodeId receiver) -> std::uint64_t {
      return (receiver * 5 + 3) % 14;  // per-receiver junk, sometimes >= C
    };
    const auto trace = run_phase_king(p, init, faulty, byz, index, 1);
    for (int v = 0; v < 7; ++v) {
      if (faulty[v]) continue;
      EXPECT_EQ(trace.regs[1][v].a, (x + 1) % 12) << "instruction " << index;
      EXPECT_TRUE(trace.regs[1][v].d) << "instruction " << index;
    }
  }
}

// --- Lemma 4: a correct king's phase establishes agreement ------------------

TEST(PhaseKingLemma4, HonestKingPhaseEstablishesAgreement) {
  const Params p = params(7, 2, 12);
  // Kings are nodes 0..F+1 = 0..3. Make nodes 1 and 3 Byzantine; king 2 is
  // correct. Run I_6, I_7, I_8 (l = 2) from adversarial initial registers.
  const std::vector<bool> faulty = {false, true, false, true, false, false, false};
  synccount::util::Rng rng(33);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Registers> init(7);
    for (auto& r : init) {
      r.a = rng.next_bool(0.2) ? kInfinity : rng.next_below(12);
      r.d = rng.next_bool();
    }
    const auto byz = [&rng](int, NodeId, NodeId) -> std::uint64_t {
      return rng.next_below(14);  // may exceed C -> decodes to infinity
    };
    const auto trace = run_phase_king(p, init, faulty, byz, 6, 3);
    EXPECT_TRUE(agreed(p, trace.regs[3], faulty)) << "trial " << trial;
  }
}

TEST(PhaseKingLemma4, WorksForEveryHonestKing) {
  const Params p = params(4, 1, 6);
  // One Byzantine node; try each choice, and for each correct king l run its
  // phase from a bad state.
  synccount::util::Rng rng(55);
  for (int byz_node = 0; byz_node < 4; ++byz_node) {
    std::vector<bool> faulty(4, false);
    faulty[byz_node] = true;
    for (int l = 0; l < p.F + 2; ++l) {
      if (faulty[l]) continue;
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<Registers> init(4);
        for (auto& r : init) {
          r.a = rng.next_bool(0.3) ? kInfinity : rng.next_below(6);
          r.d = rng.next_bool();
        }
        const auto byz = [&rng](int, NodeId, NodeId) -> std::uint64_t {
          return rng.next_below(8);
        };
        const auto trace = run_phase_king(p, init, faulty, byz, 3 * l, 3);
        EXPECT_TRUE(agreed(p, trace.regs[3], faulty))
            << "king " << l << " byz " << byz_node << " trial " << trial;
      }
    }
  }
}

// --- Classic value-consensus mode (StepMode::kValue) -------------------------

TEST(PhaseKingValueMode, UnanimityIsPreserved) {
  // All correct nodes hold x with d=1; in value mode nothing increments, so
  // x is held verbatim through every instruction set.
  const Params p = params(4, 1, 8);
  const std::vector<bool> faulty = {false, false, false, true};
  for (int index = 0; index < p.tau(); ++index) {
    std::vector<Registers> init(4, Registers{6, true});
    const auto byz = [](int, NodeId, NodeId receiver) -> std::uint64_t {
      return receiver % 2 == 0 ? 1 : 9;
    };
    const auto trace = run_phase_king(p, init, faulty, byz, index, 1,
                                      synccount::phaseking::StepMode::kValue);
    for (int v = 0; v < 3; ++v) {
      EXPECT_EQ(trace.regs[1][v].a, 6u) << "instruction " << index;
    }
  }
}

TEST(PhaseKingValueMode, HonestKingDecidesAValue) {
  // Classic consensus: arbitrary inputs, one full honest-king phase yields
  // agreement on a *stable* value (no increments).
  const Params p = params(7, 2, 12);
  const std::vector<bool> faulty = {true, false, false, true, false, false, false};
  synccount::util::Rng rng(44);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Registers> init(7);
    for (auto& r : init) {
      r.a = rng.next_below(12);
      r.d = rng.next_bool();
    }
    const auto byz = [&rng](int, NodeId, NodeId) -> std::uint64_t {
      return rng.next_below(14);
    };
    // King 1 is correct: run I_3, I_4, I_5 and then one more arbitrary set.
    const auto trace = run_phase_king(p, init, faulty, byz, 3, 4,
                                      synccount::phaseking::StepMode::kValue);
    std::uint64_t value = kInfinity;
    for (int v = 0; v < 7; ++v) {
      if (faulty[v]) continue;
      ASSERT_NE(trace.regs[3][v].a, kInfinity) << "trial " << trial;
      if (value == kInfinity) value = trace.regs[3][v].a;
      EXPECT_EQ(trace.regs[3][v].a, value) << "trial " << trial;
    }
    // And the agreed value stays put one round later (no increment).
    for (int v = 0; v < 7; ++v) {
      if (faulty[v]) continue;
      EXPECT_EQ(trace.regs[4][v].a, value) << "trial " << trial;
    }
  }
}

// Lemma 4 + Lemma 5 composed: after the honest king's phase, counting
// continues forever (here: 3 full tau-cycles) regardless of the adversary.
TEST(PhaseKingComposed, CountingPersistsAfterAgreement) {
  const Params p = params(4, 1, 6);
  const std::vector<bool> faulty = {false, false, false, true};
  synccount::util::Rng rng(66);
  std::vector<Registers> init(4);
  for (auto& r : init) {
    r.a = rng.next_below(6);
    r.d = rng.next_bool();
  }
  const auto byz = [&rng](int, NodeId, NodeId) -> std::uint64_t {
    return rng.next_below(8);
  };
  // Start at I_0; king 0 may be influenced by the byz node's junk, but some
  // honest king's phase completes within the first tau rounds.
  const int total = 3 * p.tau();
  const auto trace = run_phase_king(p, init, faulty, byz, 0, total);
  // Find the first round where agreement holds, then require it persists
  // with increments.
  int agree_at = -1;
  for (int r = 0; r <= total; ++r) {
    if (agreed(p, trace.regs[r], faulty)) {
      agree_at = r;
      break;
    }
  }
  ASSERT_NE(agree_at, -1);
  ASSERT_LE(agree_at, p.tau());
  const std::uint64_t base = trace.regs[agree_at][0].a;
  for (int r = agree_at; r <= total; ++r) {
    for (int v = 0; v < 3; ++v) {
      EXPECT_EQ(trace.regs[r][v].a, (base + static_cast<std::uint64_t>(r - agree_at)) % 6);
      EXPECT_TRUE(trace.regs[r][v].d);
    }
  }
}

}  // namespace
