// End-to-end tests of the synccount_cli front end, driving the real binary
// (path injected by CMake via the SYNCCOUNT_CLI environment variable; the
// tests skip when it is absent, e.g. when only the test targets were built).
// Covered: strict flag rejection (exit status 2), the declarative
// plan-emit / sweep --spec flow reproducing an in-process run bit-
// identically, and the checkpoint --resume cycle.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "counting/algorithm_spec.hpp"
#include "sat/dimacs.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"
#include "synthesis/encoder.hpp"
#include "util/json.hpp"

namespace {

using namespace synccount;

// synccount-lint: allow(nondet) -- ctest hands this test the real binary's
// path via the environment (see CMakeLists); no result bytes depend on it.
const char* cli_binary() { return std::getenv("SYNCCOUNT_CLI"); }

#define REQUIRE_CLI()                                                       \
  do {                                                                      \
    if (cli_binary() == nullptr) {                                          \
      GTEST_SKIP() << "SYNCCOUNT_CLI not set (built without the CLI?)";     \
    }                                                                       \
  } while (false)

// Runs `<cli> args...` with stdout/stderr silenced; returns the exit status
// (or -1 when the process did not exit normally).
int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(cli_binary()) + " " + args + " >/dev/null 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

struct TempDir {
  TempDir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("synccount-cli-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return (path / name).string(); }
  std::filesystem::path path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The grid used throughout: the 3-state table algorithm (fast, spans the
// bit-sliced and scalar backends via the adversary mix).
sim::ExperimentSpec reference_spec(const std::string& checkpoint_path = "") {
  sim::ExperimentSpec spec;
  counting::AlgorithmSpec algo;
  algo.kind = counting::AlgorithmSpec::Kind::kTable;
  algo.table_name = "3states";
  spec.algorithm = algo;
  spec.adversaries = {"split", "silent", "random"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}, {"none", {}}};
  spec.seeds = 8;
  spec.base_seed = 0x9000;
  spec.margin = 100;
  spec.stop_after_stable = 120;
  if (!checkpoint_path.empty()) {
    spec.sinks.push_back({sim::SinkConfig::Kind::kCheckpoint, checkpoint_path, "jsonl",
                          false});
  }
  return spec;
}

// --- Strict flag handling ----------------------------------------------------

TEST(Cli, UnknownFlagsAndSubcommandsExitWithStatus2) {
  REQUIRE_CLI();
  EXPECT_EQ(run_cli("frobnicate"), 2);                      // unknown subcommand
  EXPECT_EQ(run_cli("sweep --definitely-not-a-flag=1"), 2); // unknown flag
  EXPECT_EQ(run_cli("plan --schedulle=practical"), 2);      // typo'd flag
  EXPECT_EQ(run_cli("verify stray-positional"), 2);         // stray positional
  EXPECT_EQ(run_cli(""), 2);                                // no command at all
  EXPECT_EQ(run_cli("sweep --spec=x.json --seeds=3"), 2);   // grid flag vs --spec
  EXPECT_EQ(run_cli("sweep --resume --table=3states"), 2);  // --resume without --spec
}

// --- Declarative spec flow ---------------------------------------------------

TEST(Cli, SweepSpecReproducesInProcessRunBitIdentically) {
  REQUIRE_CLI();
  TempDir dir;
  const auto spec = reference_spec();

  // The hand-rolled in-process run.
  const auto plan = sim::plan_shards(spec, 1, 0);
  const auto result = sim::Engine(2).run(spec, plan);
  std::ostringstream reference;
  write_partial(reference, make_partial(spec, plan, result));

  // The same experiment as a spec file through the CLI.
  {
    std::ofstream out(dir.file("spec.json"));
    write_spec_file(out, spec);
  }
  ASSERT_EQ(run_cli("sweep --spec=" + dir.file("spec.json") + " --threads=2 --emit=" +
                    dir.file("out.jsonl")),
            0);
  EXPECT_EQ(slurp(dir.file("out.jsonl")), reference.str());
}

TEST(Cli, PlanEmitsARunnableSpecWithoutRunning) {
  REQUIRE_CLI();
  TempDir dir;
  const std::string spec_path = dir.file("spec.json");
  ASSERT_EQ(run_cli("plan --table=3states --seeds=8 --adversaries=split,silent,random "
                    "--placements=spread,none --checkpoint=" +
                    dir.file("ck.jsonl") + " --emit=" + spec_path + " --shards=3"),
            0);
  // plan ran nothing: no checkpoint yet.
  EXPECT_FALSE(std::filesystem::exists(dir.file("ck.jsonl")));

  // The emitted spec parses and matches the reference grid exactly.
  std::ifstream in(spec_path);
  const auto spec = sim::read_spec_file(in, spec_path);
  const auto expected = reference_spec(dir.file("ck.jsonl"));
  EXPECT_EQ(sim::experiment_spec_to_json(spec).dump(),
            sim::experiment_spec_to_json(expected).dump());

  // And it runs: sweep --spec produces the checkpoint == emitted partial.
  ASSERT_EQ(run_cli("sweep --spec=" + spec_path + " --threads=2 --emit=" +
                    dir.file("full.jsonl")),
            0);
  EXPECT_EQ(slurp(dir.file("ck.jsonl")), slurp(dir.file("full.jsonl")));
}

TEST(Cli, ResumeCompletesAKilledRunByteIdentically) {
  REQUIRE_CLI();
  TempDir dir;
  const std::string spec_path = dir.file("spec.json");
  const std::string ck = dir.file("ck.jsonl");
  {
    std::ofstream out(spec_path);
    write_spec_file(out, reference_spec(ck));
  }

  // Uninterrupted reference run.
  ASSERT_EQ(run_cli("sweep --spec=" + spec_path + " --threads=2 --emit=" +
                    dir.file("full.jsonl")),
            0);
  const std::string reference = slurp(ck);
  EXPECT_EQ(reference, slurp(dir.file("full.jsonl")));

  // "Kill" the worker after two groups -- plus a torn partial write.
  sim::truncate_to_lines(ck, 3);
  {
    std::ofstream out(ck, std::ios::binary | std::ios::app);
    out << "{\"group\":2,\"adversary\":\"sil";
  }
  ASSERT_EQ(run_cli("sweep --spec=" + spec_path + " --resume --threads=2 --emit=" +
                    dir.file("resumed.jsonl")),
            0);
  EXPECT_EQ(slurp(ck), reference);
  EXPECT_EQ(slurp(dir.file("resumed.jsonl")), reference);

  // Resuming a complete run is a no-op that still emits the full partial.
  ASSERT_EQ(run_cli("sweep --spec=" + spec_path + " --resume --threads=2 --emit=" +
                    dir.file("again.jsonl")),
            0);
  EXPECT_EQ(slurp(dir.file("again.jsonl")), reference);
  EXPECT_EQ(slurp(ck), reference);
}

TEST(Cli, ResumeWorksFromAHeaderOnlyCheckpointWithCsvTrace) {
  // The worst kill window: the worker died after flushing the checkpoint
  // header but before finishing any group. The CSV trace then holds only
  // its (flushed-at-start) header line, and resume must re-run everything
  // and still converge to the uninterrupted bytes.
  REQUIRE_CLI();
  TempDir dir;
  const std::string spec_path = dir.file("spec.json");
  const std::string ck = dir.file("ck.jsonl");
  const std::string tr = dir.file("tr.csv");
  {
    auto spec = reference_spec(ck);
    spec.sinks.push_back({sim::SinkConfig::Kind::kTrace, tr, "csv", false});
    std::ofstream out(spec_path);
    write_spec_file(out, spec);
  }
  ASSERT_EQ(run_cli("sweep --spec=" + spec_path + " --threads=2"), 0);
  const std::string ck_reference = slurp(ck);
  const std::string tr_reference = slurp(tr);

  sim::truncate_to_lines(ck, 1);  // header only: zero groups finished
  sim::truncate_to_lines(tr, 1);  // CSV header only
  ASSERT_EQ(run_cli("sweep --spec=" + spec_path + " --resume --threads=2"), 0);
  EXPECT_EQ(slurp(ck), ck_reference);
  EXPECT_EQ(slurp(tr), tr_reference);
}

TEST(Cli, ShardedSpecWorkersMergeBitIdentically) {
  REQUIRE_CLI();
  TempDir dir;
  const std::string spec_path = dir.file("spec.json");
  {
    std::ofstream out(spec_path);
    write_spec_file(out, reference_spec());
  }
  ASSERT_EQ(run_cli("sweep --spec=" + spec_path + " --threads=2 --emit=" +
                    dir.file("full.jsonl")),
            0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(run_cli("sweep --spec=" + spec_path + " --shards=3 --shard=" +
                      std::to_string(i) + " --threads=1 --emit=" +
                      dir.file("w" + std::to_string(i) + ".jsonl")),
              0);
  }
  ASSERT_EQ(run_cli("merge " + dir.file("w0.jsonl") + " " + dir.file("w1.jsonl") + " " +
                    dir.file("w2.jsonl") + " --emit=" + dir.file("merged.jsonl")),
            0);
  EXPECT_EQ(slurp(dir.file("merged.jsonl")), slurp(dir.file("full.jsonl")));
}

TEST(Cli, SynthEmitCnfRoundTripsThroughDimacs) {
  REQUIRE_CLI();
  TempDir dir;
  const std::string cnf_path = dir.file("synth.cnf");
  // R = 2 is UNSAT for the 4/1/3-state cyclic spec (the certified optimum
  // is 6), and small enough to solve in-process here.
  ASSERT_EQ(run_cli("synth --n=4 --f=1 --states=3 --symmetry=cyclic "
                    "--max-time=2 --emit-cnf=" + cnf_path),
            0);

  synthesis::SynthesisSpec spec;
  spec.n = 4;
  spec.f = 1;
  spec.num_states = 3;
  spec.modulus = 2;
  spec.symmetry = counting::Symmetry::kCyclic;
  spec.max_time = 2;
  const synthesis::Encoder enc(spec);

  std::ifstream in(cnf_path);
  ASSERT_TRUE(in.good()) << cnf_path;
  const sat::Cnf parsed = sat::parse_dimacs(in);
  EXPECT_EQ(parsed.num_vars, enc.cnf().num_vars);
  EXPECT_EQ(parsed.clauses.size(), enc.cnf().clauses.size());

  sat::Solver emitted, direct;
  parsed.load_into(emitted);
  enc.cnf().load_into(direct);
  EXPECT_EQ(emitted.solve(), direct.solve());
  EXPECT_EQ(emitted.solve(), sat::Result::kUnsat);
}

}  // namespace
