// Distributed-sweep tests: the serializable AlgorithmSpec / ExperimentSpec /
// AggregateResult codecs round-trip exactly, and sharded execution + merge
// is bit-identical to the single-process engine run -- across shard counts
// 1..5, uneven group splits, and grids spanning all three execution
// backends (bit-sliced table cells, composed boosted/pulling cells, and
// scalar-only lookahead cells).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "boosting/planner.hpp"
#include "counting/algorithm_spec.hpp"
#include "counting/randomized.hpp"
#include "counting/table_algorithm.hpp"
#include "counting/table_io.hpp"
#include "counting/trivial.hpp"
#include "pulling/pulling_counter.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "synthesis/known_tables.hpp"
#include "util/json.hpp"

namespace {

using namespace synccount;

// --- AlgorithmSpec describe/build round-trip ---------------------------------

// A short execution fingerprint: the per-round outputs of every correct node
// under a fixed seed and adversary. Two algorithms with equal fingerprints
// (and equal static parameters) are behaviourally interchangeable for the
// engine.
std::vector<std::vector<std::uint64_t>> fingerprint(const counting::AlgorithmPtr& algo,
                                                    const std::string& adversary) {
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = sim::faults_spread(algo->num_nodes(), algo->resilience());
  cfg.max_rounds = 40;
  cfg.seed = 0xfeed;
  cfg.record_outputs = true;
  auto adv = sim::make_adversary(adversary);
  return sim::run_execution(cfg, *adv, 5).outputs;
}

void expect_roundtrip(const counting::AlgorithmPtr& algo) {
  const auto spec = counting::describe(algo);
  ASSERT_TRUE(spec.has_value()) << algo->name();

  // Struct -> JSON -> struct is lossless.
  const util::Json j = to_json(*spec);
  const counting::AlgorithmSpec parsed =
      counting::algorithm_spec_from_json(util::Json::parse(j.dump()));
  EXPECT_TRUE(parsed == *spec) << j.dump();
  EXPECT_EQ(to_json(parsed).dump(), j.dump());

  // build() reconstructs the same algorithm: static parameters and dynamic
  // behaviour (bit-identical execution under the same seed).
  const counting::AlgorithmPtr rebuilt = counting::build(parsed);
  EXPECT_EQ(rebuilt->name(), algo->name());
  EXPECT_EQ(rebuilt->num_nodes(), algo->num_nodes());
  EXPECT_EQ(rebuilt->resilience(), algo->resilience());
  EXPECT_EQ(rebuilt->modulus(), algo->modulus());
  EXPECT_EQ(rebuilt->state_bits(), algo->state_bits());
  EXPECT_EQ(rebuilt->stabilisation_bound(), algo->stabilisation_bound());
  EXPECT_EQ(fingerprint(rebuilt, "split"), fingerprint(algo, "split"));
}

TEST(AlgorithmSpec, TrivialRoundTrip) {
  expect_roundtrip(std::make_shared<counting::TrivialCounter>(48));
}

TEST(AlgorithmSpec, KnownTableDescribedByName) {
  const auto algo = std::make_shared<counting::TableAlgorithm>(
      synthesis::known_table_4_1_3states());
  const auto spec = counting::describe(algo);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->kind, counting::AlgorithmSpec::Kind::kTable);
  EXPECT_EQ(spec->table_name, "3states");  // registry name, not an inline dump
  EXPECT_TRUE(spec->table_text.empty());
  expect_roundtrip(algo);
}

TEST(AlgorithmSpec, UnknownTableDescribedInline) {
  // Perturb the output map so the table no longer matches the registry.
  counting::TransitionTable t = synthesis::known_table_4_1_4states();
  t.label = "tweaked";
  t.verified_time.reset();
  std::swap(t.h[0], t.h[2]);
  const auto algo = std::make_shared<counting::TableAlgorithm>(t);
  const auto spec = counting::describe(algo);
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->table_name.empty());
  EXPECT_FALSE(spec->table_text.empty());
  expect_roundtrip(algo);
}

TEST(AlgorithmSpec, BoostedTowerRoundTrip) {
  expect_roundtrip(boosting::build_plan(boosting::plan_practical(2, 10)));
  expect_roundtrip(boosting::build_plan(boosting::plan_corollary1(1, 8)));
}

TEST(AlgorithmSpec, TowerOverTableBaseRoundTrip) {
  // One boosted level over a synthetic table base (same shape as the
  // composed-backend differential tests): the base modulus satisfies
  // Theorem 1's constraint c = 3(F+2)(2m)^k for k = 3, F = 1, and the table
  // is not in the registry, so the spec must carry it inline.
  counting::TransitionTable t;
  t.n = 2;
  t.f = 0;
  t.num_states = 4;
  t.modulus = boosting::required_input_modulus(3, 1);
  t.symmetry = counting::Symmetry::kCyclic;
  t.g.resize(16);
  for (std::size_t i = 0; i < t.g.size(); ++i) {
    t.g[i] = static_cast<std::uint8_t>((i * 5 + 1) % 4);
  }
  t.h = {3, 100, 200, 50};
  t.label = "table-base-test";
  auto base = std::make_shared<counting::TableAlgorithm>(std::move(t));
  const auto tower =
      std::make_shared<boosting::BoostedCounter>(base, boosting::BoostParams{3, 1, 10});
  const auto spec = counting::describe(tower);
  ASSERT_TRUE(spec.has_value());
  ASSERT_TRUE(spec->base != nullptr);
  EXPECT_FALSE(spec->base->table_text.empty());
  expect_roundtrip(tower);
}

TEST(AlgorithmSpec, PullingTowerRoundTripBothModes) {
  expect_roundtrip(pulling::build_pulling_practical(2, 10, 8,
                                                    pulling::SamplingMode::kFresh, 0xabc));
  expect_roundtrip(pulling::build_pulling_practical(2, 10, 8,
                                                    pulling::SamplingMode::kFixed, 0xdef));
}

TEST(AlgorithmSpec, UndescribableReturnsNullopt) {
  // RandomizedCounter-style algorithms are outside the family; a null
  // pointer is too.
  EXPECT_FALSE(counting::describe(nullptr).has_value());
}

TEST(AlgorithmSpec, BuildRejectsBadSpecs) {
  counting::AlgorithmSpec two_sources;
  two_sources.kind = counting::AlgorithmSpec::Kind::kTable;
  two_sources.table_name = "3states";
  two_sources.table_text = "also inline";
  EXPECT_THROW(counting::build(two_sources), std::invalid_argument);

  counting::AlgorithmSpec unknown_name;
  unknown_name.kind = counting::AlgorithmSpec::Kind::kTable;
  unknown_name.table_name = "no-such-table";
  EXPECT_THROW(counting::build(unknown_name), std::invalid_argument);

  counting::AlgorithmSpec no_base;
  no_base.kind = counting::AlgorithmSpec::Kind::kTower;
  no_base.levels.push_back({});
  EXPECT_THROW(counting::build(no_base), std::invalid_argument);
}

TEST(AlgorithmSpec, RegistryMatchRequiresBehaviouralEquality) {
  // Same g/h as the registry table but without the certified time: must be
  // described inline, because verified_time feeds stabilisation_bound() and
  // hence the engine's default horizon.
  counting::TransitionTable t = synthesis::known_table_4_1_3states();
  t.verified_time.reset();
  EXPECT_FALSE(synthesis::known_table_name_of(t).has_value());
  const auto algo = std::make_shared<counting::TableAlgorithm>(t);
  const auto spec = counting::describe(algo);
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->table_name.empty());
  EXPECT_FALSE(spec->table_text.empty());
  expect_roundtrip(algo);
}

TEST(KnownTables, RegistryLookups) {
  const auto names = synthesis::known_table_names();
  ASSERT_EQ(names.size(), 2u);
  for (const auto& name : names) {
    const auto table = synthesis::known_table_by_name(name);
    ASSERT_TRUE(table.has_value()) << name;
    EXPECT_EQ(synthesis::known_table_name_of(*table), name);
  }
  EXPECT_FALSE(synthesis::known_table_by_name("nope").has_value());
}

// --- ExperimentSpec / AggregateResult codecs ---------------------------------

sim::ExperimentSpec table_grid_spec() {
  sim::ExperimentSpec spec;
  spec.algo = std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_3states());
  // lookahead is not batchable -> scalar cells; split runs bit-sliced.
  spec.adversaries = {"split", "lookahead", "silent"};
  spec.placements = {{"spread", sim::faults_spread(4, 1)}, {"none", {}}};
  spec.seeds = 17;  // odd, so uneven chunking is exercised too
  spec.base_seed = 0xc0ffee;
  spec.max_rounds = 64;
  spec.margin = 8;
  spec.stop_after_stable = 16;
  return spec;
}

sim::ExperimentSpec composed_grid_spec() {
  sim::ExperimentSpec spec;
  spec.algo = boosting::build_plan(boosting::plan_practical(2, 10));
  const int n = spec.algo->num_nodes();
  spec.adversaries = {"split", "lookahead"};  // composed batched + scalar cells
  spec.placements = {{"spread", sim::faults_spread(n, 2)},
                     {"blocks", sim::faults_block_concentrated(3, n / 3, 0, 2)}};
  spec.seeds = 5;
  spec.base_seed = 0xbeef;
  spec.stop_after_stable = 60;
  spec.margin = 50;
  return spec;
}

sim::ExperimentSpec pulling_grid_spec() {
  sim::ExperimentSpec spec;
  spec.algo = pulling::build_pulling_practical(2, 10, 10, pulling::SamplingMode::kFresh);
  spec.adversaries = {"split", "silent"};
  spec.placements = {{"spread", sim::faults_spread(spec.algo->num_nodes(), 2)}};
  spec.seeds = 4;
  spec.base_seed = 0xfee1;
  spec.stop_after_stable = 60;
  spec.margin = 50;
  return spec;
}

TEST(ExperimentSpecCodec, RoundTripPreservesEveryField) {
  sim::ExperimentSpec spec = table_grid_spec();
  spec.explicit_seeds = {1, 2, 3};
  spec.seeds = 3;
  spec.extra_rounds = 123;
  spec.horizon_override = 9999;
  spec.backend = sim::Backend::kScalar;
  spec.sinks.push_back({sim::SinkConfig::Kind::kTrace, "t.jsonl", "csv", false});
  spec.sinks.push_back({sim::SinkConfig::Kind::kProgress, "", "jsonl", false});
  spec.sinks.push_back({sim::SinkConfig::Kind::kCheckpoint, "ck.jsonl", "jsonl", false});
  spec.initial.resize(4);
  for (int i = 0; i < 4; ++i) {
    spec.initial[static_cast<std::size_t>(i)].set_bits(0, 2, static_cast<std::uint64_t>(i % 3));
  }

  const util::Json j = sim::experiment_spec_to_json(spec);
  const sim::ExperimentSpec back =
      sim::experiment_spec_from_json(util::Json::parse(j.dump()));
  // Re-serialisation is byte-stable ...
  EXPECT_EQ(sim::experiment_spec_to_json(back).dump(), j.dump());
  // ... and the round-tripped spec matches field by field.
  EXPECT_EQ(back.adversaries, spec.adversaries);
  ASSERT_EQ(back.placements.size(), spec.placements.size());
  for (std::size_t i = 0; i < spec.placements.size(); ++i) {
    EXPECT_EQ(back.placements[i].name, spec.placements[i].name);
    EXPECT_EQ(back.placements[i].faulty, spec.placements[i].faulty);
  }
  EXPECT_EQ(back.seeds, spec.seeds);
  EXPECT_EQ(back.base_seed, spec.base_seed);
  EXPECT_EQ(back.explicit_seeds, spec.explicit_seeds);
  EXPECT_EQ(back.max_rounds, spec.max_rounds);
  EXPECT_EQ(back.extra_rounds, spec.extra_rounds);
  EXPECT_EQ(back.horizon_override, spec.horizon_override);
  EXPECT_EQ(back.margin, spec.margin);
  EXPECT_EQ(back.stop_after_stable, spec.stop_after_stable);
  EXPECT_EQ(back.backend, spec.backend);
  ASSERT_EQ(back.sinks.size(), spec.sinks.size());
  for (std::size_t i = 0; i < spec.sinks.size(); ++i) {
    EXPECT_EQ(back.sinks[i].kind, spec.sinks[i].kind);
    EXPECT_EQ(back.sinks[i].path, spec.sinks[i].path);
    EXPECT_EQ(back.sinks[i].format, spec.sinks[i].format);
    EXPECT_EQ(back.sinks[i].outputs, spec.sinks[i].outputs);
  }
  ASSERT_EQ(back.initial.size(), spec.initial.size());
  for (std::size_t i = 0; i < spec.initial.size(); ++i) {
    EXPECT_EQ(back.initial[i], spec.initial[i]);
  }
}

TEST(ExperimentSpecCodec, RejectsNonDeclarativeSpecs) {
  // Custom adversary factories have no serialized form.
  sim::ExperimentSpec spec = table_grid_spec();
  spec.adversary_factory = [](const std::string& name) { return sim::make_adversary(name); };
  EXPECT_THROW(sim::experiment_spec_to_json(spec), std::invalid_argument);

  // An `algo` pointer outside the describable family cannot travel either.
  sim::ExperimentSpec spec2 = table_grid_spec();
  spec2.algo = std::make_shared<counting::RandomizedCounter>(4, 1, 2);
  EXPECT_THROW(sim::experiment_spec_to_json(spec2), std::invalid_argument);

  // ... and exactly one algorithm source must be set.
  sim::ExperimentSpec spec3 = table_grid_spec();
  spec3.algorithm = *counting::describe(spec3.algo);
  EXPECT_THROW(sim::experiment_spec_to_json(spec3), std::invalid_argument);
}

TEST(ExperimentSpecCodec, VariantAxisRoundTrips) {
  sim::ExperimentSpec spec;
  spec.variants = counting::sweep_u64(
      *counting::describe(pulling::build_pulling_practical(
          1, 8, 6, pulling::SamplingMode::kFixed, 0)),
      "sampling_seed", {7, 8, 9});
  spec.adversaries = {"split"};
  spec.seeds = 3;
  spec.max_rounds = 32;
  const util::Json j = sim::experiment_spec_to_json(spec);
  const sim::ExperimentSpec back =
      sim::experiment_spec_from_json(util::Json::parse(j.dump()));
  EXPECT_EQ(sim::experiment_spec_to_json(back).dump(), j.dump());
  ASSERT_EQ(back.variants.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(back.variants[i] == spec.variants[i]) << i;
  }
  EXPECT_FALSE(back.algorithm.has_value());
}

TEST(AggregateCodec, RoundTripIsBitIdentical) {
  const sim::Engine engine(1);
  const auto result = engine.run(table_grid_spec());
  const util::Json j = sim::aggregate_to_json(result.total);
  const sim::AggregateResult back = sim::aggregate_from_json(util::Json::parse(j.dump()));
  EXPECT_EQ(sim::aggregate_to_json(back).dump(), j.dump());
  EXPECT_EQ(back.runs, result.total.runs);
  EXPECT_EQ(back.stabilised, result.total.stabilised);
  EXPECT_EQ(back.max_pulls, result.total.max_pulls);
  EXPECT_EQ(back.stabilisation.mean(), result.total.stabilisation.mean());
  EXPECT_EQ(back.rounds.quantile(0.95), result.total.rounds.quantile(0.95));
}

// --- plan_shards -------------------------------------------------------------

TEST(ShardPlan, PartitionsWholeGroupsContiguously) {
  const sim::ExperimentSpec spec = table_grid_spec();  // 3 x 2 = 6 groups
  EXPECT_EQ(sim::group_count(spec), 6u);
  for (int K = 1; K <= 8; ++K) {
    std::size_t next = 0;
    for (int i = 0; i < K; ++i) {
      const auto plan = sim::plan_shards(spec, K, i);
      EXPECT_EQ(plan.shards, K);
      EXPECT_EQ(plan.shard, i);
      EXPECT_EQ(plan.group_begin, next);
      EXPECT_LE(plan.groups(), (6 + static_cast<std::size_t>(K) - 1) / K);
      next = plan.group_end;
    }
    EXPECT_EQ(next, 6u);  // exact cover, in order
  }
  EXPECT_THROW(sim::plan_shards(spec, 0, 0), std::invalid_argument);
  EXPECT_THROW(sim::plan_shards(spec, 3, 3), std::invalid_argument);
}

// --- Sharded execution + merge: bit-identity to the single process -----------

void expect_aggregates_identical(const sim::AggregateResult& a,
                                 const sim::AggregateResult& b) {
  // Byte-level equality of the serialised form covers every field,
  // including the exact double samples behind the quantiles.
  EXPECT_EQ(sim::aggregate_to_json(a).dump(), sim::aggregate_to_json(b).dump());
}

void expect_sharding_bit_identical(const sim::ExperimentSpec& spec, int threads) {
  const sim::Engine engine(threads);
  const auto full = engine.run(spec);
  const auto full_partial = make_partial(spec, sim::plan_shards(spec, 1, 0), full);

  std::ostringstream reference;
  write_partial(reference, full_partial);

  for (int K = 1; K <= 5; ++K) {
    // Run every shard, round-tripping each partial through the wire format.
    std::vector<sim::ShardPartial> parts;
    std::vector<sim::AggregateResult> partial_totals;
    for (int i = 0; i < K; ++i) {
      const auto plan = sim::plan_shards(spec, K, i);
      const auto result = engine.run(spec, plan);
      EXPECT_EQ(result.cells.size(), plan.groups() * static_cast<std::size_t>(spec.seeds));
      std::ostringstream wire;
      write_partial(wire, make_partial(spec, plan, result));
      std::istringstream in(wire.str());
      parts.push_back(sim::read_partial(in, "shard" + std::to_string(i)));
      partial_totals.push_back(result.total);
    }

    // merge_aggregates over the engine partials reproduces the full fold.
    // Exact mode: bit-identical (merge replays samples, so association is
    // irrelevant). Sketch mode: each shard total has already collapsed its
    // groups into one moment set, so Chan's moment merge runs in a coarser
    // association than the per-group left fold -- counts are exact, moments
    // agree only to rounding. (The wire paths below refold from group lines
    // and ARE bit-identical in both modes.)
    const sim::AggregateResult refolded = sim::merge_aggregates(partial_totals);
    if (spec.stats == util::StatsMode::kExact) {
      expect_aggregates_identical(refolded, full.total);
    } else {
      EXPECT_EQ(refolded.runs, full.total.runs);
      EXPECT_EQ(refolded.stabilised, full.total.stabilised);
      EXPECT_EQ(refolded.max_pulls, full.total.max_pulls);
      EXPECT_NEAR(refolded.rounds.mean(), full.total.rounds.mean(), 1e-9);
      EXPECT_NEAR(refolded.rounds.stddev(), full.total.rounds.stddev(), 1e-9);
    }

    // The file-level merge (shuffled input order) is byte-identical to the
    // single-process emit.
    std::rotate(parts.begin(), parts.begin() + (K > 1 ? 1 : 0), parts.end());
    const auto merged = sim::merge_partials(std::move(parts));
    std::ostringstream merged_wire;
    write_partial(merged_wire, merged);
    EXPECT_EQ(merged_wire.str(), reference.str()) << "K=" << K;
    expect_aggregates_identical(merged.total(), full.total);
  }
}

TEST(ShardedSweep, TableGridBitIdentical) {
  // 6 groups over K=1..5: K=4 and K=5 force uneven splits (2,2,1,1 / ...).
  expect_sharding_bit_identical(table_grid_spec(), 2);
}

TEST(ShardedSweep, TableGridBitIdenticalSingleThread) {
  expect_sharding_bit_identical(table_grid_spec(), 1);
}

TEST(ShardedSweep, ComposedGridBitIdentical) {
  expect_sharding_bit_identical(composed_grid_spec(), 2);
}

TEST(ShardedSweep, PullingGridBitIdentical) {
  expect_sharding_bit_identical(pulling_grid_spec(), 2);
}

// Sketch mode rides the same contract: shards fold per-group KLL sketches in
// group order, so sharded + merged wire bytes equal the single-process emit
// even though the sketch merge operator is not associative in general.
TEST(ShardedSweep, SketchModeBitIdentical) {
  sim::ExperimentSpec spec = table_grid_spec();
  spec.stats = util::StatsMode::kSketch;
  expect_sharding_bit_identical(spec, 2);
}

TEST(ShardedSweep, SketchModeComposedGridBitIdentical) {
  sim::ExperimentSpec spec = composed_grid_spec();
  spec.stats = util::StatsMode::kSketch;
  expect_sharding_bit_identical(spec, 2);
}

TEST(ShardedSweep, SketchModeWireCarriesSketchesNotSamples) {
  sim::ExperimentSpec spec = table_grid_spec();
  spec.stats = util::StatsMode::kSketch;
  const auto plan = sim::plan_shards(spec, 1, 0);
  std::ostringstream wire;
  write_partial(wire, make_partial(spec, plan, sim::Engine(1).run(spec, plan)));
  const std::string text = wire.str();
  // v4 header, sketch-tagged spec, compacted sketch levels -- and no raw
  // sample vectors anywhere (the whole point of the mode is to keep the wire
  // and the accumulators bounded).
  EXPECT_NE(text.find("\"version\":4"), std::string::npos);
  EXPECT_NE(text.find("\"stats\":\"sketch\""), std::string::npos);
  EXPECT_NE(text.find("\"mode\":\"sketch\""), std::string::npos);
  EXPECT_EQ(text.find("\"samples\""), std::string::npos);
}

TEST(ShardedSweep, ShardRunMatchesFullRunCellForCell) {
  const sim::ExperimentSpec spec = table_grid_spec();
  const sim::Engine engine(1);
  const auto full = engine.run(spec);
  const auto plan = sim::plan_shards(spec, 3, 1);  // a middle shard
  const auto part = engine.run(spec, plan);
  const std::size_t offset = plan.group_begin * static_cast<std::size_t>(spec.seeds);
  for (std::size_t i = 0; i < part.cells.size(); ++i) {
    const auto& a = part.cells[i];
    const auto& b = full.cells[offset + i];
    EXPECT_EQ(a.cell_index, b.cell_index);
    EXPECT_EQ(a.adversary, b.adversary);
    EXPECT_EQ(a.placement, b.placement);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.result.rounds, b.result.rounds);
    EXPECT_EQ(a.result.stabilised, b.result.stabilised);
    EXPECT_EQ(a.result.stabilisation_round, b.result.stabilisation_round);
  }
}

TEST(ReadPartial, RejectsGroupLinesPastTheDeclaredRange) {
  const sim::ExperimentSpec spec = table_grid_spec();
  const sim::Engine engine(1);
  const auto partial = make_partial(spec, sim::plan_shards(spec, 1, 0), engine.run(spec));
  std::ostringstream wire;
  write_partial(wire, partial);
  // A stray extra group line after the declared range must fail loudly (it
  // used to index the grid echo out of bounds), whatever its group index.
  const std::string text = wire.str();
  const std::size_t last_nl = text.rfind('\n', text.size() - 2);
  for (const char* bump : {"", "\"group\":6,"}) {
    std::string last_line = text.substr(last_nl + 1);
    if (*bump != '\0') last_line.replace(last_line.find("\"group\":5,"), 10, bump);
    std::istringstream in(text + last_line);
    EXPECT_THROW(sim::read_partial(in, "stray"), std::invalid_argument);
  }
}

TEST(MergePartials, RejectsInconsistentInputs) {
  const sim::ExperimentSpec spec = table_grid_spec();
  const sim::Engine engine(1);
  const auto make = [&](int K, int i) {
    const auto plan = sim::plan_shards(spec, K, i);
    return make_partial(spec, plan, engine.run(spec, plan));
  };

  // Missing shard.
  EXPECT_THROW(sim::merge_partials({make(3, 0), make(3, 2)}), std::invalid_argument);
  // Duplicate shard.
  EXPECT_THROW(sim::merge_partials({make(3, 0), make(3, 0), make(3, 1)}),
               std::invalid_argument);
  // Mixed shard counts.
  EXPECT_THROW(sim::merge_partials({make(2, 0), make(3, 1), make(3, 2)}),
               std::invalid_argument);

  // Different specs.
  sim::ExperimentSpec other = table_grid_spec();
  other.base_seed = 1;
  const auto other_plan = sim::plan_shards(other, 2, 1);
  auto other_part = make_partial(other, other_plan, engine.run(other, other_plan));
  EXPECT_THROW(sim::merge_partials({make(2, 0), std::move(other_part)}),
               std::invalid_argument);
}

}  // namespace
