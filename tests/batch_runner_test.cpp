// Tests for the bit-parallel batched execution backend: every lane of
// run_batch must be bit-identical to run_execution on the same seed -- across
// tables (cyclic / uniform / per-node / wide), kernels (bit-sliced / SoA),
// adversaries, fault placements, batch widths and early-exit patterns -- and
// the engine's batched dispatch must leave aggregates bit-identical to the
// forced-scalar backend for any thread count.
#include <gtest/gtest.h>

#include "counting/table_algorithm.hpp"
#include "sim/batch_runner.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "synthesis/known_tables.hpp"

namespace {

using namespace synccount;

using TablePtr = std::shared_ptr<const counting::TableAlgorithm>;

TablePtr table3() {
  return std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_3states());
}

TablePtr table4() {
  return std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_4states());
}

// A per-node table (the symmetry branch the known tables don't cover).
// Behaviour is arbitrary; the tests only compare backends against each other.
TablePtr per_node_table() {
  counting::TransitionTable t;
  t.n = 3;
  t.f = 0;
  t.num_states = 2;
  t.modulus = 2;
  t.symmetry = counting::Symmetry::kPerNode;
  t.g.resize(3 * 8);
  for (std::size_t i = 0; i < t.g.size(); ++i) t.g[i] = static_cast<std::uint8_t>((i * 5 + 1) % 2);
  t.h = {0, 1, 1, 0, 0, 1};
  t.label = "per-node-test";
  return std::make_shared<counting::TableAlgorithm>(std::move(t));
}

// num_states > 4: exercises the SoA kernel under kAuto.
TablePtr wide_table() {
  counting::TransitionTable t;
  t.n = 3;
  t.f = 0;
  t.num_states = 5;
  t.modulus = 2;
  t.symmetry = counting::Symmetry::kUniform;
  t.g.resize(125);
  for (std::size_t i = 0; i < t.g.size(); ++i) t.g[i] = static_cast<std::uint8_t>((i * 7 + 3) % 5);
  t.h = {0, 1, 0, 1, 1};
  t.label = "wide-test";
  return std::make_shared<counting::TableAlgorithm>(std::move(t));
}

struct RunOpts {
  std::vector<bool> faulty;
  std::uint64_t max_rounds = 200;
  std::uint64_t margin = 30;
  std::uint64_t stop_after_stable = 0;
  bool record_outputs = false;
  bool record_states = false;
  std::vector<sim::State> initial;
};

sim::RunResult scalar_run(const TablePtr& algo, const std::string& adversary,
                          std::uint64_t seed, const RunOpts& opt) {
  sim::RunConfig cfg;
  cfg.algo = algo;
  cfg.faulty = opt.faulty;
  cfg.max_rounds = opt.max_rounds;
  cfg.seed = seed;
  cfg.stop_after_stable = opt.stop_after_stable;
  cfg.record_outputs = opt.record_outputs;
  cfg.record_states = opt.record_states;
  cfg.initial = opt.initial;
  auto adv = sim::make_adversary(adversary);
  return sim::run_execution(cfg, *adv, opt.margin);
}

std::vector<sim::RunResult> batch_run(const TablePtr& algo, const std::string& adversary,
                                      const std::vector<std::uint64_t>& seeds,
                                      const RunOpts& opt,
                                      sim::BatchKernel kernel = sim::BatchKernel::kAuto,
                                      int words = 0) {
  sim::BatchConfig bc;
  bc.algo = algo;
  bc.faulty = opt.faulty;
  bc.max_rounds = opt.max_rounds;
  bc.margin = opt.margin;
  bc.stop_after_stable = opt.stop_after_stable;
  bc.record_outputs = opt.record_outputs;
  bc.record_states = opt.record_states;
  bc.initial = opt.initial;
  bc.adversary = [&adversary] { return sim::make_adversary(adversary); };
  bc.seeds = seeds;
  bc.kernel = kernel;
  bc.words = words;
  return sim::run_batch(bc);
}

void expect_same_run(const sim::RunResult& a, const sim::RunResult& b,
                     const std::string& context) {
  EXPECT_EQ(a.rounds, b.rounds) << context;
  EXPECT_EQ(a.stabilisation_round, b.stabilisation_round) << context;
  EXPECT_EQ(a.suffix_length, b.suffix_length) << context;
  EXPECT_EQ(a.max_window, b.max_window) << context;
  EXPECT_EQ(a.stabilised, b.stabilised) << context;
  EXPECT_EQ(a.max_pulls_per_round, b.max_pulls_per_round) << context;
  EXPECT_EQ(a.avg_pulls_per_round, b.avg_pulls_per_round) << context;
  EXPECT_EQ(a.correct_ids, b.correct_ids) << context;
  EXPECT_EQ(a.outputs, b.outputs) << context;
  EXPECT_EQ(a.states, b.states) << context;
}

TEST(BatchRunner, MatchesScalarAcrossAdversariesPlacementsAndKernels) {
  const std::vector<std::pair<std::string, TablePtr>> tables = {{"3states", table3()},
                                                               {"4states", table4()}};
  const std::vector<std::string> adversaries = {"silent", "echo",   "random",
                                                "split",  "mirror", "targeted-vote"};
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 12345, 0xDEAD};
  for (const auto& [tname, algo] : tables) {
    for (const auto kernel : {sim::BatchKernel::kBitSliced, sim::BatchKernel::kSoA}) {
      for (const auto& adv : adversaries) {
        for (const bool with_fault : {false, true}) {
          RunOpts opt;
          if (with_fault) opt.faulty = sim::faults_spread(4, 1);
          const auto batch = batch_run(algo, adv, seeds, opt, kernel);
          ASSERT_EQ(batch.size(), seeds.size());
          for (std::size_t i = 0; i < seeds.size(); ++i) {
            const auto scalar = scalar_run(algo, adv, seeds[i], opt);
            expect_same_run(batch[i], scalar,
                            tname + "/" + adv + (with_fault ? "/f1" : "/f0") + "/seed=" +
                                std::to_string(seeds[i]) +
                                (kernel == sim::BatchKernel::kSoA ? "/soa" : "/bitsliced"));
          }
        }
      }
    }
  }
}

TEST(BatchRunner, WidthsDoNotChangeResults) {
  // Lanes stabilise (and early-exit) at different rounds within one batch;
  // widths 1, 7, 64 and 100 cover partial words and multi-block batches.
  const auto algo = table3();
  RunOpts opt;
  opt.faulty = sim::faults_spread(4, 1);
  opt.max_rounds = 400;
  opt.stop_after_stable = 35;
  std::vector<std::uint64_t> seeds(100);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 0xB000 + i * 17;

  std::vector<sim::RunResult> reference;
  for (const auto s : seeds) reference.push_back(scalar_run(algo, "random", s, opt));

  for (const std::size_t width : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{100}}) {
    const std::vector<std::uint64_t> sub(seeds.begin(), seeds.begin() + width);
    const auto batch = batch_run(algo, "random", sub, opt);
    ASSERT_EQ(batch.size(), width);
    std::uint64_t distinct_rounds = 0;
    for (std::size_t i = 0; i < width; ++i) {
      expect_same_run(batch[i], reference[i], "width=" + std::to_string(width) +
                                                  "/seed=" + std::to_string(sub[i]));
      if (i > 0 && batch[i].rounds != batch[0].rounds) ++distinct_rounds;
    }
    if (width >= 64) {
      EXPECT_GT(distinct_rounds, 0u)
          << "expected lanes to early-exit at different rounds";
    }
  }
}

TEST(BatchRunner, MultiWordWidthsMatchScalar) {
  // Lane counts past one 64-bit word (65, 128, 257, 511) at every plane
  // width (1/2/4/8 words plus auto): the multi-word kernel and the
  // lane-batched adversary forging must stay bit-identical to run_execution
  // regardless of how many executions share a table pass. 511 = 7 words + a
  // 63-lane tail under words=8's block size; 65 and 257 leave one lane in
  // the last plane word.
  const auto algo = table3();
  RunOpts opt;
  opt.faulty = sim::faults_spread(4, 1);
  opt.max_rounds = 48;
  std::vector<std::uint64_t> seeds(511);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 0xC000 + i * 13;

  for (const std::string adv : {"split", "random"}) {
    std::vector<sim::RunResult> reference;
    reference.reserve(seeds.size());
    for (const auto s : seeds) reference.push_back(scalar_run(algo, adv, s, opt));
    for (const std::size_t width : {std::size_t{65}, std::size_t{128}, std::size_t{257},
                                    std::size_t{511}}) {
      const std::vector<std::uint64_t> sub(seeds.begin(), seeds.begin() + width);
      for (const int words : {0, 1, 2, 4, 8}) {
        const auto batch = batch_run(algo, adv, sub, opt, sim::BatchKernel::kAuto, words);
        ASSERT_EQ(batch.size(), width);
        for (std::size_t i = 0; i < width; ++i) {
          expect_same_run(batch[i], reference[i],
                          adv + "/width=" + std::to_string(width) +
                              "/words=" + std::to_string(words) +
                              "/seed=" + std::to_string(sub[i]));
        }
      }
    }
  }
}

TEST(BatchRunner, WordsValidationRejectsUnsupportedValues) {
  const auto algo = table3();
  RunOpts opt;
  opt.faulty = sim::faults_spread(4, 1);
  for (const int words : {-1, 3, 5, 16}) {
    EXPECT_THROW(batch_run(algo, "silent", {1, 2}, opt, sim::BatchKernel::kAuto, words),
                 std::invalid_argument)
        << "words=" << words;
  }
}

TEST(BatchRunner, RecordedTracesMatchScalar) {
  const auto algo = table4();
  RunOpts opt;
  opt.faulty = sim::faults_prefix(4, 1);
  opt.max_rounds = 60;
  opt.record_outputs = true;
  opt.record_states = true;
  const std::vector<std::uint64_t> seeds = {5, 6, 7};
  const auto batch = batch_run(algo, "split", seeds, opt);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto scalar = scalar_run(algo, "split", seeds[i], opt);
    ASSERT_EQ(batch[i].outputs.size(), scalar.outputs.size());
    ASSERT_EQ(batch[i].states.size(), scalar.states.size());
    expect_same_run(batch[i], scalar, "traces/seed=" + std::to_string(seeds[i]));
  }
}

TEST(BatchRunner, PerNodeSymmetryMatchesScalar) {
  const auto algo = per_node_table();
  RunOpts opt;
  opt.max_rounds = 80;
  const std::vector<std::uint64_t> seeds = {11, 22, 33, 44};
  for (const auto kernel : {sim::BatchKernel::kBitSliced, sim::BatchKernel::kSoA}) {
    const auto batch = batch_run(algo, "split", seeds, opt, kernel);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      expect_same_run(batch[i], scalar_run(algo, "split", seeds[i], opt),
                      "per-node/seed=" + std::to_string(seeds[i]));
    }
  }
}

TEST(BatchRunner, WideTableFallsBackToSoA) {
  const auto algo = wide_table();
  RunOpts opt;
  opt.max_rounds = 80;
  const std::vector<std::uint64_t> seeds = {9, 10, 11};
  const auto batch = batch_run(algo, "split", seeds, opt);  // kAuto -> SoA (5 states)
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_same_run(batch[i], scalar_run(algo, "split", seeds[i], opt),
                    "wide/seed=" + std::to_string(seeds[i]));
  }
  EXPECT_THROW(batch_run(algo, "split", seeds, opt, sim::BatchKernel::kBitSliced),
               std::invalid_argument);
}

TEST(BatchRunner, FixedInitialStatesMatchScalar) {
  const auto algo = table3();
  RunOpts opt;
  opt.faulty = sim::faults_spread(4, 1);
  opt.max_rounds = 50;
  opt.initial.resize(4);
  for (int i = 0; i < 4; ++i) opt.initial[static_cast<std::size_t>(i)].set_bits(0, 8, 0xA5u + i);
  const std::vector<std::uint64_t> seeds = {71, 72};
  const auto batch = batch_run(algo, "mirror", seeds, opt);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_same_run(batch[i], scalar_run(algo, "mirror", seeds[i], opt),
                    "initial/seed=" + std::to_string(seeds[i]));
  }
}

// --- Engine dispatch ---------------------------------------------------------

void expect_same_aggregate(const sim::AggregateResult& a, const sim::AggregateResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.stabilised, b.stabilised);
  EXPECT_EQ(a.max_pulls, b.max_pulls);
  EXPECT_EQ(a.stabilisation.count(), b.stabilisation.count());
  EXPECT_EQ(a.stabilisation.mean(), b.stabilisation.mean());
  EXPECT_EQ(a.stabilisation.stddev(), b.stabilisation.stddev());
  EXPECT_EQ(a.stabilisation.min(), b.stabilisation.min());
  EXPECT_EQ(a.stabilisation.max(), b.stabilisation.max());
  EXPECT_EQ(a.stabilisation.quantile(0.5), b.stabilisation.quantile(0.5));
  EXPECT_EQ(a.stabilisation.quantile(0.95), b.stabilisation.quantile(0.95));
  EXPECT_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_EQ(a.avg_pulls.mean(), b.avg_pulls.mean());
}

sim::ExperimentSpec table_grid_spec() {
  sim::ExperimentSpec spec;
  spec.algo = table3();
  spec.adversaries = {"silent", "split", "random", "lookahead"};
  spec.placements = {{"none", {}}, {"spread", sim::faults_spread(4, 1)}};
  spec.seeds = 70;  // crosses the 64-lane chunk boundary
  spec.stop_after_stable = 40;
  spec.margin = 30;
  return spec;
}

TEST(Engine, BatchedBackendIsBitIdenticalToScalarBackend) {
  auto spec = table_grid_spec();
  const sim::Engine engine(1);

  const auto batched = engine.run(spec);
  spec.backend = sim::Backend::kScalar;
  const auto scalar = engine.run(spec);

  // silent/split/random batch over both placements; lookahead stays scalar.
  EXPECT_EQ(batched.batched_cells, 3u * 2u * 70u);
  EXPECT_EQ(scalar.batched_cells, 0u);

  ASSERT_EQ(batched.cells.size(), scalar.cells.size());
  for (std::size_t i = 0; i < batched.cells.size(); ++i) {
    EXPECT_EQ(batched.cells[i].seed, scalar.cells[i].seed);
    EXPECT_EQ(batched.cells[i].adversary, scalar.cells[i].adversary);
    EXPECT_EQ(batched.cells[i].placement, scalar.cells[i].placement);
    expect_same_run(batched.cells[i].result, scalar.cells[i].result,
                    "cell=" + std::to_string(i));
  }
  expect_same_aggregate(batched.total, scalar.total);
  for (std::size_t a = 0; a < spec.adversaries.size(); ++a) {
    for (std::size_t p = 0; p < spec.placements.size(); ++p) {
      expect_same_aggregate(batched.aggregate(a, p), scalar.aggregate(a, p));
    }
  }
}

TEST(Engine, BatchedBackendIsThreadCountIndependent) {
  const auto spec = table_grid_spec();
  const sim::Engine serial(1);
  const sim::Engine parallel4(4);
  const auto a = serial.run(spec);
  const auto b = parallel4.run(spec);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].result.rounds, b.cells[i].result.rounds);
    EXPECT_EQ(a.cells[i].result.stabilisation_round, b.cells[i].result.stabilisation_round);
  }
  expect_same_aggregate(a.total, b.total);
}

}  // namespace
