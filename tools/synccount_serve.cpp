// synccount_serve -- the sweep service: a daemon owning a durable queue of
// experiment jobs, workers leasing cell-groups over a Unix socket, and
// client commands to drive both.
//
//   synccount_serve serve     --socket=PATH --state-dir=DIR
//                             [--lease-ms=5000] [--lease-groups=1]
//   synccount_serve worker    --socket=PATH [--threads=1] [--id=NAME]
//                             [--lease-groups=K] [--loop]
//   synccount_serve submit    --socket=PATH --job=NAME --spec=SPEC.json
//                             [--wait [--poll-ms=250]] [--emit=FILE]
//   synccount_serve status    --socket=PATH [--job=NAME]
//   synccount_serve results   --socket=PATH --job=NAME [--emit=FILE]
//   synccount_serve drain     --socket=PATH
//   synccount_serve shutdown  --socket=PATH
//
// The daemon persists all queue state under --state-dir with crash-safe
// writes: SIGKILL it at any instant, restart it on the same directory, and
// no durably completed group is lost or double-counted. Workers hold
// deadline-based leases renewed by heartbeats; a SIGKILL'd worker costs the
// fleet only its in-flight group (the lease expires and the group is
// requeued). `submit --wait --emit=FILE` blocks until the job finishes and
// writes the merged shard-partial file, byte-identical to a single-process
// `synccount_cli sweep --spec=SPEC.json --emit=FILE` of the same spec.
// Unknown flags and subcommands exit with status 2, like synccount_cli.
//
// A spec file whose top level is {"kind":"synth",...} submits a synthesis
// cube job instead (synthesis::SynthJobSpec): workers lease cubes, solve
// them with the canonical portfolio scan, and the first SAT cube (in cube
// order, not arrival order) drains the job; results are the deterministic
// cube-verdict prefix plus the winning model, byte-identical to a local
// synthesize_portfolio run of the same spec.
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "sim/experiment_io.hpp"
#include "synthesis/cube.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

using namespace synccount;

namespace {

void usage(std::ostream& os) {
  os << "usage: synccount_serve <command> [--flags]\n"
        "  serve     run the queue daemon\n"
        "            --socket=PATH --state-dir=DIR [--lease-ms=N] [--lease-groups=K]\n"
        "  worker    lease and run cell-groups until the queue settles empty\n"
        "            --socket=PATH [--threads=N] [--id=NAME] [--lease-groups=K]\n"
        "            [--loop]  (keep serving after the queue empties)\n"
        "  submit    register a job from a spec file (idempotent by name)\n"
        "            --socket=PATH --job=NAME --spec=SPEC.json\n"
        "            [--wait [--poll-ms=N]] [--emit=FILE]\n"
        "  status    show jobs: --socket=PATH [--job=NAME]\n"
        "  results   fetch a finished job's partial: --socket=PATH --job=NAME\n"
        "            [--emit=FILE]  (default: stdout)\n"
        "  drain     stop granting leases: --socket=PATH\n"
        "  shutdown  stop the daemon (state stays on disk): --socket=PATH\n"
        "see the header of tools/synccount_serve.cpp for the failure model\n";
}

int reject_unknown(const util::Cli& cli, std::initializer_list<const char*> known) {
  const auto unknown = cli.unknown_flags(known);
  if (!unknown.empty()) {
    std::cerr << "unknown flag" << (unknown.size() > 1 ? "s" : "") << ":";
    for (const auto& f : unknown) std::cerr << " --" << f;
    std::cerr << "\n";
    usage(std::cerr);
    return 2;
  }
  if (!cli.positional().empty()) {
    std::cerr << "unexpected argument: " << cli.positional().front() << "\n";
    usage(std::cerr);
    return 2;
  }
  return 0;
}

std::string need_string(const util::Cli& cli, const char* flag) {
  const std::string value = cli.get_string(flag, "");
  if (value.empty()) {
    std::cerr << "--" << flag << " is required\n";
    usage(std::cerr);
    std::exit(2);
  }
  return value;
}

// Prints to stdout or writes `text` durably to --emit=FILE.
int emit_or_print(const util::Cli& cli, const std::string& text) {
  const std::string emit = cli.get_string("emit", "");
  if (emit.empty()) {
    std::cout << text;
    return 0;
  }
  sim::atomic_write_file(emit, text);
  std::cerr << "wrote " << emit << "\n";
  return 0;
}

int cmd_serve(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"socket", "state-dir", "lease-ms", "lease-groups"})) {
    return rc;
  }
  serve::DaemonConfig cfg;
  cfg.socket_path = need_string(cli, "socket");
  cfg.state_dir = need_string(cli, "state-dir");
  cfg.lease_ttl_ms = cli.get_u64("lease-ms", 5000);
  cfg.lease_groups = cli.get_u64("lease-groups", 1);
  serve::Daemon daemon(cfg);
  return daemon.run();
}

int cmd_worker(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"socket", "threads", "id", "lease-groups", "loop"})) {
    return rc;
  }
  serve::WorkerConfig cfg;
  cfg.socket_path = need_string(cli, "socket");
  cfg.threads = static_cast<int>(cli.get_int("threads", 1));
  cfg.worker_id = cli.get_string("id", "");
  cfg.max_groups = cli.get_u64("lease-groups", 0);
  cfg.once = !cli.get_bool("loop", false);
  const std::uint64_t groups = serve::run_worker(cfg);
  std::cerr << "worker done: " << groups << " group(s) completed\n";
  return 0;
}

// One request against --socket, letting the Client's backoff absorb daemon
// restarts.
util::Json do_request(const util::Cli& cli, const util::Json& req) {
  return serve::Client(need_string(cli, "socket")).request(req);
}

int cmd_submit(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"socket", "job", "spec", "wait", "poll-ms", "emit"})) {
    return rc;
  }
  const std::string job = need_string(cli, "job");
  const std::string spec_file = need_string(cli, "spec");
  std::ifstream in(spec_file, std::ios::binary);
  if (!in.good()) {
    std::cerr << "cannot read spec file: " << spec_file << "\n";
    return 1;
  }
  std::ostringstream raw;
  raw << in.rdbuf();

  // A top-level {"kind":"synth",...} object is a synthesis cube job
  // (synthesis::SynthJobSpec); anything else parses as an ExperimentSpec
  // sweep, exactly as before.
  util::Json spec_json;
  util::Json parsed;
  bool synth = false;
  try {
    parsed = util::Json::parse(raw.str());
    synth = parsed.type() == util::Json::Type::kObject && parsed.has("kind") &&
            parsed.at("kind").as_string() == "synth";
  } catch (const std::exception&) {
    // Not a bare JSON object; fall through to the sweep-spec reader.
  }
  if (synth) {
    spec_json = synthesis::SynthJobSpec::from_json(parsed).to_json();
  } else {
    std::istringstream replay(raw.str());
    spec_json = sim::experiment_spec_to_json(sim::read_spec_file(replay, spec_file));
  }

  util::Json req = serve::make_request("submit");
  req.set("job", util::Json::string(job));
  req.set("spec", spec_json);
  const util::Json resp = do_request(cli, req);
  const std::uint64_t groups = serve::msg_u64(resp, "groups");
  std::cerr << "job " << job << ": " << serve::msg_u64(resp, "done") << "/" << groups
            << " groups done"
            << (serve::msg_bool(resp, "existed", false) ? " (already submitted)" : "")
            << "\n";
  if (!cli.has("wait") && !cli.has("emit")) return 0;

  // Poll until complete, then fetch the merged partial.
  serve::Client client(need_string(cli, "socket"));
  const auto poll = std::chrono::milliseconds(cli.get_u64("poll-ms", 250));
  for (;;) {
    util::Json status_req = serve::make_request("status");
    status_req.set("job", util::Json::string(job));
    const util::Json status = client.request(status_req);
    const util::Json& row = status.at("jobs").at(std::size_t{0});
    if (serve::msg_bool(row, "complete", false)) break;
    std::this_thread::sleep_for(poll);
  }
  util::Json results_req = serve::make_request("results");
  results_req.set("job", util::Json::string(job));
  return emit_or_print(cli, serve::msg_string(client.request(results_req), "partial"));
}

int cmd_status(const util::Cli& cli) {
  if (const int rc = reject_unknown(cli, {"socket", "job"})) return rc;
  util::Json req = serve::make_request("status");
  if (cli.has("job")) req.set("job", util::Json::string(cli.get_string("job", "")));
  const util::Json resp = do_request(cli, req);
  if (serve::msg_bool(resp, "draining", false)) std::cout << "draining\n";
  const util::Json& jobs = resp.at("jobs");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const util::Json& j = jobs.at(i);
    const util::Json* kind = j.find("kind");
    std::cout << j.at("job").as_string()
              << (kind != nullptr && kind->as_string() == "synth" ? " (synth)" : "")
              << ": " << serve::msg_u64(j, "done") << "/"
              << serve::msg_u64(j, "groups") << " done, " << serve::msg_u64(j, "leased")
              << " leased" << (serve::msg_bool(j, "complete", false) ? " [complete]" : "")
              << "\n";
  }
  if (jobs.size() == 0) std::cout << "no jobs\n";
  return 0;
}

int cmd_results(const util::Cli& cli) {
  if (const int rc = reject_unknown(cli, {"socket", "job", "emit"})) return rc;
  util::Json req = serve::make_request("results");
  req.set("job", util::Json::string(need_string(cli, "job")));
  return emit_or_print(cli, serve::msg_string(do_request(cli, req), "partial"));
}

int cmd_simple(const util::Cli& cli, const char* op) {
  if (const int rc = reject_unknown(cli, {"socket"})) return rc;
  (void)do_request(cli, serve::make_request(op));
  std::cerr << op << ": ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  // Cli skips its argv[0] (the subcommand here), same as synccount_cli.
  const util::Cli cli(argc - 1, argv + 1);
  try {
    if (command == "serve") return cmd_serve(cli);
    if (command == "worker") return cmd_worker(cli);
    if (command == "submit") return cmd_submit(cli);
    if (command == "status") return cmd_status(cli);
    if (command == "results") return cmd_results(cli);
    if (command == "drain") return cmd_simple(cli, "drain");
    if (command == "shutdown") return cmd_simple(cli, "shutdown");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << command << "\n";
  usage(std::cerr);
  return 2;
}
