// synccount_cli -- command-line front end for the library.
//
//   synccount_cli plan        --f=7 [--modulus=10] [--schedule=practical]
//   synccount_cli run         --f=3 [--modulus=16] [--adversary=split]
//                             [--placement=blocks|spread] [--seed=S]
//                             [--rounds=N] [--trace=out.csv]
//   synccount_cli sweep       --f=3 [--modulus=16] [--seeds=5] [--threads=N]
//                             [--table=3states|4states|file.table]
//                             [--backend=auto|scalar]
//                             [--adversaries=split,lookahead|all]
//                             [--placements=spread,blocks,leaders]
//                             [--base-seed=S] [--rounds=N] [--margin=M]
//   synccount_cli synthesize  --n=4 --f=1 --states=3 [--symmetry=cyclic]
//                             [--max-time=8] [--incremental] [--budget=K]
//                             [--dimacs=out.cnf]
//   synccount_cli verify      [--load=file.table]  (default: embedded tables)
//   synccount_cli consensus   --f=1 --values=8 --proposals=5,5,5,5 [--seed=S]
#include <fstream>
#include <iostream>
#include <sstream>

#include "counting/table_io.hpp"
#include "synccount/synccount.hpp"

using namespace synccount;

namespace {

int cmd_plan(const util::Cli& cli) {
  const int f = static_cast<int>(cli.get_int("f", 3));
  const std::uint64_t modulus = cli.get_u64("modulus", 10);
  const std::string schedule = cli.get_string("schedule", "practical");
  boosting::Plan plan;
  if (schedule == "practical") {
    plan = boosting::plan_practical(f, modulus);
  } else if (schedule == "corollary1") {
    plan = boosting::plan_corollary1(f, modulus);
  } else if (schedule == "fixed-k") {
    plan = boosting::plan_fixed_k(static_cast<int>(cli.get_int("k", 4)),
                                  static_cast<int>(cli.get_int("levels", 2)), modulus);
  } else {
    std::cerr << "unknown schedule: " << schedule << "\n";
    return 2;
  }
  const auto algo = boosting::build_plan(plan);
  std::cout << "schedule: " << plan.label << "\n";
  util::Table t({"level", "k", "F", "output modulus", "level cost 3(F+2)(2m)^k"});
  t.add_row({"base", "-", "0", std::to_string(plan.base_modulus), "-"});
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    const auto& lv = plan.levels[i];
    t.add_row({std::to_string(i + 1), std::to_string(lv.k), std::to_string(lv.F),
               std::to_string(lv.C),
               std::to_string(boosting::required_input_modulus(lv.k, lv.F))});
  }
  t.print(std::cout);
  std::cout << "\nn = " << algo->num_nodes() << ", f = " << algo->resilience()
            << ", T bound = " << algo->stabilisation_bound().value_or(0)
            << " rounds, S = " << algo->state_bits() << " bits/node\n";
  return 0;
}

int cmd_run(const util::Cli& cli) {
  const int f = static_cast<int>(cli.get_int("f", 3));
  const std::uint64_t modulus = cli.get_u64("modulus", 16);
  const auto algo = boosting::build_plan(boosting::plan_practical(f, modulus));
  const int n = algo->num_nodes();

  sim::RunConfig cfg;
  cfg.algo = algo;
  const std::string placement = cli.get_string("placement", "blocks");
  if (placement == "spread" || f == 1) {
    cfg.faulty = sim::faults_spread(n, f);
  } else {
    cfg.faulty = sim::faults_block_concentrated(3, n / 3, (f - 1) / 2, f);
  }
  cfg.max_rounds = cli.get_u64("rounds", algo->stabilisation_bound().value_or(2000) + 300);
  cfg.seed = cli.get_u64("seed", 1);
  cfg.record_outputs = cli.has("trace");
  auto adversary = sim::make_adversary(cli.get_string("adversary", "split"));
  const auto res = sim::run_execution(cfg, *adversary, 100);

  std::cout << "algorithm:  " << algo->name() << "\n"
            << "faulty:     ";
  for (auto id : sim::fault_ids(cfg.faulty)) std::cout << id << ' ';
  std::cout << "\nadversary:  " << adversary->name() << "\n"
            << "rounds run: " << res.rounds << "\n"
            << "stabilised: " << (res.stabilised ? "yes" : "no") << " at round "
            << res.stabilisation_round << " (bound "
            << algo->stabilisation_bound().value_or(0) << ")\n";

  if (cli.has("trace")) {
    const std::string path = cli.get_string("trace", "trace.csv");
    std::ofstream out(path);
    out << "round";
    for (auto id : res.correct_ids) out << ",node" << id;
    out << "\n";
    for (std::size_t r = 0; r < res.outputs.size(); ++r) {
      out << r;
      for (auto v : res.outputs[r]) out << ',' << v;
      out << "\n";
    }
    std::cout << "trace:      " << path << " (" << res.outputs.size() << " rounds)\n";
  }
  return res.stabilised ? 0 : 1;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

// Batched sweep over adversaries x fault placements x seeds through the
// experiment engine; prints one aggregate row per (adversary, placement).
// Boosted counters run on the composed batched backend (hierarchical field
// kernels); with --table=3states|4states|<file> the sweep instead uses a
// transition-table algorithm on the bit-parallel batched backend
// (--backend=scalar forces the scalar runner for either).
int cmd_sweep(const util::Cli& cli) {
  counting::AlgorithmPtr algo;
  if (cli.has("table")) {
    const std::string which = cli.get_string("table", "3states");
    counting::TransitionTable table;
    if (which == "3states") {
      table = synthesis::known_table_4_1_3states();
    } else if (which == "4states") {
      table = synthesis::known_table_4_1_4states();
    } else {
      std::ifstream file(which);
      SC_CHECK(file.good(), "cannot open table file: " + which);
      table = counting::read_table(file);
    }
    algo = std::make_shared<counting::TableAlgorithm>(std::move(table));
  } else {
    const int plan_f = static_cast<int>(cli.get_int("f", 3));
    const std::uint64_t modulus = cli.get_u64("modulus", 16);
    algo = boosting::build_plan(boosting::plan_practical(plan_f, modulus));
  }
  const int f = cli.has("table") ? algo->resilience()
                                 : static_cast<int>(cli.get_int("f", 3));
  const int n = algo->num_nodes();

  sim::ExperimentSpec spec;
  spec.algo = algo;
  const std::string backend = cli.get_string("backend", "auto");
  if (backend == "scalar") {
    spec.backend = sim::Backend::kScalar;
  } else if (backend != "auto") {
    std::cerr << "unknown backend: " << backend << " (want auto|scalar)\n";
    return 2;
  }

  const std::string adv_arg = cli.get_string("adversaries", "split,random,lookahead");
  spec.adversaries = adv_arg == "all" ? sim::adversary_names() : split_csv(adv_arg);

  const bool placements_given = cli.has("placements");
  for (const auto& name : split_csv(cli.get_string("placements", "spread,blocks"))) {
    if (name == "spread") {
      spec.placements.push_back({"spread", sim::faults_spread(n, f)});
    } else if (name == "blocks" || name == "leaders") {
      // Block-structured placements need a multi-block fault budget.
      if (f <= 1) {
        if (placements_given) {
          std::cerr << "placement '" << name << "' requires --f>1 (skipped at f=" << f
                    << ")\n";
        }
        continue;
      }
      spec.placements.push_back(
          name == "blocks"
              ? sim::FaultPattern{"blocks", sim::faults_block_concentrated(3, n / 3, (f - 1) / 2, f)}
              : sim::FaultPattern{"leaders", sim::faults_leader_blocks(3, n / 3, (f - 1) / 2, f)});
    } else if (name == "none") {
      spec.placements.push_back({"none", {}});
    } else {
      std::cerr << "unknown placement: " << name << " (want spread|blocks|leaders|none)\n";
      return 2;
    }
  }
  if (spec.placements.empty()) {
    std::cerr << "no applicable placements for f=" << f
              << " -- pass --placements=spread or none\n";
    return 2;
  }

  spec.seeds = static_cast<int>(cli.get_int("seeds", 5));
  spec.base_seed = cli.get_u64("base-seed", 0x9000);
  spec.max_rounds = cli.get_u64("rounds", 0);
  spec.margin = cli.get_u64("margin", 100);
  spec.stop_after_stable = cli.get_u64("stop-after-stable", 120);

  const sim::Engine engine(static_cast<int>(cli.get_int("threads", 0)));
  const auto result = engine.run(spec);

  std::cout << "algorithm: " << algo->name() << " (n=" << n << ", f=" << f << ", T bound "
            << algo->stabilisation_bound().value_or(0) << ")\n"
            << "grid: " << spec.adversaries.size() << " adversaries x "
            << spec.placements.size() << " placements x " << spec.seeds << " seeds = "
            << result.cells.size() << " executions on " << engine.threads() << " threads ("
            << result.batched_cells << " on the batched backend)\n\n";

  util::Table table({"adversary", "placement", "stabilised", "T mean", "T p50", "T p95",
                     "T max"});
  for (std::size_t a = 0; a < spec.adversaries.size(); ++a) {
    for (std::size_t p = 0; p < spec.placements.size(); ++p) {
      const auto agg = result.aggregate(a, p);
      const auto& st = agg.stabilisation;
      table.add_row({spec.adversaries[a], spec.placements[p].name,
                     std::to_string(agg.stabilised) + "/" + std::to_string(agg.runs),
                     agg.stabilised ? util::fmt_double(st.mean(), 1) : "-",
                     agg.stabilised ? util::fmt_double(st.quantile(0.5), 1) : "-",
                     agg.stabilised ? util::fmt_double(st.quantile(0.95), 1) : "-",
                     agg.stabilised ? util::fmt_double(st.max(), 0) : "-"});
    }
  }
  table.print(std::cout);

  const auto& t = result.total;
  std::cout << "\ntotal: " << t.stabilised << "/" << t.runs << " stabilised ("
            << util::fmt_double(100.0 * t.stabilisation_rate(), 1) << "%), T "
            << t.stabilisation.to_string() << "\nwall: "
            << util::fmt_double(result.wall_seconds, 2) << "s\n";
  return t.stabilised == t.runs ? 0 : 1;
}

counting::Symmetry parse_symmetry(const std::string& s) {
  if (s == "uniform") return counting::Symmetry::kUniform;
  if (s == "cyclic") return counting::Symmetry::kCyclic;
  if (s == "per-node") return counting::Symmetry::kPerNode;
  throw std::invalid_argument("unknown symmetry: " + s);
}

int cmd_synthesize(const util::Cli& cli) {
  synthesis::SynthesisSpec spec;
  spec.n = static_cast<int>(cli.get_int("n", 4));
  spec.f = static_cast<int>(cli.get_int("f", 1));
  spec.num_states = cli.get_u64("states", 3);
  spec.modulus = cli.get_u64("modulus", 2);
  spec.symmetry = parse_symmetry(cli.get_string("symmetry", "cyclic"));

  if (cli.has("dimacs")) {
    spec.max_time = static_cast<int>(cli.get_int("max-time", 8));
    const synthesis::Encoder enc(spec);
    const std::string path = cli.get_string("dimacs", "out.cnf");
    std::ofstream out(path);
    sat::write_dimacs(enc.cnf(), out);
    std::cout << "wrote " << enc.size().variables << " vars / " << enc.size().clauses
              << " clauses to " << path << "\n";
    return 0;
  }

  synthesis::SynthesisOptions opt;
  opt.min_time = static_cast<int>(cli.get_int("min-time", 1));
  opt.max_time = static_cast<int>(cli.get_int("max-time", 8));
  opt.conflict_budget = cli.get_u64("budget", 100000);
  const auto out = cli.get_bool("incremental") ? synthesize_incremental(spec, opt)
                                               : synthesize(spec, opt);
  if (!out.found) {
    std::cout << (out.budget_exhausted ? "budget exhausted" : "UNSAT (optimality proof)")
              << " after " << out.total_conflicts << " conflicts\n";
    return 1;
  }
  std::cout << "found: certified worst-case stabilisation " << out.exact_time
            << " rounds (admissible bound " << out.time_bound_used << ")\n";
  if (cli.has("save")) {
    const std::string path = cli.get_string("save", "counter.table");
    std::ofstream file(path);
    counting::write_table(out.table, file);
    std::cout << "saved to " << path << "\n";
  }
  std::cout << "g = {";
  for (std::size_t i = 0; i < out.table.g.size(); ++i) {
    std::cout << static_cast<int>(out.table.g[i]) << (i + 1 < out.table.g.size() ? "," : "");
  }
  std::cout << "}\nh = {";
  for (std::size_t i = 0; i < out.table.h.size(); ++i) {
    std::cout << static_cast<int>(out.table.h[i]) << (i + 1 < out.table.h.size() ? "," : "");
  }
  std::cout << "}\n";
  return 0;
}

int cmd_verify(const util::Cli& cli) {
  std::vector<counting::TransitionTable> tables;
  if (cli.has("load")) {
    std::ifstream file(cli.get_string("load", ""));
    SC_CHECK(file.good(), "cannot open table file");
    tables.push_back(counting::read_table(file));
  } else {
    tables = {synthesis::known_table_4_1_3states(), synthesis::known_table_4_1_4states()};
  }
  for (const auto& table : tables) {
    const counting::TableAlgorithm algo(table);
    const auto vr = synthesis::verify(algo);
    std::cout << algo.name() << ": " << (vr.ok ? "VERIFIED" : ("FAILED: " + vr.failure))
              << ", exact worst-case T = " << vr.worst_case_time << " ("
              << vr.configurations << " configurations, " << vr.transitions
              << " transitions)\n";
    if (!vr.ok) return 1;
  }
  return 0;
}

int cmd_consensus(const util::Cli& cli) {
  const int f = static_cast<int>(cli.get_int("f", 1));
  const std::uint64_t values = cli.get_u64("values", 8);
  const int tau = 3 * (f + 2);
  const auto counter =
      boosting::build_plan(boosting::plan_practical(f, static_cast<std::uint64_t>(tau)));
  const int n = counter->num_nodes();

  std::vector<std::uint64_t> proposals(static_cast<std::size_t>(n), 0);
  {
    std::istringstream ss(cli.get_string("proposals", ""));
    std::string tok;
    std::size_t i = 0;
    while (std::getline(ss, tok, ',') && i < proposals.size()) {
      proposals[i++] = std::strtoull(tok.c_str(), nullptr, 10) % values;
    }
  }
  const auto svc = std::make_shared<apps::RepeatedConsensus>(counter, f, values, proposals);

  sim::RunConfig cfg;
  cfg.algo = svc;
  cfg.faulty = sim::faults_spread(n, f);
  cfg.max_rounds = *svc->stabilisation_bound() + 3 * static_cast<std::uint64_t>(tau);
  cfg.seed = cli.get_u64("seed", 1);
  cfg.record_outputs = true;
  auto adversary = sim::make_adversary(cli.get_string("adversary", "split"));
  const auto res = sim::run_execution(cfg, *adversary, 1);

  std::cout << "service: " << svc->name() << " on " << n << " nodes, " << f
            << " Byzantine\nproposals:";
  for (auto p : proposals) std::cout << ' ' << p;
  const auto& last = res.outputs.back();
  std::cout << "\nfinal decisions:";
  for (auto d : last) std::cout << ' ' << d;
  const bool agreed = std::all_of(last.begin(), last.end(),
                                  [&](std::uint64_t v) { return v == last[0]; });
  std::cout << "\nagreement: " << (agreed ? "yes" : "NO") << "\n";
  return agreed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::cerr << "usage: synccount_cli <plan|run|sweep|synthesize|verify|consensus> [--flags]\n"
                << "see the header of tools/synccount_cli.cpp for details\n";
      return 2;
    }
    const std::string cmd = argv[1];
    const util::Cli cli(argc - 1, argv + 1);
    if (cmd == "plan") return cmd_plan(cli);
    if (cmd == "run") return cmd_run(cli);
    if (cmd == "sweep") return cmd_sweep(cli);
    if (cmd == "synthesize") return cmd_synthesize(cli);
    if (cmd == "verify") return cmd_verify(cli);
    if (cmd == "consensus") return cmd_consensus(cli);
    std::cerr << "unknown command: " << cmd << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
