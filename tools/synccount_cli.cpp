// synccount_cli -- command-line front end for the library.
//
//   synccount_cli plan        --f=7 [--modulus=10] [--schedule=practical]
//   synccount_cli run         --f=3 [--modulus=16] [--adversary=split]
//                             [--placement=blocks|spread] [--seed=S]
//                             [--rounds=N] [--trace=out.csv]
//   synccount_cli sweep       --f=3 [--modulus=16] [--seeds=5] [--threads=N]
//                             [--table=3states|4states|file.table]
//                             [--backend=auto|scalar]
//                             [--adversaries=split,lookahead|all]
//                             [--placements=spread,blocks,leaders]
//                             [--base-seed=S] [--rounds=N] [--margin=M]
//                             [--shards=K] [--shard=i] [--emit=FILE]
//   synccount_cli merge       FILE... [--emit=FILE]
//   synccount_cli synthesize  --n=4 --f=1 --states=3 [--symmetry=cyclic]
//                             [--max-time=8] [--incremental] [--budget=K]
//                             [--dimacs=out.cnf]
//   synccount_cli verify      [--load=file.table]  (default: embedded tables)
//   synccount_cli consensus   --f=1 --values=8 --proposals=5,5,5,5 [--seed=S]
//
// Distributed sweeps: `sweep --shards=K` forks K local worker processes,
// each running a contiguous slice of (adversary, placement) cell-groups, and
// merges their partial files -- bit-identical to the single-process sweep.
// `sweep --shards=K --shard=i --emit=FILE` runs one worker in the calling
// process (the multi-machine form: run shard i per machine, copy the files,
// `merge` them anywhere). Unknown flags and subcommands exit with status 2.
#include <fstream>
#include <iostream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "counting/algorithm_spec.hpp"
#include "counting/table_io.hpp"
#include "sim/experiment_io.hpp"
#include "synccount/synccount.hpp"

using namespace synccount;

namespace {

void usage(std::ostream& os) {
  os << "usage: synccount_cli <command> [--flags]\n"
        "  plan        print a Theorem 1 recursion schedule and its bounds\n"
        "              --f --modulus --schedule=practical|corollary1|fixed-k --k --levels\n"
        "  run         one execution with optional CSV trace\n"
        "              --f --modulus --adversary --placement --seed --rounds --trace\n"
        "  sweep       batched grid sweep (adversaries x placements x seeds)\n"
        "              --f --modulus | --table=3states|4states|file.table\n"
        "              --backend=auto|scalar --adversaries --placements --seeds\n"
        "              --base-seed --rounds --margin --stop-after-stable --threads\n"
        "              --shards=K [--shard=i] [--emit=FILE]  (distributed mode)\n"
        "  merge       fold sweep worker partials: merge FILE... [--emit=FILE]\n"
        "  synthesize  SAT-synthesize a table algorithm\n"
        "              --n --f --states --modulus --symmetry --min-time --max-time\n"
        "              --incremental --budget --dimacs --save\n"
        "  verify      exact verification --load=file.table (default: embedded)\n"
        "  consensus   repeated consensus demo --f --values --proposals --seed --adversary\n"
        "see the header of tools/synccount_cli.cpp for details\n";
}

// Strict flag handling: a typo'd flag must fail the command, not silently
// run a different experiment.
int reject_unknown(const util::Cli& cli, std::initializer_list<const char*> known,
                   bool allow_positional = false) {
  const auto unknown = cli.unknown_flags(known);
  if (!unknown.empty()) {
    std::cerr << "unknown flag" << (unknown.size() > 1 ? "s" : "") << ":";
    for (const auto& f : unknown) std::cerr << " --" << f;
    std::cerr << "\n";
    usage(std::cerr);
    return 2;
  }
  if (!allow_positional && !cli.positional().empty()) {
    std::cerr << "unexpected argument: " << cli.positional().front() << "\n";
    usage(std::cerr);
    return 2;
  }
  return 0;
}

int cmd_plan(const util::Cli& cli) {
  if (const int rc = reject_unknown(cli, {"f", "modulus", "schedule", "k", "levels"})) {
    return rc;
  }
  const int f = static_cast<int>(cli.get_int("f", 3));
  const std::uint64_t modulus = cli.get_u64("modulus", 10);
  const std::string schedule = cli.get_string("schedule", "practical");
  boosting::Plan plan;
  if (schedule == "practical") {
    plan = boosting::plan_practical(f, modulus);
  } else if (schedule == "corollary1") {
    plan = boosting::plan_corollary1(f, modulus);
  } else if (schedule == "fixed-k") {
    plan = boosting::plan_fixed_k(static_cast<int>(cli.get_int("k", 4)),
                                  static_cast<int>(cli.get_int("levels", 2)), modulus);
  } else {
    std::cerr << "unknown schedule: " << schedule << "\n";
    return 2;
  }
  const auto algo = boosting::build_plan(plan);
  std::cout << "schedule: " << plan.label << "\n";
  util::Table t({"level", "k", "F", "output modulus", "level cost 3(F+2)(2m)^k"});
  t.add_row({"base", "-", "0", std::to_string(plan.base_modulus), "-"});
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    const auto& lv = plan.levels[i];
    t.add_row({std::to_string(i + 1), std::to_string(lv.k), std::to_string(lv.F),
               std::to_string(lv.C),
               std::to_string(boosting::required_input_modulus(lv.k, lv.F))});
  }
  t.print(std::cout);
  std::cout << "\nn = " << algo->num_nodes() << ", f = " << algo->resilience()
            << ", T bound = " << algo->stabilisation_bound().value_or(0)
            << " rounds, S = " << algo->state_bits() << " bits/node\n";
  return 0;
}

int cmd_run(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"f", "modulus", "adversary", "placement", "seed", "rounds", "trace"})) {
    return rc;
  }
  const int f = static_cast<int>(cli.get_int("f", 3));
  const std::uint64_t modulus = cli.get_u64("modulus", 16);
  const auto algo = boosting::build_plan(boosting::plan_practical(f, modulus));
  const int n = algo->num_nodes();

  sim::RunConfig cfg;
  cfg.algo = algo;
  const std::string placement = cli.get_string("placement", "blocks");
  if (placement == "spread" || f == 1) {
    cfg.faulty = sim::faults_spread(n, f);
  } else {
    cfg.faulty = sim::faults_block_concentrated(3, n / 3, (f - 1) / 2, f);
  }
  cfg.max_rounds = cli.get_u64("rounds", algo->stabilisation_bound().value_or(2000) + 300);
  cfg.seed = cli.get_u64("seed", 1);
  cfg.record_outputs = cli.has("trace");
  auto adversary = sim::make_adversary(cli.get_string("adversary", "split"));
  const auto res = sim::run_execution(cfg, *adversary, 100);

  std::cout << "algorithm:  " << algo->name() << "\n"
            << "faulty:     ";
  for (auto id : sim::fault_ids(cfg.faulty)) std::cout << id << ' ';
  std::cout << "\nadversary:  " << adversary->name() << "\n"
            << "rounds run: " << res.rounds << "\n"
            << "stabilised: " << (res.stabilised ? "yes" : "no") << " at round "
            << res.stabilisation_round << " (bound "
            << algo->stabilisation_bound().value_or(0) << ")\n";

  if (cli.has("trace")) {
    const std::string path = cli.get_string("trace", "trace.csv");
    std::ofstream out(path);
    out << "round";
    for (auto id : res.correct_ids) out << ",node" << id;
    out << "\n";
    for (std::size_t r = 0; r < res.outputs.size(); ++r) {
      out << r;
      for (auto v : res.outputs[r]) out << ',' << v;
      out << "\n";
    }
    std::cout << "trace:      " << path << " (" << res.outputs.size() << " rounds)\n";
  }
  return res.stabilised ? 0 : 1;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

// --- sweep -------------------------------------------------------------------

// The grid a sweep command line describes; shared by the single-process,
// worker and orchestrator paths (a worker must reconstruct the exact spec
// from the same flags).
struct SweepGrid {
  counting::AlgorithmPtr algo;
  sim::ExperimentSpec spec;
  int n = 0;
  int f = 0;
};

int build_sweep_grid(const util::Cli& cli, SweepGrid& out) {
  counting::AlgorithmPtr algo;
  if (cli.has("table")) {
    // Resolve through the same AlgorithmSpec path a deserialised worker
    // spec takes, so registry names and table files cannot drift between
    // the CLI and the wire format.
    const std::string which = cli.get_string("table", "3states");
    counting::AlgorithmSpec tspec;
    tspec.kind = counting::AlgorithmSpec::Kind::kTable;
    if (synthesis::known_table_by_name(which).has_value()) {
      tspec.table_name = which;
    } else {
      tspec.table_file = which;
    }
    algo = counting::build(tspec);
  } else {
    const int plan_f = static_cast<int>(cli.get_int("f", 3));
    const std::uint64_t modulus = cli.get_u64("modulus", 16);
    algo = boosting::build_plan(boosting::plan_practical(plan_f, modulus));
  }
  const int f = cli.has("table") ? algo->resilience()
                                 : static_cast<int>(cli.get_int("f", 3));
  const int n = algo->num_nodes();

  sim::ExperimentSpec spec;
  spec.algo = algo;
  const std::string backend = cli.get_string("backend", "auto");
  if (backend == "scalar") {
    spec.backend = sim::Backend::kScalar;
  } else if (backend != "auto") {
    std::cerr << "unknown backend: " << backend << " (want auto|scalar)\n";
    return 2;
  }

  const std::string adv_arg = cli.get_string("adversaries", "split,random,lookahead");
  spec.adversaries = adv_arg == "all" ? sim::adversary_names() : split_csv(adv_arg);

  const bool placements_given = cli.has("placements");
  for (const auto& name : split_csv(cli.get_string("placements", "spread,blocks"))) {
    if (name == "spread") {
      spec.placements.push_back({"spread", sim::faults_spread(n, f)});
    } else if (name == "blocks" || name == "leaders") {
      // Block-structured placements need a multi-block fault budget.
      if (f <= 1) {
        if (placements_given) {
          std::cerr << "placement '" << name << "' requires --f>1 (skipped at f=" << f
                    << ")\n";
        }
        continue;
      }
      spec.placements.push_back(
          name == "blocks"
              ? sim::FaultPattern{"blocks", sim::faults_block_concentrated(3, n / 3, (f - 1) / 2, f)}
              : sim::FaultPattern{"leaders", sim::faults_leader_blocks(3, n / 3, (f - 1) / 2, f)});
    } else if (name == "none") {
      spec.placements.push_back({"none", {}});
    } else {
      std::cerr << "unknown placement: " << name << " (want spread|blocks|leaders|none)\n";
      return 2;
    }
  }
  if (spec.placements.empty()) {
    std::cerr << "no applicable placements for f=" << f
              << " -- pass --placements=spread or none\n";
    return 2;
  }

  spec.seeds = static_cast<int>(cli.get_int("seeds", 5));
  spec.base_seed = cli.get_u64("base-seed", 0x9000);
  spec.max_rounds = cli.get_u64("rounds", 0);
  spec.margin = cli.get_u64("margin", 100);
  spec.stop_after_stable = cli.get_u64("stop-after-stable", 120);

  out.algo = std::move(algo);
  out.spec = std::move(spec);
  out.n = n;
  out.f = f;
  return 0;
}

void print_grid_header(const SweepGrid& g) {
  std::cout << "algorithm: " << g.algo->name() << " (n=" << g.n << ", f=" << g.f
            << ", T bound " << g.algo->stabilisation_bound().value_or(0) << ")\n";
}

// The per-(adversary, placement) table plus the grand total, printed from a
// full-grid partial -- identical whether the groups were computed here or
// merged from worker files.
int print_partial_table(const sim::ShardPartial& partial) {
  util::Table table({"adversary", "placement", "stabilised", "T mean", "T p50", "T p95",
                     "T max"});
  for (const auto& g : partial.groups) {
    const auto& agg = g.aggregate;
    const auto& st = agg.stabilisation;
    table.add_row({partial.adversaries[g.group / partial.placement_names.size()],
                   partial.placement_names[g.group % partial.placement_names.size()],
                   std::to_string(agg.stabilised) + "/" + std::to_string(agg.runs),
                   agg.stabilised ? util::fmt_double(st.mean(), 1) : "-",
                   agg.stabilised ? util::fmt_double(st.quantile(0.5), 1) : "-",
                   agg.stabilised ? util::fmt_double(st.quantile(0.95), 1) : "-",
                   agg.stabilised ? util::fmt_double(st.max(), 0) : "-"});
  }
  table.print(std::cout);

  const auto t = partial.total();
  std::cout << "\ntotal: " << t.stabilised << "/" << t.runs << " stabilised ("
            << util::fmt_double(100.0 * t.stabilisation_rate(), 1) << "%), T "
            << t.stabilisation.to_string() << "\n";
  return t.stabilised == t.runs ? 0 : 1;
}

int emit_partial(const std::string& path, const sim::ShardPartial& partial) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  sim::write_partial(out, partial);
  out.close();  // flush now: close-time errors (ENOSPC) must fail the worker
  if (!out.good()) {
    std::cerr << "error writing " << path << "\n";
    return 1;
  }
  return 0;
}

// Forks one worker per shard (re-executing this binary) and waits for all of
// them; multi-machine runs do exactly this by hand, one shard per machine.
int run_worker_processes(const std::string& exe,
                         const std::vector<std::vector<std::string>>& worker_args) {
  std::vector<pid_t> pids;
  bool spawn_failed = false;
  for (const auto& args : worker_args) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      spawn_failed = true;
      break;  // reap the workers already running before reporting failure
    }
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      // execvp: self_exe falls back to argv[0] where /proc/self/exe is
      // unavailable, and a bare program name then needs the PATH search.
      execvp(exe.c_str(), argv.data());
      std::perror("execvp");
      _exit(127);
    }
    pids.push_back(pid);
  }
  int failures = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << failures << " worker process(es) failed\n";
  }
  return (failures > 0 || spawn_failed) ? 1 : 0;
}

int cmd_sweep(const util::Cli& cli, const std::string& exe,
              const std::vector<std::string>& raw_args) {
  if (const int rc = reject_unknown(
          cli, {"f", "modulus", "table", "backend", "adversaries", "placements", "seeds",
                "base-seed", "rounds", "margin", "stop-after-stable", "threads", "shards",
                "shard", "emit"})) {
    return rc;
  }
  SweepGrid grid;
  if (const int rc = build_sweep_grid(cli, grid)) return rc;
  const sim::ExperimentSpec& spec = grid.spec;

  const int shards = static_cast<int>(cli.get_int("shards", 1));
  if (shards < 1) {
    std::cerr << "--shards must be >= 1\n";
    return 2;
  }
  const std::string emit = cli.get_string("emit", "");
  // A bare `--emit` parses as the boolean value "true"; writing a file
  // literally named "true" is always a forgotten =FILE.
  if (cli.has("emit") && emit == "true") {
    std::cerr << "--emit requires a file: --emit=FILE\n";
    return 2;
  }
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  // --- Worker mode: run one shard, emit the partial, stay quiet ------------
  if (cli.has("shard")) {
    const int shard = static_cast<int>(cli.get_int("shard", 0));
    if (shard < 0 || shard >= shards) {
      std::cerr << "--shard must be in [0, " << shards << ")\n";
      return 2;
    }
    if (emit.empty()) {
      std::cerr << "worker mode (--shard) requires --emit=FILE\n";
      return 2;
    }
    const auto plan = sim::plan_shards(spec, shards, shard);
    const sim::Engine engine(threads);
    const auto result = engine.run(spec, plan);
    const auto partial = sim::make_partial(spec, plan, result);
    if (const int rc = emit_partial(emit, partial)) return rc;
    std::cout << "shard " << shard << "/" << shards << ": groups [" << plan.group_begin
              << "," << plan.group_end << ") of " << sim::group_count(spec) << ", "
              << result.cells.size() << " cells (" << result.batched_cells
              << " batched), wall " << util::fmt_double(result.wall_seconds, 2) << "s -> "
              << emit << "\n";
    return 0;
  }

  // --- Single process: the grid in one engine run --------------------------
  if (shards == 1) {
    const sim::Engine engine(threads);
    const auto result = engine.run(spec);
    const auto partial = sim::make_partial(spec, sim::plan_shards(spec, 1, 0), result);
    print_grid_header(grid);
    std::cout << "grid: " << spec.adversaries.size() << " adversaries x "
              << spec.placements.size() << " placements x " << spec.seeds << " seeds = "
              << result.cells.size() << " executions on " << engine.threads()
              << " threads (" << result.batched_cells << " on the batched backend)\n\n";
    if (!emit.empty()) {
      if (const int rc = emit_partial(emit, partial)) return rc;
    }
    const int rc = print_partial_table(partial);
    std::cout << "wall: " << util::fmt_double(result.wall_seconds, 2) << "s\n";
    return rc;
  }

  // --- Orchestrator: fork K local workers and merge their partials ---------
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> worker_files;
  const bool keep_partials = !emit.empty();
  std::string tmp_base;
  if (!keep_partials) {
    tmp_base = (std::filesystem::temp_directory_path() /
                ("synccount-sweep-" + std::to_string(getpid()) + "-shard"))
                   .string();
  }
  // The workers run concurrently, so --threads (or hardware concurrency) is
  // a *total* budget split across them -- forwarding it verbatim would
  // oversubscribe the machine K-fold.
  const int total_threads =
      threads > 0 ? threads
                  : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int worker_threads = std::max(1, total_threads / shards);
  std::vector<std::vector<std::string>> worker_args;
  for (int i = 0; i < shards; ++i) {
    const std::string file = keep_partials ? emit + ".shard" + std::to_string(i)
                                           : tmp_base + std::to_string(i) + ".jsonl";
    worker_files.push_back(file);
    std::vector<std::string> args = {exe, "sweep"};
    for (const auto& a : raw_args) {
      if (a.rfind("--shards", 0) == 0 || a.rfind("--shard", 0) == 0 ||
          a.rfind("--emit", 0) == 0 || a.rfind("--threads", 0) == 0) {
        continue;  // replaced below (--shards is re-added explicitly)
      }
      args.push_back(a);
    }
    args.push_back("--shards=" + std::to_string(shards));
    args.push_back("--shard=" + std::to_string(i));
    args.push_back("--threads=" + std::to_string(worker_threads));
    args.push_back("--emit=" + file);
    worker_args.push_back(std::move(args));
  }

  print_grid_header(grid);
  std::cout << "grid: " << spec.adversaries.size() << " adversaries x "
            << spec.placements.size() << " placements x " << spec.seeds << " seeds = "
            << sim::group_count(spec) * static_cast<std::size_t>(spec.seeds)
            << " executions across " << shards << " worker processes\n";
  const int spawn_rc = run_worker_processes(exe, worker_args);

  std::vector<sim::ShardPartial> parts;
  int read_rc = 0;
  if (spawn_rc == 0) {
    for (const auto& file : worker_files) {
      std::ifstream in(file);
      if (!in.good()) {
        std::cerr << "missing worker partial: " << file << "\n";
        read_rc = 1;
        break;
      }
      parts.push_back(sim::read_partial(in, file));
    }
  }
  if (!keep_partials) {
    for (const auto& file : worker_files) std::remove(file.c_str());
  }
  if (spawn_rc != 0 || read_rc != 0) return 1;

  const auto merged = sim::merge_partials(std::move(parts));
  std::cout << "\n";
  if (!emit.empty()) {
    if (const int rc = emit_partial(emit, merged)) return rc;
  }
  const int rc = print_partial_table(merged);
  std::cout << "wall: "
            << util::fmt_double(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count(),
                                2)
            << "s (" << shards << " workers)\n";
  return rc;
}

int cmd_merge(const util::Cli& cli) {
  if (const int rc = reject_unknown(cli, {"emit"}, /*allow_positional=*/true)) return rc;
  if (cli.has("emit") && cli.get_string("emit", "") == "true") {
    std::cerr << "--emit requires a file: --emit=FILE\n";
    return 2;
  }
  const auto& files = cli.positional();
  if (files.empty()) {
    std::cerr << "merge needs at least one partial file\n";
    return 2;
  }
  std::vector<sim::ShardPartial> parts;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in.good()) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    parts.push_back(sim::read_partial(in, file));
  }
  const auto merged = sim::merge_partials(std::move(parts));

  // Rebuild the algorithm from the spec echo for the header line (also
  // validates that this machine can reconstruct the experiment).
  const auto algo =
      counting::build(counting::algorithm_spec_from_json(merged.spec.at("algo")));
  std::cout << "algorithm: " << algo->name() << " (n=" << algo->num_nodes() << ", f="
            << algo->resilience() << ")\n"
            << "grid: " << merged.adversaries.size() << " adversaries x "
            << merged.placement_names.size() << " placements x " << merged.seeds
            << " seeds, merged from " << files.size() << " partial(s)\n\n";
  if (cli.has("emit")) {
    if (const int rc = emit_partial(cli.get_string("emit", ""), merged)) return rc;
  }
  return print_partial_table(merged);
}

counting::Symmetry parse_symmetry(const std::string& s) {
  if (s == "uniform") return counting::Symmetry::kUniform;
  if (s == "cyclic") return counting::Symmetry::kCyclic;
  if (s == "per-node") return counting::Symmetry::kPerNode;
  throw std::invalid_argument("unknown symmetry: " + s);
}

int cmd_synthesize(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"n", "f", "states", "modulus", "symmetry", "max-time", "min-time",
                "incremental", "budget", "dimacs", "save"})) {
    return rc;
  }
  synthesis::SynthesisSpec spec;
  spec.n = static_cast<int>(cli.get_int("n", 4));
  spec.f = static_cast<int>(cli.get_int("f", 1));
  spec.num_states = cli.get_u64("states", 3);
  spec.modulus = cli.get_u64("modulus", 2);
  spec.symmetry = parse_symmetry(cli.get_string("symmetry", "cyclic"));

  if (cli.has("dimacs")) {
    spec.max_time = static_cast<int>(cli.get_int("max-time", 8));
    const synthesis::Encoder enc(spec);
    const std::string path = cli.get_string("dimacs", "out.cnf");
    std::ofstream out(path);
    sat::write_dimacs(enc.cnf(), out);
    std::cout << "wrote " << enc.size().variables << " vars / " << enc.size().clauses
              << " clauses to " << path << "\n";
    return 0;
  }

  synthesis::SynthesisOptions opt;
  opt.min_time = static_cast<int>(cli.get_int("min-time", 1));
  opt.max_time = static_cast<int>(cli.get_int("max-time", 8));
  opt.conflict_budget = cli.get_u64("budget", 100000);
  const auto out = cli.get_bool("incremental") ? synthesize_incremental(spec, opt)
                                               : synthesize(spec, opt);
  if (!out.found) {
    std::cout << (out.budget_exhausted ? "budget exhausted" : "UNSAT (optimality proof)")
              << " after " << out.total_conflicts << " conflicts\n";
    return 1;
  }
  std::cout << "found: certified worst-case stabilisation " << out.exact_time
            << " rounds (admissible bound " << out.time_bound_used << ")\n";
  if (cli.has("save")) {
    const std::string path = cli.get_string("save", "counter.table");
    std::ofstream file(path);
    counting::write_table(out.table, file);
    std::cout << "saved to " << path << "\n";
  }
  std::cout << "g = {";
  for (std::size_t i = 0; i < out.table.g.size(); ++i) {
    std::cout << static_cast<int>(out.table.g[i]) << (i + 1 < out.table.g.size() ? "," : "");
  }
  std::cout << "}\nh = {";
  for (std::size_t i = 0; i < out.table.h.size(); ++i) {
    std::cout << static_cast<int>(out.table.h[i]) << (i + 1 < out.table.h.size() ? "," : "");
  }
  std::cout << "}\n";
  return 0;
}

int cmd_verify(const util::Cli& cli) {
  if (const int rc = reject_unknown(cli, {"load"})) return rc;
  std::vector<counting::TransitionTable> tables;
  if (cli.has("load")) {
    std::ifstream file(cli.get_string("load", ""));
    SC_CHECK(file.good(), "cannot open table file");
    tables.push_back(counting::read_table(file));
  } else {
    tables = {synthesis::known_table_4_1_3states(), synthesis::known_table_4_1_4states()};
  }
  for (const auto& table : tables) {
    const counting::TableAlgorithm algo(table);
    const auto vr = synthesis::verify(algo);
    std::cout << algo.name() << ": " << (vr.ok ? "VERIFIED" : ("FAILED: " + vr.failure))
              << ", exact worst-case T = " << vr.worst_case_time << " ("
              << vr.configurations << " configurations, " << vr.transitions
              << " transitions)\n";
    if (!vr.ok) return 1;
  }
  return 0;
}

int cmd_consensus(const util::Cli& cli) {
  if (const int rc =
          reject_unknown(cli, {"f", "values", "proposals", "seed", "adversary"})) {
    return rc;
  }
  const int f = static_cast<int>(cli.get_int("f", 1));
  const std::uint64_t values = cli.get_u64("values", 8);
  const int tau = 3 * (f + 2);
  const auto counter =
      boosting::build_plan(boosting::plan_practical(f, static_cast<std::uint64_t>(tau)));
  const int n = counter->num_nodes();

  std::vector<std::uint64_t> proposals(static_cast<std::size_t>(n), 0);
  {
    std::istringstream ss(cli.get_string("proposals", ""));
    std::string tok;
    std::size_t i = 0;
    while (std::getline(ss, tok, ',') && i < proposals.size()) {
      proposals[i++] = std::strtoull(tok.c_str(), nullptr, 10) % values;
    }
  }
  const auto svc = std::make_shared<apps::RepeatedConsensus>(counter, f, values, proposals);

  sim::RunConfig cfg;
  cfg.algo = svc;
  cfg.faulty = sim::faults_spread(n, f);
  cfg.max_rounds = *svc->stabilisation_bound() + 3 * static_cast<std::uint64_t>(tau);
  cfg.seed = cli.get_u64("seed", 1);
  cfg.record_outputs = true;
  auto adversary = sim::make_adversary(cli.get_string("adversary", "split"));
  const auto res = sim::run_execution(cfg, *adversary, 1);

  std::cout << "service: " << svc->name() << " on " << n << " nodes, " << f
            << " Byzantine\nproposals:";
  for (auto p : proposals) std::cout << ' ' << p;
  const auto& last = res.outputs.back();
  std::cout << "\nfinal decisions:";
  for (auto d : last) std::cout << ' ' << d;
  const bool agreed = std::all_of(last.begin(), last.end(),
                                  [&](std::uint64_t v) { return v == last[0]; });
  std::cout << "\nagreement: " << (agreed ? "yes" : "NO") << "\n";
  return agreed ? 0 : 1;
}

// Path of the running binary, for re-exec'ing worker processes.
std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      usage(std::cerr);
      return 2;
    }
    const std::string cmd = argv[1];
    const util::Cli cli(argc - 1, argv + 1);
    if (cmd == "plan") return cmd_plan(cli);
    if (cmd == "run") return cmd_run(cli);
    if (cmd == "sweep") {
      return cmd_sweep(cli, self_exe(argv[0]),
                       std::vector<std::string>(argv + 2, argv + argc));
    }
    if (cmd == "merge") return cmd_merge(cli);
    if (cmd == "synthesize") return cmd_synthesize(cli);
    if (cmd == "verify") return cmd_verify(cli);
    if (cmd == "consensus") return cmd_consensus(cli);
    std::cerr << "unknown command: " << cmd << "\n";
    usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
