// synccount_cli -- command-line front end for the library.
//
//   synccount_cli plan        --f=7 [--modulus=10] [--schedule=practical]
//               (spec mode)   [sweep grid flags] [sink flags] --emit=SPEC.json
//                             [--shards=K]  (emit a runnable experiment spec
//                             without running it, plus the shard plan)
//   synccount_cli run         --f=3 [--modulus=16] [--adversary=split]
//                             [--placement=blocks|spread] [--seed=S]
//                             [--rounds=N] [--trace=out.csv]
//   synccount_cli sweep       --f=3 [--modulus=16] [--seeds=5] [--threads=N]
//                             [--table=3states|4states|file.table]
//                             [--backend=auto|scalar] [--stats=exact|sketch]
//                             [--adversaries=split,lookahead|all]
//                             [--placements=spread,blocks,leaders]
//                             [--base-seed=S] [--rounds=N] [--margin=M]
//                             [sink flags: --trace=FILE
//                              --trace-format=jsonl|csv|bin
//                              --trace-outputs --checkpoint=FILE --progress]
//                             [--shards=K] [--shard=i] [--emit=FILE]
//   synccount_cli sweep       --spec=SPEC.json [--resume] [--threads=N]
//                             [--shards=K] [--shard=i] [--emit=FILE] [--progress]
//   synccount_cli merge       FILE... [--emit=FILE]
//   synccount_cli synthesize  --n=4 --f=1 --states=3 [--symmetry=cyclic]
//                             [--max-time=8] [--incremental] [--budget=K]
//                             [--dimacs=out.cnf]
//   synccount_cli synth       --n=4 --f=1 --states=3 [--symmetry=cyclic]
//                             [--min-time=1] [--max-time=8] [--portfolio=K]
//                             [--cube-depth=d] [--jobs=N] [--budget=C]
//                             [--no-prefilter] [--stats] [--save=FILE]
//                             [--emit-cnf=FILE]  (parallel synthesis engine:
//                             portfolio CDCL x cube-and-conquer; the result
//                             is bit-identical for any --jobs)
//   synccount_cli verify      [--load=file.table]  (default: embedded tables)
//   synccount_cli consensus   --f=1 --values=8 --proposals=5,5,5,5 [--seed=S]
//
// Declarative sweeps: a spec file is the single source of truth for a run --
// `plan ... --emit=spec.json` writes one without running anything, and
// `sweep --spec=spec.json` executes it with the sinks (trace, progress,
// checkpoint) the spec configures. With a checkpoint sink configured, a
// killed worker restarts from the last finished cell-group via
// `sweep --spec=spec.json --resume`, and the completed checkpoint file is
// byte-identical to an uninterrupted worker's partial.
//
// Distributed sweeps: `sweep --shards=K` forks K local worker processes,
// each running a contiguous slice of (adversary, placement) cell-groups, and
// merges their partial files -- bit-identical to the single-process sweep.
// `sweep --shards=K --shard=i --emit=FILE` runs one worker in the calling
// process (the multi-machine form: run shard i per machine, copy the files,
// `merge` them anywhere). Unknown flags and subcommands exit with status 2.
#include <fstream>
#include <iostream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "counting/algorithm_spec.hpp"
#include "counting/table_io.hpp"
#include "sim/profile.hpp"
#include "sim/experiment_io.hpp"
#include "sim/sink.hpp"
#include "synccount/synccount.hpp"
#include "synthesis/portfolio.hpp"

using namespace synccount;

namespace {

void usage(std::ostream& os) {
  os << "usage: synccount_cli <command> [--flags]\n"
        "  plan        print a Theorem 1 recursion schedule and its bounds\n"
        "              --f --modulus --schedule=practical|corollary1|fixed-k --k --levels\n"
        "              with --emit=SPEC.json: build an experiment spec from the sweep\n"
        "              grid + sink flags below and write it WITHOUT running; --shards=K\n"
        "              additionally prints the per-worker shard plan\n"
        "  run         one execution with optional CSV trace\n"
        "              --f --modulus --adversary --placement --seed --rounds --trace\n"
        "  sweep       batched grid sweep (adversaries x placements x seeds)\n"
        "              --f --modulus | --table=3states|4states|file.table\n"
        "              --backend=auto|scalar --adversaries --placements --seeds\n"
        "              --base-seed --rounds --margin --stop-after-stable --threads\n"
        "              --stats=exact|sketch  (sketch: mergeable KLL quantile\n"
        "              sketches instead of retained samples; bounded memory)\n"
        "              sink flags: --trace=FILE --trace-format=jsonl|csv|bin\n"
        "              --trace-outputs --checkpoint=FILE --progress\n"
        "              --shards=K [--shard=i] [--emit=FILE]  (distributed mode)\n"
        "              --spec=SPEC.json [--resume]  (run a spec file; --resume\n"
        "              restarts a checkpointed run from the last finished group)\n"
        "  merge       fold sweep worker partials: merge FILE... [--emit=FILE]\n"
        "  synthesize  SAT-synthesize a table algorithm\n"
        "              --n --f --states --modulus --symmetry --min-time --max-time\n"
        "              --incremental --budget --dimacs --save\n"
        "  synth       parallel synthesis: portfolio CDCL + cube-and-conquer +\n"
        "              batch prefilter; deterministic result for any --jobs\n"
        "              --n --f --states --modulus --symmetry --min-time --max-time\n"
        "              --portfolio=K --cube-depth=d --jobs=N --budget=C\n"
        "              --no-prefilter --stats --save=FILE --emit-cnf=FILE\n"
        "  verify      exact verification --load=file.table (default: embedded)\n"
        "  consensus   repeated consensus demo --f --values --proposals --seed --adversary\n"
        "see the header of tools/synccount_cli.cpp for details\n";
}

// Strict flag handling: a typo'd flag must fail the command, not silently
// run a different experiment.
int reject_unknown(const util::Cli& cli, std::initializer_list<const char*> known,
                   bool allow_positional = false) {
  const auto unknown = cli.unknown_flags(known);
  if (!unknown.empty()) {
    std::cerr << "unknown flag" << (unknown.size() > 1 ? "s" : "") << ":";
    for (const auto& f : unknown) std::cerr << " --" << f;
    std::cerr << "\n";
    usage(std::cerr);
    return 2;
  }
  if (!allow_positional && !cli.positional().empty()) {
    std::cerr << "unexpected argument: " << cli.positional().front() << "\n";
    usage(std::cerr);
    return 2;
  }
  return 0;
}

// Defined with the sweep machinery below: `plan --emit=SPEC.json` builds the
// sweep grid + sink configs from flags and writes a spec file without
// running anything.
int cmd_plan_spec(const util::Cli& cli);

int cmd_plan(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"f", "modulus", "schedule", "k", "levels",
                // Spec-emission mode shares the sweep grid + sink flags.
                "table", "backend", "stats", "adversaries", "placements", "seeds",
                "base-seed", "rounds", "margin", "stop-after-stable", "shards", "emit",
                "trace", "trace-format", "trace-outputs", "checkpoint", "progress"})) {
    return rc;
  }
  if (cli.has("emit")) return cmd_plan_spec(cli);
  // Without --emit the sweep-grid/sink flags would be silently ignored --
  // keep the strict-CLI promise and refuse them instead.
  for (const char* flag :
       {"table", "backend", "stats", "adversaries", "placements", "seeds", "base-seed",
        "rounds", "margin", "stop-after-stable", "shards", "trace", "trace-format",
        "trace-outputs", "checkpoint", "progress"}) {
    if (cli.has(flag)) {
      std::cerr << "--" << flag << " requires spec-emission mode: plan ... --emit=SPEC.json\n";
      return 2;
    }
  }
  const int f = static_cast<int>(cli.get_int("f", 3));
  const std::uint64_t modulus = cli.get_u64("modulus", 10);
  const std::string schedule = cli.get_string("schedule", "practical");
  boosting::Plan plan;
  if (schedule == "practical") {
    plan = boosting::plan_practical(f, modulus);
  } else if (schedule == "corollary1") {
    plan = boosting::plan_corollary1(f, modulus);
  } else if (schedule == "fixed-k") {
    plan = boosting::plan_fixed_k(static_cast<int>(cli.get_int("k", 4)),
                                  static_cast<int>(cli.get_int("levels", 2)), modulus);
  } else {
    std::cerr << "unknown schedule: " << schedule << "\n";
    return 2;
  }
  const auto algo = boosting::build_plan(plan);
  std::cout << "schedule: " << plan.label << "\n";
  util::Table t({"level", "k", "F", "output modulus", "level cost 3(F+2)(2m)^k"});
  t.add_row({"base", "-", "0", std::to_string(plan.base_modulus), "-"});
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    const auto& lv = plan.levels[i];
    t.add_row({std::to_string(i + 1), std::to_string(lv.k), std::to_string(lv.F),
               std::to_string(lv.C),
               std::to_string(boosting::required_input_modulus(lv.k, lv.F))});
  }
  t.print(std::cout);
  std::cout << "\nn = " << algo->num_nodes() << ", f = " << algo->resilience()
            << ", T bound = " << algo->stabilisation_bound().value_or(0)
            << " rounds, S = " << algo->state_bits() << " bits/node\n";
  return 0;
}

int cmd_run(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"f", "modulus", "adversary", "placement", "seed", "rounds", "trace"})) {
    return rc;
  }
  const int f = static_cast<int>(cli.get_int("f", 3));
  const std::uint64_t modulus = cli.get_u64("modulus", 16);
  const auto algo = boosting::build_plan(boosting::plan_practical(f, modulus));
  const int n = algo->num_nodes();

  sim::RunConfig cfg;
  cfg.algo = algo;
  const std::string placement = cli.get_string("placement", "blocks");
  if (placement == "spread" || f == 1) {
    cfg.faulty = sim::faults_spread(n, f);
  } else {
    cfg.faulty = sim::faults_block_concentrated(3, n / 3, (f - 1) / 2, f);
  }
  cfg.max_rounds = cli.get_u64("rounds", algo->stabilisation_bound().value_or(2000) + 300);
  cfg.seed = cli.get_u64("seed", 1);
  cfg.record_outputs = cli.has("trace");
  auto adversary = sim::make_adversary(cli.get_string("adversary", "split"));
  const auto res = sim::run_execution(cfg, *adversary, 100);

  std::cout << "algorithm:  " << algo->name() << "\n"
            << "faulty:     ";
  for (auto id : sim::fault_ids(cfg.faulty)) std::cout << id << ' ';
  std::cout << "\nadversary:  " << adversary->name() << "\n"
            << "rounds run: " << res.rounds << "\n"
            << "stabilised: " << (res.stabilised ? "yes" : "no") << " at round "
            << res.stabilisation_round << " (bound "
            << algo->stabilisation_bound().value_or(0) << ")\n";

  if (cli.has("trace")) {
    const std::string path = cli.get_string("trace", "trace.csv");
    std::ofstream out(path);
    out << "round";
    for (auto id : res.correct_ids) out << ",node" << id;
    out << "\n";
    for (std::size_t r = 0; r < res.outputs.size(); ++r) {
      out << r;
      for (auto v : res.outputs[r]) out << ',' << v;
      out << "\n";
    }
    std::cout << "trace:      " << path << " (" << res.outputs.size() << " rounds)\n";
  }
  return res.stabilised ? 0 : 1;
}

// --- sweep -------------------------------------------------------------------

// The grid a sweep command line describes; shared by the single-process,
// worker and orchestrator paths (a worker must reconstruct the exact spec
// from the same flags or read the same spec file). The ExperimentSpec is
// fully declarative (`spec.algorithm`), so it serialises as-is.
struct SweepGrid {
  counting::AlgorithmPtr algo;  // built once for header printing
  sim::ExperimentSpec spec;
  int n = 0;
  int f = 0;
};

int build_sweep_grid(const util::Cli& cli, SweepGrid& out) {
  counting::AlgorithmSpec algo_spec;
  if (cli.has("table")) {
    // Resolve through the same AlgorithmSpec path a deserialised worker
    // spec takes, so registry names and table files cannot drift between
    // the CLI and the wire format.
    const std::string which = cli.get_string("table", "3states");
    algo_spec.kind = counting::AlgorithmSpec::Kind::kTable;
    if (synthesis::known_table_by_name(which).has_value()) {
      algo_spec.table_name = which;
    } else {
      algo_spec.table_file = which;
    }
  } else {
    const int plan_f = static_cast<int>(cli.get_int("f", 3));
    const std::uint64_t modulus = cli.get_u64("modulus", 16);
    algo_spec = *counting::describe(
        boosting::build_plan(boosting::plan_practical(plan_f, modulus)));
  }
  counting::AlgorithmPtr algo = counting::build(algo_spec);
  const int f = cli.has("table") ? algo->resilience()
                                 : static_cast<int>(cli.get_int("f", 3));
  const int n = algo->num_nodes();

  sim::ExperimentSpec spec;
  spec.algorithm = std::move(algo_spec);
  const std::string backend = cli.get_string("backend", "auto");
  if (backend == "scalar") {
    spec.backend = sim::Backend::kScalar;
  } else if (backend != "auto") {
    std::cerr << "unknown backend: " << backend << " (want auto|scalar)\n";
    return 2;
  }

  const std::string stats = cli.get_string("stats", "exact");
  if (stats == "sketch") {
    spec.stats = util::StatsMode::kSketch;
  } else if (stats != "exact") {
    std::cerr << "unknown stats mode: " << stats << " (want exact|sketch)\n";
    return 2;
  }

  const std::string adv_arg = cli.get_string("adversaries", "split,random,lookahead");
  spec.adversaries =
      adv_arg == "all" ? sim::adversary_names() : cli.get_list("adversaries", adv_arg);

  const bool placements_given = cli.has("placements");
  for (const auto& name : cli.get_list("placements", "spread,blocks")) {
    if (name == "spread") {
      spec.placements.push_back({"spread", sim::faults_spread(n, f)});
    } else if (name == "blocks" || name == "leaders") {
      // Block-structured placements need a multi-block fault budget.
      if (f <= 1) {
        if (placements_given) {
          std::cerr << "placement '" << name << "' requires --f>1 (skipped at f=" << f
                    << ")\n";
        }
        continue;
      }
      spec.placements.push_back(
          name == "blocks"
              ? sim::FaultPattern{"blocks", sim::faults_block_concentrated(3, n / 3, (f - 1) / 2, f)}
              : sim::FaultPattern{"leaders", sim::faults_leader_blocks(3, n / 3, (f - 1) / 2, f)});
    } else if (name == "none") {
      spec.placements.push_back({"none", {}});
    } else {
      std::cerr << "unknown placement: " << name << " (want spread|blocks|leaders|none)\n";
      return 2;
    }
  }
  if (spec.placements.empty()) {
    std::cerr << "no applicable placements for f=" << f
              << " -- pass --placements=spread or none\n";
    return 2;
  }

  spec.seeds = static_cast<int>(cli.get_int("seeds", 5));
  spec.base_seed = cli.get_u64("base-seed", 0x9000);
  spec.max_rounds = cli.get_u64("rounds", 0);
  spec.margin = cli.get_u64("margin", 100);
  spec.stop_after_stable = cli.get_u64("stop-after-stable", 120);

  out.algo = std::move(algo);
  out.spec = std::move(spec);
  out.n = n;
  out.f = f;
  return 0;
}

// Turns the sink flags into declarative SinkConfigs on the spec, so a spec
// emitted by `plan` or rebuilt by a worker from the same flags carries the
// identical observer setup.
int apply_sink_flags(const util::Cli& cli, sim::ExperimentSpec& spec) {
  if (cli.has("trace")) {
    sim::SinkConfig cfg;
    cfg.kind = sim::SinkConfig::Kind::kTrace;
    cfg.path = cli.get_string("trace", "");
    if (cfg.path.empty() || cfg.path == "true") {
      std::cerr << "--trace requires a file: --trace=FILE\n";
      return 2;
    }
    cfg.format = cli.get_string("trace-format", "jsonl");
    if (cfg.format != "jsonl" && cfg.format != "csv" && cfg.format != "bin") {
      std::cerr << "unknown trace format: " << cfg.format << " (want jsonl|csv|bin)\n";
      return 2;
    }
    cfg.outputs = cli.get_bool("trace-outputs");
    if (cfg.outputs && cfg.format != "jsonl") {
      std::cerr << "--trace-outputs requires --trace-format=jsonl\n";
      return 2;
    }
    spec.sinks.push_back(std::move(cfg));
  }
  if (cli.has("checkpoint")) {
    sim::SinkConfig cfg;
    cfg.kind = sim::SinkConfig::Kind::kCheckpoint;
    cfg.path = cli.get_string("checkpoint", "");
    if (cfg.path.empty() || cfg.path == "true") {
      std::cerr << "--checkpoint requires a file: --checkpoint=FILE\n";
      return 2;
    }
    spec.sinks.push_back(std::move(cfg));
  }
  if (cli.get_bool("progress")) {
    sim::SinkConfig cfg;
    cfg.kind = sim::SinkConfig::Kind::kProgress;
    spec.sinks.push_back(std::move(cfg));
  }
  return 0;
}

const sim::SinkConfig* checkpoint_config(const sim::ExperimentSpec& spec) {
  for (const sim::SinkConfig& cfg : spec.sinks) {
    if (cfg.kind == sim::SinkConfig::Kind::kCheckpoint) return &cfg;
  }
  return nullptr;
}

void print_grid_header(const SweepGrid& g) {
  std::cout << "algorithm: " << g.algo->name() << " (n=" << g.n << ", f=" << g.f
            << ", T bound " << g.algo->stabilisation_bound().value_or(0) << ")\n";
}

// The per-(adversary, placement) table plus the grand total, printed from a
// full-grid partial -- identical whether the groups were computed here or
// merged from worker files.
int print_partial_table(const sim::ShardPartial& partial) {
  util::Table table({"adversary", "placement", "stabilised", "T mean", "T p50", "T p95",
                     "T max"});
  for (const auto& g : partial.groups) {
    const auto& agg = g.aggregate;
    const auto& st = agg.stabilisation;
    table.add_row({partial.adversaries[g.group / partial.placement_names.size()],
                   partial.placement_names[g.group % partial.placement_names.size()],
                   std::to_string(agg.stabilised) + "/" + std::to_string(agg.runs),
                   agg.stabilised ? util::fmt_double(st.mean(), 1) : "-",
                   agg.stabilised ? util::fmt_double(st.quantile(0.5), 1) : "-",
                   agg.stabilised ? util::fmt_double(st.quantile(0.95), 1) : "-",
                   agg.stabilised ? util::fmt_double(st.max(), 0) : "-"});
  }
  table.print(std::cout);

  const auto t = partial.total();
  std::cout << "\ntotal: " << t.stabilised << "/" << t.runs << " stabilised ("
            << util::fmt_double(100.0 * t.stabilisation_rate(), 1) << "%), T "
            << t.stabilisation.to_string() << "\n";
  return t.stabilised == t.runs ? 0 : 1;
}

// The always-on per-group profiling counters (sim/profile.hpp) of what THIS
// process executed: which backend each group landed on, its node-rounds
// (executed rounds x correct nodes) and aggregate task compute time. Groups
// skipped by a resume are not re-profiled and do not appear.
void print_profile_table(const sim::ExperimentSpec& spec,
                         const sim::ExperimentResult& executed) {
  if (executed.profiles.empty() || executed.cells.empty()) return;
  std::vector<std::string> adversaries;
  std::vector<std::string> placements;
  sim::grid_names(spec, adversaries, placements);
  const auto n_seeds = static_cast<std::size_t>(spec.seeds);
  util::Table t({"adversary", "placement", "backend", "node-rounds", "compute ms"});
  for (std::size_t lg = 0; lg < executed.profiles.size(); ++lg) {
    const auto& p = executed.profiles[lg];
    const auto& cell = executed.cells[lg * n_seeds];
    t.add_row({adversaries[cell.adversary], placements[cell.placement], p.backend_name(),
               std::to_string(p.node_rounds()) + (p.saturated() ? "+" : ""),
               util::fmt_double(static_cast<double>(p.nanos) / 1e6, 1)});
  }
  std::cout << "\nprofile (this process):\n";
  t.print(std::cout);
}

int emit_partial(const std::string& path, const sim::ShardPartial& partial) {
  std::ostringstream out;
  sim::write_partial(out, partial);
  try {
    // Durable + atomic: an orchestrator (or CI byte-compare) never sees a
    // half-written partial, and ENOSPC fails the worker here, not later.
    sim::atomic_write_file(path, out.str());
  } catch (const std::exception& e) {
    std::cerr << "error writing " << path << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}

// `plan --emit=SPEC.json`: build the grid + sink configs from flags and
// write the spec file -- the whole experiment as data, nothing executed.
// With --shards=K the per-worker group assignment is printed too, so an
// operator can eyeball the split before handing shards to machines.
int cmd_plan_spec(const util::Cli& cli) {
  const std::string emit = cli.get_string("emit", "");
  if (emit.empty() || emit == "true") {
    std::cerr << "--emit requires a file: --emit=SPEC.json\n";
    return 2;
  }
  // Spec emission builds the practical-schedule sweep grid; the schedule
  // flags of the bounds-printing mode would be silently ignored here, which
  // must fail loudly instead of emitting a spec for a different algorithm.
  for (const char* flag : {"schedule", "k", "levels"}) {
    if (cli.has(flag)) {
      std::cerr << "--" << flag << " applies to the schedule-printing mode and "
                   "conflicts with --emit (spec emission uses the practical plan; "
                   "use --table=... for table algorithms)\n";
      return 2;
    }
  }
  SweepGrid grid;
  if (const int rc = build_sweep_grid(cli, grid)) return rc;
  if (const int rc = apply_sink_flags(cli, grid.spec)) return rc;

  std::ofstream out(emit);
  if (!out.good()) {
    std::cerr << "cannot write " << emit << "\n";
    return 1;
  }
  sim::write_spec_file(out, grid.spec);
  out.close();
  if (!out.good()) {
    std::cerr << "error writing " << emit << "\n";
    return 1;
  }

  print_grid_header(grid);
  const sim::ExperimentSpec& spec = grid.spec;
  const std::size_t groups = sim::group_count(spec);
  std::cout << "grid: " << spec.adversaries.size() << " adversaries x "
            << std::max<std::size_t>(spec.placements.size(), 1) << " placements x "
            << spec.seeds << " seeds = " << groups * static_cast<std::size_t>(spec.seeds)
            << " executions in " << groups << " cell-groups\n";
  for (const sim::SinkConfig& cfg : spec.sinks) {
    switch (cfg.kind) {
      case sim::SinkConfig::Kind::kTrace:
        std::cout << "sink: trace -> " << cfg.path << " (" << cfg.format
                  << (cfg.outputs ? ", with outputs" : "") << ")\n";
        break;
      case sim::SinkConfig::Kind::kProgress:
        std::cout << "sink: progress (stderr)\n";
        break;
      case sim::SinkConfig::Kind::kCheckpoint:
        std::cout << "sink: checkpoint -> " << cfg.path << " (resumable with --resume)\n";
        break;
    }
  }
  const int shards = static_cast<int>(cli.get_int("shards", 1));
  if (shards > 1) {
    util::Table t({"shard", "groups [begin, end)", "cells"});
    for (int i = 0; i < shards; ++i) {
      const auto plan = sim::plan_shards(spec, shards, i);
      t.add_row({std::to_string(i),
                 "[" + std::to_string(plan.group_begin) + ", " +
                     std::to_string(plan.group_end) + ")",
                 std::to_string(plan.groups() * static_cast<std::size_t>(spec.seeds))});
    }
    t.print(std::cout);
  }
  std::cout << "spec: " << emit << "  (run: synccount_cli sweep --spec=" << emit << ")\n";
  return 0;
}

// Forks one worker per shard (re-executing this binary) and waits for all of
// them; multi-machine runs do exactly this by hand, one shard per machine.
int run_worker_processes(const std::string& exe,
                         const std::vector<std::vector<std::string>>& worker_args) {
  std::vector<pid_t> pids;
  bool spawn_failed = false;
  for (const auto& args : worker_args) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      spawn_failed = true;
      break;  // reap the workers already running before reporting failure
    }
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      // execvp: self_exe falls back to argv[0] where /proc/self/exe is
      // unavailable, and a bare program name then needs the PATH search.
      execvp(exe.c_str(), argv.data());
      std::perror("execvp");
      _exit(127);
    }
    pids.push_back(pid);
  }
  int failures = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << failures << " worker process(es) failed\n";
  }
  return (failures > 0 || spawn_failed) ? 1 : 0;
}

// Runs one shard with its configured sinks, honouring --resume: when a
// usable checkpoint prefix exists, the already-finished groups are skipped,
// the checkpoint (and its companion trace files) are truncated to the clean
// prefix and appended to, and the full partial is read back from the
// completed checkpoint file -- byte-identical to an uninterrupted run.
// Returns an exit code; on 0 fills `partial` (and `executed` with what THIS
// process actually ran, which is less than the shard after a resume).
int run_shard(const sim::ExperimentSpec& spec, const sim::ShardPlan& plan, int threads,
              bool resume, const sim::SinkList& extra, sim::ShardPartial& partial,
              sim::ExperimentResult& executed) {
  sim::ShardPlan run_plan = plan;
  bool append = false;
  std::string ck_path;
  if (resume) {
    const sim::SinkConfig* ck = checkpoint_config(spec);
    if (ck == nullptr) {
      std::cerr << "--resume needs a checkpoint sink in the spec "
                   "(plan/sweep --checkpoint=FILE)\n";
      return 2;
    }
    ck_path = sim::sink_path(*ck, plan);
    const auto state = sim::read_checkpoint(ck_path, spec, plan);
    if (state.header_present) {
      std::filesystem::resize_file(ck_path, state.valid_bytes);
      // Companion trace files flush before the checkpoint line, so they hold
      // at least the checkpointed groups' rows; cut them back to exactly
      // those before appending.
      const std::uint64_t groups_done = state.next_group - plan.group_begin;
      for (const sim::SinkConfig& cfg : spec.sinks) {
        if (cfg.kind != sim::SinkConfig::Kind::kTrace) continue;
        if (cfg.format == "bin") {
          // Binary traces are block-oriented: one header block plus one
          // CRC-framed block per finished group.
          sim::truncate_to_blocks(sim::sink_path(cfg, plan), 1 + groups_done);
          continue;
        }
        const std::uint64_t rows =
            groups_done * static_cast<std::uint64_t>(spec.seeds) +
            (cfg.format == "csv" ? 1 : 0);
        sim::truncate_to_lines(sim::sink_path(cfg, plan), rows);
      }
      run_plan.group_begin = state.next_group;
      append = true;
      std::cout << "resume: " << ck_path << " holds groups [" << plan.group_begin << ","
                << state.next_group << "); running [" << state.next_group << ","
                << plan.group_end << ")\n";
    }
  }

  const auto owned = sim::make_sinks(spec, plan, append);
  const sim::Engine engine(threads);
  executed = engine.run(spec, run_plan, sim::sink_list(owned, extra));

  if (append) {
    std::ifstream in(ck_path);
    if (!in.good()) {
      std::cerr << "cannot re-read checkpoint " << ck_path << "\n";
      return 1;
    }
    partial = sim::read_partial(in, ck_path);
  } else {
    partial = sim::make_partial(spec, plan, executed);
  }
  return 0;
}

int cmd_sweep(const util::Cli& cli, const std::string& exe,
              const std::vector<std::string>& raw_args) {
  if (const int rc = reject_unknown(
          cli, {"f", "modulus", "table", "backend", "stats", "adversaries", "placements",
                "seeds", "base-seed", "rounds", "margin", "stop-after-stable", "threads",
                "shards", "shard", "emit", "spec", "resume", "trace", "trace-format",
                "trace-outputs", "checkpoint", "progress"})) {
    return rc;
  }
  SweepGrid grid;
  if (cli.has("spec")) {
    // The spec file is the single source of truth; grid and sink flags would
    // silently disagree with it, so they are rejected outright.
    for (const char* flag :
         {"f", "modulus", "table", "backend", "stats", "adversaries", "placements",
          "seeds", "base-seed", "rounds", "margin", "stop-after-stable", "trace",
          "trace-format", "trace-outputs", "checkpoint"}) {
      if (cli.has(flag)) {
        std::cerr << "--" << flag << " conflicts with --spec (the spec file defines it)\n";
        return 2;
      }
    }
    const std::string path = cli.get_string("spec", "");
    if (path.empty() || path == "true") {
      std::cerr << "--spec requires a file: --spec=SPEC.json\n";
      return 2;
    }
    std::ifstream in(path);
    if (!in.good()) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    grid.spec = sim::read_spec_file(in, path);
    grid.algo = sim::spec_algorithm(grid.spec);
    grid.n = grid.algo->num_nodes();
    grid.f = grid.algo->resilience();
  } else {
    if (cli.get_bool("resume")) {
      // Resuming against flag-built specs invites drift (one changed flag ==
      // a different experiment); the checkpoint flow is spec-file-driven.
      std::cerr << "--resume requires --spec=SPEC.json (emit one with `plan --emit`)\n";
      return 2;
    }
    if (const int rc = build_sweep_grid(cli, grid)) return rc;
    if (const int rc = apply_sink_flags(cli, grid.spec)) return rc;
  }
  const sim::ExperimentSpec& spec = grid.spec;
  const bool resume = cli.get_bool("resume");

  // --progress on a --spec run attaches an extra in-process sink instead of
  // mutating the spec (the spec's serialized form must stay stable for
  // checkpoint validation).
  sim::ProgressSink progress;
  sim::SinkList extra;
  if (cli.has("spec") && cli.get_bool("progress")) extra.push_back(&progress);

  const int shards = static_cast<int>(cli.get_int("shards", 1));
  if (shards < 1) {
    std::cerr << "--shards must be >= 1\n";
    return 2;
  }
  const std::string emit = cli.get_string("emit", "");
  // A bare `--emit` parses as the boolean value "true"; writing a file
  // literally named "true" is always a forgotten =FILE.
  if (cli.has("emit") && emit == "true") {
    std::cerr << "--emit requires a file: --emit=FILE\n";
    return 2;
  }
  const int threads = static_cast<int>(cli.get_int("threads", 0));

  // --- Worker mode: run one shard, emit the partial, stay quiet ------------
  if (cli.has("shard")) {
    const int shard = static_cast<int>(cli.get_int("shard", 0));
    if (shard < 0 || shard >= shards) {
      std::cerr << "--shard must be in [0, " << shards << ")\n";
      return 2;
    }
    if (emit.empty()) {
      std::cerr << "worker mode (--shard) requires --emit=FILE\n";
      return 2;
    }
    const auto plan = sim::plan_shards(spec, shards, shard);
    sim::ShardPartial partial;
    sim::ExperimentResult executed;
    if (const int rc = run_shard(spec, plan, threads, resume, extra, partial, executed)) {
      return rc;
    }
    if (const int rc = emit_partial(emit, partial)) return rc;
    std::cout << "shard " << shard << "/" << shards << ": groups [" << plan.group_begin
              << "," << plan.group_end << ") of " << sim::group_count(spec) << ", "
              << executed.cells.size() << " cells run (" << executed.batched_cells
              << " batched), wall " << util::fmt_double(executed.wall_seconds, 2)
              << "s -> " << emit << "\n";
    return 0;
  }

  // --- Single process: the grid in one engine run --------------------------
  if (shards == 1) {
    const auto plan = sim::plan_shards(spec, 1, 0);
    sim::ShardPartial partial;
    sim::ExperimentResult executed;
    if (const int rc = run_shard(spec, plan, threads, resume, extra, partial, executed)) {
      return rc;
    }
    print_grid_header(grid);
    std::cout << "grid: " << spec.adversaries.size() << " adversaries x "
              << std::max<std::size_t>(spec.placements.size(), 1) << " placements x "
              << spec.seeds << " seeds; " << executed.cells.size()
              << " executions run this process (" << executed.batched_cells
              << " on the batched backend)\n\n";
    if (!emit.empty()) {
      if (const int rc = emit_partial(emit, partial)) return rc;
    }
    const int rc = print_partial_table(partial);
    print_profile_table(spec, executed);
    std::cout << "wall: " << util::fmt_double(executed.wall_seconds, 2) << "s\n";
    return rc;
  }

  // --- Orchestrator: fork K local workers and merge their partials ---------
  const auto t0 = sim::profile_now();
  std::vector<std::string> worker_files;
  const bool keep_partials = !emit.empty();
  std::string tmp_base;
  if (!keep_partials) {
    tmp_base = (std::filesystem::temp_directory_path() /
                ("synccount-sweep-" + std::to_string(getpid()) + "-shard"))
                   .string();
  }
  // The workers run concurrently, so --threads (or hardware concurrency) is
  // a *total* budget split across them -- forwarding it verbatim would
  // oversubscribe the machine K-fold.
  const int total_threads =
      threads > 0 ? threads
                  : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int worker_threads = std::max(1, total_threads / shards);
  std::vector<std::vector<std::string>> worker_args;
  for (int i = 0; i < shards; ++i) {
    const std::string file = keep_partials ? emit + ".shard" + std::to_string(i)
                                           : tmp_base + std::to_string(i) + ".jsonl";
    worker_files.push_back(file);
    std::vector<std::string> args = {exe, "sweep"};
    for (const auto& a : raw_args) {
      if (a.rfind("--shards", 0) == 0 || a.rfind("--shard", 0) == 0 ||
          a.rfind("--emit", 0) == 0 || a.rfind("--threads", 0) == 0) {
        continue;  // replaced below (--shards is re-added explicitly)
      }
      args.push_back(a);
    }
    args.push_back("--shards=" + std::to_string(shards));
    args.push_back("--shard=" + std::to_string(i));
    args.push_back("--threads=" + std::to_string(worker_threads));
    args.push_back("--emit=" + file);
    worker_args.push_back(std::move(args));
  }

  print_grid_header(grid);
  std::cout << "grid: " << spec.adversaries.size() << " adversaries x "
            << std::max<std::size_t>(spec.placements.size(), 1) << " placements x "
            << spec.seeds << " seeds = "
            << sim::group_count(spec) * static_cast<std::size_t>(spec.seeds)
            << " executions across " << shards << " worker processes\n";
  const int spawn_rc = run_worker_processes(exe, worker_args);

  std::vector<sim::ShardPartial> parts;
  int read_rc = 0;
  if (spawn_rc == 0) {
    for (const auto& file : worker_files) {
      std::ifstream in(file);
      if (!in.good()) {
        std::cerr << "missing worker partial: " << file << "\n";
        read_rc = 1;
        break;
      }
      parts.push_back(sim::read_partial(in, file));
    }
  }
  if (!keep_partials) {
    for (const auto& file : worker_files) std::remove(file.c_str());
  }
  if (spawn_rc != 0 || read_rc != 0) return 1;

  const auto merged = sim::merge_partials(std::move(parts));
  std::cout << "\n";
  if (!emit.empty()) {
    if (const int rc = emit_partial(emit, merged)) return rc;
  }
  const int rc = print_partial_table(merged);
  std::cout << "wall: "
            << util::fmt_double(std::chrono::duration<double>(
                                    sim::profile_now() - t0)
                                    .count(),
                                2)
            << "s (" << shards << " workers)\n";
  return rc;
}

int cmd_merge(const util::Cli& cli) {
  if (const int rc = reject_unknown(cli, {"emit"}, /*allow_positional=*/true)) return rc;
  if (cli.has("emit") && cli.get_string("emit", "") == "true") {
    std::cerr << "--emit requires a file: --emit=FILE\n";
    return 2;
  }
  const auto& files = cli.positional();
  if (files.empty()) {
    std::cerr << "merge needs at least one partial file\n";
    return 2;
  }
  std::vector<sim::ShardPartial> parts;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in.good()) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    parts.push_back(sim::read_partial(in, file));
  }
  const auto merged = sim::merge_partials(std::move(parts));

  // Rebuild the algorithm from the spec echo for the header line (also
  // validates that this machine can reconstruct the experiment).
  const auto algo = sim::spec_algorithm(sim::experiment_spec_from_json(merged.spec));
  std::cout << "algorithm: " << algo->name() << " (n=" << algo->num_nodes() << ", f="
            << algo->resilience() << ")\n"
            << "grid: " << merged.adversaries.size() << " adversaries x "
            << merged.placement_names.size() << " placements x " << merged.seeds
            << " seeds, merged from " << files.size() << " partial(s)\n\n";
  if (cli.has("emit")) {
    if (const int rc = emit_partial(cli.get_string("emit", ""), merged)) return rc;
  }
  return print_partial_table(merged);
}

counting::Symmetry parse_symmetry(const std::string& s) {
  if (s == "uniform") return counting::Symmetry::kUniform;
  if (s == "cyclic") return counting::Symmetry::kCyclic;
  if (s == "per-node") return counting::Symmetry::kPerNode;
  throw std::invalid_argument("unknown symmetry: " + s);
}

int cmd_synthesize(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"n", "f", "states", "modulus", "symmetry", "max-time", "min-time",
                "incremental", "budget", "dimacs", "save"})) {
    return rc;
  }
  synthesis::SynthesisSpec spec;
  spec.n = static_cast<int>(cli.get_int("n", 4));
  spec.f = static_cast<int>(cli.get_int("f", 1));
  spec.num_states = cli.get_u64("states", 3);
  spec.modulus = cli.get_u64("modulus", 2);
  spec.symmetry = parse_symmetry(cli.get_string("symmetry", "cyclic"));

  if (cli.has("dimacs")) {
    spec.max_time = static_cast<int>(cli.get_int("max-time", 8));
    const synthesis::Encoder enc(spec);
    const std::string path = cli.get_string("dimacs", "out.cnf");
    std::ofstream out(path);
    sat::write_dimacs(enc.cnf(), out);
    std::cout << "wrote " << enc.size().variables << " vars / " << enc.size().clauses
              << " clauses to " << path << "\n";
    return 0;
  }

  synthesis::SynthesisOptions opt;
  opt.min_time = static_cast<int>(cli.get_int("min-time", 1));
  opt.max_time = static_cast<int>(cli.get_int("max-time", 8));
  opt.conflict_budget = cli.get_u64("budget", 100000);
  const auto out = cli.get_bool("incremental") ? synthesize_incremental(spec, opt)
                                               : synthesize(spec, opt);
  if (!out.found) {
    std::cout << (out.budget_exhausted ? "budget exhausted" : "UNSAT (optimality proof)")
              << " after " << out.total_conflicts << " conflicts\n";
    return 1;
  }
  std::cout << "found: certified worst-case stabilisation " << out.exact_time
            << " rounds (admissible bound " << out.time_bound_used << ")\n";
  if (cli.has("save")) {
    const std::string path = cli.get_string("save", "counter.table");
    std::ofstream file(path);
    counting::write_table(out.table, file);
    std::cout << "saved to " << path << "\n";
  }
  std::cout << "g = {";
  for (std::size_t i = 0; i < out.table.g.size(); ++i) {
    std::cout << static_cast<int>(out.table.g[i]) << (i + 1 < out.table.g.size() ? "," : "");
  }
  std::cout << "}\nh = {";
  for (std::size_t i = 0; i < out.table.h.size(); ++i) {
    std::cout << static_cast<int>(out.table.h[i]) << (i + 1 < out.table.h.size() ? "," : "");
  }
  std::cout << "}\n";
  return 0;
}

// The parallel synthesis engine (synthesis/portfolio.hpp): a K-config
// portfolio racing 2^d cubes over a thread pool, with the empirical batch
// prefilter ahead of the exact verifier. The printed table is bit-identical
// for any --jobs value -- determinism is part of the engine's contract.
int cmd_synth(const util::Cli& cli) {
  if (const int rc = reject_unknown(
          cli, {"n", "f", "states", "modulus", "symmetry", "min-time", "max-time",
                "portfolio", "cube-depth", "jobs", "budget", "no-prefilter", "stats",
                "save", "emit-cnf"})) {
    return rc;
  }
  synthesis::SynthesisSpec spec;
  spec.n = static_cast<int>(cli.get_int("n", 4));
  spec.f = static_cast<int>(cli.get_int("f", 1));
  spec.num_states = cli.get_u64("states", 3);
  spec.modulus = cli.get_u64("modulus", 2);
  spec.symmetry = parse_symmetry(cli.get_string("symmetry", "cyclic"));

  synthesis::ParallelOptions opt;
  opt.base.min_time = static_cast<int>(cli.get_int("min-time", 1));
  opt.base.max_time = static_cast<int>(cli.get_int("max-time", 8));
  opt.base.conflict_budget = cli.get_u64("budget", 100000);
  opt.portfolio = static_cast<int>(cli.get_int("portfolio", 4));
  opt.cube_depth = static_cast<int>(cli.get_int("cube-depth", 3));
  opt.threads = static_cast<int>(cli.get_int("jobs", 0));
  opt.prefilter = !cli.get_bool("no-prefilter", false);

  if (cli.has("emit-cnf")) {
    // Dump the encoding at the sweep's max_time bound: the emitted CNF is
    // the exact instance the engine's R = max_time attempt solves (lower R
    // values only add the -rank_exceeds(R) assumption).
    spec.max_time = opt.base.max_time;
    const synthesis::Encoder enc(spec);
    const std::string path = cli.get_string("emit-cnf", "out.cnf");
    std::ofstream out(path);
    SC_CHECK(out.good(), "cannot write " + path);
    sat::write_dimacs(enc.cnf(), out);
    std::cout << "wrote " << enc.size().variables << " vars / " << enc.size().clauses
              << " clauses to " << path << "\n";
    return 0;
  }

  synthesis::ParallelOutcomeInfo info;
  const auto out = synthesize_portfolio(spec, opt, &info);
  if (cli.get_bool("stats", false)) std::cout << out.stats_string() << "\n";
  std::cout << "cubes: " << info.cubes_sat << " sat, " << info.cubes_unsat
            << " unsat, " << info.cubes_unknown << " unknown, "
            << info.cubes_cancelled << " cancelled; prefilter "
            << info.prefilter_rejections << "/" << info.prefilter_runs
            << " rejected\n";
  if (!out.found) {
    std::cout << (out.budget_exhausted ? "budget exhausted" : "UNSAT (optimality proof)")
              << " after " << out.total_conflicts << " conflicts\n";
    return 1;
  }
  std::cout << "found: certified worst-case stabilisation " << out.exact_time
            << " rounds (admissible bound " << out.time_bound_used << ", cube "
            << info.winning_cube << ", config " << info.winning_config << ")\n";
  if (cli.has("save")) {
    const std::string path = cli.get_string("save", "counter.table");
    std::ofstream file(path);
    counting::write_table(out.table, file);
    std::cout << "saved to " << path << "\n";
  }
  std::cout << "g = {";
  for (std::size_t i = 0; i < out.table.g.size(); ++i) {
    std::cout << static_cast<int>(out.table.g[i]) << (i + 1 < out.table.g.size() ? "," : "");
  }
  std::cout << "}\nh = {";
  for (std::size_t i = 0; i < out.table.h.size(); ++i) {
    std::cout << static_cast<int>(out.table.h[i]) << (i + 1 < out.table.h.size() ? "," : "");
  }
  std::cout << "}\n";
  return 0;
}

int cmd_verify(const util::Cli& cli) {
  if (const int rc = reject_unknown(cli, {"load"})) return rc;
  std::vector<counting::TransitionTable> tables;
  if (cli.has("load")) {
    std::ifstream file(cli.get_string("load", ""));
    SC_CHECK(file.good(), "cannot open table file");
    tables.push_back(counting::read_table(file));
  } else {
    tables = {synthesis::known_table_4_1_3states(), synthesis::known_table_4_1_4states()};
  }
  for (const auto& table : tables) {
    const counting::TableAlgorithm algo(table);
    const auto vr = synthesis::verify(algo);
    std::cout << algo.name() << ": " << (vr.ok ? "VERIFIED" : ("FAILED: " + vr.failure))
              << ", exact worst-case T = " << vr.worst_case_time << " ("
              << vr.configurations << " configurations, " << vr.transitions
              << " transitions)\n";
    if (!vr.ok) return 1;
  }
  return 0;
}

int cmd_consensus(const util::Cli& cli) {
  if (const int rc =
          reject_unknown(cli, {"f", "values", "proposals", "seed", "adversary"})) {
    return rc;
  }
  const int f = static_cast<int>(cli.get_int("f", 1));
  const std::uint64_t values = cli.get_u64("values", 8);
  const int tau = 3 * (f + 2);
  const auto counter =
      boosting::build_plan(boosting::plan_practical(f, static_cast<std::uint64_t>(tau)));
  const int n = counter->num_nodes();

  std::vector<std::uint64_t> proposals(static_cast<std::size_t>(n), 0);
  {
    std::istringstream ss(cli.get_string("proposals", ""));
    std::string tok;
    std::size_t i = 0;
    while (std::getline(ss, tok, ',') && i < proposals.size()) {
      proposals[i++] = std::strtoull(tok.c_str(), nullptr, 10) % values;
    }
  }
  const auto svc = std::make_shared<apps::RepeatedConsensus>(counter, f, values, proposals);

  sim::RunConfig cfg;
  cfg.algo = svc;
  cfg.faulty = sim::faults_spread(n, f);
  cfg.max_rounds = *svc->stabilisation_bound() + 3 * static_cast<std::uint64_t>(tau);
  cfg.seed = cli.get_u64("seed", 1);
  cfg.record_outputs = true;
  auto adversary = sim::make_adversary(cli.get_string("adversary", "split"));
  const auto res = sim::run_execution(cfg, *adversary, 1);

  std::cout << "service: " << svc->name() << " on " << n << " nodes, " << f
            << " Byzantine\nproposals:";
  for (auto p : proposals) std::cout << ' ' << p;
  const auto& last = res.outputs.back();
  std::cout << "\nfinal decisions:";
  for (auto d : last) std::cout << ' ' << d;
  const bool agreed = std::all_of(last.begin(), last.end(),
                                  [&](std::uint64_t v) { return v == last[0]; });
  std::cout << "\nagreement: " << (agreed ? "yes" : "NO") << "\n";
  return agreed ? 0 : 1;
}

// Path of the running binary, for re-exec'ing worker processes.
std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      usage(std::cerr);
      return 2;
    }
    const std::string cmd = argv[1];
    const util::Cli cli(argc - 1, argv + 1);
    if (cmd == "plan") return cmd_plan(cli);
    if (cmd == "run") return cmd_run(cli);
    if (cmd == "sweep") {
      return cmd_sweep(cli, self_exe(argv[0]),
                       std::vector<std::string>(argv + 2, argv + argc));
    }
    if (cmd == "merge") return cmd_merge(cli);
    if (cmd == "synthesize") return cmd_synthesize(cli);
    if (cmd == "synth") return cmd_synth(cli);
    if (cmd == "verify") return cmd_verify(cli);
    if (cmd == "consensus") return cmd_consensus(cli);
    std::cerr << "unknown command: " << cmd << "\n";
    usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
