#!/usr/bin/env python3
"""synccount-lint: determinism & crash-safety static analysis for synccount.

Every guarantee this repo sells -- bit-identical results across backends,
thread counts, and local-vs-distributed execution, and crash-safe CRC-framed
IO -- is otherwise enforced only dynamically, by differential and chaos tests
that cannot see a violation until a seed happens to hit it.  This tool checks
the contracts statically, once, for all inputs, at token level:

  D1  nondet         no nondeterminism sources outside an allowlist:
                     std::random_device, rand()/srand(), time(), getenv()
                     anywhere; *_clock::now() outside src/sim/profile.hpp,
                     src/util/backoff* and bench/ timing; std::hash in wire
                     paths (its result is implementation-defined and must
                     never reach wire bytes).
  D2  unordered-iter no std::unordered_map / std::unordered_set in
                     serialization, fold, or sink paths -- iteration order
                     is unspecified and leaks straight into wire bytes.
  D3  raw-io         raw file writes (std::ofstream, fopen, ::open with
                     O_CREAT, bare ::write) in src/serve/ and sink/trace
                     paths must route through atomic_write_file /
                     AtomicAppender (the only commit-disciplined writers).
  D4  global-state   no non-const mutable globals / non-atomic statics in
                     src/ (thread_local, std::atomic, std::mutex,
                     std::once_flag and const/constexpr are fine).
  D5  cast           reinterpret_cast only at allowlisted, comment-justified
                     sites.

Suppressions are explicit and auditable:

    // synccount-lint: allow(<rule>) -- <reason>

on the offending line or in the comment block directly above it (the reason
may wrap over several comment lines).  A suppression without a reason, naming
an unknown rule, or suppressing nothing is itself a finding -- the audit
trail stays honest.

Fixture files (and only fixture files) may override the path used for rule
scoping with a first-line directive, so path-scoped rules are testable from
tests/lint_fixtures/:

    // synccount-lint: path(src/serve/fixture.cpp)

Usage:
    synccount_lint.py --compdb BUILD_DIR [--root DIR] [--fix-list OUT.json]
    synccount_lint.py --files FILE... [--root DIR] [--fix-list OUT.json]

Exit status: 0 clean, 2 findings, 1 usage or IO error.  Diagnostics are
`file:line: rule: message`, one per line, on stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --- Source model ------------------------------------------------------------


@dataclass
class Suppression:
    line: int  # 1-based line the comment sits on
    rule: str
    reason: str
    used: bool = False


@dataclass
class SourceFile:
    """One analyzed file: comment/string-stripped code plus its suppressions."""

    real_path: str  # path on disk (repo-relative)
    scope_path: str  # path used for rule scoping (overridden by path() directive)
    code_lines: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    directive_findings: list[tuple[int, str]] = field(default_factory=list)


SUPPRESS_RE = re.compile(
    r"//\s*synccount-lint:\s*allow\(([a-zA-Z-]*)\)\s*(?:--\s*(.*?))?\s*$"
)
PATH_DIRECTIVE_RE = re.compile(r"//\s*synccount-lint:\s*path\(([^)]+)\)\s*$")
# Any other "synccount-lint:" comment is a typo'd directive -- flag it rather
# than silently ignoring what the author believed was a suppression.
ANY_DIRECTIVE_RE = re.compile(r"//\s*synccount-lint:")


def strip_code(text: str) -> tuple[list[str], list[tuple[int, str]]]:
    """Blank out comments and string/char literals, preserving line structure.

    Returns (code_lines, comment_lines): the code view with literals and
    comments replaced by spaces, and the raw text of every // comment keyed
    by line number (for suppression parsing).  Handles //, /* */, "...",
    '...' and raw strings R"delim(...)delim".
    """
    code: list[str] = []
    comments: list[tuple[int, str]] = []
    i, n = 0, len(text)
    cur: list[str] = []
    comment_cur: list[str] = []
    line_no = 1
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""

    def end_line() -> None:
        nonlocal cur, comment_cur, line_no
        code.append("".join(cur))
        if comment_cur:
            comments.append((line_no, "".join(comment_cur)))
        cur = []
        comment_cur = []
        line_no += 1

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line_comment":
                state = "code"
            end_line()
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_cur.append("//")
                cur.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                cur.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"' and not (cur and (cur[-1].isalnum() or cur[-1] == "_")):
                m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
                if m:
                    raw_terminator = ")" + m.group(1) + '"'
                    state = "raw"
                    cur.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                cur.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                cur.append(" ")
                i += 1
                continue
            cur.append(c)
            i += 1
        elif state == "line_comment":
            comment_cur.append(c)
            cur.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                cur.append("  ")
                i += 2
            else:
                cur.append(" ")
                i += 1
        elif state == "string":
            if c == "\\":
                cur.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                cur.append(" ")
                i += 1
            else:
                cur.append(" ")
                i += 1
        elif state == "char":
            if c == "\\":
                cur.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                cur.append(" ")
                i += 1
            else:
                cur.append(" ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_terminator, i):
                state = "code"
                cur.append(" " * len(raw_terminator))
                i += len(raw_terminator)
            else:
                cur.append(" ")
                i += 1
    if cur or comment_cur:
        end_line()
    return code, comments


def load_source(real_path: str, root: str) -> SourceFile:
    with open(os.path.join(root, real_path), encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comments = strip_code(text)
    src = SourceFile(real_path=real_path, scope_path=real_path, code_lines=code_lines)
    for line_no, comment in comments:
        m = SUPPRESS_RE.search(comment)
        if m:
            rule, reason = m.group(1), (m.group(2) or "").strip()
            if rule not in RULE_IDS:
                src.directive_findings.append(
                    (line_no, f"allow({rule!r}) names no known rule "
                              f"(known: {', '.join(sorted(RULE_IDS))})"))
            elif not reason:
                src.directive_findings.append(
                    (line_no, f"allow({rule}) is missing its '-- <reason>' "
                              "justification"))
            else:
                src.suppressions.append(Suppression(line_no, rule, reason))
            continue
        pm = PATH_DIRECTIVE_RE.search(comment)
        if pm:
            if line_no == 1 and "lint_fixtures" in real_path.replace(os.sep, "/"):
                src.scope_path = pm.group(1).strip()
            else:
                src.directive_findings.append(
                    (line_no, "path(...) directive is only valid on line 1 of "
                              "tests/lint_fixtures/ files"))
            continue
        if ANY_DIRECTIVE_RE.search(comment):
            src.directive_findings.append(
                (line_no, "malformed synccount-lint directive (expected "
                          "'allow(<rule>) -- <reason>')"))
    return src


# --- Rules -------------------------------------------------------------------

# File-set predicates, on /-separated repo-relative paths.


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def in_wire_paths(path: str) -> bool:
    """Files whose bytes (or byte order) reach the wire / durable files."""
    p = _norm(path)
    return (
        p.startswith("src/serve/")
        or p.startswith("src/sim/experiment_io")
        or p.startswith("src/sim/sink")
        or p.startswith("src/sim/trace_format")
        or p.startswith("src/util/json")
    )


def in_clock_allowlist(path: str) -> bool:
    p = _norm(path)
    return (
        p == "src/sim/profile.hpp"  # profiling counters, never in wire bytes
        or p.startswith("src/util/backoff")  # retry pacing is wall-clock by design
        or p.startswith("bench/")  # bench timing
    )


def in_getenv_allowlist(path: str) -> bool:
    p = _norm(path)
    return p.startswith("src/util/cli")  # the one sanctioned flag/env surface


def in_src(path: str) -> bool:
    return _norm(path).startswith("src/")


@dataclass
class Rule:
    rule_id: str
    pattern: re.Pattern
    applies: object  # path predicate
    message: str


# D1 -- nondeterminism sources.  Member accessors named rand() (the repo's
# deterministic per-node Rng handle) are excluded by the lookbehind: calls
# through '.', '->' or a qualifier do not match; bare and std:: forms do.
RULES: list[Rule] = [
    Rule("nondet", re.compile(r"\brandom_device\b"), lambda p: True,
         "std::random_device is a nondeterminism source; derive seeds from "
         "util::hash_combine over the experiment spec instead"),
    Rule("nondet", re.compile(r"(?:std::|(?<![\w.:>]))srand\s*\("), lambda p: True,
         "srand() seeds the process-global libc PRNG; use util::Rng with an "
         "explicit seed"),
    Rule("nondet", re.compile(r"(?:std::|(?<![\w.:>&]))rand\s*\(\s*\)"), lambda p: True,
         "rand() is process-global, platform-varying state; use util::Rng"),
    Rule("nondet", re.compile(r"(?:std::|(?<![\w.:>]))time\s*\("), lambda p: True,
         "time() reads the wall clock; results must not depend on when they "
         "were computed"),
    Rule("nondet", re.compile(r"(?:_clock|\bClock)\s*::\s*now\s*\("),
         lambda p: not in_clock_allowlist(p),
         "clock reads are allowed only in src/sim/profile.hpp, "
         "src/util/backoff* and bench/ timing; route through those or justify"),
    Rule("nondet", re.compile(r"(?:std::|(?<![\w.:>]))getenv\s*\("),
         lambda p: not in_getenv_allowlist(p),
         "getenv() outside src/util/cli* makes results depend on ambient "
         "process state; plumb configuration explicitly or justify"),
    Rule("nondet", re.compile(r"\bstd::hash\b"), in_wire_paths,
         "std::hash is implementation-defined and unstable across platforms; "
         "its value must never reach wire bytes"),
    # D2 -- unordered containers in wire paths.  Banned outright (not just
    # iteration): at token level any use risks an iteration-order leak, and
    # ordered std::map/std::set are drop-in deterministic replacements.
    Rule("unordered-iter",
         re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
         in_wire_paths,
         "unordered container in a serialization/fold/sink path: iteration "
         "order is unspecified and leaks into wire bytes; use std::map / "
         "std::set or an explicit ordering"),
    # D3 -- raw writes in crash-safety-critical paths.
    Rule("raw-io", re.compile(r"\bstd::ofstream\b"), in_wire_paths,
         "raw std::ofstream in a durable-IO path can publish torn files; "
         "route through atomic_write_file / AtomicAppender"),
    Rule("raw-io", re.compile(r"(?:std::|(?<![\w.:>]))f(?:open|write)\s*\("),
         in_wire_paths,
         "raw C stdio write in a durable-IO path; route through "
         "atomic_write_file / AtomicAppender"),
    Rule("raw-io", re.compile(r"::\s*(?:open|creat|write)\s*\("), in_wire_paths,
         "bare POSIX file IO in a durable-IO path; only the atomic_write_file "
         "/ AtomicAppender implementations may touch fds directly"),
    # D5 -- reinterpret_cast anywhere.
    Rule("cast", re.compile(r"\breinterpret_cast\b"), lambda p: True,
         "reinterpret_cast is allowed only at justified sites (POSIX sockaddr "
         "casts, SIMD loads); prefer std::memcpy / std::bit_cast"),
]

# D4 -- mutable static / global state in src/.  Handled by a dedicated
# scanner rather than a single regex: a declaration is flagged when it has
# static storage duration and none of the sanctioned shapes (const,
# constexpr, thread_local, std::atomic, synchronization primitives) and is
# not a static member-function declaration.
GLOBAL_STATE_ID = "global-state"
GLOBAL_STATE_MSG = (
    "mutable static state in src/ breaks the everything-is-a-pure-function "
    "determinism contract; make it const/constexpr, std::atomic, "
    "thread_local, or justify the synchronization discipline"
)

STATIC_DECL_RE = re.compile(r"(?:^|[;{}\s])static\s+(?!assert\b)")
ALLOWED_STATIC_RE = re.compile(
    r"\b(?:const\b|constexpr\b|thread_local\b|std::atomic\b|std::mutex\b|"
    r"std::shared_mutex\b|std::once_flag\b|std::condition_variable\b)"
)
# "static <type> name(" with no '=' first: a member/free function.  Variables
# initialize with '=' or '{' (paren-init of statics is vanishingly rare here
# and would be flagged -- the safe direction).
FUNC_AFTER_STATIC_RE = re.compile(r"^[\w:<>,*&\s~]+?\b[\w~]+\s*\(")

RULE_IDS = {r.rule_id for r in RULES} | {GLOBAL_STATE_ID}


def scan_global_state(src: SourceFile) -> list[tuple[int, str]]:
    """Find mutable static declarations in the code view of a src/ file."""
    findings: list[tuple[int, str]] = []
    for idx, line in enumerate(src.code_lines, start=1):
        m = STATIC_DECL_RE.search(line)
        if not m:
            continue
        # The declaration text: from 'static' to the end of line.  Multi-line
        # declarations are judged by their first line -- the storage class,
        # cv-qualifiers and type all precede the name in this codebase.
        decl = line[line.find("static", m.start()) + len("static"):]
        if ALLOWED_STATIC_RE.search(line):
            continue
        eq = decl.find("=")
        paren_m = FUNC_AFTER_STATIC_RE.match(decl)
        if paren_m and (eq == -1 or decl.find("(") < eq):
            continue  # function declaration/definition
        if re.match(r"\s*$", decl):
            continue  # 'static' split from its declaration; next line judged
        findings.append((idx, GLOBAL_STATE_MSG))
    return findings


# --- Analysis ----------------------------------------------------------------


@dataclass
class Finding:
    file: str
    line: int
    rule: str
    message: str


def analyze_file(src: SourceFile) -> tuple[list[Finding], list[Finding]]:
    """Returns (unsuppressed findings, suppressed findings) for one file."""
    raw: list[tuple[int, str, str]] = []  # (line, rule, message)
    for rule in RULES:
        if not rule.applies(src.scope_path):
            continue
        for idx, line in enumerate(src.code_lines, start=1):
            for _ in rule.pattern.finditer(line):
                raw.append((idx, rule.rule_id, rule.message))
    if in_src(src.scope_path):
        for idx, msg in scan_global_state(src):
            raw.append((idx, GLOBAL_STATE_ID, msg))

    # A suppression covers its own line plus the next line that holds any
    # code, skipping blank and comment-only lines -- so a justification may
    # wrap over several comment lines between allow(...) and the code.
    def covers(sup: Suppression, finding_line: int) -> bool:
        if sup.line == finding_line:
            return True
        if sup.line > finding_line:
            return False
        for between in range(sup.line, finding_line - 1):
            if src.code_lines[between].strip():
                return False  # code intervenes; suppression spent elsewhere
        return True

    active: list[Finding] = []
    suppressed: list[Finding] = []
    for idx, rule_id, message in sorted(raw):
        sup = next(
            (s for s in src.suppressions
             if s.rule == rule_id and covers(s, idx)),
            None,
        )
        if sup:
            sup.used = True
            suppressed.append(Finding(src.real_path, idx, rule_id, message))
        else:
            active.append(Finding(src.real_path, idx, rule_id, message))

    for line_no, msg in src.directive_findings:
        active.append(Finding(src.real_path, line_no, "suppression", msg))
    for sup in src.suppressions:
        if not sup.used:
            active.append(Finding(
                src.real_path, sup.line, "suppression",
                f"allow({sup.rule}) suppresses nothing on its own or the "
                "next line; remove it"))
    active.sort(key=lambda f: f.line)
    return active, suppressed


# --- File collection ---------------------------------------------------------

ANALYZED_DIRS = ("src/", "tools/", "bench/", "tests/")
SOURCE_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")


def is_analyzed_path(rel: str) -> bool:
    p = _norm(rel)
    return (
        p.endswith(SOURCE_EXTS)
        and p.startswith(ANALYZED_DIRS)
        and "/lint_fixtures/" not in p
        and not p.startswith("build")
    )


def collect_from_compdb(compdb_arg: str, root: str) -> list[str]:
    """TUs from compile_commands.json plus all headers under analyzed dirs.

    The compile database names only .cpp TUs; headers never appear in it, so
    they are swept up by walking the same directories the TUs live in.
    """
    path = compdb_arg
    if os.path.isdir(path):
        path = os.path.join(path, "compile_commands.json")
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    files: set[str] = set()
    for entry in entries:
        fpath = entry["file"]
        if not os.path.isabs(fpath):
            fpath = os.path.normpath(os.path.join(entry["directory"], fpath))
        rel = os.path.relpath(fpath, root)
        if rel.startswith(".."):
            continue
        if is_analyzed_path(rel):
            files.add(rel)
    for top in ANALYZED_DIRS:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            for name in filenames:
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                if is_analyzed_path(rel) and rel.endswith((".hpp", ".h", ".hh")):
                    files.add(rel)
    return sorted(files)


# --- Driver ------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="synccount_lint.py",
        description="determinism & crash-safety lint for synccount "
                    "(rules: nondet, unordered-iter, raw-io, global-state, "
                    "cast)")
    parser.add_argument("--compdb", metavar="DIR",
                        help="build dir containing compile_commands.json "
                             "(or a path to the json itself)")
    parser.add_argument("--files", nargs="+", metavar="FILE",
                        help="analyze exactly these files (fixture/test mode)")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="repo root (default: parent of tools/lint/)")
    parser.add_argument("--fix-list", metavar="OUT.json", dest="fix_list",
                        help="also write a machine-readable JSON report")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-finding diagnostics")
    args = parser.parse_args(argv)

    if bool(args.compdb) == bool(args.files):
        parser.error("exactly one of --compdb or --files is required")
    root = os.path.abspath(
        args.root
        or os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

    try:
        if args.compdb:
            rel_files = collect_from_compdb(args.compdb, root)
        else:
            rel_files = []
            for f in args.files:
                rel = os.path.relpath(os.path.abspath(f), root)
                if rel.startswith(".."):
                    print(f"error: {f} is outside the repo root {root}",
                          file=sys.stderr)
                    return 1
                rel_files.append(rel)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"error: cannot load compile database: {e}", file=sys.stderr)
        return 1

    all_active: list[Finding] = []
    all_suppressed: list[Finding] = []
    for rel in rel_files:
        try:
            src = load_source(rel, root)
        except OSError as e:
            print(f"error: cannot read {rel}: {e}", file=sys.stderr)
            return 1
        active, suppressed = analyze_file(src)
        all_active.extend(active)
        all_suppressed.extend(suppressed)

    if not args.quiet:
        for f in all_active:
            print(f"{f.file}:{f.line}: {f.rule}: {f.message}")

    if args.fix_list:
        report = {
            "version": 1,
            "files_analyzed": len(rel_files),
            "findings": [vars(f) for f in all_active],
            "suppressed": [vars(f) for f in all_suppressed],
        }
        try:
            with open(args.fix_list, "w", encoding="utf-8") as out:
                json.dump(report, out, indent=2, sort_keys=False)
                out.write("\n")
        except OSError as e:
            print(f"error: cannot write {args.fix_list}: {e}", file=sys.stderr)
            return 1

    if not args.quiet:
        print(f"synccount-lint: {len(rel_files)} files, "
              f"{len(all_active)} finding(s), "
              f"{len(all_suppressed)} suppressed", file=sys.stderr)
    return 2 if all_active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
