#!/usr/bin/env python3
"""Perf-smoke regression gate for the execution backends.

Compares a fresh `bench_micro --json` run against the committed
BENCH_batch.json baseline and fails (exit 1) if any (instance, adversary)
cell's batched-over-scalar speedup regressed by more than the tolerance
(default: fresh speedup < 0.75x the baseline speedup).

Speedup ratios are compared rather than absolute ns/node-round because CI
machines differ in clock speed but scalar and batched backends scale
together on a given host; a shrinking ratio means the batched kernels
specifically got slower.

Also gates the "aggregation" memory section: the sketch-mode fold of the
synthetic million-cell sweep must peak below --max-rss-ratio (default 0.10)
of the exact-mode fold, net of the probe child's load-time RSS floor. A
baseline that has the section but a fresh run that lacks it fails loudly
(the bench silently losing the probe is itself a regression).

Also gates the "synthesis" section (written by `bench_synthesis --json`):
each parallel-engine mode's speedup over the single-threaded incremental
baseline must stay within the same ratio tolerance of its recorded value.
Speedups are host-relative (both engines run on the same machine in the
same process), so the ratio comparison is robust to CI machine changes.

Usage: check_perf_smoke.py BASELINE.json FRESH.json [--tolerance 0.75]
                           [--max-rss-ratio 0.10]
"""

import argparse
import json
import sys


def fail(message):
    print(f"check_perf_smoke: {message}", file=sys.stderr)
    sys.exit(2)


def need(mapping, key, where):
    """dict lookup with a readable diagnostic instead of a KeyError trace."""
    if not isinstance(mapping, dict) or key not in mapping:
        fail(f"{where} has no \"{key}\" field -- not a bench_micro --json file, "
             f"or produced by an older bench_micro?")
    return mapping[key]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON ({e}) -- truncated bench run?")


def cells(doc, path):
    out = {}
    for i, inst in enumerate(need(doc, "instances", path)):
        where = f"{path} instances[{i}]"
        name = need(inst, "instance", where)
        for j, r in enumerate(need(inst, "results", where)):
            rwhere = f"{where} ({name}) results[{j}]"
            out[(name, need(r, "adversary", rwhere))] = need(r, "speedup", rwhere)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.75,
                    help="minimum fresh/baseline speedup ratio (default 0.75)")
    ap.add_argument("--max-rss-ratio", type=float, default=0.10,
                    help="maximum sketch/exact net peak-RSS ratio for the "
                         "aggregation section (default 0.10)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)
    base = cells(base_doc, args.baseline)
    fresh = cells(fresh_doc, args.fresh)

    failed = False
    for key, base_speedup in sorted(base.items()):
        instance, adversary = key
        if key not in fresh:
            print(f"MISSING  {instance} / {adversary}: cell absent from fresh run")
            failed = True
            continue
        ratio = fresh[key] / base_speedup
        verdict = "ok" if ratio >= args.tolerance else "REGRESSED"
        print(f"{verdict:9s}{instance} / {adversary}: "
              f"speedup {base_speedup:.2f}x -> {fresh[key]:.2f}x "
              f"({ratio:.2f} of baseline)")
        if ratio < args.tolerance:
            failed = True

    for key in sorted(set(fresh) - set(base)):
        print(f"new      {key[0]} / {key[1]}: speedup {fresh[key]:.2f}x (no baseline)")

    # Aggregation memory gate: recorded, not recomputed, so the committed
    # BENCH_batch.json is the auditable record of the sketch's memory win.
    if "aggregation" in base_doc:
        if "aggregation" not in fresh_doc:
            print("MISSING  aggregation: section absent from fresh run "
                  "(bench lost its RSS probe?)")
            failed = True
        else:
            agg = fresh_doc["aggregation"]
            where = f"{args.fresh} aggregation"
            ratio = need(agg, "rss_ratio", where)
            exact_kb = need(agg, "exact_peak_rss_kb", where)
            sketch_kb = need(agg, "sketch_peak_rss_kb", where)
            verdict = "ok" if ratio < args.max_rss_ratio else "REGRESSED"
            print(f"{verdict:9s}aggregation: sketch peak RSS {sketch_kb} KiB vs "
                  f"exact {exact_kb} KiB, net ratio {ratio:.3f} "
                  f"(limit {args.max_rss_ratio})")
            if ratio >= args.max_rss_ratio:
                failed = True
    elif "aggregation" in fresh_doc:
        agg = fresh_doc["aggregation"]
        print(f"new      aggregation: net RSS ratio "
              f"{agg.get('rss_ratio', float('nan')):.3f} (no baseline)")

    # Synthesis engine gate: per-mode speedup over the incremental baseline
    # (same host, same process -> the ratio is the search strategy's win).
    def synth_modes(doc, path):
        out = {}
        section = doc.get("synthesis")
        if section is None:
            return out
        for i, m in enumerate(need(section, "modes", f"{path} synthesis")):
            where = f"{path} synthesis modes[{i}]"
            out[need(m, "mode", where)] = need(m, "speedup", where)
        return out

    base_synth = synth_modes(base_doc, args.baseline)
    fresh_synth = synth_modes(fresh_doc, args.fresh)
    for mode, base_speedup in sorted(base_synth.items()):
        if mode not in fresh_synth:
            print(f"MISSING  synthesis / {mode}: mode absent from fresh run "
                  f"(bench_synthesis --json not run after bench_micro?)")
            failed = True
            continue
        ratio = fresh_synth[mode] / base_speedup
        verdict = "ok" if ratio >= args.tolerance else "REGRESSED"
        print(f"{verdict:9s}synthesis / {mode}: "
              f"speedup {base_speedup:.2f}x -> {fresh_synth[mode]:.2f}x "
              f"({ratio:.2f} of baseline)")
        if ratio < args.tolerance:
            failed = True
    for mode in sorted(set(fresh_synth) - set(base_synth)):
        print(f"new      synthesis / {mode}: speedup {fresh_synth[mode]:.2f}x "
              f"(no baseline)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
