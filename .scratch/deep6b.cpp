#include "synthesis/synthesize.hpp"
#include <cstdio>
using namespace synccount;
void probe(int n, counting::Symmetry sym, int R, std::uint64_t budget) {
  synthesis::SynthesisSpec spec;
  spec.n = n; spec.f = 1; spec.num_states = 2; spec.modulus = 2; spec.symmetry = sym;
  synthesis::SynthesisOptions opt; opt.min_time = R; opt.max_time = R; opt.conflict_budget = budget;
  auto out = synthesize(spec, opt);
  printf("n=%d |X|=2 %s R=%d: found=%d unknown=%d exactT=%llu conflicts=%llu\n",
         n, counting::to_string(sym), R, out.found, out.budget_exhausted,
         (unsigned long long)out.exact_time, (unsigned long long)out.total_conflicts);
  fflush(stdout);
  if (out.found) {
    printf("g = {"); for (auto v : out.table.g) printf("%d,", v);
    printf("};\nh = {"); for (auto v : out.table.h) printf("%d,", v); printf("};\n");
    fflush(stdout);
  }
}
int main() {
  for (int R = 4; R <= 8; ++R) probe(7, counting::Symmetry::kCyclic, R, 2000000);
  for (int R = 5; R <= 7; ++R) probe(6, counting::Symmetry::kPerNode, R, 2000000);
  for (int R = 9; R <= 12; ++R) probe(6, counting::Symmetry::kCyclic, R, 3000000);
  return 0;
}
