#include "sim/runner.hpp"

#include <algorithm>

#include "sim/faults.hpp"
#include "util/check.hpp"

namespace synccount::sim {

std::uint64_t resolve_margin(std::uint64_t margin, std::uint64_t max_rounds,
                             std::uint64_t modulus) noexcept {
  if (margin != 0) return margin;
  return std::min<std::uint64_t>(2 * modulus + 16, std::max<std::uint64_t>(max_rounds / 4, 1));
}

RunResult run_execution(const RunConfig& cfg, Adversary& adversary, std::uint64_t margin) {
  SC_CHECK(cfg.algo != nullptr, "no algorithm given");
  const auto& algo = *cfg.algo;
  const int n = algo.num_nodes();
  const auto nn = static_cast<std::size_t>(n);

  std::vector<bool> faulty = cfg.faulty;
  if (faulty.empty()) faulty.assign(nn, false);
  SC_CHECK(static_cast<int>(faulty.size()) == n, "fault vector size mismatch");
  SC_CHECK(fault_count(faulty) <= algo.resilience(),
           "more faults than the algorithm's resilience");

  const std::vector<counting::NodeId> faulty_ids = fault_ids(faulty);
  std::vector<counting::NodeId> correct_ids;
  for (int i = 0; i < n; ++i) {
    if (!faulty[static_cast<std::size_t>(i)]) correct_ids.push_back(i);
  }
  SC_CHECK(!correct_ids.empty(), "all nodes faulty");

  util::Rng rng(cfg.seed);

  // Arbitrary initial states (the self-stabilisation part of the model).
  std::vector<State> states;
  if (!cfg.initial.empty()) {
    SC_CHECK(cfg.initial.size() == nn, "initial state vector size mismatch");
    states.reserve(nn);
    for (const auto& s : cfg.initial) states.push_back(algo.canonicalize(s));
  } else {
    states.resize(nn);
    for (auto& s : states) s = counting::arbitrary_state(algo, rng);
  }

  margin = resolve_margin(margin, cfg.max_rounds, algo.modulus());

  StabilisationChecker checker(algo.modulus());
  RunResult result;
  result.correct_ids = correct_ids;

  // Scratch buffers reused across every round (the engine runs millions of
  // rounds per experiment; no per-round allocation on the hot path).
  std::vector<State> received(nn);
  std::vector<State> next(nn);
  std::vector<std::uint64_t> outs(correct_ids.size());
  counting::TransitionContext ctx{&rng};

  // Per-sender memo of the last forged bit pattern and its canonical form:
  // adversaries frequently resend an unchanged state (split's two values,
  // targeted-vote's pooled replays), and canonicalize on the recursive
  // constructions decodes the whole state, so skipping the redundant calls
  // is a measurable win. Keyed by raw equality -- canonicalize is a pure
  // function -- so the memo stays valid across receivers and rounds.
  std::vector<State> memo_raw(nn);
  std::vector<State> memo_canonical(nn);
  std::vector<bool> memo_valid(nn, false);
  const auto forge = [&](std::uint64_t round, counting::NodeId s, counting::NodeId receiver) {
    const auto si = static_cast<std::size_t>(s);
    State raw = adversary.message(round, s, receiver, states, algo, rng);
    if (!memo_valid[si] || raw != memo_raw[si]) {
      memo_canonical[si] = algo.canonicalize(raw);
      memo_raw[si] = std::move(raw);
      memo_valid[si] = true;
    }
    received[si] = memo_canonical[si];
  };

  // A receiver-oblivious adversary sends every receiver the same state and
  // draws no randomness in message(), so the per-receiver forge loop can be
  // hoisted to once per faulty sender per round without changing the
  // execution.
  const bool faultless = faulty_ids.empty();
  const bool hoist_forge = !faultless && adversary.receiver_oblivious();

  std::uint64_t total_pulls = 0;
  std::uint64_t pull_samples = 0;  // (correct node, round) transitions executed

  for (std::uint64_t round = 0; round < cfg.max_rounds; ++round) {
    // Record outputs of the round-start states.
    for (std::size_t j = 0; j < correct_ids.size(); ++j) {
      const auto i = correct_ids[j];
      outs[j] = algo.output(i, states[static_cast<std::size_t>(i)]);
    }
    checker.observe(outs);
    if (cfg.record_outputs) result.outputs.push_back(outs);
    if (cfg.record_states) result.states.push_back(states);

    if (cfg.stop_after_stable > 0 && checker.suffix_length() >= cfg.stop_after_stable) {
      break;
    }

    adversary.begin_round(round, states, algo, faulty_ids, rng);

    // Received vector: correct senders' entries are shared; faulty senders'
    // entries are overwritten (per round when hoisted, else per receiver).
    // With no faults the round-start states are delivered verbatim and the
    // copy is skipped entirely.
    if (!faultless) {
      std::copy(states.begin(), states.end(), received.begin());
      if (hoist_forge) {
        for (const auto s : faulty_ids) forge(round, s, correct_ids.front());
      }
    }
    const std::span<const State> inbox = faultless ? std::span<const State>(states)
                                                   : std::span<const State>(received);

    for (const auto i : correct_ids) {
      if (!faultless && !hoist_forge) {
        for (const auto s : faulty_ids) forge(round, s, i);
      }
      ctx.messages_pulled = 0;
      next[static_cast<std::size_t>(i)] = algo.transition(i, inbox, ctx);
      total_pulls += ctx.messages_pulled;
      ++pull_samples;
      result.max_pulls_per_round = std::max(result.max_pulls_per_round, ctx.messages_pulled);
    }
    // Faulty nodes keep a nominal state (only the adversary ever reads it).
    for (const auto s : faulty_ids) next[static_cast<std::size_t>(s)] = states[static_cast<std::size_t>(s)];

    states.swap(next);
    result.rounds = round + 1;
  }

  result.rounds = checker.rounds();
  result.stabilisation_round = checker.suffix_start();
  result.suffix_length = checker.suffix_length();
  result.max_window = checker.max_window();
  result.stabilised = result.suffix_length >= std::min<std::uint64_t>(margin, result.rounds);
  // Mean over all executed (correct node, round) transitions, zero-pull
  // samples included; identically 0 for pure broadcast algorithms.
  if (pull_samples > 0) {
    result.avg_pulls_per_round = static_cast<double>(total_pulls) / static_cast<double>(pull_samples);
  }
  return result;
}

}  // namespace synccount::sim
