#include "sim/runner.hpp"

#include <algorithm>

#include "sim/faults.hpp"
#include "util/check.hpp"

namespace synccount::sim {

RunResult run_execution(const RunConfig& cfg, Adversary& adversary, std::uint64_t margin) {
  SC_CHECK(cfg.algo != nullptr, "no algorithm given");
  const auto& algo = *cfg.algo;
  const int n = algo.num_nodes();
  const auto nn = static_cast<std::size_t>(n);

  std::vector<bool> faulty = cfg.faulty;
  if (faulty.empty()) faulty.assign(nn, false);
  SC_CHECK(static_cast<int>(faulty.size()) == n, "fault vector size mismatch");
  SC_CHECK(fault_count(faulty) <= algo.resilience(),
           "more faults than the algorithm's resilience");

  const std::vector<counting::NodeId> faulty_ids = fault_ids(faulty);
  std::vector<counting::NodeId> correct_ids;
  for (int i = 0; i < n; ++i) {
    if (!faulty[static_cast<std::size_t>(i)]) correct_ids.push_back(i);
  }
  SC_CHECK(!correct_ids.empty(), "all nodes faulty");

  util::Rng rng(cfg.seed);

  // Arbitrary initial states (the self-stabilisation part of the model).
  std::vector<State> states;
  if (!cfg.initial.empty()) {
    SC_CHECK(cfg.initial.size() == nn, "initial state vector size mismatch");
    states.reserve(nn);
    for (const auto& s : cfg.initial) states.push_back(algo.canonicalize(s));
  } else {
    states.resize(nn);
    for (auto& s : states) s = counting::arbitrary_state(algo, rng);
  }

  if (margin == 0) {
    margin = std::min<std::uint64_t>(2 * algo.modulus() + 16, std::max<std::uint64_t>(cfg.max_rounds / 4, 1));
  }

  StabilisationChecker checker(algo.modulus());
  RunResult result;
  result.correct_ids = correct_ids;

  std::vector<State> received(nn);
  std::vector<State> next(nn);
  std::vector<std::uint64_t> outs(correct_ids.size());

  std::uint64_t total_pulls = 0;
  std::uint64_t pull_samples = 0;

  for (std::uint64_t round = 0; round < cfg.max_rounds; ++round) {
    // Record outputs of the round-start states.
    for (std::size_t j = 0; j < correct_ids.size(); ++j) {
      const auto i = correct_ids[j];
      outs[j] = algo.output(i, states[static_cast<std::size_t>(i)]);
    }
    checker.observe(outs);
    if (cfg.record_outputs) result.outputs.push_back(outs);
    if (cfg.record_states) result.states.push_back(states);

    if (cfg.stop_after_stable > 0 && checker.suffix_length() >= cfg.stop_after_stable) {
      break;
    }

    adversary.begin_round(round, states, algo, faulty_ids, rng);

    // Received vector: correct senders' entries are shared; faulty senders'
    // entries are overwritten per receiver below.
    std::copy(states.begin(), states.end(), received.begin());

    for (const auto i : correct_ids) {
      for (const auto s : faulty_ids) {
        received[static_cast<std::size_t>(s)] = algo.canonicalize(
            adversary.message(round, s, i, states, algo, rng));
      }
      counting::TransitionContext ctx{&rng};
      next[static_cast<std::size_t>(i)] = algo.transition(i, received, ctx);
      if (ctx.messages_pulled > 0) {
        total_pulls += ctx.messages_pulled;
        ++pull_samples;
        result.max_pulls_per_round = std::max(result.max_pulls_per_round, ctx.messages_pulled);
      }
    }
    // Faulty nodes keep a nominal state (only the adversary ever reads it).
    for (const auto s : faulty_ids) next[static_cast<std::size_t>(s)] = states[static_cast<std::size_t>(s)];

    states.swap(next);
    result.rounds = round + 1;
  }

  result.rounds = checker.rounds();
  result.stabilisation_round = checker.suffix_start();
  result.suffix_length = checker.suffix_length();
  result.max_window = checker.max_window();
  result.stabilised = result.suffix_length >= std::min<std::uint64_t>(margin, result.rounds);
  if (pull_samples > 0) {
    result.avg_pulls_per_round = static_cast<double>(total_pulls) / static_cast<double>(pull_samples);
  }
  return result;
}

}  // namespace synccount::sim
