// A library of Byzantine strategies used for failure injection in tests and
// for the adversary-ablation bench (experiment E10).
//
//  * SilentAdversary      -- always sends the all-zero state (crash-like).
//  * EchoAdversary        -- follows the protocol faithfully (benign fault;
//                            useful as a sanity baseline).
//  * RandomAdversary      -- fresh uniformly random state per (receiver, round).
//  * SplitAdversary       -- picks two random states per round and sends one to
//                            even receivers, the other to odd receivers
//                            (classic equivocation to split majorities).
//  * MirrorAdversary      -- echoes the state of a rotating *correct* node,
//                            maximising confusion with plausible states.
//  * TargetedVoteAdversary-- crafts states that vote for conflicting leader
//                            blocks / phase-king values per receiver half by
//                            permuting received correct states.
//  * LookaheadAdversary   -- 1-round lookahead: simulates K candidate message
//                            profiles and commits to the one minimising
//                            agreement among correct nodes.
#pragma once

#include <memory>
#include <vector>

#include "sim/adversary.hpp"

namespace synccount::sim {

class SilentAdversary final : public Adversary {
 public:
  State message(std::uint64_t round, NodeId sender, NodeId receiver,
                std::span<const State> true_states, const CountingAlgorithm& algo,
                util::Rng& rng) override;
  bool receiver_oblivious() const noexcept override { return true; }
  bool state_oblivious() const noexcept override { return true; }
  bool begin_round_passive() const noexcept override { return true; }
  bool forgery_static() const noexcept override { return true; }
  bool message_draw_free() const noexcept override { return true; }
  std::string name() const override { return "silent"; }
};

class EchoAdversary final : public Adversary {
 public:
  State message(std::uint64_t round, NodeId sender, NodeId receiver,
                std::span<const State> true_states, const CountingAlgorithm& algo,
                util::Rng& rng) override;
  bool receiver_oblivious() const noexcept override { return true; }
  // Reads only the (faulty) sender's own nominal state, which is fixed.
  bool state_oblivious() const noexcept override { return true; }
  bool begin_round_passive() const noexcept override { return true; }
  bool forgery_static() const noexcept override { return true; }
  bool message_draw_free() const noexcept override { return true; }
  std::string name() const override { return "echo"; }
};

class RandomAdversary final : public Adversary {
 public:
  State message(std::uint64_t round, NodeId sender, NodeId receiver,
                std::span<const State> true_states, const CountingAlgorithm& algo,
                util::Rng& rng) override;
  // Draws the same bit chunks as message() but keeps the raw pattern: the
  // batched consumers reduce it identically to canonicalize, so the per-query
  // canonical decode drops off the hot path.
  void forge_block(std::uint64_t round, std::span<const State> true_states,
                   const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                   std::span<const NodeId> correct_ids, util::Rng& rng,
                   ForgedRound& out) override;
  bool forge_block_idx(std::uint64_t round, std::span<const State> true_states,
                       const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                       std::span<const NodeId> correct_ids, util::Rng& rng,
                       ForgedRound& out) override;
  bool forge_lanes_idx(std::uint64_t round, const CountingAlgorithm& algo,
                       std::span<const NodeId> faulty_ids,
                       std::span<const NodeId> correct_ids, std::span<util::Rng> rngs,
                       std::span<const std::uint64_t> active, std::uint8_t* out_idx,
                       ForgedRound& out) override;
  bool state_oblivious() const noexcept override { return true; }
  bool begin_round_passive() const noexcept override { return true; }
  std::string name() const override { return "random"; }

 private:
  IdxGuard ig_;
};

class SplitAdversary final : public Adversary {
 public:
  void begin_round(std::uint64_t round, std::span<const State> true_states,
                   const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                   util::Rng& rng) override;
  State message(std::uint64_t round, NodeId sender, NodeId receiver,
                std::span<const State> true_states, const CountingAlgorithm& algo,
                util::Rng& rng) override;
  // Two profiles (receiver parity), so the batched backends canonicalise and
  // vote twice per round instead of once per correct receiver.
  void forge_block(std::uint64_t round, std::span<const State> true_states,
                   const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                   std::span<const NodeId> correct_ids, util::Rng& rng,
                   ForgedRound& out) override;
  bool forge_block_idx(std::uint64_t round, std::span<const State> true_states,
                       const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                       std::span<const NodeId> correct_ids, util::Rng& rng,
                       ForgedRound& out) override;
  bool forge_lanes_idx(std::uint64_t round, const CountingAlgorithm& algo,
                       std::span<const NodeId> faulty_ids,
                       std::span<const NodeId> correct_ids, std::span<util::Rng> rngs,
                       std::span<const std::uint64_t> active, std::uint8_t* out_idx,
                       ForgedRound& out) override;
  bool state_oblivious() const noexcept override { return true; }
  bool message_draw_free() const noexcept override { return true; }
  std::string name() const override { return "split"; }

 private:
  State even_;
  State odd_;
  IdxGuard ig_;
};

class MirrorAdversary final : public Adversary {
 public:
  State message(std::uint64_t round, NodeId sender, NodeId receiver,
                std::span<const State> true_states, const CountingAlgorithm& algo,
                util::Rng& rng) override;
  bool begin_round_passive() const noexcept override { return true; }
  bool message_draw_free() const noexcept override { return true; }
  std::string name() const override { return "mirror"; }

 private:
  std::vector<NodeId> correct_;
};

class TargetedVoteAdversary final : public Adversary {
 public:
  void begin_round(std::uint64_t round, std::span<const State> true_states,
                   const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                   util::Rng& rng) override;
  State message(std::uint64_t round, NodeId sender, NodeId receiver,
                std::span<const State> true_states, const CountingAlgorithm& algo,
                util::Rng& rng) override;
  // message()'s random fallback only fires when pool_ is empty, which cannot
  // happen in a run (there is always at least one correct node to harvest).
  bool message_draw_free() const noexcept override { return true; }
  std::string name() const override { return "targeted-vote"; }

 private:
  std::vector<State> pool_;  // plausible states harvested from correct nodes
};

class LookaheadAdversary final : public Adversary {
 public:
  // candidates: number of random message profiles evaluated per round.
  // sample_receivers: how many correct receivers each candidate is scored
  // against. Scoring used to simulate every (candidate, correct receiver)
  // pair, which made this adversary dominate experiment wall time; bounding
  // the score to a fixed receiver sample and seeding the search with the
  // previous round's winning profile keeps the attack quality while making
  // the per-round cost O(candidates * sample) instead of O(candidates * n).
  explicit LookaheadAdversary(int candidates = 4, int sample_receivers = 4);

  void begin_round(std::uint64_t round, std::span<const State> true_states,
                   const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                   util::Rng& rng) override;
  State message(std::uint64_t round, NodeId sender, NodeId receiver,
                std::span<const State> true_states, const CountingAlgorithm& algo,
                util::Rng& rng) override;
  bool batchable() const noexcept override { return false; }
  // message() replays the profile chosen in begin_round(); its random
  // fallback only fires for non-faulty senders, which the runners never ask
  // about.
  bool message_draw_free() const noexcept override { return true; }
  std::string name() const override { return "lookahead"; }

 private:
  int candidates_;
  int sample_receivers_;
  std::vector<NodeId> faulty_;
  std::vector<NodeId> sampled_;  // receiver subset candidates are scored on
  // chosen_[s * n + r] = message of faulty node faulty_[s] to receiver r.
  std::vector<State> chosen_;
  std::vector<State> cached_;  // last round's winner, re-scored as candidate 0
  int n_ = 0;
};

// Factory covering all strategies, keyed by name (for CLI-driven benches).
std::unique_ptr<Adversary> make_adversary(const std::string& name);

// Names accepted by make_adversary.
std::vector<std::string> adversary_names();

}  // namespace synccount::sim
