// Batched execution backends.
//
// run_batch advances W independent executions of the same (algorithm, fault
// placement, adversary class) cell-group in lockstep, one round at a time,
// and dispatches on the algorithm's structure:
//
//  * TableAlgorithm -- the bit-parallel path. States live in a
//    canonical-index representation instead of BitVecs: a structure-of-arrays
//    byte layout in the general case, and for num_states <= 4 a bit-sliced
//    layout that packs one state-bitplane of 64 executions into each
//    uint64_t. Planes are multi-word (1/2/4/8 x uint64_t, i.e. up to
//    512-bit, auto-vectorised), so one enumeration pass over the compiled
//    table advances up to 512 executions; the width is picked once per
//    process from the host ISA (default_batch_words) unless pinned via
//    BatchConfig::words.
//  * BoostedCounter / PullingBoostedCounter towers -- the composed path
//    (sim/composed_runner.hpp). Each boosting level is compiled into field
//    stages (base kernel, per-copy votes, phase-king glue) evaluated on a
//    decomposed per-node field vector, with per-copy vote sharing for
//    receiver-oblivious adversaries.
//
// Forged messages are produced per lane-round through the adversary's bulk
// entry point (Adversary::forge_block): a handful of receiver *profiles*
// plus a lane-invariant receiver-to-profile map, so the kernels build
// equality planes / byte rows once per (profile, sender) instead of once per
// receiver.
//
// Per-execution randomness (initial states, adversary draws) always flows
// through one Rng and one Adversary instance per lane, invoked in exactly
// the scalar runner's call order, so every lane's RunResult is bit-identical
// to run_execution on the same seed -- the engine can mix backends freely
// without changing any aggregate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "counting/table_algorithm.hpp"
#include "sim/adversary.hpp"
#include "sim/runner.hpp"

namespace synccount::sim {

// Which transition kernel the TableAlgorithm path of run_batch uses. kAuto
// picks kBitSliced whenever the table allows it (num_states <= 4) and kSoA
// otherwise. Composed algorithms have a single kernel and accept only kAuto;
// run_batch / run_composed_batch throw std::invalid_argument on kSoA or
// kBitSliced rather than silently ignoring the request.
enum class BatchKernel { kAuto, kSoA, kBitSliced };

// Plane words per batch block on the TableAlgorithm path: the word count the
// process-wide auto width (BatchConfig::words == 0) resolves to. Picked once
// per process from the host ISA -- 8 (512-bit planes) with AVX-512F, 4
// (256-bit) with AVX2, else 2 -- and overridable for experiments via the
// SYNCCOUNT_BATCH_WORDS environment variable (1, 2, 4 or 8). The width never
// changes results, only how many executions one table pass advances.
int default_batch_words() noexcept;

struct ComposedCompiledTable;

struct BatchConfig {
  // A TableAlgorithm or a supported composed counter (see batch_supported).
  counting::AlgorithmPtr algo;

  // Optional: the pre-compiled hierarchy of `algo` (must have been produced
  // by ComposedCompiledTable::compile(algo)). The engine compiles once per
  // experiment and shares it across all chunk tasks; when absent, run_batch
  // compiles on demand.
  std::shared_ptr<const ComposedCompiledTable> composed;
  std::vector<bool> faulty;          // size n; empty means no faults
  std::uint64_t max_rounds = 1000;
  std::uint64_t margin = 0;          // 0 = resolve_margin default
  std::uint64_t stop_after_stable = 0;
  bool record_outputs = false;
  bool record_states = false;
  std::vector<State> initial;        // non-empty: fixed initial states

  // Builds the adversary for one lane; called once per lane in lane order
  // (mirroring the scalar engine, which builds one adversary per cell).
  std::function<std::unique_ptr<Adversary>()> adversary;

  std::vector<std::uint64_t> seeds;  // one execution lane per seed
  BatchKernel kernel = BatchKernel::kAuto;

  // Plane words per block on the TableAlgorithm path: 0 = auto
  // (default_batch_words), else 1, 2, 4 or 8. Tail blocks shrink to the
  // smallest width covering the remaining seeds. The composed path ignores
  // this (its blocks are single-word); any other value throws.
  int words = 0;
};

// True iff run_batch supports `algo`: a TableAlgorithm, or a
// BoostedCounter / PullingBoostedCounter tower over a trivial or table base.
// A convenience probe for external callers; the engine evaluates the same
// predicate inline (engine.cpp) so it can keep the compiled hierarchy it
// shares across chunk tasks instead of compiling twice.
bool batch_supported(const counting::AlgorithmPtr& algo);

// Runs seeds.size() executions (internally in blocks of up to 64 * words
// lanes) and returns their RunResults in seed order; result[i] is
// bit-identical to run_execution with seed seeds[i] and the same margin.
std::vector<RunResult> run_batch(const BatchConfig& cfg);

}  // namespace synccount::sim
