#include "sim/adversary.hpp"

namespace synccount::sim {

void Adversary::begin_round(std::uint64_t /*round*/, std::span<const State> /*true_states*/,
                            const CountingAlgorithm& /*algo*/,
                            std::span<const NodeId> /*faulty_ids*/, util::Rng& /*rng*/) {}

}  // namespace synccount::sim
