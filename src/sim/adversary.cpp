#include "sim/adversary.hpp"

namespace synccount::sim {

void Adversary::begin_round(std::uint64_t /*round*/, std::span<const State> /*true_states*/,
                            const CountingAlgorithm& /*algo*/,
                            std::span<const NodeId> /*faulty_ids*/, util::Rng& /*rng*/) {}

void Adversary::forge_block(std::uint64_t round, std::span<const State> true_states,
                            const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                            std::span<const NodeId> correct_ids, util::Rng& rng,
                            ForgedRound& out) {
  begin_round(round, true_states, algo, faulty_ids, rng);
  const std::size_t nf = faulty_ids.size();
  if (receiver_oblivious()) {
    // One profile, queried once per sender against the first correct
    // receiver -- the scalar runner's hoisted forge loop.
    out.num_profiles = 1;
    out.states.resize(nf);
    out.profile_of.clear();
    for (std::size_t k = 0; k < nf; ++k) {
      out.states[k] = message(round, faulty_ids[k], correct_ids.front(), true_states, algo, rng);
    }
    return;
  }
  // One profile per correct receiver, queried in the scalar runner's nested
  // (receiver, sender) order.
  out.num_profiles = static_cast<int>(correct_ids.size());
  out.states.resize(correct_ids.size() * nf);
  out.profile_of.assign(true_states.size(), 0);
  for (std::size_t j = 0; j < correct_ids.size(); ++j) {
    out.profile_of[static_cast<std::size_t>(correct_ids[j])] = static_cast<std::uint16_t>(j);
    for (std::size_t k = 0; k < nf; ++k) {
      out.states[j * nf + k] =
          message(round, faulty_ids[k], correct_ids[j], true_states, algo, rng);
    }
  }
}

bool Adversary::idx_guard(IdxGuard& g, const CountingAlgorithm& algo) {
  if (g.algo != &algo) {
    g.algo = &algo;
    const auto ns = algo.state_count();
    const int bits = algo.state_bits();
    g.ok = ns && *ns >= 1 && *ns <= 256 && bits <= 64;
    g.ns = g.ok ? static_cast<std::uint32_t>(*ns) : 0;
    g.bits = bits;
    g.mask = bits == 0 ? 0 : (~std::uint64_t{0} >> (64 - bits));
  }
  return g.ok;
}

bool Adversary::forge_block_idx(std::uint64_t /*round*/, std::span<const State> /*true_states*/,
                                const CountingAlgorithm& /*algo*/,
                                std::span<const NodeId> /*faulty_ids*/,
                                std::span<const NodeId> /*correct_ids*/, util::Rng& /*rng*/,
                                ForgedRound& /*out*/) {
  return false;
}

bool Adversary::forge_lanes_idx(std::uint64_t /*round*/, const CountingAlgorithm& /*algo*/,
                                std::span<const NodeId> /*faulty_ids*/,
                                std::span<const NodeId> /*correct_ids*/,
                                std::span<util::Rng> /*rngs*/,
                                std::span<const std::uint64_t> /*active*/,
                                std::uint8_t* /*out_idx*/, ForgedRound& /*out*/) {
  return false;
}

}  // namespace synccount::sim
