// Batched, multi-threaded experiment engine.
//
// Every empirical claim in the paper is a statistic over many executions --
// seeds x fault placements x adversaries. The engine is the one place that
// owns that loop: an ExperimentSpec describes the grid, Engine::run fans the
// cells out over a work-stealing thread pool, and the per-cell RunResults are
// folded into AggregateResults in a fixed cell order, so the aggregate is
// bit-identical for any thread count.
//
// Layering: run_execution (runner.hpp) stays the single-run kernel; the
// engine composes it. Benches, tests and the CLI sit on the engine instead
// of hand-rolling seed loops.
//
// Execution backends: cells sharing (adversary, placement) form a group. A
// group whose algorithm is shared and batch-supported -- a TableAlgorithm
// (bit-parallel path) or a BoostedCounter / PullingBoostedCounter tower
// (composed path, sim/composed_runner.hpp) -- and whose adversary is
// batchable runs through run_batch in lockstep chunks of up to 64 seeds;
// every other cell (unknown compositions, per-cell factories, search
// adversaries like lookahead) stays on the scalar runner. All backends
// produce bit-identical RunResults, so mixing them never changes an
// aggregate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "counting/algorithm_spec.hpp"
#include "sim/adversaries.hpp"
#include "sim/profile.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"

namespace synccount::util {
class ThreadPool;
}  // namespace synccount::util

namespace synccount::sim {

// A named fault placement (one axis of the experiment grid).
struct FaultPattern {
  std::string name;
  std::vector<bool> faulty;  // empty = fault-free
};

// Builds the adversary for a cell. The default factory is make_adversary;
// benches with construction-aware attacks (e.g. leader-split) install their
// own and fall back to make_adversary for library names. In-process only:
// specs carrying a custom factory are not serialisable.
using AdversaryFactory = std::function<std::unique_ptr<Adversary>(const std::string& name)>;

// Which execution backends the engine may use.
enum class Backend {
  kAuto,    // batched backend for eligible cell-groups, scalar otherwise
  kScalar,  // force the scalar runner for every cell
};

// Declarative description of one result sink (sim/sink.hpp). Sink configs
// travel inside spec files, so `synccount_cli sweep --spec=FILE` reproduces
// the exact observer setup of an in-process run; make_sinks() instantiates
// them. File-writing sinks of a sharded run (plan.shards > 1) write to
// `path + ".shard<i>"` so concurrent workers never share a file.
struct SinkConfig {
  enum class Kind {
    kTrace,       // stream one line per execution to `path` (jsonl or csv)
    kProgress,    // per-group progress lines on stderr
    kCheckpoint,  // append shard partials to `path` as groups complete
  };
  Kind kind = Kind::kTrace;
  std::string path;              // trace / checkpoint target file
  std::string format = "jsonl";  // trace: "jsonl" | "csv" | "bin" (columnar)
  bool outputs = false;          // trace: embed per-round outputs (jsonl only)
};

// The experiment grid, data-first: a serialized spec is the single source of
// truth for a run, so every field is either plain data or an explicitly
// in-process escape hatch that experiment_io rejects. Exactly one of
// `algorithm`, `variants`, `algo` must be set.
struct ExperimentSpec {
  // The algorithm, declaratively (counting::build runs once per Engine::run).
  std::optional<counting::AlgorithmSpec> algorithm;

  // Per-seed-index algorithm variants: a sweep axis expressed as data (see
  // counting::sweep_u64/sweep_double), e.g. the Corollary 5 per-trial
  // sampling seeds. Size must equal `seeds`; the cells at seed_index s run
  // variants[s] (each variant is built once and shared across groups).
  // Variant cells always run on the scalar backend.
  std::vector<counting::AlgorithmSpec> variants;

  // In-process escape hatch for algorithms outside the describable family
  // (services, randomized baselines). Specs carrying it serialise only if
  // counting::describe(algo) succeeds.
  counting::AlgorithmPtr algo;

  std::vector<std::string> adversaries = {"split"};
  AdversaryFactory adversary_factory;  // in-process only, not serialisable

  // Empty = one unnamed fault-free placement.
  std::vector<FaultPattern> placements;

  int seeds = 3;                       // executions per (adversary, placement)
  std::uint64_t base_seed = 0x9000;    // cell seed = hash_combine(base_seed, cell_index)

  // Non-empty: use these literal seeds (size must be `seeds`), indexed by
  // seed_index, identical for every (adversary, placement). For pinning a
  // specific execution (figure traces, regression repros) where the hashed
  // stream would change it.
  std::vector<std::uint64_t> explicit_seeds;

  // Horizon per cell: max_rounds if non-zero; otherwise the algorithm's
  // stabilisation bound + extra_rounds; otherwise horizon_override
  // (or 20000 when that is 0 too).
  std::uint64_t max_rounds = 0;
  std::uint64_t extra_rounds = 300;
  std::uint64_t horizon_override = 0;

  std::uint64_t margin = 100;          // suffix length for "stabilised"
  std::uint64_t stop_after_stable = 0; // early-exit (see RunConfig)

  std::vector<State> initial;          // non-empty: fixed initial states

  // kScalar disables the batched backend (the aggregates do not change --
  // the backends are bit-identical -- but benches and tests use it to
  // isolate the scalar path).
  Backend backend = Backend::kAuto;

  // How aggregates answer quantile queries (util/stats.hpp). kExact retains
  // every sample -- the default, and what the pre-sketch wire format (v3)
  // carries. kSketch bounds aggregate memory with a deterministic KLL sketch
  // (wire format v4); quantiles become approximate within the sketch's
  // tracked rank-error bound but aggregates remain thread-count- and
  // shard-independent.
  util::StatsMode stats = util::StatsMode::kExact;

  // Declarative result sinks. Engine::run does not instantiate these itself
  // (it delivers to whatever SinkList it is handed); front ends call
  // make_sinks(spec, plan) and pass the result in, so a spec file carries
  // its observer setup to workers.
  std::vector<SinkConfig> sinks;
};

// The shared algorithm a spec describes: `algo` if set, else the built
// `algorithm`, else the variant at seed index 0 (for grid headers and
// horizon probes; the engine builds every variant itself).
counting::AlgorithmPtr spec_algorithm(const ExperimentSpec& spec);

// A contiguous slice of the grid's (adversary, placement) cell-groups: the
// unit a distributed sweep assigns to one worker process. Partitioning on
// whole groups (never splitting a group's seed range) keeps the batched and
// composed backends intact inside a shard, and contiguity makes "fold the
// shard partials in shard order" equal the single-process fold in cell
// order -- which is what lets merged aggregates stay bit-identical.
struct ShardPlan {
  int shards = 1;             // total worker count K
  int shard = 0;              // this worker's index in [0, K)
  std::size_t group_begin = 0;  // first (adversary, placement) group, inclusive
  std::size_t group_end = 0;    // one past the last group

  std::size_t groups() const noexcept { return group_end - group_begin; }
  bool empty() const noexcept { return group_begin == group_end; }
};

// Number of (adversary, placement) cell-groups in the grid.
std::size_t group_count(const ExperimentSpec& spec);

// Balanced contiguous partition: shard i of K receives groups
// [i*G/K-ish ...) with the first G mod K shards one group larger; shards
// beyond the group count come out empty (valid, they just do no work).
ShardPlan plan_shards(const ExperimentSpec& spec, int shards, int shard);

// One cell of the grid = one execution.
struct CellOutcome {
  std::size_t cell_index = 0;    // (adversary * placements + placement) * seeds + seed_index
  std::size_t adversary = 0;     // index into spec.adversaries
  std::size_t placement = 0;     // index into spec.placements (0 if defaulted)
  int seed_index = 0;
  std::uint64_t seed = 0;        // derived cell seed actually used
  RunResult result;
};

// Order-independent fold of RunResults (the engine folds in cell order).
struct AggregateResult {
  AggregateResult() = default;  // exact-mode accumulators
  explicit AggregateResult(util::StatsMode mode)
      : stabilisation(mode), rounds(mode), avg_pulls(mode) {}

  std::uint64_t runs = 0;
  std::uint64_t stabilised = 0;
  util::StreamingStats stabilisation;  // stabilisation round, stabilised runs only
  util::StreamingStats rounds;         // executed rounds, all runs
  util::StreamingStats avg_pulls;      // per-run mean pulls per (node, round)
  std::uint64_t max_pulls = 0;         // max over all runs

  double stabilisation_rate() const noexcept {
    return runs == 0 ? 0.0 : static_cast<double>(stabilised) / static_cast<double>(runs);
  }
  void fold(const RunResult& r);

  // Folds a partial aggregate in, as if other's cells had been fold()ed here
  // directly in order (exact mode: StreamingStats::merge replays samples, so
  // merging shard partials in shard order is bit-identical to one sequential
  // fold; sketch mode: a deterministic left-fold over the same order).
  // Merging into a default-constructed (empty) aggregate adopts other's
  // stats mode.
  void merge(const AggregateResult& other);

  // "mean (max N)" -- the cell format the bench tables print.
  std::string fmt_rounds() const;
};

// Folds shard partials in the given (shard) order into one aggregate. In
// exact mode this is bit-identical to the single-process fold when the
// partials cover the grid in cell order (ShardPlan's contiguous group ranges
// guarantee that): merge replays samples, so association is irrelevant. In
// sketch mode each partial has already collapsed its groups into one moment
// set, so the refold agrees with the single-process total only up to
// floating-point rounding of mean/m2 -- the bit-identical sketch path is the
// per-group left fold (ShardPartial::total, merge_partials), which every
// wire-level consumer uses.
AggregateResult merge_aggregates(std::span<const AggregateResult> partials);

struct ExperimentResult {
  // Ordered by cell_index. For a sharded run this holds only the shard's
  // cells (coordinates and seeds stay global, so a cell computes identically
  // whichever shard runs it).
  std::vector<CellOutcome> cells;
  AggregateResult total;  // fold of `cells` in cell order (a shard partial)
  double wall_seconds = 0.0;
  std::uint64_t batched_cells = 0;  // cells that ran on the batched backend
  util::StatsMode stats = util::StatsMode::kExact;  // spec.stats of the run

  // One entry per (adversary, placement) group of the shard, in group order:
  // which backend ran the group, its node-rounds, and its aggregate task
  // time (sim/profile.hpp). Always on -- the counters are a couple of atomic
  // RMWs per task.
  std::vector<GroupProfile> profiles;

  // Re-fold a slice of the grid, e.g. one (adversary, placement) pair.
  AggregateResult aggregate(std::optional<std::size_t> adversary,
                            std::optional<std::size_t> placement = std::nullopt) const;
};

// The deterministic per-cell seed stream.
std::uint64_t cell_seed(std::uint64_t base_seed, std::size_t cell_index) noexcept;

// Observer over a run's results (defined in sim/sink.hpp). Sinks receive
// cells in global cell order and groups in group order, whatever the thread
// count or backend mix -- groups are delivered as soon as every preceding
// group has finished, so streaming sinks (checkpoints, traces) see a
// deterministic, resumable prefix at every instant.
class Sink;
using SinkList = std::vector<Sink*>;

class Engine {
 public:
  // threads == 0 uses hardware concurrency; threads == 1 runs inline on the
  // calling thread (no pool is created).
  explicit Engine(int threads = 0);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int threads() const noexcept;

  ExperimentResult run(const ExperimentSpec& spec) const;
  ExperimentResult run(const ExperimentSpec& spec, const SinkList& sinks) const;

  // Runs only the shard's (adversary, placement) groups; every cell keeps
  // its global index/seed, so the per-cell results -- and therefore the
  // partial aggregate -- are bit-identical to the same cells of a full run.
  // merge_aggregates over all shards' totals reproduces run(spec).total
  // (bit-for-bit in exact mode; to fp rounding in sketch mode -- see the
  // merge_aggregates comment).
  //
  // Execution traces (outputs/states) are recorded per cell iff some sink
  // wants them, and are dropped from the returned cells after sink delivery
  // unless a sink retains them (RecordSink) -- streaming a huge grid to disk
  // never buffers every trace in memory.
  ExperimentResult run(const ExperimentSpec& spec, const ShardPlan& shard,
                       const SinkList& sinks = {}) const;

 private:
  std::unique_ptr<util::ThreadPool> pool_;  // null for threads == 1
};

}  // namespace synccount::sim
