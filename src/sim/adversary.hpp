// Byzantine adversary interface for the broadcast model (paper, Section 2).
//
// In every round, each faulty node may send a *different* state to every
// receiver ("including to send different messages to every node"). The
// simulator asks the adversary for the message of each (faulty sender,
// receiver) pair; whatever bit pattern it returns is canonicalised into a
// valid state before delivery, which exactly matches the model where
// Byzantine nodes send arbitrary elements of X.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "counting/algorithm.hpp"

namespace synccount::sim {

using counting::CountingAlgorithm;
using counting::NodeId;
using counting::State;

// One round's worth of forged messages, produced in bulk by
// Adversary::forge_block for the batched backends. Rather than one state per
// (sender, receiver) pair, the round is described as `num_profiles` distinct
// receiver views plus a map from receiver to profile: structured equivocators
// send very few distinct values per round (split: two), so the backends
// canonicalise, decompose and vote per *profile* instead of per receiver.
//
// Contract:
//  * states[p * num_faulty + k] is the (possibly raw, uncanonicalised) state
//    profile p receives from faulty sender faulty_ids[k]. Raw patterns are
//    allowed because every consumer reduces them exactly like canonicalize
//    (see the decompose-raw note in composed_runner.cpp).
//  * profile_of[receiver] names the profile each receiver observes; an empty
//    vector means every receiver sees profile 0. Only correct receivers'
//    entries are read.
//  * profile_of must be a pure function of (round, faulty_ids, n) -- never of
//    the rng or the states -- so that all lanes of a batch block share one
//    receiver-to-profile map per round. The batched runners assert this.
struct ForgedRound {
  int num_profiles = 0;
  std::vector<State> states;
  std::vector<std::uint16_t> profile_of;

  // Index fast path (see Adversary::forge_block_idx): canonical state
  // indices, same [p * num_faulty + k] layout as `states`. Exactly one of
  // `states` / `idx` is meaningful per call, depending on the entry point
  // that filled this ForgedRound.
  std::vector<std::uint8_t> idx;
};

class Adversary {
 public:
  virtual ~Adversary() = default;
  Adversary(const Adversary&) = delete;
  Adversary& operator=(const Adversary&) = delete;

  // Called once per round before any message is queried. `true_states` holds
  // the round-start states of all nodes (faulty nodes carry a nominal state
  // that only the adversary observes/uses). Strategies that plan a whole
  // round at once (e.g. lookahead search) do their work here.
  virtual void begin_round(std::uint64_t round, std::span<const State> true_states,
                           const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                           util::Rng& rng);

  // The state that faulty node `sender` sends to `receiver` this round.
  virtual State message(std::uint64_t round, NodeId sender, NodeId receiver,
                        std::span<const State> true_states, const CountingAlgorithm& algo,
                        util::Rng& rng) = 0;

  // Batched entry point: performs this round's *entire* adversary work --
  // begin_round plus every message query -- and writes the forged messages
  // into `out` as receiver profiles (see ForgedRound). The default
  // implementation delegates to begin_round()/message() in exactly the scalar
  // runner's call order (one query per faulty sender when receiver_oblivious,
  // else the nested (correct receiver, faulty sender) loop), so any adversary
  // is batchable-correct out of the box; strategies with structure override
  // it to emit few profiles and skip the per-receiver virtual dispatch.
  // Overrides must draw from `rng` in exactly the order the scalar path
  // would, so lanes stay bit-identical to run_execution.
  virtual void forge_block(std::uint64_t round, std::span<const State> true_states,
                           const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                           std::span<const NodeId> correct_ids, util::Rng& rng,
                           ForgedRound& out);

  // Fast variant of forge_block for algorithms whose states are canonical
  // table indices (num_states <= 256, state_bits <= 64): fills
  // out.num_profiles / out.profile_of / out.idx -- drawing from `rng` in
  // exactly forge_block's order -- and returns true. The default returns
  // false (no index path); callers then fall back to forge_block and reduce
  // the BitVec states themselves. Worth overriding only for draw-heavy
  // strategies (split, random), where skipping the 256-bit state round-trip
  // leaves the rng draws as the dominant per-lane cost.
  virtual bool forge_block_idx(std::uint64_t round, std::span<const State> true_states,
                               const CountingAlgorithm& algo,
                               std::span<const NodeId> faulty_ids,
                               std::span<const NodeId> correct_ids, util::Rng& rng,
                               ForgedRound& out);

  // Lane-batched index forging: one call forges the whole round for every
  // lane whose bit is set in `active` (word w bit b = lane 64w + b; lane
  // count = rngs.size()), amortising the virtual dispatch and keeping the
  // draw loop hot. For each active lane l it must draw from rngs[l] exactly
  // as forge_block would for that lane (lanes are independent rng streams,
  // so cross-lane order is free) and write the canonical indices slot-major:
  // out_idx[(p * |faulty_ids| + k) * rngs.size() + l]. The lane-invariant
  // profile geometry (num_profiles, profile_of) is written to `out`;
  // out.states / out.idx are not touched. Returns false when the strategy or
  // algorithm does not admit the path -- only state-oblivious strategies
  // with per-lane-stateless forging can override this, since it sees neither
  // true_states nor the per-lane adversary instances. A false return must
  // leave every rng untouched (the caller re-forges through the per-lane
  // entry points). The default returns false.
  virtual bool forge_lanes_idx(std::uint64_t round, const CountingAlgorithm& algo,
                               std::span<const NodeId> faulty_ids,
                               std::span<const NodeId> correct_ids,
                               std::span<util::Rng> rngs,
                               std::span<const std::uint64_t> active, std::uint8_t* out_idx,
                               ForgedRound& out);

  // Return true iff message() is independent of `receiver` AND draws nothing
  // from the rng, i.e. within one round every receiver gets the same state
  // from a given sender and querying once has no side effects. The runner
  // then asks each faulty sender once per round and fans the answer out,
  // hoisting the per-receiver forge-and-canonicalize work off the hot path
  // without changing the execution (bit-for-bit, including rng streams).
  virtual bool receiver_oblivious() const noexcept { return false; }

  // Return true iff begin_round()/message() never read the states of
  // *correct* nodes from `true_states` (reading faulty nodes' entries is
  // fine: their nominal states are fixed for the whole execution). The
  // batched backend (sim/batch_runner.hpp) keeps states in an index
  // representation and only materialises the BitVec state vector for
  // adversaries that actually look at it.
  virtual bool state_oblivious() const noexcept { return false; }

  // Return true iff begin_round() is a no-op (the base implementation):
  // neither draws randomness nor mutates adversary state. Skipping a no-op
  // call is unobservable, so the batched backend elides the per-lane virtual
  // dispatch. Strategies that override begin_round() with real work must
  // leave this false.
  virtual bool begin_round_passive() const noexcept { return false; }

  // Return true iff, within one execution, message() returns the same value
  // for a fixed faulty sender across all rounds and receivers and draws no
  // randomness (e.g. silent's constant zero state, echo's replay of the
  // sender's fixed nominal state). The batched backend then forges once per
  // (lane, sender) for the whole execution.
  virtual bool forgery_static() const noexcept { return false; }

  // Return true iff message() never draws from the rng (begin_round may).
  // Forging then contributes nothing to the lane's rng stream, so the
  // composed batch runner may hoist all of a round's forging ahead of the
  // transitions even when the tower itself draws randomness (fresh-sampling
  // pulling levels) without perturbing the draw order.
  virtual bool message_draw_free() const noexcept { return false; }

  // Return false for strategies whose begin_round() runs its own simulation
  // search (e.g. lookahead): they dominate the round cost, so batching the
  // transition buys nothing and the engine keeps them on the scalar runner.
  virtual bool batchable() const noexcept { return true; }

  virtual std::string name() const = 0;

 protected:
  Adversary() = default;

  // Cached forge_block_idx admission check, keyed by the algorithm instance
  // so the per-round fast path costs one pointer compare instead of two
  // virtual queries. Overriders keep one of these per adversary; the batched
  // runners hold the algorithm alive for the whole run, so the key cannot
  // dangle mid-batch.
  struct IdxGuard {
    const CountingAlgorithm* algo = nullptr;
    bool ok = false;           // index path admissible for this algorithm
    std::uint32_t ns = 0;      // |X|
    std::uint64_t mask = 0;    // (1 << state_bits) - 1
    int bits = 0;              // state_bits
  };

  // Refreshes `g` if `algo` changed; returns g.ok. Admissible iff the state
  // space is enumerable with |X| <= 256 and state_bits <= 64 (one raw draw
  // chunk, so the idx path's rng sequence matches raw_random_state's).
  static bool idx_guard(IdxGuard& g, const CountingAlgorithm& algo);

  // Draw-order-compatible uniform canonical index: one next_u64() per state
  // (exactly the chunk sequence of a raw arbitrary-state draw for
  // state_bits <= 64), reduced like the table consumers reduce a raw
  // pattern -- low `bits` bits, then mod |X|. bits = ceil_log2(|X|) keeps
  // 2^bits <= 2|X|, so the mod is a single conditional subtract.
  static std::uint8_t raw_random_idx(const IdxGuard& g, util::Rng& rng) noexcept {
    if (g.bits == 0) return 0;  // |X| = 1: the raw draw has no chunks
    std::uint64_t v = rng.next_u64() & g.mask;
    v -= g.ns & -static_cast<std::uint64_t>(v >= g.ns);  // branchless v %= |X|
    return static_cast<std::uint8_t>(v);
  }
};

}  // namespace synccount::sim
