// Byzantine adversary interface for the broadcast model (paper, Section 2).
//
// In every round, each faulty node may send a *different* state to every
// receiver ("including to send different messages to every node"). The
// simulator asks the adversary for the message of each (faulty sender,
// receiver) pair; whatever bit pattern it returns is canonicalised into a
// valid state before delivery, which exactly matches the model where
// Byzantine nodes send arbitrary elements of X.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "counting/algorithm.hpp"

namespace synccount::sim {

using counting::CountingAlgorithm;
using counting::NodeId;
using counting::State;

class Adversary {
 public:
  virtual ~Adversary() = default;
  Adversary(const Adversary&) = delete;
  Adversary& operator=(const Adversary&) = delete;

  // Called once per round before any message is queried. `true_states` holds
  // the round-start states of all nodes (faulty nodes carry a nominal state
  // that only the adversary observes/uses). Strategies that plan a whole
  // round at once (e.g. lookahead search) do their work here.
  virtual void begin_round(std::uint64_t round, std::span<const State> true_states,
                           const CountingAlgorithm& algo, std::span<const NodeId> faulty_ids,
                           util::Rng& rng);

  // The state that faulty node `sender` sends to `receiver` this round.
  virtual State message(std::uint64_t round, NodeId sender, NodeId receiver,
                        std::span<const State> true_states, const CountingAlgorithm& algo,
                        util::Rng& rng) = 0;

  // Return true iff message() is independent of `receiver` AND draws nothing
  // from the rng, i.e. within one round every receiver gets the same state
  // from a given sender and querying once has no side effects. The runner
  // then asks each faulty sender once per round and fans the answer out,
  // hoisting the per-receiver forge-and-canonicalize work off the hot path
  // without changing the execution (bit-for-bit, including rng streams).
  virtual bool receiver_oblivious() const noexcept { return false; }

  // Return true iff begin_round()/message() never read the states of
  // *correct* nodes from `true_states` (reading faulty nodes' entries is
  // fine: their nominal states are fixed for the whole execution). The
  // batched backend (sim/batch_runner.hpp) keeps states in an index
  // representation and only materialises the BitVec state vector for
  // adversaries that actually look at it.
  virtual bool state_oblivious() const noexcept { return false; }

  // Return true iff begin_round() is a no-op (the base implementation):
  // neither draws randomness nor mutates adversary state. Skipping a no-op
  // call is unobservable, so the batched backend elides the per-lane virtual
  // dispatch. Strategies that override begin_round() with real work must
  // leave this false.
  virtual bool begin_round_passive() const noexcept { return false; }

  // Return true iff, within one execution, message() returns the same value
  // for a fixed faulty sender across all rounds and receivers and draws no
  // randomness (e.g. silent's constant zero state, echo's replay of the
  // sender's fixed nominal state). The batched backend then forges once per
  // (lane, sender) for the whole execution.
  virtual bool forgery_static() const noexcept { return false; }

  // Return false for strategies whose begin_round() runs its own simulation
  // search (e.g. lookahead): they dominate the round cost, so batching the
  // transition buys nothing and the engine keeps them on the scalar runner.
  virtual bool batchable() const noexcept { return true; }

  virtual std::string name() const = 0;

 protected:
  Adversary() = default;
};

}  // namespace synccount::sim
