// Pluggable result sinks for the experiment engine.
//
// The engine's one job is running the grid; everything downstream of a
// finished execution -- aggregation, tracing, progress, checkpoints -- is an
// observer. A Sink receives the run in a deterministic order regardless of
// thread count or execution backend:
//
//   on_start(spec, plan)            once, before any cell runs
//   on_cell(cell)                   every cell, in global cell order
//   on_group(group, aggregate)      after a group's cells, in group order
//   on_done(result)                 once, after the final fold
//
// Cell-groups are delivered as soon as every preceding group has finished,
// not at the end of the run, so a streaming sink's file is a valid prefix of
// the final output at every instant -- which is what makes checkpoints
// resumable and trace files bit-identical across thread counts.
//
// Built-in sinks:
//   MemorySink      in-memory cells + per-group + total aggregates (the
//                   classic "collect everything" behaviour, as an observer)
//   RecordSink      records per-round outputs/states into the returned
//                   ExperimentResult cells (replaces the old
//                   ExperimentSpec::record_outputs/record_states flags)
//   TraceSink       streams one line per execution (JSONL or CSV) to disk;
//                   stabilisation-time distributions of huge grids plot from
//                   the file instead of from buffered RunResults
//   ProgressSink    one line per finished group on a stream (stderr)
//   CheckpointSink  appends shard-partial lines (the experiment_io wire
//                   format) as groups complete and flushes each one, so a
//                   preempted worker resumes from the last finished group;
//                   a completed checkpoint file IS the worker's partial file
//
// make_sinks() instantiates a spec's declarative SinkConfig list, which is
// how `synccount_cli sweep --spec=FILE` reproduces an in-process observer
// setup on a worker.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace_format.hpp"

namespace synccount::sim {

class AtomicAppender;  // sim/experiment_io.hpp

class Sink {
 public:
  virtual ~Sink() = default;

  // What the runner must record per execution for this sink's benefit. The
  // engine ORs these over all sinks and forwards them to RunConfig.
  virtual bool wants_outputs() const { return false; }
  virtual bool wants_states() const { return false; }

  // True to keep recorded outputs/states in the returned ExperimentResult
  // cells; when no sink retains, the engine drops them after delivery.
  virtual bool retain_traces() const { return false; }

  virtual void on_start(const ExperimentSpec& spec, const ShardPlan& plan) {
    (void)spec;
    (void)plan;
  }
  virtual void on_cell(const CellOutcome& cell) { (void)cell; }
  virtual void on_group(std::size_t group, const AggregateResult& aggregate) {
    (void)group;
    (void)aggregate;
  }
  virtual void on_done(const ExperimentResult& result) { (void)result; }
};

// --- Built-in sinks ----------------------------------------------------------

// Collects the run in memory: cells in cell order, one aggregate per group,
// and the total folded in delivery order -- bit-identical to
// ExperimentResult::total by the merge contract.
class MemorySink : public Sink {
 public:
  struct Group {
    std::size_t group = 0;
    AggregateResult aggregate;
  };

  void on_cell(const CellOutcome& cell) override;
  void on_group(std::size_t group, const AggregateResult& aggregate) override;

  const std::vector<CellOutcome>& cells() const noexcept { return cells_; }
  const std::vector<Group>& groups() const noexcept { return groups_; }
  AggregateResult total() const;

 private:
  std::vector<CellOutcome> cells_;
  std::vector<Group> groups_;
};

// Requests output/state recording and retains it in the returned cells; the
// migration path for callers of the retired record_outputs/record_states
// spec flags.
class RecordSink final : public Sink {
 public:
  explicit RecordSink(bool outputs = true, bool states = false)
      : outputs_(outputs), states_(states) {}

  bool wants_outputs() const override { return outputs_; }
  bool wants_states() const override { return states_; }
  bool retain_traces() const override { return true; }

 private:
  bool outputs_;
  bool states_;
};

// Streams one row per execution. JSONL lines carry the full RunResult
// summary (and the per-round outputs when `outputs` is set); CSV carries the
// summary columns only; "bin" writes the columnar binary format of
// sim/trace_format.hpp (one CRC-framed block per group, ~10x smaller than
// JSONL at scale). File contents are bit-identical across thread counts
// and execution backends in every format. Rows are committed at group
// boundaries via AtomicAppender (temp-file + fsync + atomic rename, before
// any checkpoint sink records the group -- make_sinks orders checkpoints
// last), so the published file never holds a torn or partial-group tail: a
// kill costs exactly the uncommitted group. `resume` adopts the existing
// file after the caller truncated it to the checkpointed prefix
// (truncate_to_lines / truncate_to_blocks -- only pre-v3 legacy files can
// still need the torn-tail surgery).
class TraceSink final : public Sink {
 public:
  // `format` is "jsonl", "csv" or "bin"; throws on anything else or when
  // the file cannot be opened (at on_start).
  TraceSink(std::string path, std::string format = "jsonl", bool outputs = false,
            bool resume = false);
  ~TraceSink() override;

  bool wants_outputs() const override { return outputs_; }
  void on_start(const ExperimentSpec& spec, const ShardPlan& plan) override;
  void on_cell(const CellOutcome& cell) override;
  void on_group(std::size_t group, const AggregateResult& aggregate) override;
  void on_done(const ExperimentResult& result) override;

 private:
  enum class Format { kJsonl, kCsv, kBin };

  std::string path_;
  Format format_;
  bool outputs_;
  bool resume_;
  std::unique_ptr<AtomicAppender> out_;
  std::vector<std::string> adversaries_;
  std::vector<std::string> placements_;
  std::vector<TraceRow> pending_;  // bin: current group's rows, until on_group
};

// One line per finished group on `os` (default std::cerr): grid coordinates,
// stabilisation count, and a running cell counter.
class ProgressSink final : public Sink {
 public:
  explicit ProgressSink(std::ostream* os = nullptr);  // null = std::cerr

  void on_start(const ExperimentSpec& spec, const ShardPlan& plan) override;
  void on_group(std::size_t group, const AggregateResult& aggregate) override;

 private:
  std::ostream* os_;
  std::vector<std::string> adversaries_;
  std::vector<std::string> placements_;
  std::size_t done_groups_ = 0;
  std::size_t total_groups_ = 0;
  std::uint64_t done_cells_ = 0;
  std::uint64_t total_cells_ = 0;
};

// Streams the experiment_io shard-partial wire format: header at on_start
// (fresh mode), one atomically committed group line per finished group
// (AtomicAppender: the published checkpoint is always a whole number of
// lines, whenever the worker dies). Because groups are delivered in order,
// the file is always a valid partial prefix; resume mode appends to an
// existing prefix instead of rewriting the header, and the completed file
// is byte-identical to an uninterrupted worker's emit. Requires a
// serialisable spec (throws at on_start otherwise).
class CheckpointSink final : public Sink {
 public:
  CheckpointSink(std::string path, bool resume = false);
  ~CheckpointSink() override;

  void on_start(const ExperimentSpec& spec, const ShardPlan& plan) override;
  void on_group(std::size_t group, const AggregateResult& aggregate) override;

 private:
  std::string path_;
  bool resume_;
  std::unique_ptr<AtomicAppender> out_;
  std::vector<std::string> adversaries_;
  std::vector<std::string> placements_;
};

// --- Declarative construction ------------------------------------------------

// The file a per-shard sink config writes: `cfg.path` for a single-process
// plan, `cfg.path + ".shard<i>"` when plan.shards > 1 (concurrent workers
// must not share a file; the orchestrator merges afterwards).
std::string sink_path(const SinkConfig& cfg, const ShardPlan& plan);

// Instantiates the spec's configured sinks for one shard, checkpoint sinks
// LAST -- so at every group boundary the companion sinks (traces) have
// flushed before the checkpoint line that promises their data is on disk.
// `resume` opens file sinks in append mode (the caller is responsible for
// having validated + truncated each file to a clean prefix, see
// read_checkpoint / truncate_to_lines in sim/experiment_io.hpp). Throws on
// a bad trace format or a file-writing config with an empty path.
std::vector<std::unique_ptr<Sink>> make_sinks(const ExperimentSpec& spec,
                                              const ShardPlan& plan, bool resume = false);

// Convenience: raw pointers of `owned` (appended to `extra`), the shape
// Engine::run takes.
SinkList sink_list(const std::vector<std::unique_ptr<Sink>>& owned,
                   const SinkList& extra = {});

}  // namespace synccount::sim
