// Hierarchical batched execution of composed (boosted / pulling) counters.
//
// The paper's headline construction (Theorem 1) is not a flat transition
// table but a tower: per-block inner counters, derived leader pointers,
// majority votes and the phase-king instruction sets, stacked recursively on
// a trivial or computer-designed base. ComposedCompiledTable::compile walks
// such a tower (BoostedCounter / PullingBoostedCounter levels over a
// TrivialCounter or TableAlgorithm base) once and flattens every node state
// into a field vector -- the base state index plus one (a, d) phase-king
// register pair per level -- together with per-level stage metadata (block
// geometry, moduli, (2m)^i powers, phase-king parameters).
//
// run_composed_batch then advances up to 64 executions per block in round
// lockstep on that representation, in one of two modes:
//
//  * Profiled (the common case): the adversary's whole round is collected
//    up front through Adversary::forge_block as a few receiver profiles
//    plus a lane-invariant receiver-to-profile map, decomposed once per
//    (profile, sender) instead of re-decoding BitVecs at every level of
//    every receiver's transition. Each level's votes are computed once per
//    level copy (receiver-oblivious adversaries) or once per (profile,
//    copy) with memoisation keyed on the forged field tuple the votes
//    read, and the shared phaseking::step / step_sampled glue runs per
//    node -- zero per-round heap allocation. When the base is a
//    num_states <= 4 table, its kernel additionally runs on the flat
//    path's bit-sliced planes: one cross-lane DFS over the compiled base
//    table advances every lane's base field at once.
//
//  * Interleaved (fresh-sampling pulling towers under adversaries whose
//    message() draws randomness): forging stays interleaved with the
//    per-receiver transitions, preserving the scalar draw order exactly.
//
// Per-lane Rng and Adversary instances are invoked in exactly the scalar
// runner's call order in both modes, so every lane's RunResult is
// bit-identical to run_execution on the same seed. The composed path has a
// single kernel: BatchConfig::kernel must be kAuto (kSoA / kBitSliced
// throw std::invalid_argument).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "counting/table_algorithm.hpp"
#include "phaseking/phase_king.hpp"
#include "sim/batch_runner.hpp"

namespace synccount::sim {

// One boosting level of the tower, bottom-up: level 0 sits directly on the
// base. A level with n nodes per copy runs N / n independent copies; copy c
// covers the contiguous global nodes [c*n, (c+1)*n).
struct ComposedLevel {
  enum class Kind { kBoosted, kPulling };
  Kind kind = Kind::kBoosted;

  int n = 0;        // nodes of one copy of this level
  int copies = 0;   // N / n
  int n_inner = 0;  // block size = nodes of one copy of the level below
  int k = 0;        // blocks per copy
  int m = 0;        // ceil(k/2)
  int tau = 0;      // 3(F+2)
  std::uint64_t C = 0;  // output modulus of this level
  std::vector<std::uint64_t> pow2m;  // (2m)^i, i in [0, k]
  phaseking::Params pk;

  // Bit layout of this level's registers in the flat node state.
  int a_offset = 0;  // == state_bits of the level below
  int a_bits = 0;

  // Pulling levels only (Section 5).
  int sample_size = 0;
  bool fixed_sampling = false;      // SamplingMode::kFixed
  std::uint64_t sampling_seed = 0;  // per-node stream base for kFixed
};

struct ComposedBase {
  enum class Kind { kTrivial, kTable };
  Kind kind = Kind::kTrivial;

  int n = 0;                     // nodes per base copy (1 for trivial)
  int copies = 0;
  std::uint64_t num_states = 0;  // canonical index bound: c or |X|
  int bits = 0;                  // base field width in the state layout
  // kTable: the shared flat kernel (owned by the algorithm, kept alive
  // through ComposedCompiledTable::algo).
  const counting::CompiledTable* table = nullptr;
};

// The compiled hierarchy. Immutable after compile; safe to share across
// threads and lanes.
struct ComposedCompiledTable {
  counting::AlgorithmPtr algo;        // keep-alive for base/table/inner refs
  ComposedBase base;
  std::vector<ComposedLevel> levels;  // bottom-up; back() is the top level
  int N = 0;                          // top-level node count
  int state_bits = 0;
  std::uint64_t modulus = 0;          // top-level C

  // nullptr when `algo` is not a supported composition (at least one
  // boosted/pulling level over a trivial or table base).
  static std::shared_ptr<const ComposedCompiledTable> compile(
      const counting::AlgorithmPtr& algo);
};

// Runs seeds.size() executions of the composed algorithm (internally in
// blocks of up to 64 lanes) and returns their RunResults in seed order;
// result[i] is bit-identical to run_execution with seed cfg.seeds[i] and the
// same margin. Called through run_batch, which owns the backend dispatch.
std::vector<RunResult> run_composed_batch(const BatchConfig& cfg,
                                          const ComposedCompiledTable& cc);

}  // namespace synccount::sim
