#include "sim/faults.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace synccount::sim {

std::vector<bool> faults_prefix(int n, int count) {
  SC_CHECK(count >= 0 && count <= n, "fault count out of range");
  std::vector<bool> v(static_cast<std::size_t>(n), false);
  for (int i = 0; i < count; ++i) v[static_cast<std::size_t>(i)] = true;
  return v;
}

std::vector<bool> faults_spread(int n, int count) {
  SC_CHECK(count >= 0 && count <= n, "fault count out of range");
  std::vector<bool> v(static_cast<std::size_t>(n), false);
  if (count == 0) return v;
  for (int i = 0; i < count; ++i) {
    const auto pos = static_cast<std::size_t>((static_cast<std::int64_t>(i) * n) / count);
    v[pos] = true;
  }
  // Collisions are impossible since i*n/count is strictly increasing for
  // count <= n, but assert the invariant anyway.
  SC_REQUIRE(fault_count(v) == count, "spread placement lost a fault");
  return v;
}

std::vector<bool> faults_random(int n, int count, util::Rng& rng) {
  SC_CHECK(count >= 0 && count <= n, "fault count out of range");
  std::vector<int> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  std::shuffle(ids.begin(), ids.end(), rng);
  std::vector<bool> v(static_cast<std::size_t>(n), false);
  for (int i = 0; i < count; ++i) v[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] = true;
  return v;
}

namespace {
std::vector<bool> corrupt_blocks(int k, int block_size, int f_inner, int count,
                                 const std::vector<int>& block_order) {
  const int n = k * block_size;
  std::vector<bool> v(static_cast<std::size_t>(n), false);
  int remaining = count;
  // Fill f_inner + 1 faults per block (just past the block's own tolerance)
  // in the given block order, then spill leftover faults one per block.
  const int per_block = std::min(block_size, f_inner + 1);
  for (int b : block_order) {
    if (remaining <= 0) break;
    const int take = std::min(per_block, remaining);
    for (int j = 0; j < take; ++j) {
      v[static_cast<std::size_t>(b * block_size + j)] = true;
    }
    remaining -= take;
  }
  // Any faults still unplaced go into so-far-untouched slots.
  for (int i = 0; i < n && remaining > 0; ++i) {
    if (!v[static_cast<std::size_t>(i)]) {
      v[static_cast<std::size_t>(i)] = true;
      --remaining;
    }
  }
  SC_REQUIRE(remaining == 0, "could not place all faults");
  return v;
}
}  // namespace

std::vector<bool> faults_block_concentrated(int k, int block_size, int f_inner, int count) {
  SC_CHECK(k >= 1 && block_size >= 1, "bad block structure");
  SC_CHECK(count >= 0 && count <= k * block_size, "fault count out of range");
  std::vector<int> order(static_cast<std::size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  return corrupt_blocks(k, block_size, f_inner, count, order);
}

std::vector<bool> faults_leader_blocks(int k, int block_size, int f_inner, int count) {
  SC_CHECK(k >= 1 && block_size >= 1, "bad block structure");
  SC_CHECK(count >= 0 && count <= k * block_size, "fault count out of range");
  // Leader-eligible blocks are indices [0, m); corrupt those first, highest
  // leader priority (lowest index) first.
  const int m = (k + 1) / 2;
  std::vector<int> order;
  for (int b = 0; b < m; ++b) order.push_back(b);
  for (int b = m; b < k; ++b) order.push_back(b);
  return corrupt_blocks(k, block_size, f_inner, count, order);
}

std::vector<counting::NodeId> fault_ids(const std::vector<bool>& faulty) {
  std::vector<counting::NodeId> ids;
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    if (faulty[i]) ids.push_back(static_cast<counting::NodeId>(i));
  }
  return ids;
}

int fault_count(const std::vector<bool>& faulty) {
  return static_cast<int>(std::count(faulty.begin(), faulty.end(), true));
}

}  // namespace synccount::sim
