#include "sim/composed_runner.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <span>

#include "boosting/boosted_counter.hpp"
#include "counting/trivial.hpp"
#include "phaseking/phase_king.hpp"
#include "pulling/pulling_counter.hpp"
#include "sim/checker.hpp"
#include "sim/faults.hpp"
#include "util/check.hpp"

namespace synccount::sim {

namespace {

using counting::NodeId;
using phaseking::kInfinity;

constexpr std::size_t kLanesPerWord = 64;

ComposedLevel make_level(ComposedLevel::Kind kind, int n, int N, int k, int m, int tau,
                         std::uint64_t C, int F, const counting::CountingAlgorithm& inner) {
  ComposedLevel lv;
  lv.kind = kind;
  lv.n = n;
  lv.copies = N / n;
  lv.n_inner = inner.num_nodes();
  lv.k = k;
  lv.m = m;
  lv.tau = tau;
  lv.C = C;
  lv.pow2m.resize(static_cast<std::size_t>(k) + 1);
  lv.pow2m[0] = 1;
  for (int i = 1; i <= k; ++i) {
    lv.pow2m[static_cast<std::size_t>(i)] =
        lv.pow2m[static_cast<std::size_t>(i - 1)] * static_cast<std::uint64_t>(2 * m);
  }
  lv.pk = phaseking::Params{n, F, C};
  lv.a_offset = inner.state_bits();
  lv.a_bits = phaseking::a_bits(C);
  return lv;
}

}  // namespace

std::shared_ptr<const ComposedCompiledTable> ComposedCompiledTable::compile(
    const counting::AlgorithmPtr& algo) {
  if (algo == nullptr) return nullptr;
  auto cc = std::make_shared<ComposedCompiledTable>();
  cc->algo = algo;
  cc->N = algo->num_nodes();
  cc->state_bits = algo->state_bits();
  cc->modulus = algo->modulus();

  // Walk the tower top-down, collecting one ComposedLevel per wrapper.
  std::vector<ComposedLevel> top_down;
  const counting::CountingAlgorithm* cur = algo.get();
  for (;;) {
    if (const auto* b = dynamic_cast<const boosting::BoostedCounter*>(cur)) {
      top_down.push_back(make_level(ComposedLevel::Kind::kBoosted, b->num_nodes(), cc->N,
                                    b->k(), b->m(), b->tau(), b->modulus(), b->resilience(),
                                    b->inner()));
      cur = &b->inner();
    } else if (const auto* p = dynamic_cast<const pulling::PullingBoostedCounter*>(cur)) {
      ComposedLevel lv = make_level(ComposedLevel::Kind::kPulling, p->num_nodes(), cc->N,
                                    p->k(), p->m(), p->tau(), p->modulus(), p->resilience(),
                                    p->inner());
      lv.sample_size = p->sample_size();
      lv.fixed_sampling = p->mode() == pulling::SamplingMode::kFixed;
      lv.sampling_seed = p->sampling_seed();
      top_down.push_back(std::move(lv));
      cur = &p->inner();
    } else {
      break;
    }
  }
  if (top_down.empty()) return nullptr;  // flat algorithms go to the table path

  if (const auto* t = dynamic_cast<const counting::TrivialCounter*>(cur)) {
    cc->base.kind = ComposedBase::Kind::kTrivial;
    cc->base.n = 1;
    cc->base.num_states = t->modulus();
  } else if (const auto* t2 = dynamic_cast<const counting::TableAlgorithm*>(cur)) {
    cc->base.kind = ComposedBase::Kind::kTable;
    cc->base.n = t2->num_nodes();
    cc->base.num_states = t2->table().num_states;
    cc->base.table = &t2->compiled();
  } else {
    return nullptr;  // unknown base: stay on the scalar runner
  }
  // Wider table bases would overflow the fixed per-block index scratch; such
  // towers fall back to the scalar runner rather than failing at run time.
  if (cc->base.n > 256) return nullptr;
  cc->base.copies = cc->N / cc->base.n;
  cc->base.bits = cur->state_bits();

  cc->levels.assign(top_down.rbegin(), top_down.rend());

  // The field layout must tile the flat state exactly: base bits, then one
  // (a, d) register pair per level.
  int bits = cc->base.bits;
  for (const ComposedLevel& lv : cc->levels) {
    SC_CHECK(lv.a_offset == bits, "composed state layout mismatch");
    bits += lv.a_bits + 1;
  }
  SC_CHECK(bits == cc->state_bits, "composed state width mismatch");
  return cc;
}

namespace {

// One block of up to 64 lanes advanced in round lockstep. Master state lives
// decomposed: base_[lane*N + node] holds the base field and a_[lvl] / d_[lvl]
// the per-level phase-king registers; BitVec states are materialised only for
// adversaries that read them and for record_states. All scratch is allocated
// once here, so the round loop is allocation-free.
//
// Rounds run in one of two modes, picked once per block from the adversary's
// declared traits:
//
//  * Profiled (the default). Each forging lane calls Adversary::forge_block
//    once per round, yielding a handful of receiver profiles plus a
//    lane-invariant receiver-to-profile map. The round then splits into two
//    passes: pass 1 does the per-lane summary / adversary work and decomposes
//    the forged profiles, an optional cross-lane bit-sliced base transition
//    runs in between (table bases with num_states <= 4 keep a second,
//    bitplane copy of the base field, so one DFS over the compiled table
//    advances all 64 lanes), and pass 2 applies each receiver's profile to
//    the received view and runs the vote / phase-king glue, with votes cached
//    per (level copy, profile) -- copies without faulty senders collapse to
//    one profile-independent entry. Valid whenever hoisting every adversary
//    query before the transitions preserves the lane's rng draw sequence:
//    always for faultless lanes and receiver-oblivious adversaries (the
//    scalar runner hoists those itself), and otherwise when the adversary's
//    message() is draw-free or the tower has no fresh-sampling pulling level.
//  * Interleaved (the remaining case: a receiver-dependent, drawing adversary
//    under a fresh-sampling pulling tower). Forging and transitions alternate
//    per receiver exactly like the scalar loop, with votes memoized per
//    (level, copy) keyed on the forged field tuple they read.
class ComposedBlock {
 public:
  ComposedBlock(const BatchConfig& cfg, const ComposedCompiledTable& cc,
                std::span<const std::uint64_t> seeds)
      : cfg_(cfg), cc_(cc), algo_(*cfg.algo), N_(cc.N), L_(cc.levels.size()), W_(seeds.size()) {
    const auto nn = static_cast<std::size_t>(N_);

    std::vector<bool> faulty = cfg.faulty;
    if (faulty.empty()) faulty.assign(nn, false);
    SC_CHECK(faulty.size() == nn, "fault vector size mismatch");
    SC_CHECK(fault_count(faulty) <= algo_.resilience(),
             "more faults than the algorithm's resilience");
    faulty_ids_ = fault_ids(faulty);
    for (int i = 0; i < N_; ++i) {
      if (!faulty[static_cast<std::size_t>(i)]) correct_.push_back(i);
    }
    SC_CHECK(!correct_.empty(), "all nodes faulty");

    margin_ = resolve_margin(cfg.margin, cfg.max_rounds, algo_.modulus());

    // Master fields and scratch.
    base_.assign(nn * W_, 0);
    a_.assign(L_, std::vector<std::uint64_t>(nn * W_, 0));
    d_.assign(L_, std::vector<std::uint8_t>(nn * W_, 0));
    rv_base_.assign(nn, 0);
    rv_a_.assign(L_, std::vector<std::uint64_t>(nn, 0));
    rv_d_.assign(L_, std::vector<std::uint8_t>(nn, 0));
    rp_a_.assign(L_, nullptr);
    rp_d_.assign(L_, nullptr);
    nb_base_.assign(nn, 0);
    nb_a_.assign(L_, std::vector<std::uint64_t>(nn, 0));
    nb_d_.assign(L_, std::vector<std::uint8_t>(nn, 0));
    b_all_.assign(nn, 0);
    r_all_.assign(nn, 0);
    int max_k = 0;
    int max_m = 0;
    total_copies_ = 0;
    for (const ComposedLevel& lv : cc_.levels) {
      max_k = std::max(max_k, lv.k);
      max_m = std::max(max_m, lv.sample_size);
      copy_base_.push_back(total_copies_);
      total_copies_ += static_cast<std::size_t>(lv.copies);
      // Faulty senders inside each copy of this level: the only received
      // fields the copy's votes see that can differ across receivers.
      for (int c = 0; c < lv.copies; ++c) {
        std::vector<NodeId> in_copy;
        for (const NodeId u : faulty_ids_) {
          if (u >= c * lv.n && u < (c + 1) * lv.n) in_copy.push_back(u);
        }
        copy_faulty_.push_back(std::move(in_copy));
      }
    }
    vote_B_.assign(total_copies_, 0);
    vote_R_.assign(total_copies_, 0);
    vote_valid_.assign(total_copies_, 0);
    vote_memo_.resize(total_copies_);
    vote_memo_used_.assign(total_copies_, 0);
    leader_.assign(static_cast<std::size_t>(max_k), 0);
    const auto mm = static_cast<std::size_t>(max_m);
    sample_.assign(static_cast<std::size_t>(max_k) * mm, 0);
    mvals_.assign(mm, 0);
    sampled_a_.assign(mm, 0);
    outs_.assign(correct_.size(), 0);

    // Lane setup mirrors the scalar runner's preamble draw for draw.
    rngs_.reserve(W_);
    advs_.reserve(W_);
    checkers_.reserve(W_);
    lanes_.resize(W_);
    for (std::size_t l = 0; l < W_; ++l) {
      rngs_.emplace_back(seeds[l]);
      advs_.push_back(cfg.adversary());
      SC_CHECK(advs_.back() != nullptr, "batch adversary factory returned null");
      checkers_.emplace_back(algo_.modulus());
      LaneCold& ln = lanes_[l];
      ln.result.correct_ids = correct_;
      ln.states.resize(nn);
      if (!cfg.initial.empty()) {
        SC_CHECK(cfg.initial.size() == nn, "initial state vector size mismatch");
        for (std::size_t i = 0; i < nn; ++i) ln.states[i] = algo_.canonicalize(cfg.initial[i]);
      } else {
        for (auto& s : ln.states) s = counting::arbitrary_state(algo_, rngs_[l]);
      }
      for (int i = 0; i < N_; ++i) {
        decompose(ln.states[static_cast<std::size_t>(i)], l * nn + static_cast<std::size_t>(i),
                  base_, a_, d_);
      }
      active_ |= 1ULL << l;
    }
    faultless_ = faulty_ids_.empty();
    bool tower_draws = false;
    for (const ComposedLevel& lv : cc_.levels) {
      if (lv.kind == ComposedLevel::Kind::kPulling && !lv.fixed_sampling) tower_draws = true;
    }
    const Adversary& probe = *advs_.front();
    state_oblivious_ = probe.state_oblivious();
    passive_rounds_ = probe.begin_round_passive();
    interleaved_ = !faultless_ && !probe.receiver_oblivious() && !probe.message_draw_free() &&
                   tower_draws;
    static_forge_ = !faultless_ && probe.receiver_oblivious() && probe.forgery_static();
    // Transitions draw iff the tower has a fresh-sampling pulling level, so
    // without one the profiled pass may group receivers by profile (one
    // received-view rebuild per profile instead of per receiver) without
    // disturbing any lane's draw sequence.
    reorder_ok_ = !tower_draws;
    bs_base_ = cc_.base.kind == ComposedBase::Kind::kTable && cc_.base.num_states <= 4 &&
               !interleaved_;

    // Profile state starts in the 1-profile shape shared by faultless lanes
    // and receiver-oblivious adversaries; set_profiles regrows on demand.
    prof_node_.assign(nn, 0);
    order_ = correct_;
    frs_.resize(W_);
    resize_profiles(1);
    if (bs_base_) {
      pb_.assign(nn, {});
      npb_.assign(nn, {});
      eqcb_.assign(nn, {});
      eqpb_.assign(static_cast<std::size_t>(cc_.base.n), nullptr);
      bsender_kind_.assign(nn, -1);
      for (std::size_t k = 0; k < faulty_ids_.size(); ++k) {
        bsender_kind_[static_cast<std::size_t>(faulty_ids_[k])] = static_cast<int>(k);
      }
      for (std::size_t l = 0; l < W_; ++l) {
        for (std::size_t i = 0; i < nn; ++i) {
          set_planes(pb_[i], l, static_cast<std::uint8_t>(base_[l * nn + i]));
        }
      }
    }
  }

  void run() {
    const bool recording = cfg_.record_outputs || cfg_.record_states;
    for (std::uint64_t round = 0; round < cfg_.max_rounds && active_ != 0; ++round) {
      const bool will_forge = !faultless_ && !(static_forge_ && static_forged_);
      if (interleaved_) {
        round_interleaved(round, recording);
      } else {
        round_profiled(round, recording, will_forge);
      }
      if (will_forge && static_forge_) static_forged_ = true;
    }

    for (std::size_t l = 0; l < W_; ++l) {
      RunResult& r = lanes_[l].result;
      const StabilisationChecker& ck = checkers_[l];
      r.rounds = ck.rounds();
      r.stabilisation_round = ck.suffix_start();
      r.suffix_length = ck.suffix_length();
      r.max_window = ck.max_window();
      r.stabilised = r.suffix_length >= std::min<std::uint64_t>(margin_, r.rounds);
      if (lanes_[l].pull_samples > 0) {
        r.avg_pulls_per_round = static_cast<double>(lanes_[l].total_pulls) /
                                static_cast<double>(lanes_[l].pull_samples);
      }
    }
  }

  std::vector<RunResult> take_results() {
    std::vector<RunResult> out;
    out.reserve(W_);
    for (auto& ln : lanes_) out.push_back(std::move(ln.result));
    return out;
  }

 private:
  struct LaneCold {
    RunResult result;
    // Materialised BitVec states for adversary queries and recording; faulty
    // entries are fixed for the whole run, correct entries are refreshed
    // from the field representation on demand.
    std::vector<State> states;
    std::uint64_t total_pulls = 0;
    std::uint64_t pull_samples = 0;
  };

  // --- Round summary: outputs + agreement (from the master fields) ----------
  // Returns false if the lane early-exited (stop_after_stable reached).
  bool observe_lane(std::size_t l, bool recording) {
    const std::vector<std::uint64_t>& top_a = a_[L_ - 1];
    const std::size_t lane_off = l * static_cast<std::size_t>(N_);
    bool agreed = true;
    std::uint64_t first = 0;
    for (std::size_t j = 0; j < correct_.size(); ++j) {
      const std::uint64_t a = top_a[lane_off + static_cast<std::size_t>(correct_[j])];
      outs_[j] = a == kInfinity ? 0 : a;
      if (j == 0) {
        first = outs_[0];
      } else if (outs_[j] != first) {
        agreed = false;
      }
    }
    checkers_[l].observe_summary(agreed, first);
    if (recording) record_lane(l);
    if (cfg_.stop_after_stable > 0 && checkers_[l].suffix_length() >= cfg_.stop_after_stable) {
      active_ &= ~(1ULL << l);
      return false;
    }
    return true;
  }

  // --- Profiled rounds ------------------------------------------------------

  void round_profiled(std::uint64_t round, bool recording, bool will_forge) {
    // Pass 1: per-lane summary + adversary work. Lane-internal call order
    // matches the scalar runner exactly (forge_block runs begin_round before
    // its message queries).
    bool profiles_set = false;
    [[maybe_unused]] std::size_t first_lane = 0;
    for (std::uint64_t msk = active_; msk; msk &= msk - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(msk));
      if (!observe_lane(l, recording)) continue;
      if (will_forge) {
        if (!state_oblivious_) refresh_states(l);
        ForgedRound& fr = frs_[l];
        advs_[l]->forge_block(round, lanes_[l].states, algo_, faulty_ids_, correct_, rngs_[l],
                              fr);
        if (!profiles_set) {
          set_profiles(fr);
          profiles_set = true;
          first_lane = l;
        } else {
          // The profile geometry must be a pure function of (round, faults,
          // n) -- lane-invariant by the forge_block contract.
          SC_ASSERT(fr.num_profiles == nprof_);
          SC_ASSERT(fr.profile_of == frs_[first_lane].profile_of);
        }
        decompose_lane_profiles(l);
      } else if (!passive_rounds_) {
        if (!state_oblivious_) refresh_states(l);
        advs_[l]->begin_round(round, lanes_[l].states, algo_, faulty_ids_, rngs_[l]);
      }
    }
    if (active_ == 0) return;

    // Cross-lane base transition: one DFS over the compiled base table per
    // correct node advances every lane's base field at once.
    if (bs_base_) base_transition_bit_sliced();

    // Pass 2: received views, votes, phase-king glue, commit.
    for (std::uint64_t msk = active_; msk; msk &= msk - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(msk));
      load_received(l);
      std::fill(vote_valid_.begin(), vote_valid_.end(), 0);
      if (faultless_) {
        for (const NodeId v : correct_) transition_node(l, v, 0, /*memo=*/false);
      } else {
        int cur = -1;
        for (const NodeId v : order_) {
          const int pv = nprof_ == 1 ? 0 : prof_node_[static_cast<std::size_t>(v)];
          if (pv != cur) {
            apply_profile(l, pv);
            cur = pv;
          }
          transition_node(l, v, pv, /*memo=*/false);
        }
      }
      commit(l);
    }
    if (bs_base_) commit_planes();
  }

  // --- Interleaved rounds (receiver-dependent drawing adversary over a
  // fresh-sampling pulling tower) ---------------------------------------------

  void round_interleaved(std::uint64_t round, bool recording) {
    for (std::uint64_t msk = active_; msk; msk &= msk - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(msk));
      if (!observe_lane(l, recording)) continue;
      if (!state_oblivious_) refresh_states(l);
      if (!passive_rounds_) {
        advs_[l]->begin_round(round, lanes_[l].states, algo_, faulty_ids_, rngs_[l]);
      }
      load_received(l);
      std::fill(vote_memo_used_.begin(), vote_memo_used_.end(), 0);
      for (const NodeId v : correct_) {
        for (std::size_t k = 0; k < faulty_ids_.size(); ++k) {
          forge_into(l, round, faulty_ids_[k], v, static_cast<std::size_t>(faulty_ids_[k]),
                     rv_base_, rv_a_, rv_d_);
        }
        transition_node(l, v, 0, /*memo=*/true);
      }
      commit(l);
    }
  }

  // --- Field <-> BitVec -----------------------------------------------------

  // Writes the decomposed fields of (canonical or raw) state `s` into slot
  // `idx` of the given field arrays. Decomposing a raw pattern directly
  // equals decomposing canonicalize(s): the base index reduces modulo the
  // state count and the a register decodes by clamping, exactly as the
  // scalar construction's canonicalize does.
  void decompose(const State& s, std::size_t idx, std::vector<std::uint64_t>& base,
                 std::vector<std::vector<std::uint64_t>>& a,
                 std::vector<std::vector<std::uint8_t>>& d) const {
    base[idx] = s.get_bits(0, cc_.base.bits) % cc_.base.num_states;
    for (std::size_t lvl = 0; lvl < L_; ++lvl) {
      const ComposedLevel& lv = cc_.levels[lvl];
      a[lvl][idx] = phaseking::decode_a(s.get_bits(lv.a_offset, lv.a_bits), lv.C);
      d[lvl][idx] = s.get_bit(lv.a_offset + lv.a_bits) ? 1 : 0;
    }
  }

  State encode(std::size_t lane, NodeId node) const {
    const std::size_t idx = lane * static_cast<std::size_t>(N_) + static_cast<std::size_t>(node);
    State s;
    s.set_bits(0, cc_.base.bits, base_[idx]);
    for (std::size_t lvl = 0; lvl < L_; ++lvl) {
      const ComposedLevel& lv = cc_.levels[lvl];
      s.set_bits(lv.a_offset, lv.a_bits, phaseking::encode_a(a_[lvl][idx], lv.C));
      s.set_bit(lv.a_offset + lv.a_bits, d_[lvl][idx] != 0);
    }
    return s;
  }

  void refresh_states(std::size_t lane) {
    LaneCold& ln = lanes_[lane];
    for (const NodeId i : correct_) ln.states[static_cast<std::size_t>(i)] = encode(lane, i);
  }

  void record_lane(std::size_t lane) {
    LaneCold& ln = lanes_[lane];
    if (cfg_.record_outputs) {
      ln.result.outputs.emplace_back(outs_.begin(), outs_.end());
    }
    if (cfg_.record_states) {
      refresh_states(lane);
      ln.result.states.push_back(ln.states);
    }
  }

  // --- Forged profiles ------------------------------------------------------

  // Grows the per-(profile, faulty sender) storage to `nprof` profiles. The
  // profile slot stride is S_ = nprof * |faulty|; per-lane decomposed fields
  // live at [lane * S_ + slot] so one lane's profiles stay contiguous.
  void resize_profiles(int nprof) {
    nprof_ = nprof;
    S_ = static_cast<std::size_t>(nprof_) * faulty_ids_.size();
    pf_base_.assign(S_ * W_, 0);
    pf_a_.assign(L_, std::vector<std::uint64_t>(S_ * W_, 0));
    pf_d_.assign(L_, std::vector<std::uint8_t>(S_ * W_, 0));
    vote_B_.assign(total_copies_ * static_cast<std::size_t>(nprof_), 0);
    vote_R_.assign(total_copies_ * static_cast<std::size_t>(nprof_), 0);
    vote_valid_.assign(total_copies_ * static_cast<std::size_t>(nprof_), 0);
    if (bs_base_) {
      fpb_.assign(S_, {});
      eqfb_.assign(S_, {});
    }
  }

  // Establishes this round's profile geometry from the first forging lane:
  // the profile count, the receiver-to-profile map, and (when reordering is
  // draw-safe) the profile-grouped receiver order.
  void set_profiles(const ForgedRound& fr) {
    SC_REQUIRE(fr.num_profiles >= 1, "forge_block produced no profiles");
    if (fr.num_profiles != nprof_) resize_profiles(fr.num_profiles);
    if (fr.profile_of.empty()) {
      std::fill(prof_node_.begin(), prof_node_.end(), std::uint16_t{0});
    } else {
      SC_REQUIRE(fr.profile_of.size() == prof_node_.size(),
                 "forge_block profile map has wrong size");
      std::copy(fr.profile_of.begin(), fr.profile_of.end(), prof_node_.begin());
    }
    if (reorder_ok_ && nprof_ > 1) {
      // Counting sort of the correct receivers by profile: transitions are
      // draw-free here, so grouping rebuilds the received view once per
      // profile without changing any per-node result.
      count_scratch_.assign(static_cast<std::size_t>(nprof_) + 1, 0);
      for (const NodeId v : correct_) {
        const std::uint16_t p = prof_node_[static_cast<std::size_t>(v)];
        SC_ASSERT(p < nprof_);
        ++count_scratch_[static_cast<std::size_t>(p) + 1];
      }
      for (std::size_t p = 1; p < count_scratch_.size(); ++p) {
        count_scratch_[p] += count_scratch_[p - 1];
      }
      for (const NodeId v : correct_) {
        order_[count_scratch_[prof_node_[static_cast<std::size_t>(v)]]++] = v;
      }
    } else {
      std::copy(correct_.begin(), correct_.end(), order_.begin());
    }
  }

  // Decomposes lane `lane`'s forged states into its profile field slots and,
  // on the bit-sliced base path, scatters the base indices into the forged
  // bitplanes. Persists across rounds, so static forgers pay this once.
  void decompose_lane_profiles(std::size_t lane) {
    const ForgedRound& fr = frs_[lane];
    SC_ASSERT(fr.states.size() == S_);
    for (std::size_t s = 0; s < S_; ++s) {
      const std::size_t idx = lane * S_ + s;
      decompose(fr.states[s], idx, pf_base_, pf_a_, pf_d_);
      if (bs_base_) {
        set_planes(fpb_[s], lane, static_cast<std::uint8_t>(pf_base_[idx]));
      }
    }
  }

  // Overwrites the received view's faulty entries with profile `pv`'s fields.
  void apply_profile(std::size_t lane, int pv) {
    const std::size_t off = lane * S_ + static_cast<std::size_t>(pv) * faulty_ids_.size();
    for (std::size_t k = 0; k < faulty_ids_.size(); ++k) {
      const auto dst = static_cast<std::size_t>(faulty_ids_[k]);
      rv_base_[dst] = pf_base_[off + k];
      for (std::size_t lvl = 0; lvl < L_; ++lvl) {
        rv_a_[lvl][dst] = pf_a_[lvl][off + k];
        rv_d_[lvl][dst] = pf_d_[lvl][off + k];
      }
    }
  }

  // --- Adversary messages (interleaved mode) --------------------------------

  // Queries the adversary for (sender -> receiver) and decomposes the raw
  // answer into slot `idx` of the target field arrays.
  void forge_into(std::size_t lane, std::uint64_t round, NodeId sender, NodeId receiver,
                  std::size_t idx, std::vector<std::uint64_t>& base,
                  std::vector<std::vector<std::uint64_t>>& a,
                  std::vector<std::vector<std::uint8_t>>& d) {
    const State raw = advs_[lane]->message(round, sender, receiver, lanes_[lane].states,
                                           algo_, rngs_[lane]);
    decompose(raw, idx, base, a, d);
  }

  // Builds the received view of this lane: the master fields copied into the
  // rv buffers, with the faulty entries overwritten afterwards (apply_profile
  // in profiled mode, per-receiver forge_into in interleaved mode).
  // Fault-free lanes deliver the round-start states verbatim, so the read
  // pointers alias the master slice directly -- no copy, exactly like the
  // scalar runner's faultless shortcut (the transitions write only to the
  // nb_ buffers, so there is no aliasing hazard).
  void load_received(std::size_t lane) {
    const auto nn = static_cast<std::size_t>(N_);
    const std::size_t off = lane * nn;
    if (faultless_) {
      rp_base_ = base_.data() + off;
      for (std::size_t lvl = 0; lvl < L_; ++lvl) {
        rp_a_[lvl] = a_[lvl].data() + off;
        rp_d_[lvl] = d_[lvl].data() + off;
      }
      return;
    }
    std::copy_n(base_.begin() + static_cast<std::ptrdiff_t>(off), nn, rv_base_.begin());
    for (std::size_t lvl = 0; lvl < L_; ++lvl) {
      std::copy_n(a_[lvl].begin() + static_cast<std::ptrdiff_t>(off), nn, rv_a_[lvl].begin());
      std::copy_n(d_[lvl].begin() + static_cast<std::ptrdiff_t>(off), nn, rv_d_[lvl].begin());
    }
    rp_base_ = rv_base_.data();
    for (std::size_t lvl = 0; lvl < L_; ++lvl) {
      rp_a_[lvl] = rv_a_[lvl].data();
      rp_d_[lvl] = rv_d_[lvl].data();
    }
  }

  // --- Bit-sliced base ------------------------------------------------------

  // Scatter a 2-bit state index into the lane's slot of a bitplane pair.
  static void set_planes(std::array<std::uint64_t, 2>& p, std::size_t lane,
                         std::uint8_t v) noexcept {
    p[0] = (p[0] & ~(1ULL << lane)) | (static_cast<std::uint64_t>(v & 1) << lane);
    p[1] = (p[1] & ~(1ULL << lane)) | (static_cast<std::uint64_t>((v >> 1) & 1) << lane);
  }

  // eq[c] = mask of lanes whose 2-bit plane value equals c.
  static std::array<std::uint64_t, 4> eq_masks(const std::array<std::uint64_t, 2>& p) noexcept {
    return {~p[0] & ~p[1], p[0] & ~p[1], ~p[0] & p[1], p[0] & p[1]};
  }

  // Advances every active lane's base field in one cross-lane pass: equality
  // bitplanes per sender (master planes for correct senders, forged planes
  // per (profile, sender) otherwise), then per correct node a depth-first
  // enumeration of the live part of its base copy's index space -- a branch
  // dies as soon as no active lane matches its value prefix, so after
  // stabilisation a pass costs O(base.n) words per node.
  void base_transition_bit_sliced() {
    const counting::CompiledTable& t = *cc_.base.table;
    const int n0 = cc_.base.n;
    const std::uint64_t ns = cc_.base.num_states;
    const std::size_t nf = faulty_ids_.size();
    for (std::size_t u = 0; u < static_cast<std::size_t>(N_); ++u) {
      eqcb_[u] = eq_masks(pb_[u]);
    }
    for (std::size_t s = 0; s < S_; ++s) eqfb_[s] = eq_masks(fpb_[s]);
    for (const NodeId v : correct_) {
      const int v_local = v % n0;
      const int first = (v / n0) * n0;
      const std::uint64_t* st = t.stride.data() + static_cast<std::size_t>(v_local) * n0;
      const std::size_t pbase =
          (nprof_ == 1 ? 0 : static_cast<std::size_t>(prof_node_[static_cast<std::size_t>(v)])) *
          nf;
      for (int s = 0; s < n0; ++s) {
        const int k = bsender_kind_[static_cast<std::size_t>(first + s)];
        eqpb_[static_cast<std::size_t>(s)] =
            k < 0 ? &eqcb_[static_cast<std::size_t>(first + s)]
                  : &eqfb_[pbase + static_cast<std::size_t>(k)];
      }
      std::uint64_t np0 = 0;
      std::uint64_t np1 = 0;
      const auto dfs = [&](auto&& self, int s, std::uint64_t mask, std::uint64_t off) -> void {
        if (s == n0) {
          const std::uint8_t nx = t.g[off];
          if (nx & 1) np0 |= mask;
          if (nx & 2) np1 |= mask;
          return;
        }
        const auto& e = *eqpb_[static_cast<std::size_t>(s)];
        for (std::uint64_t c = 0; c < ns; ++c) {
          const std::uint64_t sub = mask & e[c];
          if (sub != 0) self(self, s + 1, sub, off + st[s] * c);
        }
      };
      dfs(dfs, 0, active_, t.node_base[static_cast<std::size_t>(v_local)]);
      npb_[static_cast<std::size_t>(v)] = {np0, np1};
    }
  }

  void commit_planes() {
    for (const NodeId v : correct_) {
      const auto vv = static_cast<std::size_t>(v);
      pb_[vv][0] = (pb_[vv][0] & ~active_) | (npb_[vv][0] & active_);
      pb_[vv][1] = (pb_[vv][1] & ~active_) | (npb_[vv][1] & active_);
    }
  }

  // --- Level kernels --------------------------------------------------------

  // Output of the inner algorithm of level `lvl` at global node u, read from
  // the received view (exactly what block_view / the vote sampling read).
  std::uint64_t inner_out(std::size_t lvl, NodeId u) const {
    if (lvl == 0) {
      if (cc_.base.kind == ComposedBase::Kind::kTrivial) {
        return rp_base_[static_cast<std::size_t>(u)];
      }
      return cc_.base.table->out(u % cc_.base.n,
                                 static_cast<std::uint8_t>(rp_base_[static_cast<std::size_t>(u)]));
    }
    const std::uint64_t a = rp_a_[lvl - 1][static_cast<std::size_t>(u)];
    return a == kInfinity ? 0 : a;
  }

  // Full majority votes of one copy of a boosted level (paper step 3),
  // mirroring BoostedCounter::votes on the received view.
  void compute_votes(std::size_t lvl, int copy, std::uint64_t& B, std::uint64_t& R) {
    const ComposedLevel& lv = cc_.levels[lvl];
    const int first = copy * lv.n;
    const auto tau = static_cast<std::uint64_t>(lv.tau);
    const auto m = static_cast<std::uint64_t>(lv.m);
    for (int u_local = 0; u_local < lv.n; ++u_local) {
      const int blk = u_local / lv.n_inner;
      const std::uint64_t cblk = tau * lv.pow2m[static_cast<std::size_t>(blk) + 1];
      const std::uint64_t value = inner_out(lvl, first + u_local) % cblk;
      r_all_[static_cast<std::size_t>(u_local)] = value % tau;
      const std::uint64_t y = value / tau;
      b_all_[static_cast<std::size_t>(u_local)] =
          (y / lv.pow2m[static_cast<std::size_t>(blk)]) % m;
    }
    const auto ni = static_cast<std::size_t>(lv.n_inner);
    for (int blk = 0; blk < lv.k; ++blk) {
      leader_[static_cast<std::size_t>(blk)] = boosting::strict_majority(
          std::span<const std::uint64_t>(b_all_.data() + static_cast<std::size_t>(blk) * ni, ni),
          m, ni / 2, scratch_);
    }
    B = boosting::strict_majority(
        std::span<const std::uint64_t>(leader_.data(), static_cast<std::size_t>(lv.k)), m,
        static_cast<std::size_t>(lv.k) / 2, scratch_);
    R = boosting::strict_majority(
        std::span<const std::uint64_t>(r_all_.data() + static_cast<std::size_t>(B) * ni, ni),
        tau, ni / 2, scratch_);
  }

  // Profiled-mode vote lookup: direct-indexed per (level copy, profile).
  // Copies without faulty senders read the same fields under every profile,
  // so they collapse onto the profile-0 entry.
  void boosted_votes_profiled(std::size_t lvl, int copy, std::size_t slot, int pv,
                              std::uint64_t& B, std::uint64_t& R) {
    const int p_eff = copy_faulty_[slot].empty() ? 0 : pv;
    const std::size_t cidx =
        slot * static_cast<std::size_t>(nprof_) + static_cast<std::size_t>(p_eff);
    if (vote_valid_[cidx]) {
      B = vote_B_[cidx];
      R = vote_R_[cidx];
      return;
    }
    compute_votes(lvl, copy, B, R);
    vote_B_[cidx] = B;
    vote_R_[cidx] = R;
    vote_valid_[cidx] = 1;
  }

  // Interleaved-mode vote lookup. Per-receiver forging changes only the
  // faulty senders' fields, and structured equivocators send few distinct
  // values per round, so this round's votes are memoized per (level, copy)
  // keyed on the forged field tuple the votes actually read -- the base index
  // for level 0, the level-below (a) register otherwise. A full key match
  // implies identical vote inputs, so the hit path is bit-identical to
  // recomputing.
  void boosted_votes_memo(std::size_t lvl, int copy, std::size_t slot, std::uint64_t& B,
                          std::uint64_t& R) {
    key_scratch_.clear();
    for (const NodeId u : copy_faulty_[slot]) {
      const auto uu = static_cast<std::size_t>(u);
      key_scratch_.push_back(lvl == 0 ? rp_base_[uu] : rp_a_[lvl - 1][uu]);
    }
    auto& entries = vote_memo_[slot];
    std::size_t& used = vote_memo_used_[slot];
    for (std::size_t e = 0; e < used; ++e) {
      if (entries[e].key == key_scratch_) {
        B = entries[e].B;
        R = entries[e].R;
        return;
      }
    }
    compute_votes(lvl, copy, B, R);
    if (used == entries.size()) entries.emplace_back();
    entries[used].key = key_scratch_;  // assignment reuses capacity
    entries[used].B = B;
    entries[used].R = R;
    ++used;
  }

  void boosted_step(std::size_t lvl, NodeId v, int pv, bool memo) {
    const ComposedLevel& lv = cc_.levels[lvl];
    const int copy = v / lv.n;
    const int v_local = v % lv.n;
    const std::size_t slot = copy_base_[lvl] + static_cast<std::size_t>(copy);
    std::uint64_t B;
    std::uint64_t R;
    if (memo) {
      boosted_votes_memo(lvl, copy, slot, B, R);
    } else {
      boosted_votes_profiled(lvl, copy, slot, pv, B, R);
    }
    const std::size_t first = static_cast<std::size_t>(copy) * static_cast<std::size_t>(lv.n);
    const std::span<const std::uint64_t> received_a(rp_a_[lvl] + first,
                                                    static_cast<std::size_t>(lv.n));
    const phaseking::Registers own{rp_a_[lvl][static_cast<std::size_t>(v)],
                                   rp_d_[lvl][static_cast<std::size_t>(v)] != 0};
    const phaseking::Registers next =
        phaseking::step(lv.pk, static_cast<int>(R), v_local, own, received_a);
    nb_a_[lvl][static_cast<std::size_t>(v)] = next.a;
    nb_d_[lvl][static_cast<std::size_t>(v)] = next.d ? 1 : 0;
  }

  // Sampled votes + sampled phase king of one pulling level (Section 5),
  // mirroring PullingBoostedCounter::transition field for field and draw for
  // draw (block samples in block order, then the network sample).
  void pulling_step(std::size_t lane, std::size_t lvl, NodeId v, std::uint64_t& pulled) {
    const ComposedLevel& lv = cc_.levels[lvl];
    const int copy = v / lv.n;
    const int v_local = v % lv.n;
    const int first = copy * lv.n;
    const auto M = static_cast<std::size_t>(lv.sample_size);
    const auto tau = static_cast<std::uint64_t>(lv.tau);
    const auto m = static_cast<std::uint64_t>(lv.m);

    util::Rng fixed_rng(util::hash_combine(lv.sampling_seed, static_cast<std::uint64_t>(v_local)));
    util::Rng& rng = lv.fixed_sampling ? fixed_rng : rngs_[lane];

    pulled += static_cast<std::uint64_t>(lv.n_inner);  // the own-block pull (step 1)

    for (int blk = 0; blk < lv.k; ++blk) {
      std::uint32_t* sample = sample_.data() + static_cast<std::size_t>(blk) * M;
      for (std::size_t t = 0; t < M; ++t) {
        sample[t] =
            static_cast<std::uint32_t>(rng.next_below(static_cast<std::uint64_t>(lv.n_inner)));
      }
      pulled += M;
      const std::uint64_t cblk = tau * lv.pow2m[static_cast<std::size_t>(blk) + 1];
      for (std::size_t t = 0; t < M; ++t) {
        const int u = first + blk * lv.n_inner + static_cast<int>(sample[t]);
        const std::uint64_t out = inner_out(lvl, u) % cblk;
        const std::uint64_t y = out / tau;
        mvals_[t] = (y / lv.pow2m[static_cast<std::size_t>(blk)]) % m;
      }
      leader_[static_cast<std::size_t>(blk)] = pulling::sampled_majority(
          std::span<const std::uint64_t>(mvals_.data(), M), m, scratch_);
    }
    const std::uint64_t B = pulling::sampled_majority(
        std::span<const std::uint64_t>(leader_.data(), static_cast<std::size_t>(lv.k)), m,
        scratch_);

    // R: reuse block B's samples, reading the r component this time.
    {
      const std::uint32_t* sample = sample_.data() + static_cast<std::size_t>(B) * M;
      const std::uint64_t cblk = tau * lv.pow2m[static_cast<std::size_t>(B) + 1];
      for (std::size_t t = 0; t < M; ++t) {
        const int u = first + static_cast<int>(B) * lv.n_inner + static_cast<int>(sample[t]);
        mvals_[t] = inner_out(lvl, u) % cblk % tau;
      }
    }
    const std::uint64_t R = pulling::sampled_majority(
        std::span<const std::uint64_t>(mvals_.data(), M), tau, scratch_);

    for (std::size_t t = 0; t < M; ++t) {
      const auto u = rng.next_below(static_cast<std::uint64_t>(lv.n));
      sampled_a_[t] = rp_a_[lvl][static_cast<std::size_t>(first) + u];
    }
    pulled += M;
    const int king = static_cast<int>(R) / 3;
    const std::uint64_t king_a = rp_a_[lvl][static_cast<std::size_t>(first + king)];
    pulled += 1;

    const phaseking::Registers own{rp_a_[lvl][static_cast<std::size_t>(v)],
                                   rp_d_[lvl][static_cast<std::size_t>(v)] != 0};
    const phaseking::Registers next = phaseking::step_sampled(
        lv.pk, static_cast<int>(R), own,
        std::span<const std::uint64_t>(sampled_a_.data(), M), king_a);
    nb_a_[lvl][static_cast<std::size_t>(v)] = next.a;
    nb_d_[lvl][static_cast<std::size_t>(v)] = next.d ? 1 : 0;
  }

  void transition_node(std::size_t lane, NodeId v, int pv, bool memo) {
    // Base kernel (step 1 of the construction, recursed to the bottom). On
    // the bit-sliced path the cross-lane pass already produced every lane's
    // next base index; extract this lane's bit pair.
    const auto vv = static_cast<std::size_t>(v);
    if (bs_base_) {
      nb_base_[vv] = ((npb_[vv][0] >> lane) & 1) | (((npb_[vv][1] >> lane) & 1) << 1);
    } else if (cc_.base.kind == ComposedBase::Kind::kTrivial) {
      nb_base_[vv] = (rp_base_[vv] + 1) % cc_.base.num_states;
    } else {
      const int n0 = cc_.base.n;
      const int first = (v / n0) * n0;
      for (int s = 0; s < n0; ++s) {
        base_idx_[static_cast<std::size_t>(s)] =
            static_cast<std::uint8_t>(rp_base_[static_cast<std::size_t>(first + s)]);
      }
      nb_base_[vv] = cc_.base.table->next(v % n0, base_idx_.data());
    }
    // Boosting levels bottom-up: the level order matches the scalar call
    // chain (each wrapper runs its inner transition before its own votes and
    // phase-king step), which keeps the pulling levels' Rng draws in order.
    std::uint64_t pulled = 0;
    for (std::size_t lvl = 0; lvl < L_; ++lvl) {
      if (cc_.levels[lvl].kind == ComposedLevel::Kind::kBoosted) {
        boosted_step(lvl, v, pv, memo);
      } else {
        pulling_step(lane, lvl, v, pulled);
      }
    }
    LaneCold& ln = lanes_[lane];
    ln.total_pulls += pulled;
    ++ln.pull_samples;
    ln.result.max_pulls_per_round = std::max(ln.result.max_pulls_per_round, pulled);
  }

  void commit(std::size_t lane) {
    const std::size_t off = lane * static_cast<std::size_t>(N_);
    for (const NodeId v : correct_) {
      const auto vv = static_cast<std::size_t>(v);
      base_[off + vv] = nb_base_[vv];
      for (std::size_t lvl = 0; lvl < L_; ++lvl) {
        a_[lvl][off + vv] = nb_a_[lvl][vv];
        d_[lvl][off + vv] = nb_d_[lvl][vv];
      }
    }
  }

  const BatchConfig& cfg_;
  const ComposedCompiledTable& cc_;
  const counting::CountingAlgorithm& algo_;
  const int N_;
  const std::size_t L_;  // number of boosting levels
  const std::size_t W_;

  std::vector<NodeId> correct_;
  std::vector<NodeId> faulty_ids_;
  bool faultless_ = true;
  bool state_oblivious_ = false;
  bool passive_rounds_ = false;
  bool interleaved_ = false;
  bool reorder_ok_ = false;
  bool bs_base_ = false;
  bool static_forge_ = false;
  bool static_forged_ = false;
  std::uint64_t margin_ = 0;
  std::uint64_t active_ = 0;  // bitmask of lanes still running

  // Hot per-lane state, parallel arrays indexed by lane.
  std::vector<util::Rng> rngs_;
  std::vector<std::unique_ptr<Adversary>> advs_;
  std::vector<StabilisationChecker> checkers_;
  std::vector<LaneCold> lanes_;

  // Master field representation, [lane * N + node].
  std::vector<std::uint64_t> base_;
  std::vector<std::vector<std::uint64_t>> a_;  // [level][lane * N + node]
  std::vector<std::vector<std::uint8_t>> d_;

  // Received view of the lane/receiver currently being advanced, [node]:
  // reads go through the rp_ pointers, which alias the master slice on
  // fault-free runs and the rv_ copy-with-forgeries buffers otherwise.
  std::vector<std::uint64_t> rv_base_;
  std::vector<std::vector<std::uint64_t>> rv_a_;
  std::vector<std::vector<std::uint8_t>> rv_d_;
  const std::uint64_t* rp_base_ = nullptr;
  std::vector<const std::uint64_t*> rp_a_;
  std::vector<const std::uint8_t*> rp_d_;

  // Next-state fields of the lane currently being advanced, [node].
  std::vector<std::uint64_t> nb_base_;
  std::vector<std::vector<std::uint64_t>> nb_a_;
  std::vector<std::vector<std::uint8_t>> nb_d_;

  // Forged profiles (profiled mode). frs_ is each lane's ForgedRound storage
  // (reused across rounds); pf_* are the decomposed per-lane profile fields,
  // [lane * S_ + profile * |faulty| + k]; prof_node_ maps receivers to
  // profiles and order_ is the (possibly profile-grouped) receiver order.
  int nprof_ = 1;
  std::size_t S_ = 0;  // profile slot stride: nprof_ * |faulty|
  std::vector<ForgedRound> frs_;
  std::vector<std::uint64_t> pf_base_;
  std::vector<std::vector<std::uint64_t>> pf_a_;
  std::vector<std::vector<std::uint8_t>> pf_d_;
  std::vector<std::uint16_t> prof_node_;
  std::vector<NodeId> order_;
  std::vector<std::size_t> count_scratch_;

  // Per-(level copy, profile) vote cache, valid within one profiled lane
  // round; [slot * nprof_ + p_eff].
  std::size_t total_copies_ = 0;
  std::vector<std::size_t> copy_base_;  // [level] -> first slot of its copies
  std::vector<std::uint64_t> vote_B_, vote_R_;
  std::vector<std::uint8_t> vote_valid_;

  // Per-receiver vote memo (interleaved mode), [slot]: votes computed this
  // lane-round keyed on the copy's forged field tuple; entry storage persists
  // across rounds so the round loop stays allocation-free once warm.
  struct VoteMemoEntry {
    std::vector<std::uint64_t> key;
    std::uint64_t B = 0, R = 0;
  };
  std::vector<std::vector<NodeId>> copy_faulty_;  // [slot] -> faulty ids in the copy
  std::vector<std::vector<VoteMemoEntry>> vote_memo_;
  std::vector<std::size_t> vote_memo_used_;
  std::vector<std::uint64_t> key_scratch_;

  // Bit-sliced base planes (bs_base_ only): pb_ mirrors base_ as per-node
  // {bit0, bit1} lane bitplanes (committed in lockstep with the master),
  // npb_ the next-round planes, fpb_ the forged planes per profile slot, and
  // eqcb_/eqfb_/eqpb_ the per-round equality planes and per-sender view.
  std::vector<std::array<std::uint64_t, 2>> pb_, npb_, fpb_;
  std::vector<std::array<std::uint64_t, 4>> eqcb_, eqfb_;
  std::vector<const std::array<std::uint64_t, 4>*> eqpb_;
  std::vector<int> bsender_kind_;  // [node] -> -1 correct, else faulty index k

  // Vote / sampling scratch.
  std::vector<std::uint64_t> b_all_, r_all_, leader_, mvals_, sampled_a_, outs_;
  std::vector<std::uint32_t> sample_;
  std::vector<std::uint32_t> scratch_;
  std::array<std::uint8_t, 256> base_idx_{};
};

}  // namespace

std::vector<RunResult> run_composed_batch(const BatchConfig& cfg,
                                          const ComposedCompiledTable& cc) {
  SC_CHECK(cfg.kernel == BatchKernel::kAuto,
           "composed (boosted/pulling) algorithms run a single fixed kernel; "
           "BatchConfig::kernel must be kAuto");
  std::vector<RunResult> results;
  results.reserve(cfg.seeds.size());
  for (std::size_t start = 0; start < cfg.seeds.size(); start += kLanesPerWord) {
    const std::size_t count = std::min(kLanesPerWord, cfg.seeds.size() - start);
    ComposedBlock block(cfg, cc,
                        std::span<const std::uint64_t>(cfg.seeds).subspan(start, count));
    block.run();
    auto part = block.take_results();
    for (auto& r : part) results.push_back(std::move(r));
  }
  return results;
}

}  // namespace synccount::sim
