// Online stabilisation checking (paper, Section 2, "Synchronous Counters").
//
// An execution stabilises in time t if from round t on, every correct node
// outputs r - r0 (mod c): all correct outputs agree and increment by one
// modulo c each round. The checker consumes one output vector per round and
// maintains the start of the current maximal valid suffix; at the end of a
// finite run, an execution counts as stabilised if that suffix is long
// enough to be convincing (caller-chosen margin, typically >= 2c).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

namespace synccount::sim {

class StabilisationChecker {
 public:
  explicit StabilisationChecker(std::uint64_t modulus);

  // Outputs of all *correct* nodes at the current round, any fixed order.
  void observe(std::span<const std::uint64_t> outputs);

  // The same update from a precomputed round summary: whether all correct
  // outputs agreed and the first correct node's output value. The batched
  // backend computes these bit-parallel across 64 executions and feeds one
  // checker per lane; observe() reduces to this, so the two entry points
  // cannot drift apart.
  void observe_summary(bool agreed, std::uint64_t value) noexcept {
    if (!agreed) {
      max_window_ = std::max(max_window_, round_ - suffix_start_);
      suffix_start_ = round_ + 1;
    } else if (prev_agreed_ && value != (prev_value_ + 1) % modulus_) {
      // Agreement held both rounds but the counter did not advance by one:
      // the valid suffix restarts at the current round.
      max_window_ = std::max(max_window_, round_ - suffix_start_);
      suffix_start_ = round_;
    }
    prev_agreed_ = agreed;
    prev_value_ = value;
    ++round_;
  }

  // Number of rounds observed so far.
  std::uint64_t rounds() const noexcept { return round_; }

  // Start of the current valid suffix (== rounds() if the last round was bad).
  std::uint64_t suffix_start() const noexcept { return suffix_start_; }

  // Length of the current valid suffix.
  std::uint64_t suffix_length() const noexcept { return round_ - suffix_start_; }

  // Longest valid window seen anywhere in the execution (>= suffix_length()).
  // For the probabilistic counters of Section 5 this is the interesting
  // quantity: they stabilise and then fail with small probability per round,
  // so agreement comes in long windows rather than one infinite suffix.
  std::uint64_t max_window() const noexcept { return std::max(max_window_, suffix_length()); }

 private:
  std::uint64_t modulus_;
  std::uint64_t round_ = 0;
  std::uint64_t suffix_start_ = 0;
  std::uint64_t max_window_ = 0;
  bool prev_agreed_ = false;
  std::uint64_t prev_value_ = 0;
};

}  // namespace synccount::sim
