// Columnar binary trace format ("bin"), the third TraceSink format.
//
// JSONL traces spend most of their bytes re-printing field names and decimal
// digits; at million-cell scale the trace file dwarfs the results it
// records. The binary format stores each field as a column inside per-group
// blocks, encoded to exploit what trace columns actually look like:
//
//   * cell indices are consecutive within a group      -> varint deltas
//   * adversary/placement are constant within a group  -> one varint each
//   * round counts cluster tightly                     -> zigzag varint deltas
//   * stabilised is a bool                             -> bitmap
//   * avg_pulls needs bit-exact round-trips            -> raw little-endian
//     IEEE doubles (byte-compare of traces must keep working)
//
// File layout: one header block, then one block per (adversary, placement)
// group, in group order. Every block is
//
//   varint(payload_size) || payload || u32le crc32(payload)
//
// reusing util::crc32 like the JSONL wire lines, so a torn tail or bit flip
// fails loudly at read time and resume can trim to whole blocks
// (truncate_to_blocks -- the binary analogue of truncate_to_lines, with
// blocks aligned to group boundaries exactly like the group-boundary commits
// of the other formats).
//
// The encoding is a pure function of the rows: no timestamps, no map
// iteration, no float re-formatting -- so like the JSONL/CSV formats the
// bytes are identical across thread counts and execution backends.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace synccount::sim {

// One execution's trace row: the same fields as a JSONL trace line, with
// adversary/placement as indices into the header's name tables. Per-round
// outputs are not representable ("bin" traces are summaries; use jsonl with
// outputs=true for full transcripts).
struct TraceRow {
  std::uint64_t cell = 0;
  std::uint32_t adversary = 0;  // index into TraceHeader::adversaries
  std::uint32_t placement = 0;  // index into TraceHeader::placements
  int seed_index = 0;           // implicit: row position within its group
  std::uint64_t seed = 0;
  std::uint64_t rounds = 0;
  bool stabilised = false;
  std::uint64_t stabilisation_round = 0;
  std::uint64_t suffix_length = 0;
  std::uint64_t max_window = 0;
  std::uint64_t max_pulls = 0;
  double avg_pulls = 0.0;
};

struct TraceHeader {
  std::vector<std::string> adversaries;
  std::vector<std::string> placements;
};

// The framed header block (magic + format version + grid name tables).
std::string encode_trace_header(const TraceHeader& header);

// The framed block for one group's rows (cells in cell order). `rows` must
// be non-empty and share one (adversary, placement).
std::string encode_trace_block(std::uint64_t group, const std::vector<TraceRow>& rows);

// A decoded binary trace file.
struct BinaryTrace {
  TraceHeader header;
  std::vector<TraceRow> rows;    // concatenated group rows, in cell order
  std::size_t blocks = 0;        // total blocks read, header included
};

// Decodes a whole file's bytes. Throws (SC_CHECK) on a missing/corrupt
// header, a CRC mismatch, or trailing garbage -- partial files are the
// caller's business (see truncate_to_blocks).
BinaryTrace read_binary_trace(std::string_view bytes);

// Truncates `path` to its first `blocks` whole CRC-valid blocks (header
// block included in the count): the resume surgery for binary traces, where
// block k+1 holds exactly the rows of the k-th finished group. Throws when
// the file's valid prefix has fewer blocks than requested.
void truncate_to_blocks(const std::string& path, std::uint64_t blocks);

}  // namespace synccount::sim
