// Fault-placement policies: which of the n nodes are Byzantine.
//
// For the boosted constructions of Section 3 the *placement* matters: the
// adversary corrupts whole blocks most effectively by concentrating f + 1
// faults per block (making the block faulty) in up to m - 1 = ceil(k/2) - 1
// blocks. The policies below cover the interesting placements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "counting/algorithm.hpp"

namespace synccount::sim {

// F smallest node ids.
std::vector<bool> faults_prefix(int n, int count);

// Evenly spread across [n].
std::vector<bool> faults_spread(int n, int count);

// Uniformly random subset of size `count`.
std::vector<bool> faults_random(int n, int count, util::Rng& rng);

// Concentrated block corruption for a block structure of `k` blocks of size
// `block_size`: fully corrupts blocks 0, 1, ... (f_inner + 1 faults each,
// i.e. just over the per-block tolerance) until `count` faults are placed.
// This is the worst-case placement for Theorem 1 (maximises faulty blocks).
std::vector<bool> faults_block_concentrated(int k, int block_size, int f_inner, int count);

// Same, but corrupts the *leader-eligible* blocks (indices < ceil(k/2))
// first; these are the blocks the pointer mechanism can elect.
std::vector<bool> faults_leader_blocks(int k, int block_size, int f_inner, int count);

std::vector<counting::NodeId> fault_ids(const std::vector<bool>& faulty);
int fault_count(const std::vector<bool>& faulty);

}  // namespace synccount::sim
