#include "sim/engine.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "counting/table_algorithm.hpp"
#include "sim/batch_runner.hpp"
#include "sim/composed_runner.hpp"
#include "sim/sink.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace synccount::sim {

std::uint64_t cell_seed(std::uint64_t base_seed, std::size_t cell_index) noexcept {
  return util::hash_combine(base_seed, static_cast<std::uint64_t>(cell_index));
}

void AggregateResult::fold(const RunResult& r) {
  ++runs;
  rounds.add(static_cast<double>(r.rounds));
  avg_pulls.add(r.avg_pulls_per_round);
  max_pulls = std::max(max_pulls, r.max_pulls_per_round);
  if (r.stabilised) {
    ++stabilised;
    stabilisation.add(static_cast<double>(r.stabilisation_round));
  }
}

void AggregateResult::merge(const AggregateResult& other) {
  runs += other.runs;
  stabilised += other.stabilised;
  stabilisation.merge(other.stabilisation);
  rounds.merge(other.rounds);
  avg_pulls.merge(other.avg_pulls);
  max_pulls = std::max(max_pulls, other.max_pulls);
}

AggregateResult merge_aggregates(std::span<const AggregateResult> partials) {
  AggregateResult total;
  for (const AggregateResult& p : partials) total.merge(p);
  return total;
}

std::size_t group_count(const ExperimentSpec& spec) {
  // An empty placement list still runs one fault-free placement (see run()).
  return spec.adversaries.size() * std::max<std::size_t>(spec.placements.size(), 1);
}

counting::AlgorithmPtr spec_algorithm(const ExperimentSpec& spec) {
  if (spec.algo != nullptr) return spec.algo;
  if (spec.algorithm.has_value()) return counting::build(*spec.algorithm);
  SC_CHECK(!spec.variants.empty(),
           "ExperimentSpec needs one of algo/algorithm/variants");
  return counting::build(spec.variants.front());
}

ShardPlan plan_shards(const ExperimentSpec& spec, int shards, int shard) {
  SC_CHECK(shards >= 1, "need at least one shard");
  SC_CHECK(shard >= 0 && shard < shards, "shard index out of range");
  const std::size_t G = group_count(spec);
  const auto K = static_cast<std::size_t>(shards);
  const auto i = static_cast<std::size_t>(shard);
  const std::size_t base = G / K;
  const std::size_t extra = G % K;  // the first `extra` shards get one more
  ShardPlan plan;
  plan.shards = shards;
  plan.shard = shard;
  plan.group_begin = i * base + std::min(i, extra);
  plan.group_end = plan.group_begin + base + (i < extra ? 1 : 0);
  return plan;
}

std::string AggregateResult::fmt_rounds() const {
  if (stabilised == 0) return "-";
  return util::fmt_double(stabilisation.mean(), 0) + " (max " +
         util::fmt_double(stabilisation.max(), 0) + ")";
}

AggregateResult ExperimentResult::aggregate(std::optional<std::size_t> adversary,
                                            std::optional<std::size_t> placement) const {
  AggregateResult agg(stats);
  for (const auto& c : cells) {
    if (adversary && c.adversary != *adversary) continue;
    if (placement && c.placement != *placement) continue;
    agg.fold(c.result);
  }
  return agg;
}

Engine::Engine(int threads) {
  if (threads != 1) pool_ = std::make_unique<util::ThreadPool>(threads);
}

Engine::~Engine() = default;

int Engine::threads() const noexcept { return pool_ ? pool_->size() : 1; }

ExperimentResult Engine::run(const ExperimentSpec& spec) const {
  return run(spec, plan_shards(spec, 1, 0), {});
}

ExperimentResult Engine::run(const ExperimentSpec& spec, const SinkList& sinks) const {
  return run(spec, plan_shards(spec, 1, 0), sinks);
}

ExperimentResult Engine::run(const ExperimentSpec& spec, const ShardPlan& shard,
                             const SinkList& sinks) const {
  const int algo_sources = static_cast<int>(spec.algo != nullptr) +
                           static_cast<int>(spec.algorithm.has_value()) +
                           static_cast<int>(!spec.variants.empty());
  SC_CHECK(algo_sources == 1,
           "ExperimentSpec needs exactly one of algo/algorithm/variants");
  SC_CHECK(!spec.adversaries.empty(), "ExperimentSpec needs at least one adversary");
  SC_CHECK(spec.seeds > 0, "ExperimentSpec needs seeds > 0");
  SC_CHECK(spec.explicit_seeds.empty() ||
               spec.explicit_seeds.size() == static_cast<std::size_t>(spec.seeds),
           "explicit_seeds must be empty or have exactly `seeds` entries");
  SC_CHECK(spec.variants.empty() ||
               spec.variants.size() == static_cast<std::size_t>(spec.seeds),
           "variants must be empty or have exactly `seeds` entries");
  SC_CHECK(shard.group_begin <= shard.group_end && shard.group_end <= group_count(spec),
           "shard plan does not fit the experiment grid");

  static const std::vector<FaultPattern> kFaultFree = {{"", {}}};
  const std::vector<FaultPattern>& placements =
      spec.placements.empty() ? kFaultFree : spec.placements;

  // Resolve the declarative algorithm sources once; cells share the result
  // (library algorithms are immutable after construction). A variant axis
  // builds one algorithm per seed index, shared across groups.
  const counting::AlgorithmPtr shared_algo =
      spec.algo != nullptr ? spec.algo
      : spec.algorithm.has_value() ? counting::build(*spec.algorithm)
                                   : nullptr;
  std::vector<counting::AlgorithmPtr> variant_algos;
  variant_algos.reserve(spec.variants.size());
  for (const counting::AlgorithmSpec& v : spec.variants) {
    variant_algos.push_back(counting::build(v));
  }

  // What the runner must record, unioned over the sinks; recordings are
  // dropped again after delivery unless some sink retains them.
  bool rec_outputs = false, rec_states = false, retain = false;
  for (Sink* sink : sinks) {
    rec_outputs = rec_outputs || sink->wants_outputs();
    rec_states = rec_states || sink->wants_states();
    retain = retain || sink->retain_traces();
  }

  const std::size_t n_adv = spec.adversaries.size();
  const std::size_t n_pl = placements.size();
  const std::size_t n_seeds = static_cast<std::size_t>(spec.seeds);
  // The shard's slice: cells [cell_offset, cell_offset + n_cells) of the
  // global grid, whole (adversary, placement) groups only.
  const std::size_t cell_offset = shard.group_begin * n_seeds;
  const std::size_t n_cells = shard.groups() * n_seeds;

  // Resolve the horizon once if the algorithm is shared (the common case);
  // per-cell algorithms resolve inside the cell.
  const auto horizon = [&spec](const counting::CountingAlgorithm& algo) -> std::uint64_t {
    if (spec.max_rounds != 0) return spec.max_rounds;
    if (const auto bound = algo.stabilisation_bound()) return *bound + spec.extra_rounds;
    return spec.horizon_override != 0 ? spec.horizon_override : 20000;
  };

  ExperimentResult out;
  out.cells.resize(n_cells);
  out.stats = spec.stats;

  const auto seed_at = [&spec, n_seeds](std::size_t idx) {
    return spec.explicit_seeds.empty() ? cell_seed(spec.base_seed, idx)
                                       : spec.explicit_seeds[idx % n_seeds];
  };
  // `idx` is always the global cell index; the shard's outcomes occupy
  // out.cells[idx - cell_offset].
  const auto fill_cell_coords = [&](std::size_t idx) -> CellOutcome& {
    CellOutcome& cell = out.cells[idx - cell_offset];
    cell.cell_index = idx;
    cell.seed_index = static_cast<int>(idx % n_seeds);
    cell.placement = (idx / n_seeds) % n_pl;
    cell.adversary = idx / (n_seeds * n_pl);
    cell.seed = seed_at(idx);
    return cell;
  };

  const auto run_cell = [&](std::size_t idx) {
    CellOutcome& cell = fill_cell_coords(idx);

    RunConfig cfg;
    cfg.algo = variant_algos.empty()
                   ? shared_algo
                   : variant_algos[static_cast<std::size_t>(cell.seed_index)];
    cfg.faulty = placements[cell.placement].faulty;
    cfg.max_rounds = horizon(*cfg.algo);
    cfg.seed = cell.seed;
    cfg.stop_after_stable = spec.stop_after_stable;
    cfg.record_outputs = rec_outputs;
    cfg.record_states = rec_states;
    cfg.initial = spec.initial;

    const std::string& name = spec.adversaries[cell.adversary];
    auto adversary = spec.adversary_factory ? spec.adversary_factory(name)
                                            : make_adversary(name);
    SC_CHECK(adversary != nullptr, "adversary factory returned null for: " + name);
    cell.result = run_execution(cfg, *adversary, spec.margin);
  };

  // Ordered sink delivery: a group is delivered (cells in cell order, then
  // the group aggregate) once it and every group before it in the shard has
  // finished -- so streaming sinks observe a deterministic prefix no matter
  // which threads finish first. One thread delivers at a time; sinks need
  // not be thread-safe.
  const std::size_t n_groups = shard.groups();

  // Always-on per-group profiling counters (sim/profile.hpp): backend tag +
  // node-rounds packed in one atomic word, task nanos in a second. Tasks of
  // the same group may run on different threads, hence atomics; readers wait
  // for the pool to join. Value-initialised to zero (= GroupProfile::kIdle).
  const auto prof_packed = std::make_unique<std::atomic<std::uint64_t>[]>(n_groups);
  const auto prof_nanos = std::make_unique<std::atomic<std::uint64_t>[]>(n_groups);
  const auto record_profile = [&](std::size_t local_group, std::uint64_t tag,
                                  std::uint64_t work,
                                  ProfileClock::time_point t0) {
    profile_record(prof_packed[local_group], tag, work);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        profile_now() - t0)
                        .count();
    prof_nanos[local_group].fetch_add(static_cast<std::uint64_t>(ns),
                                      std::memory_order_relaxed);
  };
  // Work unit both backends share: executed rounds x correct nodes.
  const auto node_rounds_of = [](const RunResult& r) {
    return r.rounds * static_cast<std::uint64_t>(r.correct_ids.size());
  };

  std::mutex sink_mu;
  std::vector<std::size_t> cells_pending(n_groups, n_seeds);
  std::size_t next_delivery = 0;  // local group index
  const auto group_finished = [&](std::size_t local_group, std::size_t count) {
    if (sinks.empty()) return;
    const std::lock_guard<std::mutex> lock(sink_mu);
    cells_pending[local_group] -= count;
    while (next_delivery < n_groups && cells_pending[next_delivery] == 0) {
      const std::size_t first = next_delivery * n_seeds;
      AggregateResult agg(spec.stats);
      for (std::size_t k = 0; k < n_seeds; ++k) {
        CellOutcome& cell = out.cells[first + k];
        for (Sink* sink : sinks) sink->on_cell(cell);
        agg.fold(cell.result);
        if ((rec_outputs || rec_states) && !retain) {
          cell.result.outputs = {};
          cell.result.states = {};
        }
      }
      for (Sink* sink : sinks) {
        sink->on_group(shard.group_begin + next_delivery, agg);
      }
      ++next_delivery;
    }
  };

  // Batch eligibility: a shared batch-supported algorithm (TableAlgorithm or
  // a composed boosted/pulling tower), no per-seed variants, and a batchable
  // adversary (probed per name on a library instance). Eligible (adversary,
  // placement) groups run their seed range through the batched backend in
  // lockstep chunks; every other cell stays on the scalar runner. The
  // composed hierarchy is compiled once here and shared by every chunk task.
  const bool probe_batch = spec.backend == Backend::kAuto && shared_algo != nullptr &&
                           !spec.adversary_factory;
  const bool is_table =
      probe_batch &&
      std::dynamic_pointer_cast<const counting::TableAlgorithm>(shared_algo) != nullptr;
  const auto composed =
      probe_batch && !is_table ? ComposedCompiledTable::compile(shared_algo) : nullptr;
  const bool algo_batchable = is_table || composed != nullptr;
  std::vector<bool> adv_batchable(n_adv, false);
  if (algo_batchable) {
    for (std::size_t a = 0; a < n_adv; ++a) {
      adv_batchable[a] = make_adversary(spec.adversaries[a])->batchable();
    }
  }

  for (Sink* sink : sinks) sink->on_start(spec, shard);

  // Lanes per batch task: table groups fill one full-width multi-word block
  // (64 * default_batch_words() lanes per table pass); composed blocks are
  // single-word. Chunking at the block size keeps one task == one block, so
  // widening the planes does not shrink the per-task work below it.
  const std::size_t chunk =
      is_table ? 64 * static_cast<std::size_t>(default_batch_words()) : 64;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n_cells);
  for (std::size_t g = shard.group_begin; g < shard.group_end; ++g) {
    const std::size_t a = g / n_pl;
    const std::size_t p = g % n_pl;
    const std::size_t group = g * n_seeds;
    const std::size_t local_group = g - shard.group_begin;
    if (algo_batchable && adv_batchable[a]) {
      out.batched_cells += n_seeds;
      for (std::size_t s0 = 0; s0 < n_seeds; s0 += chunk) {
        const std::size_t count = std::min(chunk, n_seeds - s0);
        tasks.push_back([&, a, group, s0, count, p, local_group] {
          const auto t0 = profile_now();
          BatchConfig bc;
          bc.algo = shared_algo;
          bc.composed = composed;
          bc.faulty = placements[p].faulty;
          bc.max_rounds = horizon(*shared_algo);
          bc.margin = spec.margin;
          bc.stop_after_stable = spec.stop_after_stable;
          bc.record_outputs = rec_outputs;
          bc.record_states = rec_states;
          bc.initial = spec.initial;
          const std::string& name = spec.adversaries[a];
          bc.adversary = [&name] { return make_adversary(name); };
          bc.seeds.resize(count);
          for (std::size_t k = 0; k < count; ++k) bc.seeds[k] = seed_at(group + s0 + k);
          auto results = run_batch(bc);
          std::uint64_t work = 0;
          for (std::size_t k = 0; k < count; ++k) {
            work += node_rounds_of(results[k]);
            fill_cell_coords(group + s0 + k).result = std::move(results[k]);
          }
          record_profile(local_group,
                         is_table ? GroupProfile::kBatched : GroupProfile::kComposed,
                         work, t0);
          group_finished(local_group, count);
        });
      }
    } else {
      for (std::size_t s = 0; s < n_seeds; ++s) {
        tasks.push_back([&, local_group, idx = group + s] {
          const auto t0 = profile_now();
          run_cell(idx);
          record_profile(local_group, GroupProfile::kScalar,
                         node_rounds_of(out.cells[idx - cell_offset].result), t0);
          group_finished(local_group, 1);
        });
      }
    }
  }

  const auto t0 = profile_now();
  if (pool_) {
    // Contain task failures (a sink hitting ENOSPC, a bad adversary name):
    // an exception escaping into a pool worker would std::terminate the
    // process, so capture the first one and rethrow it on this thread.
    std::mutex failure_mu;
    std::exception_ptr failure;
    pool_->parallel_for(tasks.size(), [&](std::size_t i) {
      try {
        tasks[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mu);
        if (!failure) failure = std::current_exception();
      }
    });
    if (failure) std::rethrow_exception(failure);
  } else {
    for (auto& task : tasks) task();
  }
  out.wall_seconds =
      std::chrono::duration<double>(profile_now() - t0).count();

  out.profiles.resize(n_groups);
  for (std::size_t lg = 0; lg < n_groups; ++lg) {
    out.profiles[lg].packed = prof_packed[lg].load(std::memory_order_relaxed);
    out.profiles[lg].nanos = prof_nanos[lg].load(std::memory_order_relaxed);
  }

  // Deterministic fold, independent of which thread ran what: per-group
  // aggregates in group order, merged in group order. For exact mode this is
  // bit-identical to the flat cell-order fold (merge replays samples); for
  // sketch mode it IS the defined fold order -- the same left-fold over
  // group aggregates the wire-level sharded paths use (ShardPartial::total,
  // merge_partials), which is what makes a merged sharded sweep byte-compare
  // equal to a single-process run.
  out.total = AggregateResult(spec.stats);
  for (std::size_t lg = 0; lg < n_groups; ++lg) {
    AggregateResult agg(spec.stats);
    const std::size_t first = lg * n_seeds;
    for (std::size_t k = 0; k < n_seeds; ++k) agg.fold(out.cells[first + k].result);
    out.total.merge(agg);
  }
  for (Sink* sink : sinks) sink->on_done(out);
  return out;
}

}  // namespace synccount::sim
