#include "sim/engine.hpp"

#include <chrono>

#include "counting/table_algorithm.hpp"
#include "sim/batch_runner.hpp"
#include "sim/composed_runner.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace synccount::sim {

std::uint64_t cell_seed(std::uint64_t base_seed, std::size_t cell_index) noexcept {
  return util::hash_combine(base_seed, static_cast<std::uint64_t>(cell_index));
}

void AggregateResult::fold(const RunResult& r) {
  ++runs;
  rounds.add(static_cast<double>(r.rounds));
  avg_pulls.add(r.avg_pulls_per_round);
  max_pulls = std::max(max_pulls, r.max_pulls_per_round);
  if (r.stabilised) {
    ++stabilised;
    stabilisation.add(static_cast<double>(r.stabilisation_round));
  }
}

void AggregateResult::merge(const AggregateResult& other) {
  runs += other.runs;
  stabilised += other.stabilised;
  stabilisation.merge(other.stabilisation);
  rounds.merge(other.rounds);
  avg_pulls.merge(other.avg_pulls);
  max_pulls = std::max(max_pulls, other.max_pulls);
}

AggregateResult merge_aggregates(std::span<const AggregateResult> partials) {
  AggregateResult total;
  for (const AggregateResult& p : partials) total.merge(p);
  return total;
}

std::size_t group_count(const ExperimentSpec& spec) {
  // An empty placement list still runs one fault-free placement (see run()).
  return spec.adversaries.size() * std::max<std::size_t>(spec.placements.size(), 1);
}

ShardPlan plan_shards(const ExperimentSpec& spec, int shards, int shard) {
  SC_CHECK(shards >= 1, "need at least one shard");
  SC_CHECK(shard >= 0 && shard < shards, "shard index out of range");
  const std::size_t G = group_count(spec);
  const auto K = static_cast<std::size_t>(shards);
  const auto i = static_cast<std::size_t>(shard);
  const std::size_t base = G / K;
  const std::size_t extra = G % K;  // the first `extra` shards get one more
  ShardPlan plan;
  plan.shards = shards;
  plan.shard = shard;
  plan.group_begin = i * base + std::min(i, extra);
  plan.group_end = plan.group_begin + base + (i < extra ? 1 : 0);
  return plan;
}

std::string AggregateResult::fmt_rounds() const {
  if (stabilised == 0) return "-";
  return util::fmt_double(stabilisation.mean(), 0) + " (max " +
         util::fmt_double(stabilisation.max(), 0) + ")";
}

AggregateResult ExperimentResult::aggregate(std::optional<std::size_t> adversary,
                                            std::optional<std::size_t> placement) const {
  AggregateResult agg;
  for (const auto& c : cells) {
    if (adversary && c.adversary != *adversary) continue;
    if (placement && c.placement != *placement) continue;
    agg.fold(c.result);
  }
  return agg;
}

Engine::Engine(int threads) {
  if (threads != 1) pool_ = std::make_unique<util::ThreadPool>(threads);
}

Engine::~Engine() = default;

int Engine::threads() const noexcept { return pool_ ? pool_->size() : 1; }

ExperimentResult Engine::run(const ExperimentSpec& spec) const {
  return run(spec, plan_shards(spec, 1, 0));
}

ExperimentResult Engine::run(const ExperimentSpec& spec, const ShardPlan& shard) const {
  SC_CHECK(spec.algo != nullptr || spec.algo_factory != nullptr,
           "ExperimentSpec needs an algorithm or an algorithm factory");
  SC_CHECK(!spec.adversaries.empty(), "ExperimentSpec needs at least one adversary");
  SC_CHECK(spec.seeds > 0, "ExperimentSpec needs seeds > 0");
  SC_CHECK(spec.explicit_seeds.empty() ||
               spec.explicit_seeds.size() == static_cast<std::size_t>(spec.seeds),
           "explicit_seeds must be empty or have exactly `seeds` entries");
  SC_CHECK(shard.group_begin <= shard.group_end && shard.group_end <= group_count(spec),
           "shard plan does not fit the experiment grid");

  static const std::vector<FaultPattern> kFaultFree = {{"", {}}};
  const std::vector<FaultPattern>& placements =
      spec.placements.empty() ? kFaultFree : spec.placements;

  const std::size_t n_adv = spec.adversaries.size();
  const std::size_t n_pl = placements.size();
  const std::size_t n_seeds = static_cast<std::size_t>(spec.seeds);
  // The shard's slice: cells [cell_offset, cell_offset + n_cells) of the
  // global grid, whole (adversary, placement) groups only.
  const std::size_t cell_offset = shard.group_begin * n_seeds;
  const std::size_t n_cells = shard.groups() * n_seeds;

  // Resolve the horizon once if the algorithm is shared (the common case);
  // per-cell algorithms resolve inside the cell.
  const auto horizon = [&spec](const counting::CountingAlgorithm& algo) -> std::uint64_t {
    if (spec.max_rounds != 0) return spec.max_rounds;
    if (const auto bound = algo.stabilisation_bound()) return *bound + spec.extra_rounds;
    return spec.horizon_override != 0 ? spec.horizon_override : 20000;
  };

  ExperimentResult out;
  out.cells.resize(n_cells);

  const auto seed_at = [&spec, n_seeds](std::size_t idx) {
    return spec.explicit_seeds.empty() ? cell_seed(spec.base_seed, idx)
                                       : spec.explicit_seeds[idx % n_seeds];
  };
  // `idx` is always the global cell index; the shard's outcomes occupy
  // out.cells[idx - cell_offset].
  const auto fill_cell_coords = [&](std::size_t idx) -> CellOutcome& {
    CellOutcome& cell = out.cells[idx - cell_offset];
    cell.cell_index = idx;
    cell.seed_index = static_cast<int>(idx % n_seeds);
    cell.placement = (idx / n_seeds) % n_pl;
    cell.adversary = idx / (n_seeds * n_pl);
    cell.seed = seed_at(idx);
    return cell;
  };

  const auto run_cell = [&](std::size_t idx) {
    CellOutcome& cell = fill_cell_coords(idx);

    RunConfig cfg;
    cfg.algo = spec.algo_factory ? spec.algo_factory(idx) : spec.algo;
    cfg.faulty = placements[cell.placement].faulty;
    cfg.max_rounds = horizon(*cfg.algo);
    cfg.seed = cell.seed;
    cfg.stop_after_stable = spec.stop_after_stable;
    cfg.record_outputs = spec.record_outputs;
    cfg.record_states = spec.record_states;
    cfg.initial = spec.initial;

    const std::string& name = spec.adversaries[cell.adversary];
    auto adversary = spec.adversary_factory ? spec.adversary_factory(name)
                                            : make_adversary(name);
    SC_CHECK(adversary != nullptr, "adversary factory returned null for: " + name);
    cell.result = run_execution(cfg, *adversary, spec.margin);
  };

  // Batch eligibility: a shared batch-supported algorithm (TableAlgorithm or
  // a composed boosted/pulling tower), no per-cell factories, and a batchable
  // adversary (probed per name on a library instance). Eligible (adversary,
  // placement) groups run their seed range through the batched backend in
  // lockstep chunks; every other cell stays on the scalar runner. The
  // composed hierarchy is compiled once here and shared by every chunk task.
  const bool probe_batch = spec.backend == Backend::kAuto && spec.algo != nullptr &&
                           !spec.algo_factory && !spec.adversary_factory;
  const bool is_table =
      probe_batch &&
      std::dynamic_pointer_cast<const counting::TableAlgorithm>(spec.algo) != nullptr;
  const auto composed =
      probe_batch && !is_table ? ComposedCompiledTable::compile(spec.algo) : nullptr;
  const bool algo_batchable = is_table || composed != nullptr;
  std::vector<bool> adv_batchable(n_adv, false);
  if (algo_batchable) {
    for (std::size_t a = 0; a < n_adv; ++a) {
      adv_batchable[a] = make_adversary(spec.adversaries[a])->batchable();
    }
  }

  constexpr std::size_t kChunk = 64;  // lanes per batch task (one plane word)
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n_cells);
  for (std::size_t g = shard.group_begin; g < shard.group_end; ++g) {
    const std::size_t a = g / n_pl;
    const std::size_t p = g % n_pl;
    const std::size_t group = g * n_seeds;
    if (algo_batchable && adv_batchable[a]) {
      out.batched_cells += n_seeds;
      for (std::size_t s0 = 0; s0 < n_seeds; s0 += kChunk) {
        const std::size_t count = std::min(kChunk, n_seeds - s0);
        tasks.push_back([&, a, group, s0, count, p] {
          BatchConfig bc;
          bc.algo = spec.algo;
          bc.composed = composed;
          bc.faulty = placements[p].faulty;
          bc.max_rounds = horizon(*spec.algo);
          bc.margin = spec.margin;
          bc.stop_after_stable = spec.stop_after_stable;
          bc.record_outputs = spec.record_outputs;
          bc.record_states = spec.record_states;
          bc.initial = spec.initial;
          const std::string& name = spec.adversaries[a];
          bc.adversary = [&name] { return make_adversary(name); };
          bc.seeds.resize(count);
          for (std::size_t k = 0; k < count; ++k) bc.seeds[k] = seed_at(group + s0 + k);
          auto results = run_batch(bc);
          for (std::size_t k = 0; k < count; ++k) {
            fill_cell_coords(group + s0 + k).result = std::move(results[k]);
          }
        });
      }
    } else {
      for (std::size_t s = 0; s < n_seeds; ++s) {
        tasks.push_back([&run_cell, idx = group + s] { run_cell(idx); });
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (pool_) {
    pool_->parallel_for(tasks.size(), [&tasks](std::size_t i) { tasks[i](); });
  } else {
    for (auto& task : tasks) task();
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Deterministic fold: cell order, independent of which thread ran what.
  for (const auto& c : out.cells) out.total.fold(c.result);
  return out;
}

}  // namespace synccount::sim
