// Cheap always-on per-group profiling counters.
//
// The engine records, for every (adversary, placement) group it runs, which
// execution backend the group landed on and how much simulated work it did.
// The counters are the observation layer a future adaptive backend picker
// will read (ROADMAP): before the engine can *choose* between the scalar,
// bit-parallel and composed paths per group, it has to see what each group
// actually costs on the path the static eligibility rules pick today.
//
// The counter itself uses the inline shifted-counter idiom: one 64-bit word
// packs a 2-bit backend tag in the top bits, a saturation guard bit below
// them, and a 61-bit work count in the low bits -- so the hot path is a
// single fetch-free-when-uncontended atomic RMW per task, cheap enough to
// stay on in every run. 2^61 node-rounds is ~decades of simulation, so the
// guard bit is a correctness backstop, not an expected state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace synccount::sim {

// The one sanctioned wall-clock read in the simulation layer. Profiling
// counters and elapsed-time reporting route through here so synccount-lint's
// nondet rule can see, from a single allowlisted site, that clock values feed
// observability only -- never wire bytes or experiment results.
using ProfileClock = std::chrono::steady_clock;

inline ProfileClock::time_point profile_now() noexcept {
  return ProfileClock::now();
}

struct GroupProfile {
  // Backend tag values (bits [63:62] of `packed`).
  static constexpr std::uint64_t kIdle = 0;      // group ran no cells
  static constexpr std::uint64_t kScalar = 1;    // per-cell scalar runner
  static constexpr std::uint64_t kBatched = 2;   // bit-parallel table backend
  static constexpr std::uint64_t kComposed = 3;  // composed-tower backend

  static constexpr int kTagShift = 62;
  static constexpr std::uint64_t kOverflowBit = std::uint64_t{1} << 61;
  static constexpr std::uint64_t kCountMask = kOverflowBit - 1;  // bits [60:0]

  // tag | overflow | node-rounds, as laid out above. Work is counted in
  // node-rounds (executed rounds x correct nodes, summed over the group's
  // cells): the unit both backends share, so per-group costs compare across
  // backend choices.
  std::uint64_t packed = 0;
  // Sum of task wall-times attributed to this group, in nanoseconds. Tasks
  // run concurrently, so this is aggregate compute time, not elapsed time.
  std::uint64_t nanos = 0;

  std::uint64_t backend() const noexcept { return packed >> kTagShift; }
  std::uint64_t node_rounds() const noexcept { return packed & kCountMask; }
  bool saturated() const noexcept { return (packed & kOverflowBit) != 0; }

  std::string backend_name() const {
    switch (backend()) {
      case kScalar: return "scalar";
      case kBatched: return "batched";
      case kComposed: return "composed";
      default: return "idle";
    }
  }
};

// Merges `work` node-rounds executed on backend `tag` into a live packed
// counter. Saturates at kCountMask and latches the overflow bit instead of
// carrying into the tag field; relaxed ordering is enough because readers
// only look after the pool joins.
inline void profile_record(std::atomic<std::uint64_t>& packed, std::uint64_t tag,
                           std::uint64_t work) noexcept {
  std::uint64_t cur = packed.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = (cur & ~(std::uint64_t{3} << GroupProfile::kTagShift)) |
           (tag << GroupProfile::kTagShift);
    if ((next & GroupProfile::kOverflowBit) == 0) {
      const std::uint64_t count = next & GroupProfile::kCountMask;
      const std::uint64_t sum = count + work;
      next &= ~GroupProfile::kCountMask;
      if (sum < count || sum > GroupProfile::kCountMask) {
        next |= GroupProfile::kOverflowBit | GroupProfile::kCountMask;
      } else {
        next |= sum;
      }
    }
  } while (!packed.compare_exchange_weak(cur, next, std::memory_order_relaxed));
}

}  // namespace synccount::sim
