#include "sim/batch_runner.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif
#include <span>

#include "sim/checker.hpp"
#include "sim/composed_runner.hpp"
#include "sim/faults.hpp"
#include "util/check.hpp"

namespace synccount::sim {

int default_batch_words() noexcept {
  static const int words = [] {
    // synccount-lint: allow(nondet) -- documented SYNCCOUNT_BATCH_WORDS pin,
    // read once; plane width changes throughput only, results stay bit-equal.
    if (const char* env = std::getenv("SYNCCOUNT_BATCH_WORDS")) {
      const int v = std::atoi(env);
      if (v == 1 || v == 2 || v == 4 || v == 8) return v;
    }
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f")) return 8;
    if (__builtin_cpu_supports("avx2")) return 4;
    return 2;
#else
    return 4;
#endif
  }();
  return words;
}

namespace {

using counting::CompiledTable;
using counting::NodeId;

constexpr std::size_t kLanesPerWord = 64;

#if defined(__x86_64__)
// Transposes 64 contiguous 2-bit state indices (one byte each) into a pair of
// bitplane words via byte-lane movemask: shifting bit b of each byte to the
// byte's MSB and taking VPMOVMSKB yields 32 plane bits per vector. Cross-byte
// spill from the 64-bit-lane shift never lands on an MSB, so the extraction
// is exact for byte values < 4.
__attribute__((target("avx2"))) inline void planes_from_bytes_avx2(const std::uint8_t* src,
                                                                   std::uint64_t& b0,
                                                                   std::uint64_t& b1) {
  // memcpy, not reinterpret_cast + loadu: same single vmovdqu instruction,
  // but without forming a pointer whose strict-aliasing status is debatable.
  __m256i lo;
  __m256i hi;
  std::memcpy(&lo, src, sizeof(lo));
  std::memcpy(&hi, src + 32, sizeof(hi));
  const auto l0 = static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_slli_epi64(lo, 7)));
  const auto h0 = static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_slli_epi64(hi, 7)));
  const auto l1 = static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_slli_epi64(lo, 6)));
  const auto h1 = static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_slli_epi64(hi, 6)));
  b0 = static_cast<std::uint64_t>(l0) | (static_cast<std::uint64_t>(h0) << 32);
  b1 = static_cast<std::uint64_t>(l1) | (static_cast<std::uint64_t>(h1) << 32);
}
#endif

// Portable transpose of `count` (<= 64) state-index bytes into bitplanes.
inline void planes_from_bytes(const std::uint8_t* src, std::size_t count, std::uint64_t& b0,
                              std::uint64_t& b1) noexcept {
#if defined(__x86_64__)
  static const bool kHaveAvx2 = __builtin_cpu_supports("avx2");
  if (kHaveAvx2 && count == kLanesPerWord) {
    planes_from_bytes_avx2(src, b0, b1);
    return;
  }
#endif
  b0 = 0;
  b1 = 0;
  for (std::size_t b = 0; b < count; ++b) {
    const auto v = static_cast<std::uint64_t>(src[b]);
    b0 |= (v & 1) << b;
    b1 |= ((v >> 1) & 1) << b;
  }
}

// One block of up to 64 * NW lanes advanced in lockstep. NW is the plane
// word count (1/2/4/8): every bitplane is an array of NW uint64_t, so the
// word-wise loops below auto-vectorise into 64*NW-bit operations. Hot
// per-lane state (rng, adversary, checker) lives in parallel arrays; the
// cold result/state vectors sit in LaneCold so the round loop touches as few
// lines as possible.
template <int NW>
class Block {
 public:
  using Mask = std::array<std::uint64_t, NW>;
  static constexpr std::size_t kLanes = kLanesPerWord * static_cast<std::size_t>(NW);

  Block(const BatchConfig& cfg, const counting::TableAlgorithm& algo,
        std::span<const std::uint64_t> seeds, bool bit_sliced)
      : cfg_(cfg),
        algo_(algo),
        ct_(algo.compiled()),
        n_(ct_.n),
        ns_(ct_.num_states),
        W_(seeds.size()),
        bit_sliced_(bit_sliced) {
    SC_REQUIRE(W_ <= kLanes, "batch block overflow");
    const auto nn = static_cast<std::size_t>(n_);

    std::vector<bool> faulty = cfg.faulty;
    if (faulty.empty()) faulty.assign(nn, false);
    SC_CHECK(faulty.size() == nn, "fault vector size mismatch");
    SC_CHECK(fault_count(faulty) <= algo_.resilience(),
             "more faults than the algorithm's resilience");
    faulty_ids_ = fault_ids(faulty);
    sender_kind_.assign(nn, -1);
    for (std::size_t k = 0; k < faulty_ids_.size(); ++k) {
      sender_kind_[static_cast<std::size_t>(faulty_ids_[k])] = static_cast<int>(k);
    }
    for (int i = 0; i < n_; ++i) {
      if (!faulty[static_cast<std::size_t>(i)]) correct_.push_back(i);
    }
    SC_CHECK(!correct_.empty(), "all nodes faulty");
    prof_.assign(correct_.size(), 0);

    margin_ = resolve_margin(cfg.margin, cfg.max_rounds, algo_.modulus());

    if (bit_sliced_) {
      p_.assign(nn, {});
      np_.assign(nn, {});
      eqc_.assign(nn, {});
      eqp_.assign(nn, nullptr);
      // Output planes: hv_[j][b] is the set of state values whose output has
      // bit b set for correct node j; ORing their equality masks yields the
      // node's output bitplane.
      std::uint64_t max_out = 0;
      for (const NodeId i : correct_) {
        for (std::uint64_t v = 0; v < ns_; ++v) {
          max_out = std::max<std::uint64_t>(max_out, ct_.out(i, static_cast<std::uint8_t>(v)));
        }
      }
      out_bits_ = static_cast<int>(std::bit_width(max_out));
      hv_.assign(correct_.size() * static_cast<std::size_t>(out_bits_), 0);
      ob_.assign(correct_.size() * static_cast<std::size_t>(out_bits_), Mask{});
      for (std::size_t j = 0; j < correct_.size(); ++j) {
        for (int b = 0; b < out_bits_; ++b) {
          std::uint8_t mask = 0;
          for (std::uint64_t v = 0; v < ns_; ++v) {
            if ((ct_.out(correct_[j], static_cast<std::uint8_t>(v)) >> b) & 1) {
              mask |= static_cast<std::uint8_t>(1u << v);
            }
          }
          hv_[j * static_cast<std::size_t>(out_bits_) + static_cast<std::size_t>(b)] = mask;
        }
      }
    } else {
      SC_CHECK(ct_.g.size() < (1ULL << 31), "table too large for the SoA kernel");
      cur_.assign(nn * W_, 0);
      nxt_.assign(nn * W_, 0);
      acc_.assign(W_, 0);
    }

    // Lane setup mirrors the scalar runner's preamble draw for draw.
    rngs_.reserve(W_);
    advs_.reserve(W_);
    checkers_.reserve(W_);
    lanes_.resize(W_);
    frs_.resize(W_);
    for (std::size_t l = 0; l < W_; ++l) {
      rngs_.emplace_back(seeds[l]);
      advs_.push_back(cfg.adversary());
      SC_CHECK(advs_.back() != nullptr, "batch adversary factory returned null");
      checkers_.emplace_back(algo_.modulus());
      LaneCold& ln = lanes_[l];
      ln.result.correct_ids = correct_;
      ln.states.resize(nn);
      if (!cfg.initial.empty()) {
        SC_CHECK(cfg.initial.size() == nn, "initial state vector size mismatch");
        for (std::size_t i = 0; i < nn; ++i) ln.states[i] = algo_.canonicalize(cfg.initial[i]);
      } else {
        for (auto& s : ln.states) s = counting::arbitrary_state(algo_, rngs_[l]);
      }
      for (int i = 0; i < n_; ++i) {
        set_idx(i, l, static_cast<std::uint8_t>(algo_.state_to_index(
                          ln.states[static_cast<std::size_t>(i)])));
      }
      active_[l / kLanesPerWord] |= 1ULL << (l % kLanesPerWord);
    }
    faultless_ = faulty_ids_.empty();
    const Adversary& probe = *advs_.front();
    state_oblivious_ = probe.state_oblivious();
    // Skipping a no-op begin_round or re-forging an execution-constant
    // message has no observable effect, so these stay bit-identical to the
    // scalar runner while eliding most per-lane virtual dispatch.
    passive_rounds_ = probe.begin_round_passive();
    static_forge_ = !faultless_ && probe.receiver_oblivious() && probe.forgery_static();
  }

  void run() {
    const bool recording = cfg_.record_outputs || cfg_.record_states;
    for (std::uint64_t round = 0; round < cfg_.max_rounds && mask_any(active_); ++round) {
      // --- Round summary: outputs + agreement --------------------------------
      // Bit-sliced kernel: one pass over the state bitplanes yields, for all
      // lanes at once, each correct node's output planes and the "all correct
      // outputs equal" mask; the per-lane work collapses to one
      // observe_summary call. The SoA kernel summarises per lane from the
      // byte rows.
      Mask agreed;
      agreed.fill(~0ULL);
      if (bit_sliced_) {
        for (const NodeId i : correct_) {
          eqc_[static_cast<std::size_t>(i)] = eq_masks(p_[static_cast<std::size_t>(i)]);
        }
        const auto ob = static_cast<std::size_t>(out_bits_);
        for (std::size_t j = 0; j < correct_.size(); ++j) {
          const auto& eq = eqc_[static_cast<std::size_t>(correct_[j])];
          for (std::size_t b = 0; b < ob; ++b) {
            const std::uint8_t states_with_bit = hv_[j * ob + b];
            Mask plane{};
            for (std::uint64_t v = 0; v < ns_; ++v) {
              if ((states_with_bit >> v) & 1) {
                for (int w = 0; w < NW; ++w) plane[w] |= eq[v][w];
              }
            }
            ob_[j * ob + b] = plane;
          }
        }
        for (std::size_t j = 1; j < correct_.size(); ++j) {
          for (std::size_t b = 0; b < ob; ++b) {
            for (int w = 0; w < NW; ++w) {
              agreed[w] &= ~(ob_[j * ob + b][w] ^ ob_[b][w]);
            }
          }
        }
      }

      const bool will_forge = !faultless_ && !(static_forge_ && static_forged_);

      // --- Per-lane pass: checker, recording, early exit, adversary ----------
      // Lane-internal order matches the scalar runner exactly: observe,
      // record, early-exit check, then the adversary's whole round through
      // forge_block (begin_round plus every message query, in the scalar
      // call order).
      for (int w = 0; w < NW; ++w) {
        for (std::uint64_t m = active_[w]; m; m &= m - 1) {
          const auto bit = static_cast<std::size_t>(std::countr_zero(m));
          const std::size_t l = static_cast<std::size_t>(w) * kLanesPerWord + bit;
          if (bit_sliced_) {
            std::uint64_t value = 0;
            for (int b = 0; b < out_bits_; ++b) {
              value |= ((ob_[static_cast<std::size_t>(b)][w] >> bit) & 1) << b;
            }
            checkers_[l].observe_summary(((agreed[w] >> bit) & 1) != 0, value);
          } else {
            bool lane_agreed = true;
            const std::uint64_t first = ct_.out(correct_.front(), idx_of(correct_.front(), l));
            for (std::size_t j = 1; j < correct_.size(); ++j) {
              if (ct_.out(correct_[j], idx_of(correct_[j], l)) != first) {
                lane_agreed = false;
                break;
              }
            }
            checkers_[l].observe_summary(lane_agreed, first);
          }
          if (recording) record_lane(l);
          if (cfg_.stop_after_stable > 0 &&
              checkers_[l].suffix_length() >= cfg_.stop_after_stable) {
            active_[w] &= ~(1ULL << bit);
            continue;
          }
          if (will_forge || passive_rounds_) continue;
          if (!state_oblivious_) refresh_states(l);
          advs_[l]->begin_round(round, lanes_[l].states, algo_, faulty_ids_, rngs_[l]);
        }
      }
      // Forging runs below the per-lane pass so that one lane-batched
      // adversary call can serve the whole block. The deferral is
      // unobservable: nothing between a lane's observe and its forging draws
      // from its rng, and lanes are independent streams.
      if (will_forge) forge_lanes(round);
      if (will_forge && static_forge_) static_forged_ = true;
      if (!mask_any(active_)) break;

      // --- Transition: all lanes in one pass ---------------------------------
      if (bit_sliced_) {
        transition_bit_sliced();
      } else {
        transition_soa();
      }
    }

    for (std::size_t l = 0; l < W_; ++l) {
      RunResult& r = lanes_[l].result;
      const StabilisationChecker& ck = checkers_[l];
      r.rounds = ck.rounds();
      r.stabilisation_round = ck.suffix_start();
      r.suffix_length = ck.suffix_length();
      r.max_window = ck.max_window();
      r.stabilised = r.suffix_length >= std::min<std::uint64_t>(margin_, r.rounds);
      // Table algorithms never pull; avg/max stay 0 exactly as in the scalar
      // runner's accounting.
    }
  }

  std::vector<RunResult> take_results() {
    std::vector<RunResult> out;
    out.reserve(W_);
    for (auto& ln : lanes_) out.push_back(std::move(ln.result));
    return out;
  }

 private:
  struct LaneCold {
    RunResult result;
    // Materialised BitVec states for adversary queries and recording; faulty
    // entries are fixed for the whole run, correct entries are refreshed
    // from the index representation on demand.
    std::vector<State> states;
  };

  static bool mask_any(const Mask& m) noexcept {
    std::uint64_t r = 0;
    for (int w = 0; w < NW; ++w) r |= m[w];
    return r != 0;
  }

  std::uint8_t idx_of(int node, std::size_t lane) const noexcept {
    if (bit_sliced_) {
      const auto& p = p_[static_cast<std::size_t>(node)];
      const std::size_t w = lane / kLanesPerWord;
      const std::size_t bit = lane % kLanesPerWord;
      return static_cast<std::uint8_t>(((p[0][w] >> bit) & 1) | (((p[1][w] >> bit) & 1) << 1));
    }
    return cur_[static_cast<std::size_t>(node) * W_ + lane];
  }

  // Scatter a 2-bit state index into the lane's slot of a bitplane pair.
  static void set_planes(std::array<Mask, 2>& p, std::size_t lane, std::uint8_t v) noexcept {
    const std::size_t w = lane / kLanesPerWord;
    const std::size_t bit = lane % kLanesPerWord;
    p[0][w] = (p[0][w] & ~(1ULL << bit)) | (static_cast<std::uint64_t>(v & 1) << bit);
    p[1][w] = (p[1][w] & ~(1ULL << bit)) | (static_cast<std::uint64_t>((v >> 1) & 1) << bit);
  }

  void set_idx(int node, std::size_t lane, std::uint8_t v) noexcept {
    if (bit_sliced_) {
      set_planes(p_[static_cast<std::size_t>(node)], lane, v);
    } else {
      cur_[static_cast<std::size_t>(node) * W_ + lane] = v;
    }
  }

  // Establishes this round's profile geometry from the first forging lane:
  // the profile count, the correct-receiver-to-profile map, and the forged
  // plane / byte-row storage ((profile, sender) slots).
  void set_profiles(const ForgedRound& fr) {
    SC_REQUIRE(fr.num_profiles >= 1, "forge_block produced no profiles");
    nprof_ = fr.num_profiles;
    const std::size_t slots = static_cast<std::size_t>(nprof_) * faulty_ids_.size();
    if (bit_sliced_) {
      if (fpp_.size() < slots) {
        fpp_.resize(slots);
        eqf_.resize(slots);
      }
    } else if (fbp_.size() < slots * W_) {
      fbp_.resize(slots * W_);
    }
    for (std::size_t j = 0; j < correct_.size(); ++j) {
      prof_[j] = fr.profile_of.empty()
                     ? 0
                     : fr.profile_of[static_cast<std::size_t>(correct_[j])];
      SC_ASSERT(prof_[j] < nprof_);
    }
  }

  // Forges the round for every lane still in active_. Tries the lane-batched
  // index entry point first -- one virtual call and one flat slot-major index
  // buffer for the whole block -- and falls back to the per-lane entry points
  // (idx, then full forge_block) the first time the adversary declines.
  void forge_lanes(std::uint64_t round) {
    const std::size_t nf = faulty_ids_.size();
    if (lanes_batched_) {
      if (fidx_.empty()) fidx_.assign(correct_.size() * nf * W_, 0);
      ForgedRound& fr = frs_.front();
      if (advs_.front()->forge_lanes_idx(round, algo_, faulty_ids_, correct_,
                                         std::span<util::Rng>(rngs_),
                                         std::span<const std::uint64_t>(active_.data(), NW),
                                         fidx_.data(), fr)) {
        set_profiles(fr);
        scatter_forged(static_cast<std::size_t>(nprof_) * nf);
        return;
      }
      // Declining is rng-neutral (see the contract), so the per-lane
      // fallback below re-forges from an untouched stream.
      lanes_batched_ = false;
    }
    const ForgedRound* first_fr = nullptr;
    for (int w = 0; w < NW; ++w) {
      for (std::uint64_t m = active_[w]; m; m &= m - 1) {
        const std::size_t l = static_cast<std::size_t>(w) * kLanesPerWord +
                              static_cast<std::size_t>(std::countr_zero(m));
        if (!state_oblivious_) refresh_states(l);
        ForgedRound& fr = frs_[l];
        // Index fast path first: draw-heavy strategies fill canonical
        // indices directly, skipping the 256-bit State round-trip that
        // otherwise dominates the per-lane forging cost.
        const bool idx_path = advs_[l]->forge_block_idx(round, lanes_[l].states, algo_,
                                                        faulty_ids_, correct_, rngs_[l], fr);
        if (!idx_path) {
          advs_[l]->forge_block(round, lanes_[l].states, algo_, faulty_ids_, correct_,
                                rngs_[l], fr);
        }
        if (first_fr == nullptr) {
          first_fr = &fr;
          set_profiles(fr);
        } else {
          // The receiver-to-profile map must be lane-invariant (see the
          // ForgedRound contract); only the profile payloads may differ.
          SC_ASSERT(fr.num_profiles == nprof_ && fr.profile_of == first_fr->profile_of);
        }
        const std::size_t slots = static_cast<std::size_t>(nprof_) * nf;
        if (idx_path) {
          for (std::size_t s = 0; s < slots; ++s) store_forged(s, l, fr.idx[s]);
        } else {
          for (std::size_t s = 0; s < slots; ++s) {
            // bits = ceil_log2(ns) keeps the raw field below 2*ns, so the
            // canonical reduction is a conditional subtract, not a divide.
            std::uint64_t v = fr.states[s].get_bits(0, ct_.bits);
            if (v >= ns_) v -= ns_;
            store_forged(s, l, static_cast<std::uint8_t>(v));
          }
        }
      }
    }
  }

  // Moves the lane-batched index buffer (fidx_, slot-major: [slot * W + lane])
  // into the kernel's forged storage. The SoA rows ARE that layout, so the
  // buffer is copied row-wise. Bit-sliced planes are rebuilt one whole word
  // at a time from 64 contiguous bytes -- per-lane set_planes would
  // read-modify-write the same plane word 64 times in a serial dependency
  // chain. Inactive lanes contribute stale bits; that is fine, every plane
  // consumer masks with active_.
  void scatter_forged(std::size_t slots) {
    if (!bit_sliced_) {
      std::copy_n(fidx_.data(), slots * W_, fbp_.data());
      return;
    }
    for (std::size_t s = 0; s < slots; ++s) {
      const std::uint8_t* row = fidx_.data() + s * W_;
      for (int w = 0; w < NW; ++w) {
        const std::size_t base = static_cast<std::size_t>(w) * kLanesPerWord;
        if (base >= W_) break;
        const std::size_t count = std::min(kLanesPerWord, W_ - base);
        std::uint64_t b0 = 0;
        std::uint64_t b1 = 0;
        planes_from_bytes(row + base, count, b0, b1);
        fpp_[s][0][w] = b0;
        fpp_[s][1][w] = b1;
      }
    }
  }

  void store_forged(std::size_t slot, std::size_t lane, std::uint8_t v) noexcept {
    if (bit_sliced_) {
      set_planes(fpp_[slot], lane, v);
    } else {
      fbp_[slot * W_ + lane] = v;
    }
  }

  void refresh_states(std::size_t lane) {
    LaneCold& ln = lanes_[lane];
    for (const NodeId i : correct_) {
      State s;
      s.set_bits(0, ct_.bits, idx_of(i, lane));
      ln.states[static_cast<std::size_t>(i)] = s;
    }
  }

  void record_lane(std::size_t lane) {
    LaneCold& ln = lanes_[lane];
    if (cfg_.record_outputs) {
      std::vector<std::uint64_t> outs(correct_.size());
      for (std::size_t j = 0; j < correct_.size(); ++j) {
        outs[j] = ct_.out(correct_[j], idx_of(correct_[j], lane));
      }
      ln.result.outputs.push_back(std::move(outs));
    }
    if (cfg_.record_states) {
      refresh_states(lane);
      ln.result.states.push_back(ln.states);
    }
  }

  // eq[v] = mask of lanes whose 2-bit plane value equals v.
  static std::array<Mask, 4> eq_masks(const std::array<Mask, 2>& p) noexcept {
    std::array<Mask, 4> e;
    for (int w = 0; w < NW; ++w) {
      e[0][w] = ~p[0][w] & ~p[1][w];
      e[1][w] = p[0][w] & ~p[1][w];
      e[2][w] = ~p[0][w] & p[1][w];
      e[3][w] = p[0][w] & p[1][w];
    }
    return e;
  }

  void transition_bit_sliced() {
    const auto nn = static_cast<std::size_t>(n_);
    const std::size_t nf = faulty_ids_.size();
    // eqc_ (equality bitplanes of the true states, shared by every receiver
    // because correct senders broadcast) was computed by the round summary;
    // each (profile, sender) forgery gets its own planes, shared by all
    // receivers mapped to that profile.
    for (std::size_t s = 0; s < static_cast<std::size_t>(nprof_) * nf; ++s) {
      eqf_[s] = eq_masks(fpp_[s]);
    }
    for (std::size_t j = 0; j < correct_.size(); ++j) {
      const NodeId i = correct_[j];
      const std::uint64_t* st = ct_.stride.data() + static_cast<std::size_t>(i) * nn;
      // Per-sender equality masks as seen by this receiver's profile.
      const std::size_t pbase = static_cast<std::size_t>(prof_[j]) * nf;
      for (std::size_t s = 0; s < nn; ++s) {
        const int k = sender_kind_[s];
        eqp_[s] = k < 0 ? &eqc_[s] : &eqf_[pbase + static_cast<std::size_t>(k)];
      }
      // Depth-first enumeration of the live part of the index space: a
      // branch dies as soon as no active lane matches its value prefix, so
      // after stabilisation (all lanes agreeing) a round costs O(n) words.
      Mask np0{};
      Mask np1{};
      const auto dfs = [&](auto&& self, std::size_t s, const Mask& mask,
                           std::uint64_t off) -> void {
        if (s == nn) {
          const std::uint8_t t = ct_.g[off];
          if (t & 1) {
            for (int w = 0; w < NW; ++w) np0[w] |= mask[w];
          }
          if (t & 2) {
            for (int w = 0; w < NW; ++w) np1[w] |= mask[w];
          }
          return;
        }
        const auto& e = *eqp_[s];
        for (std::uint64_t v = 0; v < ns_; ++v) {
          Mask sub;
          std::uint64_t alive = 0;
          for (int w = 0; w < NW; ++w) {
            sub[w] = mask[w] & e[v][w];
            alive |= sub[w];
          }
          if (alive != 0) self(self, s + 1, sub, off + st[s] * v);
        }
      };
      dfs(dfs, 0, active_, ct_.node_base[static_cast<std::size_t>(i)]);
      np_[static_cast<std::size_t>(i)] = {np0, np1};
    }
    for (const NodeId i : correct_) {
      p_[static_cast<std::size_t>(i)] = np_[static_cast<std::size_t>(i)];
    }
  }

  void transition_soa() {
    const auto nn = static_cast<std::size_t>(n_);
    const std::size_t nf = faulty_ids_.size();
    for (std::size_t j = 0; j < correct_.size(); ++j) {
      const NodeId i = correct_[j];
      const std::uint64_t* st = ct_.stride.data() + static_cast<std::size_t>(i) * nn;
      const std::size_t pbase = static_cast<std::size_t>(prof_[j]) * nf;
      std::fill(acc_.begin(), acc_.end(),
                static_cast<std::uint32_t>(ct_.node_base[static_cast<std::size_t>(i)]));
      for (std::size_t s = 0; s < nn; ++s) {
        const int k = sender_kind_[s];
        const std::uint8_t* src =
            k < 0 ? cur_.data() + s * W_
                  : fbp_.data() + (pbase + static_cast<std::size_t>(k)) * W_;
        const auto sv = static_cast<std::uint32_t>(st[s]);
        for (std::size_t l = 0; l < W_; ++l) acc_[l] += sv * src[l];
      }
      std::uint8_t* dst = nxt_.data() + static_cast<std::size_t>(i) * W_;
      for (std::size_t l = 0; l < W_; ++l) dst[l] = ct_.g[acc_[l]];
    }
    for (const NodeId i : correct_) {
      std::copy_n(nxt_.data() + static_cast<std::size_t>(i) * W_, W_,
                  cur_.data() + static_cast<std::size_t>(i) * W_);
    }
  }

  const BatchConfig& cfg_;
  const counting::TableAlgorithm& algo_;
  const CompiledTable& ct_;
  const int n_;
  const std::uint64_t ns_;
  const std::size_t W_;
  const bool bit_sliced_;

  std::vector<NodeId> correct_;
  std::vector<NodeId> faulty_ids_;
  std::vector<int> sender_kind_;  // -1 = correct, else index into faulty_ids_
  bool faultless_ = true;
  bool state_oblivious_ = false;
  bool passive_rounds_ = false;
  bool static_forge_ = false;
  bool static_forged_ = false;  // the one-time static forging pass has run
  std::uint64_t margin_ = 0;
  Mask active_{};  // bitmask of lanes still running

  // Hot per-lane state, parallel arrays indexed by lane.
  std::vector<util::Rng> rngs_;
  std::vector<std::unique_ptr<Adversary>> advs_;
  std::vector<StabilisationChecker> checkers_;
  std::vector<LaneCold> lanes_;
  std::vector<ForgedRound> frs_;  // per-lane forgery scratch (persists across rounds)

  // Lane-batched forging: the slot-major [slot * W + lane] index buffer the
  // adversary fills, and whether the lane-batched entry point is still worth
  // trying (cleared on its first decline).
  std::vector<std::uint8_t> fidx_;
  bool lanes_batched_ = true;

  // This round's profile geometry (persists across rounds for static
  // forgers): profile count, per-correct-receiver profile index, and the
  // forged (profile, sender) slots.
  int nprof_ = 1;
  std::vector<std::uint16_t> prof_;  // [correct j] -> profile index

  // Bit-sliced representation: [node] -> {bit0 plane, bit1 plane}.
  std::vector<std::array<Mask, 2>> p_, np_;
  std::vector<std::array<Mask, 2>> fpp_;         // [profile * |faulty| + k]
  std::vector<std::array<Mask, 4>> eqc_;         // [node] true-state equality planes
  std::vector<std::array<Mask, 4>> eqf_;         // [profile * |faulty| + k]
  std::vector<const std::array<Mask, 4>*> eqp_;  // [sender] view of the current receiver
  int out_bits_ = 0;              // planes per output value
  std::vector<std::uint8_t> hv_;  // [correct j * out_bits_ + b] state-value mask
  std::vector<Mask> ob_;          // [correct j * out_bits_ + b] output bitplane

  // SoA representation: [node * W + lane] canonical state indices; forged
  // rows are [(profile * |faulty| + k) * W + lane].
  std::vector<std::uint8_t> cur_, nxt_, fbp_;
  std::vector<std::uint32_t> acc_;
};

template <int NW>
void run_table_block(const BatchConfig& cfg, const counting::TableAlgorithm& table,
                     std::span<const std::uint64_t> seeds, bool bit_sliced,
                     std::vector<RunResult>& results) {
  Block<NW> block(cfg, table, seeds, bit_sliced);
  block.run();
  auto part = block.take_results();
  for (auto& r : part) results.push_back(std::move(r));
}

}  // namespace

bool batch_supported(const counting::AlgorithmPtr& algo) {
  if (algo == nullptr) return false;
  if (dynamic_cast<const counting::TableAlgorithm*>(algo.get()) != nullptr) return true;
  return ComposedCompiledTable::compile(algo) != nullptr;
}

std::vector<RunResult> run_batch(const BatchConfig& cfg) {
  SC_CHECK(cfg.algo != nullptr, "no algorithm given");
  SC_CHECK(cfg.adversary != nullptr, "no adversary factory given");
  SC_CHECK(cfg.words == 0 || cfg.words == 1 || cfg.words == 2 || cfg.words == 4 ||
               cfg.words == 8,
           "BatchConfig::words must be 0 (auto), 1, 2, 4 or 8");

  const auto table = std::dynamic_pointer_cast<const counting::TableAlgorithm>(cfg.algo);
  if (table == nullptr) {
    SC_CHECK(cfg.composed == nullptr || cfg.composed->algo.get() == cfg.algo.get(),
             "BatchConfig::composed was compiled from a different algorithm");
    const auto composed =
        cfg.composed != nullptr ? cfg.composed : ComposedCompiledTable::compile(cfg.algo);
    SC_CHECK(composed != nullptr,
             "run_batch: unsupported algorithm (need a TableAlgorithm or a "
             "boosted/pulling tower over a trivial or table base): " +
                 cfg.algo->name());
    return run_composed_batch(cfg, *composed);
  }

  const auto& ct = table->compiled();
  bool bit_sliced;
  switch (cfg.kernel) {
    case BatchKernel::kSoA:
      bit_sliced = false;
      break;
    case BatchKernel::kBitSliced:
      SC_CHECK(ct.num_states <= 4, "bit-sliced kernel needs num_states <= 4");
      bit_sliced = true;
      break;
    default:
      bit_sliced = ct.num_states <= 4;
      break;
  }

  const int words = cfg.words == 0 ? default_batch_words() : cfg.words;
  const std::size_t block_lanes = kLanesPerWord * static_cast<std::size_t>(words);
  std::vector<RunResult> results;
  results.reserve(cfg.seeds.size());
  for (std::size_t start = 0; start < cfg.seeds.size(); start += block_lanes) {
    const std::size_t count = std::min(block_lanes, cfg.seeds.size() - start);
    const auto seeds = std::span<const std::uint64_t>(cfg.seeds).subspan(start, count);
    // Tail blocks shrink to the smallest plane width covering the remaining
    // lanes; the width never changes per-lane results.
    int nw = 1;
    while (kLanesPerWord * static_cast<std::size_t>(nw) < count) nw *= 2;
    switch (nw) {
      case 1:
        run_table_block<1>(cfg, *table, seeds, bit_sliced, results);
        break;
      case 2:
        run_table_block<2>(cfg, *table, seeds, bit_sliced, results);
        break;
      case 4:
        run_table_block<4>(cfg, *table, seeds, bit_sliced, results);
        break;
      default:
        run_table_block<8>(cfg, *table, seeds, bit_sliced, results);
        break;
    }
  }
  return results;
}

}  // namespace synccount::sim
