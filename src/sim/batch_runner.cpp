#include "sim/batch_runner.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <span>

#include "sim/checker.hpp"
#include "sim/composed_runner.hpp"
#include "sim/faults.hpp"
#include "util/check.hpp"

namespace synccount::sim {

namespace {

using counting::CompiledTable;
using counting::NodeId;

constexpr std::size_t kLanesPerWord = 64;

// One block of up to 64 lanes advanced in lockstep. Hot per-lane state (rng,
// adversary, checker) lives in parallel arrays; the cold result/state
// vectors sit in LaneCold so the round loop touches as few lines as possible.
class Block {
 public:
  Block(const BatchConfig& cfg, const counting::TableAlgorithm& algo,
        std::span<const std::uint64_t> seeds, bool bit_sliced)
      : cfg_(cfg),
        algo_(algo),
        ct_(algo.compiled()),
        n_(ct_.n),
        ns_(ct_.num_states),
        W_(seeds.size()),
        bit_sliced_(bit_sliced) {
    const auto nn = static_cast<std::size_t>(n_);

    std::vector<bool> faulty = cfg.faulty;
    if (faulty.empty()) faulty.assign(nn, false);
    SC_CHECK(faulty.size() == nn, "fault vector size mismatch");
    SC_CHECK(fault_count(faulty) <= algo_.resilience(),
             "more faults than the algorithm's resilience");
    faulty_ids_ = fault_ids(faulty);
    sender_kind_.assign(nn, -1);
    for (std::size_t k = 0; k < faulty_ids_.size(); ++k) {
      sender_kind_[static_cast<std::size_t>(faulty_ids_[k])] = static_cast<int>(k);
    }
    for (int i = 0; i < n_; ++i) {
      if (!faulty[static_cast<std::size_t>(i)]) correct_.push_back(i);
    }
    SC_CHECK(!correct_.empty(), "all nodes faulty");

    margin_ = resolve_margin(cfg.margin, cfg.max_rounds, algo_.modulus());

    if (bit_sliced_) {
      p_.assign(nn, {0, 0});
      np_.assign(nn, {0, 0});
      eqc_.assign(nn, {0, 0, 0, 0});
      eqr_.assign(nn, {0, 0, 0, 0});
      fp_.assign(faulty_ids_.size(), {0, 0});
      fpr_.assign(correct_.size() * faulty_ids_.size(), {0, 0});
      // Output planes: hv_[j][b] is the set of state values whose output has
      // bit b set for correct node j; ORing their equality masks yields the
      // node's output bitplane.
      std::uint64_t max_out = 0;
      for (const NodeId i : correct_) {
        for (std::uint64_t v = 0; v < ns_; ++v) {
          max_out = std::max<std::uint64_t>(max_out, ct_.out(i, static_cast<std::uint8_t>(v)));
        }
      }
      out_bits_ = static_cast<int>(std::bit_width(max_out));
      hv_.assign(correct_.size() * static_cast<std::size_t>(out_bits_), 0);
      ob_.assign(correct_.size() * static_cast<std::size_t>(out_bits_), 0);
      for (std::size_t j = 0; j < correct_.size(); ++j) {
        for (int b = 0; b < out_bits_; ++b) {
          std::uint8_t mask = 0;
          for (std::uint64_t v = 0; v < ns_; ++v) {
            if ((ct_.out(correct_[j], static_cast<std::uint8_t>(v)) >> b) & 1) {
              mask |= static_cast<std::uint8_t>(1u << v);
            }
          }
          hv_[j * static_cast<std::size_t>(out_bits_) + static_cast<std::size_t>(b)] = mask;
        }
      }
    } else {
      SC_CHECK(ct_.g.size() < (1ULL << 31), "table too large for the SoA kernel");
      cur_.assign(nn * W_, 0);
      nxt_.assign(nn * W_, 0);
      fb_.assign(faulty_ids_.size() * W_, 0);
      fbr_.assign(correct_.size() * faulty_ids_.size() * W_, 0);
      acc_.assign(W_, 0);
    }

    // Lane setup mirrors the scalar runner's preamble draw for draw.
    rngs_.reserve(W_);
    advs_.reserve(W_);
    checkers_.reserve(W_);
    lanes_.resize(W_);
    for (std::size_t l = 0; l < W_; ++l) {
      rngs_.emplace_back(seeds[l]);
      advs_.push_back(cfg.adversary());
      SC_CHECK(advs_.back() != nullptr, "batch adversary factory returned null");
      checkers_.emplace_back(algo_.modulus());
      LaneCold& ln = lanes_[l];
      ln.result.correct_ids = correct_;
      ln.states.resize(nn);
      if (!cfg.initial.empty()) {
        SC_CHECK(cfg.initial.size() == nn, "initial state vector size mismatch");
        for (std::size_t i = 0; i < nn; ++i) ln.states[i] = algo_.canonicalize(cfg.initial[i]);
      } else {
        for (auto& s : ln.states) s = counting::arbitrary_state(algo_, rngs_[l]);
      }
      for (int i = 0; i < n_; ++i) {
        set_idx(i, l, static_cast<std::uint8_t>(algo_.state_to_index(
                          ln.states[static_cast<std::size_t>(i)])));
      }
      active_ |= 1ULL << l;
    }
    faultless_ = faulty_ids_.empty();
    const Adversary& probe = *advs_.front();
    hoist_ = !faultless_ && probe.receiver_oblivious();
    state_oblivious_ = probe.state_oblivious();
    // Skipping a no-op begin_round or re-forging an execution-constant
    // message has no observable effect, so these stay bit-identical to the
    // scalar runner while eliding most per-lane virtual dispatch.
    passive_rounds_ = probe.begin_round_passive();
    static_forge_ = hoist_ && probe.forgery_static();
  }

  void run() {
    const bool recording = cfg_.record_outputs || cfg_.record_states;
    for (std::uint64_t round = 0; round < cfg_.max_rounds && active_ != 0; ++round) {
      // --- Round summary: outputs + agreement --------------------------------
      // Bit-sliced kernel: one pass over the state bitplanes yields, for all
      // 64 lanes at once, each correct node's output planes and the
      // "all correct outputs equal" mask; the per-lane work collapses to one
      // observe_summary call. The SoA kernel summarises per lane from the
      // byte rows.
      std::uint64_t agreed = ~0ULL;
      if (bit_sliced_) {
        for (const NodeId i : correct_) {
          eqc_[static_cast<std::size_t>(i)] = eq_masks(p_[static_cast<std::size_t>(i)]);
        }
        const auto ob = static_cast<std::size_t>(out_bits_);
        for (std::size_t j = 0; j < correct_.size(); ++j) {
          const auto& eq = eqc_[static_cast<std::size_t>(correct_[j])];
          for (std::size_t b = 0; b < ob; ++b) {
            const std::uint8_t states_with_bit = hv_[j * ob + b];
            std::uint64_t plane = 0;
            for (std::uint64_t v = 0; v < ns_; ++v) {
              if ((states_with_bit >> v) & 1) plane |= eq[v];
            }
            ob_[j * ob + b] = plane;
          }
        }
        for (std::size_t j = 1; j < correct_.size(); ++j) {
          for (std::size_t b = 0; b < ob; ++b) {
            agreed &= ~(ob_[j * ob + b] ^ ob_[b]);
          }
        }
      }

      const bool will_forge = !faultless_ && !(static_forge_ && static_forged_);

      // --- Per-lane pass: checker, recording, early exit, adversary ----------
      // Lane-internal order matches the scalar runner exactly: observe,
      // record, early-exit check, begin_round, forge per faulty sender (and
      // per receiver when the adversary is not receiver-oblivious).
      for (std::uint64_t m = active_; m; m &= m - 1) {
        const auto l = static_cast<std::size_t>(std::countr_zero(m));
        if (bit_sliced_) {
          std::uint64_t value = 0;
          for (int b = 0; b < out_bits_; ++b) {
            value |= ((ob_[static_cast<std::size_t>(b)] >> l) & 1) << b;
          }
          checkers_[l].observe_summary(((agreed >> l) & 1) != 0, value);
        } else {
          bool lane_agreed = true;
          const std::uint64_t first = ct_.out(correct_.front(), idx_of(correct_.front(), l));
          for (std::size_t j = 1; j < correct_.size(); ++j) {
            if (ct_.out(correct_[j], idx_of(correct_[j], l)) != first) {
              lane_agreed = false;
              break;
            }
          }
          checkers_[l].observe_summary(lane_agreed, first);
        }
        if (recording) record_lane(l);
        if (cfg_.stop_after_stable > 0 &&
            checkers_[l].suffix_length() >= cfg_.stop_after_stable) {
          active_ &= ~(1ULL << l);
          continue;
        }
        if (passive_rounds_ && !will_forge) continue;
        if (!state_oblivious_) refresh_states(l);
        if (!passive_rounds_) {
          advs_[l]->begin_round(round, lanes_[l].states, algo_, faulty_ids_, rngs_[l]);
        }
        if (!will_forge) continue;
        if (hoist_) {
          for (std::size_t k = 0; k < faulty_ids_.size(); ++k) {
            store_forged(k, l, forge(l, round, faulty_ids_[k], correct_.front()));
          }
        } else {
          // Same nested (receiver, sender) query order as the scalar runner.
          for (std::size_t j = 0; j < correct_.size(); ++j) {
            for (std::size_t k = 0; k < faulty_ids_.size(); ++k) {
              store_forged_r(j, k, l, forge(l, round, faulty_ids_[k], correct_[j]));
            }
          }
        }
      }
      if (will_forge && static_forge_) static_forged_ = true;
      if (active_ == 0) break;

      // --- Transition: all lanes in one pass ---------------------------------
      if (bit_sliced_) {
        transition_bit_sliced();
      } else {
        transition_soa();
      }
    }

    for (std::size_t l = 0; l < W_; ++l) {
      RunResult& r = lanes_[l].result;
      const StabilisationChecker& ck = checkers_[l];
      r.rounds = ck.rounds();
      r.stabilisation_round = ck.suffix_start();
      r.suffix_length = ck.suffix_length();
      r.max_window = ck.max_window();
      r.stabilised = r.suffix_length >= std::min<std::uint64_t>(margin_, r.rounds);
      // Table algorithms never pull; avg/max stay 0 exactly as in the scalar
      // runner's accounting.
    }
  }

  std::vector<RunResult> take_results() {
    std::vector<RunResult> out;
    out.reserve(W_);
    for (auto& ln : lanes_) out.push_back(std::move(ln.result));
    return out;
  }

 private:
  struct LaneCold {
    RunResult result;
    // Materialised BitVec states for adversary queries and recording; faulty
    // entries are fixed for the whole run, correct entries are refreshed
    // from the index representation on demand.
    std::vector<State> states;
  };

  std::uint8_t idx_of(int node, std::size_t lane) const noexcept {
    if (bit_sliced_) {
      const auto& p = p_[static_cast<std::size_t>(node)];
      return static_cast<std::uint8_t>(((p[0] >> lane) & 1) | (((p[1] >> lane) & 1) << 1));
    }
    return cur_[static_cast<std::size_t>(node) * W_ + lane];
  }

  // Scatter a 2-bit state index into the lane's slot of a bitplane pair.
  static void set_planes(std::array<std::uint64_t, 2>& p, std::size_t lane,
                         std::uint8_t v) noexcept {
    p[0] = (p[0] & ~(1ULL << lane)) | (static_cast<std::uint64_t>(v & 1) << lane);
    p[1] = (p[1] & ~(1ULL << lane)) | (static_cast<std::uint64_t>((v >> 1) & 1) << lane);
  }

  void set_idx(int node, std::size_t lane, std::uint8_t v) noexcept {
    if (bit_sliced_) {
      set_planes(p_[static_cast<std::size_t>(node)], lane, v);
    } else {
      cur_[static_cast<std::size_t>(node) * W_ + lane] = v;
    }
  }

  // Canonical index of a forged message; equals
  // state_to_index(canonicalize(raw)) without building the canonical state.
  std::uint8_t forge(std::size_t lane, std::uint64_t round, NodeId sender, NodeId receiver) {
    const State raw = advs_[lane]->message(round, sender, receiver, lanes_[lane].states,
                                           algo_, rngs_[lane]);
    return static_cast<std::uint8_t>(raw.get_bits(0, ct_.bits) % ns_);
  }

  void store_forged(std::size_t k, std::size_t lane, std::uint8_t v) noexcept {
    if (bit_sliced_) {
      set_planes(fp_[k], lane, v);
    } else {
      fb_[k * W_ + lane] = v;
    }
  }

  void store_forged_r(std::size_t j, std::size_t k, std::size_t lane, std::uint8_t v) noexcept {
    const std::size_t slot = j * faulty_ids_.size() + k;
    if (bit_sliced_) {
      set_planes(fpr_[slot], lane, v);
    } else {
      fbr_[slot * W_ + lane] = v;
    }
  }

  void refresh_states(std::size_t lane) {
    LaneCold& ln = lanes_[lane];
    for (const NodeId i : correct_) {
      State s;
      s.set_bits(0, ct_.bits, idx_of(i, lane));
      ln.states[static_cast<std::size_t>(i)] = s;
    }
  }

  void record_lane(std::size_t lane) {
    LaneCold& ln = lanes_[lane];
    if (cfg_.record_outputs) {
      std::vector<std::uint64_t> outs(correct_.size());
      for (std::size_t j = 0; j < correct_.size(); ++j) {
        outs[j] = ct_.out(correct_[j], idx_of(correct_[j], lane));
      }
      ln.result.outputs.push_back(std::move(outs));
    }
    if (cfg_.record_states) {
      refresh_states(lane);
      ln.result.states.push_back(ln.states);
    }
  }

  // eq[v] = mask of lanes whose 2-bit plane value equals v.
  static std::array<std::uint64_t, 4> eq_masks(const std::array<std::uint64_t, 2>& p) noexcept {
    return {~p[0] & ~p[1], p[0] & ~p[1], ~p[0] & p[1], p[0] & p[1]};
  }

  void transition_bit_sliced() {
    const auto nn = static_cast<std::size_t>(n_);
    // eqc_ (equality bitplanes of the true states, shared by every receiver
    // because correct senders broadcast) was computed by the round summary;
    // forged senders get their own planes.
    for (std::size_t j = 0; j < correct_.size(); ++j) {
      const NodeId i = correct_[j];
      const std::uint64_t* st = ct_.stride.data() + static_cast<std::size_t>(i) * nn;
      // Per-sender equality masks as seen by this receiver.
      for (std::size_t s = 0; s < nn; ++s) {
        const int k = sender_kind_[s];
        if (k < 0) {
          eqr_[s] = eqc_[s];
        } else if (hoist_) {
          eqr_[s] = eq_masks(fp_[static_cast<std::size_t>(k)]);
        } else {
          eqr_[s] = eq_masks(fpr_[j * faulty_ids_.size() + static_cast<std::size_t>(k)]);
        }
      }
      // Depth-first enumeration of the live part of the index space: a
      // branch dies as soon as no active lane matches its value prefix, so
      // after stabilisation (all lanes agreeing) a round costs O(n) words.
      std::uint64_t np0 = 0;
      std::uint64_t np1 = 0;
      const auto dfs = [&](auto&& self, std::size_t s, std::uint64_t mask,
                           std::uint64_t off) -> void {
        if (s == nn) {
          const std::uint8_t t = ct_.g[off];
          if (t & 1) np0 |= mask;
          if (t & 2) np1 |= mask;
          return;
        }
        const auto& e = eqr_[s];
        for (std::uint64_t v = 0; v < ns_; ++v) {
          const std::uint64_t m = mask & e[v];
          if (m != 0) self(self, s + 1, m, off + st[s] * v);
        }
      };
      dfs(dfs, 0, active_, ct_.node_base[static_cast<std::size_t>(i)]);
      np_[static_cast<std::size_t>(i)] = {np0, np1};
    }
    for (const NodeId i : correct_) {
      p_[static_cast<std::size_t>(i)] = np_[static_cast<std::size_t>(i)];
    }
  }

  void transition_soa() {
    const auto nn = static_cast<std::size_t>(n_);
    for (std::size_t j = 0; j < correct_.size(); ++j) {
      const NodeId i = correct_[j];
      const std::uint64_t* st = ct_.stride.data() + static_cast<std::size_t>(i) * nn;
      std::fill(acc_.begin(), acc_.end(),
                static_cast<std::uint32_t>(ct_.node_base[static_cast<std::size_t>(i)]));
      for (std::size_t s = 0; s < nn; ++s) {
        const int k = sender_kind_[s];
        const std::uint8_t* src =
            k < 0 ? cur_.data() + s * W_
                  : (hoist_ ? fb_.data() + static_cast<std::size_t>(k) * W_
                            : fbr_.data() +
                                  (j * faulty_ids_.size() + static_cast<std::size_t>(k)) * W_);
        const auto sv = static_cast<std::uint32_t>(st[s]);
        for (std::size_t l = 0; l < W_; ++l) acc_[l] += sv * src[l];
      }
      std::uint8_t* dst = nxt_.data() + static_cast<std::size_t>(i) * W_;
      for (std::size_t l = 0; l < W_; ++l) dst[l] = ct_.g[acc_[l]];
    }
    for (const NodeId i : correct_) {
      std::copy_n(nxt_.data() + static_cast<std::size_t>(i) * W_, W_,
                  cur_.data() + static_cast<std::size_t>(i) * W_);
    }
  }

  const BatchConfig& cfg_;
  const counting::TableAlgorithm& algo_;
  const CompiledTable& ct_;
  const int n_;
  const std::uint64_t ns_;
  const std::size_t W_;
  const bool bit_sliced_;

  std::vector<NodeId> correct_;
  std::vector<NodeId> faulty_ids_;
  std::vector<int> sender_kind_;  // -1 = correct, else index into faulty_ids_
  bool faultless_ = true;
  bool hoist_ = false;
  bool state_oblivious_ = false;
  bool passive_rounds_ = false;
  bool static_forge_ = false;
  bool static_forged_ = false;  // the one-time static forging pass has run
  std::uint64_t margin_ = 0;
  std::uint64_t active_ = 0;  // bitmask of lanes still running

  // Hot per-lane state, parallel arrays indexed by lane.
  std::vector<util::Rng> rngs_;
  std::vector<std::unique_ptr<Adversary>> advs_;
  std::vector<StabilisationChecker> checkers_;
  std::vector<LaneCold> lanes_;

  // Bit-sliced representation: [node] -> {bit0 plane, bit1 plane}.
  std::vector<std::array<std::uint64_t, 2>> p_, np_, fp_, fpr_;
  std::vector<std::array<std::uint64_t, 4>> eqc_;
  std::vector<std::array<std::uint64_t, 4>> eqr_;
  int out_bits_ = 0;                // planes per output value
  std::vector<std::uint8_t> hv_;    // [correct j * out_bits_ + b] state-value mask
  std::vector<std::uint64_t> ob_;   // [correct j * out_bits_ + b] output bitplane

  // SoA representation: [node * W + lane] canonical state indices.
  std::vector<std::uint8_t> cur_, nxt_, fb_, fbr_;
  std::vector<std::uint32_t> acc_;
};

}  // namespace

bool batch_supported(const counting::AlgorithmPtr& algo) {
  if (algo == nullptr) return false;
  if (dynamic_cast<const counting::TableAlgorithm*>(algo.get()) != nullptr) return true;
  return ComposedCompiledTable::compile(algo) != nullptr;
}

std::vector<RunResult> run_batch(const BatchConfig& cfg) {
  SC_CHECK(cfg.algo != nullptr, "no algorithm given");
  SC_CHECK(cfg.adversary != nullptr, "no adversary factory given");

  const auto table = std::dynamic_pointer_cast<const counting::TableAlgorithm>(cfg.algo);
  if (table == nullptr) {
    SC_CHECK(cfg.composed == nullptr || cfg.composed->algo.get() == cfg.algo.get(),
             "BatchConfig::composed was compiled from a different algorithm");
    const auto composed =
        cfg.composed != nullptr ? cfg.composed : ComposedCompiledTable::compile(cfg.algo);
    SC_CHECK(composed != nullptr,
             "run_batch: unsupported algorithm (need a TableAlgorithm or a "
             "boosted/pulling tower over a trivial or table base): " +
                 cfg.algo->name());
    SC_CHECK(cfg.kernel == BatchKernel::kAuto,
             "composed algorithms support only the kAuto kernel");
    return run_composed_batch(cfg, *composed);
  }

  const auto& ct = table->compiled();
  bool bit_sliced;
  switch (cfg.kernel) {
    case BatchKernel::kSoA:
      bit_sliced = false;
      break;
    case BatchKernel::kBitSliced:
      SC_CHECK(ct.num_states <= 4, "bit-sliced kernel needs num_states <= 4");
      bit_sliced = true;
      break;
    default:
      bit_sliced = ct.num_states <= 4;
      break;
  }

  std::vector<RunResult> results;
  results.reserve(cfg.seeds.size());
  for (std::size_t start = 0; start < cfg.seeds.size(); start += kLanesPerWord) {
    const std::size_t count = std::min(kLanesPerWord, cfg.seeds.size() - start);
    Block block(cfg, *table,
                std::span<const std::uint64_t>(cfg.seeds).subspan(start, count),
                bit_sliced);
    block.run();
    auto part = block.take_results();
    for (auto& r : part) results.push_back(std::move(r));
  }
  return results;
}

}  // namespace synccount::sim
