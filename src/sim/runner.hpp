// Synchronous full-information execution runner (paper, Section 2).
//
// Each round: (1) every node broadcasts its state, (2) every node receives a
// vector of n states -- for faulty senders the adversary chooses a possibly
// different state per receiver -- and (3) every correct node applies the
// algorithm's transition. Initial states are arbitrary (random by default,
// or caller-provided). The runner feeds correct outputs to the
// StabilisationChecker and reports the observed stabilisation time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "counting/algorithm.hpp"
#include "sim/adversary.hpp"
#include "sim/checker.hpp"

namespace synccount::sim {

struct RunConfig {
  counting::AlgorithmPtr algo;
  std::vector<bool> faulty;      // size n; empty means no faults
  std::uint64_t max_rounds = 1000;
  std::uint64_t seed = 1;

  // If non-empty, used as the initial states (size n) instead of random ones.
  std::vector<State> initial;

  // Stop early once the valid suffix reaches this length (0 = run to
  // max_rounds). Useful when only the stabilisation round matters.
  std::uint64_t stop_after_stable = 0;

  // Record the full output / state traces (memory-heavy on long runs).
  bool record_outputs = false;
  bool record_states = false;
};

struct RunResult {
  std::uint64_t rounds = 0;               // rounds executed
  std::uint64_t stabilisation_round = 0;  // start of the final valid suffix
  std::uint64_t suffix_length = 0;        // its length
  std::uint64_t max_window = 0;           // longest valid window anywhere
  bool stabilised = false;                // suffix_length >= margin used

  // Pulling-model accounting (0 for pure broadcast algorithms):
  std::uint64_t max_pulls_per_round = 0;  // max over (node, round)
  double avg_pulls_per_round = 0.0;       // mean over (node, round)

  std::vector<counting::NodeId> correct_ids;
  // outputs[r][j] = output of correct node correct_ids[j] at round r.
  std::vector<std::vector<std::uint64_t>> outputs;
  // states[r][i] = state of node i at round r (all nodes).
  std::vector<std::vector<State>> states;
};

// The margin actually used when the caller passes 0: min(2c + 16, what fits
// in the horizon). Shared by the scalar runner and the batched backend so
// both paths classify "stabilised" identically.
std::uint64_t resolve_margin(std::uint64_t margin, std::uint64_t max_rounds,
                             std::uint64_t modulus) noexcept;

// Runs the execution; `margin` is the minimal suffix length for an execution
// to count as stabilised (default: see resolve_margin).
RunResult run_execution(const RunConfig& cfg, Adversary& adversary,
                        std::uint64_t margin = 0);

}  // namespace synccount::sim
