#include "sim/trace_format.hpp"

#include <filesystem>
#include <fstream>

#include "util/bitio.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace synccount::sim {

namespace {

constexpr char kHeaderTag = 'H';
constexpr char kGroupTag = 'G';
constexpr std::string_view kMagic = "SCTB";
constexpr std::uint64_t kVersion = 1;

std::string frame_block(std::string payload) {
  std::string out;
  util::put_varint(out, payload.size());
  out += payload;
  util::put_u32le(out, util::crc32(payload));
  return out;
}

// Reads one framed block starting at `pos`; advances past it. Returns false
// (leaving pos untouched) when fewer bytes than a whole block remain --
// CRC-validated, so a torn tail never yields a payload.
bool next_block(std::string_view bytes, std::size_t& pos, std::string_view& payload) {
  std::size_t p = pos;
  if (p >= bytes.size()) return false;
  std::uint64_t size = 0;
  try {
    size = util::get_varint(bytes, p);
  } catch (...) {
    return false;
  }
  if (bytes.size() - p < size + 4) return false;
  const std::string_view body = bytes.substr(p, size);
  p += size;
  const std::uint32_t want = util::get_u32le(bytes, p);
  if (util::crc32(body) != want) return false;
  payload = body;
  pos = p;
  return true;
}

void put_string(std::string& out, std::string_view s) {
  util::put_varint(out, s.size());
  out += s;
}

std::string get_string(std::string_view in, std::size_t& pos) {
  const std::uint64_t n = util::get_varint(in, pos);
  SC_CHECK(in.size() - pos >= n, "truncated string in trace block");
  std::string s(in.substr(pos, n));
  pos += n;
  return s;
}

// Zigzag-delta column: consecutive values differ little, so deltas against
// the previous value stay in one or two varint bytes.
void put_delta_column(std::string& out, const std::vector<TraceRow>& rows,
                      std::uint64_t TraceRow::*field) {
  std::int64_t prev = 0;
  for (const TraceRow& r : rows) {
    const auto v = static_cast<std::int64_t>(r.*field);
    util::put_varint(out, util::zigzag_encode(v - prev));
    prev = v;
  }
}

void get_delta_column(std::string_view in, std::size_t& pos, std::vector<TraceRow>& rows,
                      std::uint64_t TraceRow::*field) {
  std::int64_t prev = 0;
  for (TraceRow& r : rows) {
    prev += util::zigzag_decode(util::get_varint(in, pos));
    r.*field = static_cast<std::uint64_t>(prev);
  }
}

}  // namespace

std::string encode_trace_header(const TraceHeader& header) {
  std::string p;
  p.push_back(kHeaderTag);
  p += kMagic;
  util::put_varint(p, kVersion);
  util::put_varint(p, header.adversaries.size());
  for (const std::string& a : header.adversaries) put_string(p, a);
  util::put_varint(p, header.placements.size());
  for (const std::string& n : header.placements) put_string(p, n);
  return frame_block(std::move(p));
}

std::string encode_trace_block(std::uint64_t group, const std::vector<TraceRow>& rows) {
  SC_CHECK(!rows.empty(), "trace block needs rows");
  std::string p;
  p.push_back(kGroupTag);
  util::put_varint(p, group);
  util::put_varint(p, rows.size());
  // Constant-per-group columns, once each.
  util::put_varint(p, rows.front().adversary);
  util::put_varint(p, rows.front().placement);
  for (const TraceRow& r : rows) {
    SC_CHECK(r.adversary == rows.front().adversary && r.placement == rows.front().placement,
             "trace block rows must share one (adversary, placement)");
  }
  // Cell indices: absolute first, then deltas (1 for the consecutive cells
  // of a group, but the codec does not assume it).
  util::put_varint(p, rows.front().cell);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    util::put_varint(p, util::zigzag_encode(static_cast<std::int64_t>(rows[i].cell) -
                                            static_cast<std::int64_t>(rows[i - 1].cell)));
  }
  // Seeds are hash outputs: incompressible, plain varints.
  for (const TraceRow& r : rows) util::put_varint(p, r.seed);
  put_delta_column(p, rows, &TraceRow::rounds);
  // Stabilised bitmap, row i at bit (i % 8) of byte (i / 8).
  for (std::size_t i = 0; i < rows.size(); i += 8) {
    std::uint8_t byte = 0;
    for (std::size_t b = 0; b < 8 && i + b < rows.size(); ++b) {
      if (rows[i + b].stabilised) byte |= static_cast<std::uint8_t>(1u << b);
    }
    p.push_back(static_cast<char>(byte));
  }
  put_delta_column(p, rows, &TraceRow::stabilisation_round);
  put_delta_column(p, rows, &TraceRow::suffix_length);
  put_delta_column(p, rows, &TraceRow::max_window);
  put_delta_column(p, rows, &TraceRow::max_pulls);
  // Raw IEEE bytes: the only encoding of a double that byte-compares without
  // re-deriving formatting.
  for (const TraceRow& r : rows) util::put_f64le(p, r.avg_pulls);
  return frame_block(std::move(p));
}

BinaryTrace read_binary_trace(std::string_view bytes) {
  BinaryTrace trace;
  std::size_t pos = 0;
  std::string_view payload;
  SC_CHECK(next_block(bytes, pos, payload), "missing or corrupt binary trace header");
  {
    std::size_t p = 0;
    SC_CHECK(!payload.empty() && payload[0] == kHeaderTag, "first trace block is not a header");
    p = 1;
    SC_CHECK(payload.size() >= p + kMagic.size() &&
                 payload.substr(p, kMagic.size()) == kMagic,
             "not a binary trace file (bad magic)");
    p += kMagic.size();
    const std::uint64_t version = util::get_varint(payload, p);
    SC_CHECK(version == kVersion,
             "unsupported binary trace version " + std::to_string(version));
    const std::uint64_t n_adv = util::get_varint(payload, p);
    for (std::uint64_t i = 0; i < n_adv; ++i) {
      trace.header.adversaries.push_back(get_string(payload, p));
    }
    const std::uint64_t n_pl = util::get_varint(payload, p);
    for (std::uint64_t i = 0; i < n_pl; ++i) {
      trace.header.placements.push_back(get_string(payload, p));
    }
    SC_CHECK(p == payload.size(), "trailing bytes in trace header block");
  }
  ++trace.blocks;

  while (next_block(bytes, pos, payload)) {
    std::size_t p = 0;
    SC_CHECK(!payload.empty() && payload[0] == kGroupTag, "unknown trace block tag");
    p = 1;
    (void)util::get_varint(payload, p);  // group index (implicit in block order)
    const std::uint64_t n = util::get_varint(payload, p);
    SC_CHECK(n > 0, "empty trace block");
    std::vector<TraceRow> rows(n);
    const std::uint64_t adversary = util::get_varint(payload, p);
    const std::uint64_t placement = util::get_varint(payload, p);
    SC_CHECK(adversary < trace.header.adversaries.size() &&
                 placement < trace.header.placements.size(),
             "trace block coordinates outside the header grid");
    std::int64_t cell = static_cast<std::int64_t>(util::get_varint(payload, p));
    for (std::uint64_t i = 0; i < n; ++i) {
      if (i > 0) cell += util::zigzag_decode(util::get_varint(payload, p));
      rows[i].cell = static_cast<std::uint64_t>(cell);
      rows[i].adversary = static_cast<std::uint32_t>(adversary);
      rows[i].placement = static_cast<std::uint32_t>(placement);
      rows[i].seed_index = static_cast<int>(i);
    }
    for (TraceRow& r : rows) r.seed = util::get_varint(payload, p);
    get_delta_column(payload, p, rows, &TraceRow::rounds);
    for (std::uint64_t i = 0; i < n; i += 8) {
      SC_CHECK(p < payload.size(), "truncated stabilised bitmap");
      const auto byte = static_cast<std::uint8_t>(payload[p++]);
      for (std::uint64_t b = 0; b < 8 && i + b < n; ++b) {
        rows[i + b].stabilised = (byte >> b) & 1;
      }
    }
    get_delta_column(payload, p, rows, &TraceRow::stabilisation_round);
    get_delta_column(payload, p, rows, &TraceRow::suffix_length);
    get_delta_column(payload, p, rows, &TraceRow::max_window);
    get_delta_column(payload, p, rows, &TraceRow::max_pulls);
    for (TraceRow& r : rows) r.avg_pulls = util::get_f64le(payload, p);
    SC_CHECK(p == payload.size(), "trailing bytes in trace group block");
    for (TraceRow& r : rows) trace.rows.push_back(r);
    ++trace.blocks;
  }
  SC_CHECK(pos == bytes.size(), "trailing garbage after the last whole trace block");
  return trace;
}

void truncate_to_blocks(const std::string& path, std::uint64_t blocks) {
  std::ifstream in(path, std::ios::binary);
  SC_CHECK(in.good(), "cannot open for truncation: " + path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::size_t pos = 0;
  std::uint64_t seen = 0;
  std::string_view payload;
  while (seen < blocks && next_block(content, pos, payload)) ++seen;
  SC_CHECK(seen == blocks, path + ": has only " + std::to_string(seen) +
                               " whole blocks, need " + std::to_string(blocks));
  std::filesystem::resize_file(path, pos);
}

}  // namespace synccount::sim
