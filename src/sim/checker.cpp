#include "sim/checker.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace synccount::sim {

StabilisationChecker::StabilisationChecker(std::uint64_t modulus) : modulus_(modulus) {
  SC_CHECK(modulus >= 2, "counter modulus must be at least 2");
}

void StabilisationChecker::observe(std::span<const std::uint64_t> outputs) {
  SC_CHECK(!outputs.empty(), "need at least one correct node");
  bool agreed = true;
  const std::uint64_t v = outputs[0];
  for (std::uint64_t o : outputs) {
    if (o != v) {
      agreed = false;
      break;
    }
  }
  if (!agreed) {
    max_window_ = std::max(max_window_, round_ - suffix_start_);
    suffix_start_ = round_ + 1;
  } else if (prev_agreed_ && v != (prev_value_ + 1) % modulus_) {
    // Agreement held both rounds but the counter did not advance by one:
    // the valid suffix restarts at the current round.
    max_window_ = std::max(max_window_, round_ - suffix_start_);
    suffix_start_ = round_;
  }
  prev_agreed_ = agreed;
  prev_value_ = v;
  ++round_;
}

}  // namespace synccount::sim
