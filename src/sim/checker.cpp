#include "sim/checker.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace synccount::sim {

StabilisationChecker::StabilisationChecker(std::uint64_t modulus) : modulus_(modulus) {
  SC_CHECK(modulus >= 2, "counter modulus must be at least 2");
}

void StabilisationChecker::observe(std::span<const std::uint64_t> outputs) {
  SC_CHECK(!outputs.empty(), "need at least one correct node");
  bool agreed = true;
  const std::uint64_t v = outputs[0];
  for (std::uint64_t o : outputs) {
    if (o != v) {
      agreed = false;
      break;
    }
  }
  observe_summary(agreed, v);
}

}  // namespace synccount::sim
