#include "sim/experiment_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "counting/algorithm_spec.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/fault_injector.hpp"

namespace synccount::sim {

namespace {

constexpr const char* kPartialFormat = "synccount-sweep-partial";
constexpr int kPartialVersion = 3;        // v3: per-line CRC suffixes
                                          // (v2: declarative specs -- variants +
                                          // sinks, record_* flags retired)
constexpr int kPartialVersionSketch = 4;  // v4: sketch-mode aggregates (specs
                                          // carry "stats":"sketch"; exact
                                          // specs stay v3 byte-for-byte)

// The wire version a spec's partials use, derived from the spec JSON itself
// so writers and readers can never disagree: a spec without a "stats" field
// is exact mode and stays on v3 (bit-identical to pre-sketch builds), a
// sketch spec promotes its partials to v4.
int partial_version_for(const util::Json& spec) {
  return spec.find("stats") != nullptr ? kPartialVersionSketch : kPartialVersion;
}
constexpr const char* kSpecFormat = "synccount-spec";
constexpr int kSpecVersion = 1;

std::string faulty_to_string(const std::vector<bool>& faulty) {
  std::string s;
  s.reserve(faulty.size());
  for (const bool b : faulty) s.push_back(b ? '1' : '0');
  return s;
}

std::vector<bool> faulty_from_string(const std::string& s) {
  std::vector<bool> out;
  out.reserve(s.size());
  for (const char c : s) {
    SC_CHECK(c == '0' || c == '1', "fault mask must be a 0/1 string");
    out.push_back(c == '1');
  }
  return out;
}

// Inverse of BitVec::to_hex: nibble i of the value is hex digit len-1-i.
State state_from_hex(const std::string& hex) {
  State s;
  SC_CHECK(!hex.empty() && hex.size() * 4 <= State::kCapacityBits,
           "bad state hex string: " + hex);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const char c = hex[hex.size() - 1 - i];
    std::uint64_t v = 0;
    if (c >= '0' && c <= '9') {
      v = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      SC_CHECK(false, "bad state hex string: " + hex);
    }
    s.set_bits(static_cast<int>(i) * 4, 4, v);
  }
  return s;
}

util::Json placements_to_json(const std::vector<FaultPattern>& placements) {
  util::Json arr = util::Json::array();
  for (const FaultPattern& p : placements) {
    util::Json j = util::Json::object();
    j.set("name", util::Json::string(p.name));
    j.set("faulty", util::Json::string(faulty_to_string(p.faulty)));
    arr.push_back(std::move(j));
  }
  return arr;
}

util::Json sink_config_to_json(const SinkConfig& cfg) {
  using util::Json;
  Json j = Json::object();
  switch (cfg.kind) {
    case SinkConfig::Kind::kTrace:
      j.set("kind", Json::string("trace"));
      j.set("path", Json::string(cfg.path));
      j.set("format", Json::string(cfg.format));
      j.set("outputs", Json::boolean(cfg.outputs));
      break;
    case SinkConfig::Kind::kProgress:
      j.set("kind", Json::string("progress"));
      break;
    case SinkConfig::Kind::kCheckpoint:
      j.set("kind", Json::string("checkpoint"));
      j.set("path", Json::string(cfg.path));
      break;
  }
  return j;
}

SinkConfig sink_config_from_json(const util::Json& j) {
  SinkConfig cfg;
  const std::string& kind = j.at("kind").as_string();
  if (kind == "trace") {
    cfg.kind = SinkConfig::Kind::kTrace;
    cfg.path = j.at("path").as_string();
    cfg.format = j.at("format").as_string();
    cfg.outputs = j.at("outputs").as_bool();
    SC_CHECK(cfg.format == "jsonl" || cfg.format == "csv" || cfg.format == "bin",
             "unknown trace format: " + cfg.format);
  } else if (kind == "progress") {
    cfg.kind = SinkConfig::Kind::kProgress;
  } else if (kind == "checkpoint") {
    cfg.kind = SinkConfig::Kind::kCheckpoint;
    cfg.path = j.at("path").as_string();
  } else {
    SC_CHECK(false, "unknown sink kind: " + kind);
  }
  return cfg;
}

// The grid echo a partial needs for printing/validation, shared by
// make_partial (from the spec struct via its JSON) and read_partial.
void derive_grid(ShardPartial& partial) {
  partial.adversaries.clear();
  const util::Json& advs = partial.spec.at("adversaries");
  for (std::size_t i = 0; i < advs.size(); ++i) {
    partial.adversaries.push_back(advs.at(i).as_string());
  }
  partial.placement_names.clear();
  const util::Json& placements = partial.spec.at("placements");
  for (std::size_t i = 0; i < placements.size(); ++i) {
    partial.placement_names.push_back(placements.at(i).at("name").as_string());
  }
  if (partial.placement_names.empty()) partial.placement_names.emplace_back("");
  partial.seeds = partial.spec.at("seeds").as_int();
  SC_CHECK(!partial.adversaries.empty() && partial.seeds > 0, "partial has an empty grid");
}

std::size_t grid_groups(const ShardPartial& partial) {
  return partial.adversaries.size() * partial.placement_names.size();
}

// Parses one wire line with the source + line number attached to any JSON
// error, so a truncated or corrupted file names itself instead of failing
// with a bare parser message. Spec files only -- partial/checkpoint lines
// additionally carry a CRC suffix and go through parse_framed_line.
util::Json parse_wire_line(const std::string& line, const std::string& source,
                           std::size_t line_no) {
  try {
    return util::Json::parse(line);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(source + ":" + std::to_string(line_no) +
                                ": bad JSON (truncated file?): " + e.what());
  }
}

// CRC check + parse of one v3 partial/checkpoint line.
util::Json parse_framed_line(const std::string& line, const std::string& source,
                             std::size_t line_no) {
  return parse_wire_line(crc_unframe(line, source, line_no), source, line_no);
}

// fsyncs the directory holding `path` so a just-renamed file survives a
// crash of the machine, not only of the process.
void fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  // synccount-lint: allow(raw-io) -- read-only directory fd, opened solely to
  // fsync the rename in the atomic-commit discipline this file implements.
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

// Writes `content` to `fd` honouring a torn-write fault at `site`: on a
// torn fault only the injector-chosen prefix reaches the file before the
// process dies -- the caller's recovery path must cope with exactly that.
void write_all_fsync(int fd, std::string_view content, std::string_view site,
                     const std::string& path) {
  const auto fault = util::FaultInjector::instance().on_write(site, content.size());
  const std::string_view payload =
      fault.torn ? content.substr(0, fault.keep_bytes) : content;
  std::size_t written = 0;
  while (written < payload.size()) {
    // synccount-lint: allow(raw-io) -- this IS the atomic writers' fd loop:
    // callers only ever see temp files published by fsync + rename.
    const ssize_t n = ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      SC_CHECK(false, "write failed for " + path + ": " + err);
    }
    written += static_cast<std::size_t>(n);
  }
  SC_CHECK(::fsync(fd) == 0, "fsync failed for " + path);
  if (fault.torn) {
    ::close(fd);
    util::FaultInjector::die();
  }
}

}  // namespace

// --- Line integrity ----------------------------------------------------------

std::string crc_frame(std::string_view json_dump) {
  std::string line(json_dump);
  line.push_back('#');
  line += util::crc32_hex(json_dump);
  return line;
}

std::string crc_unframe(const std::string& line, const std::string& source,
                        std::size_t line_no) {
  const auto ctx = [&](const std::string& what) {
    return source + ":" + std::to_string(line_no) + ": " + what;
  };
  // The suffix is exactly '#' + 8 hex digits at the end of the line; the
  // shortest framed payload is "{}".
  SC_CHECK(line.size() >= 11 && line[line.size() - 9] == '#',
           ctx("missing line CRC (pre-v3 file, torn write, or trailing garbage?)"));
  const std::string payload = line.substr(0, line.size() - 9);
  const std::string want = line.substr(line.size() - 8);
  const std::string got = util::crc32_hex(payload);
  SC_CHECK(want == got, ctx("bad line CRC (want " + got + ", file says " + want +
                            "): corrupt or torn line"));
  return payload;
}

// --- Atomic file helpers -----------------------------------------------------

void atomic_write_file(const std::string& path, std::string_view content,
                       std::string_view fault_site) {
  const std::string tmp = path + ".tmp";
  // synccount-lint: allow(raw-io) -- atomic_write_file's own temp file; the
  // destination is only ever touched by the rename after write + fsync.
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  SC_CHECK(fd >= 0, "cannot write " + tmp + ": " + std::strerror(errno));
  write_all_fsync(fd, content, fault_site, tmp);
  ::close(fd);
  SC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
           "cannot rename " + tmp + " -> " + path + ": " + std::strerror(errno));
  fsync_parent_dir(path);
  util::FaultInjector::instance().probe(fault_site);
}

AtomicAppender::AtomicAppender(std::string path, bool resume, std::string fault_site)
    : path_(std::move(path)), fault_site_(std::move(fault_site)) {
  SC_CHECK(!path_.empty(), "atomic appender needs a path");
  have_base_ = resume && std::filesystem::exists(path_);
}

void AtomicAppender::commit() {
  // The first commit publishes even an empty buffer (it IS the truncate of
  // the fresh-open path); later empty commits are no-ops.
  if (have_base_ && buffer_.empty()) return;
  const std::string tmp = path_ + ".tmp";
  std::error_code ec;
  if (have_base_) {
    // Committed base + buffer, without buffering the base in memory: copy
    // the published file, append, fsync, rename back over it.
    std::filesystem::copy_file(path_, tmp,
                               std::filesystem::copy_options::overwrite_existing, ec);
    SC_CHECK(!ec, "cannot stage " + tmp + ": " + ec.message());
  }
  const int flags = O_WRONLY | O_CLOEXEC | (have_base_ ? O_APPEND : O_CREAT | O_TRUNC);
  // synccount-lint: allow(raw-io) -- AtomicAppender's own staging file; the
  // published path only ever changes via the rename after write + fsync.
  const int fd = ::open(tmp.c_str(), flags, 0644);
  SC_CHECK(fd >= 0, "cannot write " + tmp + ": " + std::strerror(errno));
  write_all_fsync(fd, buffer_, fault_site_, tmp);
  ::close(fd);
  SC_CHECK(std::rename(tmp.c_str(), path_.c_str()) == 0,
           "cannot rename " + tmp + " -> " + path_ + ": " + std::strerror(errno));
  fsync_parent_dir(path_);
  have_base_ = true;
  buffer_.clear();
  util::FaultInjector::instance().probe(fault_site_);
}

void grid_names(const ExperimentSpec& spec, std::vector<std::string>& adversaries,
                std::vector<std::string>& placements) {
  adversaries = spec.adversaries;
  placements.clear();
  for (const FaultPattern& p : spec.placements) placements.push_back(p.name);
  if (placements.empty()) placements.emplace_back("");
}

util::Json experiment_spec_to_json(const ExperimentSpec& spec) {
  using util::Json;
  SC_CHECK(!spec.adversary_factory,
           "custom adversary factories are not serialisable (use library names)");
  const int sources = static_cast<int>(spec.algo != nullptr) +
                      static_cast<int>(spec.algorithm.has_value()) +
                      static_cast<int>(!spec.variants.empty());
  SC_CHECK(sources == 1, "ExperimentSpec needs exactly one of algo/algorithm/variants");

  Json j = Json::object();
  if (spec.algorithm.has_value()) {
    j.set("algo", to_json(*spec.algorithm));
  } else if (!spec.variants.empty()) {
    Json variants = Json::array();
    for (const counting::AlgorithmSpec& v : spec.variants) variants.push_back(to_json(v));
    j.set("variants", std::move(variants));
  } else {
    const auto algo_spec = counting::describe(spec.algo);
    SC_CHECK(algo_spec.has_value(),
             "algorithm is outside the describable family (see counting/algorithm_spec.hpp)");
    j.set("algo", to_json(*algo_spec));
  }
  Json advs = Json::array();
  for (const std::string& a : spec.adversaries) advs.push_back(Json::string(a));
  j.set("adversaries", std::move(advs));
  j.set("placements", placements_to_json(spec.placements));
  j.set("seeds", Json::number(static_cast<std::int64_t>(spec.seeds)));
  j.set("base_seed", Json::number(spec.base_seed));
  if (!spec.explicit_seeds.empty()) {
    Json seeds = Json::array();
    for (const std::uint64_t s : spec.explicit_seeds) seeds.push_back(Json::number(s));
    j.set("explicit_seeds", std::move(seeds));
  }
  j.set("max_rounds", Json::number(spec.max_rounds));
  j.set("extra_rounds", Json::number(spec.extra_rounds));
  j.set("horizon_override", Json::number(spec.horizon_override));
  j.set("margin", Json::number(spec.margin));
  j.set("stop_after_stable", Json::number(spec.stop_after_stable));
  if (!spec.initial.empty()) {
    const int bits = spec_algorithm(spec)->state_bits();
    Json initial = Json::array();
    for (const State& s : spec.initial) initial.push_back(Json::string(s.to_hex(bits)));
    j.set("initial", std::move(initial));
  }
  j.set("backend",
        Json::string(spec.backend == Backend::kScalar ? "scalar" : "auto"));
  // Written only in sketch mode: exact-mode spec JSON -- and with it the v3
  // partial wire bytes -- stays byte-identical to pre-sketch builds.
  if (spec.stats == util::StatsMode::kSketch) {
    j.set("stats", Json::string("sketch"));
  }
  if (!spec.sinks.empty()) {
    Json sinks = Json::array();
    for (const SinkConfig& s : spec.sinks) sinks.push_back(sink_config_to_json(s));
    j.set("sinks", std::move(sinks));
  }
  return j;
}

ExperimentSpec experiment_spec_from_json(const util::Json& j) {
  ExperimentSpec spec;
  if (const auto* algo = j.find("algo")) {
    spec.algorithm = counting::algorithm_spec_from_json(*algo);
  }
  if (const auto* variants = j.find("variants")) {
    for (std::size_t i = 0; i < variants->size(); ++i) {
      spec.variants.push_back(counting::algorithm_spec_from_json(variants->at(i)));
    }
  }
  SC_CHECK(spec.algorithm.has_value() != !spec.variants.empty(),
           "spec needs exactly one of algo/variants");
  spec.adversaries.clear();
  const util::Json& advs = j.at("adversaries");
  for (std::size_t i = 0; i < advs.size(); ++i) {
    spec.adversaries.push_back(advs.at(i).as_string());
  }
  const util::Json& placements = j.at("placements");
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const util::Json& p = placements.at(i);
    spec.placements.push_back(
        {p.at("name").as_string(), faulty_from_string(p.at("faulty").as_string())});
  }
  spec.seeds = j.at("seeds").as_int();
  spec.base_seed = j.at("base_seed").as_u64();
  if (const auto* seeds = j.find("explicit_seeds")) {
    for (std::size_t i = 0; i < seeds->size(); ++i) {
      spec.explicit_seeds.push_back(seeds->at(i).as_u64());
    }
  }
  spec.max_rounds = j.at("max_rounds").as_u64();
  spec.extra_rounds = j.at("extra_rounds").as_u64();
  spec.horizon_override = j.at("horizon_override").as_u64();
  spec.margin = j.at("margin").as_u64();
  spec.stop_after_stable = j.at("stop_after_stable").as_u64();
  if (const auto* initial = j.find("initial")) {
    for (std::size_t i = 0; i < initial->size(); ++i) {
      spec.initial.push_back(state_from_hex(initial->at(i).as_string()));
    }
  }
  const std::string& backend = j.at("backend").as_string();
  SC_CHECK(backend == "auto" || backend == "scalar", "unknown backend: " + backend);
  spec.backend = backend == "scalar" ? Backend::kScalar : Backend::kAuto;
  if (const auto* stats = j.find("stats")) {
    SC_CHECK(stats->as_string() == "sketch", "unknown stats mode: " + stats->as_string());
    spec.stats = util::StatsMode::kSketch;
  }
  if (const auto* sinks = j.find("sinks")) {
    for (std::size_t i = 0; i < sinks->size(); ++i) {
      spec.sinks.push_back(sink_config_from_json(sinks->at(i)));
    }
  }
  return spec;
}

void write_spec_file(std::ostream& out, const ExperimentSpec& spec) {
  using util::Json;
  Json j = Json::object();
  j.set("format", Json::string(kSpecFormat));
  j.set("version", Json::number(static_cast<std::int64_t>(kSpecVersion)));
  j.set("spec", experiment_spec_to_json(spec));
  out << j.dump() << '\n';
}

ExperimentSpec read_spec_file(std::istream& in, const std::string& source) {
  const auto ctx = [&source](const std::string& what) { return source + ": " + what; };
  std::string line;
  SC_CHECK(static_cast<bool>(std::getline(in, line)), ctx("empty spec file"));
  const util::Json j = parse_wire_line(line, source, 1);
  SC_CHECK(j.has("format") && j.at("format").as_string() == kSpecFormat,
           ctx("not a synccount-spec file"));
  SC_CHECK(j.at("version").as_i64() == kSpecVersion,
           ctx("unsupported spec version " + j.at("version").dump() + " (want " +
               std::to_string(kSpecVersion) + ")"));
  return experiment_spec_from_json(j.at("spec"));
}

util::Json aggregate_to_json(const AggregateResult& agg) {
  using util::Json;
  Json j = Json::object();
  j.set("runs", Json::number(agg.runs));
  j.set("stabilised", Json::number(agg.stabilised));
  j.set("max_pulls", Json::number(agg.max_pulls));
  j.set("stabilisation", to_json(agg.stabilisation));
  j.set("rounds", to_json(agg.rounds));
  j.set("avg_pulls", to_json(agg.avg_pulls));
  return j;
}

AggregateResult aggregate_from_json(const util::Json& j) {
  AggregateResult agg;
  agg.runs = j.at("runs").as_u64();
  agg.stabilised = j.at("stabilised").as_u64();
  agg.max_pulls = j.at("max_pulls").as_u64();
  agg.stabilisation = util::streaming_stats_from_json(j.at("stabilisation"));
  agg.rounds = util::streaming_stats_from_json(j.at("rounds"));
  agg.avg_pulls = util::streaming_stats_from_json(j.at("avg_pulls"));
  SC_CHECK(agg.rounds.count() == agg.runs && agg.avg_pulls.count() == agg.runs &&
               agg.stabilisation.count() == agg.stabilised,
           "aggregate sample counts disagree with run counts");
  return agg;
}

AggregateResult ShardPartial::total() const {
  AggregateResult total;
  for (const Group& g : groups) total.merge(g.aggregate);
  return total;
}

ShardPartial make_partial(const ExperimentSpec& spec, const ShardPlan& plan,
                          const ExperimentResult& result) {
  ShardPartial partial;
  partial.plan = plan;
  partial.spec = experiment_spec_to_json(spec);
  derive_grid(partial);
  SC_CHECK(plan.group_end <= grid_groups(partial), "shard plan does not fit the grid");
  const std::size_t n_pl = partial.placement_names.size();
  for (std::size_t g = plan.group_begin; g < plan.group_end; ++g) {
    ShardPartial::Group group;
    group.group = g;
    group.aggregate = result.aggregate(g / n_pl, g % n_pl);
    SC_CHECK(group.aggregate.runs == static_cast<std::uint64_t>(partial.seeds),
             "result does not cover the shard's cells");
    partial.groups.push_back(std::move(group));
  }
  return partial;
}

void write_partial_header(std::ostream& out, const ShardPlan& plan, const util::Json& spec) {
  using util::Json;
  Json header = Json::object();
  header.set("format", Json::string(kPartialFormat));
  header.set("version", Json::number(static_cast<std::int64_t>(partial_version_for(spec))));
  header.set("shards", Json::number(static_cast<std::int64_t>(plan.shards)));
  header.set("shard", Json::number(static_cast<std::int64_t>(plan.shard)));
  header.set("group_begin", Json::number(static_cast<std::uint64_t>(plan.group_begin)));
  header.set("group_end", Json::number(static_cast<std::uint64_t>(plan.group_end)));
  header.set("spec", spec);
  out << crc_frame(header.dump()) << '\n';
}

void write_partial_group(std::ostream& out, std::size_t group,
                         const std::vector<std::string>& adversaries,
                         const std::vector<std::string>& placements,
                         const AggregateResult& aggregate) {
  using util::Json;
  const std::size_t n_pl = placements.size();
  Json line = Json::object();
  line.set("group", Json::number(static_cast<std::uint64_t>(group)));
  line.set("adversary", Json::string(adversaries[group / n_pl]));
  line.set("placement", Json::string(placements[group % n_pl]));
  line.set("aggregate", aggregate_to_json(aggregate));
  out << crc_frame(line.dump()) << '\n';
}

void write_partial(std::ostream& out, const ShardPartial& partial) {
  write_partial_header(out, partial.plan, partial.spec);
  for (const ShardPartial::Group& g : partial.groups) {
    write_partial_group(out, g.group, partial.adversaries, partial.placement_names,
                        g.aggregate);
  }
}

ShardPartial read_partial(std::istream& in, const std::string& source) {
  const auto ctx = [&source](const std::string& what) { return source + ": " + what; };
  std::string line;
  SC_CHECK(static_cast<bool>(std::getline(in, line)), ctx("empty partial file"));
  const util::Json header = parse_framed_line(line, source, 1);
  SC_CHECK(header.has("format") && header.at("format").as_string() == kPartialFormat,
           ctx("not a sweep-partial file"));
  const std::int64_t version = header.at("version").as_i64();
  SC_CHECK(version == kPartialVersion || version == kPartialVersionSketch,
           ctx("unsupported format version " + header.at("version").dump() + " (want " +
               std::to_string(kPartialVersion) + " or " +
               std::to_string(kPartialVersionSketch) + ")"));
  SC_CHECK(version == partial_version_for(header.at("spec")),
           ctx("format version disagrees with the spec's stats mode"));

  ShardPartial partial;
  partial.source = source;
  partial.plan.shards = header.at("shards").as_int();
  partial.plan.shard = header.at("shard").as_int();
  partial.plan.group_begin = header.at("group_begin").as_u64();
  partial.plan.group_end = header.at("group_end").as_u64();
  partial.spec = header.at("spec");
  derive_grid(partial);
  SC_CHECK(partial.plan.shards >= 1 && partial.plan.shard >= 0 &&
               partial.plan.shard < partial.plan.shards,
           ctx("bad shard coordinates"));
  SC_CHECK(partial.plan.group_begin <= partial.plan.group_end &&
               partial.plan.group_end <= grid_groups(partial),
           ctx("shard group range does not fit the grid"));

  const std::size_t n_pl = partial.placement_names.size();
  std::size_t expected = partial.plan.group_begin;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const util::Json g = parse_framed_line(line, source, line_no);
    SC_CHECK(!g.has("format"), ctx("duplicate header line (two partials concatenated?)"));
    SC_CHECK(expected < partial.plan.group_end,
             ctx("group line past the declared shard range"));
    ShardPartial::Group group;
    group.group = g.at("group").as_u64();
    SC_CHECK(group.group == expected, ctx("group lines out of order"));
    SC_CHECK(g.at("adversary").as_string() == partial.adversaries[group.group / n_pl] &&
                 g.at("placement").as_string() == partial.placement_names[group.group % n_pl],
             ctx("group coordinates disagree with the grid"));
    try {
      group.aggregate = aggregate_from_json(g.at("aggregate"));
    } catch (const std::invalid_argument& e) {
      // Name the shard file and line: the merge caller sees immediately
      // WHICH worker's partial is corrupt.
      throw std::invalid_argument(source + ":" + std::to_string(line_no) +
                                  ": corrupt aggregate for group " +
                                  std::to_string(group.group) + ": " + e.what());
    }
    partial.groups.push_back(std::move(group));
    ++expected;
  }
  SC_CHECK(expected == partial.plan.group_end, ctx("partial is missing group lines"));
  return partial;
}

ShardPartial merge_partials(std::vector<ShardPartial> parts) {
  SC_CHECK(!parts.empty(), "nothing to merge");
  std::sort(parts.begin(), parts.end(),
            [](const ShardPartial& a, const ShardPartial& b) {
              return a.plan.shard < b.plan.shard;
            });
  const std::string spec_dump = parts.front().spec.dump();
  const int shards = parts.front().plan.shards;
  SC_CHECK(parts.size() == static_cast<std::size_t>(shards),
           "expected " + std::to_string(shards) + " partials, got " +
               std::to_string(parts.size()));

  ShardPartial merged;
  merged.plan.shards = 1;
  merged.plan.shard = 0;
  merged.plan.group_begin = 0;
  merged.spec = parts.front().spec;
  derive_grid(merged);

  std::size_t next_group = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    ShardPartial& p = parts[i];
    // Merge diagnostics name the offending worker file whenever the partial
    // was read from one, so a corrupt or mismatched shard is identifiable
    // without binary-searching K inputs.
    const std::string who = "shard " + std::to_string(p.plan.shard) +
                            (p.source.empty() ? "" : " (" + p.source + ")");
    SC_CHECK(p.plan.shard == static_cast<int>(i),
             "duplicate or missing shard index at " + who);
    SC_CHECK(p.plan.shards == shards, who + " disagrees on the shard count");
    SC_CHECK(p.spec.dump() == spec_dump,
             who + " comes from a different experiment spec: " +
                 describe_spec_mismatch(parts.front().spec, p.spec));
    SC_CHECK(p.plan.group_begin == next_group,
             "shard group ranges do not concatenate at " + who);
    next_group = p.plan.group_end;
    for (ShardPartial::Group& g : p.groups) merged.groups.push_back(std::move(g));
  }
  SC_CHECK(next_group == grid_groups(merged), "partials do not cover the whole grid");
  merged.plan.group_end = next_group;
  return merged;
}

std::string describe_spec_mismatch(const util::Json& wanted, const util::Json& found) {
  const auto clip = [](std::string s) {
    if (s.size() > 48) s = s.substr(0, 45) + "...";
    return s;
  };
  std::string out;
  const auto add = [&out](const std::string& part) {
    if (!out.empty()) out += "; ";
    out += part;
  };
  for (const auto& [key, want] : wanted.members()) {
    const util::Json* got = found.find(key);
    if (got == nullptr) {
      add(key + ": missing (want " + clip(want.dump()) + ")");
    } else if (got->dump() != want.dump()) {
      add(key + ": found " + clip(got->dump()) + ", want " + clip(want.dump()));
    }
  }
  for (const auto& [key, got] : found.members()) {
    if (!wanted.has(key)) add(key + ": unexpected " + clip(got.dump()));
  }
  return out;
}

CheckpointState read_checkpoint(const std::string& path, const ExperimentSpec& spec,
                                const ShardPlan& plan) {
  CheckpointState state;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return state;  // no file yet: fresh start

  const auto ctx = [&path](const std::string& what) { return path + ": " + what; };
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (content.empty()) return state;

  // Walk complete ('\n'-terminated) lines only; a line the dying worker
  // never finished is not part of the resumable prefix.
  std::size_t pos = 0;
  std::size_t line_no = 0;
  std::vector<std::string> adversaries, placements;
  grid_names(spec, adversaries, placements);
  const std::string expected_spec = experiment_spec_to_json(spec).dump();
  std::size_t expected_group = plan.group_begin;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // incomplete last line: stop here
    const std::string line = content.substr(pos, nl - pos);
    ++line_no;
    if (!state.header_present) {
      // Header damage is not resumable-from-zero: silently restarting would
      // clobber a file the caller thought held progress.
      const util::Json header = parse_framed_line(line, path, line_no);
      SC_CHECK(header.has("format") && header.at("format").as_string() == kPartialFormat,
               ctx("not a checkpoint (sweep-partial) file"));
      SC_CHECK(header.at("version").as_i64() ==
                   partial_version_for(experiment_spec_to_json(spec)),
               ctx("unsupported format version"));
      SC_CHECK(header.at("spec").dump() == expected_spec,
               ctx("checkpoint belongs to a different experiment spec -- mismatched " +
                   describe_spec_mismatch(experiment_spec_to_json(spec),
                                          header.at("spec"))));
      SC_CHECK(header.at("shards").as_int() == plan.shards &&
                   header.at("shard").as_int() == plan.shard &&
                   header.at("group_begin").as_u64() == plan.group_begin &&
                   header.at("group_end").as_u64() == plan.group_end,
               ctx("checkpoint belongs to a different shard plan"));
      state.header_present = true;
    } else {
      // Group lines: accept the well-formed in-order prefix, stop at the
      // first line that does not extend it (a bad CRC is the usual crash
      // signature: the dying worker tore the line mid-write).
      util::Json g;
      try {
        g = util::Json::parse(crc_unframe(line, path, line_no));
        if (!g.has("group") || g.at("group").as_u64() != expected_group ||
            expected_group >= plan.group_end) {
          break;
        }
        (void)aggregate_from_json(g.at("aggregate"));
      } catch (const std::invalid_argument&) {
        break;
      }
      ++expected_group;
    }
    pos = nl + 1;
    state.valid_bytes = pos;
  }
  state.next_group = state.header_present ? expected_group : plan.group_begin;
  return state;
}

void truncate_to_lines(const std::string& path, std::uint64_t lines) {
  // Streaming scan + in-place resize: resumed trace files can be huge (the
  // whole point of streaming sinks), so never slurp or rewrite them.
  std::uint64_t keep_bytes = 0;
  {
    std::ifstream in(path, std::ios::binary);
    SC_CHECK(in.good(), "cannot open for truncation: " + path);
    std::uint64_t seen = 0;
    char buf[1 << 16];
    while (seen < lines && in) {
      in.read(buf, sizeof(buf));
      const std::streamsize got = in.gcount();
      for (std::streamsize i = 0; i < got && seen < lines; ++i) {
        ++keep_bytes;
        if (buf[i] == '\n') ++seen;
      }
    }
    SC_CHECK(seen == lines, path + ": has only " + std::to_string(seen) +
                                " complete lines, need " + std::to_string(lines));
  }
  std::filesystem::resize_file(path, keep_bytes);
}

}  // namespace synccount::sim
