// Wire format for distributed (sharded) sweeps.
//
// One huge experiment grid is split into ShardPlans (whole (adversary,
// placement) cell-groups, engine.hpp) and farmed out to worker processes;
// each worker serialises its partial result to a line-oriented JSON file and
// an orchestrator -- `synccount_cli merge`, or the forking path inside
// `synccount_cli sweep --shards=K` -- folds the partials back together.
// Multi-machine runs are the same flow with a file copy in the middle.
//
// A partial file is plain JSONL (util/json.hpp):
//
//   line 1   header: {"format":"synccount-sweep-partial","version":3,
//            "shards":K,"shard":i,"group_begin":b,"group_end":e,
//            "spec":{...ExperimentSpec...}}#crc
//   line 2+  one line per (adversary, placement) group, in group order:
//            {"group":g,"adversary":"split","placement":"spread",
//             "aggregate":{...}}#crc
//
// Every partial/checkpoint line ends in `#` plus the 8-hex-digit CRC-32 of
// the JSON payload (v3). Readers verify it before parsing, so a bit flip, a
// torn write, or trailing garbage fails with a file:line diagnostic instead
// of being folded best-effort into an aggregate; the tolerant checkpoint
// scan treats a bad-CRC tail as the crash point and resumes before it.
//
// Aggregates serialise their StreamingStats as retained samples in add()
// order, so deserialise-and-merge replays the exact fp-op sequence of a
// single-process fold: merging the K partials of a grid is bit-identical to
// Engine::run over the whole grid, and re-serialising the merge yields a
// byte-identical file to a --shards=1 run (CI enforces this).
//
// Sketch mode (ExperimentSpec.stats = kSketch) promotes the format to v4:
// the spec JSON carries "stats":"sketch" and aggregates serialise their
// deterministic KLL sketch state (util/kll_sketch.hpp) instead of the full
// sample vectors -- O(k log n) bytes per group whatever the seed count.
// Merging stays a deterministic left-fold in group order, so merged sharded
// partials still byte-compare equal to a single-process sketch run; exact
// specs never emit the "stats" field and stay on v3 byte-for-byte.
//
// ExperimentSpec travels as data end to end: the algorithm as a
// counting::AlgorithmSpec (or a variant list -- a sweep axis in expanded
// form), adversaries by library name, and sink configs verbatim; specs
// carrying a custom adversary factory, or an `algo` pointer outside the
// describable family, are not serialisable and are rejected loudly.
//
// Spec files (`synccount_cli plan --emit` / `sweep --spec`) are one JSON
// line: {"format":"synccount-spec","version":1,"spec":{...}}.
//
// Checkpoint files (CheckpointSink, sim/sink.hpp) are shard-partial files
// grown one group line at a time; read_checkpoint scans a possibly
// truncated checkpoint and reports where a resumed worker must restart.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/json.hpp"

namespace synccount::sim {

// --- Line integrity ----------------------------------------------------------

// Frames one wire line: `json_dump` + '#' + 8-hex CRC-32 of the dump (no
// trailing newline). Everything the v3 partial format writes goes through
// this.
std::string crc_frame(std::string_view json_dump);

// Validates and strips the CRC suffix of a framed line. Throws
// std::invalid_argument naming `source`:`line_no` when the suffix is
// missing, malformed, or does not match the payload (torn write, bit flip,
// or trailing garbage).
std::string crc_unframe(const std::string& line, const std::string& source,
                        std::size_t line_no);

// --- Atomic file helpers -----------------------------------------------------

// Durably replaces `path` with `content`: write to `path + ".tmp"`, fsync,
// rename over `path`, fsync the directory. A kill at any point leaves
// either the old file or the new one, never a torn mix. `fault_site` names
// the util::FaultInjector probe point (torn-write + kill-after-commit).
void atomic_write_file(const std::string& path, std::string_view content,
                       std::string_view fault_site = "io.atomic_write");

// Crash-consistent append: buffered bytes become visible only at commit(),
// which publishes (previous committed contents + buffer) via the same
// temp-file + fsync + atomic-rename discipline. The published file never
// has a torn tail; a kill between commits costs exactly the uncommitted
// buffer. `resume` adopts an existing file as the committed base instead
// of starting empty.
class AtomicAppender {
 public:
  explicit AtomicAppender(std::string path, bool resume = false,
                          std::string fault_site = "io.append");

  void append(std::string_view bytes) { buffer_.append(bytes); }
  bool dirty() const noexcept { return !buffer_.empty(); }
  const std::string& path() const noexcept { return path_; }

  // Publishes the committed base + buffer atomically; no-op when nothing
  // was appended since the last commit (except the very first commit of a
  // fresh file, which publishes the -- possibly empty -- base).
  void commit();

 private:
  std::string path_;
  std::string fault_site_;
  std::string buffer_;
  bool have_base_ = false;  // `path_` holds committed content
};

// --- Type codecs -------------------------------------------------------------

// Throws (SC_CHECK) when the spec carries an adversary factory or an `algo`
// pointer outside the describable family.
util::Json experiment_spec_to_json(const ExperimentSpec& spec);
ExperimentSpec experiment_spec_from_json(const util::Json& j);

// --- Spec files --------------------------------------------------------------

void write_spec_file(std::ostream& out, const ExperimentSpec& spec);

// Throws std::invalid_argument on malformed input or a format/version
// mismatch. `source` names the stream in error messages (a file path).
ExperimentSpec read_spec_file(std::istream& in, const std::string& source = "<stream>");

util::Json aggregate_to_json(const AggregateResult& agg);
AggregateResult aggregate_from_json(const util::Json& j);

// --- Shard partials ----------------------------------------------------------

struct ShardPartial {
  ShardPlan plan;
  util::Json spec;  // the ExperimentSpec JSON (grid echo; dump() compared on merge)

  // Where this partial was read from (read_partial's `source`), so merge
  // validation can say WHICH worker file is corrupt or inconsistent. Not
  // serialized.
  std::string source;

  // Derived from `spec` for printing and validation.
  std::vector<std::string> adversaries;
  std::vector<std::string> placement_names;
  int seeds = 0;

  struct Group {
    std::size_t group = 0;  // global group index: adversary * placements + placement
    AggregateResult aggregate;
  };
  std::vector<Group> groups;  // in group order, covering [group_begin, group_end)

  // Fold of the groups in group order == the shard's total aggregate.
  AggregateResult total() const;
};

// Packages one worker's result (Engine::run(spec, plan)) for the wire.
ShardPartial make_partial(const ExperimentSpec& spec, const ShardPlan& plan,
                          const ExperimentResult& result);

void write_partial(std::ostream& out, const ShardPartial& partial);

// The two line shapes of a partial file, exposed so CheckpointSink can grow
// one incrementally; write_partial is exactly header + group lines.
// `adversaries`/`placements` are the grid echo names (placements resolved to
// the one unnamed fault-free pattern when the spec has none).
void write_partial_header(std::ostream& out, const ShardPlan& plan, const util::Json& spec);
void write_partial_group(std::ostream& out, std::size_t group,
                         const std::vector<std::string>& adversaries,
                         const std::vector<std::string>& placements,
                         const AggregateResult& aggregate);

// The grid-echo names of a spec (adversaries, resolved placement names);
// what the per-line writers above and the streaming sinks need.
void grid_names(const ExperimentSpec& spec, std::vector<std::string>& adversaries,
                std::vector<std::string>& placements);

// Throws std::invalid_argument on malformed input or a format/version
// mismatch. `source` names the stream in error messages (a file path).
ShardPartial read_partial(std::istream& in, const std::string& source = "<stream>");

// Folds worker partials (any input order) into the full-grid partial
// {shards=1, shard=0, groups [0, G)}. Requires exactly one partial per shard
// index of a consistent grid: identical spec dumps, identical shard counts,
// and group ranges that concatenate to the whole grid. The result
// write_partial()s byte-identically to a single-process --shards=1 run.
ShardPartial merge_partials(std::vector<ShardPartial> parts);

// One line per differing top-level field of two serialized spec objects
// ("seeds: checkpoint has 8, spec wants 24"), joined with "; ". Empty when
// the dumps agree. Used to explain foreign-checkpoint rejections: naming
// the mismatched fields turns "foreign checkpoint" into an actionable
// diagnostic.
std::string describe_spec_mismatch(const util::Json& wanted, const util::Json& found);

// --- Checkpoints -------------------------------------------------------------

// What a tolerant scan of a (possibly truncated) checkpoint file found.
struct CheckpointState {
  bool header_present = false;    // false: file missing/empty -> fresh start
  std::size_t next_group = 0;     // first group NOT in the file
  std::uint64_t valid_bytes = 0;  // prefix length ending at the last complete line
};

// Scans `path` for a resumable prefix of the shard-partial format: a header
// matching `spec` (by serialized dump) and `plan`, followed by group lines
// in order. Scanning stops at the first incomplete or malformed line (a
// preempted worker may have died mid-write); everything after `valid_bytes`
// must be truncated away before appending. Throws std::invalid_argument
// when a header IS present but belongs to a different spec or plan --
// resuming someone else's checkpoint is always a caller mistake.
CheckpointState read_checkpoint(const std::string& path, const ExperimentSpec& spec,
                                const ShardPlan& plan);

// Truncates `path` to its first `lines` complete ('\n'-terminated) lines:
// the resume surgery for line-oriented companion files (trace sinks flush at
// group boundaries BEFORE the checkpoint line is written, so a checkpointed
// group implies its trace rows are on disk -- possibly followed by rows of
// groups the checkpoint never recorded, which this cuts away). Throws when
// the file has fewer complete lines than requested.
void truncate_to_lines(const std::string& path, std::uint64_t lines);

}  // namespace synccount::sim
