// Wire format for distributed (sharded) sweeps.
//
// One huge experiment grid is split into ShardPlans (whole (adversary,
// placement) cell-groups, engine.hpp) and farmed out to worker processes;
// each worker serialises its partial result to a line-oriented JSON file and
// an orchestrator -- `synccount_cli merge`, or the forking path inside
// `synccount_cli sweep --shards=K` -- folds the partials back together.
// Multi-machine runs are the same flow with a file copy in the middle.
//
// A partial file is plain JSONL (util/json.hpp):
//
//   line 1   header: {"format":"synccount-sweep-partial","version":1,
//            "shards":K,"shard":i,"group_begin":b,"group_end":e,
//            "spec":{...ExperimentSpec...}}
//   line 2+  one line per (adversary, placement) group, in group order:
//            {"group":g,"adversary":"split","placement":"spread",
//             "aggregate":{...}}
//
// Aggregates serialise their StreamingStats as retained samples in add()
// order, so deserialise-and-merge replays the exact fp-op sequence of a
// single-process fold: merging the K partials of a grid is bit-identical to
// Engine::run over the whole grid, and re-serialising the merge yields a
// byte-identical file to a --shards=1 run (CI enforces this).
//
// ExperimentSpec travels minus its callbacks: the algorithm as a
// counting::AlgorithmSpec (describe/build round-trip) and adversaries by
// library name; specs carrying algo/adversary factories are not
// serialisable and are rejected loudly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/json.hpp"

namespace synccount::sim {

// --- Type codecs -------------------------------------------------------------

// Throws (SC_CHECK) when the spec carries an algo/adversary factory or an
// algorithm outside the describable family.
util::Json experiment_spec_to_json(const ExperimentSpec& spec);
ExperimentSpec experiment_spec_from_json(const util::Json& j);

util::Json aggregate_to_json(const AggregateResult& agg);
AggregateResult aggregate_from_json(const util::Json& j);

// --- Shard partials ----------------------------------------------------------

struct ShardPartial {
  ShardPlan plan;
  util::Json spec;  // the ExperimentSpec JSON (grid echo; dump() compared on merge)

  // Derived from `spec` for printing and validation.
  std::vector<std::string> adversaries;
  std::vector<std::string> placement_names;
  int seeds = 0;

  struct Group {
    std::size_t group = 0;  // global group index: adversary * placements + placement
    AggregateResult aggregate;
  };
  std::vector<Group> groups;  // in group order, covering [group_begin, group_end)

  // Fold of the groups in group order == the shard's total aggregate.
  AggregateResult total() const;
};

// Packages one worker's result (Engine::run(spec, plan)) for the wire.
ShardPartial make_partial(const ExperimentSpec& spec, const ShardPlan& plan,
                          const ExperimentResult& result);

void write_partial(std::ostream& out, const ShardPartial& partial);

// Throws std::invalid_argument on malformed input or a format/version
// mismatch. `source` names the stream in error messages (a file path).
ShardPartial read_partial(std::istream& in, const std::string& source = "<stream>");

// Folds worker partials (any input order) into the full-grid partial
// {shards=1, shard=0, groups [0, G)}. Requires exactly one partial per shard
// index of a consistent grid: identical spec dumps, identical shard counts,
// and group ranges that concatenate to the whole grid. The result
// write_partial()s byte-identically to a single-process --shards=1 run.
ShardPartial merge_partials(std::vector<ShardPartial> parts);

}  // namespace synccount::sim
