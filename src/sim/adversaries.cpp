#include "sim/adversaries.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace synccount::sim {

namespace {

State random_state(const CountingAlgorithm& algo, util::Rng& rng) {
  return counting::arbitrary_state(algo, rng);
}

// Draws exactly the bit chunks of counting::arbitrary_state but skips the
// canonical decode. Every consumer reduces a raw pattern identically to
// canonicalize (the scalar runner canonicalises delivered messages itself;
// the batched runners reduce raw fields directly), so a strategy may hand
// out raw states as long as the rng draw sequence is unchanged -- which it
// is, canonicalize being draw-free.
State raw_random_state(const CountingAlgorithm& algo, util::Rng& rng) {
  State raw;
  const int bits = algo.state_bits();
  for (int off = 0; off < bits; off += 64) {
    raw.set_bits(off, std::min(64, bits - off), rng.next_u64());
  }
  return raw;
}

// Measures how "agreed" a set of outputs is: the count of the most common
// output value. Lower is worse for the system, so the lookahead adversary
// minimises this.
int agreement_score(std::span<const std::uint64_t> outs) {
  int best = 0;
  for (std::size_t a = 0; a < outs.size(); ++a) {
    int cnt = 0;
    for (std::size_t b = 0; b < outs.size(); ++b) {
      if (outs[b] == outs[a]) ++cnt;
    }
    best = std::max(best, cnt);
  }
  return best;
}

}  // namespace

State SilentAdversary::message(std::uint64_t, NodeId, NodeId, std::span<const State>,
                               const CountingAlgorithm& algo, util::Rng&) {
  return algo.canonicalize(State{});
}

State EchoAdversary::message(std::uint64_t, NodeId sender, NodeId, std::span<const State> states,
                             const CountingAlgorithm&, util::Rng&) {
  return states[static_cast<std::size_t>(sender)];
}

State RandomAdversary::message(std::uint64_t, NodeId, NodeId, std::span<const State>,
                               const CountingAlgorithm& algo, util::Rng& rng) {
  return random_state(algo, rng);
}

void SplitAdversary::begin_round(std::uint64_t, std::span<const State>,
                                 const CountingAlgorithm& algo, std::span<const NodeId>,
                                 util::Rng& rng) {
  even_ = raw_random_state(algo, rng);
  odd_ = raw_random_state(algo, rng);
}

State SplitAdversary::message(std::uint64_t, NodeId, NodeId receiver, std::span<const State>,
                              const CountingAlgorithm&, util::Rng&) {
  return receiver % 2 == 0 ? even_ : odd_;
}

void SplitAdversary::forge_block(std::uint64_t round, std::span<const State> true_states,
                                 const CountingAlgorithm& algo,
                                 std::span<const NodeId> faulty_ids,
                                 std::span<const NodeId> /*correct_ids*/, util::Rng& rng,
                                 ForgedRound& out) {
  begin_round(round, true_states, algo, faulty_ids, rng);
  const std::size_t nf = faulty_ids.size();
  out.num_profiles = 2;
  out.states.resize(2 * nf);
  for (std::size_t k = 0; k < nf; ++k) {
    out.states[k] = even_;
    out.states[nf + k] = odd_;
  }
  // The parity map never changes, so fill it only when the size does.
  if (out.profile_of.size() != true_states.size()) {
    out.profile_of.resize(true_states.size());
    for (std::size_t r = 0; r < out.profile_of.size(); ++r) {
      out.profile_of[r] = static_cast<std::uint16_t>(r & 1);
    }
  }
}

void RandomAdversary::forge_block(std::uint64_t, std::span<const State> true_states,
                                  const CountingAlgorithm& algo,
                                  std::span<const NodeId> faulty_ids,
                                  std::span<const NodeId> correct_ids, util::Rng& rng,
                                  ForgedRound& out) {
  // begin_round is passive; the draws happen per (receiver, sender) in the
  // scalar runner's nested query order.
  const std::size_t nf = faulty_ids.size();
  out.num_profiles = static_cast<int>(correct_ids.size());
  out.states.resize(correct_ids.size() * nf);
  out.profile_of.assign(true_states.size(), 0);
  for (std::size_t j = 0; j < correct_ids.size(); ++j) {
    out.profile_of[static_cast<std::size_t>(correct_ids[j])] = static_cast<std::uint16_t>(j);
    for (std::size_t k = 0; k < nf; ++k) {
      out.states[j * nf + k] = raw_random_state(algo, rng);
    }
  }
}

bool SplitAdversary::forge_block_idx(std::uint64_t /*round*/, std::span<const State> true_states,
                                     const CountingAlgorithm& algo,
                                     std::span<const NodeId> faulty_ids,
                                     std::span<const NodeId> /*correct_ids*/, util::Rng& rng,
                                     ForgedRound& out) {
  if (!idx_guard(ig_, algo)) return false;
  // Same two draws as begin_round (even, then odd), minus the State traffic.
  const std::uint8_t even = raw_random_idx(ig_, rng);
  const std::uint8_t odd = raw_random_idx(ig_, rng);
  const std::size_t nf = faulty_ids.size();
  out.num_profiles = 2;
  out.idx.resize(2 * nf);
  for (std::size_t k = 0; k < nf; ++k) {
    out.idx[k] = even;
    out.idx[nf + k] = odd;
  }
  if (out.profile_of.size() != true_states.size()) {
    out.profile_of.resize(true_states.size());
    for (std::size_t r = 0; r < out.profile_of.size(); ++r) {
      out.profile_of[r] = static_cast<std::uint16_t>(r & 1);
    }
  }
  return true;
}

bool SplitAdversary::forge_lanes_idx(std::uint64_t /*round*/, const CountingAlgorithm& algo,
                                     std::span<const NodeId> faulty_ids,
                                     std::span<const NodeId> correct_ids,
                                     std::span<util::Rng> rngs,
                                     std::span<const std::uint64_t> active,
                                     std::uint8_t* out_idx, ForgedRound& out) {
  if (!idx_guard(ig_, algo)) return false;
  const std::size_t nf = faulty_ids.size();
  const std::size_t L = rngs.size();
  const std::size_t n = faulty_ids.size() + correct_ids.size();
  out.num_profiles = 2;
  if (out.profile_of.size() != n) {
    out.profile_of.resize(n);
    for (std::size_t r = 0; r < n; ++r) out.profile_of[r] = static_cast<std::uint16_t>(r & 1);
  }
  if (ig_.bits == 0) {
    std::fill(out_idx, out_idx + 2 * nf * L, std::uint8_t{0});
    return true;
  }
  const std::uint64_t mask = ig_.mask;
  const std::uint64_t ns = ig_.ns;
  for (std::size_t w = 0; w < active.size(); ++w) {
    for (std::uint64_t m = active[w]; m; m &= m - 1) {
      const std::size_t l = w * 64 + static_cast<std::size_t>(std::countr_zero(m));
      util::Rng& rng = rngs[l];
      // Same two draws as begin_round: even receivers' value, then odd's.
      // The reductions are branchless -- a data-dependent branch here
      // mispredicts on every non-power-of-two |X|.
      std::uint64_t even = rng.next_u64() & mask;
      even -= ns & -static_cast<std::uint64_t>(even >= ns);
      std::uint64_t odd = rng.next_u64() & mask;
      odd -= ns & -static_cast<std::uint64_t>(odd >= ns);
      for (std::size_t k = 0; k < nf; ++k) {
        out_idx[k * L + l] = static_cast<std::uint8_t>(even);
        out_idx[(nf + k) * L + l] = static_cast<std::uint8_t>(odd);
      }
    }
  }
  return true;
}

bool RandomAdversary::forge_block_idx(std::uint64_t /*round*/, std::span<const State> true_states,
                                      const CountingAlgorithm& algo,
                                      std::span<const NodeId> faulty_ids,
                                      std::span<const NodeId> correct_ids, util::Rng& rng,
                                      ForgedRound& out) {
  if (!idx_guard(ig_, algo)) return false;
  const std::size_t nf = faulty_ids.size();
  out.num_profiles = static_cast<int>(correct_ids.size());
  out.idx.resize(correct_ids.size() * nf);
  out.profile_of.assign(true_states.size(), 0);
  for (std::size_t j = 0; j < correct_ids.size(); ++j) {
    out.profile_of[static_cast<std::size_t>(correct_ids[j])] = static_cast<std::uint16_t>(j);
    for (std::size_t k = 0; k < nf; ++k) {
      out.idx[j * nf + k] = raw_random_idx(ig_, rng);
    }
  }
  return true;
}

bool RandomAdversary::forge_lanes_idx(std::uint64_t /*round*/, const CountingAlgorithm& algo,
                                      std::span<const NodeId> faulty_ids,
                                      std::span<const NodeId> correct_ids,
                                      std::span<util::Rng> rngs,
                                      std::span<const std::uint64_t> active,
                                      std::uint8_t* out_idx, ForgedRound& out) {
  if (!idx_guard(ig_, algo)) return false;
  const std::size_t nf = faulty_ids.size();
  const std::size_t L = rngs.size();
  const std::size_t slots = correct_ids.size() * nf;
  const std::size_t n = faulty_ids.size() + correct_ids.size();
  out.num_profiles = static_cast<int>(correct_ids.size());
  if (out.profile_of.size() != n) {
    out.profile_of.assign(n, 0);
    for (std::size_t j = 0; j < correct_ids.size(); ++j) {
      out.profile_of[static_cast<std::size_t>(correct_ids[j])] = static_cast<std::uint16_t>(j);
    }
  }
  if (ig_.bits == 0) {
    std::fill(out_idx, out_idx + slots * L, std::uint8_t{0});
    return true;
  }
  const std::uint64_t mask = ig_.mask;
  const std::uint64_t ns = ig_.ns;
  for (std::size_t w = 0; w < active.size(); ++w) {
    for (std::uint64_t m = active[w]; m; m &= m - 1) {
      const std::size_t l = w * 64 + static_cast<std::size_t>(std::countr_zero(m));
      util::Rng& rng = rngs[l];
      // Scalar draw order: nested (correct receiver, faulty sender).
      // Branchless reduction -- a data-dependent branch mispredicts on every
      // non-power-of-two |X|.
      for (std::size_t s = 0; s < slots; ++s) {
        std::uint64_t v = rng.next_u64() & mask;
        v -= ns & -static_cast<std::uint64_t>(v >= ns);
        out_idx[s * L + l] = static_cast<std::uint8_t>(v);
      }
    }
  }
  return true;
}

State MirrorAdversary::message(std::uint64_t round, NodeId sender, NodeId receiver,
                               std::span<const State> states, const CountingAlgorithm&,
                               util::Rng&) {
  // Echo the round-start state of a rotating peer: a plausible, protocol-
  // consistent value that nevertheless differs per receiver.
  const auto n = static_cast<NodeId>(states.size());
  NodeId victim = static_cast<NodeId>((receiver + round) % static_cast<std::uint64_t>(n));
  if (victim == sender) victim = (victim + 1) % n;
  return states[static_cast<std::size_t>(victim)];
}

void TargetedVoteAdversary::begin_round(std::uint64_t, std::span<const State> states,
                                        const CountingAlgorithm&,
                                        std::span<const NodeId> faulty_ids, util::Rng& rng) {
  // Harvest the correct nodes' states; they encode valid leader pointers and
  // phase-king registers, so replaying them to the "wrong" receivers attacks
  // the majority votes with plausible values.
  pool_.clear();
  for (NodeId i = 0; i < static_cast<NodeId>(states.size()); ++i) {
    if (std::find(faulty_ids.begin(), faulty_ids.end(), i) == faulty_ids.end()) {
      pool_.push_back(states[static_cast<std::size_t>(i)]);
    }
  }
  // Shuffle so different rounds pair receivers with different votes.
  std::shuffle(pool_.begin(), pool_.end(), rng);
}

State TargetedVoteAdversary::message(std::uint64_t, NodeId sender, NodeId receiver,
                                     std::span<const State>, const CountingAlgorithm& algo,
                                     util::Rng& rng) {
  if (pool_.empty()) return random_state(algo, rng);
  // Receiver halves get states from opposite ends of the shuffled pool.
  const std::size_t half = pool_.size() / 2;
  const std::size_t idx =
      (receiver % 2 == 0) ? (static_cast<std::size_t>(receiver) / 2) % std::max<std::size_t>(half, 1)
                          : half + (static_cast<std::size_t>(receiver) / 2) %
                                       std::max<std::size_t>(pool_.size() - half, 1);
  (void)sender;
  return pool_[std::min(idx, pool_.size() - 1)];
}

LookaheadAdversary::LookaheadAdversary(int candidates, int sample_receivers)
    : candidates_(candidates), sample_receivers_(sample_receivers) {
  SC_CHECK(candidates >= 1, "need at least one candidate profile");
  SC_CHECK(sample_receivers >= 1, "need at least one sampled receiver");
}

void LookaheadAdversary::begin_round(std::uint64_t, std::span<const State> states,
                                     const CountingAlgorithm& algo,
                                     std::span<const NodeId> faulty_ids, util::Rng& rng) {
  n_ = static_cast<int>(states.size());
  faulty_.assign(faulty_ids.begin(), faulty_ids.end());
  const std::size_t profile_size = faulty_.size() * static_cast<std::size_t>(n_);

  // The receiver sample candidates are scored against: an even stride over
  // the correct nodes (deterministic, so it costs no rng draws).
  std::vector<NodeId> correct;
  for (NodeId i = 0; i < n_; ++i) {
    if (std::find(faulty_.begin(), faulty_.end(), i) == faulty_.end()) correct.push_back(i);
  }
  const std::size_t m =
      std::min<std::size_t>(static_cast<std::size_t>(sample_receivers_), correct.size());
  sampled_.clear();
  for (std::size_t j = 0; j < m; ++j) sampled_.push_back(correct[j * correct.size() / m]);

  std::vector<State> received(states.begin(), states.end());
  std::vector<std::uint64_t> outs(sampled_.size());

  // Score = agreement among the sampled receivers after one round under the
  // profile; each candidate costs |sample| transitions, not one per correct
  // node, and the scored forgeries are evaluated once per round here rather
  // than per (sender, receiver) query in message().
  const auto score = [&](const std::vector<State>& profile) {
    counting::TransitionContext ctx{&rng};
    for (std::size_t j = 0; j < sampled_.size(); ++j) {
      const NodeId i = sampled_[j];
      for (std::size_t sidx = 0; sidx < faulty_.size(); ++sidx) {
        received[static_cast<std::size_t>(faulty_[sidx])] =
            profile[sidx * static_cast<std::size_t>(n_) + static_cast<std::size_t>(i)];
      }
      outs[j] = algo.output(i, algo.transition(i, received, ctx));
      for (NodeId fj : faulty_) {
        received[static_cast<std::size_t>(fj)] = states[static_cast<std::size_t>(fj)];
      }
    }
    return agreement_score(outs);
  };

  std::vector<State> best_profile;
  int best_score = n_ + 1;

  // Seed the search with the previous round's winner: a profile that split
  // the correct nodes last round usually keeps splitting them, so the random
  // candidates only have to beat a known-good incumbent.
  if (profile_size > 0 && cached_.size() == profile_size) {
    best_score = score(cached_);
    best_profile = cached_;
  }

  for (int cand = 0; cand < candidates_; ++cand) {
    // Draw a candidate profile: a mix of random states and replayed correct
    // states (replays are often more damaging than noise).
    std::vector<State> profile(profile_size);
    for (auto& s : profile) {
      if (rng.next_bool(0.5)) {
        s = random_state(algo, rng);
      } else {
        s = states[rng.next_below(states.size())];
      }
    }
    const int sc = score(profile);
    if (sc < best_score) {
      best_score = sc;
      best_profile = std::move(profile);
    }
  }
  chosen_ = std::move(best_profile);
  cached_ = chosen_;
}

State LookaheadAdversary::message(std::uint64_t, NodeId sender, NodeId receiver,
                                  std::span<const State>, const CountingAlgorithm& algo,
                                  util::Rng& rng) {
  const auto it = std::find(faulty_.begin(), faulty_.end(), sender);
  if (it == faulty_.end() || chosen_.empty()) return random_state(algo, rng);
  const auto sidx = static_cast<std::size_t>(it - faulty_.begin());
  return chosen_[sidx * static_cast<std::size_t>(n_) + static_cast<std::size_t>(receiver)];
}

std::unique_ptr<Adversary> make_adversary(const std::string& name) {
  if (name == "silent") return std::make_unique<SilentAdversary>();
  if (name == "echo") return std::make_unique<EchoAdversary>();
  if (name == "random") return std::make_unique<RandomAdversary>();
  if (name == "split") return std::make_unique<SplitAdversary>();
  if (name == "mirror") return std::make_unique<MirrorAdversary>();
  if (name == "targeted-vote") return std::make_unique<TargetedVoteAdversary>();
  if (name == "lookahead") return std::make_unique<LookaheadAdversary>();
  SC_CHECK(false, "unknown adversary: " + name);
}

std::vector<std::string> adversary_names() {
  return {"silent", "echo", "random", "split", "mirror", "targeted-vote", "lookahead"};
}

}  // namespace synccount::sim
