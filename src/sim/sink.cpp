#include "sim/sink.hpp"

#include <filesystem>
#include <iostream>
#include <sstream>
#include <system_error>

#include "sim/experiment_io.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace synccount::sim {

namespace {

// Shortest-round-trip double rendering shared with the wire format, so trace
// files are byte-stable across platforms with the same fp behaviour.
std::string fmt_number(double v) { return util::Json::number(v).dump(); }

}  // namespace

// --- MemorySink --------------------------------------------------------------

void MemorySink::on_cell(const CellOutcome& cell) { cells_.push_back(cell); }

void MemorySink::on_group(std::size_t group, const AggregateResult& aggregate) {
  groups_.push_back({group, aggregate});
}

AggregateResult MemorySink::total() const {
  AggregateResult total;
  for (const Group& g : groups_) total.merge(g.aggregate);
  return total;
}

// --- TraceSink ---------------------------------------------------------------

TraceSink::TraceSink(std::string path, std::string format, bool outputs, bool resume)
    : path_(std::move(path)),
      format_(format == "csv" ? Format::kCsv
              : format == "bin" ? Format::kBin
                                : Format::kJsonl),
      outputs_(outputs),
      resume_(resume) {
  SC_CHECK(format == "jsonl" || format == "csv" || format == "bin",
           "unknown trace format: " + format);
  SC_CHECK(!path_.empty(), "trace sink needs a path");
  SC_CHECK(format_ == Format::kJsonl || !outputs_,
           "per-round outputs require the jsonl trace format");
}

TraceSink::~TraceSink() = default;

void TraceSink::on_start(const ExperimentSpec& spec, const ShardPlan& plan) {
  (void)plan;
  grid_names(spec, adversaries_, placements_);
  out_ = std::make_unique<AtomicAppender>(path_, resume_, "sink.trace");
  // Formats with a file prologue (CSV column header, binary header block)
  // write it on a fresh or still-empty file only; a resumed non-empty file
  // already starts with it.
  std::error_code ec;
  const std::uintmax_t existing = resume_ ? std::filesystem::file_size(path_, ec) : 0;
  const bool fresh = !resume_ || ec || existing == 0;
  if (format_ == Format::kCsv && fresh) {
    out_->append(
        "cell,adversary,placement,seed_index,seed,rounds,stabilised,"
        "stabilisation_round,suffix_length,max_window,max_pulls,avg_pulls\n");
  }
  if (format_ == Format::kBin && fresh) {
    out_->append(encode_trace_header({adversaries_, placements_}));
  }
  // Commit now: trace sinks start before checkpoint sinks (make_sinks order),
  // so once a checkpoint header exists on disk the CSV header does too --
  // otherwise a worker killed before the first group would leave a
  // checkpoint that resume validates against an empty trace file.
  out_->commit();
}

void TraceSink::on_cell(const CellOutcome& cell) {
  const RunResult& r = cell.result;
  if (format_ == Format::kBin) {
    // Buffer until on_group: blocks are per-group columns, not rows.
    TraceRow row;
    row.cell = cell.cell_index;
    row.adversary = static_cast<std::uint32_t>(cell.adversary);
    row.placement = static_cast<std::uint32_t>(cell.placement);
    row.seed_index = cell.seed_index;
    row.seed = cell.seed;
    row.rounds = r.rounds;
    row.stabilised = r.stabilised;
    row.stabilisation_round = r.stabilisation_round;
    row.suffix_length = r.suffix_length;
    row.max_window = r.max_window;
    row.max_pulls = r.max_pulls_per_round;
    row.avg_pulls = r.avg_pulls_per_round;
    pending_.push_back(row);
    return;
  }
  std::ostringstream row;
  if (format_ == Format::kCsv) {
    row << cell.cell_index << ',' << adversaries_[cell.adversary] << ','
        << placements_[cell.placement] << ',' << cell.seed_index << ',' << cell.seed
        << ',' << r.rounds << ',' << (r.stabilised ? 1 : 0) << ','
        << r.stabilisation_round << ',' << r.suffix_length << ',' << r.max_window << ','
        << r.max_pulls_per_round << ',' << fmt_number(r.avg_pulls_per_round) << '\n';
    out_->append(row.str());
    return;
  }
  using util::Json;
  Json j = Json::object();
  j.set("cell", Json::number(static_cast<std::uint64_t>(cell.cell_index)));
  j.set("adversary", Json::string(adversaries_[cell.adversary]));
  j.set("placement", Json::string(placements_[cell.placement]));
  j.set("seed_index", Json::number(cell.seed_index));
  j.set("seed", Json::number(cell.seed));
  j.set("rounds", Json::number(r.rounds));
  j.set("stabilised", Json::boolean(r.stabilised));
  j.set("stabilisation_round", Json::number(r.stabilisation_round));
  j.set("suffix_length", Json::number(r.suffix_length));
  j.set("max_window", Json::number(r.max_window));
  j.set("max_pulls", Json::number(r.max_pulls_per_round));
  j.set("avg_pulls", Json::number(r.avg_pulls_per_round));
  if (outputs_) {
    Json ids = Json::array();
    for (const auto id : r.correct_ids) {
      ids.push_back(Json::number(static_cast<std::int64_t>(id)));
    }
    j.set("correct_ids", std::move(ids));
    Json rounds = Json::array();
    for (const auto& round : r.outputs) {
      Json cells = Json::array();
      for (const std::uint64_t v : round) cells.push_back(Json::number(v));
      rounds.push_back(std::move(cells));
    }
    j.set("outputs", std::move(rounds));
  }
  out_->append(j.dump());
  out_->append("\n");
}

void TraceSink::on_group(std::size_t group, const AggregateResult& aggregate) {
  (void)aggregate;
  if (format_ == Format::kBin) {
    out_->append(encode_trace_block(group, pending_));
    pending_.clear();
  }
  // Group-boundary commit: once a checkpoint sink (delivered after this one,
  // see make_sinks) records the group, its trace rows are durably on disk --
  // and the published trace never ends in a torn row (or block).
  out_->commit();
}

void TraceSink::on_done(const ExperimentResult& result) {
  (void)result;
  out_->commit();
}

// --- ProgressSink ------------------------------------------------------------

ProgressSink::ProgressSink(std::ostream* os) : os_(os != nullptr ? os : &std::cerr) {}

void ProgressSink::on_start(const ExperimentSpec& spec, const ShardPlan& plan) {
  grid_names(spec, adversaries_, placements_);
  done_groups_ = 0;
  done_cells_ = 0;
  total_groups_ = plan.groups();
  total_cells_ = plan.groups() * static_cast<std::uint64_t>(spec.seeds);
}

void ProgressSink::on_group(std::size_t group, const AggregateResult& aggregate) {
  ++done_groups_;
  done_cells_ += aggregate.runs;
  const std::size_t n_pl = placements_.size();
  *os_ << "[" << done_groups_ << "/" << total_groups_ << "] "
       << adversaries_[group / n_pl];
  if (!placements_[group % n_pl].empty()) *os_ << " / " << placements_[group % n_pl];
  *os_ << ": " << aggregate.stabilised << "/" << aggregate.runs << " stabilised ("
       << done_cells_ << "/" << total_cells_ << " cells)" << std::endl;
}

// --- CheckpointSink ----------------------------------------------------------

CheckpointSink::CheckpointSink(std::string path, bool resume)
    : path_(std::move(path)), resume_(resume) {
  SC_CHECK(!path_.empty(), "checkpoint sink needs a path");
}

CheckpointSink::~CheckpointSink() = default;

void CheckpointSink::on_start(const ExperimentSpec& spec, const ShardPlan& plan) {
  grid_names(spec, adversaries_, placements_);
  const util::Json spec_json = experiment_spec_to_json(spec);
  out_ = std::make_unique<AtomicAppender>(path_, resume_, "sink.checkpoint");
  if (!resume_) {
    std::ostringstream header;
    write_partial_header(header, plan, spec_json);
    out_->append(header.str());
  }
  out_->commit();
}

void CheckpointSink::on_group(std::size_t group, const AggregateResult& aggregate) {
  // One atomically committed line per finished group: the durable unit of
  // progress a preempted worker resumes from. A kill mid-commit leaves the
  // previous whole-line prefix published, never a torn tail.
  std::ostringstream line;
  write_partial_group(line, group, adversaries_, placements_, aggregate);
  out_->append(line.str());
  out_->commit();
}

// --- Declarative construction ------------------------------------------------

std::string sink_path(const SinkConfig& cfg, const ShardPlan& plan) {
  if (plan.shards <= 1) return cfg.path;
  return cfg.path + ".shard" + std::to_string(plan.shard);
}

std::vector<std::unique_ptr<Sink>> make_sinks(const ExperimentSpec& spec,
                                              const ShardPlan& plan, bool resume) {
  // Checkpoints go last: at a group boundary every companion sink has
  // flushed before the checkpoint line that promises their data is on disk.
  std::vector<std::unique_ptr<Sink>> sinks;
  for (const SinkConfig& cfg : spec.sinks) {
    switch (cfg.kind) {
      case SinkConfig::Kind::kTrace:
        sinks.push_back(std::make_unique<TraceSink>(sink_path(cfg, plan), cfg.format,
                                                    cfg.outputs, resume));
        break;
      case SinkConfig::Kind::kProgress:
        sinks.push_back(std::make_unique<ProgressSink>());
        break;
      case SinkConfig::Kind::kCheckpoint:
        break;  // below
    }
  }
  for (const SinkConfig& cfg : spec.sinks) {
    if (cfg.kind == SinkConfig::Kind::kCheckpoint) {
      sinks.push_back(std::make_unique<CheckpointSink>(sink_path(cfg, plan), resume));
    }
  }
  return sinks;
}

SinkList sink_list(const std::vector<std::unique_ptr<Sink>>& owned, const SinkList& extra) {
  SinkList all = extra;
  for (const auto& sink : owned) all.push_back(sink.get());
  return all;
}

}  // namespace synccount::sim
