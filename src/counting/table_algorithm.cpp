#include "counting/table_algorithm.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::counting {

const char* to_string(Symmetry s) noexcept {
  switch (s) {
    case Symmetry::kUniform:
      return "uniform";
    case Symmetry::kCyclic:
      return "cyclic";
    default:
      return "per-node";
  }
}

std::uint64_t TransitionTable::g_index(int node, std::span<const std::uint64_t> states) const {
  std::uint64_t idx = 0;
  std::uint64_t p = 1;
  const auto nn = states.size();
  for (std::size_t u = 0; u < nn; ++u) {
    const std::size_t sender = symmetry == Symmetry::kCyclic
                                   ? (static_cast<std::size_t>(node) + u) % nn
                                   : u;
    idx += states[sender] * p;
    p *= num_states;
  }
  if (per_node()) idx += static_cast<std::uint64_t>(node) * p;
  return idx;
}

std::size_t TransitionTable::expected_g_size() const {
  const std::uint64_t per = util::ipow(num_states, static_cast<unsigned>(n));
  return static_cast<std::size_t>(per_node() ? per * static_cast<std::uint64_t>(n) : per);
}

std::size_t TransitionTable::expected_h_size() const {
  return static_cast<std::size_t>(per_node() ? num_states * static_cast<std::uint64_t>(n)
                                             : num_states);
}

TableAlgorithm::TableAlgorithm(TransitionTable table)
    : table_(std::move(table)), bits_(util::ceil_log2(table_.num_states)) {
  SC_CHECK(table_.n >= 1, "table needs at least one node");
  SC_CHECK(table_.num_states >= 1, "table needs at least one state");
  SC_CHECK(table_.modulus >= 2, "counter modulus must be at least 2");
  SC_CHECK(table_.g.size() == table_.expected_g_size(), "transition table has wrong size");
  SC_CHECK(table_.h.size() == table_.expected_h_size(), "output table has wrong size");
  for (auto v : table_.g) SC_CHECK(v < table_.num_states, "transition target out of range");
  for (auto v : table_.h) SC_CHECK(v < table_.modulus, "output value out of range");
  pow_.resize(static_cast<std::size_t>(table_.n) + 1);
  pow_[0] = 1;
  for (int u = 0; u < table_.n; ++u) pow_[u + 1] = pow_[u] * table_.num_states;
}

std::string TableAlgorithm::name() const {
  return table_.label + "(n=" + std::to_string(table_.n) + ",f=" + std::to_string(table_.f) +
         ",c=" + std::to_string(table_.modulus) + ",|X|=" + std::to_string(table_.num_states) +
         "," + to_string(table_.symmetry) + ")";
}

State TableAlgorithm::transition(NodeId i, std::span<const State> received,
                                 TransitionContext& /*ctx*/) const {
  SC_ASSERT(static_cast<int>(received.size()) == table_.n);
  std::uint64_t idx = 0;
  const auto nn = received.size();
  for (std::size_t u = 0; u < nn; ++u) {
    const std::size_t sender = table_.symmetry == Symmetry::kCyclic
                                   ? (static_cast<std::size_t>(i) + u) % nn
                                   : u;
    idx += (received[sender].get_bits(0, bits_) % table_.num_states) * pow_[u];
  }
  if (table_.per_node()) {
    idx += static_cast<std::uint64_t>(i) * pow_[static_cast<std::size_t>(table_.n)];
  }
  const std::uint8_t next = table_.g[static_cast<std::size_t>(idx)];
  State s;
  s.set_bits(0, bits_, next);
  return s;
}

std::uint64_t TableAlgorithm::output(NodeId i, const State& s) const {
  std::uint64_t st = s.get_bits(0, bits_) % table_.num_states;
  if (table_.per_node()) st += static_cast<std::uint64_t>(i) * table_.num_states;
  return table_.h[static_cast<std::size_t>(st)];
}

State TableAlgorithm::canonicalize(const State& raw) const {
  State s;
  s.set_bits(0, bits_, raw.get_bits(0, bits_) % table_.num_states);
  return s;
}

State TableAlgorithm::state_from_index(std::uint64_t idx) const {
  SC_CHECK(idx < table_.num_states, "state index out of range");
  State s;
  s.set_bits(0, bits_, idx);
  return s;
}

std::uint64_t TableAlgorithm::state_to_index(const State& s) const {
  return s.get_bits(0, bits_) % table_.num_states;
}

}  // namespace synccount::counting
