#include "counting/table_algorithm.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::counting {

const char* to_string(Symmetry s) noexcept {
  switch (s) {
    case Symmetry::kUniform:
      return "uniform";
    case Symmetry::kCyclic:
      return "cyclic";
    default:
      return "per-node";
  }
}

std::uint64_t TransitionTable::g_index(int node, std::span<const std::uint64_t> states) const {
  std::uint64_t idx = 0;
  std::uint64_t p = 1;
  const auto nn = states.size();
  for (std::size_t u = 0; u < nn; ++u) {
    const std::size_t sender = symmetry == Symmetry::kCyclic
                                   ? (static_cast<std::size_t>(node) + u) % nn
                                   : u;
    idx += states[sender] * p;
    p *= num_states;
  }
  if (per_node()) idx += static_cast<std::uint64_t>(node) * p;
  return idx;
}

std::size_t TransitionTable::expected_g_size() const {
  const std::uint64_t per = util::ipow(num_states, static_cast<unsigned>(n));
  return static_cast<std::size_t>(per_node() ? per * static_cast<std::uint64_t>(n) : per);
}

std::size_t TransitionTable::expected_h_size() const {
  return static_cast<std::size_t>(per_node() ? num_states * static_cast<std::uint64_t>(n)
                                             : num_states);
}

CompiledTable CompiledTable::compile(const TransitionTable& t) {
  CompiledTable ct;
  ct.n = t.n;
  ct.num_states = t.num_states;
  ct.modulus = t.modulus;
  ct.bits = util::ceil_log2(t.num_states);
  ct.g = t.g;

  const auto nn = static_cast<std::size_t>(t.n);
  std::vector<std::uint64_t> pow(nn + 1);
  pow[0] = 1;
  for (std::size_t u = 0; u < nn; ++u) pow[u + 1] = pow[u] * t.num_states;

  // stride[i][s] = num_states^u where u is the position of sender s in the
  // vector as seen by node i: u == s except under cyclic symmetry, where the
  // vector is rotated so that i's own state sits at position 0.
  ct.stride.resize(nn * nn);
  ct.node_base.assign(nn, 0);
  for (std::size_t i = 0; i < nn; ++i) {
    for (std::size_t s = 0; s < nn; ++s) {
      const std::size_t u =
          t.symmetry == Symmetry::kCyclic ? (s + nn - i) % nn : s;
      ct.stride[i * nn + s] = pow[u];
    }
    if (t.per_node()) ct.node_base[i] = static_cast<std::uint64_t>(i) * pow[nn];
  }

  // Expand h to node-major for every symmetry so out() never branches.
  ct.h.resize(nn * static_cast<std::size_t>(t.num_states));
  for (std::size_t i = 0; i < nn; ++i) {
    for (std::uint64_t x = 0; x < t.num_states; ++x) {
      const std::size_t src = t.per_node() ? i * t.num_states + x : x;
      ct.h[i * t.num_states + x] = t.h[src];
    }
  }
  return ct;
}

TableAlgorithm::TableAlgorithm(TransitionTable table)
    : table_(std::move(table)), bits_(util::ceil_log2(table_.num_states)) {
  SC_CHECK(table_.n >= 1, "table needs at least one node");
  SC_CHECK(table_.num_states >= 1, "table needs at least one state");
  SC_CHECK(table_.modulus >= 2, "counter modulus must be at least 2");
  SC_CHECK(table_.g.size() == table_.expected_g_size(), "transition table has wrong size");
  SC_CHECK(table_.h.size() == table_.expected_h_size(), "output table has wrong size");
  for (auto v : table_.g) SC_CHECK(v < table_.num_states, "transition target out of range");
  for (auto v : table_.h) SC_CHECK(v < table_.modulus, "output value out of range");
  compiled_ = CompiledTable::compile(table_);
}

std::string TableAlgorithm::name() const {
  return table_.label + "(n=" + std::to_string(table_.n) + ",f=" + std::to_string(table_.f) +
         ",c=" + std::to_string(table_.modulus) + ",|X|=" + std::to_string(table_.num_states) +
         "," + to_string(table_.symmetry) + ")";
}

State TableAlgorithm::transition(NodeId i, std::span<const State> received,
                                 TransitionContext& /*ctx*/) const {
  SC_ASSERT(static_cast<int>(received.size()) == table_.n);
  const std::uint64_t* stride =
      compiled_.stride.data() + static_cast<std::size_t>(i) * received.size();
  std::uint64_t idx = compiled_.node_base[static_cast<std::size_t>(i)];
  for (std::size_t s = 0; s < received.size(); ++s) {
    idx += (received[s].get_bits(0, bits_) % table_.num_states) * stride[s];
  }
  const std::uint8_t next = compiled_.g[static_cast<std::size_t>(idx)];
  State s;
  s.set_bits(0, bits_, next);
  return s;
}

std::uint64_t TableAlgorithm::output(NodeId i, const State& s) const {
  const auto st = static_cast<std::uint8_t>(s.get_bits(0, bits_) % table_.num_states);
  return compiled_.out(i, st);
}

State TableAlgorithm::canonicalize(const State& raw) const {
  State s;
  s.set_bits(0, bits_, raw.get_bits(0, bits_) % table_.num_states);
  return s;
}

State TableAlgorithm::state_from_index(std::uint64_t idx) const {
  SC_CHECK(idx < table_.num_states, "state index out of range");
  State s;
  s.set_bits(0, bits_, idx);
  return s;
}

std::uint64_t TableAlgorithm::state_to_index(const State& s) const {
  return s.get_bits(0, bits_) % table_.num_states;
}

}  // namespace synccount::counting
