#include "counting/algorithm.hpp"

#include "util/check.hpp"

namespace synccount::counting {

State CountingAlgorithm::state_from_index(std::uint64_t /*idx*/) const {
  SC_REQUIRE(false, "state_from_index not supported by " + name());
}

std::uint64_t CountingAlgorithm::state_to_index(const State& /*s*/) const {
  SC_REQUIRE(false, "state_to_index not supported by " + name());
}

State CountingAlgorithm::state_with_output(NodeId i, std::uint64_t target) const {
  const auto count = state_count();
  SC_CHECK(count.has_value(),
           "state_with_output needs an enumerable state space or an override: " + name());
  for (std::uint64_t s = 0; s < *count; ++s) {
    const State candidate = state_from_index(s);
    if (output(i, candidate) == target) return candidate;
  }
  SC_CHECK(false, "no state of " + name() + " outputs " + std::to_string(target));
}

State arbitrary_state(const CountingAlgorithm& algo, util::Rng& rng) {
  State raw;
  const int bits = algo.state_bits();
  for (int off = 0; off < bits; off += 64) {
    raw.set_bits(off, std::min(64, bits - off), rng.next_u64());
  }
  return algo.canonicalize(raw);
}

}  // namespace synccount::counting
