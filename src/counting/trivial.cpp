#include "counting/trivial.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::counting {

TrivialCounter::TrivialCounter(std::uint64_t c) : c_(c), bits_(util::ceil_log2(c)) {
  SC_CHECK(c >= 2, "counter modulus must be at least 2");
}

std::string TrivialCounter::name() const {
  return "trivial(c=" + std::to_string(c_) + ")";
}

State TrivialCounter::transition(NodeId i, std::span<const State> received,
                                 TransitionContext& /*ctx*/) const {
  SC_ASSERT(i == 0 && received.size() == 1);
  (void)i;
  const std::uint64_t v = received[0].get_bits(0, bits_) % c_;
  State next;
  next.set_bits(0, bits_, (v + 1) % c_);
  return next;
}

std::uint64_t TrivialCounter::output(NodeId /*i*/, const State& s) const {
  return s.get_bits(0, bits_) % c_;
}

State TrivialCounter::canonicalize(const State& raw) const {
  State s;
  s.set_bits(0, bits_, raw.get_bits(0, bits_) % c_);
  return s;
}

State TrivialCounter::state_from_index(std::uint64_t idx) const {
  SC_CHECK(idx < c_, "state index out of range");
  State s;
  s.set_bits(0, bits_, idx);
  return s;
}

std::uint64_t TrivialCounter::state_to_index(const State& s) const {
  return s.get_bits(0, bits_) % c_;
}

}  // namespace synccount::counting
