#include "counting/table_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace synccount::counting {

namespace {

Symmetry symmetry_from_string(const std::string& s) {
  if (s == "uniform") return Symmetry::kUniform;
  if (s == "cyclic") return Symmetry::kCyclic;
  if (s == "per-node") return Symmetry::kPerNode;
  SC_CHECK(false, "unknown symmetry: " + s);
}

}  // namespace

void write_table(const TransitionTable& table, std::ostream& out) {
  out << "synccount-table v1\n";
  out << "n " << table.n << "\n";
  out << "f " << table.f << "\n";
  out << "states " << table.num_states << "\n";
  out << "modulus " << table.modulus << "\n";
  out << "symmetry " << to_string(table.symmetry) << "\n";
  if (table.verified_time) out << "verified_time " << *table.verified_time << "\n";
  out << "label " << (table.label.empty() ? "table" : table.label) << "\n";
  out << "g";
  for (auto v : table.g) out << ' ' << static_cast<int>(v);
  out << "\nh";
  for (auto v : table.h) out << ' ' << static_cast<int>(v);
  out << "\n";
}

TransitionTable read_table(std::istream& in) {
  TransitionTable t;
  std::string line;
  SC_CHECK(static_cast<bool>(std::getline(in, line)), "empty table file");
  SC_CHECK(line == "synccount-table v1", "bad header: " + line);
  bool have_g = false, have_h = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "n") {
      ls >> t.n;
    } else if (key == "f") {
      ls >> t.f;
    } else if (key == "states") {
      ls >> t.num_states;
    } else if (key == "modulus") {
      ls >> t.modulus;
    } else if (key == "symmetry") {
      std::string s;
      ls >> s;
      t.symmetry = symmetry_from_string(s);
    } else if (key == "verified_time") {
      std::uint64_t v = 0;
      ls >> v;
      t.verified_time = v;
    } else if (key == "label") {
      ls >> t.label;
    } else if (key == "g") {
      int v = 0;
      while (ls >> v) {
        SC_CHECK(v >= 0 && v < 256, "g entry out of byte range");
        t.g.push_back(static_cast<std::uint8_t>(v));
      }
      have_g = true;
    } else if (key == "h") {
      int v = 0;
      while (ls >> v) {
        SC_CHECK(v >= 0 && v < 256, "h entry out of byte range");
        t.h.push_back(static_cast<std::uint8_t>(v));
      }
      have_h = true;
    } else {
      SC_CHECK(false, "unknown key in table file: " + key);
    }
  }
  SC_CHECK(have_g && have_h, "table file missing g or h");
  // Size/range validation happens in TableAlgorithm's constructor; do the
  // structural part here so errors point at the file.
  SC_CHECK(t.g.size() == t.expected_g_size(), "g has wrong length for the header");
  SC_CHECK(t.h.size() == t.expected_h_size(), "h has wrong length for the header");
  return t;
}

std::string table_to_string(const TransitionTable& table) {
  std::ostringstream os;
  write_table(table, os);
  return os.str();
}

TransitionTable table_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_table(is);
}

}  // namespace synccount::counting
