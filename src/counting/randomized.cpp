#include "counting/randomized.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::counting {

RandomizedCounter::RandomizedCounter(int n, int f, std::uint64_t c)
    : n_(n), f_(f), c_(c), bits_(util::ceil_log2(c)) {
  SC_CHECK(n >= 1, "need at least one node");
  SC_CHECK(f >= 0 && n > 3 * f, "synchronous counting requires n > 3f");
  SC_CHECK(c >= 2, "counter modulus must be at least 2");
}

std::string RandomizedCounter::name() const {
  return "randomized(n=" + std::to_string(n_) + ",f=" + std::to_string(f_) +
         ",c=" + std::to_string(c_) + ")";
}

State RandomizedCounter::transition(NodeId /*i*/, std::span<const State> received,
                                    TransitionContext& ctx) const {
  // Count received values; c can be large, so count only over values present.
  // With n small a linear scan is fastest.
  std::uint64_t best_value = 0;
  int best_count = 0;
  std::vector<std::uint64_t> vals(received.size());
  for (std::size_t u = 0; u < received.size(); ++u) {
    vals[u] = received[u].get_bits(0, bits_) % c_;
  }
  for (std::size_t u = 0; u < vals.size(); ++u) {
    int cnt = 0;
    for (std::size_t w = 0; w < vals.size(); ++w) {
      if (vals[w] == vals[u]) ++cnt;
    }
    if (cnt > best_count) {
      best_count = cnt;
      best_value = vals[u];
    }
  }
  std::uint64_t next;
  if (best_count >= n_ - f_) {
    next = (best_value + 1) % c_;
  } else {
    next = ctx.rand().next_below(c_);
  }
  State s;
  s.set_bits(0, bits_, next);
  return s;
}

std::uint64_t RandomizedCounter::output(NodeId /*i*/, const State& s) const {
  return s.get_bits(0, bits_) % c_;
}

State RandomizedCounter::canonicalize(const State& raw) const {
  State s;
  s.set_bits(0, bits_, raw.get_bits(0, bits_) % c_);
  return s;
}

State RandomizedCounter::state_from_index(std::uint64_t idx) const {
  SC_CHECK(idx < c_, "state index out of range");
  State s;
  s.set_bits(0, bits_, idx);
  return s;
}

std::uint64_t RandomizedCounter::state_to_index(const State& s) const {
  return s.get_bits(0, bits_) % c_;
}

}  // namespace synccount::counting
