// The synchronous counting algorithm interface (paper, Section 2).
//
// A deterministic algorithm is a tuple A = (X, g, h): X the state set,
// g : [n] x X^n -> X the transition function applied to the vector of
// received states, and h : [n] x X -> [c] the output map. We additionally
// support randomised algorithms (the baseline of [6,7] and the Section 5
// sampling constructions) by threading an Rng through the transition.
//
// States are bit-exact: a state is serialised into exactly state_bits()
// bits (S(A) = ceil(log|X|) in the paper), which is what the simulator
// transports and what Byzantine nodes may forge. Decoding arbitrary bit
// patterns is total (canonicalize), matching the model where Byzantine
// nodes can send any *state*, i.e. any element of X.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace synccount::counting {

using NodeId = int;
using State = util::BitVec;

// Mutable per-transition context: randomness for randomised algorithms and
// message metering for the pulling model of Section 5 (each pulled state
// counts as one message attributed to the pulling node).
struct TransitionContext {
  util::Rng* rng = nullptr;
  std::uint64_t messages_pulled = 0;

  // synccount-lint: allow(nondet) -- accessor named rand() by analogy, but it
  // hands out the seeded deterministic util::Rng, not libc's global PRNG.
  util::Rng& rand() {
    SC_REQUIRE(rng != nullptr, "randomised algorithm invoked without an Rng");
    return *rng;
  }
};

class CountingAlgorithm {
 public:
  virtual ~CountingAlgorithm() = default;

  CountingAlgorithm(const CountingAlgorithm&) = delete;
  CountingAlgorithm& operator=(const CountingAlgorithm&) = delete;

  // --- Static parameters -------------------------------------------------
  virtual int num_nodes() const noexcept = 0;          // n
  virtual int resilience() const noexcept = 0;         // f
  virtual std::uint64_t modulus() const noexcept = 0;  // c
  virtual int state_bits() const noexcept = 0;         // S(A), bits per state

  // Proven upper bound on the stabilisation time T(A);
  // std::nullopt when no closed-form bound is known.
  virtual std::optional<std::uint64_t> stabilisation_bound() const noexcept = 0;

  virtual bool deterministic() const noexcept { return true; }
  virtual std::string name() const = 0;

  // --- Dynamic behaviour --------------------------------------------------
  // g: next state of node i given the received state vector (size n; entry u
  // is the state sent by node u this round, which for node i includes its own
  // previous state at index i). Every entry is a canonical state.
  virtual State transition(NodeId i, std::span<const State> received,
                           TransitionContext& ctx) const = 0;

  // h: output value in [0, modulus) of node i in state s.
  virtual std::uint64_t output(NodeId i, const State& s) const = 0;

  // Total decoding: map an arbitrary bit pattern (of up to state_bits() bits;
  // higher bits are ignored) onto a valid state. Must be the identity on
  // valid encodings and surjective onto X.
  virtual State canonicalize(const State& raw) const = 0;

  // --- Optional enumeration (for the exact verifier on small algorithms) ---
  // |X| if the state space is explicitly enumerable, otherwise nullopt.
  virtual std::optional<std::uint64_t> state_count() const { return std::nullopt; }
  virtual State state_from_index(std::uint64_t /*idx*/) const;
  virtual std::uint64_t state_to_index(const State& /*s*/) const;

  // Some state of node i whose output is `target` (used by construction-
  // aware adversaries and tests). The default scans an enumerable state
  // space; algorithms with structured states override with O(1) builds.
  // Throws std::invalid_argument if no such state exists.
  virtual State state_with_output(NodeId i, std::uint64_t target) const;

 protected:
  CountingAlgorithm() = default;
};

using AlgorithmPtr = std::shared_ptr<const CountingAlgorithm>;

// Draw an arbitrary (uniformly random, then canonicalised) state; this is how
// the simulator realises the "arbitrary initial state" part of the model.
State arbitrary_state(const CountingAlgorithm& algo, util::Rng& rng);

}  // namespace synccount::counting
