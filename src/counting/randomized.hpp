// The classic randomised synchronous counter ([6,7]; sketched in the
// paper's introduction): every node outputs its whole state (a value in
// [c]); if a clear majority of at least n - f received values agree on some
// value v, the node adopts v + 1 (mod c), otherwise it picks a fresh state
// uniformly at random.
//
// Once all correct nodes agree, each of them sees >= n - f copies of the
// common value and agreement persists forever (Byzantine nodes cannot break
// the n - f threshold since there are n - f correct nodes). Stabilisation
// is by luck: the expected time is exponential, 2^{O(n-f)} for c = 2 --
// this is the "space-efficient but slow/randomised" row of Table 1.
#pragma once

#include "counting/algorithm.hpp"

namespace synccount::counting {

class RandomizedCounter final : public CountingAlgorithm {
 public:
  // Requires n > 3f (counting is unsolvable otherwise) and c >= 2.
  RandomizedCounter(int n, int f, std::uint64_t c);

  int num_nodes() const noexcept override { return n_; }
  int resilience() const noexcept override { return f_; }
  std::uint64_t modulus() const noexcept override { return c_; }
  int state_bits() const noexcept override { return bits_; }
  std::optional<std::uint64_t> stabilisation_bound() const noexcept override {
    return std::nullopt;  // randomised: only an expected-time bound exists
  }
  bool deterministic() const noexcept override { return false; }
  std::string name() const override;

  State transition(NodeId i, std::span<const State> received,
                   TransitionContext& ctx) const override;
  std::uint64_t output(NodeId i, const State& s) const override;
  State canonicalize(const State& raw) const override;

  std::optional<std::uint64_t> state_count() const override { return c_; }
  State state_from_index(std::uint64_t idx) const override;
  std::uint64_t state_to_index(const State& s) const override;

 private:
  int n_;
  int f_;
  std::uint64_t c_;
  int bits_;
};

}  // namespace synccount::counting
