// Serializable algorithm descriptions for distributed sweeps.
//
// A sharded sweep ships an ExperimentSpec to worker processes as JSON
// (sim/experiment_io.hpp); the algorithm inside it cannot travel as a
// pointer, so it travels as an AlgorithmSpec: a plain-data description that
// `build()` turns back into the exact algorithm and `describe()` recovers
// from a live instance. The describable family covers everything the engine
// can batch plus its bases:
//
//   * trivial       -- TrivialCounter(modulus)
//   * table         -- TableAlgorithm, sourced by registry name
//                      (synthesis::known_table_by_name), by file path, or by
//                      an inline synccount-table dump (counting/table_io.hpp)
//   * tower         -- BoostedCounter / PullingBoostedCounter levels
//                      (bottom-up) over a trivial or table base
//
// Round-trip contract: build(describe(a)) constructs an algorithm whose
// executions are bit-identical to `a` under any seed/adversary -- the spec
// captures every behavioural parameter, including the pulling levels'
// sampling mode, seed and gamma. describe() returns nullopt for algorithms
// outside the family (services, randomized baselines); callers must treat
// that as "not distributable", not an error.
//
// The struct is algorithm-layer data, so it lives in counting/; the builder
// in the .cpp reaches up into boosting/, pulling/ and synthesis/ (the
// library is a single target, so the layering cost is include-only).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "counting/algorithm.hpp"

namespace synccount::util {
class Json;
}  // namespace synccount::util

namespace synccount::counting {

struct AlgorithmSpec {
  enum class Kind { kTrivial, kTable, kTower };

  Kind kind = Kind::kTrivial;

  // kTrivial: the counter modulus c >= 2.
  std::uint64_t modulus = 0;

  // kTable: exactly one source must be set.
  std::string table_name;    // registry name ("3states", "4states", ...)
  std::string table_file;    // path readable on the worker
  std::string table_text;    // inline synccount-table dump (self-contained)

  // kTower: levels bottom-up over `base` (itself kTrivial or kTable).
  struct Level {
    bool pulling = false;       // BoostedCounter vs PullingBoostedCounter
    int k = 0;
    int F = 0;
    std::uint64_t C = 0;
    // Pulling levels only:
    int sample_size = 0;
    bool fixed_sampling = false;  // SamplingMode::kFixed
    std::uint64_t sampling_seed = 0;
    double gamma = 0.5;
  };
  std::vector<Level> levels;
  std::shared_ptr<AlgorithmSpec> base;  // shared so the spec stays copyable

  bool operator==(const AlgorithmSpec& other) const;
};

// JSON codec (the wire shape; see experiment_io for the enclosing format).
util::Json to_json(const AlgorithmSpec& spec);
AlgorithmSpec algorithm_spec_from_json(const util::Json& j);

// Recovers the spec of a live algorithm, or nullopt when the algorithm is
// outside the describable family. Tables that match an embedded registry
// table are described by name; anything else is inlined, so the result is
// self-contained unless the original was loaded from a file the caller
// wants referenced (build() accepts all three sources either way).
std::optional<AlgorithmSpec> describe(const AlgorithmPtr& algo);

// Reconstructs the algorithm. Throws std::invalid_argument (via SC_CHECK)
// on inconsistent specs, unknown table names or unreadable table files.
AlgorithmPtr build(const AlgorithmSpec& spec);

// --- Sweep axes --------------------------------------------------------------
//
// Per-cell algorithm parameterisation expressed as data: one variant of
// `base` per value, with `param` applied to the top level of a tower or to a
// trivial base. The result feeds sim::ExperimentSpec::variants (one variant
// per seed index), which replaces the old non-serialisable per-cell
// algorithm factory -- an axis travels through spec files as the expanded
// variant list, so a worker rebuilds the exact per-cell algorithms.
//
// Integer params: "sampling_seed" | "sample_size" | "C" | "k" | "F" (top
// tower level; sampling params require a pulling level) and "modulus"
// (trivial spec). Throws on an unknown param or a kind mismatch.
std::vector<AlgorithmSpec> sweep_u64(const AlgorithmSpec& base, const std::string& param,
                                     const std::vector<std::uint64_t>& values);

// Floating params: "gamma" (top pulling level only).
std::vector<AlgorithmSpec> sweep_double(const AlgorithmSpec& base, const std::string& param,
                                        const std::vector<double>& values);

}  // namespace synccount::counting
