// Plain-text serialisation of transition tables, so synthesised algorithms
// can be saved from the CLI, shipped, diffed and reloaded:
//
//   synccount-table v1
//   n 4
//   f 1
//   states 3
//   modulus 2
//   symmetry cyclic
//   verified_time 6          # optional line; omitted when unverified
//   label computer-designed
//   g 2 2 2 ... (|X|^n, or n*|X|^n for per-node, values)
//   h 0 0 1 ...
//
// Loading re-validates every entry (TableAlgorithm's constructor) but does
// NOT trust `verified_time`: call synthesis::verify to re-certify.
#pragma once

#include <iosfwd>
#include <string>

#include "counting/table_algorithm.hpp"

namespace synccount::counting {

void write_table(const TransitionTable& table, std::ostream& out);

// Throws std::invalid_argument on malformed input.
TransitionTable read_table(std::istream& in);

std::string table_to_string(const TransitionTable& table);
TransitionTable table_from_string(const std::string& text);

}  // namespace synccount::counting
