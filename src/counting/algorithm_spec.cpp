#include "counting/algorithm_spec.hpp"

#include <fstream>
#include <limits>

#include "boosting/boosted_counter.hpp"
#include "boosting/planner.hpp"
#include "counting/table_algorithm.hpp"
#include "counting/table_io.hpp"
#include "counting/trivial.hpp"
#include "pulling/pulling_counter.hpp"
#include "synthesis/known_tables.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace synccount::counting {

namespace {

bool level_eq(const AlgorithmSpec::Level& a, const AlgorithmSpec::Level& b) {
  return a.pulling == b.pulling && a.k == b.k && a.F == b.F && a.C == b.C &&
         a.sample_size == b.sample_size && a.fixed_sampling == b.fixed_sampling &&
         a.sampling_seed == b.sampling_seed && a.gamma == b.gamma;
}

}  // namespace

bool AlgorithmSpec::operator==(const AlgorithmSpec& other) const {
  if (kind != other.kind || modulus != other.modulus || table_name != other.table_name ||
      table_file != other.table_file || table_text != other.table_text ||
      levels.size() != other.levels.size()) {
    return false;
  }
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (!level_eq(levels[i], other.levels[i])) return false;
  }
  if ((base == nullptr) != (other.base == nullptr)) return false;
  return base == nullptr || *base == *other.base;
}

util::Json to_json(const AlgorithmSpec& spec) {
  using util::Json;
  Json j = Json::object();
  switch (spec.kind) {
    case AlgorithmSpec::Kind::kTrivial:
      j.set("kind", Json::string("trivial"));
      j.set("modulus", Json::number(spec.modulus));
      break;
    case AlgorithmSpec::Kind::kTable:
      j.set("kind", Json::string("table"));
      if (!spec.table_name.empty()) j.set("name", Json::string(spec.table_name));
      if (!spec.table_file.empty()) j.set("file", Json::string(spec.table_file));
      if (!spec.table_text.empty()) j.set("inline", Json::string(spec.table_text));
      break;
    case AlgorithmSpec::Kind::kTower: {
      j.set("kind", Json::string("tower"));
      SC_CHECK(spec.base != nullptr, "tower spec has no base");
      j.set("base", to_json(*spec.base));
      Json levels = Json::array();
      for (const AlgorithmSpec::Level& lv : spec.levels) {
        Json l = Json::object();
        l.set("type", Json::string(lv.pulling ? "pulling" : "boosted"));
        l.set("k", Json::number(lv.k));
        l.set("F", Json::number(lv.F));
        l.set("C", Json::number(lv.C));
        if (lv.pulling) {
          l.set("sample_size", Json::number(lv.sample_size));
          l.set("sampling", Json::string(lv.fixed_sampling ? "fixed" : "fresh"));
          l.set("sampling_seed", Json::number(lv.sampling_seed));
          l.set("gamma", Json::number(lv.gamma));
        }
        levels.push_back(std::move(l));
      }
      j.set("levels", std::move(levels));
      break;
    }
  }
  return j;
}

AlgorithmSpec algorithm_spec_from_json(const util::Json& j) {
  AlgorithmSpec spec;
  const std::string& kind = j.at("kind").as_string();
  if (kind == "trivial") {
    spec.kind = AlgorithmSpec::Kind::kTrivial;
    spec.modulus = j.at("modulus").as_u64();
  } else if (kind == "table") {
    spec.kind = AlgorithmSpec::Kind::kTable;
    if (const auto* v = j.find("name")) spec.table_name = v->as_string();
    if (const auto* v = j.find("file")) spec.table_file = v->as_string();
    if (const auto* v = j.find("inline")) spec.table_text = v->as_string();
  } else if (kind == "tower") {
    spec.kind = AlgorithmSpec::Kind::kTower;
    spec.base = std::make_shared<AlgorithmSpec>(algorithm_spec_from_json(j.at("base")));
    const util::Json& levels = j.at("levels");
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const util::Json& l = levels.at(i);
      AlgorithmSpec::Level lv;
      const std::string& type = l.at("type").as_string();
      SC_CHECK(type == "boosted" || type == "pulling", "unknown tower level type: " + type);
      lv.pulling = type == "pulling";
      lv.k = l.at("k").as_int();
      lv.F = l.at("F").as_int();
      lv.C = l.at("C").as_u64();
      if (lv.pulling) {
        lv.sample_size = l.at("sample_size").as_int();
        const std::string& sampling = l.at("sampling").as_string();
        SC_CHECK(sampling == "fixed" || sampling == "fresh",
                 "unknown sampling mode: " + sampling);
        lv.fixed_sampling = sampling == "fixed";
        lv.sampling_seed = l.at("sampling_seed").as_u64();
        lv.gamma = l.at("gamma").as_double();
      }
      spec.levels.push_back(lv);
    }
  } else {
    SC_CHECK(false, "unknown algorithm spec kind: " + kind);
  }
  return spec;
}

std::optional<AlgorithmSpec> describe(const AlgorithmPtr& algo) {
  if (algo == nullptr) return std::nullopt;

  // Walk the tower top-down (like the composed backend's compile), then
  // reverse into the spec's bottom-up level order.
  std::vector<AlgorithmSpec::Level> top_down;
  const CountingAlgorithm* cur = algo.get();
  for (;;) {
    if (const auto* b = dynamic_cast<const boosting::BoostedCounter*>(cur)) {
      AlgorithmSpec::Level lv;
      lv.k = b->k();
      lv.F = b->resilience();
      lv.C = b->modulus();
      top_down.push_back(lv);
      cur = &b->inner();
    } else if (const auto* p = dynamic_cast<const pulling::PullingBoostedCounter*>(cur)) {
      AlgorithmSpec::Level lv;
      lv.pulling = true;
      lv.k = p->k();
      lv.F = p->resilience();
      lv.C = p->modulus();
      lv.sample_size = p->sample_size();
      lv.fixed_sampling = p->mode() == pulling::SamplingMode::kFixed;
      lv.sampling_seed = p->sampling_seed();
      lv.gamma = p->gamma();
      top_down.push_back(lv);
      cur = &p->inner();
    } else {
      break;
    }
  }

  AlgorithmSpec base;
  if (const auto* t = dynamic_cast<const TrivialCounter*>(cur)) {
    base.kind = AlgorithmSpec::Kind::kTrivial;
    base.modulus = t->modulus();
  } else if (const auto* t2 = dynamic_cast<const TableAlgorithm*>(cur)) {
    base.kind = AlgorithmSpec::Kind::kTable;
    if (const auto name = synthesis::known_table_name_of(t2->table())) {
      base.table_name = *name;
    } else {
      base.table_text = table_to_string(t2->table());
    }
  } else {
    return std::nullopt;  // services, randomized baselines, unknown wrappers
  }

  if (top_down.empty()) return base;

  AlgorithmSpec spec;
  spec.kind = AlgorithmSpec::Kind::kTower;
  spec.base = std::make_shared<AlgorithmSpec>(std::move(base));
  spec.levels.assign(top_down.rbegin(), top_down.rend());
  return spec;
}

AlgorithmPtr build(const AlgorithmSpec& spec) {
  switch (spec.kind) {
    case AlgorithmSpec::Kind::kTrivial:
      return std::make_shared<TrivialCounter>(spec.modulus);
    case AlgorithmSpec::Kind::kTable: {
      const int sources = (spec.table_name.empty() ? 0 : 1) +
                          (spec.table_file.empty() ? 0 : 1) +
                          (spec.table_text.empty() ? 0 : 1);
      SC_CHECK(sources == 1, "table spec needs exactly one of name/file/inline");
      TransitionTable table;
      if (!spec.table_name.empty()) {
        auto known = synthesis::known_table_by_name(spec.table_name);
        SC_CHECK(known.has_value(), "unknown table name: " + spec.table_name);
        table = std::move(*known);
      } else if (!spec.table_file.empty()) {
        std::ifstream file(spec.table_file);
        SC_CHECK(file.good(), "cannot open table file: " + spec.table_file);
        table = read_table(file);
      } else {
        table = table_from_string(spec.table_text);
      }
      return std::make_shared<TableAlgorithm>(std::move(table));
    }
    case AlgorithmSpec::Kind::kTower: {
      SC_CHECK(spec.base != nullptr, "tower spec has no base");
      SC_CHECK(spec.base->kind != AlgorithmSpec::Kind::kTower,
               "tower base must be trivial or table (flatten nested towers)");
      SC_CHECK(!spec.levels.empty(), "tower spec has no levels");
      AlgorithmPtr algo = build(*spec.base);
      for (const AlgorithmSpec::Level& lv : spec.levels) {
        if (lv.pulling) {
          pulling::PullParams pp;
          pp.k = lv.k;
          pp.F = lv.F;
          pp.C = lv.C;
          pp.sample_size = lv.sample_size;
          pp.mode = lv.fixed_sampling ? pulling::SamplingMode::kFixed
                                      : pulling::SamplingMode::kFresh;
          pp.seed = lv.sampling_seed;
          pp.gamma = lv.gamma;
          algo = std::make_shared<pulling::PullingBoostedCounter>(std::move(algo), pp);
        } else {
          algo = std::make_shared<boosting::BoostedCounter>(
              std::move(algo), boosting::BoostParams{lv.k, lv.F, lv.C});
        }
      }
      return algo;
    }
  }
  SC_CHECK(false, "unreachable");
  return nullptr;
}

namespace {

AlgorithmSpec::Level& top_level(AlgorithmSpec& spec, const std::string& param) {
  SC_CHECK(spec.kind == AlgorithmSpec::Kind::kTower && !spec.levels.empty(),
           "sweep param '" + param + "' needs a tower spec");
  return spec.levels.back();
}

AlgorithmSpec::Level& top_pulling_level(AlgorithmSpec& spec, const std::string& param) {
  AlgorithmSpec::Level& lv = top_level(spec, param);
  SC_CHECK(lv.pulling, "sweep param '" + param + "' needs a pulling top level");
  return lv;
}

}  // namespace

std::vector<AlgorithmSpec> sweep_u64(const AlgorithmSpec& base, const std::string& param,
                                     const std::vector<std::uint64_t>& values) {
  // int-typed params must not truncate silently -- a wrapped value is a
  // different algorithm, and every other bad input here throws.
  const auto as_int = [&param](std::uint64_t v) {
    SC_CHECK(v <= static_cast<std::uint64_t>(std::numeric_limits<int>::max()),
             "sweep value out of range for '" + param + "': " + std::to_string(v));
    return static_cast<int>(v);
  };
  std::vector<AlgorithmSpec> out;
  out.reserve(values.size());
  for (const std::uint64_t v : values) {
    AlgorithmSpec spec = base;
    if (param == "sampling_seed") {
      top_pulling_level(spec, param).sampling_seed = v;
    } else if (param == "sample_size") {
      top_pulling_level(spec, param).sample_size = as_int(v);
    } else if (param == "C") {
      top_level(spec, param).C = v;
    } else if (param == "k") {
      top_level(spec, param).k = as_int(v);
    } else if (param == "F") {
      top_level(spec, param).F = as_int(v);
    } else if (param == "modulus") {
      SC_CHECK(spec.kind == AlgorithmSpec::Kind::kTrivial,
               "sweep param 'modulus' needs a trivial spec");
      spec.modulus = v;
    } else {
      SC_CHECK(false, "unknown integer sweep param: " + param);
    }
    out.push_back(std::move(spec));
  }
  return out;
}

std::vector<AlgorithmSpec> sweep_double(const AlgorithmSpec& base, const std::string& param,
                                        const std::vector<double>& values) {
  std::vector<AlgorithmSpec> out;
  out.reserve(values.size());
  for (const double v : values) {
    AlgorithmSpec spec = base;
    SC_CHECK(param == "gamma", "unknown floating sweep param: " + param);
    top_pulling_level(spec, param).gamma = v;
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace synccount::counting
