// The trivial 0-resilient synchronous c-counter on a single node
// (paper, Section 4.1): the state is the counter value itself, incremented
// modulo c every round. It stabilises immediately (T = 0) from any initial
// state and is the base case of the recursive construction (Corollary 1).
#pragma once

#include "counting/algorithm.hpp"

namespace synccount::counting {

class TrivialCounter final : public CountingAlgorithm {
 public:
  // c >= 2.
  explicit TrivialCounter(std::uint64_t c);

  int num_nodes() const noexcept override { return 1; }
  int resilience() const noexcept override { return 0; }
  std::uint64_t modulus() const noexcept override { return c_; }
  int state_bits() const noexcept override { return bits_; }
  std::optional<std::uint64_t> stabilisation_bound() const noexcept override { return 0; }
  std::string name() const override;

  State transition(NodeId i, std::span<const State> received,
                   TransitionContext& ctx) const override;
  std::uint64_t output(NodeId i, const State& s) const override;
  State canonicalize(const State& raw) const override;

  std::optional<std::uint64_t> state_count() const override { return c_; }
  State state_from_index(std::uint64_t idx) const override;
  std::uint64_t state_to_index(const State& s) const override;

 private:
  std::uint64_t c_;
  int bits_;
};

}  // namespace synccount::counting
