// Explicit transition-table algorithms: the representation produced by the
// algorithm-synthesis pipeline (paper Section 1, "computer-designed
// algorithms" of [4,5]). The state set is [0, num_states); g and h are
// lookup tables. Tables may be *uniform* (all nodes run the same function)
// or per-node.
//
// These are the space-optimal building blocks of Table 1 (e.g. n = 4,
// f = 1, c = 2 with 3 states per node). The exact verifier in
// src/synthesis certifies a table and computes its exact worst-case
// stabilisation time, which is stored in `verified_time`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "counting/algorithm.hpp"

namespace synccount::counting {

// How node identity enters the transition function:
//  * kUniform -- one shared g over the received vector indexed by absolute
//    sender id (nodes are distinguishable through positions).
//  * kCyclic  -- one shared g over the received vector *rotated* so that the
//    node's own state sits at position 0 (the anonymous/cyclic algorithm
//    class searched in [4,5]).
//  * kPerNode -- a separate table per node.
enum class Symmetry { kUniform, kCyclic, kPerNode };

const char* to_string(Symmetry s) noexcept;

struct TransitionTable {
  int n = 0;
  int f = 0;
  std::uint64_t num_states = 0;  // |X|
  std::uint64_t modulus = 0;     // c
  Symmetry symmetry = Symmetry::kUniform;

  // g: flattened transition table. Entry layout:
  //   index = node * num_states^n + encode(vector as seen by the node)
  // where encode(x) = sum_u x[u] * num_states^u; the node dimension is
  // dropped unless symmetry == kPerNode, and for kCyclic the vector is the
  // rotation (own, next, ...) of the received states.
  std::vector<std::uint8_t> g;

  // h: output per state (shared unless kPerNode): node * num_states + state.
  std::vector<std::uint8_t> h;

  // Exact worst-case stabilisation time certified by the verifier;
  // std::nullopt when the table has not been verified.
  std::optional<std::uint64_t> verified_time;

  std::string label = "table";

  bool per_node() const noexcept { return symmetry == Symmetry::kPerNode; }

  // Table index for `node` receiving `states` (indexed by absolute sender).
  std::uint64_t g_index(int node, std::span<const std::uint64_t> states) const;
  std::size_t expected_g_size() const;
  std::size_t expected_h_size() const;
};

// A TransitionTable precompiled for mass evaluation: the symmetry (cyclic
// rotation, per-node offsets) is resolved once into per-(node, sender) radix
// strides, so a transition is a single dot product plus one table lookup --
// no per-message g_index recomputation, no modular rotation arithmetic. The
// output map is expanded to node-major form so out() is branch-free. This is
// the representation the scalar TableAlgorithm::transition and the batched
// execution backend (sim/batch_runner.hpp) share.
struct CompiledTable {
  int n = 0;
  std::uint64_t num_states = 0;
  std::uint64_t modulus = 0;
  int bits = 0;  // ceil(log2(num_states)) = wire bits per state

  // stride[node * n + sender]: contribution of `sender`'s state index to the
  // flat g index seen by `node`.
  std::vector<std::uint64_t> stride;
  // node_base[node]: constant g offset (non-zero only for per-node tables).
  std::vector<std::uint64_t> node_base;
  std::vector<std::uint8_t> g;  // flat transition table, shared layout
  std::vector<std::uint8_t> h;  // expanded output map: [node * num_states + state]

  static CompiledTable compile(const TransitionTable& t);

  // Flat g index for `node`; idx[s] is the canonical state index sent by s.
  std::uint64_t g_index(int node, const std::uint8_t* idx) const noexcept {
    const std::uint64_t* st = stride.data() + static_cast<std::size_t>(node) * n;
    std::uint64_t acc = node_base[static_cast<std::size_t>(node)];
    for (int s = 0; s < n; ++s) acc += st[s] * idx[s];
    return acc;
  }
  std::uint8_t next(int node, const std::uint8_t* idx) const noexcept {
    return g[static_cast<std::size_t>(g_index(node, idx))];
  }
  std::uint8_t out(int node, std::uint8_t state) const noexcept {
    return h[static_cast<std::size_t>(node) * num_states + state];
  }
};

class TableAlgorithm final : public CountingAlgorithm {
 public:
  explicit TableAlgorithm(TransitionTable table);

  int num_nodes() const noexcept override { return table_.n; }
  int resilience() const noexcept override { return table_.f; }
  std::uint64_t modulus() const noexcept override { return table_.modulus; }
  int state_bits() const noexcept override { return bits_; }
  std::optional<std::uint64_t> stabilisation_bound() const noexcept override {
    return table_.verified_time;
  }
  std::string name() const override;

  State transition(NodeId i, std::span<const State> received,
                   TransitionContext& ctx) const override;
  std::uint64_t output(NodeId i, const State& s) const override;
  State canonicalize(const State& raw) const override;

  std::optional<std::uint64_t> state_count() const override { return table_.num_states; }
  State state_from_index(std::uint64_t idx) const override;
  std::uint64_t state_to_index(const State& s) const override;

  const TransitionTable& table() const noexcept { return table_; }
  const CompiledTable& compiled() const noexcept { return compiled_; }

 private:
  TransitionTable table_;
  int bits_;
  CompiledTable compiled_;
};

}  // namespace synccount::counting
