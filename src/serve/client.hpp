// Client side of the sweep service: retrying request transport + the
// worker loop.
//
// Every request is one connect/send/recv exchange wrapped in
// util::Backoff, so a restarting daemon (socket briefly gone), a dropped
// response, or a stalled accept queue is absorbed by retrying the whole
// idempotent request instead of surfacing as fleet failures. Only transport
// failures retry; a parsed {"ok":false} response is a real protocol error
// and throws immediately.
//
// The worker loop is the other half of the lease protocol: lease a
// contiguous group range, run each group through the engine (global cell
// indices, so aggregates are independent of how the grid was partitioned),
// heartbeat + complete per group, re-lease until the queue reports
// settled-empty. Fault sites ("worker.lease", "worker.group",
// "worker.complete", "worker.heartbeat") let chaos tests kill or mute a
// worker at every interesting instant.
#pragma once

#include <cstdint>
#include <string>

#include "util/backoff.hpp"
#include "util/json.hpp"

namespace synccount::serve {

class Client {
 public:
  // `seed` keys the backoff jitter (give each worker its own).
  explicit Client(std::string socket_path, util::BackoffPolicy policy = {},
                  std::uint64_t seed = 0x600FF);

  // One request/response exchange, transport retried with exponential
  // backoff + jitter. Throws std::invalid_argument on an {"ok":false}
  // response (carrying the daemon's error) and std::runtime_error when the
  // daemon stays unreachable past the retry budget.
  util::Json request(const util::Json& req);

  const std::string& socket_path() const noexcept { return socket_path_; }

 private:
  std::string socket_path_;
  util::BackoffPolicy policy_;
  std::uint64_t seed_;
  int io_timeout_ms_ = 10000;
};

struct WorkerConfig {
  std::string socket_path;
  std::string worker_id;         // empty: derived from the pid
  int threads = 1;               // engine threads per group
  std::uint64_t max_groups = 0;  // groups per lease request; 0 = daemon default
  bool once = true;              // exit when the queue is settled-empty or draining
  int idle_wait_ms = 200;        // sleep between idle lease polls
};

// Runs the lease -> run -> complete loop; returns the number of groups this
// worker completed (informational -- duplicates another worker also
// computed still count).
std::uint64_t run_worker(const WorkerConfig& cfg);

}  // namespace synccount::serve
