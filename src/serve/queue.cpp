#include "serve/queue.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace synccount::serve {

namespace fs = std::filesystem;
using util::Json;

namespace {

constexpr const char* kJobFormat = "synccount-serve-job";
constexpr int kJobVersion = 1;

}  // namespace

bool valid_job_name(const std::string& name) {
  if (name.empty() || name.size() > 64 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string JobQueue::spec_path(const std::string& name) const {
  return dir_ + "/job-" + name + ".spec.json";
}

std::string JobQueue::done_path(const std::string& name) const {
  return dir_ + "/job-" + name + ".done.jsonl";
}

JobQueue::Job JobQueue::make_job(std::string name, Json spec_json) {
  // Round-trip through the struct: validates the spec and canonicalizes the
  // serialization, so results_text is byte-identical to what a
  // single-process `sweep --spec --emit` of the same file produces.
  const sim::ExperimentSpec parsed = sim::experiment_spec_from_json(spec_json);
  for (const sim::SinkConfig& cfg : parsed.sinks) {
    SC_CHECK(cfg.kind == sim::SinkConfig::Kind::kProgress,
             "job \"" + name +
                 "\": file-writing sinks (trace/checkpoint) are worker-local and not "
                 "supported in service jobs -- strip them from the spec");
  }
  Job job;
  job.name = std::move(name);
  job.spec = sim::experiment_spec_to_json(parsed);
  job.groups = sim::group_count(parsed);
  SC_CHECK(job.groups > 0, "job \"" + job.name + "\": empty experiment grid");
  sim::grid_names(parsed, job.adversaries, job.placements);
  return job;
}

JobQueue::JobQueue(std::string dir) : dir_(std::move(dir)) {
  SC_CHECK(!dir_.empty(), "job queue needs a state directory");
  fs::create_directories(dir_);
  std::vector<std::string> spec_files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("job-", 0) == 0 && file.size() > 14 &&
        file.compare(file.size() - 10, 10, ".spec.json") == 0) {
      spec_files.push_back(entry.path().string());
    }
  }
  // Directory iteration order is unspecified; a restarted daemon must hand
  // out work in a reproducible order.
  std::sort(spec_files.begin(), spec_files.end());
  for (const std::string& file : spec_files) load_job(file);
}

void JobQueue::load_job(const std::string& spec_file) {
  std::ifstream in(spec_file, std::ios::binary);
  SC_CHECK(in.good(), "cannot read job file: " + spec_file);
  std::string line;
  SC_CHECK(std::getline(in, line), spec_file + ": empty job file");
  const Json meta = Json::parse(sim::crc_unframe(line, spec_file, 1));
  SC_CHECK(meta.has("format") && meta.at("format").as_string() == kJobFormat,
           spec_file + ": not a " + std::string(kJobFormat) + " file");
  SC_CHECK(meta.has("version") && meta.at("version").as_int() == kJobVersion,
           spec_file + ": unsupported job version");
  const std::string name = meta.at("job").as_string();
  SC_CHECK(valid_job_name(name), spec_file + ": invalid job name \"" + name + "\"");
  SC_CHECK(spec_path(name) == spec_file,
           spec_file + ": job name \"" + name + "\" does not match the file name");
  Job job = make_job(name, meta.at("spec"));

  // Replay the durably recorded groups. The done file is AtomicAppender-
  // committed (never a torn tail), so every line must verify -- a bad CRC
  // here is real corruption and stops the daemon with a file:line pointer.
  const std::string done_file = done_path(name);
  if (fs::exists(done_file)) {
    std::ifstream done_in(done_file, std::ios::binary);
    SC_CHECK(done_in.good(), "cannot read done file: " + done_file);
    std::size_t line_no = 0;
    while (std::getline(done_in, line)) {
      ++line_no;
      const Json g = Json::parse(sim::crc_unframe(line, done_file, line_no));
      const std::uint64_t group = g.at("group").as_u64();
      SC_CHECK(group < job.groups, done_file + ":" + std::to_string(line_no) +
                                       ": group " + std::to_string(group) +
                                       " outside the job's grid");
      // Parse the aggregate too: restart is the one moment we can still
      // point at the damaged file instead of merging garbage later.
      (void)sim::aggregate_from_json(g.at("aggregate"));
      job.done.emplace(group, line + "\n");
    }
  }
  job.done_file = std::make_unique<sim::AtomicAppender>(done_file, /*resume=*/true,
                                                        "serve.job.done");
  submit_order_.push_back(job.name);
  jobs_.emplace(job.name, std::move(job));
}

JobQueue::SubmitOutcome JobQueue::submit(const std::string& name, const Json& spec_json) {
  SC_CHECK(valid_job_name(name),
           "invalid job name \"" + name + "\" (want [A-Za-z0-9._-]{1,64})");
  Job job = make_job(name, spec_json);
  const auto it = jobs_.find(name);
  if (it != jobs_.end()) {
    // Idempotent resubmit (a client that never heard the response retries);
    // a different grid under the same name is always a caller mistake.
    SC_CHECK(it->second.spec.dump() == job.spec.dump(),
             "job \"" + name + "\" already exists with a different spec -- mismatched " +
                 sim::describe_spec_mismatch(job.spec, it->second.spec));
    return {it->second.groups, static_cast<std::uint64_t>(it->second.done.size()), true};
  }

  Json meta = Json::object();
  meta.set("format", Json::string(kJobFormat));
  meta.set("version", Json::number(kJobVersion));
  meta.set("job", Json::string(name));
  meta.set("spec", job.spec);
  sim::atomic_write_file(spec_path(name), sim::crc_frame(meta.dump()) + "\n",
                         "serve.job.spec");
  job.done_file = std::make_unique<sim::AtomicAppender>(done_path(name),
                                                        /*resume=*/false,
                                                        "serve.job.done");
  job.done_file->commit();  // publish the (empty) done file now

  const std::uint64_t groups = job.groups;
  submit_order_.push_back(name);
  jobs_.emplace(name, std::move(job));
  return {groups, 0, false};
}

bool JobQueue::assign(std::uint64_t max_groups,
                      const std::function<bool(const std::string&, std::uint64_t)>& held,
                      Assignment& out) const {
  SC_CHECK(max_groups > 0, "assignment needs max_groups >= 1");
  for (const std::string& name : submit_order_) {
    const Job& job = jobs_.at(name);
    for (std::uint64_t g = 0; g < job.groups; ++g) {
      if (job.done.count(g) != 0 || held(name, g)) continue;
      std::uint64_t end = g + 1;
      while (end < job.groups && end - g < max_groups && job.done.count(end) == 0 &&
             !held(name, end)) {
        ++end;
      }
      out.job = name;
      out.group_begin = g;
      out.group_end = end;
      out.spec = &job.spec;
      return true;
    }
  }
  return false;
}

bool JobQueue::record_done(const std::string& job_name, std::uint64_t group,
                           const std::string& adversary, const std::string& placement,
                           const Json& aggregate) {
  const auto it = jobs_.find(job_name);
  SC_CHECK(it != jobs_.end(), "unknown job \"" + job_name + "\"");
  Job& job = it->second;
  SC_CHECK(group < job.groups, "job \"" + job_name + "\": group " +
                                   std::to_string(group) + " outside the grid of " +
                                   std::to_string(job.groups) + " groups");
  const std::string& want_adv = job.adversaries[group / job.placements.size()];
  const std::string& want_pl = job.placements[group % job.placements.size()];
  SC_CHECK(adversary == want_adv && placement == want_pl,
           "job \"" + job_name + "\": group " + std::to_string(group) + " is (" +
               want_adv + ", " + want_pl + "), not (" + adversary + ", " + placement +
               ") -- worker/daemon grid disagreement");
  // Validate the aggregate's own invariants before anything durable
  // happens; the canonical line below re-serializes the parsed form.
  const sim::AggregateResult agg = sim::aggregate_from_json(aggregate);

  if (job.done.count(group) != 0) return false;  // benign duplicate
  std::ostringstream os;
  sim::write_partial_group(os, static_cast<std::size_t>(group), job.adversaries,
                           job.placements, agg);
  job.done_file->append(os.str());
  job.done_file->commit();
  job.done.emplace(group, os.str());
  return true;
}

std::vector<JobQueue::JobStatus> JobQueue::status() const {
  std::vector<JobStatus> out;
  for (const std::string& name : submit_order_) {
    const Job& job = jobs_.at(name);
    out.push_back({name, job.groups, static_cast<std::uint64_t>(job.done.size()),
                   job.done.size() == job.groups});
  }
  return out;
}

bool JobQueue::job_complete(const std::string& name) const {
  const auto it = jobs_.find(name);
  SC_CHECK(it != jobs_.end(), "unknown job \"" + name + "\"");
  return it->second.done.size() == it->second.groups;
}

std::uint64_t JobQueue::pending_groups() const {
  std::uint64_t pending = 0;
  for (const auto& [name, job] : jobs_) pending += job.groups - job.done.size();
  return pending;
}

std::string JobQueue::results_text(const std::string& name) const {
  const auto it = jobs_.find(name);
  SC_CHECK(it != jobs_.end(), "unknown job \"" + name + "\"");
  const Job& job = it->second;
  SC_CHECK(job.done.size() == job.groups,
           "job \"" + name + "\" incomplete: " + std::to_string(job.done.size()) + "/" +
               std::to_string(job.groups) + " groups done");
  sim::ShardPlan plan;
  plan.shards = 1;
  plan.shard = 0;
  plan.group_begin = 0;
  plan.group_end = static_cast<std::size_t>(job.groups);
  std::ostringstream os;
  sim::write_partial_header(os, plan, job.spec);
  for (const auto& [group, line] : job.done) os << line;  // map: group order
  return os.str();
}

}  // namespace synccount::serve
