#include "serve/queue.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "counting/table_io.hpp"
#include "synthesis/portfolio.hpp"
#include "util/check.hpp"

namespace synccount::serve {

namespace fs = std::filesystem;
using util::Json;

namespace {

constexpr const char* kJobFormat = "synccount-serve-job";
constexpr int kJobVersion = 1;
constexpr const char* kSynthResultFormat = "synccount-synth-result";
constexpr int kSynthResultVersion = 1;

bool is_synth_spec(const Json& spec_json) {
  const Json* kind = spec_json.find("kind");
  return kind != nullptr && kind->type() == Json::Type::kString &&
         kind->as_string() == "synth";
}

// One parsed cube-verdict line of a job-<name>.cubes.jsonl file (also the
// line shape of synth results). Shared by record_cube (fresh records),
// load_job (restart replay) and parse_synth_results (clients).
struct CubeRecord {
  std::uint64_t cube = 0;
  std::string verdict;
  int config = -1;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t restarts = 0;
  std::string table;  // counting table text; non-empty iff verdict == "sat"
};

Json cube_record_to_json(const CubeRecord& r) {
  Json j = Json::object();
  j.set("cube", Json::number(r.cube));
  j.set("verdict", Json::string(r.verdict));
  j.set("config", Json::number(static_cast<std::int64_t>(r.config)));
  j.set("conflicts", Json::number(r.conflicts));
  j.set("decisions", Json::number(r.decisions));
  j.set("restarts", Json::number(r.restarts));
  if (!r.table.empty()) j.set("table", Json::string(r.table));
  return j;
}

CubeRecord cube_record_from_json(const Json& j, const std::string& ctx) {
  CubeRecord r;
  r.cube = j.at("cube").as_u64();
  r.verdict = j.at("verdict").as_string();
  r.config = static_cast<int>(j.at("config").as_int());
  r.conflicts = j.at("conflicts").as_u64();
  r.decisions = j.at("decisions").as_u64();
  r.restarts = j.at("restarts").as_u64();
  if (const Json* t = j.find("table")) r.table = t->as_string();
  SC_CHECK(!r.verdict.empty(), ctx + ": cube record without a verdict");
  return r;
}

// Full validation of one cube record against its job: verdict vocabulary,
// config range, and that a model rides along exactly when the verdict says
// SAT -- with the table parsed and shape-checked against the job's spec so
// a cross-job (or corrupted) model can never be recorded.
void validate_cube_record(const synthesis::SynthJobSpec& synth, std::uint64_t groups,
                          const CubeRecord& r, const std::string& ctx) {
  SC_CHECK(r.cube < groups, ctx + ": cube " + std::to_string(r.cube) +
                                " outside the job's 2^" +
                                std::to_string(synth.cube_depth) + " cubes");
  const synthesis::CubeVerdict v = synthesis::cube_verdict_from_string(r.verdict);
  if (v == synthesis::CubeVerdict::kUnknown) {
    SC_CHECK(r.config == -1, ctx + ": unknown verdict names a resolving config");
  } else {
    SC_CHECK(r.config >= 0 && r.config < synth.portfolio,
             ctx + ": resolving config " + std::to_string(r.config) +
                 " outside the portfolio of " + std::to_string(synth.portfolio));
  }
  if (v == synthesis::CubeVerdict::kSat) {
    SC_CHECK(!r.table.empty(), ctx + ": SAT cube without a model table");
    const counting::TransitionTable table = counting::table_from_string(r.table);
    SC_CHECK(table.n == synth.spec.n && table.f == synth.spec.f &&
                 table.num_states == synth.spec.num_states,
             ctx + ": model table shape does not match the job's spec");
  } else {
    SC_CHECK(r.table.empty(), ctx + ": non-SAT cube carries a model table");
  }
}

}  // namespace

bool valid_job_name(const std::string& name) {
  if (name.empty() || name.size() > 64 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string JobQueue::spec_path(const std::string& name) const {
  return dir_ + "/job-" + name + ".spec.json";
}

std::string JobQueue::done_path(const Job& job) const {
  return dir_ + "/job-" + job.name +
         (job.kind == Job::Kind::kSynth ? ".cubes.jsonl" : ".done.jsonl");
}

std::uint64_t JobQueue::required_groups(const Job& job) {
  // Once a synth job has a SAT cube W, only cubes 0..W still matter; higher
  // cubes are moot and the job drains to this shrunken target.
  if (job.kind == Job::Kind::kSynth && job.min_sat < job.groups) {
    return job.min_sat + 1;
  }
  return job.groups;
}

std::uint64_t JobQueue::required_done(const Job& job) {
  const std::uint64_t limit = required_groups(job);
  std::uint64_t n = 0;
  for (const auto& [group, line] : job.done) {
    if (group < limit) ++n;
  }
  return n;
}

JobQueue::Job JobQueue::make_job(std::string name, Json spec_json) {
  // Round-trip through the typed struct: validates the spec and
  // canonicalizes the serialization, so idempotent-resubmit comparison and
  // results_text are byte-exact against any other serialization of the same
  // spec.
  Job job;
  job.name = std::move(name);
  if (is_synth_spec(spec_json)) {
    job.kind = Job::Kind::kSynth;
    job.synth = synthesis::SynthJobSpec::from_json(spec_json);
    job.spec = job.synth.to_json();
    job.groups = std::uint64_t{1} << job.synth.cube_depth;
  } else {
    const sim::ExperimentSpec parsed = sim::experiment_spec_from_json(spec_json);
    for (const sim::SinkConfig& cfg : parsed.sinks) {
      SC_CHECK(cfg.kind == sim::SinkConfig::Kind::kProgress,
               "job \"" + job.name +
                   "\": file-writing sinks (trace/checkpoint) are worker-local and not "
                   "supported in service jobs -- strip them from the spec");
    }
    job.spec = sim::experiment_spec_to_json(parsed);
    job.groups = sim::group_count(parsed);
    SC_CHECK(job.groups > 0, "job \"" + job.name + "\": empty experiment grid");
    sim::grid_names(parsed, job.adversaries, job.placements);
  }
  job.min_sat = job.groups;  // "no SAT cube recorded yet"
  return job;
}

JobQueue::JobQueue(std::string dir) : dir_(std::move(dir)) {
  SC_CHECK(!dir_.empty(), "job queue needs a state directory");
  fs::create_directories(dir_);
  std::vector<std::string> spec_files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("job-", 0) == 0 && file.size() > 14 &&
        file.compare(file.size() - 10, 10, ".spec.json") == 0) {
      spec_files.push_back(entry.path().string());
    }
  }
  // Directory iteration order is unspecified; a restarted daemon must hand
  // out work in a reproducible order.
  std::sort(spec_files.begin(), spec_files.end());
  for (const std::string& file : spec_files) load_job(file);
}

void JobQueue::load_job(const std::string& spec_file) {
  std::ifstream in(spec_file, std::ios::binary);
  SC_CHECK(in.good(), "cannot read job file: " + spec_file);
  std::string line;
  SC_CHECK(std::getline(in, line), spec_file + ": empty job file");
  const Json meta = Json::parse(sim::crc_unframe(line, spec_file, 1));
  SC_CHECK(meta.has("format") && meta.at("format").as_string() == kJobFormat,
           spec_file + ": not a " + std::string(kJobFormat) + " file");
  SC_CHECK(meta.has("version") && meta.at("version").as_int() == kJobVersion,
           spec_file + ": unsupported job version");
  const std::string name = meta.at("job").as_string();
  SC_CHECK(valid_job_name(name), spec_file + ": invalid job name \"" + name + "\"");
  SC_CHECK(spec_path(name) == spec_file,
           spec_file + ": job name \"" + name + "\" does not match the file name");
  Job job = make_job(name, meta.at("spec"));

  // Replay the durably recorded groups. The done file is AtomicAppender-
  // committed (never a torn tail), so every line must verify -- a bad CRC
  // here is real corruption and stops the daemon with a file:line pointer.
  const std::string done_file = done_path(job);
  if (fs::exists(done_file)) {
    std::ifstream done_in(done_file, std::ios::binary);
    SC_CHECK(done_in.good(), "cannot read done file: " + done_file);
    std::size_t line_no = 0;
    while (std::getline(done_in, line)) {
      ++line_no;
      const std::string ctx = done_file + ":" + std::to_string(line_no);
      const Json g = Json::parse(sim::crc_unframe(line, done_file, line_no));
      if (job.kind == Job::Kind::kSynth) {
        const CubeRecord rec = cube_record_from_json(g, ctx);
        validate_cube_record(job.synth, job.groups, rec, ctx);
        job.done.emplace(rec.cube, line + "\n");
        if (rec.verdict == "sat") job.min_sat = std::min(job.min_sat, rec.cube);
        continue;
      }
      const std::uint64_t group = g.at("group").as_u64();
      SC_CHECK(group < job.groups,
               ctx + ": group " + std::to_string(group) + " outside the job's grid");
      // Parse the aggregate too: restart is the one moment we can still
      // point at the damaged file instead of merging garbage later.
      (void)sim::aggregate_from_json(g.at("aggregate"));
      job.done.emplace(group, line + "\n");
    }
  }
  job.done_file = std::make_unique<sim::AtomicAppender>(done_file, /*resume=*/true,
                                                        "serve.job.done");
  submit_order_.push_back(job.name);
  jobs_.emplace(job.name, std::move(job));
}

JobQueue::SubmitOutcome JobQueue::submit(const std::string& name, const Json& spec_json) {
  SC_CHECK(valid_job_name(name),
           "invalid job name \"" + name + "\" (want [A-Za-z0-9._-]{1,64})");
  Job job = make_job(name, spec_json);
  const auto it = jobs_.find(name);
  if (it != jobs_.end()) {
    // Idempotent resubmit (a client that never heard the response retries);
    // a different grid under the same name is always a caller mistake.
    SC_CHECK(it->second.spec.dump() == job.spec.dump(),
             "job \"" + name + "\" already exists with a different spec -- mismatched " +
                 sim::describe_spec_mismatch(job.spec, it->second.spec));
    return {it->second.groups, static_cast<std::uint64_t>(it->second.done.size()), true};
  }

  Json meta = Json::object();
  meta.set("format", Json::string(kJobFormat));
  meta.set("version", Json::number(kJobVersion));
  meta.set("job", Json::string(name));
  meta.set("spec", job.spec);
  sim::atomic_write_file(spec_path(name), sim::crc_frame(meta.dump()) + "\n",
                         "serve.job.spec");
  job.done_file = std::make_unique<sim::AtomicAppender>(done_path(job),
                                                        /*resume=*/false,
                                                        "serve.job.done");
  job.done_file->commit();  // publish the (empty) done file now

  const std::uint64_t groups = job.groups;
  submit_order_.push_back(name);
  jobs_.emplace(name, std::move(job));
  return {groups, 0, false};
}

bool JobQueue::assign(std::uint64_t max_groups,
                      const std::function<bool(const std::string&, std::uint64_t)>& held,
                      Assignment& out) const {
  SC_CHECK(max_groups > 0, "assignment needs max_groups >= 1");
  for (const std::string& name : submit_order_) {
    const Job& job = jobs_.at(name);
    // Synth jobs drain once a SAT cube is recorded: cubes above the winner
    // candidate are moot and never assigned again.
    const std::uint64_t bound = required_groups(job);
    for (std::uint64_t g = 0; g < bound; ++g) {
      if (job.done.count(g) != 0 || held(name, g)) continue;
      std::uint64_t end = g + 1;
      while (end < bound && end - g < max_groups && job.done.count(end) == 0 &&
             !held(name, end)) {
        ++end;
      }
      out.job = name;
      out.group_begin = g;
      out.group_end = end;
      out.spec = &job.spec;
      return true;
    }
  }
  return false;
}

bool JobQueue::record_done(const std::string& job_name, std::uint64_t group,
                           const std::string& adversary, const std::string& placement,
                           const Json& aggregate) {
  const auto it = jobs_.find(job_name);
  SC_CHECK(it != jobs_.end(), "unknown job \"" + job_name + "\"");
  Job& job = it->second;
  SC_CHECK(job.kind == Job::Kind::kSweep,
           "job \"" + job_name + "\" is a synth job -- complete cubes, not groups");
  SC_CHECK(group < job.groups, "job \"" + job_name + "\": group " +
                                   std::to_string(group) + " outside the grid of " +
                                   std::to_string(job.groups) + " groups");
  const std::string& want_adv = job.adversaries[group / job.placements.size()];
  const std::string& want_pl = job.placements[group % job.placements.size()];
  SC_CHECK(adversary == want_adv && placement == want_pl,
           "job \"" + job_name + "\": group " + std::to_string(group) + " is (" +
               want_adv + ", " + want_pl + "), not (" + adversary + ", " + placement +
               ") -- worker/daemon grid disagreement");
  // Validate the aggregate's own invariants before anything durable
  // happens; the canonical line below re-serializes the parsed form.
  const sim::AggregateResult agg = sim::aggregate_from_json(aggregate);

  if (job.done.count(group) != 0) return false;  // benign duplicate
  std::ostringstream os;
  sim::write_partial_group(os, static_cast<std::size_t>(group), job.adversaries,
                           job.placements, agg);
  job.done_file->append(os.str());
  job.done_file->commit();
  job.done.emplace(group, os.str());
  return true;
}

bool JobQueue::record_cube(const std::string& job_name, std::uint64_t cube,
                           const std::string& verdict, int config,
                           std::uint64_t conflicts, std::uint64_t decisions,
                           std::uint64_t restarts, const std::string& table_text) {
  const auto it = jobs_.find(job_name);
  SC_CHECK(it != jobs_.end(), "unknown job \"" + job_name + "\"");
  Job& job = it->second;
  SC_CHECK(job.kind == Job::Kind::kSynth,
           "job \"" + job_name + "\" is a sweep job -- complete groups, not cubes");
  CubeRecord rec;
  rec.cube = cube;
  rec.verdict = verdict;
  rec.config = config;
  rec.conflicts = conflicts;
  rec.decisions = decisions;
  rec.restarts = restarts;
  rec.table = table_text;
  validate_cube_record(job.synth, job.groups, rec, "job \"" + job_name + "\"");

  if (job.done.count(cube) != 0) return false;  // benign duplicate
  const std::string line = sim::crc_frame(cube_record_to_json(rec).dump()) + "\n";
  job.done_file->append(line);
  job.done_file->commit();
  job.done.emplace(cube, line);
  if (rec.verdict == "sat") job.min_sat = std::min(job.min_sat, cube);
  return true;
}

std::vector<JobQueue::JobStatus> JobQueue::status() const {
  std::vector<JobStatus> out;
  for (const std::string& name : submit_order_) {
    const Job& job = jobs_.at(name);
    // Synth jobs report against the drained target: finding a SAT cube
    // visibly collapses groups to winner+1.
    const std::uint64_t groups = required_groups(job);
    const std::uint64_t done = required_done(job);
    out.push_back({name, job.kind == Job::Kind::kSynth ? "synth" : "sweep", groups,
                   done, done == groups});
  }
  return out;
}

bool JobQueue::job_complete(const std::string& name) const {
  const auto it = jobs_.find(name);
  SC_CHECK(it != jobs_.end(), "unknown job \"" + name + "\"");
  return required_done(it->second) == required_groups(it->second);
}

std::uint64_t JobQueue::pending_groups() const {
  std::uint64_t pending = 0;
  for (const auto& [name, job] : jobs_) pending += required_groups(job) - required_done(job);
  return pending;
}

std::string JobQueue::results_text(const std::string& name) const {
  const auto it = jobs_.find(name);
  SC_CHECK(it != jobs_.end(), "unknown job \"" + name + "\"");
  const Job& job = it->second;
  const std::uint64_t limit = required_groups(job);
  SC_CHECK(required_done(job) == limit,
           "job \"" + name + "\" incomplete: " + std::to_string(required_done(job)) +
               "/" + std::to_string(limit) + " groups done");
  std::ostringstream os;
  if (job.kind == Job::Kind::kSynth) {
    // Only the deterministic prefix is emitted: cubes 0..W (W = the lowest
    // SAT cube), or every cube when none is SAT. Any worker/kill schedule
    // that completes the job produces these exact bytes.
    Json meta = Json::object();
    meta.set("format", Json::string(kSynthResultFormat));
    meta.set("version", Json::number(kSynthResultVersion));
    meta.set("job", Json::string(name));
    meta.set("spec", job.spec);
    os << sim::crc_frame(meta.dump()) << "\n";
    for (const auto& [cube, line] : job.done) {
      if (cube < limit) os << line;  // map: cube order
    }
    return os.str();
  }
  sim::ShardPlan plan;
  plan.shards = 1;
  plan.shard = 0;
  plan.group_begin = 0;
  plan.group_end = static_cast<std::size_t>(job.groups);
  sim::write_partial_header(os, plan, job.spec);
  for (const auto& [group, line] : job.done) os << line;  // map: group order
  return os.str();
}

SynthResults parse_synth_results(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  SC_CHECK(std::getline(in, line), "empty synth results");
  const Json meta = Json::parse(sim::crc_unframe(line, "synth-results", 1));
  SC_CHECK(meta.has("format") && meta.at("format").as_string() == kSynthResultFormat,
           "not a " + std::string(kSynthResultFormat) + " file");
  SC_CHECK(meta.has("version") && meta.at("version").as_int() == kSynthResultVersion,
           "unsupported synth results version");
  SynthResults out;
  out.job = meta.at("job").as_string();
  out.spec = synthesis::SynthJobSpec::from_json(meta.at("spec"));
  const std::uint64_t groups = std::uint64_t{1} << out.spec.cube_depth;
  std::size_t line_no = 1;
  std::uint64_t next_cube = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string ctx = "synth-results:" + std::to_string(line_no);
    const Json g = Json::parse(sim::crc_unframe(line, "synth-results", line_no));
    const CubeRecord rec = cube_record_from_json(g, ctx);
    validate_cube_record(out.spec, groups, rec, ctx);
    SC_CHECK(rec.cube == next_cube, ctx + ": cube lines out of order");
    SC_CHECK(!out.found, ctx + ": cube line after the winning SAT cube");
    ++next_cube;
    if (rec.verdict == "sat") {
      out.found = true;
      out.winning_cube = rec.cube;
      out.table_text = rec.table;
    }
    out.cubes.push_back({rec.cube, rec.verdict, rec.config, rec.conflicts,
                         rec.decisions, rec.restarts, rec.table});
  }
  SC_CHECK(out.found || next_cube == groups,
           "synth results without a winner must cover every cube");
  return out;
}

}  // namespace synccount::serve
