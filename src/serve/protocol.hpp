// Wire protocol of the sweep service (synccount_serve).
//
// Transport: newline-delimited JSON over a Unix-domain stream socket
// (util/socket.hpp), ONE request line and ONE response line per
// connection. Single-shot connections keep the daemon loop trivial to
// reason about under faults: there is no per-connection state to leak when
// a peer is SIGKILL'd mid-exchange, and a worker that never hears the
// response simply retries -- every request is either idempotent (submit,
// status, results, drain, shutdown, heartbeat) or dedupe-guarded by the
// daemon (complete: first (job, group) wins; the work is deterministic so
// duplicates are byte-identical).
//
// Requests are objects {"op":OP,"v":1,...}; responses are {"ok":true,...}
// or {"ok":false,"error":MSG}. Ops:
//
//   submit     {"job":NAME,"spec":{...ExperimentSpec...}}
//              -> {"ok":true,"job":NAME,"groups":G,"done":D,"existed":B}
//              Idempotent by job name; re-submitting a different spec under
//              an existing name is an error naming the mismatched fields.
//   lease      {"worker":ID,"max_groups":K}
//              -> LeaseGrant (below), or
//                 {"ok":true,"idle":true,"pending":B,"draining":B}
//              `pending` is true while ANY group of any job is not done --
//              an idle response with pending=true means other workers hold
//              leases (or a lease must first expire); retry later.
//   heartbeat  {"lease":ID} -> {"ok":true,"valid":B}
//              Renews the lease deadline; valid=false means the lease
//              expired and its groups were requeued -- stop working on it.
//   complete   CompleteRequest (below) -> {"ok":true,"accepted":B}
//              Durably records one finished group. accepted=false is a
//              benign duplicate. Accepted even from an expired lease.
//              Synth jobs complete cubes instead: a CubeCompleteRequest
//              (distinguished by its "cube" field) with the canonical-scan
//              verdict and, for SAT, the decoded model table.
//   status     {} or {"job":NAME} -> {"ok":true,"draining":B,"jobs":[
//              {"job":N,"groups":G,"done":D,"leased":L,"complete":B},...]}
//   results    {"job":NAME} -> {"ok":true,"partial":TEXT}
//              TEXT is the full shard-partial file (experiment_io v3),
//              byte-identical to a single-process `sweep --spec --emit`
//              run of the same spec. Errors while the job is incomplete.
//   drain      {} -> {"ok":true}   stop granting leases (submits/completes
//              still accepted; once-workers exit on the draining flag)
//   shutdown   {} -> {"ok":true}   daemon exits after responding; all
//              queue state is already durable, restart resumes it
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace synccount::serve {

inline constexpr int kProtocolVersion = 1;

// --- Message helpers ---------------------------------------------------------

// {"op":OP,"v":1}
util::Json make_request(std::string op);

util::Json ok_response();
util::Json error_response(const std::string& message);

// True for {"ok":true,...}; throws std::invalid_argument with the carried
// error message for {"ok":false,...} and on malformed responses.
bool check_response(const util::Json& resp);

// Typed field accessors with contextful errors (throw std::invalid_argument
// naming the missing/mistyped key).
const std::string& msg_string(const util::Json& msg, std::string_view key);
std::uint64_t msg_u64(const util::Json& msg, std::string_view key);
bool msg_bool(const util::Json& msg, std::string_view key, bool fallback);
const util::Json& msg_field(const util::Json& msg, std::string_view key);

// --- Typed payloads ----------------------------------------------------------

// A granted lease: the worker owns groups [group_begin, group_end) of `job`
// until `deadline` (ttl_ms from grant, renewed by heartbeat/complete).
struct LeaseGrant {
  std::string job;
  std::uint64_t lease_id = 0;
  std::uint64_t group_begin = 0;
  std::uint64_t group_end = 0;
  std::uint64_t ttl_ms = 0;
  util::Json spec;  // serialized ExperimentSpec (canonical daemon copy)

  util::Json to_json() const;  // the full ok-response
  static LeaseGrant from_json(const util::Json& j);
};

// One durably-recorded unit of progress: a finished (adversary, placement)
// group with its aggregate, exactly the payload of a partial-file group
// line.
struct CompleteRequest {
  std::uint64_t lease_id = 0;
  std::string job;
  std::uint64_t group = 0;
  std::string adversary;
  std::string placement;
  util::Json aggregate;

  util::Json to_json() const;  // the full request (op:"complete")
  static CompleteRequest from_json(const util::Json& j);
};

// One durably-recorded cube of a synth job: the canonical priority scan's
// verdict (deterministic per (spec, cube)), its resolving config and solver
// work, and -- for SAT -- the decoded model in counting table-text form.
// Distinguished from a sweep CompleteRequest by the "cube" field.
struct CubeCompleteRequest {
  std::uint64_t lease_id = 0;
  std::string job;
  std::uint64_t cube = 0;
  std::string verdict;  // "sat" | "unsat" | "unknown"
  int config = -1;      // resolving config index; -1 when unknown
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t restarts = 0;
  std::string table;  // counting::table_to_string text, non-empty iff sat

  util::Json to_json() const;  // the full request (op:"complete")
  static CubeCompleteRequest from_json(const util::Json& j);
};

}  // namespace synccount::serve
