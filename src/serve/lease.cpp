#include "serve/lease.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace synccount::serve {

std::uint64_t LeaseTable::grant(std::string job, std::uint64_t begin, std::uint64_t end,
                                std::string worker, Clock::time_point now,
                                std::chrono::milliseconds ttl) {
  SC_CHECK(begin < end, "lease needs a non-empty group range");
  Lease lease;
  lease.id = next_id_++;
  lease.job = std::move(job);
  lease.group_begin = begin;
  lease.group_end = end;
  lease.worker = std::move(worker);
  lease.deadline = now + ttl;
  leases_.push_back(std::move(lease));
  return leases_.back().id;
}

bool LeaseTable::renew(std::uint64_t id, Clock::time_point now,
                       std::chrono::milliseconds ttl) {
  for (Lease& lease : leases_) {
    if (lease.id == id) {
      lease.deadline = now + ttl;
      return true;
    }
  }
  return false;
}

const Lease* LeaseTable::find(std::uint64_t id) const {
  for (const Lease& lease : leases_) {
    if (lease.id == id) return &lease;
  }
  return nullptr;
}

void LeaseTable::release(std::uint64_t id) {
  leases_.erase(std::remove_if(leases_.begin(), leases_.end(),
                               [id](const Lease& l) { return l.id == id; }),
                leases_.end());
}

std::vector<Lease> LeaseTable::sweep_expired(Clock::time_point now) {
  std::vector<Lease> expired;
  auto keep = leases_.begin();
  for (auto it = leases_.begin(); it != leases_.end(); ++it) {
    if (it->deadline <= now) {
      expired.push_back(std::move(*it));
    } else {
      // Guard the self-move: assigning a Lease onto itself would empty its
      // string members and silently un-hold the groups it covers.
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  leases_.erase(keep, leases_.end());
  return expired;
}

bool LeaseTable::held(const std::string& job, std::uint64_t group,
                      Clock::time_point now) const {
  for (const Lease& lease : leases_) {
    if (lease.deadline > now && lease.job == job && lease.group_begin <= group &&
        group < lease.group_end) {
      return true;
    }
  }
  return false;
}

std::uint64_t LeaseTable::held_groups(const std::string& job, Clock::time_point now) const {
  std::uint64_t held = 0;
  for (const Lease& lease : leases_) {
    if (lease.deadline > now && lease.job == job) {
      held += lease.group_end - lease.group_begin;
    }
  }
  return held;
}

}  // namespace synccount::serve
