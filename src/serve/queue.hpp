// Durable work queue of the sweep service.
//
// A job is either a sweep (one ExperimentSpec whose (adversary, placement)
// cell-groups are handed out to workers and recorded back one at a time) or
// a synthesis cube job (one synthesis::SynthJobSpec whose 2^cube_depth
// cubes are the leased unit -- the distributed half of the parallel
// synthesis engine, see synthesis/portfolio.hpp). Everything the queue
// knows lives on disk under one state directory, written with the
// crash-safe primitives of sim/experiment_io.hpp, so a SIGKILL'd daemon
// restarts from the directory with no lost completed work:
//
//   job-<name>.spec.json    one CRC-framed line (atomic_write_file):
//                           {"format":"synccount-serve-job","version":1,
//                            "job":NAME,"spec":{...ExperimentSpec... |
//                                               ...SynthJobSpec...}}
//   job-<name>.done.jsonl   (sweep) one CRC-framed group line per durably
//                           recorded group, in COMPLETION order
//                           (AtomicAppender: never a torn tail) -- each line
//                           is byte-for-byte a v3 partial-file group line
//   job-<name>.cubes.jsonl  (synth) one CRC-framed cube-verdict line per
//                           durably recorded cube: {"cube":J,"verdict":
//                           "sat|unsat|unknown","config":C,"conflicts":N,
//                           "decisions":N,"restarts":N[,"table":TEXT]}
//
// Because sweep done lines are canonical partial-file group lines,
// assembling a finished job's result is pure concatenation: header + done
// lines sorted by group index, byte-identical to a single-process `sweep
// --spec --emit` run of the same spec (the chaos differential test enforces
// this).
//
// Synth jobs inherit the determinism contract: every cube's verdict line is
// the output of the canonical priority scan (synthesis::solve_cube), which
// is deterministic per (spec, cube), and "first SAT cube wins" means first
// in CUBE order, not arrival order. Once a SAT cube W is recorded, cubes
// above W are moot and never again assigned (the job drains); the job is
// complete when every cube below W is recorded too (or all cubes are, when
// none is SAT), and results_text emits exactly cubes 0..W -- so a chaos run
// with any worker/kill schedule produces byte-identical results.
//
// The queue tracks WHAT is done; WHO is currently working is the
// LeaseTable's problem (serve/lease.hpp) -- assignment takes a `held`
// predicate so the two stay decoupled and independently testable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment_io.hpp"
#include "synthesis/cube.hpp"
#include "util/json.hpp"

namespace synccount::serve {

// Filesystem-safe job names: [A-Za-z0-9._-], 1..64 chars, not starting
// with '.' (no surprise dotfiles / traversal in the state dir).
bool valid_job_name(const std::string& name);

class JobQueue {
 public:
  // Creates `dir` if missing and loads every job found in it. Throws
  // std::invalid_argument naming file and line on corrupt state (the
  // crash-safe writers never produce torn state, so corruption is real
  // damage, not an interrupted write).
  explicit JobQueue(std::string dir);

  struct SubmitOutcome {
    std::uint64_t groups = 0;
    std::uint64_t done = 0;
    bool existed = false;
  };

  // Registers a job, durably. Idempotent: re-submitting an identical spec
  // under an existing name reports existed=true; a DIFFERENT spec under an
  // existing name throws, naming the mismatched fields. `spec_json` must be
  // the canonical serialization (experiment_spec_to_json of the parsed
  // spec); file-writing sinks are rejected (worker-local paths are
  // meaningless on a fleet).
  SubmitOutcome submit(const std::string& name, const util::Json& spec_json);

  struct Assignment {
    std::string job;
    std::uint64_t group_begin = 0;
    std::uint64_t group_end = 0;
    const util::Json* spec = nullptr;  // owned by the queue
  };

  // First-fit over jobs in submit order: the first contiguous run (up to
  // max_groups long) of groups neither done nor held(job, group). False
  // when nothing is assignable right now.
  bool assign(std::uint64_t max_groups,
              const std::function<bool(const std::string&, std::uint64_t)>& held,
              Assignment& out) const;

  // Durably records one finished group: validates the job, range, grid
  // names, and the aggregate itself (parse + invariants) before appending
  // to the done file. False on a benign duplicate (first write wins; the
  // engine is deterministic, so duplicates are byte-identical). Throws on
  // anything inconsistent with the job's grid. Sweep jobs only.
  bool record_done(const std::string& job, std::uint64_t group,
                   const std::string& adversary, const std::string& placement,
                   const util::Json& aggregate);

  // Durably records one solved cube of a synth job: verdict is
  // "sat"/"unsat"/"unknown", table_text the counting::table_to_string form
  // of the decoded model (required for sat, forbidden otherwise). False on
  // a benign duplicate; the canonical scan is deterministic, so duplicates
  // are byte-identical. A recorded SAT cube lowers the job's winner
  // candidate: higher cubes stop being assignable.
  bool record_cube(const std::string& job, std::uint64_t cube,
                   const std::string& verdict, int config,
                   std::uint64_t conflicts, std::uint64_t decisions,
                   std::uint64_t restarts, const std::string& table_text);

  struct JobStatus {
    std::string name;
    std::string kind;  // "sweep" | "synth"
    std::uint64_t groups = 0;
    std::uint64_t done = 0;
    bool complete = false;
  };
  std::vector<JobStatus> status() const;

  bool has_job(const std::string& name) const { return jobs_.count(name) != 0; }
  bool job_complete(const std::string& name) const;

  // Groups not yet durably done, across all jobs (an idle worker exits
  // only when this hits zero).
  std::uint64_t pending_groups() const;

  // The finished job's results: for sweep jobs the full shard-partial file
  // (header + group lines in group order); for synth jobs a
  // synccount-synth-result file (header + cube-verdict lines 0..W in cube
  // order, where W is the winning cube -- or every cube when none is SAT).
  // Throws while the job is incomplete, reporting done/total.
  std::string results_text(const std::string& name) const;

  const std::string& dir() const noexcept { return dir_; }

 private:
  struct Job {
    enum class Kind { kSweep, kSynth };
    std::string name;
    Kind kind = Kind::kSweep;
    util::Json spec;  // canonical serialized ExperimentSpec / SynthJobSpec
    std::uint64_t groups = 0;
    // Sweep-only grid names.
    std::vector<std::string> adversaries;
    std::vector<std::string> placements;
    // Synth-only: the parsed work unit and the lowest recorded SAT cube
    // (groups when none yet) -- cubes above it are moot.
    synthesis::SynthJobSpec synth;
    std::uint64_t min_sat = 0;
    std::map<std::uint64_t, std::string> done;  // group -> framed line + '\n'
    std::unique_ptr<sim::AtomicAppender> done_file;
  };

  // Groups/cubes this job still needs recorded: all of them for sweeps, only
  // those at or below the winner candidate for synth jobs.
  static std::uint64_t required_groups(const Job& job);
  static std::uint64_t required_done(const Job& job);

  std::string spec_path(const std::string& name) const;
  std::string done_path(const Job& job) const;
  void load_job(const std::string& spec_file);
  static Job make_job(std::string name, util::Json spec_json);

  std::string dir_;
  std::map<std::string, Job> jobs_;        // by name
  std::vector<std::string> submit_order_;  // assignment fairness is FIFO
};

// A parsed synccount-synth-result file (results_text of a synth job): the
// deterministic cube-verdict prefix plus the winner, ready for clients to
// re-verify and compare against a local synthesize_portfolio run.
struct SynthResults {
  std::string job;
  synthesis::SynthJobSpec spec;
  struct CubeLine {
    std::uint64_t cube = 0;
    std::string verdict;  // "sat" | "unsat" | "unknown"
    int config = -1;
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t restarts = 0;
    std::string table_text;  // counting table text, non-empty iff sat
  };
  std::vector<CubeLine> cubes;     // cube order: 0..winner, or all when none
  bool found = false;
  std::uint64_t winning_cube = 0;  // valid when found
  std::string table_text;          // the winning cube's table, when found
};
SynthResults parse_synth_results(const std::string& text);

}  // namespace synccount::serve
