// Lease bookkeeping for the sweep service.
//
// A lease is the daemon's promise that one worker owns a contiguous run of
// cell-groups until a deadline; heartbeats (and completes -- progress is
// the best liveness signal) push the deadline out. The table is the ONLY
// in-memory state of the service: expiring a lease just makes its
// not-yet-completed groups assignable again, so a daemon restart -- which
// forgets every lease -- is indistinguishable from all leases expiring at
// once. Nothing here touches the disk.
//
// Every method takes the current steady_clock instant explicitly, so tests
// drive expiry deterministically instead of sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace synccount::serve {

struct Lease {
  std::uint64_t id = 0;
  std::string job;
  std::uint64_t group_begin = 0;
  std::uint64_t group_end = 0;
  std::string worker;
  std::chrono::steady_clock::time_point deadline;
};

class LeaseTable {
 public:
  using Clock = std::chrono::steady_clock;

  // Grants groups [begin, end) of `job` to `worker` until now + ttl;
  // returns the new lease id (monotonic, never reused within a daemon
  // lifetime).
  std::uint64_t grant(std::string job, std::uint64_t begin, std::uint64_t end,
                      std::string worker, Clock::time_point now,
                      std::chrono::milliseconds ttl);

  // Pushes the deadline to now + ttl; false when the lease is unknown
  // (expired and swept, or never granted) -- the holder must stop working
  // on it.
  bool renew(std::uint64_t id, Clock::time_point now, std::chrono::milliseconds ttl);

  // nullptr when unknown. The pointer is invalidated by any mutating call.
  const Lease* find(std::uint64_t id) const;

  // Drops a lease (the holder finished its range).
  void release(std::uint64_t id);

  // Removes and returns every lease whose deadline has passed; the caller
  // requeues their groups (i.e. does nothing: groups not recorded done
  // simply become assignable again).
  std::vector<Lease> sweep_expired(Clock::time_point now);

  // True when an unexpired lease covers (job, group) -- the group must not
  // be assigned again yet.
  bool held(const std::string& job, std::uint64_t group, Clock::time_point now) const;

  // Unexpired leases touching `job` (status reporting).
  std::uint64_t held_groups(const std::string& job, Clock::time_point now) const;

  std::size_t size() const noexcept { return leases_.size(); }

 private:
  std::vector<Lease> leases_;
  std::uint64_t next_id_ = 1;
};

}  // namespace synccount::serve
