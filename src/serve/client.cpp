#include "serve/client.hpp"

#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "counting/table_io.hpp"
#include "serve/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "synthesis/portfolio.hpp"
#include "util/check.hpp"
#include "util/fault_injector.hpp"
#include "util/socket.hpp"

namespace synccount::serve {

using util::Json;

Client::Client(std::string socket_path, util::BackoffPolicy policy, std::uint64_t seed)
    : socket_path_(std::move(socket_path)), policy_(policy), seed_(seed) {
  SC_CHECK(!socket_path_.empty(), "client needs a socket path");
}

Json Client::request(const Json& req) {
  const std::string line = req.dump();
  util::Backoff backoff(policy_, seed_);
  for (;;) {
    util::LineSocket conn = util::LineSocket::connect_unix(socket_path_, io_timeout_ms_);
    std::string resp_line;
    if (conn.valid() && conn.send_line(line, io_timeout_ms_) &&
        conn.recv_line(resp_line, io_timeout_ms_)) {
      Json resp = Json::parse(resp_line);
      check_response(resp);  // {"ok":false} throws the daemon's error
      return resp;
    }
    // Transport failure: daemon restarting, response lost, accept backlog.
    // The request is idempotent/dedupe-guarded, so retry it whole.
    if (!backoff.should_retry()) {
      throw std::runtime_error("service at " + socket_path_ + " unreachable after " +
                               std::to_string(backoff.attempt() + 1) + " attempt(s)");
    }
    backoff.sleep();
  }
}

namespace {

std::uint64_t worker_seed(const std::string& id) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a: distinct jitter per worker
  for (const char c : id) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  return h;
}

}  // namespace

std::uint64_t run_worker(const WorkerConfig& cfg) {
  util::FaultInjector& faults = util::FaultInjector::instance();
  const std::string id =
      cfg.worker_id.empty() ? "worker-" + std::to_string(::getpid()) : cfg.worker_id;
  Client client(cfg.socket_path, {}, worker_seed(id));
  sim::Engine engine(cfg.threads);
  std::uint64_t completed = 0;
  for (;;) {
    faults.probe("worker.lease");
    Json lease_req = make_request("lease");
    lease_req.set("worker", Json::string(id));
    if (cfg.max_groups > 0) lease_req.set("max_groups", Json::number(cfg.max_groups));
    const Json resp = client.request(lease_req);
    if (msg_bool(resp, "idle", false)) {
      const bool pending = msg_bool(resp, "pending", false);
      const bool draining = msg_bool(resp, "draining", false);
      // Settled-empty (nothing pending anywhere) or draining: a --once
      // worker is finished. pending=true means groups are under other
      // workers' leases -- wait; if their holder died, the lease expires
      // and the next poll picks the groups up.
      if (draining || (cfg.once && !pending)) return completed;
      std::this_thread::sleep_for(std::chrono::milliseconds(cfg.idle_wait_ms));
      continue;
    }
    const LeaseGrant grant = LeaseGrant::from_json(resp);
    const Json* kind = grant.spec.find("kind");
    if (kind != nullptr && kind->as_string() == "synth") {
      // Synth job: each leased group is one cube, solved by the canonical
      // priority scan -- the same deterministic protocol the local engine
      // uses to re-derive winners, so recorded verdict lines are
      // byte-identical no matter which worker (or how many) ran them.
      const synthesis::SynthJobSpec job = synthesis::SynthJobSpec::from_json(grant.spec);
      for (std::uint64_t g = grant.group_begin; g < grant.group_end; ++g) {
        if (g != grant.group_begin && !faults.should_drop("worker.heartbeat")) {
          Json hb = make_request("heartbeat");
          hb.set("lease", Json::number(grant.lease_id));
          if (!msg_bool(client.request(hb), "valid", false)) break;  // lease lost
        }
        faults.probe("worker.group");
        const synthesis::CubeResult r = synthesis::solve_cube(job, g);
        CubeCompleteRequest complete;
        complete.lease_id = grant.lease_id;
        complete.job = grant.job;
        complete.cube = g;
        complete.verdict = synthesis::to_string(r.verdict);
        complete.config = r.config_index;
        complete.conflicts = r.conflicts;
        complete.decisions = r.decisions;
        complete.restarts = r.restarts;
        if (r.verdict == synthesis::CubeVerdict::kSat) {
          complete.table = counting::table_to_string(r.table);
        }
        faults.probe("worker.complete");
        (void)client.request(complete.to_json());  // accepted=false: benign dup
        ++completed;
      }
      continue;
    }
    const sim::ExperimentSpec spec = sim::experiment_spec_from_json(grant.spec);
    std::vector<std::string> adversaries, placements;
    sim::grid_names(spec, adversaries, placements);
    for (std::uint64_t g = grant.group_begin; g < grant.group_end; ++g) {
      if (g != grant.group_begin && !faults.should_drop("worker.heartbeat")) {
        // Renew before each further group of a multi-group lease (the
        // grant itself covers the first). A muted heartbeat ("drop" fault)
        // lets the lease expire mid-range: the requeue path.
        Json hb = make_request("heartbeat");
        hb.set("lease", Json::number(grant.lease_id));
        if (!msg_bool(client.request(hb), "valid", false)) break;  // lease lost
      }
      faults.probe("worker.group");
      sim::ShardPlan plan;
      plan.shards = 1;
      plan.shard = 0;
      plan.group_begin = static_cast<std::size_t>(g);
      plan.group_end = static_cast<std::size_t>(g) + 1;
      const sim::ExperimentResult result = engine.run(spec, plan);
      const sim::ShardPartial partial = sim::make_partial(spec, plan, result);
      SC_REQUIRE(partial.groups.size() == 1 && partial.groups[0].group == g,
                 "single-group plan must yield exactly its global group");
      CompleteRequest complete;
      complete.lease_id = grant.lease_id;
      complete.job = grant.job;
      complete.group = g;
      complete.adversary = adversaries[g / placements.size()];
      complete.placement = placements[g % placements.size()];
      complete.aggregate = sim::aggregate_to_json(partial.groups[0].aggregate);
      faults.probe("worker.complete");
      (void)client.request(complete.to_json());  // accepted=false: benign dup
      ++completed;
    }
  }
}

}  // namespace synccount::serve
