#include "serve/daemon.hpp"

#include <algorithm>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "util/fault_injector.hpp"

namespace synccount::serve {

using util::Json;

Daemon::Daemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.state_dir),
      listener_(cfg_.socket_path),
      log_(cfg_.log != nullptr ? cfg_.log : &std::cerr) {
  SC_CHECK(cfg_.lease_ttl_ms > 0, "lease ttl must be positive");
  SC_CHECK(cfg_.lease_groups > 0, "lease_groups must be >= 1");
  const auto jobs = queue_.status();
  *log_ << "synccount_serve: listening on " << cfg_.socket_path << ", state in "
        << queue_.dir() << " (" << jobs.size() << " job(s), "
        << queue_.pending_groups() << " pending group(s))" << std::endl;
}

int Daemon::run() {
  while (!stop_) {
    // The chaos tests SIGKILL the daemon here via SYNCCOUNT_FAULTS
    // ("serve.tick=kill@N"): between requests, with arbitrary queue state.
    util::FaultInjector::instance().probe("serve.tick");
    util::LineSocket conn = listener_.accept_conn(/*timeout_ms=*/100);
    sweep_expired();
    if (!conn.valid()) continue;
    std::string line;
    if (!conn.recv_line(line, cfg_.io_timeout_ms)) continue;  // peer died/stalled
    Json response;
    try {
      response = handle(Json::parse(line));
    } catch (const std::exception& e) {
      response = error_response(e.what());
    }
    // A peer that vanished before the response is its own problem: every
    // request is idempotent or dedupe-guarded, so it just retries.
    (void)conn.send_line(response.dump(), cfg_.io_timeout_ms);
  }
  *log_ << "synccount_serve: shutdown (queue state remains in " << queue_.dir() << ")"
        << std::endl;
  return 0;
}

// The lease subsystem is wall-clock-driven by design: deadlines are real
// elapsed time, so a crashed worker's groups requeue without any cooperation
// from the corpse. Results stay deterministic regardless -- completes are
// deduped first-wins per (job, group), so *when* a lease expires can never
// change *what* bytes a job's results hold. This is the daemon's single
// clock read; every handler takes the instant from here.
LeaseTable::Clock::time_point Daemon::clock_now() {
  // synccount-lint: allow(nondet) -- lease deadlines are real time by design;
  // completes are (job, group)-deduped so timing never reaches result bytes.
  return LeaseTable::Clock::now();
}

void Daemon::sweep_expired() {
  for (const Lease& lease : leases_.sweep_expired(clock_now())) {
    *log_ << "synccount_serve: lease " << lease.id << " (" << lease.job << " groups ["
          << lease.group_begin << ", " << lease.group_end << "), worker "
          << lease.worker << ") expired -- requeued" << std::endl;
  }
}

Json Daemon::handle(const Json& request) {
  try {
    return dispatch(request);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

Json Daemon::dispatch(const Json& request) {
  SC_CHECK(request.type() == Json::Type::kObject, "request is not an object");
  const std::string& op = msg_string(request, "op");
  sweep_expired();
  if (op == "submit") return handle_submit(request);
  if (op == "lease") return handle_lease(request);
  if (op == "heartbeat") return handle_heartbeat(request);
  if (op == "complete") return handle_complete(request);
  if (op == "status") return handle_status(request);
  if (op == "results") return handle_results(request);
  if (op == "drain") {
    draining_ = true;
    return ok_response();
  }
  if (op == "shutdown") {
    stop_ = true;
    return ok_response();
  }
  throw std::invalid_argument("unknown op \"" + op + "\"");
}

Json Daemon::handle_submit(const Json& req) {
  const std::string& job = msg_string(req, "job");
  const JobQueue::SubmitOutcome outcome = queue_.submit(job, msg_field(req, "spec"));
  if (!outcome.existed) {
    *log_ << "synccount_serve: job " << job << " submitted (" << outcome.groups
          << " groups)" << std::endl;
  }
  Json resp = ok_response();
  resp.set("job", Json::string(job));
  resp.set("groups", Json::number(outcome.groups));
  resp.set("done", Json::number(outcome.done));
  resp.set("existed", Json::boolean(outcome.existed));
  return resp;
}

Json Daemon::handle_lease(const Json& req) {
  const std::string& worker = msg_string(req, "worker");
  const std::uint64_t max_groups =
      req.has("max_groups") ? msg_u64(req, "max_groups") : cfg_.lease_groups;
  const auto now = clock_now();
  JobQueue::Assignment assignment;
  const bool granted =
      !draining_ &&
      queue_.assign(std::min(max_groups, cfg_.lease_groups),
                    [&](const std::string& job, std::uint64_t group) {
                      return leases_.held(job, group, now);
                    },
                    assignment);
  if (!granted) {
    Json resp = ok_response();
    resp.set("idle", Json::boolean(true));
    resp.set("pending", Json::boolean(queue_.pending_groups() > 0));
    resp.set("draining", Json::boolean(draining_));
    return resp;
  }
  LeaseGrant grant;
  grant.job = assignment.job;
  grant.group_begin = assignment.group_begin;
  grant.group_end = assignment.group_end;
  grant.ttl_ms = cfg_.lease_ttl_ms;
  grant.spec = *assignment.spec;
  grant.lease_id =
      leases_.grant(assignment.job, assignment.group_begin, assignment.group_end,
                    worker, now, std::chrono::milliseconds(cfg_.lease_ttl_ms));
  return grant.to_json();
}

Json Daemon::handle_heartbeat(const Json& req) {
  const bool valid = leases_.renew(msg_u64(req, "lease"), clock_now(),
                                   std::chrono::milliseconds(cfg_.lease_ttl_ms));
  Json resp = ok_response();
  resp.set("valid", Json::boolean(valid));
  return resp;
}

Json Daemon::handle_complete(const Json& req) {
  // Record first, lease bookkeeping second: a complete from an expired (or
  // restart-forgotten) lease is still deterministic, durable progress --
  // discarding it would only buy recomputation. A "cube" field marks a
  // synth-job cube verdict; everything else is a sweep group.
  bool accepted = false;
  std::uint64_t lease_id = 0;
  std::uint64_t group = 0;
  if (req.has("cube")) {
    const CubeCompleteRequest complete = CubeCompleteRequest::from_json(req);
    accepted = queue_.record_cube(complete.job, complete.cube, complete.verdict,
                                  complete.config, complete.conflicts,
                                  complete.decisions, complete.restarts,
                                  complete.table);
    lease_id = complete.lease_id;
    group = complete.cube;
  } else {
    const CompleteRequest complete = CompleteRequest::from_json(req);
    accepted = queue_.record_done(complete.job, complete.group, complete.adversary,
                                  complete.placement, complete.aggregate);
    lease_id = complete.lease_id;
    group = complete.group;
  }
  const auto now = clock_now();
  if (const Lease* lease = leases_.find(lease_id)) {
    if (group + 1 >= lease->group_end) {
      leases_.release(lease_id);  // range finished
    } else {
      // Progress is the strongest liveness signal there is.
      leases_.renew(lease_id, now, std::chrono::milliseconds(cfg_.lease_ttl_ms));
    }
  }
  Json resp = ok_response();
  resp.set("accepted", Json::boolean(accepted));
  return resp;
}

Json Daemon::handle_status(const Json& req) {
  const auto now = clock_now();
  const Json* only = req.find("job");
  Json jobs = Json::array();
  for (const JobQueue::JobStatus& s : queue_.status()) {
    if (only != nullptr && s.name != only->as_string()) continue;
    Json j = Json::object();
    j.set("job", Json::string(s.name));
    j.set("kind", Json::string(s.kind));
    j.set("groups", Json::number(s.groups));
    j.set("done", Json::number(s.done));
    j.set("leased", Json::number(leases_.held_groups(s.name, now)));
    j.set("complete", Json::boolean(s.complete));
    jobs.push_back(std::move(j));
  }
  SC_CHECK(only == nullptr || jobs.size() == 1,
           "unknown job \"" + (only != nullptr ? only->as_string() : "") + "\"");
  Json resp = ok_response();
  resp.set("draining", Json::boolean(draining_));
  resp.set("jobs", std::move(jobs));
  return resp;
}

Json Daemon::handle_results(const Json& req) {
  Json resp = ok_response();
  resp.set("partial", Json::string(queue_.results_text(msg_string(req, "job"))));
  return resp;
}

}  // namespace synccount::serve
