#include "serve/protocol.hpp"

#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace synccount::serve {

using util::Json;

Json make_request(std::string op) {
  Json j = Json::object();
  j.set("op", Json::string(std::move(op)));
  j.set("v", Json::number(kProtocolVersion));
  return j;
}

Json ok_response() {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  return j;
}

Json error_response(const std::string& message) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  j.set("error", Json::string(message));
  return j;
}

bool check_response(const Json& resp) {
  SC_CHECK(resp.type() == Json::Type::kObject && resp.has("ok"),
           "malformed service response: " + resp.dump());
  if (resp.at("ok").as_bool()) return true;
  const Json* err = resp.find("error");
  throw std::invalid_argument("service error: " +
                              (err != nullptr ? err->as_string() : resp.dump()));
}

const std::string& msg_string(const Json& msg, std::string_view key) {
  const Json* v = msg.find(key);
  SC_CHECK(v != nullptr && v->type() == Json::Type::kString,
           "message needs a string \"" + std::string(key) + "\": " + msg.dump());
  return v->as_string();
}

std::uint64_t msg_u64(const Json& msg, std::string_view key) {
  const Json* v = msg.find(key);
  SC_CHECK(v != nullptr && v->type() == Json::Type::kNumber,
           "message needs a number \"" + std::string(key) + "\": " + msg.dump());
  return v->as_u64();
}

bool msg_bool(const Json& msg, std::string_view key, bool fallback) {
  const Json* v = msg.find(key);
  return v != nullptr ? v->as_bool() : fallback;
}

const Json& msg_field(const Json& msg, std::string_view key) {
  const Json* v = msg.find(key);
  SC_CHECK(v != nullptr, "message needs \"" + std::string(key) + "\": " + msg.dump());
  return *v;
}

// --- LeaseGrant ----------------------------------------------------------------

Json LeaseGrant::to_json() const {
  Json j = ok_response();
  j.set("job", Json::string(job));
  j.set("lease", Json::number(lease_id));
  j.set("group_begin", Json::number(group_begin));
  j.set("group_end", Json::number(group_end));
  j.set("ttl_ms", Json::number(ttl_ms));
  j.set("spec", spec);
  return j;
}

LeaseGrant LeaseGrant::from_json(const Json& j) {
  LeaseGrant g;
  g.job = msg_string(j, "job");
  g.lease_id = msg_u64(j, "lease");
  g.group_begin = msg_u64(j, "group_begin");
  g.group_end = msg_u64(j, "group_end");
  g.ttl_ms = msg_u64(j, "ttl_ms");
  g.spec = msg_field(j, "spec");
  SC_CHECK(g.group_begin < g.group_end, "empty lease range: " + j.dump());
  return g;
}

// --- CompleteRequest -------------------------------------------------------------

Json CompleteRequest::to_json() const {
  Json j = make_request("complete");
  j.set("lease", Json::number(lease_id));
  j.set("job", Json::string(job));
  j.set("group", Json::number(group));
  j.set("adversary", Json::string(adversary));
  j.set("placement", Json::string(placement));
  j.set("aggregate", aggregate);
  return j;
}

CompleteRequest CompleteRequest::from_json(const Json& j) {
  CompleteRequest c;
  c.lease_id = msg_u64(j, "lease");
  c.job = msg_string(j, "job");
  c.group = msg_u64(j, "group");
  c.adversary = msg_string(j, "adversary");
  c.placement = msg_string(j, "placement");
  c.aggregate = msg_field(j, "aggregate");
  return c;
}

// --- CubeCompleteRequest ---------------------------------------------------------

Json CubeCompleteRequest::to_json() const {
  Json j = make_request("complete");
  j.set("lease", Json::number(lease_id));
  j.set("job", Json::string(job));
  j.set("cube", Json::number(cube));
  j.set("verdict", Json::string(verdict));
  j.set("config", Json::number(static_cast<std::int64_t>(config)));
  j.set("conflicts", Json::number(conflicts));
  j.set("decisions", Json::number(decisions));
  j.set("restarts", Json::number(restarts));
  if (!table.empty()) j.set("table", Json::string(table));
  return j;
}

CubeCompleteRequest CubeCompleteRequest::from_json(const Json& j) {
  CubeCompleteRequest c;
  c.lease_id = msg_u64(j, "lease");
  c.job = msg_string(j, "job");
  c.cube = msg_u64(j, "cube");
  c.verdict = msg_string(j, "verdict");
  c.config = static_cast<int>(msg_field(j, "config").as_int());
  c.conflicts = msg_u64(j, "conflicts");
  c.decisions = msg_u64(j, "decisions");
  c.restarts = msg_u64(j, "restarts");
  if (const Json* t = j.find("table")) c.table = t->as_string();
  return c;
}

}  // namespace synccount::serve
