// The sweep-service daemon: one poll loop over a Unix listener, a durable
// JobQueue, and an in-memory LeaseTable.
//
// Failure model (what each crash costs):
//   worker SIGKILL'd      its lease expires (no heartbeats), the groups it
//                         never completed are requeued; completed groups
//                         are already durable in the queue
//   daemon SIGKILL'd      the socket vanishes (workers back off and retry),
//                         restart reloads the queue from the state dir;
//                         leases were in-memory, so every in-flight group
//                         is simply assignable again -- at worst the fleet
//                         recomputes groups whose completes were in flight,
//                         and the dedupe-by-(job, group) makes that benign
//   torn writes           impossible to observe: every durable mutation is
//                         write-to-temp + fsync + atomic rename
//
// handle() is the whole protocol brain and takes/returns parsed JSON, so
// unit tests drive submit/lease/heartbeat/complete/status/results/drain
// without sockets or subprocesses; run() adds the transport.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/lease.hpp"
#include "serve/queue.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace synccount::serve {

struct DaemonConfig {
  std::string socket_path;
  std::string state_dir;
  std::uint64_t lease_ttl_ms = 5000;  // heartbeat deadline
  std::uint64_t lease_groups = 1;     // max groups per lease
  int io_timeout_ms = 2000;           // per-connection read/write deadline
  std::ostream* log = nullptr;        // null = std::cerr
};

class Daemon {
 public:
  // Loads (or creates) the state directory and binds the socket; throws on
  // either failing.
  explicit Daemon(DaemonConfig cfg);

  // Serves until a shutdown request; returns the process exit code (0).
  int run();

  // Handles one parsed request; never throws (errors become
  // {"ok":false,"error":...}). Exposed for transport-free unit tests.
  util::Json handle(const util::Json& request);

  const JobQueue& queue() const noexcept { return queue_; }
  bool draining() const noexcept { return draining_; }
  bool stopped() const noexcept { return stop_; }

 private:
  util::Json dispatch(const util::Json& request);
  util::Json handle_submit(const util::Json& req);
  util::Json handle_lease(const util::Json& req);
  util::Json handle_heartbeat(const util::Json& req);
  util::Json handle_complete(const util::Json& req);
  util::Json handle_status(const util::Json& req);
  util::Json handle_results(const util::Json& req);
  void sweep_expired();
  static LeaseTable::Clock::time_point clock_now();

  DaemonConfig cfg_;
  JobQueue queue_;
  util::UnixListener listener_;
  LeaseTable leases_;
  std::ostream* log_;
  bool draining_ = false;
  bool stop_ = false;
};

}  // namespace synccount::serve
