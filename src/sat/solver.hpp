// A compact CDCL SAT solver: the substrate for the algorithm-synthesis
// pipeline (paper Section 1; the computer-designed counters of [4,5] were
// found with SAT solvers).
//
// Feature set: two-watched-literal propagation, first-UIP conflict analysis
// with recursive clause minimisation, VSIDS-style activity decision
// heuristic, phase saving, Luby restarts, and activity-based learned-clause
// deletion. External literals use the DIMACS convention: +v / -v, v >= 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace synccount::sat {

using Var = int;        // 1-based
using ExtLit = int;     // DIMACS: +v or -v

enum class Result {
  kSat,
  kUnsat,             // unsatisfiable regardless of assumptions
  kUnsatAssumptions,  // unsatisfiable under the given assumptions only
  kUnknown,           // conflict budget exhausted
  kCancelled,         // external stop flag raised mid-search
};

// Deterministic diversification knobs for portfolio search. Two solvers fed
// the same clauses in the same order with the same config take bit-identical
// search paths; varying the config yields genuinely different paths without
// any nondeterminism.
struct SolverConfig {
  enum class Phase : std::uint8_t {
    kFalse,   // classic MiniSat default: branch negative first
    kTrue,    // branch positive first
    kRandom,  // per-variable pseudo-random initial phase (hashed from seed)
  };
  std::uint64_t seed = 0;           // xorshift stream for tie-breaks & phases
  double random_branch_freq = 0.0;  // P(decision is a random heap pick)
  Phase initial_phase = Phase::kFalse;
  std::uint64_t restart_scale = 100;  // Luby multiplier (conflicts per unit)
  double decay = 0.95;                // VSIDS variable-activity decay
};

class Solver {
 public:
  Solver();
  explicit Solver(const SolverConfig& config);

  // Installs a diversification config. Must be called at decision level 0
  // (i.e. between solves); re-seeds the tie-break stream and re-applies the
  // initial-phase policy to every unassigned variable.
  void configure(const SolverConfig& config);
  const SolverConfig& config() const noexcept { return config_; }

  // Cooperative cancellation: when `stop` is non-null and becomes true, the
  // search returns kCancelled at the next conflict/decision boundary. The
  // pointer must outlive the solve call; pass nullptr to detach.
  void set_stop_flag(const std::atomic<bool>* stop) noexcept { stop_ = stop; }

  // Creates a fresh variable and returns its index (1-based).
  Var new_var();
  int num_vars() const noexcept { return static_cast<int>(num_vars_); }

  // Adds a clause over external literals. Referencing a variable beyond
  // num_vars() implicitly creates the missing variables. Adding the empty
  // clause makes the instance trivially unsatisfiable.
  void add_clause(const std::vector<ExtLit>& lits);
  void add_unit(ExtLit a) { add_clause({a}); }
  void add_binary(ExtLit a, ExtLit b) { add_clause({a, b}); }
  void add_ternary(ExtLit a, ExtLit b, ExtLit c) { add_clause({a, b, c}); }

  // Solves; `conflict_budget` bounds the search (kUnknown when exhausted;
  // 0 means unlimited).
  Result solve(std::uint64_t conflict_budget = 0);

  // Solves under assumptions (MiniSat-style): the literals are fixed for
  // this call only; learned clauses persist across calls, which makes
  // sweeping a family of related queries (e.g. increasing time bounds in
  // synthesis) much cheaper than re-encoding.
  Result solve_assuming(const std::vector<ExtLit>& assumptions,
                        std::uint64_t conflict_budget = 0);

  // Model access after kSat.
  bool value(Var v) const;

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
    std::uint64_t deleted = 0;
    std::size_t clauses = 0;  // problem clauses after top-level simplification
  };
  const Stats& stats() const noexcept { return stats_; }

  std::string stats_string() const;

 private:
  // Internal literal encoding: lit = 2*var + sign, var 0-based.
  using Lit = std::uint32_t;
  static constexpr Lit kLitUndef = ~Lit{0};
  static Lit mk_lit(std::uint32_t var, bool neg) { return 2 * var + (neg ? 1U : 0U); }
  static Lit neg(Lit l) { return l ^ 1U; }
  static std::uint32_t var_of(Lit l) { return l >> 1; }
  static bool sign_of(Lit l) { return (l & 1U) != 0; }

  enum class LBool : std::uint8_t { kTrue, kFalse, kUndef };
  LBool lit_value(Lit l) const {
    const LBool v = assigns_[var_of(l)];
    if (v == LBool::kUndef) return LBool::kUndef;
    return (v == LBool::kFalse) == sign_of(l) ? LBool::kTrue : LBool::kFalse;
  }

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learned = false;
    bool deleted = false;
  };
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kRefUndef = ~ClauseRef{0};

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  void ensure_var(std::uint32_t v0);
  bool initial_phase_of(std::uint32_t v0) const;
  std::uint64_t next_random();   // xorshift64 tie-break stream
  double next_random01();        // uniform in [0, 1)
  Lit to_internal(ExtLit e);
  void attach(ClauseRef cref);
  bool enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& learnt, int& backtrack_level);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(std::uint32_t v0);
  void bump_clause(Clause& c);
  void decay_activities();
  void reduce_db();
  static std::uint64_t luby(std::uint64_t i);

  int level_of(std::uint32_t v0) const { return level_[v0]; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  // State ------------------------------------------------------------------
  std::uint32_t num_vars_ = 0;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<LBool> assigns_;
  std::vector<bool> saved_phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  // Binary-heap order on activity.
  std::vector<std::uint32_t> heap_;
  std::vector<int> heap_pos_;
  void heap_insert(std::uint32_t v0);
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  std::uint32_t heap_pop();

  bool ok_ = true;  // false once an empty clause exists at level 0
  Stats stats_;

  SolverConfig config_;
  double var_decay_inc_ = 1.0 / 0.95;  // derived from config_.decay
  std::uint64_t rng_state_ = 0x9E3779B97F4A7C15ULL;  // xorshift64 state (non-zero)
  const std::atomic<bool>* stop_ = nullptr;

  // Temporary buffers for analyze().
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;
};

}  // namespace synccount::sat
