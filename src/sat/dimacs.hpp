// DIMACS CNF import/export, so synthesis instances can be inspected with or
// cross-checked against external solvers.
#pragma once

#include <iosfwd>
#include <vector>

#include "sat/solver.hpp"

namespace synccount::sat {

struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<ExtLit>> clauses;

  void add(std::vector<ExtLit> lits);
  void load_into(Solver& solver) const;
};

// Parses DIMACS text ("p cnf V C" header, clauses terminated by 0, comment
// lines starting with 'c'). Throws std::invalid_argument on malformed input.
Cnf parse_dimacs(std::istream& in);

void write_dimacs(const Cnf& cnf, std::ostream& out);

}  // namespace synccount::sat
