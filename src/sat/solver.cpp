#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace synccount::sat {

namespace {
constexpr double kClaDecay = 1.0 / 0.999;
constexpr double kRescaleLimit = 1e100;
}  // namespace

Solver::Solver() = default;

Solver::Solver(const SolverConfig& config) { configure(config); }

void Solver::configure(const SolverConfig& config) {
  SC_REQUIRE(decision_level() == 0, "configure() only at the top level");
  SC_CHECK(config.decay > 0.0 && config.decay <= 1.0, "decay must be in (0, 1]");
  SC_CHECK(config.restart_scale >= 1, "restart_scale must be >= 1");
  SC_CHECK(config.random_branch_freq >= 0.0 && config.random_branch_freq <= 1.0,
           "random_branch_freq must be in [0, 1]");
  config_ = config;
  var_decay_inc_ = 1.0 / config.decay;
  std::uint64_t s = config.seed;
  rng_state_ = util::splitmix64(s) | 1;  // xorshift needs a non-zero state
  for (std::uint32_t v0 = 0; v0 < num_vars_; ++v0) {
    if (assigns_[v0] == LBool::kUndef) saved_phase_[v0] = initial_phase_of(v0);
  }
}

bool Solver::initial_phase_of(std::uint32_t v0) const {
  switch (config_.initial_phase) {
    case SolverConfig::Phase::kFalse: return false;
    case SolverConfig::Phase::kTrue: return true;
    case SolverConfig::Phase::kRandom: {
      // Hash (seed, var) so the phase is independent of creation order.
      std::uint64_t h = util::hash_combine(config_.seed, v0);
      return (util::splitmix64(h) & 1U) != 0;
    }
  }
  return false;
}

std::uint64_t Solver::next_random() {
  std::uint64_t x = rng_state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  rng_state_ = x;
  return x;
}

double Solver::next_random01() {
  return static_cast<double>(next_random() >> 11) * 0x1.0p-53;
}

Var Solver::new_var() {
  ensure_var(num_vars_);
  return static_cast<Var>(num_vars_);
}

void Solver::ensure_var(std::uint32_t v0) {
  while (num_vars_ <= v0) {
    assigns_.push_back(LBool::kUndef);
    saved_phase_.push_back(initial_phase_of(num_vars_));
    level_.push_back(0);
    reason_.push_back(kRefUndef);
    activity_.push_back(0.0);
    seen_.push_back(false);
    heap_pos_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(num_vars_);
    ++num_vars_;
  }
}

Solver::Lit Solver::to_internal(ExtLit e) {
  SC_CHECK(e != 0, "literal 0 is not allowed");
  const auto v = static_cast<std::uint32_t>(e > 0 ? e : -e) - 1;
  ensure_var(v);
  return mk_lit(v, e < 0);
}

void Solver::attach(ClauseRef cref) {
  const Clause& c = clauses_[cref];
  SC_ASSERT(c.lits.size() >= 2);
  watches_[neg(c.lits[0])].push_back({cref, c.lits[1]});
  watches_[neg(c.lits[1])].push_back({cref, c.lits[0]});
}

void Solver::add_clause(const std::vector<ExtLit>& ext) {
  SC_REQUIRE(decision_level() == 0, "clauses may only be added at the top level");
  if (!ok_) return;
  std::vector<Lit> lits;
  lits.reserve(ext.size());
  for (ExtLit e : ext) lits.push_back(to_internal(e));
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());

  // Simplify against the top-level assignment; detect tautologies.
  std::vector<Lit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i + 1] == neg(lits[i])) return;  // tautology
    const LBool v = lit_value(lits[i]);
    if (v == LBool::kTrue) return;  // already satisfied
    if (v == LBool::kUndef) out.push_back(lits[i]);
  }
  if (out.empty()) {
    ok_ = false;
    return;
  }
  if (out.size() == 1) {
    if (!enqueue(out[0], kRefUndef)) ok_ = false;
    return;
  }
  clauses_.push_back(Clause{std::move(out), 0.0, false, false});
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  ++stats_.clauses;
}

bool Solver::enqueue(Lit l, ClauseRef reason) {
  const LBool v = lit_value(l);
  if (v == LBool::kTrue) return true;
  if (v == LBool::kFalse) return false;
  const auto v0 = var_of(l);
  assigns_[v0] = sign_of(l) ? LBool::kFalse : LBool::kTrue;
  level_[v0] = decision_level();
  reason_[v0] = reason;
  trail_.push_back(l);
  return true;
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef confl = kRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    // Clauses watching ~p (which just became false) live in watches_[p]
    // (attach() indexes watcher lists by the negation of the watched lit).
    auto& ws = watches_[p];
    std::size_t i = 0, j = 0;
    const Lit false_lit = neg(p);
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (lit_value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[w.cref];
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      SC_ASSERT(c.lits[1] == false_lit);
      ++i;
      const Lit first = c.lits[0];
      if (lit_value(first) == LBool::kTrue) {
        ws[j++] = {w.cref, first};
        continue;
      }
      bool found = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (lit_value(c.lits[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[neg(c.lits[1])].push_back({w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;  // moved to another watch list
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = {w.cref, first};
      if (lit_value(first) == LBool::kFalse) {
        confl = w.cref;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        enqueue(first, w.cref);
      }
    }
    ws.resize(j);
    if (confl != kRefUndef) break;
  }
  return confl;
}

void Solver::bump_var(std::uint32_t v0) {
  activity_[v0] += var_inc_;
  if (activity_[v0] > kRescaleLimit) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v0] >= 0) heap_percolate_up(heap_pos_[v0]);
}

void Solver::bump_clause(Clause& c) {
  c.activity += cla_inc_;
  if (c.activity > kRescaleLimit) {
    for (auto& cl : clauses_) {
      if (cl.learned) cl.activity *= 1e-100;
    }
    cla_inc_ *= 1e-100;
  }
}

void Solver::decay_activities() {
  var_inc_ *= var_decay_inc_;
  cla_inc_ *= kClaDecay;
}

// --- Activity heap ----------------------------------------------------------

void Solver::heap_insert(std::uint32_t v0) {
  heap_pos_[v0] = static_cast<int>(heap_.size());
  heap_.push_back(v0);
  heap_percolate_up(heap_pos_[v0]);
}

void Solver::heap_percolate_up(int i) {
  const std::uint32_t v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[static_cast<std::size_t>(parent)]] >= activity_[v]) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
    heap_pos_[heap_[static_cast<std::size_t>(i)]] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[v] = i;
}

void Solver::heap_percolate_down(int i) {
  const std::uint32_t v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[static_cast<std::size_t>(child + 1)]] >
            activity_[heap_[static_cast<std::size_t>(child)]]) {
      ++child;
    }
    if (activity_[heap_[static_cast<std::size_t>(child)]] <= activity_[v]) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
    heap_pos_[heap_[static_cast<std::size_t>(i)]] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[v] = i;
}

std::uint32_t Solver::heap_pop() {
  const std::uint32_t top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_percolate_down(0);
  }
  return top;
}

Solver::Lit Solver::pick_branch() {
  // Seeded random tie-break: occasionally branch on a uniform heap pick
  // instead of the activity maximum. Deterministic for a fixed config.
  if (config_.random_branch_freq > 0.0 && !heap_.empty() &&
      next_random01() < config_.random_branch_freq) {
    const std::uint32_t v0 =
        heap_[static_cast<std::size_t>(next_random() % heap_.size())];
    if (assigns_[v0] == LBool::kUndef) {
      return mk_lit(v0, !saved_phase_[v0]);
    }
  }
  while (!heap_.empty()) {
    const std::uint32_t v0 = heap_pop();
    if (assigns_[v0] == LBool::kUndef) {
      return mk_lit(v0, !saved_phase_[v0]);
    }
  }
  return kLitUndef;
}

// --- Conflict analysis ------------------------------------------------------

void Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt, int& backtrack_level) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting (UIP) literal
  int path_count = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();

  ClauseRef cr = confl;
  do {
    SC_ASSERT(cr != kRefUndef);
    Clause& c = clauses_[cr];
    if (c.learned) bump_clause(c);
    for (std::size_t k = (p == kLitUndef ? 0 : 1); k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const auto v = var_of(q);
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = true;
        bump_var(v);
        if (level_[v] >= decision_level()) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      }
    }
    while (!seen_[var_of(trail_[--index])]) {}
    p = trail_[index];
    cr = reason_[var_of(p)];
    seen_[var_of(p)] = false;
    --path_count;
  } while (path_count > 0);
  learnt[0] = neg(p);

  // Conflict-clause minimisation: drop literals implied by the rest.
  analyze_clear_.assign(learnt.begin(), learnt.end());
  std::uint32_t abstract = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract |= 1U << (level_[var_of(learnt[i])] & 31);
  }
  std::size_t out = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[var_of(learnt[i])] == kRefUndef || !lit_redundant(learnt[i], abstract)) {
      learnt[out++] = learnt[i];
    }
  }
  learnt.resize(out);

  for (const Lit l : analyze_clear_) seen_[var_of(l)] = false;
  analyze_clear_.clear();

  if (learnt.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[var_of(learnt[i])] > level_[var_of(learnt[max_i])]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[var_of(learnt[1])];
  }
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef cr = reason_[var_of(q)];
    SC_ASSERT(cr != kRefUndef);
    const Clause& c = clauses_[cr];
    for (std::size_t k = 1; k < c.lits.size(); ++k) {
      const Lit r = c.lits[k];
      const auto v = var_of(r);
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] != kRefUndef && ((1U << (level_[v] & 31)) & abstract_levels) != 0) {
        seen_[v] = true;
        analyze_stack_.push_back(r);
        analyze_clear_.push_back(r);
      } else {
        for (std::size_t j = top; j < analyze_clear_.size(); ++j) {
          seen_[var_of(analyze_clear_[j])] = false;
        }
        analyze_clear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::backtrack(int level) {
  if (decision_level() <= level) return;
  for (std::size_t i = trail_.size(); i-- > trail_lim_[static_cast<std::size_t>(level)];) {
    const auto v0 = var_of(trail_[i]);
    saved_phase_[v0] = assigns_[v0] == LBool::kTrue;
    assigns_[v0] = LBool::kUndef;
    reason_[v0] = kRefUndef;
    if (heap_pos_[v0] < 0) heap_insert(v0);
  }
  trail_.resize(trail_lim_[static_cast<std::size_t>(level)]);
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
}

// --- Learned-clause reduction ------------------------------------------------

void Solver::reduce_db() {
  std::vector<ClauseRef> learned;
  for (ClauseRef cr = 0; cr < clauses_.size(); ++cr) {
    Clause& c = clauses_[cr];
    if (!c.learned || c.deleted || c.lits.size() <= 2) continue;
    // Locked clauses (currently a reason) must survive.
    const auto v0 = var_of(c.lits[0]);
    if (assigns_[v0] != LBool::kUndef && reason_[v0] == cr) continue;
    learned.push_back(cr);
  }
  std::sort(learned.begin(), learned.end(), [&](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  const std::size_t kill = learned.size() / 2;
  for (std::size_t i = 0; i < kill; ++i) {
    clauses_[learned[i]].deleted = true;
    ++stats_.deleted;
  }
  // Rebuild the watch lists without the deleted clauses.
  for (auto& w : watches_) w.clear();
  for (ClauseRef cr = 0; cr < clauses_.size(); ++cr) {
    if (!clauses_[cr].deleted) attach(cr);
  }
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // MiniSat's Luby sequence; i is 0-based.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return std::uint64_t{1} << seq;
}

Result Solver::solve(std::uint64_t conflict_budget) {
  return solve_assuming({}, conflict_budget);
}

Result Solver::solve_assuming(const std::vector<ExtLit>& assumptions,
                              std::uint64_t conflict_budget) {
  if (!ok_) return Result::kUnsat;
  // A previous solve_assuming() may have returned kSat mid-tree so that the
  // model stayed readable; start this call from a clean level 0.
  backtrack(0);
  std::vector<Lit> assumps;
  assumps.reserve(assumptions.size());
  for (ExtLit e : assumptions) assumps.push_back(to_internal(e));

  if (propagate() != kRefUndef) {
    ok_ = false;
    return Result::kUnsat;
  }

  std::uint64_t max_learned = stats_.clauses / 3 + 2000;
  std::uint64_t restart_round = 0;
  std::vector<Lit> learnt;

  const auto finish = [this](Result r) {
    backtrack(0);
    return r;
  };

  for (;;) {
    const std::uint64_t restart_limit = config_.restart_scale * luby(restart_round++);
    std::uint64_t conflicts_here = 0;
    for (;;) {
      if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
        return finish(Result::kCancelled);
      }
      const ClauseRef confl = propagate();
      if (confl != kRefUndef) {
        ++stats_.conflicts;
        ++conflicts_here;
        if (decision_level() == 0) {
          ok_ = false;
          return Result::kUnsat;
        }
        if (decision_level() <= static_cast<int>(assumps.size())) {
          // The conflict depends on the assumptions only: unsatisfiable
          // under them (but possibly satisfiable without).
          return finish(Result::kUnsatAssumptions);
        }
        int bt = 0;
        analyze(confl, learnt, bt);
        // Never undo assumption levels; the decision loop re-checks them.
        backtrack(std::max(bt, 0));
        if (learnt.size() == 1) {
          const bool okq = enqueue(learnt[0], kRefUndef);
          SC_REQUIRE(okq, "asserting unit conflicts at level 0");
        } else {
          clauses_.push_back(Clause{learnt, cla_inc_, true, false});
          const auto cref = static_cast<ClauseRef>(clauses_.size() - 1);
          attach(cref);
          ++stats_.learned;
          const bool okq = enqueue(learnt[0], cref);
          SC_REQUIRE(okq, "asserting literal not propagatable");
        }
        decay_activities();
        if (conflict_budget != 0 && stats_.conflicts >= conflict_budget) {
          return finish(Result::kUnknown);
        }
      } else {
        if (conflicts_here >= restart_limit) {
          backtrack(0);
          ++stats_.restarts;
          break;  // restart
        }
        if (stats_.learned - stats_.deleted > max_learned) {
          reduce_db();
          max_learned = max_learned + max_learned / 10;
        }
        // Re-assert pending assumptions as decisions (or dummy levels when
        // they are already implied).
        Lit next = kLitUndef;
        while (decision_level() < static_cast<int>(assumps.size())) {
          const Lit p = assumps[static_cast<std::size_t>(decision_level())];
          if (lit_value(p) == LBool::kTrue) {
            trail_lim_.push_back(trail_.size());  // dummy level
          } else if (lit_value(p) == LBool::kFalse) {
            return finish(Result::kUnsatAssumptions);
          } else {
            next = p;
            break;
          }
        }
        if (next == kLitUndef) next = pick_branch();
        if (next == kLitUndef) {
          // Full model found. Report, then clean up the assumption levels.
          // (value() reads assigns_, which we must keep; so extract first.)
          return Result::kSat;
        }
        ++stats_.decisions;
        trail_lim_.push_back(trail_.size());
        enqueue(next, kRefUndef);
      }
    }
  }
}

bool Solver::value(Var v) const {
  SC_CHECK(v >= 1 && static_cast<std::uint32_t>(v) <= num_vars_, "variable out of range");
  return assigns_[static_cast<std::uint32_t>(v) - 1] == LBool::kTrue;
}

std::string Solver::stats_string() const {
  std::ostringstream os;
  os << "vars=" << num_vars_ << " clauses=" << stats_.clauses
     << " conflicts=" << stats_.conflicts << " decisions=" << stats_.decisions
     << " propagations=" << stats_.propagations << " restarts=" << stats_.restarts
     << " learned=" << stats_.learned << " deleted=" << stats_.deleted;
  return os.str();
}

}  // namespace synccount::sat
