#include "sat/dimacs.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace synccount::sat {

void Cnf::add(std::vector<ExtLit> lits) {
  for (ExtLit l : lits) {
    SC_CHECK(l != 0, "literal 0 is not allowed");
    num_vars = std::max(num_vars, std::abs(l));
  }
  clauses.push_back(std::move(lits));
}

void Cnf::load_into(Solver& solver) const {
  while (solver.num_vars() < num_vars) solver.new_var();
  for (const auto& c : clauses) solver.add_clause(c);
}

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  std::string line;
  bool header_seen = false;
  std::vector<ExtLit> current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream hs(line);
      std::string p, fmt;
      int vars = 0, clauses = 0;
      hs >> p >> fmt >> vars >> clauses;
      SC_CHECK(fmt == "cnf", "unsupported DIMACS format: " + fmt);
      cnf.num_vars = vars;
      header_seen = true;
      continue;
    }
    std::istringstream ls(line);
    ExtLit lit = 0;
    while (ls >> lit) {
      if (lit == 0) {
        cnf.add(current);
        current.clear();
      } else {
        current.push_back(lit);
      }
    }
  }
  SC_CHECK(header_seen, "missing DIMACS header");
  SC_CHECK(current.empty(), "unterminated clause at end of input");
  return cnf;
}

void write_dimacs(const Cnf& cnf, std::ostream& out) {
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& c : cnf.clauses) {
    for (ExtLit l : c) out << l << ' ';
    out << "0\n";
  }
}

}  // namespace synccount::sat
