#include "synthesis/game_adversary.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace synccount::synthesis {

OptimalAdversary::OptimalAdversary(counting::AlgorithmPtr algo) : algo_(std::move(algo)) {
  SC_CHECK(algo_ != nullptr, "no algorithm");
  analysis_ = analyze_game(*algo_);
  SC_CHECK(analysis_.result.ok,
           "OptimalAdversary requires a verified counter: " + analysis_.result.failure);
  plan_.resize(static_cast<std::size_t>(algo_->num_nodes()), 0);
}

const FaultSetGame* OptimalAdversary::find_game(
    std::span<const counting::NodeId> faulty_ids) const {
  for (const auto& game : analysis_.games) {
    if (game.faulty.size() == faulty_ids.size() &&
        std::equal(game.faulty.begin(), game.faulty.end(), faulty_ids.begin())) {
      return &game;
    }
  }
  return nullptr;
}

std::uint64_t OptimalAdversary::config_of(const FaultSetGame& game,
                                          std::span<const sim::State> states) const {
  std::vector<std::uint64_t> cfg(game.correct.size());
  for (std::size_t p = 0; p < game.correct.size(); ++p) {
    cfg[p] = algo_->state_to_index(states[static_cast<std::size_t>(game.correct[p])]);
  }
  return game.config_index(cfg, analysis_.num_states);
}

void OptimalAdversary::begin_round(std::uint64_t /*round*/,
                                   std::span<const sim::State> true_states,
                                   const counting::CountingAlgorithm& /*algo*/,
                                   std::span<const counting::NodeId> faulty_ids,
                                   util::Rng& /*rng*/) {
  current_game_ = find_game(faulty_ids);
  if (current_game_ == nullptr) return;  // unknown faulty set: fall back in message()
  const FaultSetGame& game = *current_game_;
  const std::uint64_t e = config_of(game, true_states);
  const auto P = game.correct.size();

  // Choose the successor maximising the remaining distance (0 for good
  // configurations): odometer over the per-position choice lists.
  std::vector<std::size_t> pos(P, 0);
  std::vector<std::size_t> best_pos(P, 0);
  std::uint64_t best_score = 0;
  bool first = true;
  for (;;) {
    std::uint64_t d = 0;
    std::uint64_t mult = 1;
    for (std::size_t p = 0; p < P; ++p) {
      const auto& ch = game.choices[e * P + p];
      d += ch[pos[p]].state * mult;
      mult *= analysis_.num_states;
    }
    const std::uint64_t score = game.good[d] ? 0 : game.dist[d];
    if (first || score > best_score) {
      best_score = score;
      best_pos = pos;
      first = false;
    }
    std::size_t p = 0;
    while (p < P) {
      if (++pos[p] < game.choices[e * P + p].size()) break;
      pos[p] = 0;
      ++p;
    }
    if (p == P) break;
  }

  for (std::size_t p = 0; p < P; ++p) {
    plan_[static_cast<std::size_t>(game.correct[p])] =
        game.choices[e * P + p][best_pos[p]].byz;
  }
}

sim::State OptimalAdversary::message(std::uint64_t /*round*/, counting::NodeId sender,
                                     counting::NodeId receiver,
                                     std::span<const sim::State> true_states,
                                     const counting::CountingAlgorithm& /*algo*/,
                                     util::Rng& /*rng*/) {
  if (current_game_ == nullptr) {
    return true_states[static_cast<std::size_t>(sender)];  // benign fallback
  }
  const FaultSetGame& game = *current_game_;
  // Decode the planned byz assignment of this receiver: base-|X| digits in
  // the order of game.faulty.
  const auto it = std::find(game.faulty.begin(), game.faulty.end(), sender);
  if (it == game.faulty.end()) return true_states[static_cast<std::size_t>(sender)];
  const auto q = static_cast<std::size_t>(it - game.faulty.begin());
  std::uint32_t bz = plan_[static_cast<std::size_t>(receiver)];
  for (std::size_t i = 0; i < q; ++i) bz /= static_cast<std::uint32_t>(analysis_.num_states);
  const std::uint64_t value = bz % analysis_.num_states;
  return algo_->state_from_index(value);
}

std::uint64_t OptimalAdversary::certified_distance(
    std::span<const counting::NodeId> faulty_ids,
    std::span<const sim::State> all_states) const {
  const FaultSetGame* game = find_game(faulty_ids);
  SC_CHECK(game != nullptr, "no analysis for this faulty set");
  const std::uint64_t e = config_of(*game, all_states);
  return game->good[e] ? 0 : game->dist[e];
}

}  // namespace synccount::synthesis
