// Synthesis driver: sweeps the admissible stabilisation-time bound R upward,
// encodes each instance, solves it with the CDCL solver, decodes the first
// model into a transition table and certifies it with the exact verifier
// (defence in depth: the verifier recomputes the worst-case time).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "counting/table_algorithm.hpp"
#include "synthesis/encoder.hpp"
#include "synthesis/verifier.hpp"

namespace synccount::synthesis {

struct SynthesisOptions {
  int min_time = 1;                     // first R to try
  int max_time = 16;                    // last R to try
  std::uint64_t conflict_budget = 0;    // per solve() call; 0 = unlimited
};

// Per-R solver effort: one entry per attempted time bound, with the solver
// stat deltas attributable to that attempt (not cumulative totals).
struct AttemptStats {
  int time_bound = 0;             // the R this attempt targeted
  std::string result;             // "sat" | "unsat" | "unsat-assumptions" |
                                  // "unknown" | "cancelled"
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
};

struct SynthesisOutcome {
  bool found = false;
  bool budget_exhausted = false;              // some solve() returned kUnknown
  counting::TransitionTable table;            // valid when found
  int time_bound_used = 0;                    // R of the successful encoding
  std::uint64_t exact_time = 0;               // verifier-certified T(A)
  std::vector<AttemptStats> attempts;         // one entry per R attempted
  std::uint64_t total_conflicts = 0;          // sum over attempts
  Encoder::SizeInfo last_size;                // of the last encoding tried
  std::string note;

  // One line per attempt plus a totals line; stable format for logs/tests.
  std::string stats_string() const;
};

// Synthesises a counter for the given spec (the spec's max_time is ignored;
// the options' sweep is used instead). Returns found = false with
// budget_exhausted = false when every R in the sweep is UNSAT -- a proof
// that no such algorithm exists within the state budget and time sweep.
SynthesisOutcome synthesize(SynthesisSpec spec, const SynthesisOptions& options);

// Same contract, but encodes once at max_time and sweeps the admissible
// stabilisation time via assumption literals (Encoder::rank_exceeds_var):
// learned clauses persist across the sweep, which typically beats the
// re-encoding loop by a wide margin on the UNSAT prefix of the sweep.
SynthesisOutcome synthesize_incremental(SynthesisSpec spec, const SynthesisOptions& options);

// The computer-designed building block of [5]: a 1-resilient 2-counter for
// n = 4 nodes with 3 states (cyclic symmetry) and exact worst-case
// stabilisation time 6. Discovered once by this pipeline (re-synthesis takes
// CPU-seconds; see bench_synthesis), embedded as source and re-certified by
// the exact verifier on first use.
counting::AlgorithmPtr computer_designed_4_1();

}  // namespace synccount::synthesis
