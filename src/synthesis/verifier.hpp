// Exact verification of small synchronous counting algorithms by solving the
// adversarial reachability game of Section 2 explicitly.
//
// A configuration is the projection π_F(x): the states of the correct nodes
// for a fixed faulty set F. Configuration d is reachable from e if for every
// correct node i there is a full received vector x agreeing with e outside F
// such that g(i, x) = d_i -- the Byzantine nodes choose the F-entries per
// receiver, so the successor set is the product of per-node candidate sets.
//
// The algorithm is a synchronous c-counter with resilience f iff for every
// faulty set |F| <= f:
//   (1) the *good set* G -- the greatest set of configurations with agreeing
//       outputs that is closed under reachability with outputs incrementing
//       by 1 (mod c) -- absorbs every adversarial path, i.e.
//   (2) the configuration graph restricted to the complement of G is acyclic.
// The exact worst-case stabilisation time T(A) is the longest path in that
// complement DAG, maximised over faulty sets.
//
// Besides the verdict, the full game analysis (good sets, distances and the
// Byzantine choices realising each transition) is exposed so that the
// OptimalAdversary can *play* the worst case in the simulator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "counting/algorithm.hpp"

namespace synccount::synthesis {

struct VerifyResult {
  bool ok = false;
  std::string failure;                  // human-readable reason when !ok
  std::uint64_t worst_case_time = 0;    // exact T(A) when ok
  std::uint64_t configurations = 0;     // total configurations explored
  std::uint64_t transitions = 0;        // total transition-function evaluations

  // Worst-case time per faulty set size (index = |F|), for diagnostics.
  std::vector<std::uint64_t> time_by_fault_count;
};

// The solved game for one faulty set.
struct FaultSetGame {
  std::vector<int> faulty;   // node ids, ascending
  std::vector<int> correct;  // node ids, ascending
  std::uint64_t num_configs = 0;

  // A Byzantine option for one correct node: sending the faulty nodes'
  // values encoded by `byz` (base-|X| digits, one per entry of `faulty`)
  // makes the node transition into `state`.
  struct Choice {
    std::uint8_t state;
    std::uint32_t byz;
  };
  // choices[e * P + p]: the distinct reachable next states of correct node
  // position p from configuration e, each with one realising byz assignment.
  std::vector<std::vector<Choice>> choices;

  std::vector<char> good;            // per configuration: in the good set?
  std::vector<std::uint64_t> dist;   // rounds the adversary can keep the
                                     // system outside G (0 for good configs)

  // Configuration index of the given per-position state indices.
  std::uint64_t config_index(std::span<const std::uint64_t> states,
                             std::uint64_t num_states) const;
};

// A witness of non-stabilisation: a configuration cycle outside the good
// set. The adversary can loop it arbitrarily long (and, because the cycle is
// outside the greatest good set, eventually steer into an output violation),
// so no uniform stabilisation time exists.
struct Counterexample {
  std::vector<int> faulty;             // the faulty set of the game
  std::vector<std::uint64_t> path;     // configs leading into the cycle
  std::vector<std::uint64_t> cycle;    // the cycle (first config repeats after last)
};

struct GameAnalysis {
  VerifyResult result;
  std::uint64_t num_states = 0;
  std::vector<FaultSetGame> games;  // one per faulty set (all |F| <= f)
  std::optional<Counterexample> counterexample;  // set when !result.ok
};

// Independently re-checks a counterexample against the algorithm: every
// consecutive configuration pair (including the wrap-around of the cycle)
// must be adversary-reachable. Used by tests; returns false with no side
// effects if the witness does not replay.
bool counterexample_replays(const counting::CountingAlgorithm& algo,
                            const Counterexample& cex);

// Full analysis; `result.ok == false` means the algorithm is not a counter
// (the offending faulty set is reported in `result.failure`; `games` holds
// the sets analysed up to that point).
GameAnalysis analyze_game(const counting::CountingAlgorithm& algo);

// Verdict-only wrapper.
// Complexity: O(#faulty-sets * |X|^(n-|F|) * |X|^|F| * n) transition calls
// plus the successor-product walks; intended for n <= ~7 and |X| <= ~4.
VerifyResult verify(const counting::CountingAlgorithm& algo);

}  // namespace synccount::synthesis
