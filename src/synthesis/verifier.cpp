#include "synthesis/verifier.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::synthesis {

namespace {

using counting::CountingAlgorithm;
using counting::State;

// Enumerate all subsets of [n] with at most f elements, smallest first.
std::vector<std::vector<int>> fault_sets(int n, int f) {
  std::vector<std::vector<int>> sets;
  const std::uint32_t limit = 1U << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    if (std::popcount(mask) > f) continue;
    std::vector<int> s;
    for (int i = 0; i < n; ++i) {
      if (mask & (1U << i)) s.push_back(i);
    }
    sets.push_back(std::move(s));
  }
  return sets;
}

// Solves the stabilisation game for one faulty set; returns false (with a
// failure string) if the adversary can avoid the good set forever.
bool solve_fault_set(const CountingAlgorithm& algo, const std::vector<int>& faulty,
                     const std::vector<State>& states,
                     const std::vector<std::vector<std::uint64_t>>& out, FaultSetGame& game,
                     VerifyResult& result, std::uint64_t& worst_time,
                     std::optional<Counterexample>& counterexample) {
  const int n = algo.num_nodes();
  const auto S = static_cast<std::uint64_t>(states.size());
  const std::uint64_t c = algo.modulus();

  game.faulty = faulty;
  game.correct.clear();
  for (int i = 0; i < n; ++i) {
    if (std::find(faulty.begin(), faulty.end(), i) == faulty.end()) game.correct.push_back(i);
  }
  const int P = static_cast<int>(game.correct.size());
  game.num_configs = util::ipow(S, static_cast<unsigned>(P));
  const std::uint64_t num_byz = util::ipow(S, static_cast<unsigned>(faulty.size()));
  result.configurations += game.num_configs;

  game.choices.assign(game.num_configs * static_cast<std::uint64_t>(P), {});
  std::vector<std::uint64_t> out0(game.num_configs);

  std::vector<State> received(static_cast<std::size_t>(n));
  counting::TransitionContext ctx{nullptr};

  for (std::uint64_t e = 0; e < game.num_configs; ++e) {
    std::uint64_t rem = e;
    std::vector<std::uint64_t> cfg(static_cast<std::size_t>(P));
    for (int p = 0; p < P; ++p) {
      cfg[static_cast<std::size_t>(p)] = rem % S;
      rem /= S;
      received[static_cast<std::size_t>(game.correct[static_cast<std::size_t>(p)])] =
          states[static_cast<std::size_t>(cfg[static_cast<std::size_t>(p)])];
    }
    out0[e] = out[static_cast<std::size_t>(game.correct[0])][static_cast<std::size_t>(cfg[0])];

    std::vector<std::uint64_t> seen_mask(static_cast<std::size_t>(P), 0);
    for (std::uint64_t bz = 0; bz < num_byz; ++bz) {
      std::uint64_t brem = bz;
      for (std::size_t q = 0; q < faulty.size(); ++q) {
        received[static_cast<std::size_t>(faulty[q])] = states[static_cast<std::size_t>(brem % S)];
        brem /= S;
      }
      for (int p = 0; p < P; ++p) {
        const State next =
            algo.transition(game.correct[static_cast<std::size_t>(p)], received, ctx);
        ++result.transitions;
        const std::uint64_t idx = algo.state_to_index(next);
        SC_REQUIRE(idx < S, "transition produced an out-of-range state");
        auto& mask = seen_mask[static_cast<std::size_t>(p)];
        if (!(mask & (1ULL << idx))) {
          mask |= 1ULL << idx;
          game.choices[e * static_cast<std::uint64_t>(P) + static_cast<std::uint64_t>(p)]
              .push_back(FaultSetGame::Choice{static_cast<std::uint8_t>(idx),
                                              static_cast<std::uint32_t>(bz)});
        }
      }
    }
  }

  // Successor iteration: odometer over the per-position choice lists.
  auto for_each_successor = [&](std::uint64_t e, auto&& fn) {
    std::vector<std::size_t> pos(static_cast<std::size_t>(P), 0);
    for (;;) {
      std::uint64_t d = 0;
      std::uint64_t mult = 1;
      for (int p = 0; p < P; ++p) {
        const auto& ch =
            game.choices[e * static_cast<std::uint64_t>(P) + static_cast<std::uint64_t>(p)];
        d += ch[pos[static_cast<std::size_t>(p)]].state * mult;
        mult *= S;
      }
      if (!fn(d)) return false;
      int p = 0;
      while (p < P) {
        const auto& ch =
            game.choices[e * static_cast<std::uint64_t>(P) + static_cast<std::uint64_t>(p)];
        if (++pos[static_cast<std::size_t>(p)] < ch.size()) break;
        pos[static_cast<std::size_t>(p)] = 0;
        ++p;
      }
      if (p == P) return true;
    }
  };

  // Greatest fixpoint: G = agreeing-output configurations closed under
  // reachability with +1 (mod c) outputs.
  game.good.assign(game.num_configs, 0);
  for (std::uint64_t e = 0; e < game.num_configs; ++e) {
    std::uint64_t rem = e;
    bool agree = true;
    std::uint64_t val = 0;
    for (int p = 0; p < P; ++p) {
      const std::uint64_t s = rem % S;
      rem /= S;
      const std::uint64_t o =
          out[static_cast<std::size_t>(game.correct[static_cast<std::size_t>(p)])]
             [static_cast<std::size_t>(s)];
      if (p == 0) {
        val = o;
      } else if (o != val) {
        agree = false;
        break;
      }
    }
    game.good[e] = agree ? 1 : 0;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::uint64_t e = 0; e < game.num_configs; ++e) {
      if (!game.good[e]) continue;
      const bool keeps = for_each_successor(e, [&](std::uint64_t d) {
        return game.good[d] != 0 && out0[d] == (out0[e] + 1) % c;
      });
      if (!keeps) {
        game.good[e] = 0;
        changed = true;
      }
    }
  }

  // Longest path to G over the complement; a cycle means the adversary wins.
  std::vector<std::uint8_t> color(game.num_configs, 0);  // 0 white, 1 gray, 2 done
  game.dist.assign(game.num_configs, 0);

  struct Frame {
    std::uint64_t e;
    std::vector<std::uint64_t> succs;
    std::size_t next = 0;
  };
  for (std::uint64_t root = 0; root < game.num_configs; ++root) {
    if (game.good[root] || color[root] == 2) continue;
    std::vector<Frame> stack;
    auto push = [&](std::uint64_t e) {
      Frame fr;
      fr.e = e;
      for_each_successor(e, [&](std::uint64_t d) {
        fr.succs.push_back(d);
        return true;
      });
      color[e] = 1;
      stack.push_back(std::move(fr));
    };
    push(root);
    while (!stack.empty()) {
      Frame& fr = stack.back();
      if (fr.next < fr.succs.size()) {
        const std::uint64_t d = fr.succs[fr.next++];
        if (game.good[d]) continue;
        if (color[d] == 1) {
          result.ok = false;
          result.failure =
              "adversary can avoid stabilisation forever (cycle outside the good set) (|F|=" +
              std::to_string(faulty.size()) + ")";
          // Extract the lasso witness from the gray stack.
          Counterexample cex;
          cex.faulty = faulty;
          std::size_t cycle_start = 0;
          while (cycle_start < stack.size() && stack[cycle_start].e != d) ++cycle_start;
          for (std::size_t i = 0; i < cycle_start; ++i) cex.path.push_back(stack[i].e);
          for (std::size_t i = cycle_start; i < stack.size(); ++i) {
            cex.cycle.push_back(stack[i].e);
          }
          counterexample = std::move(cex);
          return false;
        }
        if (color[d] == 0) push(d);
      } else {
        std::uint64_t best = 0;
        for (const std::uint64_t d : fr.succs) {
          best = std::max(best, game.good[d] ? 0 : game.dist[d]);
        }
        game.dist[fr.e] = best + 1;
        worst_time = std::max(worst_time, game.dist[fr.e]);
        color[fr.e] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

}  // namespace

std::uint64_t FaultSetGame::config_index(std::span<const std::uint64_t> states_by_position,
                                         std::uint64_t num_states) const {
  SC_ASSERT(states_by_position.size() == correct.size());
  std::uint64_t e = 0;
  std::uint64_t mult = 1;
  for (std::size_t p = 0; p < states_by_position.size(); ++p) {
    e += states_by_position[p] * mult;
    mult *= num_states;
  }
  return e;
}

GameAnalysis analyze_game(const counting::CountingAlgorithm& algo) {
  GameAnalysis analysis;
  VerifyResult& result = analysis.result;
  SC_CHECK(algo.deterministic(), "can only verify deterministic algorithms");
  const auto count = algo.state_count();
  SC_CHECK(count.has_value(), "algorithm does not expose an enumerable state space");
  SC_CHECK(*count <= 64, "state space too large for the exact verifier (max 64 states)");
  const int n = algo.num_nodes();
  SC_CHECK(n >= 1 && n <= 10, "exact verifier supports n <= 10");
  const int f = algo.resilience();

  const auto S = *count;
  analysis.num_states = S;
  std::vector<State> states;
  states.reserve(static_cast<std::size_t>(S));
  for (std::uint64_t s = 0; s < S; ++s) states.push_back(algo.state_from_index(s));

  std::vector<std::vector<std::uint64_t>> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(S));
    for (std::uint64_t s = 0; s < S; ++s) {
      out[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] =
          algo.output(i, states[static_cast<std::size_t>(s)]);
    }
  }

  result.ok = true;
  result.time_by_fault_count.assign(static_cast<std::size_t>(f) + 1, 0);
  for (const auto& fs : fault_sets(n, f)) {
    analysis.games.emplace_back();
    std::uint64_t worst = 0;
    if (!solve_fault_set(algo, fs, states, out, analysis.games.back(), result, worst,
                         analysis.counterexample)) {
      return analysis;
    }
    result.worst_case_time = std::max(result.worst_case_time, worst);
    auto& slot = result.time_by_fault_count[fs.size()];
    slot = std::max(slot, worst);
  }
  return analysis;
}

bool counterexample_replays(const counting::CountingAlgorithm& algo,
                            const Counterexample& cex) {
  if (cex.cycle.empty()) return false;
  const auto count = algo.state_count();
  if (!count) return false;
  const auto S = *count;
  const int n = algo.num_nodes();

  std::vector<int> correct;
  for (int i = 0; i < n; ++i) {
    if (std::find(cex.faulty.begin(), cex.faulty.end(), i) == cex.faulty.end()) {
      correct.push_back(i);
    }
  }
  const int P = static_cast<int>(correct.size());
  const std::uint64_t num_byz = util::ipow(S, static_cast<unsigned>(cex.faulty.size()));

  // reachable(e, d): every correct node can be steered from e into d's state.
  const auto reachable = [&](std::uint64_t e, std::uint64_t d) {
    std::vector<State> received(static_cast<std::size_t>(n));
    std::uint64_t rem = e;
    for (int p = 0; p < P; ++p) {
      received[static_cast<std::size_t>(correct[static_cast<std::size_t>(p)])] =
          algo.state_from_index(rem % S);
      rem /= S;
    }
    counting::TransitionContext ctx{nullptr};
    std::uint64_t drem = d;
    for (int p = 0; p < P; ++p) {
      const std::uint64_t target = drem % S;
      drem /= S;
      bool possible = false;
      for (std::uint64_t bz = 0; bz < num_byz && !possible; ++bz) {
        std::uint64_t brem = bz;
        for (std::size_t q = 0; q < cex.faulty.size(); ++q) {
          received[static_cast<std::size_t>(cex.faulty[q])] =
              algo.state_from_index(brem % S);
          brem /= S;
        }
        const State next =
            algo.transition(correct[static_cast<std::size_t>(p)], received, ctx);
        possible = algo.state_to_index(next) == target;
      }
      if (!possible) return false;
    }
    return true;
  };

  // The path leads into the cycle; the cycle closes on itself.
  std::vector<std::uint64_t> walk = cex.path;
  walk.insert(walk.end(), cex.cycle.begin(), cex.cycle.end());
  walk.push_back(cex.cycle.front());
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    if (!reachable(walk[i], walk[i + 1])) return false;
  }
  return true;
}

VerifyResult verify(const counting::CountingAlgorithm& algo) {
  return analyze_game(algo).result;
}

}  // namespace synccount::synthesis
