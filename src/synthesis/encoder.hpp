// CNF encoding of the synchronous-counter synthesis problem, reproducing the
// computational algorithm design pipeline of [4,5].
//
// Unknowns (one-hot encoded):
//   g[node?, vec, s]  -- transition table entries (node dimension dropped for
//                        uniform algorithms where all nodes run the same g),
//   h[node?, x, o]    -- output table entries.
// Per faulty set F (all |F| <= f) and configuration e over the correct nodes:
//   G[F, e]           -- membership in the "good" (stabilised) set,
//   u[F, e, j]        -- unary rank, "rank(e) >= j", j in [1, R].
// Auxiliary: can[F, e, p, s] <-> "the adversary can steer correct node p from
// e into state s", a disjunction of g-literals over Byzantine assignments.
//
// Constraints: G has agreeing outputs, is closed under reachability with
// outputs incrementing mod c; outside G every reachable step strictly
// decreases the (bounded) rank, hence every adversarial path enters G within
// R rounds. The encoding is exact: it is satisfiable iff a counter with
// worst-case stabilisation time <= R exists in the given state budget.
#pragma once

#include <cstdint>
#include <vector>

#include "counting/table_algorithm.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

namespace synccount::synthesis {

struct SynthesisSpec {
  int n = 0;                    // nodes
  int f = 0;                    // resilience
  std::uint64_t num_states = 0; // |X| state budget
  std::uint64_t modulus = 2;    // c
  counting::Symmetry symmetry = counting::Symmetry::kUniform;
  int max_time = 8;             // admissible worst-case stabilisation time

  void validate() const;
};

class Encoder {
 public:
  explicit Encoder(const SynthesisSpec& spec);

  const sat::Cnf& cnf() const noexcept { return cnf_; }
  const SynthesisSpec& spec() const noexcept { return spec_; }

  // Variable accessors (1-based DIMACS ids), valid after construction.
  sat::Var g_var(int node, std::uint64_t vec, std::uint64_t target) const;
  sat::Var h_var(int node, std::uint64_t state, std::uint64_t out) const;

  // Selector for incremental time sweeps: the variable is implied whenever
  // some configuration's rank is >= bound (bound in [1, max_time - 1]).
  // Assuming its negation therefore asserts "worst-case stabilisation time
  // <= bound"; solving the same instance under successively weaker
  // assumptions reuses all learned clauses (see synthesize_incremental).
  sat::Var rank_exceeds_var(int bound) const;

  // Extracts the synthesised table from a satisfying assignment.
  counting::TransitionTable decode(const sat::Solver& solver) const;

  struct SizeInfo {
    std::size_t variables = 0;
    std::size_t clauses = 0;
  };
  SizeInfo size() const;

 private:
  void build();

  SynthesisSpec spec_;
  sat::Cnf cnf_;
  int next_var_ = 0;
  int g_base_ = 0;
  int h_base_ = 0;
  std::uint64_t vecs_per_node_ = 0;  // |X|^n
  std::vector<sat::Var> rank_exceeds_;  // index j-1 -> "some rank >= j"

  sat::Var fresh();
};

}  // namespace synccount::synthesis
