#include "synthesis/cube.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace synccount::synthesis {

using util::Json;

std::vector<sat::Var> cube_branch_vars(const Encoder& enc, int depth) {
  SC_CHECK(depth >= 0 && depth <= 20, "cube depth must be in [0, 20]");
  const SynthesisSpec& spec = enc.spec();
  std::vector<sat::Var> vars;
  vars.reserve(static_cast<std::size_t>(depth));
  // The g layer is laid out densely from variable 1 in (node, vec, target)
  // order; walk it through the accessor so a layout change cannot silently
  // desynchronise the splitter.
  const int node_dim = spec.symmetry == counting::Symmetry::kPerNode ? spec.n : 1;
  for (int nd = 0; nd < node_dim && static_cast<int>(vars.size()) < depth; ++nd) {
    for (std::uint64_t vec = 0; static_cast<int>(vars.size()) < depth; ++vec) {
      for (std::uint64_t s = 0;
           s < spec.num_states && static_cast<int>(vars.size()) < depth; ++s) {
        vars.push_back(enc.g_var(nd, vec, s));
      }
      SC_CHECK(vec + 1 > 0, "cube depth exceeds the g layer");
    }
  }
  SC_CHECK(static_cast<int>(vars.size()) == depth,
           "cube depth exceeds the encoder's g layer");
  return vars;
}

Cube make_cube(const Encoder& enc, int depth, std::uint64_t index) {
  SC_CHECK(depth >= 0 && depth <= 20, "cube depth must be in [0, 20]");
  SC_CHECK(index < (std::uint64_t{1} << depth), "cube index outside 2^depth");
  const std::vector<sat::Var> vars = cube_branch_vars(enc, depth);
  Cube cube;
  cube.index = index;
  cube.assumptions.reserve(vars.size());
  for (int i = 0; i < depth; ++i) {
    const bool positive = ((index >> i) & 1U) != 0;
    cube.assumptions.push_back(positive ? vars[static_cast<std::size_t>(i)]
                                        : -vars[static_cast<std::size_t>(i)]);
  }
  return cube;
}

std::vector<Cube> split_cubes(const Encoder& enc, int depth) {
  std::vector<Cube> cubes;
  const std::uint64_t count = std::uint64_t{1} << depth;
  cubes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t j = 0; j < count; ++j) cubes.push_back(make_cube(enc, depth, j));
  return cubes;
}

counting::Symmetry symmetry_from_string(const std::string& s) {
  if (s == "uniform") return counting::Symmetry::kUniform;
  if (s == "cyclic") return counting::Symmetry::kCyclic;
  if (s == "per-node") return counting::Symmetry::kPerNode;
  throw std::invalid_argument("unknown symmetry \"" + s + "\"");
}

void SynthJobSpec::validate() const {
  spec.validate();
  SC_CHECK(time_bound >= 1 && time_bound <= spec.max_time,
           "time_bound must be in [1, max_time]");
  SC_CHECK(cube_depth >= 0 && cube_depth <= 20, "cube_depth must be in [0, 20]");
  SC_CHECK(portfolio >= 1 && portfolio <= 64, "portfolio must be in [1, 64]");
}

Json SynthJobSpec::to_json() const {
  validate();
  Json j = Json::object();
  j.set("kind", Json::string("synth"));
  j.set("n", Json::number(spec.n));
  j.set("f", Json::number(spec.f));
  j.set("states", Json::number(spec.num_states));
  j.set("modulus", Json::number(spec.modulus));
  j.set("symmetry", Json::string(counting::to_string(spec.symmetry)));
  j.set("max_time", Json::number(spec.max_time));
  j.set("time_bound", Json::number(time_bound));
  j.set("cube_depth", Json::number(cube_depth));
  j.set("portfolio", Json::number(portfolio));
  j.set("budget", Json::number(conflict_budget));
  return j;
}

SynthJobSpec SynthJobSpec::from_json(const Json& j) {
  SC_CHECK(j.has("kind") && j.at("kind").as_string() == "synth",
           "not a synth job spec");
  SynthJobSpec out;
  out.spec.n = static_cast<int>(j.at("n").as_int());
  out.spec.f = static_cast<int>(j.at("f").as_int());
  out.spec.num_states = j.at("states").as_u64();
  out.spec.modulus = j.at("modulus").as_u64();
  out.spec.symmetry = symmetry_from_string(j.at("symmetry").as_string());
  out.spec.max_time = static_cast<int>(j.at("max_time").as_int());
  out.time_bound = static_cast<int>(j.at("time_bound").as_int());
  out.cube_depth = static_cast<int>(j.at("cube_depth").as_int());
  out.portfolio = static_cast<int>(j.at("portfolio").as_int());
  out.conflict_budget = j.at("budget").as_u64();
  out.validate();
  return out;
}

}  // namespace synccount::synthesis
