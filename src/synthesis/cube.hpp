// Cube-and-conquer splitting of a synthesis instance, plus the serializable
// work-unit description shared by the local parallel engine and the sweep
// service's `synth` job kind.
//
// A cube is an assumption set over the encoder's first `depth` g-selector
// variables -- the transition-table entries for the lowest (node,
// received-vector) indices, which sit at the bottom of the one-hot variable
// layout. The 2^depth sign patterns are disjoint and exhaustive, so the
// instance is satisfiable iff some cube is, and cube verdicts can be solved
// completely independently (locally across a thread pool, remotely across
// leased workers). Patterns violating the one-hot constraint propagate to a
// conflict immediately, so the effective split is |X|-way per covered entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sat/solver.hpp"
#include "synthesis/encoder.hpp"
#include "util/json.hpp"

namespace synccount::synthesis {

struct Cube {
  std::uint64_t index = 0;                 // in [0, 2^depth)
  std::vector<sat::ExtLit> assumptions;    // sign of var i = bit i of index
};

// The branch variables: the encoder's first `depth` g-selector variables in
// (node, vec, target) order. depth must fit the g layer.
std::vector<sat::Var> cube_branch_vars(const Encoder& enc, int depth);

// All 2^depth cubes over cube_branch_vars, in index order.
std::vector<Cube> split_cubes(const Encoder& enc, int depth);

// The assumptions of cube `index` at depth `depth` (without materialising
// the full set -- serve workers solve one leased cube at a time).
Cube make_cube(const Encoder& enc, int depth, std::uint64_t index);

// A self-contained synthesis work unit: one (spec, R) instance split into
// 2^cube_depth cubes, solved by a K-config portfolio under a per-config
// conflict budget. This is the payload of the serve `synth` job kind; its
// JSON form is canonical (field order fixed by util::Json's object order),
// so idempotent-resubmit comparison is byte-exact.
struct SynthJobSpec {
  SynthesisSpec spec;          // spec.max_time is the encoding bound M
  int time_bound = 0;          // R <= M: assume -rank_exceeds(R) when R < M
  int cube_depth = 0;          // 2^cube_depth cubes (0 = a single cube)
  int portfolio = 1;           // K diversified solver configs
  std::uint64_t conflict_budget = 0;  // per config per cube; 0 = unlimited

  void validate() const;
  util::Json to_json() const;
  static SynthJobSpec from_json(const util::Json& j);
};

counting::Symmetry symmetry_from_string(const std::string& s);

}  // namespace synccount::synthesis
